//===- examples/timestepper.cpp -------------------------------------------===//
//
// A multi-step driver in the shape of the applications the paper targets:
// a periodic domain decomposed into boxes, each time step exchanging ghost
// cells and then running the MiniFluxDiv flux-divergence step on every box
// (Chombo's pattern, Section 5.6). Compares the baseline schedule against
// the M2DFG-derived fused schedule over the whole simulation, and checks
// they track each other.
//
//   $ ./timestepper [boxSize] [boxesPerDim] [steps]
//
//===----------------------------------------------------------------------===//

#include "minifluxdiv/Variants.h"
#include "runtime/GhostExchange.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace lcdfg;
using rt::Box;
using rt::GridLayout;

namespace {

double interiorNorm(const std::vector<Box> &Boxes) {
  double Sum = 0.0;
  for (const Box &B : Boxes)
    for (int C = 0; C < B.numComponents(); ++C)
      for (int Z = 0; Z < B.size(); ++Z)
        for (int Y = 0; Y < B.size(); ++Y)
          for (int X = 0; X < B.size(); ++X)
            Sum += B.at(C, Z, Y, X) * B.at(C, Z, Y, X);
  return std::sqrt(Sum);
}

double runSimulation(mfd::Variant V, std::vector<Box> State,
                     const GridLayout &Layout, int Steps, int Threads,
                     double *FinalNorm) {
  mfd::Problem P;
  P.BoxSize = State.front().size();
  P.NumBoxes = static_cast<int>(State.size());
  std::vector<Box> Next = mfd::makeOutputs(P);
  mfd::RunConfig Cfg;
  Cfg.Threads = Threads;

  auto T0 = std::chrono::steady_clock::now();
  for (int Step = 0; Step < Steps; ++Step) {
    rt::exchangeGhosts(State, Layout, Threads).expectOk("timestepper");
    mfd::runVariant(V, State, Next, Cfg);
    for (std::size_t I = 0; I < State.size(); ++I)
      State[I].copyInteriorFrom(Next[I]);
  }
  auto T1 = std::chrono::steady_clock::now();
  *FinalNorm = interiorNorm(State);
  return std::chrono::duration<double>(T1 - T0).count();
}

} // namespace

int main(int argc, char **argv) {
  int N = argc > 1 ? std::atoi(argv[1]) : 16;
  int B = argc > 2 ? std::atoi(argv[2]) : 2;
  int Steps = argc > 3 ? std::atoi(argv[3]) : 8;

  GridLayout Layout{B, B, B};
  mfd::Problem P;
  P.BoxSize = N;
  P.NumBoxes = Layout.numBoxes();
  std::vector<Box> Initial = mfd::makeInputs(P, 0x7157e9);

  std::printf("periodic %dx%dx%d boxes of %d^3 cells, %d time steps\n\n",
              B, B, B, N, Steps);

  struct Row {
    const char *Name;
    mfd::Variant V;
  };
  const Row Rows[] = {
      {"series of loops (baseline)", mfd::Variant::SeriesReduced},
      {"fuse all levels, reduced", mfd::Variant::FuseAllReduced},
      {"overlapped tiling (within)", mfd::Variant::OverlapWithinTiles},
  };

  double BaselineNorm = 0.0;
  bool First = true;
  for (const Row &R : Rows) {
    double Norm = 0.0;
    double Seconds = runSimulation(R.V, Initial, Layout, Steps, 1, &Norm);
    double Drift =
        First ? 0.0 : std::fabs(Norm - BaselineNorm) / BaselineNorm;
    if (First)
      BaselineNorm = Norm;
    std::printf("%-28s %8.4fs  |state| = %.12g  (rel drift vs baseline "
                "%.2g)\n",
                R.Name, Seconds, Norm, Drift);
    if (!First && Drift > 1e-10) {
      std::fprintf(stderr, "schedules diverged!\n");
      return 1;
    }
    First = false;
  }
  std::printf("\nall schedules agree across %d coupled time steps.\n",
              Steps);
  return 0;
}
