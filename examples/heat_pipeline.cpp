//===- examples/heat_pipeline.cpp -----------------------------------------===//
//
// A domain example beyond MiniFluxDiv: a 2D heat-diffusion pipeline of
// blur -> flux -> update stages, written as a loop chain. The example
// explores both fusion strategies with the cost model, picks the cheaper
// schedule, and validates the transformed execution against the original
// using the interpreter — exactly the workflow the paper proposes for a
// performance expert.
//
//   $ ./heat_pipeline [N]
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "codegen/Interpreter.h"
#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace lcdfg;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;

namespace {

/// blur(T) -> flux(blur) -> T' = T + k * d(flux)
ir::LoopChain buildHeatChain() {
  ir::LoopChain Chain("heat", "fuse");
  AffineExpr N = AffineExpr::var("N");
  BoxSet Cells({Dim{"y", AffineExpr(0), N - AffineExpr(1)},
                Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  BoxSet Faces({Dim{"y", AffineExpr(0), N - AffineExpr(1)},
                Dim{"x", AffineExpr(0), N}});

  ir::LoopNest Blur;
  Blur.Name = "blur";
  Blur.Domain = Cells.expanded(1, 1, 1); // one halo column each side
  Blur.Write = ir::Access{"smooth", {{0, 0}}};
  Blur.Reads = {ir::Access{"T", {{0, -1}, {0, 0}, {0, 1}}}};
  Chain.addNest(Blur);

  ir::LoopNest Flux;
  Flux.Name = "flux";
  Flux.Domain = Faces;
  Flux.Write = ir::Access{"flux", {{0, 0}}};
  Flux.Reads = {ir::Access{"smooth", {{0, -1}, {0, 0}}}};
  Chain.addNest(Flux);

  ir::LoopNest Update;
  Update.Name = "update";
  Update.Domain = Cells;
  Update.Write = ir::Access{"Tnext", {{0, 0}}};
  Update.Reads = {ir::Access{"flux", {{0, 0}, {0, 1}}},
                  ir::Access{"T", {{0, 0}}}};
  Chain.addNest(Update);
  Chain.finalize();
  return Chain;
}

void registerHeatKernels(ir::LoopChain &Chain,
                         codegen::KernelRegistry &Kernels) {
  Chain.nest(0).KernelId =
      Kernels.add([](const std::vector<double> &R, double) {
        return (R[0] + 2.0 * R[1] + R[2]) * 0.25;
      });
  Chain.nest(1).KernelId =
      Kernels.add([](const std::vector<double> &R, double) {
        return R[1] - R[0]; // gradient across the face
      });
  Chain.nest(2).KernelId =
      Kernels.add([](const std::vector<double> &R, double) {
        return R[2] + 0.2 * (R[1] - R[0]); // T + k * divergence
      });
}

std::vector<double> run(graph::Graph &G, codegen::KernelRegistry &Kernels,
                        std::int64_t N) {
  std::map<std::string, std::int64_t, std::less<>> Env{{"N", N}};
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  storage::ConcreteStorage Store(Plan, Env);
  G.chain().array("T").Extent->forEachPoint(
      Env, [&](const std::vector<std::int64_t> &P) {
        Store.at("T", P) =
            std::sin(0.3 * static_cast<double>(P[0])) +
            std::cos(0.2 * static_cast<double>(P[1]));
      });
  codegen::AstPtr Ast = codegen::generate(G);
  codegen::execute(G, *Ast, Kernels, Store, Env);
  std::vector<double> Out;
  for (std::int64_t Y = 0; Y < N; ++Y)
    for (std::int64_t X = 0; X < N; ++X)
      Out.push_back(Store.at("Tnext", {Y, X}));
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::int64_t N = argc > 1 ? std::atoll(argv[1]) : 16;

  ir::LoopChain Chain = buildHeatChain();
  codegen::KernelRegistry Kernels;
  registerHeatKernels(Chain, Kernels);

  // Reference: the original series-of-loops schedule.
  graph::Graph Series = graph::buildGraph(Chain);
  std::printf("series schedule cost:\n%s\n",
              graph::computeCost(Series).toString().c_str());
  std::vector<double> Expected = run(Series, Kernels, N);

  // Candidate: fully fused with reduced storage.
  graph::Graph Fused = graph::buildGraph(Chain);
  auto Must = [](graph::TransformResult R) {
    if (!R) {
      std::fprintf(stderr, "transform failed: %s\n", R.Error.c_str());
      std::exit(1);
    }
  };
  Must(graph::fuseProducerConsumer(Fused, Fused.findStmt("blur"),
                                   Fused.findStmt("flux")));
  Must(graph::fuseProducerConsumer(Fused, Fused.findStmt("blur+flux"),
                                   Fused.findStmt("update")));
  storage::reduceStorage(Fused);
  graph::CostReport FusedCost = graph::computeCost(Fused);
  std::printf("fused schedule cost:\n%s\n", FusedCost.toString().c_str());
  std::printf("smooth buffer: %s, flux buffer: %s\n",
              Fused.value(Fused.findValue("smooth")).Size.toString().c_str(),
              Fused.value(Fused.findValue("flux")).Size.toString().c_str());

  std::vector<double> Got = run(Fused, Kernels, N);
  double MaxDiff = 0.0;
  for (std::size_t I = 0; I < Expected.size(); ++I)
    MaxDiff = std::fmax(MaxDiff, std::fabs(Expected[I] - Got[I]));
  std::printf("max |series - fused| over %zu cells: %.3g %s\n",
              Expected.size(), MaxDiff, MaxDiff < 1e-12 ? "(OK)" : "(BAD)");
  return MaxDiff < 1e-12 ? 0 : 1;
}
