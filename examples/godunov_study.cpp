//===- examples/godunov_study.cpp -----------------------------------------===//
//
// The Section 5.6 case study as a runnable walkthrough: the ComputeWHalf
// subroutine's M2DFG before and after fusion, the storage the fusion
// recovers, and the measured improvement of the corresponding kernels.
//
//   $ ./godunov_study [boxSize] [numBoxes]
//
//===----------------------------------------------------------------------===//

#include "godunov/Godunov.h"
#include "godunov/GodunovGraph.h"
#include "graph/CostModel.h"
#include "graph/DotExport.h"
#include "graph/GraphBuilder.h"
#include "storage/LivenessAllocator.h"
#include "storage/ReuseDistance.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace lcdfg;
using namespace lcdfg::graph;

int main(int argc, char **argv) {
  int N = argc > 1 ? std::atoi(argv[1]) : 16;
  int Boxes = argc > 2 ? std::atoi(argv[2]) : 16;

  ir::LoopChain Chain = gdnv::buildComputeWHalfChain();
  std::printf("ComputeWHalf loop chain: %u nests\n\n", Chain.numNests());

  Graph Before = buildGraph(Chain);
  std::printf("== original schedule (Figure 13) ==\n%s\ncost:\n%s\n",
              toText(Before).c_str(),
              computeCost(Before).toString().c_str());

  ir::LoopChain Chain2 = gdnv::buildComputeWHalfChain();
  Graph After = buildGraph(Chain2);
  gdnv::applyGodunovFusion(After);
  auto Reduced = storage::reduceStorage(After);
  std::printf("== fused schedule (Figure 14) ==\n%s\ncost:\n%s\n",
              toText(After).c_str(), computeCost(After).toString().c_str());
  std::printf("value sets collapsed to scalars: %zu\n", Reduced.size());

  storage::Allocation A0 = storage::allocateSpaces(Before);
  storage::Allocation A1 = storage::allocateSpaces(After);
  std::printf("\ntemporary allocation: %s -> %s elements per component\n",
              A0.Total.toString().c_str(), A1.Total.toString().c_str());
  std::printf("at N=%d with %d components: %ld -> %ld doubles (%.1f KB "
              "saved per box)\n",
              N, gdnv::NumComps, gdnv::temporaryElementsOriginal(N),
              gdnv::temporaryElementsFused(N),
              static_cast<double>(gdnv::temporaryElementsOriginal(N) -
                                  gdnv::temporaryElementsFused(N)) *
                  8.0 / 1024.0);

  // Measure.
  std::vector<rt::Box> In;
  for (int I = 0; I < Boxes; ++I) {
    In.emplace_back(N, gdnv::GhostDepth, gdnv::NumComps);
    In.back().fillPseudoRandom(11 + I);
  }
  auto Out = gdnv::makeOutputs(Boxes, N);
  auto Time = [&](void (*Fn)(const std::vector<rt::Box> &,
                             std::vector<gdnv::WHalfSet> &, int)) {
    Fn(In, Out, 1);
    auto T0 = std::chrono::steady_clock::now();
    Fn(In, Out, 1);
    auto T1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(T1 - T0).count();
  };
  double TOrig = Time(gdnv::runOriginal);
  double TFused = Time(gdnv::runFused);
  std::printf("\nruntime: original %.4fs, fused %.4fs (%.1f%% reduction; "
              "paper observed 17%%)\n",
              TOrig, TFused, 100.0 * (1.0 - TFused / TOrig));
  std::printf("schedules agree to %.3g\n", gdnv::verifySchedules(N));
  return 0;
}
