//===- examples/quickstart.cpp --------------------------------------------===//
//
// Quickstart: annotate a loop chain, build its M2DFG, inspect the cost
// model, fuse producer-consumer pairs, reduce storage, and print the
// optimized code — the full Figure 1 pipeline in ~100 lines.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "codegen/CPrinter.h"
#include "codegen/Generator.h"
#include "graph/CostModel.h"
#include "graph/DotExport.h"
#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "parser/PragmaParser.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <cstdio>

using namespace lcdfg;

int main() {
  // 1. Annotated source (the paper's Figure 1 running example).
  const char *Source = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write VAL_1{(x,y)} read VAL_0{(x,y)}
S1: VAL_1(x,y) = func1(VAL_0(x,y));

#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write VAL_2{(x,y)} read VAL_1{(x,y)}
S2: VAL_2(x,y) = func2(VAL_1(x,y));

#pragma omplc for domain(0:N-1, 0:N-1) with (x, y) \
    write VAL_3{(x,y)} read VAL_2{(x,y),(x+1,y)}
S3: VAL_3(x,y) = func3(VAL_2(x,y), VAL_2(x+1,y));
}
)";

  // 2. Parse into a loop chain.
  parser::ParseResult Parsed = parser::parseLoopChain(Source);
  if (!Parsed) {
    std::fprintf(stderr, "parse error at line %u: %s\n", Parsed.Line,
                 Parsed.Error.c_str());
    return 1;
  }
  ir::LoopChain Chain = std::move(*Parsed.Chain);
  std::printf("parsed chain:\n%s\n", Chain.toString().c_str());

  // 3. Build the modified macro dataflow graph and inspect the cost model.
  graph::Graph G = graph::buildGraph(Chain);
  std::printf("initial schedule:\n%s\n", graph::toText(G).c_str());
  std::printf("initial cost model:\n%s\n",
              graph::computeCost(G).toString().c_str());

  // 4. Fuse the chain: S2 into S1, then S3 into the pair. The shifts for
  //    the (x, x+1) stencil are derived automatically.
  graph::TransformResult R =
      graph::fuseProducerConsumer(G, G.findStmt("S1"), G.findStmt("S2"));
  if (!R) {
    std::fprintf(stderr, "fusion failed: %s\n", R.Error.c_str());
    return 1;
  }
  R = graph::fuseProducerConsumer(G, G.findStmt("S1+S2"), G.findStmt("S3"));
  if (!R) {
    std::fprintf(stderr, "fusion failed: %s\n", R.Error.c_str());
    return 1;
  }

  // 5. Minimize temporary storage: VAL_1 collapses to a scalar, VAL_2 to
  //    two values — the *(temp + x&1) mapping of Figure 1.
  storage::reduceStorage(G);
  std::printf("fused schedule:\n%s\n", graph::toText(G).c_str());
  std::printf("fused cost model:\n%s\n",
              graph::computeCost(G).toString().c_str());
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  std::printf("storage plan:\n%s\n", Plan.toString().c_str());

  // 6. Generate the optimized code.
  codegen::AstPtr Ast = codegen::generate(G);
  codegen::PrintOptions Options;
  Options.Plan = &Plan;
  std::printf("optimized code:\n%s\n",
              codegen::printC(G, *Ast, Options).c_str());

  // 7. Export the graph for visual inspection (pipe into `dot -Tpng`).
  std::printf("graphviz:\n%s", graph::toDot(G, {true, "fused"}).c_str());
  return 0;
}
