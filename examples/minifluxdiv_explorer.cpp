//===- examples/minifluxdiv_explorer.cpp ----------------------------------===//
//
// Schedule explorer for the MiniFluxDiv benchmark: builds the 3D chain,
// applies each of the paper's schedule recipes, and reports the cost model
// (S_R, S_c), the liveness-based storage allocation, and the measured
// runtime of the corresponding hand kernel — the table a performance
// expert would use to pick a schedule.
//
//   $ ./minifluxdiv_explorer [boxSize] [numBoxes]
//
//===----------------------------------------------------------------------===//

#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "minifluxdiv/Variants.h"
#include "minifluxdiv/Verify.h"
#include "storage/LivenessAllocator.h"
#include "storage/ReuseDistance.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

struct ScheduleRow {
  const char *Name;
  std::function<void(Graph &)> Recipe;
  mfd::Variant Kernel;
};

double timeKernel(mfd::Variant V, const std::vector<rt::Box> &In,
                  std::vector<rt::Box> &Out) {
  mfd::RunConfig Cfg;
  mfd::runVariant(V, In, Out, Cfg); // warm-up
  auto T0 = std::chrono::steady_clock::now();
  mfd::runVariant(V, In, Out, Cfg);
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

} // namespace

int main(int argc, char **argv) {
  int BoxSize = argc > 1 ? std::atoi(argv[1]) : 32;
  int NumBoxes = argc > 2 ? std::atoi(argv[2]) : 4;

  const ScheduleRow Rows[] = {
      {"series of loops", nullptr, mfd::Variant::SeriesReduced},
      {"fuse among directions",
       [](Graph &G) { mfd::applyFuseAmongDirections(G); },
       mfd::Variant::FuseAmongSA},
      {"fuse within directions",
       [](Graph &G) {
         mfd::applyFuseWithinDirections(G);
         storage::reduceStorage(G);
       },
       mfd::Variant::FuseWithinReduced},
      {"fuse all levels",
       [](Graph &G) {
         mfd::applyFuseAllLevels(G);
         storage::reduceStorage(G);
       },
       mfd::Variant::FuseAllReduced},
  };

  mfd::Problem P;
  P.BoxSize = BoxSize;
  P.NumBoxes = NumBoxes;
  std::vector<rt::Box> In = mfd::makeInputs(P, 0xe4);
  std::vector<rt::Box> Out = mfd::makeOutputs(P);

  std::printf("MiniFluxDiv 3D schedule explorer (%d^3 x %d boxes)\n\n",
              BoxSize, NumBoxes);
  std::printf("%-24s %-28s %-4s %-28s %-10s\n", "schedule", "S_R", "S_c",
              "temp allocation", "runtime");
  for (const ScheduleRow &Row : Rows) {
    ir::LoopChain Chain = mfd::buildChain3D();
    Graph G = buildGraph(Chain);
    if (Row.Recipe)
      Row.Recipe(G);
    CostReport Cost = computeCost(G);
    storage::Allocation Alloc = storage::allocateSpaces(G);
    double Seconds = timeKernel(Row.Kernel, In, Out);
    std::printf("%-24s %-28s %-4u %-28s %.4fs\n", Row.Name,
                Cost.TotalRead.toString().c_str(), Cost.MaxStreams,
                Alloc.Total.toString().c_str(), Seconds);
  }

  std::printf("\nverification of every hand kernel against the "
              "reference:\n");
  mfd::Problem Small;
  Small.BoxSize = 8;
  Small.NumBoxes = 2;
  std::string Report;
  bool Ok = mfd::verifyAll(Small, Report);
  std::printf("%s", Report.c_str());
  return Ok ? 0 : 1;
}
