//===- examples/autoschedule.cpp ------------------------------------------===//
//
// Automatic schedule derivation: instead of hand-applying the paper's
// transformation recipes, let the greedy cost-model-driven search find a
// schedule, then compare it against the hand-derived variants, export the
// resulting ISCC script, and validate the schedule by interpretation.
//
//   $ ./autoschedule [streamBudget]
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "codegen/Interpreter.h"
#include "codegen/IsccExport.h"
#include "graph/AutoScheduler.h"
#include "graph/CostModel.h"
#include "graph/DotExport.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

std::vector<double> interpret(Graph &G, codegen::KernelRegistry &Kernels,
                              std::int64_t N) {
  std::map<std::string, std::int64_t, std::less<>> Env{{"N", N}};
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  storage::ConcreteStorage Store(Plan, Env);
  for (const std::string C : {"rho", "u", "v", "e"}) {
    G.chain().array("in_" + C).Extent->forEachPoint(
        Env, [&](const std::vector<std::int64_t> &P) {
          Store.at("in_" + C, P) =
              1.0 + 0.001 * static_cast<double>(P[0] * 37 + P[1] * 11);
        });
  }
  codegen::AstPtr Ast = codegen::generate(G);
  codegen::execute(G, *Ast, Kernels, Store, Env);
  std::vector<double> Out;
  for (const std::string C : {"rho", "u", "v", "e"})
    for (std::int64_t Y = 0; Y < N; ++Y)
      for (std::int64_t X = 0; X < N; ++X)
        Out.push_back(Store.at("out_" + C, {Y, X}));
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Budget = argc > 1 ? std::atoi(argv[1]) : 4;

  ir::LoopChain Chain = mfd::buildChain2D();
  codegen::KernelRegistry Kernels;
  mfd::registerKernels(Chain, Kernels);

  Graph Reference = buildGraph(Chain);
  std::vector<double> Expected = interpret(Reference, Kernels, 8);

  Graph G = buildGraph(Chain);
  AutoScheduleOptions Options;
  Options.MaxStreams = Budget;
  AutoScheduleResult R = autoSchedule(G, Options);

  std::printf("auto-scheduling MiniFluxDiv 2D (stream budget %u)\n\n",
              Budget);
  for (const std::string &Line : R.Log)
    std::printf("  %s\n", Line.c_str());
  std::printf("\n%u moves: S_R %s -> %s, S_c = %u\n", R.StepsApplied,
              R.InitialRead.toString().c_str(),
              R.FinalRead.toString().c_str(), R.FinalStreams);

  std::printf("\nschedule found:\n%s\n", toText(G).c_str());

  // Validate by execution.
  std::vector<double> Got = interpret(G, Kernels, 8);
  double MaxDiff = 0.0;
  for (std::size_t I = 0; I < Expected.size(); ++I)
    MaxDiff = std::fmax(MaxDiff, std::fabs(Expected[I] - Got[I]));
  std::printf("max |reference - autoscheduled| = %.3g %s\n\n", MaxDiff,
              MaxDiff < 1e-12 ? "(OK)" : "(BAD)");

  std::printf("--- ISCC script for the discovered schedule ---\n%s",
              codegen::exportIscc(G).c_str());
  return MaxDiff < 1e-12 ? 0 : 1;
}
