//===- support/Status.cpp -------------------------------------------------===//

#include "support/Status.h"

#include "support/Errors.h"

#include <cstdio>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::support;

std::string_view support::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::None:
    return "ok";
  case ErrorCode::Parse:
    return "E001-parse";
  case ErrorCode::InvalidChain:
    return "E002-invalid-chain";
  case ErrorCode::UnknownArray:
    return "E003-unknown-array";
  case ErrorCode::GraphInvalid:
    return "E004-graph-invalid";
  case ErrorCode::IllegalTransform:
    return "E005-illegal-transform";
  case ErrorCode::TilingInvalid:
    return "E006-tiling-invalid";
  case ErrorCode::StorageInvalid:
    return "E007-storage-invalid";
  case ErrorCode::PlanInvalid:
    return "E008-plan-invalid";
  case ErrorCode::KernelMissing:
    return "E009-kernel-missing";
  case ErrorCode::DependenceCycle:
    return "E010-dependence-cycle";
  case ErrorCode::VerifierRejected:
    return "E011-verifier-rejected";
  case ErrorCode::FaultInjected:
    return "E012-fault-injected";
  case ErrorCode::GuardTripped:
    return "E013-guard-tripped";
  case ErrorCode::Exhausted:
    return "E014-exhausted";
  case ErrorCode::Internal:
    return "E015-internal";
  case ErrorCode::MemBudgetInfeasible:
    return "E016-mem-budget-infeasible";
  case ErrorCode::JitUnavailable:
    return "E017-jit-unavailable";
  case ErrorCode::PeerLost:
    return "E018-peer-lost";
  case ErrorCode::ExchangeTimeout:
    return "E019-exchange-timeout";
  case ErrorCode::Protocol:
    return "E020-protocol";
  }
  return "E015-internal";
}

std::string Status::toString() const {
  if (isOk())
    return "ok";
  std::ostringstream OS;
  OS << errorCodeName(Code) << ": " << Msg;
  for (const std::string &Frame : Chain)
    OS << " (while " << Frame << ")";
  return OS.str();
}

namespace {

void appendJsonEscaped(std::ostringstream &OS, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
}

} // namespace

std::string Status::toJson() const {
  std::ostringstream OS;
  OS << "{\"code\":\"" << errorCodeName(Code) << "\",\"message\":\"";
  appendJsonEscaped(OS, Msg);
  OS << "\"";
  if (!Sub.empty()) {
    OS << ",\"subcode\":\"";
    appendJsonEscaped(OS, Sub);
    OS << "\"";
  }
  OS << ",\"context\":[";
  for (std::size_t I = 0; I < Chain.size(); ++I) {
    OS << (I ? "," : "") << "\"";
    appendJsonEscaped(OS, Chain[I]);
    OS << "\"";
  }
  OS << "]}";
  return OS.str();
}

void Status::expectOk(std::string_view What) const {
  if (isOk())
    return;
  reportFatalError(std::string(What) + ": " + toString());
}

void support::raise(ErrorCode Code, std::string Msg) {
  throw StatusError(Status::error(Code, std::move(Msg)));
}
