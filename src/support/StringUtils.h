//===- support/StringUtils.h - String helpers for the parser ----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers used by the omplc pragma parser and pretty printers.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SUPPORT_STRINGUTILS_H
#define LCDFG_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace lcdfg {

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, trimming each piece; empty pieces are kept.
std::vector<std::string> split(std::string_view S, char Sep);

/// Splits on \p Sep but only at nesting depth zero with respect to
/// parentheses, braces, and brackets. Used to split "(x,y),(x+1,y)" into
/// the two tuples rather than four fragments.
std::vector<std::string> splitTopLevel(std::string_view S, char Sep);

bool startsWith(std::string_view S, std::string_view Prefix);

/// Consumes \p Prefix from the front of \p S (after trimming); returns true
/// and advances \p S on success.
bool consumePrefix(std::string_view &S, std::string_view Prefix);

} // namespace lcdfg

#endif // LCDFG_SUPPORT_STRINGUTILS_H
