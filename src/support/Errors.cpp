//===- support/Errors.cpp -------------------------------------------------===//

#include "support/Errors.h"

#include <cstdio>
#include <cstdlib>

using namespace lcdfg;

void lcdfg::reportFatalError(std::string_view Msg) {
  std::fprintf(stderr, "lcdfg fatal error: %.*s\n",
               static_cast<int>(Msg.size()), Msg.data());
  std::abort();
}

void lcdfg::unreachableInternal(const char *Msg, const char *File,
                                unsigned Line) {
  std::fprintf(stderr, "lcdfg unreachable at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
