//===- support/Errors.h - Fatal error reporting -----------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fatal-error and unreachable helpers. The library does not use
/// exceptions; unrecoverable conditions abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SUPPORT_ERRORS_H
#define LCDFG_SUPPORT_ERRORS_H

#include <string_view>

namespace lcdfg {

/// Prints \p Msg to stderr and aborts. Used for conditions that indicate a
/// programming error or an unsupported input that cannot be recovered from.
[[noreturn]] void reportFatalError(std::string_view Msg);

/// Marks a point in code that should never be reached.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace lcdfg

#define LCDFG_UNREACHABLE(msg)                                                 \
  ::lcdfg::unreachableInternal(msg, __FILE__, __LINE__)

#endif // LCDFG_SUPPORT_ERRORS_H
