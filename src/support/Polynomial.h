//===- support/Polynomial.h - Symbolic cardinality polynomials --*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Univariate integer polynomials in the box-size parameter N. The paper
/// labels value nodes with symbolic cardinalities such as N^2+4N and the cost
/// model sums such terms (e.g. S_R = 30N^2+56N in Figure 3). This class
/// provides exact arithmetic on those labels.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SUPPORT_POLYNOMIAL_H
#define LCDFG_SUPPORT_POLYNOMIAL_H

#include <cstdint>
#include <string>
#include <vector>

namespace lcdfg {

/// An integer polynomial in a single symbolic parameter (canonically "N").
///
/// Coefficients are stored dense, lowest degree first. The zero polynomial
/// has an empty coefficient vector. All arithmetic is exact over int64.
class Polynomial {
public:
  /// Constructs the zero polynomial.
  Polynomial() = default;

  /// Constructs a constant polynomial.
  /*implicit*/ Polynomial(std::int64_t Constant);

  /// Returns c * N^degree.
  static Polynomial term(std::int64_t Coeff, unsigned Degree);

  /// Returns the polynomial N.
  static Polynomial symbol();

  /// Returns the coefficient of N^Degree (0 when absent).
  std::int64_t coeff(unsigned Degree) const;

  /// Degree of the polynomial; the zero polynomial has degree 0.
  unsigned degree() const;

  bool isZero() const { return Coeffs.empty(); }

  /// True when the polynomial is a constant (degree 0), including zero.
  bool isConstant() const { return Coeffs.size() <= 1; }

  /// Evaluates at a concrete parameter value.
  std::int64_t evaluate(std::int64_t N) const;

  Polynomial operator+(const Polynomial &RHS) const;
  Polynomial operator-(const Polynomial &RHS) const;
  Polynomial operator*(const Polynomial &RHS) const;
  Polynomial operator-() const;
  Polynomial &operator+=(const Polynomial &RHS);
  Polynomial &operator-=(const Polynomial &RHS);
  Polynomial &operator*=(const Polynomial &RHS);

  bool operator==(const Polynomial &RHS) const { return Coeffs == RHS.Coeffs; }
  bool operator!=(const Polynomial &RHS) const { return !(*this == RHS); }

  /// Asymptotic comparison: true when this < RHS for all sufficiently large
  /// N. Equal polynomials compare false both ways.
  bool asymptoticallyLess(const Polynomial &RHS) const;

  /// Pointwise maximum does not exist for polynomials in general; this
  /// returns the asymptotically larger of the two (ties return *this).
  static Polynomial asymptoticMax(const Polynomial &A, const Polynomial &B);

  /// Renders e.g. "30N^2+56N", "2N", "N^2+4N+1", "0".
  std::string toString(std::string_view Symbol = "N") const;

private:
  void trim();

  std::vector<std::int64_t> Coeffs;
};

} // namespace lcdfg

#endif // LCDFG_SUPPORT_POLYNOMIAL_H
