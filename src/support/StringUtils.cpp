//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace lcdfg;

std::string_view lcdfg::trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

std::vector<std::string> lcdfg::split(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  std::size_t Start = 0;
  for (std::size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Parts.emplace_back(trim(S.substr(Start, I - Start)));
      Start = I + 1;
    }
  }
  return Parts;
}

std::vector<std::string> lcdfg::splitTopLevel(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  int Depth = 0;
  std::size_t Start = 0;
  for (std::size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || (S[I] == Sep && Depth == 0)) {
      std::string_view Piece = trim(S.substr(Start, I - Start));
      if (!Piece.empty())
        Parts.emplace_back(Piece);
      Start = I + 1;
      continue;
    }
    char C = S[I];
    if (C == '(' || C == '{' || C == '[')
      ++Depth;
    else if (C == ')' || C == '}' || C == ']')
      --Depth;
  }
  return Parts;
}

bool lcdfg::startsWith(std::string_view S, std::string_view Prefix) {
  return S.substr(0, Prefix.size()) == Prefix;
}

bool lcdfg::consumePrefix(std::string_view &S, std::string_view Prefix) {
  std::string_view T = trim(S);
  if (!startsWith(T, Prefix))
    return false;
  S = T.substr(Prefix.size());
  return true;
}
