//===- support/Polynomial.cpp ---------------------------------------------===//

#include "support/Polynomial.h"

#include <cassert>
#include <sstream>

using namespace lcdfg;

Polynomial::Polynomial(std::int64_t Constant) {
  if (Constant != 0)
    Coeffs.push_back(Constant);
}

Polynomial Polynomial::term(std::int64_t Coeff, unsigned Degree) {
  Polynomial P;
  if (Coeff == 0)
    return P;
  P.Coeffs.assign(Degree + 1, 0);
  P.Coeffs[Degree] = Coeff;
  return P;
}

Polynomial Polynomial::symbol() { return term(1, 1); }

std::int64_t Polynomial::coeff(unsigned Degree) const {
  return Degree < Coeffs.size() ? Coeffs[Degree] : 0;
}

unsigned Polynomial::degree() const {
  return Coeffs.empty() ? 0 : static_cast<unsigned>(Coeffs.size() - 1);
}

std::int64_t Polynomial::evaluate(std::int64_t N) const {
  std::int64_t Result = 0;
  for (auto It = Coeffs.rbegin(), E = Coeffs.rend(); It != E; ++It)
    Result = Result * N + *It;
  return Result;
}

void Polynomial::trim() {
  while (!Coeffs.empty() && Coeffs.back() == 0)
    Coeffs.pop_back();
}

Polynomial Polynomial::operator+(const Polynomial &RHS) const {
  Polynomial Result = *this;
  Result += RHS;
  return Result;
}

Polynomial &Polynomial::operator+=(const Polynomial &RHS) {
  if (Coeffs.size() < RHS.Coeffs.size())
    Coeffs.resize(RHS.Coeffs.size(), 0);
  for (std::size_t I = 0; I < RHS.Coeffs.size(); ++I)
    Coeffs[I] += RHS.Coeffs[I];
  trim();
  return *this;
}

Polynomial Polynomial::operator-() const {
  Polynomial Result = *this;
  for (auto &C : Result.Coeffs)
    C = -C;
  return Result;
}

Polynomial Polynomial::operator-(const Polynomial &RHS) const {
  return *this + (-RHS);
}

Polynomial &Polynomial::operator-=(const Polynomial &RHS) {
  *this += -RHS;
  return *this;
}

Polynomial Polynomial::operator*(const Polynomial &RHS) const {
  if (Coeffs.empty() || RHS.Coeffs.empty())
    return Polynomial();
  Polynomial Result;
  Result.Coeffs.assign(Coeffs.size() + RHS.Coeffs.size() - 1, 0);
  for (std::size_t I = 0; I < Coeffs.size(); ++I)
    for (std::size_t J = 0; J < RHS.Coeffs.size(); ++J)
      Result.Coeffs[I + J] += Coeffs[I] * RHS.Coeffs[J];
  Result.trim();
  return Result;
}

Polynomial &Polynomial::operator*=(const Polynomial &RHS) {
  *this = *this * RHS;
  return *this;
}

bool Polynomial::asymptoticallyLess(const Polynomial &RHS) const {
  // Compare the difference's leading coefficient.
  Polynomial Diff = RHS - *this;
  if (Diff.Coeffs.empty())
    return false;
  return Diff.Coeffs.back() > 0;
}

Polynomial Polynomial::asymptoticMax(const Polynomial &A, const Polynomial &B) {
  return A.asymptoticallyLess(B) ? B : A;
}

std::string Polynomial::toString(std::string_view Symbol) const {
  if (Coeffs.empty())
    return "0";
  std::ostringstream OS;
  bool First = true;
  for (std::size_t I = Coeffs.size(); I-- > 0;) {
    std::int64_t C = Coeffs[I];
    if (C == 0)
      continue;
    if (!First)
      OS << (C > 0 ? "+" : "-");
    else if (C < 0)
      OS << "-";
    std::int64_t Abs = C < 0 ? -C : C;
    if (I == 0) {
      OS << Abs;
    } else {
      if (Abs != 1)
        OS << Abs;
      OS << Symbol;
      if (I > 1)
        OS << "^" << I;
    }
    First = false;
  }
  return OS.str();
}
