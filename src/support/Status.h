//===- support/Status.h - Recoverable structured errors ---------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable-error vocabulary of the fail-operational execution
/// layer. Historically every illegal input and internal inconsistency
/// funneled into reportFatalError()/std::abort(); the types here carry the
/// same information as a value instead, so hostile inputs (malformed
/// pragmas, unprovable row-batch caps, verifier-flagged plans, truncated
/// storage) surface as diagnostics the caller can act on — retry down the
/// degradation ladder, reject one configuration of a sweep, or print a
/// structured error — rather than killing the process.
///
///  * Status: success or an ErrorCode plus a message and a context chain
///    ("while lowering nest S2" / "while building storage plan").
///  * Expected<T>: a T or a Status. expect() unwraps or aborts with the
///    full chain, preserving the old fatal behaviour at call sites that
///    genuinely cannot recover.
///  * StatusError: the exception carrier used inside deep call stacks
///    (plan lowering, storage resolution) where threading Expected through
///    every helper would obscure the algorithm. Public tryX() entry points
///    catch it at the module boundary and return Expected; the runner's
///    scheduler already propagates worker exceptions, so injected faults
///    ride the same rails.
///
/// Error codes are stable strings (E0xx) like the verifier's check ids and
/// the runner's ladder reason codes; tests and CI match on them.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SUPPORT_STATUS_H
#define LCDFG_SUPPORT_STATUS_H

#include <exception>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lcdfg {
namespace support {

/// Stable error categories. The printed form is code().str(), e.g.
/// "E001-parse"; docs/ROBUSTNESS.md documents each.
enum class ErrorCode {
  None = 0,
  Parse,             ///< E001: pragma/script text rejected.
  InvalidChain,      ///< E002: malformed LoopChain (empty stencil, ...).
  UnknownArray,      ///< E003: array name not declared/known.
  GraphInvalid,      ///< E004: M2DFG invariant broken.
  IllegalTransform,  ///< E005: reschedule/fusion precondition failed.
  TilingInvalid,     ///< E006: tiling precondition failed.
  StorageInvalid,    ///< E007: storage plan/extent inconsistency.
  PlanInvalid,       ///< E008: execution plan inconsistency (incl. a plan
                     ///  that does not fit its concrete storage).
  KernelMissing,     ///< E009: unknown kernel id / missing body.
  DependenceCycle,   ///< E010: task graph is not a DAG.
  VerifierRejected,  ///< E011: static verifier flagged the plan (strict).
  FaultInjected,     ///< E012: a FaultInjector-armed fault fired.
  GuardTripped,      ///< E013: hardened-mode redzone/NaN guard tripped.
  Exhausted,         ///< E014: every degradation rung failed.
  Internal,          ///< E015: internal inconsistency (bug).
  MemBudgetInfeasible, ///< E016: live-temporary budget cannot admit the
                       ///  plan (a single task exceeds it, or the
                       ///  scheduler wedged with only over-budget tasks).
  JitUnavailable,    ///< E017: segment-kernel JIT cannot compile or load
                     ///  (no host compiler, cache dir unwritable, dlopen
                     ///  failure). Always recoverable: the ladder falls
                     ///  back to the interpreted batched path (L008).
  PeerLost,          ///< E018: a shard peer process died mid-protocol
                     ///  (EOF/reset on its channel, or the coordinator
                     ///  reaped the child). Recoverable: the coordinator
                     ///  restores the pre-step snapshot and re-runs
                     ///  single-process (L009).
  ExchangeTimeout,   ///< E019: a ghost exchange missed its deadline
                     ///  (LCDFG_SHARD_TIMEOUT_MS) after bounded resend
                     ///  retries, or every retransmit of a frame arrived
                     ///  truncated/corrupt. Recoverable like E018 (L009).
  Protocol,          ///< E020: a serve-protocol framing violation — an
                     ///  oversized or unterminated request line, text that
                     ///  is not a JSON object, a field of the wrong type,
                     ///  an unknown command, or a response the client
                     ///  could not parse back. Always scoped to the one
                     ///  request (or connection) that violated the
                     ///  grammar; the daemon keeps serving.
};

/// Stable "E0xx-name" string for \p Code.
std::string_view errorCodeName(ErrorCode Code);

/// Success, or an error code with a message and a context chain. Contexts
/// are appended outermost-last via withContext(), so the rendered form
/// reads innermost-first: "E007-storage: array without extent: A (while
/// building storage plan) (while compiling fig1:original)".
class [[nodiscard]] Status {
public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(ErrorCode Code, std::string Msg) {
    Status S;
    S.Code = Code;
    S.Msg = std::move(Msg);
    return S;
  }

  bool isOk() const { return Code == ErrorCode::None; }
  explicit operator bool() const { return isOk(); }

  ErrorCode code() const { return Code; }
  const std::string &message() const { return Msg; }
  const std::string &subcode() const { return Sub; }
  const std::vector<std::string> &contexts() const { return Chain; }

  /// Appends one context frame (no-op on success).
  Status &withContext(std::string Frame) {
    if (!isOk())
      Chain.push_back(std::move(Frame));
    return *this;
  }

  /// Attaches a stable machine-readable discriminator within an error
  /// code (e.g. which of the E013 guards tripped), so callers classify
  /// structurally instead of matching message text (no-op on success).
  Status &withSubcode(std::string Subcode) {
    if (!isOk())
      Sub = std::move(Subcode);
    return *this;
  }

  /// "E00x-name: message (while ...) (while ...)", or "ok".
  std::string toString() const;
  /// {"code":"E00x-name","message":"...","context":["...",...]} — the
  /// shape lcdfg-lint --json and the run report embed. A non-empty
  /// subcode is emitted as "subcode":"...".
  std::string toJson() const;

  /// Aborts via reportFatalError with the rendered chain when this is an
  /// error; for call sites that cannot recover (the pre-Status behaviour).
  void expectOk(std::string_view What) const;

private:
  ErrorCode Code = ErrorCode::None;
  std::string Msg;
  std::string Sub;
  std::vector<std::string> Chain;
};

/// The exception carrier for deep call stacks. Module-boundary tryX()
/// functions catch it and return the Status as a value; tools catch it at
/// main() and print a structured diagnostic.
class StatusError : public std::exception {
public:
  explicit StatusError(Status S) : S(std::move(S)), Rendered(this->S.toString()) {}
  const Status &status() const { return S; }
  const char *what() const noexcept override { return Rendered.c_str(); }

private:
  Status S;
  std::string Rendered;
};

/// Throws StatusError{Code, Msg}. The replacement for reportFatalError at
/// every recoverable site.
[[noreturn]] void raise(ErrorCode Code, std::string Msg);

/// A T or a Status (never both). Modeled on llvm::Expected, minus the
/// must-check machinery: checking is enforced socially by the [[nodiscard]]
/// and by expect(), which converts an unhandled error into the old fatal
/// abort (with the full context chain) instead of undefined behaviour.
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T Value) : Val(std::move(Value)) {}
  Expected(Status Err) : Err(std::move(Err)) {
    if (this->Err.isOk())
      this->Err = Status::error(ErrorCode::Internal,
                                "Expected constructed from an ok Status");
  }

  bool hasValue() const { return Val.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &value() & { return *Val; }
  const T &value() const & { return *Val; }
  T &&value() && { return std::move(*Val); }
  T &operator*() & { return *Val; }
  const T &operator*() const & { return *Val; }
  T *operator->() { return &*Val; }
  const T *operator->() const { return &*Val; }

  const Status &error() const { return Err; }
  Status takeError() { return std::move(Err); }

  /// Unwraps, aborting with the context chain on error (the pre-Status
  /// fatal behaviour for callers that cannot recover).
  T expect(std::string_view What) && {
    Err.expectOk(What);
    return std::move(*Val);
  }

private:
  std::optional<T> Val;
  Status Err;
};

/// Runs \p Fn (returning T), converting a thrown StatusError into an
/// Expected error. The standard module-boundary adapter:
///   return support::tryInvoke([&] { return fromAstImpl(...); });
template <typename Fn> auto tryInvoke(Fn &&F) -> Expected<decltype(F())> {
  try {
    return std::forward<Fn>(F)();
  } catch (const StatusError &E) {
    return E.status();
  }
}

} // namespace support
} // namespace lcdfg

#endif // LCDFG_SUPPORT_STATUS_H
