//===- minifluxdiv/Verify.h - Cross-variant result checking -----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks that every schedule variant computes the same result as the
/// series-of-loops reference on randomized boxes. Schedule and storage
/// transformations must be semantics-preserving; this is the library's
/// end-to-end correctness gate.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_MINIFLUXDIV_VERIFY_H
#define LCDFG_MINIFLUXDIV_VERIFY_H

#include "minifluxdiv/Variants.h"

#include <string>

namespace lcdfg {
namespace mfd {

/// Result of verifying one variant.
struct VerifyResult {
  Variant V = Variant::SeriesSA;
  double MaxRelDiff = 0.0;
  bool Pass = false;
};

/// Runs \p V and the reference on fresh pseudo-random inputs of shape \p P
/// and compares interiors. \p Tolerance bounds the accepted relative
/// difference (reassociation across variants produces rounding-level
/// deviations).
VerifyResult verifyVariant(Variant V, const Problem &P,
                           double Tolerance = 1e-12,
                           std::uint64_t Seed = 0x5eed);

/// Verifies every variant; returns true when all pass and appends a
/// human-readable report to \p Report.
bool verifyAll(const Problem &P, std::string &Report,
               double Tolerance = 1e-12);

} // namespace mfd
} // namespace lcdfg

#endif // LCDFG_MINIFLUXDIV_VERIFY_H
