//===- minifluxdiv/Verify.cpp ---------------------------------------------===//

#include "minifluxdiv/Verify.h"

#include <sstream>

using namespace lcdfg;
using namespace lcdfg::mfd;

VerifyResult mfd::verifyVariant(Variant V, const Problem &P, double Tolerance,
                                std::uint64_t Seed) {
  std::vector<rt::Box> In = makeInputs(P, Seed);
  std::vector<rt::Box> Ref = makeOutputs(P);
  std::vector<rt::Box> Got = makeOutputs(P);

  RunConfig Cfg;
  Cfg.Threads = 1;
  runVariant(Variant::SeriesReduced, In, Ref, Cfg);
  runVariant(V, In, Got, Cfg);

  VerifyResult R;
  R.V = V;
  for (std::size_t I = 0; I < In.size(); ++I)
    R.MaxRelDiff = std::max(R.MaxRelDiff, rt::maxRelDiff(Ref[I], Got[I]));
  R.Pass = R.MaxRelDiff <= Tolerance;
  return R;
}

bool mfd::verifyAll(const Problem &P, std::string &Report, double Tolerance) {
  std::ostringstream OS;
  bool AllPass = true;
  for (Variant V : allVariants()) {
    VerifyResult R = verifyVariant(V, P, Tolerance);
    OS << variantName(V) << ": max rel diff " << R.MaxRelDiff
       << (R.Pass ? " PASS" : " FAIL") << "\n";
    AllPass &= R.Pass;
  }
  Report += OS.str();
  return AllPass;
}
