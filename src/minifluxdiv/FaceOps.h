//===- minifluxdiv/FaceOps.h - Shared flux kernel helpers -------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Building blocks shared by the MiniFluxDiv schedule variants and the
/// Halide-/PolyMage-style comparators: face-indexed scratch buffers and the
/// three stage kernels (partial flux, complete flux, flux difference).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_MINIFLUXDIV_FACEOPS_H
#define LCDFG_MINIFLUXDIV_FACEOPS_H

#include "minifluxdiv/Spec.h"
#include "minifluxdiv/Variants.h"
#include "runtime/BoxGrid.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace lcdfg {
namespace mfd {

inline constexpr int DirX = 0;
inline constexpr int DirY = 1;
inline constexpr int DirZ = 2;
inline constexpr int VelOfDir[3] = {CompU, CompV, CompW};

/// Fourth-order face interpolation at the face addressed by \p P with
/// stride \p S along the face direction: the face sits between cells P[-S]
/// and P[0].
inline double f1At(const double *P, std::int64_t S) {
  return FluxC1 * (P[-S] + P[0]) - FluxC2 * (P[-2 * S] + P[S]);
}

/// A 3D scratch buffer with an arbitrary integer origin; used for face
/// arrays, tile-local temporaries, and carry planes.
struct Buf3 {
  std::vector<double> Data;
  int Nz = 0, Ny = 0, Nx = 0;
  int Z0 = 0, Y0 = 0, X0 = 0;

  /// Reshapes the buffer. Contents are NOT zeroed: every producer stage
  /// fully overwrites its extent, and reusing capacity across boxes/tiles
  /// is what keeps the per-box temporaries allocation-free.
  void resize(int NewZ0, int NewY0, int NewX0, int NewNz, int NewNy,
              int NewNx) {
    Z0 = NewZ0;
    Y0 = NewY0;
    X0 = NewX0;
    Nz = NewNz;
    Ny = NewNy;
    Nx = NewNx;
    std::size_t Needed = static_cast<std::size_t>(Nz) * Ny * Nx;
    if (Data.size() < Needed)
      Data.resize(Needed);
  }

  /// Matches another buffer's shape without preserving contents.
  void resizeLike(const Buf3 &Other) {
    resize(Other.Z0, Other.Y0, Other.X0, Other.Nz, Other.Ny, Other.Nx);
  }

  double &at(int Z, int Y, int X) {
    return Data[(static_cast<std::size_t>(Z - Z0) * Ny + (Y - Y0)) * Nx +
                (X - X0)];
  }
  const double &at(int Z, int Y, int X) const {
    return const_cast<Buf3 *>(this)->at(Z, Y, X);
  }
};

/// Per-thread pool of reusable scratch buffers. Schedule variants address
/// slots positionally; distinct slots model distinct (single-assignment)
/// value sets while slot reuse models the storage-reduced mappings. The
/// pool persists across boxes and tiles, so steady-state execution does no
/// allocation — matching the hand-optimized baselines the paper measures.
inline Buf3 &scratchBuf(unsigned Slot) {
  // The deque keeps element addresses stable while the pool grows, so
  // callers may hold several slot references at once.
  static thread_local std::deque<Buf3> Pool;
  while (Slot >= Pool.size())
    Pool.emplace_back();
  return Pool[Slot];
}

/// Sizes \p B as the face array of direction \p Dir over the cell region
/// starting at (Z0, Y0, X0) with extents (Nz, Ny, Nx): the face dimension
/// gains one entry.
inline void resizeFaceBuf(Buf3 &B, int Dir, int Z0, int Y0, int X0, int Nz,
                          int Ny, int Nx) {
  B.resize(Z0, Y0, X0, Nz + (Dir == DirZ ? 1 : 0), Ny + (Dir == DirY ? 1 : 0),
           Nx + (Dir == DirX ? 1 : 0));
}

/// Computes the partial flux F1 of component \p C over \p B's extent.
inline void computeF1(const rt::Box &In, int C, int Dir, Buf3 &B) {
  const double *P = In.origin(C);
  std::int64_t SZ = In.strideZ(), SY = In.strideY();
  std::int64_t FS = Dir == DirX ? 1 : Dir == DirY ? SY : SZ;
  for (int Z = B.Z0; Z < B.Z0 + B.Nz; ++Z)
    for (int Y = B.Y0; Y < B.Y0 + B.Ny; ++Y) {
      const double *Row = P + Z * SZ + Y * SY;
      for (int X = B.X0; X < B.X0 + B.Nx; ++X)
        B.at(Z, Y, X) = f1At(Row + X, FS);
    }
}

/// Completes the flux: F2 = F1 * F1_vel pointwise over \p F1Buf's extent.
/// \p Vel must cover that extent.
inline void computeF2(const Buf3 &F1Buf, const Buf3 &Vel, Buf3 &F2Buf) {
  F2Buf.resizeLike(F1Buf);
  for (int Z = F2Buf.Z0; Z < F2Buf.Z0 + F2Buf.Nz; ++Z)
    for (int Y = F2Buf.Y0; Y < F2Buf.Y0 + F2Buf.Ny; ++Y)
      for (int X = F2Buf.X0; X < F2Buf.X0 + F2Buf.Nx; ++X)
        F2Buf.at(Z, Y, X) = F1Buf.at(Z, Y, X) * Vel.at(Z, Y, X);
}

/// Accumulates the flux difference of direction \p Dir into \p Out over the
/// cell region [Z0,Z1) x [Y0,Y1) x [X0,X1).
inline void accumulateDiff(rt::Box &Out, int C, int Dir, const Buf3 &F2,
                           int Z0, int Z1, int Y0, int Y1, int X0, int X1) {
  int DZ = Dir == DirZ, DY = Dir == DirY, DX = Dir == DirX;
  for (int Z = Z0; Z < Z1; ++Z)
    for (int Y = Y0; Y < Y1; ++Y)
      for (int X = X0; X < X1; ++X)
        Out.at(C, Z, Y, X) += DiffScale * (F2.at(Z + DZ, Y + DY, X + DX) -
                                           F2.at(Z, Y, X));
}

} // namespace mfd
} // namespace lcdfg

#endif // LCDFG_MINIFLUXDIV_FACEOPS_H
