//===- minifluxdiv/Variants.h - Benchmark schedule variants -----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-coded 3D MiniFluxDiv implementations of Section 5.2, one per
/// schedule variant developed with the M2DFGs:
///
///   * series of loops, single-assignment and storage-reduced (baseline);
///   * fuse among directions (single-assignment only — no storage
///     reduction opportunities, Figure 7);
///   * fuse within directions, SA and reduced (Figure 8);
///   * fuse all levels, SA and reduced (Figure 9);
///   * overlapped tiling, fusion-within-tiles (intra-tile fuse-all) and
///     fusion-of-tiles (tile-then-fuse, the Halide/PolyMage shape).
///
/// Every variant computes the same result (see Verify.h); they differ in
/// schedule and temporary-storage traffic exactly as the graphs predict.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_MINIFLUXDIV_VARIANTS_H
#define LCDFG_MINIFLUXDIV_VARIANTS_H

#include "exec/PlanRunner.h"
#include "runtime/BoxGrid.h"

#include <string>
#include <vector>

namespace lcdfg {
namespace mfd {

/// Component indices: density, three velocities, energy.
inline constexpr int CompRho = 0;
inline constexpr int CompU = 1;
inline constexpr int CompV = 2;
inline constexpr int CompW = 3;
inline constexpr int CompE = 4;
inline constexpr int NumComps = 5;
inline constexpr int GhostDepth = 2;

/// The schedule variants of Section 5.2.
enum class Variant {
  SeriesSA,
  SeriesReduced,
  FuseAmongSA,
  FuseWithinSA,
  FuseWithinReduced,
  FuseAllSA,
  FuseAllReduced,
  OverlapWithinTiles,
  OverlapOfTiles,
};

/// Short display name, e.g. "fuseAll-reduced".
const char *variantName(Variant V);

/// All variants, in presentation order.
const std::vector<Variant> &allVariants();

/// Execution configuration for a run.
struct RunConfig {
  int Threads = 1;
  /// Tile edge (y and z) for the overlapped-tiling variants; 0 picks a
  /// cache-friendly default.
  int TileSize = 0;
  /// Parallelize over boxes (the default) or within boxes over tiles
  /// (the only choice available to the Halide/PolyMage comparators).
  bool ParallelOverBoxes = true;
  /// Task-graph strategy the box/tile plans run under — the fig6 benches
  /// sweep both to compare schedulers head-to-head.
  exec::SchedulerKind Scheduler = exec::SchedulerKind::List;
};

/// Problem shape: boxes of BoxSize^3 cells.
struct Problem {
  int BoxSize = 16;
  int NumBoxes = 8;

  /// Total cells across boxes.
  long totalCells() const {
    return static_cast<long>(NumBoxes) * BoxSize * BoxSize * BoxSize;
  }

  /// The paper's small-box configuration (16^3), scaled by \p TotalCells.
  static Problem smallBoxes(long TotalCells);
  /// The paper's large-box configuration (128^3 in the paper; 64^3 here by
  /// default to fit the container), scaled by \p TotalCells.
  static Problem largeBoxes(long TotalCells, int BoxSize = 64);
};

/// Allocates and deterministically fills the input boxes.
std::vector<rt::Box> makeInputs(const Problem &P, std::uint64_t Seed);

/// Allocates zeroed output boxes matching \p P (no ghost cells needed, but
/// the same shape is used for simplicity).
std::vector<rt::Box> makeOutputs(const Problem &P);

/// Runs one variant over all boxes: each output box is initialized from its
/// input's interior and updated with the flux differences of all three
/// directions. When \p Stats is non-null and the parallel-over-boxes plan
/// path ran, the plan's runtime measurements (per-worker busy time, idle
/// shares) are copied out for scheduler comparisons.
void runVariant(Variant V, const std::vector<rt::Box> &In,
                std::vector<rt::Box> &Out, const RunConfig &Cfg,
                exec::PlanStats *Stats = nullptr);

/// Approximate peak temporary storage in doubles per concurrently-processed
/// box for a variant (the quantity Figure 10 ties to performance).
long temporaryElements(Variant V, int BoxSize, int TileSize = 0);

} // namespace mfd
} // namespace lcdfg

#endif // LCDFG_MINIFLUXDIV_VARIANTS_H
