//===- minifluxdiv/Variants.cpp -------------------------------------------===//

#include "minifluxdiv/Variants.h"

#include "exec/ExecutionPlan.h"
#include "exec/PlanRunner.h"
#include "minifluxdiv/FaceOps.h"
#include "minifluxdiv/Spec.h"
#include "support/Errors.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

using namespace lcdfg;
using namespace lcdfg::mfd;
using rt::Box;

namespace {

constexpr const int *VelComp = VelOfDir;

//===----------------------------------------------------------------------===//
// Series of loops (Figure 3)
//===----------------------------------------------------------------------===//

void seriesBox(const Box &In, Box &Out, bool SingleAssignment) {
  int N = In.size();
  Out.copyInteriorFrom(In);

  // Storage-reduced: one F1 and one F2 buffer set reused across the three
  // directions (ten slots). Single-assignment: distinct slots per
  // direction, so all thirty value sets are resident (the SSA footprint of
  // Figure 3).
  for (int Dir = 0; Dir < 3; ++Dir) {
    unsigned Base = SingleAssignment ? 2u * NumComps * Dir : 0u;
    for (int C = 0; C < NumComps; ++C) {
      Buf3 &F1 = scratchBuf(Base + C);
      resizeFaceBuf(F1, Dir, 0, 0, 0, N, N, N);
      computeF1(In, C, Dir, F1);
    }
    for (int C = 0; C < NumComps; ++C)
      computeF2(scratchBuf(Base + C), scratchBuf(Base + VelComp[Dir]),
                scratchBuf(Base + NumComps + C));
    for (int C = 0; C < NumComps; ++C)
      accumulateDiff(Out, C, Dir, scratchBuf(Base + NumComps + C), 0, N, 0,
                     N, 0, N);
  }
}

//===----------------------------------------------------------------------===//
// Fuse among directions (Figure 7)
//===----------------------------------------------------------------------===//

void fuseAmongBox(const Box &In, Box &Out) {
  int N = In.size();
  Out.copyInteriorFrom(In);

  // All fifteen F1 arrays with every input streamed once (read-reduction
  // fusion of Fx1/Fy1/Fz1 per component), then the fifteen F2 arrays, then
  // one output-locality-friendly difference sweep. The interior is
  // branch-free; the extra face planes are separate epilogue loops.
  auto F1 = [](int Dir, int C) -> Buf3 & {
    return scratchBuf(Dir * NumComps + C);
  };
  auto F2 = [](int Dir, int C) -> Buf3 & {
    return scratchBuf(3 * NumComps + Dir * NumComps + C);
  };
  for (int Dir = 0; Dir < 3; ++Dir)
    for (int C = 0; C < NumComps; ++C) {
      resizeFaceBuf(F1(Dir, C), Dir, 0, 0, 0, N, N, N);
      resizeFaceBuf(F2(Dir, C), Dir, 0, 0, 0, N, N, N);
    }

  const std::int64_t SZ = In.strideZ(), SY = In.strideY();
  for (int C = 0; C < NumComps; ++C) {
    Buf3 &FX = F1(DirX, C), &FY = F1(DirY, C), &FZ = F1(DirZ, C);
    const double *Base = In.origin(C);
    for (int Z = 0; Z < N; ++Z) {
      for (int Y = 0; Y < N; ++Y) {
        const double *P = Base + Z * SZ + Y * SY;
        for (int X = 0; X < N; ++X) {
          FX.at(Z, Y, X) = f1At(P + X, 1);
          FY.at(Z, Y, X) = f1At(P + X, SY);
          FZ.at(Z, Y, X) = f1At(P + X, SZ);
        }
        FX.at(Z, Y, N) = f1At(P + N, 1);
      }
      const double *PY = Base + Z * SZ + static_cast<std::int64_t>(N) * SY;
      for (int X = 0; X < N; ++X)
        FY.at(Z, N, X) = f1At(PY + X, SY);
    }
    for (int Y = 0; Y < N; ++Y) {
      const double *PZ = Base + static_cast<std::int64_t>(N) * SZ + Y * SY;
      for (int X = 0; X < N; ++X)
        FZ.at(N, Y, X) = f1At(PZ + X, SZ);
    }
  }

  for (int Dir = 0; Dir < 3; ++Dir)
    for (int C = 0; C < NumComps; ++C)
      computeF2(F1(Dir, C), F1(Dir, VelComp[Dir]), F2(Dir, C));

  for (int C = 0; C < NumComps; ++C) {
    const Buf3 &FX = F2(DirX, C), &FY = F2(DirY, C), &FZ = F2(DirZ, C);
    for (int Z = 0; Z < N; ++Z)
      for (int Y = 0; Y < N; ++Y) {
        const double *RX = &FX.at(Z, Y, 0);
        const double *RY0 = &FY.at(Z, Y, 0), *RY1 = &FY.at(Z, Y + 1, 0);
        const double *RZ0 = &FZ.at(Z, Y, 0), *RZ1 = &FZ.at(Z + 1, Y, 0);
        double *OutRow = &Out.at(C, Z, Y, 0);
        for (int X = 0; X < N; ++X)
          OutRow[X] += DiffScale * ((RX[X + 1] - RX[X]) +
                                    (RY1[X] - RY0[X]) + (RZ1[X] - RZ0[X]));
      }
  }
}

//===----------------------------------------------------------------------===//
// Fuse within directions (Figure 8)
//===----------------------------------------------------------------------===//

/// One direction's fused F1+F2+D sweep over the cell region
/// [z0,z1) x [y0,y1) x [x0,x1). The velocity face flux \p Vel must already
/// cover the region's faces. Reduced storage: carries sized by the reuse
/// distance (a scalar for x, a line for y, a plane for z), with the
/// trailing-face prologues hoisted out of the steady-state loops.
void fusedDirectionSweep(const Box &In, Box &Out, int Dir, const Buf3 &Vel,
                         int Z0, int Z1, int Y0, int Y1, int X0, int X1,
                         Buf3 &Carry) {
  const std::int64_t SZ = In.strideZ(), SY = In.strideY();

  if (Dir == DirX) {
    for (int Z = Z0; Z < Z1; ++Z)
      for (int Y = Y0; Y < Y1; ++Y)
        for (int C = 0; C < NumComps; ++C) {
          const double *P = In.origin(C) + Z * SZ + Y * SY;
          const double *VRow = &Vel.at(Z, Y, X0) - X0;
          double *OutRow = &Out.at(C, Z, Y, X0) - X0;
          double Prev = f1At(P + X0, 1) * VRow[X0];
          for (int X = X0; X < X1; ++X) {
            double Next = f1At(P + X + 1, 1) * VRow[X + 1];
            OutRow[X] += DiffScale * (Next - Prev);
            Prev = Next;
          }
        }
    return;
  }

  if (Dir == DirY) {
    // Carry line indexed (component, x), contiguous in x.
    Carry.resize(0, 0, X0, 1, NumComps, X1 - X0);
    for (int Z = Z0; Z < Z1; ++Z) {
      for (int C = 0; C < NumComps; ++C) {
        const double *P = In.origin(C) + Z * SZ + Y0 * SY;
        const double *VRow = &Vel.at(Z, Y0, X0) - X0;
        double *CRow = &Carry.at(0, C, X0) - X0;
        for (int X = X0; X < X1; ++X)
          CRow[X] = f1At(P + X, SY) * VRow[X];
      }
      for (int Y = Y0; Y < Y1; ++Y)
        for (int C = 0; C < NumComps; ++C) {
          const double *P = In.origin(C) + Z * SZ + (Y + 1) * SY;
          const double *VRow = &Vel.at(Z, Y + 1, X0) - X0;
          double *OutRow = &Out.at(C, Z, Y, X0) - X0;
          double *CRow = &Carry.at(0, C, X0) - X0;
          for (int X = X0; X < X1; ++X) {
            double Next = f1At(P + X, SY) * VRow[X];
            OutRow[X] += DiffScale * (Next - CRow[X]);
            CRow[X] = Next;
          }
        }
    }
    return;
  }

  // DirZ: carry plane indexed (y, component, x).
  Carry.resize(Y0, 0, X0, Y1 - Y0, NumComps, X1 - X0);
  for (int Y = Y0; Y < Y1; ++Y)
    for (int C = 0; C < NumComps; ++C) {
      const double *P = In.origin(C) + Z0 * SZ + Y * SY;
      const double *VRow = &Vel.at(Z0, Y, X0) - X0;
      double *CRow = &Carry.at(Y, C, X0) - X0;
      for (int X = X0; X < X1; ++X)
        CRow[X] = f1At(P + X, SZ) * VRow[X];
    }
  for (int Z = Z0; Z < Z1; ++Z)
    for (int Y = Y0; Y < Y1; ++Y)
      for (int C = 0; C < NumComps; ++C) {
        const double *P = In.origin(C) + (Z + 1) * SZ + Y * SY;
        const double *VRow = &Vel.at(Z + 1, Y, X0) - X0;
        double *OutRow = &Out.at(C, Z, Y, X0) - X0;
        double *CRow = &Carry.at(Y, C, X0) - X0;
        for (int X = X0; X < X1; ++X) {
          double Next = f1At(P + X, SZ) * VRow[X];
          OutRow[X] += DiffScale * (Next - CRow[X]);
          CRow[X] = Next;
        }
      }
}

/// Single-assignment flavor: the same fused iteration order as the
/// reduced sweep, but every F1/F2 value set is materialized in full
/// (scratch slots \p SlotBase .. \p SlotBase + 2*NumComps - 1).
void fusedDirectionSweepSA(const Box &In, Box &Out, int Dir, const Buf3 &Vel,
                           unsigned SlotBase) {
  int N = In.size();
  const std::int64_t SZ = In.strideZ(), SY = In.strideY();
  auto F1 = [&](int C) -> Buf3 & { return scratchBuf(SlotBase + C); };
  auto F2 = [&](int C) -> Buf3 & {
    return scratchBuf(SlotBase + NumComps + C);
  };
  for (int C = 0; C < NumComps; ++C) {
    resizeFaceBuf(F1(C), Dir, 0, 0, 0, N, N, N);
    resizeFaceBuf(F2(C), Dir, 0, 0, 0, N, N, N);
  }

  if (Dir == DirX) {
    for (int Z = 0; Z < N; ++Z)
      for (int Y = 0; Y < N; ++Y)
        for (int C = 0; C < NumComps; ++C) {
          const double *P = In.origin(C) + Z * SZ + Y * SY;
          const double *VRow = &Vel.at(Z, Y, 0);
          double *F1Row = &F1(C).at(Z, Y, 0);
          double *F2Row = &F2(C).at(Z, Y, 0);
          double *OutRow = &Out.at(C, Z, Y, 0);
          F1Row[0] = f1At(P, 1);
          F2Row[0] = F1Row[0] * VRow[0];
          for (int X = 0; X < N; ++X) {
            double F = f1At(P + X + 1, 1);
            F1Row[X + 1] = F;
            double G = F * VRow[X + 1];
            F2Row[X + 1] = G;
            OutRow[X] += DiffScale * (G - F2Row[X]);
          }
        }
    return;
  }

  if (Dir == DirY) {
    for (int Z = 0; Z < N; ++Z) {
      for (int C = 0; C < NumComps; ++C) {
        const double *P = In.origin(C) + Z * SZ;
        const double *VRow = &Vel.at(Z, 0, 0);
        double *F1Row = &F1(C).at(Z, 0, 0);
        double *F2Row = &F2(C).at(Z, 0, 0);
        for (int X = 0; X < N; ++X) {
          F1Row[X] = f1At(P + X, SY);
          F2Row[X] = F1Row[X] * VRow[X];
        }
      }
      for (int Y = 0; Y < N; ++Y)
        for (int C = 0; C < NumComps; ++C) {
          const double *P = In.origin(C) + Z * SZ + (Y + 1) * SY;
          const double *VRow = &Vel.at(Z, Y + 1, 0);
          double *F1Row = &F1(C).at(Z, Y + 1, 0);
          double *F2Row = &F2(C).at(Z, Y + 1, 0);
          const double *F2Prev = &F2(C).at(Z, Y, 0);
          double *OutRow = &Out.at(C, Z, Y, 0);
          for (int X = 0; X < N; ++X) {
            F1Row[X] = f1At(P + X, SY);
            double G = F1Row[X] * VRow[X];
            F2Row[X] = G;
            OutRow[X] += DiffScale * (G - F2Prev[X]);
          }
        }
    }
    return;
  }

  // DirZ.
  for (int Y = 0; Y < N; ++Y)
    for (int C = 0; C < NumComps; ++C) {
      const double *P = In.origin(C) + Y * SY;
      const double *VRow = &Vel.at(0, Y, 0);
      double *F1Row = &F1(C).at(0, Y, 0);
      double *F2Row = &F2(C).at(0, Y, 0);
      for (int X = 0; X < N; ++X) {
        F1Row[X] = f1At(P + X, SZ);
        F2Row[X] = F1Row[X] * VRow[X];
      }
    }
  for (int Z = 0; Z < N; ++Z)
    for (int Y = 0; Y < N; ++Y)
      for (int C = 0; C < NumComps; ++C) {
        const double *P = In.origin(C) + (Z + 1) * SZ + Y * SY;
        const double *VRow = &Vel.at(Z + 1, Y, 0);
        double *F1Row = &F1(C).at(Z + 1, Y, 0);
        double *F2Row = &F2(C).at(Z + 1, Y, 0);
        const double *F2Prev = &F2(C).at(Z, Y, 0);
        double *OutRow = &Out.at(C, Z, Y, 0);
        for (int X = 0; X < N; ++X) {
          F1Row[X] = f1At(P + X, SZ);
          double G = F1Row[X] * VRow[X];
          F2Row[X] = G;
          OutRow[X] += DiffScale * (G - F2Prev[X]);
        }
      }
}

void fuseWithinBox(const Box &In, Box &Out, bool SingleAssignment) {
  int N = In.size();
  Out.copyInteriorFrom(In);
  for (int Dir = 0; Dir < 3; ++Dir) {
    Buf3 &Vel = scratchBuf(30);
    resizeFaceBuf(Vel, Dir, 0, 0, 0, N, N, N);
    computeF1(In, VelComp[Dir], Dir, Vel);
    if (SingleAssignment) {
      fusedDirectionSweepSA(In, Out, Dir, Vel, 2u * NumComps * Dir);
    } else {
      fusedDirectionSweep(In, Out, Dir, Vel, 0, N, 0, N, 0, N,
                          scratchBuf(33));
    }
  }
}

//===----------------------------------------------------------------------===//
// Fuse all levels (Figure 9)
//===----------------------------------------------------------------------===//

/// The fully fused sweep over the cell region, all directions at once.
/// Velocity face fluxes must cover the region's faces; carries hold the
/// trailing x face (a register), y face (line), and z face (plane), with
/// all prologues hoisted so the steady-state inner loop is branch-free.
void fuseAllSweep(const Box &In, Box &Out, const Buf3 &U, const Buf3 &V,
                  const Buf3 &W, int Z0, int Z1, int Y0, int Y1, int X0,
                  int X1, Buf3 &CarryY, Buf3 &CarryZ) {
  const std::int64_t SZ = In.strideZ(), SY = In.strideY();
  // Carries indexed (row..., component, x): contiguous in x per sweep.
  CarryY.resize(0, 0, X0, 1, NumComps, X1 - X0);
  CarryZ.resize(Y0, 0, X0, Y1 - Y0, NumComps, X1 - X0);

  // Prologue: the trailing z faces of the whole region.
  for (int Y = Y0; Y < Y1; ++Y)
    for (int C = 0; C < NumComps; ++C) {
      const double *P = In.origin(C) + Z0 * SZ + Y * SY;
      for (int X = X0; X < X1; ++X)
        CarryZ.at(Y, C, X) = f1At(P + X, SZ) * W.at(Z0, Y, X);
    }

  for (int Z = Z0; Z < Z1; ++Z) {
    // Prologue: the trailing y faces of this plane.
    for (int C = 0; C < NumComps; ++C) {
      const double *P = In.origin(C) + Z * SZ + Y0 * SY;
      for (int X = X0; X < X1; ++X)
        CarryY.at(0, C, X) = f1At(P + X, SY) * V.at(Z, Y0, X);
    }
    for (int Y = Y0; Y < Y1; ++Y)
      for (int C = 0; C < NumComps; ++C) {
        const double *P = In.origin(C) + Z * SZ + Y * SY;
        const double *URow = &U.at(Z, Y, X0) - X0;
        const double *VRow = &V.at(Z, Y + 1, X0) - X0;
        const double *WRow = &W.at(Z + 1, Y, X0) - X0;
        double *OutRow = &Out.at(C, Z, Y, X0) - X0;
        double *YRow = &CarryY.at(0, C, X0) - X0;
        double *ZRow = &CarryZ.at(Y, C, X0) - X0;
        double PrevX = f1At(P + X0, 1) * URow[X0];
        for (int X = X0; X < X1; ++X) {
          double NX = f1At(P + X + 1, 1) * URow[X + 1];
          double NY = f1At(P + X + SY, SY) * VRow[X];
          double NZ = f1At(P + X + SZ, SZ) * WRow[X];
          OutRow[X] += DiffScale *
                       ((NX - PrevX) + (NY - YRow[X]) + (NZ - ZRow[X]));
          PrevX = NX;
          YRow[X] = NY;
          ZRow[X] = NZ;
        }
      }
  }
}

void fuseAllBox(const Box &In, Box &Out, bool SingleAssignment) {
  int N = In.size();
  Out.copyInteriorFrom(In);
  Buf3 &U = scratchBuf(30), &V = scratchBuf(31), &W = scratchBuf(32);
  resizeFaceBuf(U, DirX, 0, 0, 0, N, N, N);
  resizeFaceBuf(V, DirY, 0, 0, 0, N, N, N);
  resizeFaceBuf(W, DirZ, 0, 0, 0, N, N, N);
  computeF1(In, CompU, DirX, U);
  computeF1(In, CompV, DirY, V);
  computeF1(In, CompW, DirZ, W);

  if (!SingleAssignment) {
    fuseAllSweep(In, Out, U, V, W, 0, N, 0, N, 0, N, scratchBuf(33),
                 scratchBuf(34));
    return;
  }

  // Single-assignment: the same fused iteration order, but every F1/F2
  // value set is materialized in full.
  auto Slot = [](int Stage, int Dir, int C) -> Buf3 & {
    return scratchBuf(Stage * 3 * NumComps + Dir * NumComps + C);
  };
  std::vector<std::vector<Buf3 *>> F1(3), F2(3);
  for (int Dir = 0; Dir < 3; ++Dir)
    for (int C = 0; C < NumComps; ++C) {
      F1[Dir].push_back(&Slot(0, Dir, C));
      F2[Dir].push_back(&Slot(1, Dir, C));
      resizeFaceBuf(*F1[Dir][C], Dir, 0, 0, 0, N, N, N);
      resizeFaceBuf(*F2[Dir][C], Dir, 0, 0, 0, N, N, N);
    }
  const std::int64_t SZ = In.strideZ(), SY = In.strideY();
  const Buf3 *Vels[3] = {&U, &V, &W};
  for (int Z = 0; Z < N; ++Z)
    for (int Y = 0; Y < N; ++Y)
      for (int X = 0; X < N; ++X)
        for (int C = 0; C < NumComps; ++C) {
          const double *P = In.origin(C) + Z * SZ + Y * SY + X;
          int Cell[3] = {Z, Y, X};
          double Diff = 0.0;
          for (int Dir = 0; Dir < 3; ++Dir) {
            const std::int64_t FS = Dir == DirX ? 1
                                    : Dir == DirY ? SY
                                                  : SZ;
            int DZ = Dir == DirZ, DY = Dir == DirY, DX = Dir == DirX;
            bool Leading = Cell[2 - Dir] == 0;
            if (Leading) {
              F1[Dir][C]->at(Z, Y, X) = f1At(P, FS);
              F2[Dir][C]->at(Z, Y, X) =
                  F1[Dir][C]->at(Z, Y, X) * Vels[Dir]->at(Z, Y, X);
            }
            F1[Dir][C]->at(Z + DZ, Y + DY, X + DX) = f1At(P + FS, FS);
            F2[Dir][C]->at(Z + DZ, Y + DY, X + DX) =
                F1[Dir][C]->at(Z + DZ, Y + DY, X + DX) *
                Vels[Dir]->at(Z + DZ, Y + DY, X + DX);
            Diff += F2[Dir][C]->at(Z + DZ, Y + DY, X + DX) -
                    F2[Dir][C]->at(Z, Y, X);
          }
          Out.at(C, Z, Y, X) += DiffScale * Diff;
        }
}

//===----------------------------------------------------------------------===//
// Overlapped tiling (Section 4.3, Figure 5)
//===----------------------------------------------------------------------===//

int defaultTileSize(int N) { return N >= 32 ? 8 : 4; }

/// Fusion within tiles (Figure 5f): each (z, y) tile runs the fully fused
/// schedule with tile-local velocity face fluxes and reuse-distance
/// carries. Adjacent tiles recompute shared faces — the overlap. With
/// \p Threads > 1 the independent tiles run in parallel (the within-box
/// parallelization of Section 5.5).
void overlapWithinTilesBox(const Box &In, Box &Out, int TileSize, int Threads,
                           exec::SchedulerKind Scheduler) {
  int N = In.size();
  int T = TileSize > 0 ? TileSize : defaultTileSize(N);
  Out.copyInteriorFrom(In);
  int TilesZ = (N + T - 1) / T;
  int TilesY = (N + T - 1) / T;
  exec::ExecutionPlan Plan;
  for (int Tile = 0; Tile < TilesZ * TilesY; ++Tile)
    Plan.addExternalTask("owt-tile", [&In, &Out, N, T, TilesY, Tile](int) {
      int TZ = (Tile / TilesY) * T;
      int TY = (Tile % TilesY) * T;
      int Z1 = std::min(TZ + T, N), Y1 = std::min(TY + T, N);
      // Tile-local velocity face fluxes over exactly the faces this tile
      // touches (one extra face in the tiled dimensions: the overlap).
      // Scratch slots are thread-local, so tile-parallel execution is safe.
      Buf3 &U = scratchBuf(30), &V = scratchBuf(31), &W = scratchBuf(32);
      U.resize(TZ, TY, 0, Z1 - TZ, Y1 - TY, N + 1);
      V.resize(TZ, TY, 0, Z1 - TZ, Y1 - TY + 1, N);
      W.resize(TZ, TY, 0, Z1 - TZ + 1, Y1 - TY, N);
      computeF1(In, CompU, DirX, U);
      computeF1(In, CompV, DirY, V);
      computeF1(In, CompW, DirZ, W);
      fuseAllSweep(In, Out, U, V, W, TZ, Z1, TY, Y1, 0, N, scratchBuf(33),
                   scratchBuf(34));
    }, Tile);
  exec::RunOptions Opts;
  Opts.Threads = Threads;
  Opts.Scheduler = Scheduler;
  exec::runPlan(Plan, Opts);
}

/// Fusion of tiles (Figure 5c, the Halide/PolyMage shape): within each
/// tile every stage runs to completion over its expanded domain with
/// full-tile temporaries and vectorizable inner loops.
void overlapOfTilesBox(const Box &In, Box &Out, int TileSize) {
  int N = In.size();
  int T = TileSize > 0 ? TileSize : defaultTileSize(N);
  Out.copyInteriorFrom(In);
  auto F1 = [](int Dir, int C) -> Buf3 & {
    return scratchBuf(Dir * NumComps + C);
  };
  auto F2 = [](int Dir, int C) -> Buf3 & {
    return scratchBuf(3 * NumComps + Dir * NumComps + C);
  };
  for (int TZ = 0; TZ < N; TZ += T)
    for (int TY = 0; TY < N; TY += T) {
      int Z1 = std::min(TZ + T, N), Y1 = std::min(TY + T, N);
      for (int Dir = 0; Dir < 3; ++Dir) {
        for (int C = 0; C < NumComps; ++C) {
          resizeFaceBuf(F1(Dir, C), Dir, TZ, TY, 0, Z1 - TZ, Y1 - TY, N);
          computeF1(In, C, Dir, F1(Dir, C));
        }
        for (int C = 0; C < NumComps; ++C)
          computeF2(F1(Dir, C), F1(Dir, VelComp[Dir]), F2(Dir, C));
      }
      for (int Dir = 0; Dir < 3; ++Dir)
        for (int C = 0; C < NumComps; ++C)
          accumulateDiff(Out, C, Dir, F2(Dir, C), TZ, Z1, TY, Y1, 0, N);
    }
}

} // namespace

const char *mfd::variantName(Variant V) {
  switch (V) {
  case Variant::SeriesSA:
    return "series-SA";
  case Variant::SeriesReduced:
    return "series-reduced";
  case Variant::FuseAmongSA:
    return "fuseAmong-SA";
  case Variant::FuseWithinSA:
    return "fuseWithin-SA";
  case Variant::FuseWithinReduced:
    return "fuseWithin-reduced";
  case Variant::FuseAllSA:
    return "fuseAll-SA";
  case Variant::FuseAllReduced:
    return "fuseAll-reduced";
  case Variant::OverlapWithinTiles:
    return "overlap-fusionWithinTiles";
  case Variant::OverlapOfTiles:
    return "overlap-fusionOfTiles";
  }
  LCDFG_UNREACHABLE("covered switch");
}

const std::vector<Variant> &mfd::allVariants() {
  static const std::vector<Variant> All = {
      Variant::SeriesSA,          Variant::SeriesReduced,
      Variant::FuseAmongSA,       Variant::FuseWithinSA,
      Variant::FuseWithinReduced, Variant::FuseAllSA,
      Variant::FuseAllReduced,    Variant::OverlapWithinTiles,
      Variant::OverlapOfTiles};
  return All;
}

Problem Problem::smallBoxes(long TotalCells) {
  Problem P;
  P.BoxSize = 16;
  P.NumBoxes = static_cast<int>(
      std::max<long>(1, TotalCells / (16L * 16 * 16)));
  return P;
}

Problem Problem::largeBoxes(long TotalCells, int BoxSize) {
  Problem P;
  P.BoxSize = BoxSize;
  P.NumBoxes = static_cast<int>(std::max<long>(
      1, TotalCells / (static_cast<long>(BoxSize) * BoxSize * BoxSize)));
  return P;
}

std::vector<Box> mfd::makeInputs(const Problem &P, std::uint64_t Seed) {
  std::vector<Box> Boxes;
  Boxes.reserve(P.NumBoxes);
  for (int I = 0; I < P.NumBoxes; ++I) {
    Boxes.emplace_back(P.BoxSize, GhostDepth, NumComps);
    Boxes.back().fillPseudoRandom(Seed + static_cast<std::uint64_t>(I));
  }
  return Boxes;
}

std::vector<Box> mfd::makeOutputs(const Problem &P) {
  std::vector<Box> Boxes;
  Boxes.reserve(P.NumBoxes);
  for (int I = 0; I < P.NumBoxes; ++I)
    Boxes.emplace_back(P.BoxSize, GhostDepth, NumComps);
  return Boxes;
}

void mfd::runVariant(Variant V, const std::vector<Box> &In,
                     std::vector<Box> &Out, const RunConfig &Cfg,
                     exec::PlanStats *Stats) {
  assert(In.size() == Out.size() && "box count mismatch");
  auto RunBox = [&](int I) {
    switch (V) {
    case Variant::SeriesSA:
      seriesBox(In[I], Out[I], /*SingleAssignment=*/true);
      break;
    case Variant::SeriesReduced:
      seriesBox(In[I], Out[I], /*SingleAssignment=*/false);
      break;
    case Variant::FuseAmongSA:
      fuseAmongBox(In[I], Out[I]);
      break;
    case Variant::FuseWithinSA:
      fuseWithinBox(In[I], Out[I], /*SingleAssignment=*/true);
      break;
    case Variant::FuseWithinReduced:
      fuseWithinBox(In[I], Out[I], /*SingleAssignment=*/false);
      break;
    case Variant::FuseAllSA:
      fuseAllBox(In[I], Out[I], /*SingleAssignment=*/true);
      break;
    case Variant::FuseAllReduced:
      fuseAllBox(In[I], Out[I], /*SingleAssignment=*/false);
      break;
    case Variant::OverlapWithinTiles:
      overlapWithinTilesBox(In[I], Out[I], Cfg.TileSize,
                            Cfg.ParallelOverBoxes ? 1 : Cfg.Threads,
                            Cfg.Scheduler);
      break;
    case Variant::OverlapOfTiles:
      overlapOfTilesBox(In[I], Out[I], Cfg.TileSize);
      break;
    }
  };
  if (Cfg.ParallelOverBoxes) {
    // Boxes are independent: one external task each, no dependence edges.
    exec::ExecutionPlan Plan;
    for (int I = 0; I < static_cast<int>(In.size()); ++I)
      Plan.addExternalTask(variantName(V), [&RunBox, I](int) { RunBox(I); });
    exec::RunOptions Opts;
    Opts.Threads = Cfg.Threads;
    Opts.Scheduler = Cfg.Scheduler;
    exec::PlanStats St = exec::runPlan(Plan, Opts);
    if (Stats)
      *Stats = std::move(St);
  } else {
    // Within-box parallelism: boxes run sequentially; tiled variants
    // spread their tiles over the threads instead.
    for (int I = 0; I < static_cast<int>(In.size()); ++I)
      RunBox(I);
  }
}

long mfd::temporaryElements(Variant V, int N, int TileSize) {
  long Face = static_cast<long>(N) * N * (N + 1);
  int T = TileSize > 0 ? TileSize : defaultTileSize(N);
  long TileFace = static_cast<long>(T) * T * (N + 1);
  switch (V) {
  case Variant::SeriesSA:
  case Variant::FuseAmongSA:
    return 6L * NumComps * Face;
  case Variant::SeriesReduced:
    return 2L * NumComps * Face;
  case Variant::FuseWithinSA:
    return (2L * NumComps + 1) * Face;
  case Variant::FuseWithinReduced:
    return Face + NumComps * (static_cast<long>(N) * N + N + 1);
  case Variant::FuseAllSA:
    return (6L * NumComps + 3) * Face;
  case Variant::FuseAllReduced:
    return 3L * Face + NumComps * (static_cast<long>(N) * N + N + 1);
  case Variant::OverlapWithinTiles:
    return 3L * TileFace + NumComps * (static_cast<long>(T) * N + N + 1);
  case Variant::OverlapOfTiles:
    return 6L * NumComps * TileFace;
  }
  LCDFG_UNREACHABLE("covered switch");
}
