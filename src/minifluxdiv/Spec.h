//===- minifluxdiv/Spec.h - The MiniFluxDiv loop chain ----------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniFluxDiv (Section 2.1) expressed as a loop chain, plus the schedule
/// recipes of Section 5.2 expressed as M2DFG transformation sequences:
/// series of loops (the initial graph, Figure 3), fuse among directions
/// (Figure 7), fuse within directions (Figure 8), and fuse all levels
/// (Figure 9).
///
/// Per direction d and component c the computation is
///   F1d_c(face)  = 7/12 (phi_c(i-1) + phi_c(i)) - 1/12 (phi_c(i-2) +
///                  phi_c(i+1))                       [partial flux]
///   F2d_c(face)  = F1d_c(face) * F1d_vel(d)(face)    [complete flux]
///   out_c(cell) += K (F2d_c(i+1) - F2d_c(i))         [flux difference]
/// where vel(x) = u, vel(y) = v, vel(z) = w.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_MINIFLUXDIV_SPEC_H
#define LCDFG_MINIFLUXDIV_SPEC_H

#include "codegen/Interpreter.h"
#include "graph/Graph.h"
#include "graph/Transforms.h"
#include "ir/LoopChain.h"

namespace lcdfg {
namespace mfd {

/// Flux-difference scaling constant used by every implementation.
inline constexpr double DiffScale = 0.5;
/// Partial-flux stencil coefficients (fourth-order face interpolation).
inline constexpr double FluxC1 = 7.0 / 12.0;
inline constexpr double FluxC2 = 1.0 / 12.0;

/// Builds the 2D, four-component (rho, u, v, e) chain used in the paper's
/// diagrams: 24 loop nests over an N x N box with 2-deep ghost cells.
ir::LoopChain buildChain2D();

/// Builds the full 3D, five-component (rho, u, v, w, e) chain: 45 loop
/// nests over an N^3 box.
ir::LoopChain buildChain3D();

/// Registers executable kernels for a chain built above and assigns
/// LoopNest::KernelId, so graph schedules can be interpreted.
void registerKernels(ir::LoopChain &Chain, codegen::KernelRegistry &Registry);

/// The schedule recipes. Each takes the *initial* graph of a chain built by
/// buildChain2D/3D and applies the paper's transformation sequence. They
/// abort on a transformation failure (the recipes are known-legal).
void applyFuseAmongDirections(graph::Graph &G);
void applyFuseWithinDirections(graph::Graph &G);
void applyFuseAllLevels(graph::Graph &G);

} // namespace mfd
} // namespace lcdfg

#endif // LCDFG_MINIFLUXDIV_SPEC_H
