//===- minifluxdiv/Spec.cpp -----------------------------------------------===//

#include "minifluxdiv/Spec.h"

#include "support/Errors.h"

#include <cassert>

using namespace lcdfg;
using namespace lcdfg::mfd;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;

namespace {

/// Description of one spatial direction of the benchmark.
struct Direction {
  char Letter;          // 'x', 'y', 'z'
  unsigned DimIdx;      // index in the (z,)y,x loop order
  std::string Velocity; // component providing the face velocity
};

/// Builds the chain for the given dimensionality.
ir::LoopChain buildChain(unsigned Rank,
                         const std::vector<std::string> &Comps,
                         const std::vector<Direction> &Dirs,
                         const std::vector<std::string> &DimNames) {
  ir::LoopChain Chain(Rank == 2 ? "minifluxdiv2d" : "minifluxdiv3d", "fuse");
  AffineExpr N = AffineExpr::var("N");

  auto CellDomain = [&] {
    std::vector<Dim> Dims(Rank);
    for (unsigned D = 0; D < Rank; ++D)
      Dims[D] = Dim{DimNames[D], AffineExpr(0), N - AffineExpr(1)};
    return BoxSet(std::move(Dims));
  };
  auto FaceDomain = [&](unsigned FaceDim) {
    std::vector<Dim> Dims(Rank);
    for (unsigned D = 0; D < Rank; ++D)
      Dims[D] = Dim{DimNames[D], AffineExpr(0),
                    D == FaceDim ? N : N - AffineExpr(1)};
    return BoxSet(std::move(Dims));
  };
  auto Offset = [&](unsigned D, std::int64_t V) {
    std::vector<std::int64_t> O(Rank, 0);
    O[D] = V;
    return O;
  };
  std::vector<std::int64_t> Zero(Rank, 0);

  for (const Direction &Dir : Dirs) {
    std::string D(1, Dir.Letter);
    // Partial flux F1: fourth-order face interpolation of the inputs.
    for (const std::string &C : Comps) {
      ir::LoopNest Nest;
      Nest.Name = "F" + D + "1_" + C;
      Nest.Domain = FaceDomain(Dir.DimIdx);
      Nest.Write = ir::Access{"F1" + D + "_" + C, {Zero}};
      Nest.Reads = {ir::Access{"in_" + C,
                               {Offset(Dir.DimIdx, -2), Offset(Dir.DimIdx, -1),
                                Zero, Offset(Dir.DimIdx, 1)}}};
      Chain.addNest(std::move(Nest));
    }
    // Complete flux F2: scale by the face velocity of this direction.
    for (const std::string &C : Comps) {
      ir::LoopNest Nest;
      Nest.Name = "F" + D + "2_" + C;
      Nest.Domain = FaceDomain(Dir.DimIdx);
      Nest.Write = ir::Access{"F2" + D + "_" + C, {Zero}};
      Nest.Reads = {ir::Access{"F1" + D + "_" + C, {Zero}}};
      if (C != Dir.Velocity)
        Nest.Reads.push_back(
            ir::Access{"F1" + D + "_" + Dir.Velocity, {Zero}});
      Chain.addNest(std::move(Nest));
    }
    // Flux difference D: accumulate into the cell-centered outputs.
    for (const std::string &C : Comps) {
      ir::LoopNest Nest;
      Nest.Name = "D" + D + "_" + C;
      Nest.Domain = CellDomain();
      Nest.Write = ir::Access{"out_" + C, {Zero}};
      Nest.Reads = {
          ir::Access{"F2" + D + "_" + C, {Zero, Offset(Dir.DimIdx, 1)}}};
      Chain.addNest(std::move(Nest));
    }
  }
  Chain.finalize();
  return Chain;
}

} // namespace

ir::LoopChain mfd::buildChain2D() {
  return buildChain(2, {"rho", "u", "v", "e"},
                    {Direction{'x', 1, "u"}, Direction{'y', 0, "v"}},
                    {"y", "x"});
}

ir::LoopChain mfd::buildChain3D() {
  return buildChain(3, {"rho", "u", "v", "w", "e"},
                    {Direction{'x', 2, "u"}, Direction{'y', 1, "v"},
                     Direction{'z', 0, "w"}},
                    {"z", "y", "x"});
}

namespace {

// Batched forms of the four statement bodies (see codegen::BatchedKernel).
// Expression-by-expression identical to the scalar lambdas below so the
// two paths produce bit-identical storage.

void batchedF1(double *W, const double *const *R, const std::int64_t *S,
               std::int64_t WS, std::int64_t N) {
  const double *R0 = R[0], *R1 = R[1], *R2 = R[2], *R3 = R[3];
  const std::int64_t S0 = S[0], S1 = S[1], S2 = S[2], S3 = S[3];
  for (std::int64_t I = 0; I < N; ++I)
    W[I * WS] = FluxC1 * (R1[I * S1] + R2[I * S2]) -
                FluxC2 * (R0[I * S0] + R3[I * S3]);
}

void batchedF2(double *W, const double *const *R, const std::int64_t *S,
               std::int64_t WS, std::int64_t N) {
  const double *R0 = R[0], *R1 = R[1];
  const std::int64_t S0 = S[0], S1 = S[1];
  for (std::int64_t I = 0; I < N; ++I)
    W[I * WS] = R0[I * S0] * R1[I * S1];
}

void batchedF2Vel(double *W, const double *const *R, const std::int64_t *S,
                  std::int64_t WS, std::int64_t N) {
  const double *R0 = R[0];
  const std::int64_t S0 = S[0];
  for (std::int64_t I = 0; I < N; ++I)
    W[I * WS] = R0[I * S0] * R0[I * S0];
}

void batchedDiff(double *W, const double *const *R, const std::int64_t *S,
                 std::int64_t WS, std::int64_t N) {
  const double *R0 = R[0], *R1 = R[1];
  const std::int64_t S0 = S[0], S1 = S[1];
  for (std::int64_t I = 0; I < N; ++I)
    W[I * WS] = W[I * WS] + DiffScale * (R1[I * S1] - R0[I * S0]);
}

} // namespace

void mfd::registerKernels(ir::LoopChain &Chain,
                          codegen::KernelRegistry &Registry) {
  // The expression forms mirror the lambdas tree-for-tree, so the JIT's
  // emitted C evaluates in the same order and stays bit-identical.
  using codegen::current;
  using codegen::lit;
  using codegen::read;
  int F1 = Registry.add(
      [](const std::vector<double> &R, double) {
        return FluxC1 * (R[1] + R[2]) - FluxC2 * (R[0] + R[3]);
      },
      batchedF1,
      lit(FluxC1) * (read(1) + read(2)) - lit(FluxC2) * (read(0) + read(3)));
  int F2 = Registry.add(
      [](const std::vector<double> &R, double) { return R[0] * R[1]; },
      batchedF2, read(0) * read(1));
  int F2Vel = Registry.add(
      [](const std::vector<double> &R, double) { return R[0] * R[0]; },
      batchedF2Vel, read(0) * read(0));
  int Diff = Registry.add(
      [](const std::vector<double> &R, double Current) {
        return Current + DiffScale * (R[1] - R[0]);
      },
      batchedDiff, current() + lit(DiffScale) * (read(1) - read(0)));
  for (unsigned I = 0; I < Chain.numNests(); ++I) {
    ir::LoopNest &Nest = Chain.nest(I);
    if (Nest.Name[0] == 'D')
      Nest.KernelId = Diff;
    else if (Nest.Name[2] == '1')
      Nest.KernelId = F1;
    else
      Nest.KernelId = Nest.Reads.size() == 1 ? F2Vel : F2;
  }
}

namespace {

/// Discovers the direction letters and component names from nest names of
/// the form F<d>1_<comp>.
void discover(const graph::Graph &G, std::vector<char> &Dirs,
              std::vector<std::string> &Comps,
              std::map<char, std::string, std::less<>> &Velocity) {
  const ir::LoopChain &Chain = G.chain();
  for (unsigned I = 0; I < Chain.numNests(); ++I) {
    const std::string &Name = Chain.nest(I).Name;
    if (Name.size() < 5 || Name[0] != 'F' || Name[2] != '1')
      continue;
    char D = Name[1];
    std::string Comp = Name.substr(Name.find('_') + 1);
    if (std::find(Dirs.begin(), Dirs.end(), D) == Dirs.end())
      Dirs.push_back(D);
    if (std::find(Comps.begin(), Comps.end(), Comp) == Comps.end())
      Comps.push_back(Comp);
  }
  // The velocity of a direction is the component whose F2 has one read.
  for (unsigned I = 0; I < Chain.numNests(); ++I) {
    const std::string &Name = Chain.nest(I).Name;
    if (Name.size() < 5 || Name[0] != 'F' || Name[2] != '2')
      continue;
    if (Chain.nest(I).Reads.size() == 1)
      Velocity[Name[1]] = Name.substr(Name.find('_') + 1);
  }
}

unsigned nestByName(const ir::LoopChain &Chain, const std::string &Name) {
  for (unsigned I = 0; I < Chain.numNests(); ++I)
    if (Chain.nest(I).Name == Name)
      return I;
  reportFatalError("minifluxdiv recipe: no nest named " + Name);
}

graph::NodeId nodeOf(const graph::Graph &G, const std::string &NestName) {
  graph::NodeId Id = G.stmtOfNest(nestByName(G.chain(), NestName));
  if (Id == graph::InvalidNode)
    reportFatalError("minifluxdiv recipe: nest " + NestName +
                     " not in any live node");
  return Id;
}

void mustOk(const graph::TransformResult &R) {
  if (!R)
    reportFatalError("minifluxdiv recipe: " + R.Error);
}

} // namespace

void mfd::applyFuseAmongDirections(graph::Graph &G) {
  std::vector<char> Dirs;
  std::vector<std::string> Comps;
  std::map<char, std::string, std::less<>> Velocity;
  discover(G, Dirs, Comps, Velocity);

  // Read-reduction fuse the partial-flux nodes of all directions per
  // component: each input is then streamed once.
  for (const std::string &C : Comps) {
    graph::NodeId First = nodeOf(G, std::string("F") + Dirs[0] + "1_" + C);
    for (std::size_t D = 1; D < Dirs.size(); ++D)
      mustOk(fuseReadReduction(
          G, First, nodeOf(G, std::string("F") + Dirs[D] + "1_" + C)));
  }
  // Bring every direction's complete-flux row up to the first direction's.
  int F2Row = G.stmt(nodeOf(G, std::string("F") + Dirs[0] + "2_" +
                                   Comps[0]))
                  .Row;
  for (std::size_t D = 1; D < Dirs.size(); ++D)
    for (const std::string &C : Comps)
      mustOk(reschedule(
          G, nodeOf(G, std::string("F") + Dirs[D] + "2_" + C), F2Row));
  // Fuse the flux-difference nodes per component: better locality on the
  // shared cell-centered outputs.
  for (const std::string &C : Comps) {
    graph::NodeId First = nodeOf(G, std::string("D") + Dirs[0] + "_" + C);
    for (std::size_t D = 1; D < Dirs.size(); ++D)
      mustOk(fuseReadReduction(
          G, First, nodeOf(G, std::string("D") + Dirs[D] + "_" + C)));
  }
  G.compactRows();
  G.compactColumns();
}

namespace {

/// Fuses the F1 -> F2 -> D chain of one direction and component into a
/// single node; returns the fused node. The velocity component's F1 stays
/// standalone (it feeds every component's F2).
graph::NodeId fuseDirectionChain(graph::Graph &G, char Dir,
                                 const std::string &Comp,
                                 const std::string &Velocity) {
  std::string D(1, Dir);
  if (Comp != Velocity)
    mustOk(graph::fuseProducerConsumer(G, nodeOf(G, "F" + D + "1_" + Comp),
                                       nodeOf(G, "F" + D + "2_" + Comp)));
  graph::NodeId Node = nodeOf(G, "F" + D + "2_" + Comp);
  mustOk(graph::fuseProducerConsumer(G, Node,
                                     nodeOf(G, "D" + D + "_" + Comp)));
  return nodeOf(G, "D" + D + "_" + Comp);
}

} // namespace

void mfd::applyFuseWithinDirections(graph::Graph &G) {
  std::vector<char> Dirs;
  std::vector<std::string> Comps;
  std::map<char, std::string, std::less<>> Velocity;
  discover(G, Dirs, Comps, Velocity);

  for (char Dir : Dirs)
    for (const std::string &C : Comps)
      fuseDirectionChain(G, Dir, C, Velocity[Dir]);
  G.compactRows();
  G.compactColumns();
}

void mfd::applyFuseAllLevels(graph::Graph &G) {
  std::vector<char> Dirs;
  std::vector<std::string> Comps;
  std::map<char, std::string, std::less<>> Velocity;
  discover(G, Dirs, Comps, Velocity);

  // The velocity partial fluxes are computed up front (row 1); they feed
  // every component of their direction.
  int VelRow =
      G.stmt(nodeOf(G, std::string("F") + Dirs[0] + "1_" + Velocity[Dirs[0]]))
          .Row;
  for (std::size_t D = 1; D < Dirs.size(); ++D)
    mustOk(reschedule(
        G, nodeOf(G, std::string("F") + Dirs[D] + "1_" + Velocity[Dirs[D]]),
        VelRow));

  // Fuse each direction chain, then read-reduction fuse the directions per
  // component (the inputs are then streamed once per component)...
  std::map<std::string, graph::NodeId> PerComp;
  for (const std::string &C : Comps) {
    graph::NodeId Merged = graph::InvalidNode;
    for (char Dir : Dirs) {
      graph::NodeId Part = fuseDirectionChain(G, Dir, C, Velocity[Dir]);
      if (Merged == graph::InvalidNode)
        Merged = Part;
      else
        mustOk(fuseReadReduction(G, Merged, Part, /*CollapseShared=*/true));
      Merged = G.stmtOfNest(nestByName(G.chain(),
                                       std::string("D") + Dirs[0] + "_" + C));
    }
    PerComp[C] = Merged;
  }
  // ... then coalesce the per-component nodes into the single fused node of
  // Figure 9. The velocity face fluxes stay separate streams per consuming
  // statement set, so shared reads are not collapsed here.
  graph::NodeId Big = PerComp[Comps[0]];
  for (std::size_t I = 1; I < Comps.size(); ++I) {
    mustOk(fuseReadReduction(G, Big, PerComp[Comps[I]],
                             /*CollapseShared=*/false));
    Big = G.stmtOfNest(
        nestByName(G.chain(), std::string("D") + Dirs[0] + "_" + Comps[0]));
  }
  G.compactRows();
  G.compactColumns();
}
