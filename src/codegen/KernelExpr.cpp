//===- codegen/KernelExpr.cpp - Portable kernel body expressions ----------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "codegen/KernelExpr.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace lcdfg {
namespace codegen {

struct KernelExpr::Node {
  Kind K;
  double Value = 0.0;   // Const
  unsigned Index = 0;   // Read
  std::shared_ptr<const Node> L, R;
};

KernelExpr::KernelExpr(std::shared_ptr<const Node> RootIn)
    : Root(std::move(RootIn)) {}

KernelExpr KernelExpr::lit(double V) {
  auto N = std::make_shared<Node>();
  N->K = Kind::Const;
  N->Value = V;
  return KernelExpr(std::move(N));
}

KernelExpr KernelExpr::read(unsigned J) {
  auto N = std::make_shared<Node>();
  N->K = Kind::Read;
  N->Index = J;
  return KernelExpr(std::move(N));
}

KernelExpr KernelExpr::current() {
  auto N = std::make_shared<Node>();
  N->K = Kind::Current;
  return KernelExpr(std::move(N));
}

KernelExpr KernelExpr::binary(Kind K, const KernelExpr &L,
                              const KernelExpr &R) {
  auto N = std::make_shared<Node>();
  N->K = K;
  N->L = L.Root;
  N->R = R.Root;
  return KernelExpr(std::move(N));
}

KernelExpr::Kind KernelExpr::kind() const { return Root->K; }

KernelExpr operator+(const KernelExpr &L, const KernelExpr &R) {
  return KernelExpr::binary(KernelExpr::Kind::Add, L, R);
}

KernelExpr operator-(const KernelExpr &L, const KernelExpr &R) {
  return KernelExpr::binary(KernelExpr::Kind::Sub, L, R);
}

KernelExpr operator*(const KernelExpr &L, const KernelExpr &R) {
  return KernelExpr::binary(KernelExpr::Kind::Mul, L, R);
}

namespace {

int maxReadOf(const KernelExpr::Node &N) {
  switch (N.K) {
  case KernelExpr::Kind::Const:
  case KernelExpr::Kind::Current:
    return -1;
  case KernelExpr::Kind::Read:
    return static_cast<int>(N.Index);
  default:
    return std::max(maxReadOf(*N.L), maxReadOf(*N.R));
  }
}

bool usesCurrentOf(const KernelExpr::Node &N) {
  switch (N.K) {
  case KernelExpr::Kind::Const:
  case KernelExpr::Kind::Read:
    return false;
  case KernelExpr::Kind::Current:
    return true;
  default:
    return usesCurrentOf(*N.L) || usesCurrentOf(*N.R);
  }
}

/// Hexfloat literal: round-trips the exact bit pattern through any C
/// compiler, unlike decimal shortest-round-trip forms.
std::string hexLiteral(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

std::string renderNode(const KernelExpr::Node &N,
                       const std::function<std::string(unsigned)> &Read,
                       const std::string &Current) {
  switch (N.K) {
  case KernelExpr::Kind::Const:
    return hexLiteral(N.Value);
  case KernelExpr::Kind::Read:
    return Read(N.Index);
  case KernelExpr::Kind::Current:
    return Current;
  case KernelExpr::Kind::Add:
  case KernelExpr::Kind::Sub:
  case KernelExpr::Kind::Mul: {
    const char Op = N.K == KernelExpr::Kind::Add   ? '+'
                    : N.K == KernelExpr::Kind::Sub ? '-'
                                                   : '*';
    // Full parenthesization: the tree shape, not C precedence, fixes the
    // evaluation order the bit-compare gates depend on.
    return "(" + renderNode(*N.L, Read, Current) + " " + Op + " " +
           renderNode(*N.R, Read, Current) + ")";
  }
  }
  return {};
}

std::uint64_t fnvByte(std::uint64_t H, unsigned char B) {
  H ^= B;
  H *= 0x100000001b3ull;
  return H;
}

std::uint64_t fnvU64(std::uint64_t H, std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    H = fnvByte(H, static_cast<unsigned char>(V >> (I * 8)));
  return H;
}

std::uint64_t hashNode(const KernelExpr::Node &N, std::uint64_t H) {
  H = fnvByte(H, static_cast<unsigned char>(N.K));
  switch (N.K) {
  case KernelExpr::Kind::Const: {
    std::uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(N.Value));
    std::memcpy(&Bits, &N.Value, sizeof(Bits));
    return fnvU64(H, Bits);
  }
  case KernelExpr::Kind::Read:
    return fnvU64(H, N.Index);
  case KernelExpr::Kind::Current:
    return H;
  default:
    return hashNode(*N.R, hashNode(*N.L, H));
  }
}

double evalNode(const KernelExpr::Node &N, const std::vector<double> &Reads,
                double Current) {
  switch (N.K) {
  case KernelExpr::Kind::Const:
    return N.Value;
  case KernelExpr::Kind::Read:
    return N.Index < Reads.size() ? Reads[N.Index] : 0.0;
  case KernelExpr::Kind::Current:
    return Current;
  case KernelExpr::Kind::Add:
    return evalNode(*N.L, Reads, Current) + evalNode(*N.R, Reads, Current);
  case KernelExpr::Kind::Sub:
    return evalNode(*N.L, Reads, Current) - evalNode(*N.R, Reads, Current);
  case KernelExpr::Kind::Mul:
    return evalNode(*N.L, Reads, Current) * evalNode(*N.R, Reads, Current);
  }
  return 0.0;
}

} // namespace

int KernelExpr::maxRead() const { return maxReadOf(*Root); }

bool KernelExpr::usesCurrent() const { return usesCurrentOf(*Root); }

std::string
KernelExpr::render(const std::function<std::string(unsigned)> &Read,
                   const std::string &Current) const {
  return renderNode(*Root, Read, Current);
}

std::string KernelExpr::text() const {
  return render([](unsigned J) { return "R" + std::to_string(J); }, "W");
}

double KernelExpr::eval(const std::vector<double> &Reads,
                        double Current) const {
  return evalNode(*Root, Reads, Current);
}

std::uint64_t KernelExpr::hash(std::uint64_t Seed) const {
  return hashNode(*Root, Seed);
}

} // namespace codegen
} // namespace lcdfg
