//===- codegen/IsccExport.cpp ---------------------------------------------===//

#include "codegen/IsccExport.h"

#include <sstream>

using namespace lcdfg;
using namespace lcdfg::codegen;
using graph::Graph;
using graph::NodeId;

namespace {

/// "S0[y, x]" style tuple of a nest's iterators.
std::string iterTuple(const ir::LoopNest &Nest) {
  std::ostringstream OS;
  OS << "[";
  for (unsigned D = 0; D < Nest.Domain.rank(); ++D) {
    if (D)
      OS << ", ";
    OS << Nest.Domain.dim(D).Name;
  }
  OS << "]";
  return OS.str();
}

/// The constraint list of a box domain: "0 <= y and y <= N - 1 and ...".
std::string constraints(const poly::BoxSet &Domain) {
  std::ostringstream OS;
  for (unsigned D = 0; D < Domain.rank(); ++D) {
    if (D)
      OS << " and ";
    OS << Domain.dim(D).Lower.toString() << " <= " << Domain.dim(D).Name
       << " <= " << Domain.dim(D).Upper.toString();
  }
  return OS.str();
}

std::string sanitize(std::string Name) {
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

std::string codegen::exportIscc(const Graph &G, const IsccOptions &Options) {
  std::ostringstream OS;
  OS << "# ISCC script generated from an M2DFG (lcdfg)\n";
  OS << "# statement-set domains\n";

  const ir::LoopChain &Chain = G.chain();
  std::vector<std::string> DomainNames(Chain.numNests());

  for (NodeId S : G.scheduleOrder()) {
    const graph::StmtNode &Node = G.stmt(S);
    for (unsigned NestId : Node.Nests) {
      const ir::LoopNest &Nest = Chain.nest(NestId);
      std::string Name = sanitize(Nest.Name);
      DomainNames[NestId] = Name;
      OS << "D_" << Name << " := [" << Options.Symbol << "] -> { " << Name
         << iterTuple(Nest) << " : " << constraints(Nest.Domain) << " };\n";
    }
  }

  OS << "\n# schedule maps: [row, col, shifted iterators..., member]\n";
  for (NodeId S : G.scheduleOrder()) {
    const graph::StmtNode &Node = G.stmt(S);
    for (std::size_t M = 0; M < Node.Nests.size(); ++M) {
      const ir::LoopNest &Nest = Chain.nest(Node.Nests[M]);
      const std::string &Name = DomainNames[Node.Nests[M]];
      OS << "S_" << Name << " := [" << Options.Symbol << "] -> { " << Name
         << iterTuple(Nest) << " -> [" << Node.Row << ", " << Node.Col;
      for (unsigned D = 0; D < Nest.Domain.rank(); ++D) {
        OS << ", " << Nest.Domain.dim(D).Name;
        std::int64_t Shift = Node.Shifts[M][D];
        if (Shift > 0)
          OS << " + " << Shift;
        else if (Shift < 0)
          OS << " - " << -Shift;
      }
      OS << ", " << M << "] };\n";
    }
  }

  if (Options.IncludeAccesses) {
    OS << "\n# access relations\n";
    for (unsigned I = 0; I < Chain.numNests(); ++I) {
      if (DomainNames[I].empty())
        continue;
      const ir::LoopNest &Nest = Chain.nest(I);
      const std::string &Name = DomainNames[I];
      auto EmitAccess = [&](const char *Kind, const ir::Access &A,
                            unsigned Ordinal) {
        OS << Kind << "_" << Name << "_" << Ordinal << " := ["
           << Options.Symbol << "] -> { ";
        // One map per stencil point, unioned with ';'.
        for (std::size_t T = 0; T < A.Offsets.size(); ++T) {
          if (T)
            OS << "; ";
          OS << Name << iterTuple(Nest) << " -> " << sanitize(A.Array)
             << "[";
          for (unsigned D = 0; D < Nest.Domain.rank(); ++D) {
            if (D)
              OS << ", ";
            OS << Nest.Domain.dim(D).Name;
            std::int64_t Off = A.Offsets[T][D];
            if (Off > 0)
              OS << " + " << Off;
            else if (Off < 0)
              OS << " - " << -Off;
          }
          OS << "]";
        }
        OS << " };\n";
      };
      EmitAccess("W", Nest.Write, 0);
      for (unsigned R = 0; R < Nest.Reads.size(); ++R)
        EmitAccess("R", Nest.Reads[R], R + 1);
    }
  }

  OS << "\n# generate the transformed code\ncodegen(";
  bool First = true;
  for (NodeId S : G.scheduleOrder()) {
    const graph::StmtNode &Node = G.stmt(S);
    for (unsigned NestId : Node.Nests) {
      if (!First)
        OS << " + ";
      OS << "(S_" << DomainNames[NestId] << " * D_" << DomainNames[NestId]
         << ")";
      First = false;
    }
  }
  OS << ");\n";
  return OS.str();
}
