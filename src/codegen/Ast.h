//===- codegen/Ast.h - Loop-nest abstract syntax tree -----------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small loop AST standing between the scheduled M2DFG and concrete code
/// (the ISCC-generated code of Section 4). The generator lowers each
/// statement node into a loop nest over its fused domain, with per-member
/// guards where shifted member domains differ from the hull.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_CODEGEN_AST_H
#define LCDFG_CODEGEN_AST_H

#include "poly/BoxSet.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lcdfg {
namespace codegen {

enum class AstKind { Block, Loop, Guard, StmtInstance };

struct AstNode;
using AstPtr = std::unique_ptr<AstNode>;

/// One AST node; fields are meaningful per kind.
struct AstNode {
  AstKind Kind;

  // Loop
  std::string Iter;
  poly::AffineExpr Lower, Upper; // inclusive bounds

  // Guard: execute children only when the current iterators lie in Domain.
  poly::BoxSet Domain;

  // StmtInstance: chain nest plus the lexicographic shift applied to it.
  unsigned NestId = 0;
  std::vector<std::int64_t> Shift;

  std::vector<AstPtr> Children;

  explicit AstNode(AstKind Kind) : Kind(Kind) {}

  static AstPtr block() { return std::make_unique<AstNode>(AstKind::Block); }
  static AstPtr loop(std::string Iter, poly::AffineExpr Lower,
                     poly::AffineExpr Upper);
  static AstPtr guard(poly::BoxSet Domain);
  static AstPtr stmt(unsigned NestId, std::vector<std::int64_t> Shift);

  /// Number of StmtInstance nodes in this subtree.
  unsigned countStatements() const;
};

} // namespace codegen
} // namespace lcdfg

#endif // LCDFG_CODEGEN_AST_H
