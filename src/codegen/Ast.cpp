//===- codegen/Ast.cpp ----------------------------------------------------===//

#include "codegen/Ast.h"

using namespace lcdfg;
using namespace lcdfg::codegen;

AstPtr AstNode::loop(std::string Iter, poly::AffineExpr Lower,
                     poly::AffineExpr Upper) {
  auto Node = std::make_unique<AstNode>(AstKind::Loop);
  Node->Iter = std::move(Iter);
  Node->Lower = std::move(Lower);
  Node->Upper = std::move(Upper);
  return Node;
}

AstPtr AstNode::guard(poly::BoxSet Domain) {
  auto Node = std::make_unique<AstNode>(AstKind::Guard);
  Node->Domain = std::move(Domain);
  return Node;
}

AstPtr AstNode::stmt(unsigned NestId, std::vector<std::int64_t> Shift) {
  auto Node = std::make_unique<AstNode>(AstKind::StmtInstance);
  Node->NestId = NestId;
  Node->Shift = std::move(Shift);
  return Node;
}

unsigned AstNode::countStatements() const {
  unsigned Count = Kind == AstKind::StmtInstance ? 1 : 0;
  for (const AstPtr &Child : Children)
    Count += Child->countStatements();
  return Count;
}
