//===- codegen/KernelExpr.h - Portable kernel body expressions --*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny expression tree describing one statement body as IEEE double
/// arithmetic over its operand streams. The interpreter's kernels are opaque
/// C++ callables; a KernelExpr attached alongside them is the transparent
/// form the JIT backend can re-emit as specialized C (src/jit). Nodes are
/// immutable and shared, so copies are cheap and expressions can be built
/// with ordinary operator syntax:
///
///   KernelExpr F1 = lit(FluxC1) * (read(1) + read(2))
///                 - lit(FluxC2) * (read(0) + read(3));
///
/// `current()` denotes the present value of the write location (the W[...]
/// operand of accumulating statements); `read(J)` the J-th operand stream.
/// The canonical text rendering uses C hexadecimal float literals so the
/// emitted constants round-trip bit-exactly through the host compiler.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_CODEGEN_KERNELEXPR_H
#define LCDFG_CODEGEN_KERNELEXPR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace lcdfg {
namespace codegen {

/// One statement body as a tree of IEEE double operations. Evaluation order
/// is fixed by the tree shape (no reassociation), so an expression evaluated
/// left-to-right matches the C the JIT emits bit-for-bit as long as the
/// compiler keeps contraction off.
class KernelExpr {
public:
  enum class Kind {
    Const,   ///< A double literal.
    Read,    ///< Operand stream J at the current row position.
    Current, ///< The write location's current value (accumulators).
    Add,
    Sub,
    Mul,
  };

  /// Leaf builders. Binary nodes come from the operator overloads below.
  static KernelExpr lit(double V);
  static KernelExpr read(unsigned J);
  static KernelExpr current();

  Kind kind() const;

  /// Highest read index referenced anywhere in the tree, or -1 when the
  /// expression touches no operand stream.
  int maxRead() const;

  /// True when the tree references current() — the statement accumulates
  /// into its write location rather than overwriting it.
  bool usesCurrent() const;

  /// Renders the tree as a C expression. \p Read maps an operand index to
  /// its access text (e.g. "R1[I * 3]"); \p Current is the text for the
  /// write location's current value. Constants render as hexfloat literals.
  std::string render(const std::function<std::string(unsigned)> &Read,
                     const std::string &Current) const;

  /// Stable canonical text (reads as RJ, current as W) — the hashing and
  /// display form.
  std::string text() const;

  /// Scalar evaluation mirroring the interpreter: \p Reads holds one value
  /// per operand stream, \p Current the write location's present value.
  /// Lets tests cross-check an expression against its registered lambda.
  double eval(const std::vector<double> &Reads, double Current) const;

  /// FNV-1a over a canonical pre-order walk of the tree, folded into
  /// \p Seed. Structurally equal trees hash equal; this is the hot-path
  /// identity the JIT cache uses, so repeat lookups never re-render text.
  std::uint64_t hash(std::uint64_t Seed) const;

  /// Opaque to clients; defined in the .cpp.
  struct Node;

private:
  explicit KernelExpr(std::shared_ptr<const Node> RootIn);
  static KernelExpr binary(Kind K, const KernelExpr &L, const KernelExpr &R);

  friend KernelExpr operator+(const KernelExpr &L, const KernelExpr &R);
  friend KernelExpr operator-(const KernelExpr &L, const KernelExpr &R);
  friend KernelExpr operator*(const KernelExpr &L, const KernelExpr &R);

  std::shared_ptr<const Node> Root;
};

KernelExpr operator+(const KernelExpr &L, const KernelExpr &R);
KernelExpr operator-(const KernelExpr &L, const KernelExpr &R);
KernelExpr operator*(const KernelExpr &L, const KernelExpr &R);

/// Shorthand builders, so expression sites read like the formulas they
/// encode (see the file comment).
inline KernelExpr lit(double V) { return KernelExpr::lit(V); }
inline KernelExpr read(unsigned J) { return KernelExpr::read(J); }
inline KernelExpr current() { return KernelExpr::current(); }

} // namespace codegen
} // namespace lcdfg

#endif // LCDFG_CODEGEN_KERNELEXPR_H
