//===- codegen/CPrinter.h - C code pretty printer ---------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints the loop AST as C-like code, applying storage mappings: direct-
/// mapped arrays print as multi-dimensional accesses, modulo-mapped buffers
/// print as `space2[(...) % 2]` (the optimized code of Figure 1).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_CODEGEN_CPRINTER_H
#define LCDFG_CODEGEN_CPRINTER_H

#include "codegen/Ast.h"
#include "codegen/KernelExpr.h"
#include "graph/Graph.h"
#include "storage/StorageMap.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lcdfg {
namespace codegen {

/// Options for the printer.
struct PrintOptions {
  /// Indentation width per nesting level.
  unsigned Indent = 2;
  /// When set, accesses print through the plan's storage mappings;
  /// otherwise symbolic A(i, j) form is used.
  const storage::StoragePlan *Plan = nullptr;
};

/// Prints \p Root (lowered from \p G) as C-like code.
std::string printC(const graph::Graph &G, const AstNode &Root,
                   const PrintOptions &Options = {});

/// One RowPlan segment class for the JIT backend: the per-element strides
/// of a statement's streams, baked as compile-time constants into the
/// emitted body, plus which read streams alias the write stream's space
/// (those forbid `restrict`/`#pragma omp simd` — self-referencing stencils
/// must run ascending and in order).
struct SegmentKernelSig {
  std::int64_t WriteStride = 1;
  std::vector<std::int64_t> ReadStrides;
  /// Parallel to ReadStrides: true when read J walks the same space as the
  /// write. current() reads through the write pointer itself and is always
  /// safe; this flags *other* operand streams into the written space.
  std::vector<bool> ReadAliasesWrite;
};

/// Emits one freestanding C function with the BatchedKernel ABI
/// (see codegen/Interpreter.h), named \p Symbol, specialized for \p Sig:
/// stride operands become literals, space pointers are `restrict`-qualified
/// and the contiguous inner run carries `#pragma omp simd` unless a read
/// stream aliases the write. \p Body supplies the per-element arithmetic.
std::string printSegmentKernel(const KernelExpr &Body,
                               const SegmentKernelSig &Sig,
                               const std::string &Symbol);

/// One whole instruction row as a JIT compilation unit: every statement of
/// the RowPlan with its inner bounds, stream strides, modulo window sizes
/// and the plan's conflict cap baked in as compile-time constants. The
/// emitted function IS the segment walker of RowPlan::run, specialized —
/// same chunk boundaries, same statement interleave, same wrap handling —
/// so its execution order (and therefore every result bit) is identical to
/// the interpreted walk by construction. What changes is the cost: stream
/// resolution uses constant-divisor modulo, statement bodies are inlined
/// loops with literal strides instead of indirect BatchedKernel calls, and
/// the per-segment bookkeeping runs on compile-time-constant bounds.
struct RowKernelDesc {
  /// One access stream with its shape constants and its index into the
  /// caller's flat pre-wrap base arena (per statement: write, then reads —
  /// the layout RowPlan::run maintains).
  struct Stream {
    unsigned Space = 0;
    bool Modulo = false;
    std::int64_t ModSize = 1;
    std::int64_t InnerStride = 0;
    std::size_t Flat = 0;
    /// Reads only: stream walks the written space (drops restrict/simd).
    bool AliasesWrite = false;
  };
  struct Stmt {
    const KernelExpr *Body = nullptr;
    std::int64_t Lo = 0; ///< Innermost bounds after guard folding.
    std::int64_t Hi = -1;
    Stream Write;
    std::vector<Stream> Reads;
  };
  std::vector<Stmt> Stmts;
  /// The plan's segment-length cap (RowPlan::MaxSegment; int64 max when
  /// unconstrained).
  std::int64_t MaxSegment = std::numeric_limits<std::int64_t>::max();
};

/// The fused row kernel ABI: space table, flat pre-wrap base arena (same
/// layout as RowKernelDesc::Stream::Flat), per-statement admission bitmask
/// (bit SI = statement SI runs this row), the admitted row bounds, and a
/// two-slot counter array the kernel adds its segment and wrap-event
/// tallies to (same tallies the interpreted walker would produce).
using RowKernel = void (*)(double *const *Spaces, const std::int64_t *Base,
                           std::uint64_t Admit, std::int64_t RowLo,
                           std::int64_t RowHi, std::int64_t *Ctrs);

/// Emits one freestanding C function with the RowKernel ABI, named
/// \p Symbol: the full segment walk over [RowLo, RowHi] for the admitted
/// statements of \p Desc. Same emission rules as printSegmentKernel per
/// statement body: hexfloat constants, restrict + `#pragma omp simd`
/// unless a read aliases the write.
std::string printRowKernel(const RowKernelDesc &Desc,
                           const std::string &Symbol);

} // namespace codegen
} // namespace lcdfg

#endif // LCDFG_CODEGEN_CPRINTER_H
