//===- codegen/CPrinter.h - C code pretty printer ---------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints the loop AST as C-like code, applying storage mappings: direct-
/// mapped arrays print as multi-dimensional accesses, modulo-mapped buffers
/// print as `space2[(...) % 2]` (the optimized code of Figure 1).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_CODEGEN_CPRINTER_H
#define LCDFG_CODEGEN_CPRINTER_H

#include "codegen/Ast.h"
#include "graph/Graph.h"
#include "storage/StorageMap.h"

#include <string>

namespace lcdfg {
namespace codegen {

/// Options for the printer.
struct PrintOptions {
  /// Indentation width per nesting level.
  unsigned Indent = 2;
  /// When set, accesses print through the plan's storage mappings;
  /// otherwise symbolic A(i, j) form is used.
  const storage::StoragePlan *Plan = nullptr;
};

/// Prints \p Root (lowered from \p G) as C-like code.
std::string printC(const graph::Graph &G, const AstNode &Root,
                   const PrintOptions &Options = {});

} // namespace codegen
} // namespace lcdfg

#endif // LCDFG_CODEGEN_CPRINTER_H
