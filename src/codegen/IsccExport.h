//===- codegen/IsccExport.h - M2DFG to ISCC script --------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4 describes M2DFGs as visual representations of an ISCC script:
/// every graph operation is a relation, and once the script is written the
/// code is generated automatically. This module emits that script — one
/// named domain per statement set, one schedule map per fused node member
/// (row, column, shifted iterators, member position), the read/write
/// access relations, and the final `codegen` invocation — in the syntax of
/// Verdoolaege's ISCC calculator, so the transformed schedules can be fed
/// to the original toolchain.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_CODEGEN_ISCCEXPORT_H
#define LCDFG_CODEGEN_ISCCEXPORT_H

#include "graph/Graph.h"

#include <string>

namespace lcdfg {
namespace codegen {

/// Options for the exported script.
struct IsccOptions {
  /// Emit the read/write access relations alongside the schedule.
  bool IncludeAccesses = true;
  /// Name of the symbolic size parameter.
  std::string Symbol = "N";
};

/// Emits the ISCC script realizing \p G's schedule.
std::string exportIscc(const graph::Graph &G, const IsccOptions &Options = {});

} // namespace codegen
} // namespace lcdfg

#endif // LCDFG_CODEGEN_ISCCEXPORT_H
