//===- codegen/Interpreter.h - Executable schedules -------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a generated loop AST against concrete storage. Each loop nest's
/// computation is a kernel registered by id; the interpreter resolves reads
/// and writes through the storage plan (including modulo mappings), which
/// makes transformed schedules directly checkable against a reference
/// execution of the original chain.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_CODEGEN_INTERPRETER_H
#define LCDFG_CODEGEN_INTERPRETER_H

#include "codegen/Ast.h"
#include "codegen/KernelExpr.h"
#include "graph/Graph.h"
#include "storage/StorageMap.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace lcdfg {
namespace codegen {

/// The batched statement body ABI: processes one wrap-free row segment of
/// \p N statement instances with raw pointer arithmetic. Element I reads
/// operand J at Reads[J][I * ReadStrides[J]] (stride 0 broadcasts a single
/// value) and writes Write[I * WriteStride]; elements must be processed in
/// ascending order so self-referencing stencils match the scalar oracle.
/// The arity of Reads is fixed per kernel, so it is not passed.
using BatchedKernel = void (*)(double *Write, const double *const *Reads,
                               const std::int64_t *ReadStrides,
                               std::int64_t WriteStride, std::int64_t N);

/// A registry of executable statement bodies. A kernel receives the values
/// of its reads (flattened in declaration order: per read access, per
/// stencil point) plus the current value of the write location (so that
/// accumulating statements like the flux-difference updates can be
/// expressed) and returns the value to store.
///
/// A kernel may additionally carry a batched body (see BatchedKernel): the
/// plan runner calls it for whole wrap-free row segments instead of
/// dispatching the scalar std::function per point. The two forms must be
/// arithmetically identical expression by expression — the scalar form is
/// the bit-equality oracle the batched path is tested against.
class KernelRegistry {
public:
  using Kernel =
      std::function<double(const std::vector<double> &Reads, double Current)>;

  /// Registers a kernel; the returned id goes into LoopNest::KernelId.
  /// \p B, when given, is the batched form of the same body.
  int add(Kernel K, BatchedKernel B = nullptr);
  /// Registers a kernel with an expression form alongside the scalar and
  /// batched bodies. \p E must compute the same value as \p K — it is what
  /// the JIT backend re-emits as specialized C per segment shape.
  int add(Kernel K, BatchedKernel B, KernelExpr E);
  const Kernel &get(int Id) const;
  /// The batched body of kernel \p Id, or nullptr when only the scalar
  /// form was registered.
  BatchedKernel batched(int Id) const;
  /// The expression form of kernel \p Id, or nullptr when none was
  /// registered (opaque kernels stay on the interpreted paths).
  const KernelExpr *expr(int Id) const;

private:
  std::vector<Kernel> Kernels;
  std::vector<BatchedKernel> BatchedKernels;
  std::vector<std::optional<KernelExpr>> Exprs;
};

/// Executes \p Root (generated from \p G) with parameter binding \p Env.
/// Every nest reached must have a registered kernel.
void execute(const graph::Graph &G, const AstNode &Root,
             const KernelRegistry &Kernels, storage::ConcreteStorage &Store,
             const std::map<std::string, std::int64_t, std::less<>> &Env);

} // namespace codegen
} // namespace lcdfg

#endif // LCDFG_CODEGEN_INTERPRETER_H
