//===- codegen/Interpreter.h - Executable schedules -------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a generated loop AST against concrete storage. Each loop nest's
/// computation is a kernel registered by id; the interpreter resolves reads
/// and writes through the storage plan (including modulo mappings), which
/// makes transformed schedules directly checkable against a reference
/// execution of the original chain.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_CODEGEN_INTERPRETER_H
#define LCDFG_CODEGEN_INTERPRETER_H

#include "codegen/Ast.h"
#include "graph/Graph.h"
#include "storage/StorageMap.h"

#include <functional>
#include <vector>

namespace lcdfg {
namespace codegen {

/// A registry of executable statement bodies. A kernel receives the values
/// of its reads (flattened in declaration order: per read access, per
/// stencil point) plus the current value of the write location (so that
/// accumulating statements like the flux-difference updates can be
/// expressed) and returns the value to store.
class KernelRegistry {
public:
  using Kernel =
      std::function<double(const std::vector<double> &Reads, double Current)>;

  /// Registers a kernel; the returned id goes into LoopNest::KernelId.
  int add(Kernel K);
  const Kernel &get(int Id) const;

private:
  std::vector<Kernel> Kernels;
};

/// Executes \p Root (generated from \p G) with parameter binding \p Env.
/// Every nest reached must have a registered kernel.
void execute(const graph::Graph &G, const AstNode &Root,
             const KernelRegistry &Kernels, storage::ConcreteStorage &Store,
             const std::map<std::string, std::int64_t, std::less<>> &Env);

} // namespace codegen
} // namespace lcdfg

#endif // LCDFG_CODEGEN_INTERPRETER_H
