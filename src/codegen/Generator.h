//===- codegen/Generator.h - M2DFG to loop AST lowering ---------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a scheduled M2DFG to the loop AST: statement nodes become loop
/// nests over their fused domains in row/column order; members whose shifted
/// domains are narrower than the hull are wrapped in guards (the prologue/
/// steady-state structure of Figure 1 expressed with conditionals).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_CODEGEN_GENERATOR_H
#define LCDFG_CODEGEN_GENERATOR_H

#include "codegen/Ast.h"
#include "graph/Graph.h"

namespace lcdfg {
namespace codegen {

/// Lowers the whole graph: a Block of one loop nest per statement node in
/// schedule order.
AstPtr generate(const graph::Graph &G);

/// Lowers a single statement node.
AstPtr generateStmtNode(const graph::Graph &G, graph::NodeId StmtId);

} // namespace codegen
} // namespace lcdfg

#endif // LCDFG_CODEGEN_GENERATOR_H
