//===- codegen/Generator.cpp ----------------------------------------------===//

#include "codegen/Generator.h"

using namespace lcdfg;
using namespace lcdfg::codegen;
using graph::Graph;
using graph::NodeId;

AstPtr codegen::generateStmtNode(const Graph &G, NodeId StmtId) {
  const graph::StmtNode &Node = G.stmt(StmtId);

  // Innermost: the member statement instances, guarded when their shifted
  // domain is narrower than the hull.
  AstPtr Body = AstNode::block();
  for (std::size_t I = 0; I < Node.Nests.size(); ++I) {
    const ir::LoopNest &Nest = G.chain().nest(Node.Nests[I]);
    poly::BoxSet Shifted = Nest.Domain.translated(Node.Shifts[I]);
    AstPtr Stmt = AstNode::stmt(Node.Nests[I], Node.Shifts[I]);
    if (Shifted == Node.Domain) {
      Body->Children.push_back(std::move(Stmt));
    } else {
      AstPtr Guard = AstNode::guard(std::move(Shifted));
      Guard->Children.push_back(std::move(Stmt));
      Body->Children.push_back(std::move(Guard));
    }
  }

  // Wrap in loops following the node's execution order (interchange may
  // have permuted it), innermost last.
  std::vector<unsigned> Order = Node.executionOrder();
  for (unsigned K = Node.Domain.rank(); K-- > 0;) {
    const poly::Dim &Dim = Node.Domain.dim(Order[K]);
    AstPtr Loop = AstNode::loop(Dim.Name, Dim.Lower, Dim.Upper);
    Loop->Children.push_back(std::move(Body));
    Body = std::move(Loop);
  }
  return Body;
}

AstPtr codegen::generate(const Graph &G) {
  AstPtr Root = AstNode::block();
  for (NodeId S : G.scheduleOrder())
    Root->Children.push_back(generateStmtNode(G, S));
  return Root;
}
