//===- codegen/CPrinter.cpp -----------------------------------------------===//

#include "codegen/CPrinter.h"

#include <sstream>

using namespace lcdfg;
using namespace lcdfg::codegen;

namespace {

class Printer {
public:
  Printer(const graph::Graph &G, const PrintOptions &Options)
      : G(G), Options(Options) {}

  std::string run(const AstNode &Root) {
    visit(Root, /*CurrentIters=*/{});
    return OS.str();
  }

private:
  void indent() {
    for (unsigned I = 0; I < Level * Options.Indent; ++I)
      OS << ' ';
  }

  /// Renders an index expression `iter + offset - shift` simplified.
  static std::string indexExpr(const std::string &Iter, std::int64_t Delta) {
    if (Delta == 0)
      return Iter;
    std::ostringstream S;
    S << Iter << (Delta > 0 ? "+" : "-") << (Delta < 0 ? -Delta : Delta);
    return S.str();
  }

  /// Renders one array access with the storage map applied.
  std::string access(const std::string &Array,
                     const std::vector<std::string> &Iters,
                     const std::vector<std::int64_t> &Offsets,
                     const std::vector<std::int64_t> &Shift) {
    std::vector<std::string> Indices(Iters.size());
    for (std::size_t D = 0; D < Iters.size(); ++D)
      Indices[D] = indexExpr(Iters[D], Offsets[D] - Shift[D]);

    if (Options.Plan && Options.Plan->hasMap(Array)) {
      const storage::StorageMap &M = Options.Plan->map(Array);
      if (M.Kind == storage::MapKind::Modulo) {
        std::ostringstream S;
        S << "space" << M.SpaceId << "[(";
        // Linearize with the extent strides, symbolically.
        bool First = true;
        for (std::size_t D = 0; D < Indices.size(); ++D) {
          poly::AffineExpr Len = M.Extent.dim(D).Upper -
                                 M.Extent.dim(D).Lower + poly::AffineExpr(1);
          std::string Stride;
          for (std::size_t E = D + 1; E < Indices.size(); ++E) {
            poly::AffineExpr L = M.Extent.dim(E).Upper -
                                 M.Extent.dim(E).Lower +
                                 poly::AffineExpr(1);
            Stride += (Stride.empty() ? "" : "*") + std::string("(") +
                      L.toString() + ")";
          }
          (void)Len;
          if (!First)
            S << " + ";
          S << "(" << Indices[D] << ")";
          if (!Stride.empty())
            S << "*" << Stride;
          First = false;
        }
        S << ") % (" << M.Size.toString() << ")]";
        return S.str();
      }
    }
    std::ostringstream S;
    S << Array << "(";
    for (std::size_t D = 0; D < Indices.size(); ++D) {
      if (D)
        S << ", ";
      S << Indices[D];
    }
    S << ")";
    return S.str();
  }

  void visit(const AstNode &Node, std::vector<std::string> Iters) {
    switch (Node.Kind) {
    case AstKind::Block:
      for (const AstPtr &Child : Node.Children)
        visit(*Child, Iters);
      return;
    case AstKind::Loop: {
      indent();
      OS << "for (int " << Node.Iter << " = " << Node.Lower.toString()
         << "; " << Node.Iter << " <= " << Node.Upper.toString() << "; ++"
         << Node.Iter << ") {\n";
      ++Level;
      Iters.push_back(Node.Iter);
      for (const AstPtr &Child : Node.Children)
        visit(*Child, Iters);
      --Level;
      indent();
      OS << "}\n";
      return;
    }
    case AstKind::Guard: {
      indent();
      OS << "if (";
      for (unsigned D = 0; D < Node.Domain.rank(); ++D) {
        if (D)
          OS << " && ";
        const poly::Dim &Dim = Node.Domain.dim(D);
        OS << Dim.Lower.toString() << " <= " << Dim.Name << " && "
           << Dim.Name << " <= " << Dim.Upper.toString();
      }
      OS << ") {\n";
      ++Level;
      for (const AstPtr &Child : Node.Children)
        visit(*Child, Iters);
      --Level;
      indent();
      OS << "}\n";
      return;
    }
    case AstKind::StmtInstance: {
      const ir::LoopNest &Nest = G.chain().nest(Node.NestId);
      indent();
      OS << access(Nest.Write.Array, Iters, Nest.Write.Offsets.front(),
                   Node.Shift)
         << " = f_" << Nest.Name << "(";
      bool First = true;
      for (const ir::Access &R : Nest.Reads) {
        for (const auto &Off : R.Offsets) {
          if (!First)
            OS << ", ";
          OS << access(R.Array, Iters, Off, Node.Shift);
          First = false;
        }
      }
      OS << ");";
      OS << "  // " << Nest.Name << "\n";
      return;
    }
    }
  }

  const graph::Graph &G;
  const PrintOptions &Options;
  std::ostringstream OS;
  unsigned Level = 0;
};

} // namespace

std::string codegen::printC(const graph::Graph &G, const AstNode &Root,
                            const PrintOptions &Options) {
  Printer P(G, Options);
  return P.run(Root);
}

/// See the header: one specialized segment body per (expression, shape)
/// class. The function matches the BatchedKernel ABI exactly, so the
/// address dlsym returns casts straight to codegen::BatchedKernel.
std::string codegen::printSegmentKernel(const KernelExpr &Body,
                                        const SegmentKernelSig &Sig,
                                        const std::string &Symbol) {
  const std::size_t Arity = Sig.ReadStrides.size();
  bool Aliased = false;
  for (std::size_t J = 0; J < Arity; ++J)
    if (J < Sig.ReadAliasesWrite.size() && Sig.ReadAliasesWrite[J])
      Aliased = true;

  std::ostringstream OS;
  OS << "/* lcdfg JIT segment kernel: " << Body.text() << " */\n"
     << "#include <stdint.h>\n\n"
     << "void " << Symbol << "(double *" << (Aliased ? "" : "restrict ")
     << "W, const double *const *R,\n"
     << "    const int64_t *S, int64_t WS, int64_t N) {\n";
  for (std::size_t J = 0; J < Arity; ++J) {
    const bool ThisAliases =
        J < Sig.ReadAliasesWrite.size() && Sig.ReadAliasesWrite[J];
    OS << "  const double *" << (Aliased || ThisAliases ? "" : "restrict ")
       << "R" << J << " = R[" << J << "];\n";
  }
  // The runtime stride operands are superseded by the baked literals.
  OS << "  (void)R;\n  (void)S;\n  (void)WS;\n";
  if (!Aliased)
    OS << "#pragma omp simd\n";
  OS << "  for (int64_t I = 0; I < N; ++I)\n";
  const std::string Current =
      "W[I * " + std::to_string(Sig.WriteStride) + "]";
  const std::string Expr = Body.render(
      [&Sig](unsigned J) {
        const std::int64_t Stride =
            J < Sig.ReadStrides.size() ? Sig.ReadStrides[J] : 0;
        return "R" + std::to_string(J) + "[I * " + std::to_string(Stride) +
               "]";
      },
      Current);
  OS << "    " << Current << " = " << Expr << ";\n"
     << "}\n";
  return OS.str();
}

namespace {

std::string i64(std::int64_t V) { return std::to_string(V) + "LL"; }

/// `(M - C + (S-1)) / S` for S > 0, `C / -S + 1` for S < 0 — the
/// stepsToWrap formula of RowPlan.cpp with the stride and modulo size
/// folded to literals. Never requested for S == 0.
std::string stepsToWrapExpr(const std::string &Cur, std::int64_t S,
                            std::int64_t M) {
  if (S > 0)
    return "(" + i64(M) + " - " + Cur + " + " + i64(S - 1) + ") / " + i64(S);
  return Cur + " / " + i64(-S) + " + 1";
}

} // namespace

/// See the header: the emitted function is RowPlan::run's segment walker
/// specialized to one plan. Every line below mirrors a line of that walker
/// (resolveStream, the cap pass, the exec pass, advanceStream) with the
/// bounds, strides, modulo sizes and the conflict cap folded to literals —
/// which is the whole safety argument: identical chunk boundaries and
/// statement interleave mean identical results, bit for bit.
std::string codegen::printRowKernel(const RowKernelDesc &Desc,
                                    const std::string &Symbol) {
  constexpr std::int64_t Never = std::int64_t{1} << 62;
  const std::size_t NS = Desc.Stmts.size();

  auto Cur = [](std::size_t SI, std::size_t J) {
    return "C" + std::to_string(SI) + "_" + std::to_string(J);
  };
  auto Cnt = [](std::size_t SI, std::size_t J) {
    return "L" + std::to_string(SI) + "_" + std::to_string(J);
  };
  auto MW = [](std::size_t SI) { return "MW" + std::to_string(SI); };
  auto Adm = [](std::size_t SI) { return "A" + std::to_string(SI); };
  auto HasCountdown = [](const RowKernelDesc::Stream &S) {
    return S.Modulo && S.InnerStride != 0;
  };
  auto StreamsOf = [](const RowKernelDesc::Stmt &St) {
    std::vector<const RowKernelDesc::Stream *> V;
    V.push_back(&St.Write);
    for (const RowKernelDesc::Stream &R : St.Reads)
      V.push_back(&R);
    return V;
  };
  auto Emitted = [](const RowKernelDesc::Stmt &St) {
    return St.Lo <= St.Hi && St.Body; // Else never admitted with work.
  };

  std::ostringstream OS;
  OS << "/* lcdfg JIT fused row walker: " << NS << " statement(s) */\n"
     << "#include <stdint.h>\n\n"
     << "void " << Symbol << "(double *const *Spaces, const int64_t *Base,\n"
     << "    uint64_t Admit, int64_t RowLo, int64_t RowHi, int64_t *Ctrs) {\n"
     << "  int64_t Segs = 0, Wraps = 0;\n"
     << "  (void)Spaces;\n  (void)Base;\n  (void)Admit;\n";

  // Row setup: admission flags and resolveStream per admitted statement —
  // cursor at the statement's own InnerLo, wrap countdowns, the per-
  // statement countdown minimum. Constant-divisor modulo throughout.
  for (std::size_t SI = 0; SI < NS; ++SI) {
    const RowKernelDesc::Stmt &St = Desc.Stmts[SI];
    if (!Emitted(St))
      continue;
    const auto Streams = StreamsOf(St);
    bool AnyCountdown = false;
    OS << "  /* S" << SI << ": " << St.Body->text() << " */\n"
       << "  const int " << Adm(SI) << " = (Admit >> " << SI << ") & 1;\n";
    for (std::size_t J = 0; J < Streams.size(); ++J) {
      OS << "  int64_t " << Cur(SI, J) << " = 0;";
      if (HasCountdown(*Streams[J])) {
        OS << " int64_t " << Cnt(SI, J) << " = " << i64(Never) << ";";
        AnyCountdown = true;
      }
      OS << "\n";
    }
    if (AnyCountdown)
      OS << "  int64_t " << MW(SI) << " = " << i64(Never) << ";\n";
    OS << "  if (" << Adm(SI) << ") {\n";
    for (std::size_t J = 0; J < Streams.size(); ++J) {
      const RowKernelDesc::Stream &S = *Streams[J];
      OS << "    " << Cur(SI, J) << " = Base[" << S.Flat << "] + "
         << i64(St.Lo) << " * " << i64(S.InnerStride) << ";\n";
      if (S.Modulo) {
        OS << "    " << Cur(SI, J) << " %= " << i64(S.ModSize) << "; if ("
           << Cur(SI, J) << " < 0) " << Cur(SI, J) << " += " << i64(S.ModSize)
           << ";\n";
        if (HasCountdown(S))
          OS << "    " << Cnt(SI, J) << " = "
             << stepsToWrapExpr(Cur(SI, J), S.InnerStride, S.ModSize) << ";\n";
      }
    }
    bool First = true;
    for (std::size_t J = 0; J < Streams.size(); ++J) {
      if (!HasCountdown(*Streams[J]))
        continue;
      if (First)
        OS << "    " << MW(SI) << " = " << Cnt(SI, J) << ";\n";
      else
        OS << "    if (" << Cnt(SI, J) << " < " << MW(SI) << ") " << MW(SI)
           << " = " << Cnt(SI, J) << ";\n";
      First = false;
    }
    OS << "  }\n";
  }

  // The segment walk over the admitted row bounds, chunked exactly as the
  // interpreter chunks: conflict cap, activation boundaries, wrap
  // countdowns — then every active statement in record order.
  OS << "  int64_t X = RowLo;\n"
     << "  while (X <= RowHi) {\n"
     << "    int64_t N = RowHi - X + 1;\n";
  if (Desc.MaxSegment < Never)
    OS << "    if (N > " << i64(Desc.MaxSegment) << ") N = "
       << i64(Desc.MaxSegment) << ";\n";
  for (std::size_t SI = 0; SI < NS; ++SI) {
    const RowKernelDesc::Stmt &St = Desc.Stmts[SI];
    if (!Emitted(St))
      continue;
    bool AnyCountdown = false;
    for (const RowKernelDesc::Stream *S : StreamsOf(St))
      if (HasCountdown(*S))
        AnyCountdown = true;
    OS << "    if (" << Adm(SI) << " && X <= " << i64(St.Hi) << ") {\n"
       << "      if (" << i64(St.Lo) << " > X) {\n"
       << "        if (N > " << i64(St.Lo) << " - X) N = " << i64(St.Lo)
       << " - X;\n"
       << "      } else {\n"
       << "        if (N > " << i64(St.Hi) << " - X + 1) N = " << i64(St.Hi)
       << " - X + 1;\n";
    if (AnyCountdown)
      OS << "        if (N > " << MW(SI) << ") N = " << MW(SI) << ";\n";
    OS << "      }\n"
       << "    }\n";
  }
  for (std::size_t SI = 0; SI < NS; ++SI) {
    const RowKernelDesc::Stmt &St = Desc.Stmts[SI];
    if (!Emitted(St))
      continue;
    const auto Streams = StreamsOf(St);
    bool Aliased = false;
    for (const RowKernelDesc::Stream &R : St.Reads)
      if (R.AliasesWrite)
        Aliased = true;
    OS << "    if (" << Adm(SI) << " && " << i64(St.Lo) << " <= X && X <= "
       << i64(St.Hi) << ") {\n"
       << "      {\n"
       << "        double *" << (Aliased ? "" : "restrict ") << "W = Spaces["
       << St.Write.Space << "] + " << Cur(SI, 0) << ";\n";
    for (std::size_t R = 0; R < St.Reads.size(); ++R)
      OS << "        const double *"
         << (Aliased || St.Reads[R].AliasesWrite ? "" : "restrict ") << "R"
         << R << " = Spaces[" << St.Reads[R].Space << "] + " << Cur(SI, 1 + R)
         << ";\n";
    if (!Aliased)
      OS << "#pragma omp simd\n";
    const std::string Current =
        "W[I * " + std::to_string(St.Write.InnerStride) + "]";
    const std::string Expr = St.Body->render(
        [&St](unsigned J) {
          const std::int64_t Stride =
              J < St.Reads.size() ? St.Reads[J].InnerStride : 0;
          return "R" + std::to_string(J) + "[I * " + std::to_string(Stride) +
                 "]";
        },
        Current);
    OS << "        for (int64_t I = 0; I < N; ++I)\n"
       << "          " << Current << " = " << Expr << ";\n"
       << "      }\n"
       << "      ++Segs;\n";
    // advanceStream per stream; the countdown reaches exactly zero because
    // the cap pass never lets N exceed it.
    for (std::size_t J = 0; J < Streams.size(); ++J) {
      const RowKernelDesc::Stream &S = *Streams[J];
      if (S.InnerStride != 0)
        OS << "      " << Cur(SI, J) << " += N * " << i64(S.InnerStride)
           << ";\n";
      if (HasCountdown(S))
        OS << "      if ((" << Cnt(SI, J) << " -= N) == 0) { " << Cur(SI, J)
           << " %= " << i64(S.ModSize) << "; if (" << Cur(SI, J) << " < 0) "
           << Cur(SI, J) << " += " << i64(S.ModSize) << "; " << Cnt(SI, J)
           << " = " << stepsToWrapExpr(Cur(SI, J), S.InnerStride, S.ModSize)
           << "; ++Wraps; }\n";
    }
    bool First = true;
    for (std::size_t J = 0; J < Streams.size(); ++J) {
      if (!HasCountdown(*Streams[J]))
        continue;
      if (First)
        OS << "      " << MW(SI) << " = " << Cnt(SI, J) << ";\n";
      else
        OS << "      if (" << Cnt(SI, J) << " < " << MW(SI) << ") " << MW(SI)
           << " = " << Cnt(SI, J) << ";\n";
      First = false;
    }
    OS << "    }\n";
  }
  OS << "    X += N;\n"
     << "  }\n"
     << "  Ctrs[0] += Segs;\n"
     << "  Ctrs[1] += Wraps;\n"
     << "}\n";
  return OS.str();
}
