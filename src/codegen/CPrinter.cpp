//===- codegen/CPrinter.cpp -----------------------------------------------===//

#include "codegen/CPrinter.h"

#include <sstream>

using namespace lcdfg;
using namespace lcdfg::codegen;

namespace {

class Printer {
public:
  Printer(const graph::Graph &G, const PrintOptions &Options)
      : G(G), Options(Options) {}

  std::string run(const AstNode &Root) {
    visit(Root, /*CurrentIters=*/{});
    return OS.str();
  }

private:
  void indent() {
    for (unsigned I = 0; I < Level * Options.Indent; ++I)
      OS << ' ';
  }

  /// Renders an index expression `iter + offset - shift` simplified.
  static std::string indexExpr(const std::string &Iter, std::int64_t Delta) {
    if (Delta == 0)
      return Iter;
    std::ostringstream S;
    S << Iter << (Delta > 0 ? "+" : "-") << (Delta < 0 ? -Delta : Delta);
    return S.str();
  }

  /// Renders one array access with the storage map applied.
  std::string access(const std::string &Array,
                     const std::vector<std::string> &Iters,
                     const std::vector<std::int64_t> &Offsets,
                     const std::vector<std::int64_t> &Shift) {
    std::vector<std::string> Indices(Iters.size());
    for (std::size_t D = 0; D < Iters.size(); ++D)
      Indices[D] = indexExpr(Iters[D], Offsets[D] - Shift[D]);

    if (Options.Plan && Options.Plan->hasMap(Array)) {
      const storage::StorageMap &M = Options.Plan->map(Array);
      if (M.Kind == storage::MapKind::Modulo) {
        std::ostringstream S;
        S << "space" << M.SpaceId << "[(";
        // Linearize with the extent strides, symbolically.
        bool First = true;
        for (std::size_t D = 0; D < Indices.size(); ++D) {
          poly::AffineExpr Len = M.Extent.dim(D).Upper -
                                 M.Extent.dim(D).Lower + poly::AffineExpr(1);
          std::string Stride;
          for (std::size_t E = D + 1; E < Indices.size(); ++E) {
            poly::AffineExpr L = M.Extent.dim(E).Upper -
                                 M.Extent.dim(E).Lower +
                                 poly::AffineExpr(1);
            Stride += (Stride.empty() ? "" : "*") + std::string("(") +
                      L.toString() + ")";
          }
          (void)Len;
          if (!First)
            S << " + ";
          S << "(" << Indices[D] << ")";
          if (!Stride.empty())
            S << "*" << Stride;
          First = false;
        }
        S << ") % (" << M.Size.toString() << ")]";
        return S.str();
      }
    }
    std::ostringstream S;
    S << Array << "(";
    for (std::size_t D = 0; D < Indices.size(); ++D) {
      if (D)
        S << ", ";
      S << Indices[D];
    }
    S << ")";
    return S.str();
  }

  void visit(const AstNode &Node, std::vector<std::string> Iters) {
    switch (Node.Kind) {
    case AstKind::Block:
      for (const AstPtr &Child : Node.Children)
        visit(*Child, Iters);
      return;
    case AstKind::Loop: {
      indent();
      OS << "for (int " << Node.Iter << " = " << Node.Lower.toString()
         << "; " << Node.Iter << " <= " << Node.Upper.toString() << "; ++"
         << Node.Iter << ") {\n";
      ++Level;
      Iters.push_back(Node.Iter);
      for (const AstPtr &Child : Node.Children)
        visit(*Child, Iters);
      --Level;
      indent();
      OS << "}\n";
      return;
    }
    case AstKind::Guard: {
      indent();
      OS << "if (";
      for (unsigned D = 0; D < Node.Domain.rank(); ++D) {
        if (D)
          OS << " && ";
        const poly::Dim &Dim = Node.Domain.dim(D);
        OS << Dim.Lower.toString() << " <= " << Dim.Name << " && "
           << Dim.Name << " <= " << Dim.Upper.toString();
      }
      OS << ") {\n";
      ++Level;
      for (const AstPtr &Child : Node.Children)
        visit(*Child, Iters);
      --Level;
      indent();
      OS << "}\n";
      return;
    }
    case AstKind::StmtInstance: {
      const ir::LoopNest &Nest = G.chain().nest(Node.NestId);
      indent();
      OS << access(Nest.Write.Array, Iters, Nest.Write.Offsets.front(),
                   Node.Shift)
         << " = f_" << Nest.Name << "(";
      bool First = true;
      for (const ir::Access &R : Nest.Reads) {
        for (const auto &Off : R.Offsets) {
          if (!First)
            OS << ", ";
          OS << access(R.Array, Iters, Off, Node.Shift);
          First = false;
        }
      }
      OS << ");";
      OS << "  // " << Nest.Name << "\n";
      return;
    }
    }
  }

  const graph::Graph &G;
  const PrintOptions &Options;
  std::ostringstream OS;
  unsigned Level = 0;
};

} // namespace

std::string codegen::printC(const graph::Graph &G, const AstNode &Root,
                            const PrintOptions &Options) {
  Printer P(G, Options);
  return P.run(Root);
}
