//===- codegen/Interpreter.cpp --------------------------------------------===//

#include "codegen/Interpreter.h"

#include "exec/ExecutionPlan.h"
#include "exec/PlanRunner.h"
#include "support/Errors.h"
#include "support/Status.h"

using namespace lcdfg;
using namespace lcdfg::codegen;

int KernelRegistry::add(Kernel K, BatchedKernel B) {
  Kernels.push_back(std::move(K));
  BatchedKernels.push_back(B);
  Exprs.emplace_back();
  return static_cast<int>(Kernels.size() - 1);
}

int KernelRegistry::add(Kernel K, BatchedKernel B, KernelExpr E) {
  int Id = add(std::move(K), B);
  Exprs[static_cast<std::size_t>(Id)] = std::move(E);
  return Id;
}

const KernelRegistry::Kernel &KernelRegistry::get(int Id) const {
  if (Id < 0 || Id >= static_cast<int>(Kernels.size()))
    support::raise(support::ErrorCode::KernelMissing,
                   "kernel registry: unknown kernel id " +
                     std::to_string(Id));
  return Kernels[static_cast<std::size_t>(Id)];
}

BatchedKernel KernelRegistry::batched(int Id) const {
  if (Id < 0 || Id >= static_cast<int>(BatchedKernels.size()))
    return nullptr;
  return BatchedKernels[static_cast<std::size_t>(Id)];
}

const KernelExpr *KernelRegistry::expr(int Id) const {
  if (Id < 0 || Id >= static_cast<int>(Exprs.size()))
    return nullptr;
  const auto &E = Exprs[static_cast<std::size_t>(Id)];
  return E ? &*E : nullptr;
}

void codegen::execute(
    const graph::Graph &G, const AstNode &Root, const KernelRegistry &Kernels,
    storage::ConcreteStorage &Store,
    const std::map<std::string, std::int64_t, std::less<>> &Env) {
  exec::ExecutionPlan Plan = exec::ExecutionPlan::fromAst(G, Root, Store, Env);
  exec::runPlan(Plan, Kernels, Store);
}
