//===- codegen/Interpreter.cpp --------------------------------------------===//

#include "codegen/Interpreter.h"

#include "support/Errors.h"

#include <cassert>

using namespace lcdfg;
using namespace lcdfg::codegen;

int KernelRegistry::add(Kernel K) {
  Kernels.push_back(std::move(K));
  return static_cast<int>(Kernels.size() - 1);
}

const KernelRegistry::Kernel &KernelRegistry::get(int Id) const {
  if (Id < 0 || Id >= static_cast<int>(Kernels.size()))
    reportFatalError("kernel registry: unknown kernel id " +
                     std::to_string(Id));
  return Kernels[static_cast<std::size_t>(Id)];
}

namespace {

class Executor {
public:
  Executor(const graph::Graph &G, const KernelRegistry &Kernels,
           storage::ConcreteStorage &Store,
           const std::map<std::string, std::int64_t, std::less<>> &Env)
      : G(G), Kernels(Kernels), Store(Store), Env(Env) {}

  void run(const AstNode &Node) {
    switch (Node.Kind) {
    case AstKind::Block:
      for (const AstPtr &Child : Node.Children)
        run(*Child);
      return;
    case AstKind::Loop: {
      std::int64_t Lo = Node.Lower.evaluate(Env);
      std::int64_t Hi = Node.Upper.evaluate(Env);
      auto [It, Inserted] = Env.emplace(Node.Iter, Lo);
      assert(Inserted && "loop iterator shadows an existing binding");
      (void)Inserted;
      for (std::int64_t V = Lo; V <= Hi; ++V) {
        It->second = V;
        for (const AstPtr &Child : Node.Children)
          run(*Child);
      }
      Env.erase(It);
      return;
    }
    case AstKind::Guard: {
      for (unsigned D = 0; D < Node.Domain.rank(); ++D) {
        const poly::Dim &Dim = Node.Domain.dim(D);
        auto It = Env.find(Dim.Name);
        if (It == Env.end())
          reportFatalError("interpreter: guard on unbound iterator " +
                           Dim.Name);
        if (It->second < Dim.Lower.evaluate(Env) ||
            It->second > Dim.Upper.evaluate(Env))
          return;
      }
      for (const AstPtr &Child : Node.Children)
        run(*Child);
      return;
    }
    case AstKind::StmtInstance:
      runStmt(Node);
      return;
    }
  }

private:
  void runStmt(const AstNode &Node) {
    const ir::LoopNest &Nest = G.chain().nest(Node.NestId);
    unsigned Rank = Nest.Domain.rank();
    // Original iteration point: current iterators minus the fusion shift.
    std::vector<std::int64_t> Point(Rank);
    for (unsigned D = 0; D < Rank; ++D) {
      auto It = Env.find(Nest.Domain.dim(D).Name);
      if (It == Env.end())
        reportFatalError("interpreter: unbound iterator " +
                         Nest.Domain.dim(D).Name + " in nest " + Nest.Name);
      Point[D] = It->second - Node.Shift[D];
    }
    Reads.clear();
    std::vector<std::int64_t> Where(Rank);
    for (const ir::Access &R : Nest.Reads) {
      for (const auto &Off : R.Offsets) {
        for (unsigned D = 0; D < Rank; ++D)
          Where[D] = Point[D] + Off[D];
        Reads.push_back(Store.at(R.Array, Where));
      }
    }
    for (unsigned D = 0; D < Rank; ++D)
      Where[D] = Point[D] + Nest.Write.Offsets.front()[D];
    double &Target = Store.at(Nest.Write.Array, Where);
    Target = Kernels.get(Nest.KernelId)(Reads, Target);
  }

  const graph::Graph &G;
  const KernelRegistry &Kernels;
  storage::ConcreteStorage &Store;
  std::map<std::string, std::int64_t, std::less<>> Env;
  std::vector<double> Reads;
};

} // namespace

void codegen::execute(
    const graph::Graph &G, const AstNode &Root, const KernelRegistry &Kernels,
    storage::ConcreteStorage &Store,
    const std::map<std::string, std::int64_t, std::less<>> &Env) {
  Executor E(G, Kernels, Store, Env);
  E.run(Root);
}
