//===- exec/Recovery.h - Graceful-degradation ladder ------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fail-operational run loop on top of exec::runPlan. A transformed
/// plan is the fast path, not the only path: when a rung of the execution
/// stack refuses or fails, runWithRecovery() retries one rung down instead
/// of dying, and records exactly which rung fired and why:
///
///   batched-parallel -> scalar-parallel -> scalar-serial
///       -> fallback (the untransformed original-schedule plan,
///          scalar-serial — the semantics of record)
///
/// Descent triggers carry stable reason codes (docs/ROBUSTNESS.md):
///
///   L001-batched-refusal    row-batching proved no safe segment cap
///   L002-worker-exception   a pool worker threw (incl. injected faults)
///   L003-verifier-error     the strict static gate flagged the plan
///   L004-redzone-violation  hardened run tripped a buffer canary
///   L005-nan-guard          hardened run left NaN in a persistent output
///   L006-plan-invalid       plan/storage validation failed (deterministic
///                           — retrying the same rung cannot help, so the
///                           ladder jumps straight to the fallback plan)
///   L007-mem-budget         the live-temporary budget could not admit the
///                           plan (E016) — the ladder waives the budget and
///                           descends to the scalar-serial rung, whose task
///                           order has the minimum footprint any admission
///                           policy could reach (completing beats failing)
///   L008-jit-unavailable    JIT kernels were requested but the engine
///                           cannot deliver them (no host compiler, cache
///                           failure, compile error — E017); the run
///                           proceeds on the interpreted batched bodies,
///                           bit-identical by construction
///   L009-shard-degraded     a sharded multi-process run lost a peer
///                           (E018) or an exchange deadline (E019); the
///                           coordinator restores the pre-step snapshot
///                           and re-runs the remaining steps in a single
///                           process, bit-identical to never sharding
///                           (shard::runSharded, docs/SHARDING.md)
///
/// The ladder never re-runs a rung that failed deterministically, and a
/// one-shot injected fault is consumed by the rung it kills, so recovery
/// is reproducible: either some rung completes (Recovered when any descent
/// happened) or every rung is exhausted and the report carries an
/// E014-exhausted Status wrapping the last failure.
///
/// A failed attempt may have published partial results — the pool drains
/// in-flight tasks, and kernels may accumulate into persistent spaces —
/// so each store is snapshotted before its first attempt and restored
/// before every retry, keeping recovered outputs bit-identical to the
/// scalar-serial oracle no matter how late a fault fires.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_EXEC_RECOVERY_H
#define LCDFG_EXEC_RECOVERY_H

#include "exec/PlanRunner.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lcdfg {
namespace exec {

/// Stable descent reason codes. Tests and CI match on these strings.
inline constexpr const char *ReasonBatchedRefusal = "L001-batched-refusal";
inline constexpr const char *ReasonWorkerException = "L002-worker-exception";
inline constexpr const char *ReasonVerifierError = "L003-verifier-error";
inline constexpr const char *ReasonRedzone = "L004-redzone-violation";
inline constexpr const char *ReasonNanGuard = "L005-nan-guard";
inline constexpr const char *ReasonPlanInvalid = "L006-plan-invalid";
inline constexpr const char *ReasonMemBudget = "L007-mem-budget";
inline constexpr const char *ReasonJitUnavailable = "L008-jit-unavailable";
inline constexpr const char *ReasonShardDegraded = "L009-shard-degraded";

/// What one recovering run did: every rung descent with its reason, the
/// rung that finally ran (or the error that exhausted the ladder), and the
/// completed run's stats.
struct RunReport {
  struct Descent {
    std::string Rung;   ///< The rung that failed ("batched-parallel", ...).
    std::string Reason; ///< Stable L00x code.
    std::string Detail; ///< Human-readable cause (diagnostic / status).
  };
  std::vector<Descent> Descents;

  std::string FinalRung; ///< Rung that completed, or the last one tried.
  bool Completed = false;
  /// Completed after at least one descent (the fail-operational case).
  bool Recovered = false;
  /// E014-exhausted wrapping the last failure when !Completed.
  support::Status Error;
  PlanStats Stats; ///< Of the completed run.

  std::string toString() const;
  /// {"completed":...,"final_rung":...,"descents":[{...}],"error":{...}}
  std::string toJson() const;
};

/// Ladder configuration.
struct RecoverOptions {
  /// The requested starting rung: Batched/Threads/Harden are honored until
  /// a descent lowers them.
  RunOptions Run;
  /// Run the static PlanVerifier as a gate before executing each distinct
  /// plan; verifier errors descend with L003 (to the fallback plan — a
  /// statically illegal schedule will not become legal by running slower).
  bool StrictVerify = false;
  /// Kernel registry handed to the verifier's batching audit (optional).
  const codegen::KernelRegistry *VerifyKernels = nullptr;
  /// Statement-instance budget for the verifier gate.
  std::int64_t VerifyBudget = std::int64_t{1} << 22;
  /// The untransformed original-schedule plan, lowered against
  /// \p FallbackStore (or the primary store when null). Must stay alive
  /// for the duration of the call.
  const ExecutionPlan *Fallback = nullptr;
  storage::ConcreteStorage *FallbackStore = nullptr;
};

/// Runs \p Plan with automatic degradation. Applies any armed structural
/// faults (modulo corruption on a plan copy, input truncation on the
/// store) before the first rung, so a fault campaign exercises the whole
/// gate + ladder path. Never throws.
RunReport runWithRecovery(const ExecutionPlan &Plan,
                          const codegen::KernelRegistry &Kernels,
                          storage::ConcreteStorage &Store,
                          const RecoverOptions &Opts = {});

} // namespace exec
} // namespace lcdfg

#endif // LCDFG_EXEC_RECOVERY_H
