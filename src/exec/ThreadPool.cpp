//===- exec/ThreadPool.cpp - Persistent worker-thread pool ----------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "exec/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lcdfg {
namespace exec {

namespace {

/// Set while a thread is executing region work, so parallel regions
/// started from inside another region run inline instead of deadlocking
/// on the pool (same semantics OpenMP gave us with nesting disabled).
thread_local bool InsideRegion = false;

} // namespace

struct ThreadPool::Impl {
  /// One parallel region. Participants claim iterations with a shared
  /// atomic ticket; the last one out signals completion.
  struct Region {
    const std::function<void(int, int)> *Fn = nullptr;
    int Count = 0;
    std::atomic<int> Next{0};
    std::atomic<int> Active{0};
    std::atomic<bool> Cancelled{false};
    std::exception_ptr Error;
    std::mutex ErrorMu;

    void run(int Participant) {
      InsideRegion = true;
      for (;;) {
        if (Cancelled.load(std::memory_order_relaxed))
          break;
        int I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= Count)
          break;
        try {
          (*Fn)(I, Participant);
        } catch (...) {
          std::lock_guard<std::mutex> Lock(ErrorMu);
          if (!Error)
            Error = std::current_exception();
          Cancelled.store(true, std::memory_order_relaxed);
        }
      }
      InsideRegion = false;
    }
  };

  std::mutex Mu;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  std::vector<std::thread> Workers;
  Region *Current = nullptr;
  /// Participant id the next waking worker should take; workers above
  /// the region's participant budget go straight back to sleep.
  int NextParticipant = 0;
  int ParticipantBudget = 0;
  std::uint64_t Generation = 0;
  bool Shutdown = false;

  void workerLoop() {
    std::uint64_t SeenGeneration = 0;
    for (;;) {
      Region *R = nullptr;
      int Participant = -1;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        WorkCv.wait(Lock, [&] {
          return Shutdown || (Current && Generation != SeenGeneration);
        });
        if (Shutdown)
          return;
        SeenGeneration = Generation;
        if (NextParticipant >= ParticipantBudget)
          continue; // Region already has enough hands.
        Participant = NextParticipant++;
        R = Current;
        R->Active.fetch_add(1, std::memory_order_relaxed);
      }
      R->run(Participant);
      if (R->Active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> Lock(Mu);
        DoneCv.notify_all();
      }
    }
  }

  void ensureWorkers(int Needed) {
    // Caller holds Mu.
    while (static_cast<int>(Workers.size()) < Needed)
      Workers.emplace_back([this] { workerLoop(); });
  }

  void run(int Count, int Threads, const std::function<void(int, int)> &Fn) {
    Region R;
    R.Fn = &Fn;
    R.Count = Count;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      // One region at a time; concurrent top-level callers queue here.
      DoneCv.wait(Lock, [&] { return Current == nullptr; });
      Current = &R;
      NextParticipant = 1; // Caller is participant 0.
      ParticipantBudget = Threads;
      ++Generation;
      ensureWorkers(Threads - 1);
      WorkCv.notify_all();
    }
    R.run(/*Participant=*/0);
    {
      std::unique_lock<std::mutex> Lock(Mu);
      DoneCv.wait(Lock,
                  [&] { return R.Active.load(std::memory_order_acquire) == 0; });
      Current = nullptr;
      DoneCv.notify_all(); // Wake queued top-level callers.
    }
    if (R.Error)
      std::rethrow_exception(R.Error);
  }
};

ThreadPool::ThreadPool() : PImpl(new Impl) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(PImpl->Mu);
    PImpl->Shutdown = true;
    PImpl->WorkCv.notify_all();
  }
  for (std::thread &T : PImpl->Workers)
    T.join();
  delete PImpl;
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool;
  return Pool;
}

int ThreadPool::effectiveThreads(int Requested) {
  if (Requested < 1)
    Requested = 1;
  if (const char *Env = std::getenv("LCDFG_THREADS")) {
    char *End = nullptr;
    long Cap = std::strtol(Env, &End, 10);
    if (End != Env && Cap > 0 && Cap < Requested)
      Requested = static_cast<int>(Cap);
  }
  return Requested;
}

void ThreadPool::parallelFor(int Count, int Threads,
                             const std::function<void(int)> &Fn) {
  parallelForWorker(Count, Threads,
                    [&Fn](int I, int /*Participant*/) { Fn(I); });
}

void ThreadPool::parallelForWorker(int Count, int Threads,
                                   const std::function<void(int, int)> &Fn) {
  if (Count <= 0)
    return;
  Threads = effectiveThreads(Threads);
  if (Threads > Count)
    Threads = Count;
  if (Threads <= 1 || InsideRegion) {
    // Serial (or nested) execution on the calling thread.
    bool Saved = InsideRegion;
    InsideRegion = true;
    try {
      for (int I = 0; I < Count; ++I)
        Fn(I, 0);
    } catch (...) {
      InsideRegion = Saved;
      throw;
    }
    InsideRegion = Saved;
    return;
  }
  PImpl->run(Count, Threads, Fn);
}

int ThreadPool::workerCount() const {
  std::lock_guard<std::mutex> Lock(PImpl->Mu);
  return static_cast<int>(PImpl->Workers.size());
}

} // namespace exec
} // namespace lcdfg
