//===- exec/PlanRunner.h - Execute compiled plans ---------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs an ExecutionPlan against concrete storage: serially in task order,
/// or in parallel on the thread pool — dependence-respecting wavefronts of
/// nest tasks for untiled plans, whole tiles as worker units (with
/// non-persistent spaces privatized per worker) for tile-parallel plans.
/// The runner doubles as the observability layer: per-node wall time and
/// per-edge read counters that can be diffed against graph::Traffic and
/// the symbolic S_R totals.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_EXEC_PLANRUNNER_H
#define LCDFG_EXEC_PLANRUNNER_H

#include "codegen/Interpreter.h"
#include "exec/ExecutionPlan.h"
#include "storage/LivenessAllocator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lcdfg {
namespace jit {
class Engine;
} // namespace jit
namespace exec {

/// Subcodes carried on E013-guard-tripped statuses, naming which hardened
/// guard fired. The degradation ladder classifies its L004/L005 descents
/// from these instead of parsing the human-readable message.
inline constexpr const char *GuardSubcodeRedzone = "redzone";
inline constexpr const char *GuardSubcodeNanGuard = "nan-guard";

/// Runtime measurements of one plan execution.
struct PlanStats {
  /// Per statement node (instructions aggregated by label, in first-run
  /// order).
  struct NodeStat {
    std::string Label;
    double Seconds = 0.0;
    std::int64_t Points = 0;   ///< Statement instances executed.
    std::int64_t RawReads = 0; ///< Operand loads performed.
  };
  std::vector<NodeStat> Nodes;

  /// Per instrumented read edge. Distinct counts the elements of the
  /// value array the consumer touched — the quantity graph::Traffic
  /// enumerates and S_R models; Raw counts every load through the edge.
  struct EdgeStat {
    std::string Array;
    std::string Consumer;
    unsigned Multiplicity = 1;
    std::int64_t Distinct = 0;
    std::int64_t Raw = 0;
    /// The traffic the edge contributes under the paper's model: a
    /// collapsed edge streams its footprint once, an uncollapsed one once
    /// per statement set.
    std::int64_t total() const { return Distinct * Multiplicity; }
  };
  std::vector<EdgeStat> Edges;

  /// Per-participant totals. The Collector always accumulates these (the
  /// merge into Nodes used to discard the breakdown), so --metrics at T>1
  /// can show load imbalance; index = participant id. Under serial or
  /// stats-collecting runs there is exactly one entry.
  struct WorkerStat {
    double Seconds = 0.0;      ///< Sum of task wall times on this worker.
    std::int64_t Tasks = 0;    ///< Plan tasks this worker ran.
    std::int64_t Points = 0;   ///< Statement instances it executed.
    std::int64_t RawReads = 0; ///< Operand loads it performed.
  };
  std::vector<WorkerStat> Workers;

  double Seconds = 0.0; ///< Whole-plan wall time.

  int ThreadsRequested = 1; ///< RunOptions::Threads after the env cap.
  int ThreadsUsed = 1;      ///< Participants that actually ran the plan.
  /// True when CollectStats forced the run onto one thread; wall times
  /// from such a run must not be read as parallel numbers.
  bool SerializedForStats = false;

  /// Sum of per-edge totals (the measured counterpart of S_R).
  std::int64_t totalRead() const;

  /// Fraction of the run's wall time participant \p W spent not executing
  /// tasks, in [0, 1] (0 when wall time is unknown). Unlike the max/min
  /// busy-seconds ratio this is meaningful even when one worker did
  /// almost nothing: an idle share of 0.75 reads as "this worker was
  /// useful a quarter of the run", where a busy-ratio blows up to
  /// infinity.
  double idleShare(std::size_t W) const;
  /// Largest idleShare over all participants (0 when Workers is empty) —
  /// the scheduler-comparison figure bench_compare reports.
  double maxIdleShare() const;

  std::string toString() const;
};

/// Which task-graph strategy parallel runs dispatch through. Serial runs
/// (Threads <= 1 after the env cap, or CollectStats) ignore this and
/// execute in plan task order.
enum class SchedulerKind {
  Wavefront, ///< Longest-path-depth levels with a barrier per level.
  List,      ///< Work-stealing ready deques, critical-path priorities,
             ///  optional live-temporary budget (the default).
};

/// Stable printable name ("wavefront" / "list").
std::string_view schedulerKindName(SchedulerKind K);

/// Applies the LCDFG_SCHED environment override (values "wavefront" or
/// "list"; anything else is ignored) to \p Requested — the CI scheduler
/// matrix re-runs unmodified test binaries through both strategies.
SchedulerKind effectiveScheduler(SchedulerKind Requested);

/// Where batched statement bodies come from.
enum class KernelMode {
  Interp, ///< The C++ bodies registered in the KernelRegistry (default).
  Jit,    ///< Shape-specialized bodies compiled at run time (src/jit);
          ///  statements the engine cannot specialize keep the
          ///  interpreted body, so Jit is always safe to request.
};

/// Stable printable name ("interp" / "jit").
std::string_view kernelModeName(KernelMode K);

/// Applies the LCDFG_JIT environment override (values "on"/"jit" force
/// Jit, "off"/"0"/"interp" force Interp; anything else is ignored) to
/// \p Requested, mirroring effectiveScheduler for the CI kernel matrix.
KernelMode effectiveKernelMode(KernelMode Requested);

/// Execution options.
struct RunOptions {
  /// Parallelism budget (participants). 1 = serial in task order. The
  /// LCDFG_THREADS environment variable caps this further.
  int Threads = 1;
  /// Collect per-edge element counters (forces serial execution; timing
  /// alone is always collected).
  bool CollectStats = false;
  /// Execute through row-batched kernels where the nest compiles to a
  /// RowPlan and every kernel has a batched body; instructions that do not
  /// qualify fall back to the scalar interpreter. Stats runs always use
  /// the scalar path (it is the element-counting oracle).
  bool Batched = true;
  /// Hardened mode: run against canary-padded (redzone) shadow buffers
  /// with NaN-poisoned temporaries. After the run the redzones are checked
  /// and the persistent spaces scanned for NaN (a poisoned temporary that
  /// leaked into an output exposes a read-before-write in the schedule);
  /// any violation raises an E013-guard-tripped StatusError and the
  /// caller's storage is left untouched. On success the persistent spaces
  /// are copied back.
  bool Harden = false;
  /// Task-graph strategy for parallel runs (LCDFG_SCHED overrides).
  SchedulerKind Scheduler = SchedulerKind::List;
  /// Live-temporary byte cap for the list scheduler; 0 = unlimited. Only
  /// the untiled parallel path models storage footprint (tile-parallel
  /// runs privatize their temporaries per worker; external plans own no
  /// storage), so the budget applies there — elsewhere a nonzero budget
  /// raises E016-mem-budget-infeasible rather than silently not binding.
  std::int64_t MemBudget = 0;
  /// Batched-body provenance (LCDFG_JIT overrides). Only consulted on the
  /// batched path; statements the JIT cannot specialize silently keep
  /// their interpreted bodies (the ladder reports the downgrade as L008).
  KernelMode Kernels = KernelMode::Interp;
  /// JIT engine used when Kernels == Jit; nullptr resolves to the
  /// process-wide jit::Engine::global(). Tests inject private engines
  /// (temp cache dirs, dead compilers) here.
  jit::Engine *Jit = nullptr;
};

/// Runs \p Plan against \p Store. Every statement record's kernel must be
/// registered in \p Kernels. Returns the stats report (edge counters only
/// populated under Opts.CollectStats).
PlanStats runPlan(const ExecutionPlan &Plan,
                  const codegen::KernelRegistry &Kernels,
                  storage::ConcreteStorage &Store, const RunOptions &Opts = {});

/// Convenience for plans consisting solely of external tasks (no kernels,
/// no storage).
PlanStats runPlan(const ExecutionPlan &Plan, const RunOptions &Opts = {});

/// Concrete footprint model of \p Plan against \p Store: space sizes from
/// the store's backing buffers, per-task touch sets from the plan's
/// statement streams. The list scheduler builds one per budgeted run; the
/// serving layer builds one per cached plan so admission control can
/// charge a request its serial high-water bytes before any buffer is
/// allocated.
storage::FootprintTracker
buildFootprintTracker(const ExecutionPlan &Plan,
                      const storage::ConcreteStorage &Store);

} // namespace exec
} // namespace lcdfg

#endif // LCDFG_EXEC_PLANRUNNER_H
