//===- exec/FaultInjector.cpp ---------------------------------------------===//

#include "exec/FaultInjector.h"

#include "exec/ExecutionPlan.h"
#include "obs/Trace.h"
#include "storage/StorageMap.h"
#include "support/Errors.h"
#include "support/StringUtils.h"

#include <cstddef>
#include <cstdlib>

using namespace lcdfg;
using namespace lcdfg::exec;
using support::ErrorCode;

std::string_view exec::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::None:
    return "none";
  case FaultSite::Kernel:
    return "kernel";
  case FaultSite::Task:
    return "task";
  case FaultSite::Modulo:
    return "modulo";
  case FaultSite::Input:
    return "input";
  case FaultSite::JitValidate:
    return "jitval";
  case FaultSite::Peer:
    return "peer";
  case FaultSite::Msg:
    return "msg";
  case FaultSite::Serve:
    return "serve";
  }
  return "none";
}

std::string_view exec::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::None:
    return "none";
  case FaultKind::Throw:
    return "throw";
  case FaultKind::Fail:
    return "fail";
  case FaultKind::Corrupt:
    return "corrupt";
  case FaultKind::Truncate:
    return "truncate";
  case FaultKind::Reject:
    return "reject";
  case FaultKind::Kill:
    return "kill";
  case FaultKind::Drop:
    return "drop";
  case FaultKind::Delay:
    return "delay";
  }
  return "none";
}

support::Expected<FaultSpec> FaultInjector::parseSpec(std::string_view Spec) {
  auto Bad = [&](std::string Why) {
    return support::Status::error(ErrorCode::FaultInjected,
                                  "bad LCDFG_FAULT spec '" +
                                      std::string(Spec) + "': " +
                                      std::move(Why));
  };
  std::vector<std::string> Parts = split(Spec, ':');
  if (Parts.size() < 2 || Parts.size() > 3)
    return Bad("expected <site>:<kind>[:<nth>]");

  FaultSpec S;
  std::string_view Site = trim(Parts[0]);
  if (Site == "kernel")
    S.Site = FaultSite::Kernel;
  else if (Site == "task")
    S.Site = FaultSite::Task;
  else if (Site == "modulo")
    S.Site = FaultSite::Modulo;
  else if (Site == "input")
    S.Site = FaultSite::Input;
  else if (Site == "jitval")
    S.Site = FaultSite::JitValidate;
  else if (Site == "peer")
    S.Site = FaultSite::Peer;
  else if (Site == "msg")
    S.Site = FaultSite::Msg;
  else if (Site == "serve")
    S.Site = FaultSite::Serve;
  else
    return Bad("unknown site '" + std::string(Site) +
               "' (kernel|task|modulo|input|jitval|peer|msg|serve)");

  std::string_view Kind = trim(Parts[1]);
  if (Kind == "throw")
    S.Kind = FaultKind::Throw;
  else if (Kind == "fail")
    S.Kind = FaultKind::Fail;
  else if (Kind == "corrupt")
    S.Kind = FaultKind::Corrupt;
  else if (Kind == "truncate")
    S.Kind = FaultKind::Truncate;
  else if (Kind == "reject")
    S.Kind = FaultKind::Reject;
  else if (Kind == "kill")
    S.Kind = FaultKind::Kill;
  else if (Kind == "drop")
    S.Kind = FaultKind::Drop;
  else if (Kind == "delay")
    S.Kind = FaultKind::Delay;
  else
    return Bad("unknown kind '" + std::string(Kind) +
               "' (throw|fail|corrupt|truncate|reject|kill|drop|delay)");

  const bool Paired = (S.Site == FaultSite::Kernel && S.Kind == FaultKind::Throw) ||
                      (S.Site == FaultSite::Task && S.Kind == FaultKind::Fail) ||
                      (S.Site == FaultSite::Modulo && S.Kind == FaultKind::Corrupt) ||
                      (S.Site == FaultSite::Input && S.Kind == FaultKind::Truncate) ||
                      (S.Site == FaultSite::JitValidate && S.Kind == FaultKind::Reject) ||
                      (S.Site == FaultSite::Peer && S.Kind == FaultKind::Kill) ||
                      (S.Site == FaultSite::Msg && (S.Kind == FaultKind::Drop ||
                                                    S.Kind == FaultKind::Truncate ||
                                                    S.Kind == FaultKind::Delay)) ||
                      (S.Site == FaultSite::Serve &&
                       (S.Kind == FaultKind::Drop ||
                        S.Kind == FaultKind::Truncate ||
                        S.Kind == FaultKind::Delay));
  if (!Paired)
    return Bad("kind '" + std::string(Kind) + "' does not apply to site '" +
               std::string(Site) + "'");

  if (Parts.size() == 3) {
    std::string_view N = trim(Parts[2]);
    unsigned Nth = 0;
    for (char C : N) {
      if (C < '0' || C > '9')
        return Bad("occurrence '" + std::string(N) + "' is not a number");
      Nth = Nth * 10 + static_cast<unsigned>(C - '0');
    }
    if (Nth == 0)
      return Bad("occurrence must be >= 1");
    S.Nth = Nth;
  }
  return S;
}

support::Expected<std::vector<FaultSpec>>
FaultInjector::parseSpecs(std::string_view Specs) {
  std::vector<FaultSpec> Parsed;
  for (const std::string &Segment : split(Specs, ';')) {
    if (trim(Segment).empty())
      continue;
    auto Spec = parseSpec(Segment);
    if (!Spec)
      return Spec.takeError();
    Parsed.push_back(*Spec);
  }
  return Parsed;
}

FaultInjector &FaultInjector::global() {
  static FaultInjector *FI = [] {
    auto *Injector = new FaultInjector();
    if (const char *Env = std::getenv("LCDFG_FAULT"); Env && *Env) {
      auto Specs = parseSpecs(Env);
      if (!Specs)
        reportFatalError(Specs.error().toString());
      Injector->arm(std::move(*Specs));
    }
    return Injector;
  }();
  return *FI;
}

void FaultInjector::arm(FaultSpec S) {
  arm(std::vector<FaultSpec>{S});
}

void FaultInjector::arm(std::vector<FaultSpec> NewSpecs) {
  std::lock_guard<std::mutex> Lock(Mu);
  Specs.clear();
  for (FaultSpec &S : NewSpecs)
    if (S.Site != FaultSite::None)
      Specs.push_back(ArmedSpec{S, 0});
  Fired = 0;
  Armed.store(!Specs.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> Lock(Mu);
  Specs.clear();
  Armed.store(false, std::memory_order_relaxed);
}

bool FaultInjector::armedFor(FaultSite Site) const {
  if (!Armed.load(std::memory_order_relaxed))
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  for (const ArmedSpec &A : Specs)
    if (A.Spec.Site == Site)
      return true;
  return false;
}

FaultSpec FaultInjector::spec() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Specs.empty() ? FaultSpec{} : Specs.front().Spec;
}

bool FaultInjector::shouldFire(FaultSite Site) {
  return fire(Site) != FaultKind::None;
}

FaultKind FaultInjector::fire(FaultSite Site) {
  if (!Armed.load(std::memory_order_relaxed))
    return FaultKind::None;
  std::lock_guard<std::mutex> Lock(Mu);
  // Every matching spec counts this occurrence of the site; the first one
  // reaching its Nth fires and disarms itself (one-shot — retries down the
  // degradation ladder see a healthy system). Other specs stay armed.
  FaultSpec FiredSpec;
  for (std::size_t I = 0; I < Specs.size(); ++I) {
    ArmedSpec &A = Specs[I];
    if (A.Spec.Site != Site)
      continue;
    if (++A.Hits < A.Spec.Nth || FiredSpec.Site != FaultSite::None)
      continue;
    FiredSpec = A.Spec;
    Specs.erase(Specs.begin() + static_cast<std::ptrdiff_t>(I));
    --I;
  }
  if (FiredSpec.Site == FaultSite::None)
    return FaultKind::None;
  ++Fired;
  Armed.store(!Specs.empty(), std::memory_order_relaxed);
  // Annotate the firing on the trace timeline (the tracer never calls back
  // into the injector, so taking its lock under Mu cannot invert).
  obs::Tracer &Tr = obs::Tracer::global();
  if (Tr.enabled()) {
    std::string Label = "fault:" +
                        std::string(faultSiteName(FiredSpec.Site)) + ":" +
                        std::string(faultKindName(FiredSpec.Kind));
    Tr.instant(obs::SpanKind::Marker, Tr.intern(Label));
    Tr.add(obs::Counter::FaultsFired, 1);
  }
  return FiredSpec.Kind;
}

unsigned FaultInjector::firedCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Fired;
}

bool FaultInjector::applyPlanFault(ExecutionPlan &Plan) {
  if (!armedFor(FaultSite::Modulo))
    return false;
  for (NestInstr &I : Plan.Instrs) {
    for (StmtRecord &S : I.Stmts) {
      auto Corrupt = [&](Stream &St) {
        if (!St.Modulo || St.ModSize <= 1)
          return false;
        if (!shouldFire(FaultSite::Modulo))
          return false;
        St.ModSize -= 1;
        return true;
      };
      if (Corrupt(S.Write))
        return true;
      for (Stream &R : S.Reads)
        if (Corrupt(R))
          return true;
    }
  }
  return false;
}

bool FaultInjector::applyStorageFault(const ExecutionPlan &Plan,
                                      storage::ConcreteStorage &Store) {
  if (!armedFor(FaultSite::Input))
    return false;
  for (std::size_t S = 0; S < Plan.NumSpaces && S < Store.numSpaces(); ++S) {
    if (!Plan.SpacePersistent[S] || Store.space(S).size() <= 1)
      continue;
    // Every eligible space is one occurrence of the site: keep scanning on
    // a miss so input:truncate:<nth> with nth > 1 can still fire.
    if (!shouldFire(FaultSite::Input))
      continue;
    Store.space(S).resize(Store.space(S).size() / 2);
    return true;
  }
  return false;
}
