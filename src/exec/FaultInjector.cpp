//===- exec/FaultInjector.cpp ---------------------------------------------===//

#include "exec/FaultInjector.h"

#include "exec/ExecutionPlan.h"
#include "obs/Trace.h"
#include "storage/StorageMap.h"
#include "support/Errors.h"
#include "support/StringUtils.h"

#include <cstdlib>

using namespace lcdfg;
using namespace lcdfg::exec;
using support::ErrorCode;

std::string_view exec::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::None:
    return "none";
  case FaultSite::Kernel:
    return "kernel";
  case FaultSite::Task:
    return "task";
  case FaultSite::Modulo:
    return "modulo";
  case FaultSite::Input:
    return "input";
  case FaultSite::JitValidate:
    return "jitval";
  }
  return "none";
}

std::string_view exec::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::None:
    return "none";
  case FaultKind::Throw:
    return "throw";
  case FaultKind::Fail:
    return "fail";
  case FaultKind::Corrupt:
    return "corrupt";
  case FaultKind::Truncate:
    return "truncate";
  case FaultKind::Reject:
    return "reject";
  }
  return "none";
}

support::Expected<FaultSpec> FaultInjector::parseSpec(std::string_view Spec) {
  auto Bad = [&](std::string Why) {
    return support::Status::error(ErrorCode::FaultInjected,
                                  "bad LCDFG_FAULT spec '" +
                                      std::string(Spec) + "': " +
                                      std::move(Why));
  };
  std::vector<std::string> Parts = split(Spec, ':');
  if (Parts.size() < 2 || Parts.size() > 3)
    return Bad("expected <site>:<kind>[:<nth>]");

  FaultSpec S;
  std::string_view Site = trim(Parts[0]);
  if (Site == "kernel")
    S.Site = FaultSite::Kernel;
  else if (Site == "task")
    S.Site = FaultSite::Task;
  else if (Site == "modulo")
    S.Site = FaultSite::Modulo;
  else if (Site == "input")
    S.Site = FaultSite::Input;
  else if (Site == "jitval")
    S.Site = FaultSite::JitValidate;
  else
    return Bad("unknown site '" + std::string(Site) +
               "' (kernel|task|modulo|input|jitval)");

  std::string_view Kind = trim(Parts[1]);
  if (Kind == "throw")
    S.Kind = FaultKind::Throw;
  else if (Kind == "fail")
    S.Kind = FaultKind::Fail;
  else if (Kind == "corrupt")
    S.Kind = FaultKind::Corrupt;
  else if (Kind == "truncate")
    S.Kind = FaultKind::Truncate;
  else if (Kind == "reject")
    S.Kind = FaultKind::Reject;
  else
    return Bad("unknown kind '" + std::string(Kind) +
               "' (throw|fail|corrupt|truncate|reject)");

  const bool Paired = (S.Site == FaultSite::Kernel && S.Kind == FaultKind::Throw) ||
                      (S.Site == FaultSite::Task && S.Kind == FaultKind::Fail) ||
                      (S.Site == FaultSite::Modulo && S.Kind == FaultKind::Corrupt) ||
                      (S.Site == FaultSite::Input && S.Kind == FaultKind::Truncate) ||
                      (S.Site == FaultSite::JitValidate && S.Kind == FaultKind::Reject);
  if (!Paired)
    return Bad("kind '" + std::string(Kind) + "' does not apply to site '" +
               std::string(Site) + "'");

  if (Parts.size() == 3) {
    std::string_view N = trim(Parts[2]);
    unsigned Nth = 0;
    for (char C : N) {
      if (C < '0' || C > '9')
        return Bad("occurrence '" + std::string(N) + "' is not a number");
      Nth = Nth * 10 + static_cast<unsigned>(C - '0');
    }
    if (Nth == 0)
      return Bad("occurrence must be >= 1");
    S.Nth = Nth;
  }
  return S;
}

FaultInjector &FaultInjector::global() {
  static FaultInjector *FI = [] {
    auto *Injector = new FaultInjector();
    if (const char *Env = std::getenv("LCDFG_FAULT"); Env && *Env) {
      auto Spec = parseSpec(Env);
      if (!Spec)
        reportFatalError(Spec.error().toString());
      Injector->arm(*Spec);
    }
    return Injector;
  }();
  return *FI;
}

void FaultInjector::arm(FaultSpec S) {
  std::lock_guard<std::mutex> Lock(Mu);
  Spec = S;
  Hits = 0;
  Fired = 0;
  Armed.store(S.Site != FaultSite::None, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> Lock(Mu);
  Spec = FaultSpec{};
  Armed.store(false, std::memory_order_relaxed);
}

bool FaultInjector::armedFor(FaultSite Site) const {
  if (!Armed.load(std::memory_order_relaxed))
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  return Spec.Site == Site;
}

FaultSpec FaultInjector::spec() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Spec;
}

bool FaultInjector::shouldFire(FaultSite Site) {
  if (!Armed.load(std::memory_order_relaxed))
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Spec.Site != Site)
    return false;
  if (++Hits < Spec.Nth)
    return false;
  // One-shot: retries down the degradation ladder see a healthy system.
  ++Fired;
  const FaultSpec FiredSpec = Spec;
  Spec = FaultSpec{};
  Armed.store(false, std::memory_order_relaxed);
  // Annotate the firing on the trace timeline (the tracer never calls back
  // into the injector, so taking its lock under Mu cannot invert).
  obs::Tracer &Tr = obs::Tracer::global();
  if (Tr.enabled()) {
    std::string Label = "fault:" +
                        std::string(faultSiteName(FiredSpec.Site)) + ":" +
                        std::string(faultKindName(FiredSpec.Kind));
    Tr.instant(obs::SpanKind::Marker, Tr.intern(Label));
    Tr.add(obs::Counter::FaultsFired, 1);
  }
  return true;
}

unsigned FaultInjector::firedCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Fired;
}

bool FaultInjector::applyPlanFault(ExecutionPlan &Plan) {
  if (!armedFor(FaultSite::Modulo))
    return false;
  for (NestInstr &I : Plan.Instrs) {
    for (StmtRecord &S : I.Stmts) {
      auto Corrupt = [&](Stream &St) {
        if (!St.Modulo || St.ModSize <= 1)
          return false;
        if (!shouldFire(FaultSite::Modulo))
          return false;
        St.ModSize -= 1;
        return true;
      };
      if (Corrupt(S.Write))
        return true;
      for (Stream &R : S.Reads)
        if (Corrupt(R))
          return true;
    }
  }
  return false;
}

bool FaultInjector::applyStorageFault(const ExecutionPlan &Plan,
                                      storage::ConcreteStorage &Store) {
  if (!armedFor(FaultSite::Input))
    return false;
  for (std::size_t S = 0; S < Plan.NumSpaces && S < Store.numSpaces(); ++S) {
    if (!Plan.SpacePersistent[S] || Store.space(S).size() <= 1)
      continue;
    // Every eligible space is one occurrence of the site: keep scanning on
    // a miss so input:truncate:<nth> with nth > 1 can still fire.
    if (!shouldFire(FaultSite::Input))
      continue;
    Store.space(S).resize(Store.space(S).size() / 2);
    return true;
  }
  return false;
}
