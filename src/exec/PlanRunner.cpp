//===- exec/PlanRunner.cpp - Execute compiled plans -----------------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "exec/PlanRunner.h"

#include "exec/FaultInjector.h"
#include "exec/RowPlan.h"
#include "exec/TaskGraph.h"
#include "exec/ThreadPool.h"
#include "jit/JitEngine.h"
#include "obs/Trace.h"
#include "storage/LivenessAllocator.h"
#include "support/Errors.h"
#include "support/Status.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::exec;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Dense distinct-element tracker for one instrumented edge. Identities
/// are pre-wrap linear indices, so the index range is bounded by the
/// stream hulls of the plan (not by any modulo size); the Collector sizes
/// each bitset from those hulls up front. One bit per producible element
/// replaces the hash node per distinct element the old unordered_set
/// spent, which dominated --stats runs at large N.
struct EdgeBits {
  std::int64_t Lo = 0;
  std::vector<std::uint64_t> Words;
  std::int64_t Distinct = 0;

  void insert(std::int64_t V) {
    const std::uint64_t Bit = static_cast<std::uint64_t>(V - Lo);
    std::uint64_t &W = Words[Bit >> 6];
    const std::uint64_t M = std::uint64_t{1} << (Bit & 63);
    if (!(W & M)) {
      W |= M;
      ++Distinct;
    }
  }
};

/// Mutable measurement state for one run.
struct Collector {
  /// Per-edge distinct element identities (pre-modulo linear indices) and
  /// raw load counts. Only populated under CollectStats.
  std::vector<EdgeBits> Edges;
  std::vector<std::int64_t> EdgeRaw;
  bool CountEdges = false;

  /// Per-label node aggregation, pre-registered in instruction order so
  /// the report is deterministic.
  std::vector<PlanStats::NodeStat> Nodes;
  std::vector<std::size_t> InstrNode; ///< Instr index -> Nodes index.
  /// Per-participant breakdown of the same credits (the load-imbalance
  /// view PlanStats::Workers reports).
  std::vector<PlanStats::WorkerStat> Workers;
  std::mutex NodeMu;

  /// Non-null while the global tracer is recording this run; TraceLabels
  /// then holds one interned label per instruction and TraceRun0 the
  /// run's start in tracer time (for the whole-run span).
  obs::Tracer *Tr = nullptr;
  std::vector<std::int32_t> TraceLabels;
  std::int64_t TraceRun0 = 0;

  Collector(const ExecutionPlan &Plan, bool CountEdges, int Threads)
      : CountEdges(CountEdges) {
    Workers.resize(static_cast<std::size_t>(Threads < 1 ? 1 : Threads));
    obs::Tracer &Tracer = obs::Tracer::global();
    if (Tracer.enabled()) {
      Tr = &Tracer;
      TraceLabels.reserve(Plan.Instrs.size());
      for (const NestInstr &I : Plan.Instrs)
        TraceLabels.push_back(Tracer.intern(I.Label));
      TraceRun0 = Tracer.nowNs();
    }
    if (CountEdges) {
      std::vector<std::int64_t> Min(Plan.Edges.size(), 0);
      std::vector<std::int64_t> Max(Plan.Edges.size(), -1);
      std::vector<bool> Seen(Plan.Edges.size(), false);
      for (const NestInstr &I : Plan.Instrs) {
        bool Empty = false;
        for (const LoopLevel &L : I.Loops)
          Empty = Empty || L.Lo > L.Hi;
        if (Empty)
          continue;
        for (const StmtRecord &S : I.Stmts)
          for (const Stream &R : S.Reads) {
            if (R.Edge < 0)
              continue;
            std::int64_t Lo = R.Base, Hi = R.Base;
            for (std::size_t Lv = 0; Lv < I.Loops.size(); ++Lv) {
              const std::int64_t A = I.Loops[Lv].Lo * R.LevelStrides[Lv];
              const std::int64_t B = I.Loops[Lv].Hi * R.LevelStrides[Lv];
              Lo += std::min(A, B);
              Hi += std::max(A, B);
            }
            const auto E = static_cast<std::size_t>(R.Edge);
            if (!Seen[E]) {
              Seen[E] = true;
              Min[E] = Lo;
              Max[E] = Hi;
            } else {
              Min[E] = std::min(Min[E], Lo);
              Max[E] = std::max(Max[E], Hi);
            }
          }
      }
      Edges.resize(Plan.Edges.size());
      EdgeRaw.assign(Plan.Edges.size(), 0);
      for (std::size_t E = 0; E < Edges.size(); ++E) {
        Edges[E].Lo = Min[E];
        const std::int64_t Extent = Seen[E] ? Max[E] - Min[E] + 1 : 0;
        Edges[E].Words.assign(static_cast<std::size_t>((Extent + 63) / 64), 0);
      }
    }
    std::map<std::string, std::size_t> ByLabel;
    for (const NestInstr &I : Plan.Instrs) {
      auto [It, Inserted] = ByLabel.emplace(I.Label, Nodes.size());
      if (Inserted)
        Nodes.push_back(PlanStats::NodeStat{I.Label, 0.0, 0, 0});
      InstrNode.push_back(It->second);
    }
  }

  void credit(std::size_t Instr, int Participant, double Seconds,
              std::int64_t Points, std::int64_t RawReads) {
    std::lock_guard<std::mutex> Lock(NodeMu);
    PlanStats::NodeStat &N = Nodes[InstrNode[Instr]];
    N.Seconds += Seconds;
    N.Points += Points;
    N.RawReads += RawReads;
    // Nested inline regions report participant 0; clamp defensively so a
    // stray id can never write out of bounds.
    const std::size_t W =
        Participant >= 0 && static_cast<std::size_t>(Participant) <
                                Workers.size()
            ? static_cast<std::size_t>(Participant)
            : 0;
    PlanStats::WorkerStat &WS = Workers[W];
    WS.Seconds += Seconds;
    ++WS.Tasks;
    WS.Points += Points;
    WS.RawReads += RawReads;
  }
};

/// Interprets one compiled instruction against the space table \p Spaces
/// (index = space id, value = buffer base pointer).
void runInstr(const NestInstr &I, const codegen::KernelRegistry &Kernels,
              double *const *Spaces, Collector &C, std::size_t InstrIdx,
              int Participant) {
  Clock::time_point Start = Clock::now();
  const int L = static_cast<int>(I.Loops.size());
  std::vector<std::int64_t> Iter(L);
  for (int Lv = 0; Lv < L; ++Lv) {
    if (I.Loops[Lv].Lo > I.Loops[Lv].Hi) {
      C.credit(InstrIdx, Participant, secondsSince(Start), 0, 0);
      return;
    }
    Iter[Lv] = I.Loops[Lv].Lo;
  }
  // Hoist the per-statement kernel lookups out of the loop.
  std::vector<const codegen::KernelRegistry::Kernel *> Bodies;
  Bodies.reserve(I.Stmts.size());
  for (const StmtRecord &S : I.Stmts)
    Bodies.push_back(&Kernels.get(S.KernelId));

  std::vector<double> Reads;
  std::int64_t Points = 0, RawReads = 0, Wraps = 0;
  for (;;) {
    for (std::size_t SI = 0; SI < I.Stmts.size(); ++SI) {
      const StmtRecord &S = I.Stmts[SI];
      bool Admit = true;
      for (const GuardBound &Gd : S.Guards)
        if (Iter[Gd.Level] < Gd.Lo || Iter[Gd.Level] > Gd.Hi) {
          Admit = false;
          break;
        }
      if (!Admit)
        continue;
      Reads.clear();
      for (const Stream &R : S.Reads) {
        std::int64_t Lin = R.Base;
        for (int Lv = 0; Lv < L; ++Lv)
          Lin += Iter[Lv] * R.LevelStrides[Lv];
        std::int64_t Idx = Lin;
        if (R.Modulo) {
          Idx %= R.ModSize;
          if (Idx < 0)
            Idx += R.ModSize;
          Wraps += Idx != Lin;
        }
        Reads.push_back(Spaces[R.Space][Idx]);
        if (C.CountEdges && R.Edge >= 0) {
          C.Edges[R.Edge].insert(Lin);
          ++C.EdgeRaw[R.Edge];
        }
      }
      const Stream &W = S.Write;
      std::int64_t PreLin = W.Base;
      for (int Lv = 0; Lv < L; ++Lv)
        PreLin += Iter[Lv] * W.LevelStrides[Lv];
      std::int64_t Lin = PreLin;
      if (W.Modulo) {
        Lin %= W.ModSize;
        if (Lin < 0)
          Lin += W.ModSize;
        Wraps += Lin != PreLin;
      }
      double &Target = Spaces[W.Space][Lin];
      Target = (*Bodies[SI])(Reads, Target);
      ++Points;
      RawReads += static_cast<std::int64_t>(Reads.size());
    }
    int Lv = L - 1;
    for (; Lv >= 0; --Lv) {
      if (++Iter[Lv] <= I.Loops[Lv].Hi)
        break;
      Iter[Lv] = I.Loops[Lv].Lo;
    }
    if (Lv < 0)
      break;
  }
  C.credit(InstrIdx, Participant, secondsSince(Start), Points, RawReads);
  if (C.Tr) {
    C.Tr->add(obs::Counter::PointsExecuted, Points);
    C.Tr->add(obs::Counter::RawReads, RawReads);
    C.Tr->add(obs::Counter::BytesMoved, 8 * (Points + RawReads));
    C.Tr->add(obs::Counter::ModuloWraps, Wraps);
  }
}

/// Runs task \p T of \p Plan with the given space table and participant.
/// \p Rows, when non-null, is the per-instruction row-batched compilation
/// (indexed by instruction); instructions whose entry is engaged run
/// through RowPlan::run, the rest through the scalar interpreter.
void runTask(const ExecutionPlan &Plan, int T,
             const codegen::KernelRegistry &Kernels, double *const *Spaces,
             const std::optional<RowPlan> *Rows, Collector &C,
             int Participant) {
  int InstrIdx = Plan.Tasks[T].Instr;
  const NestInstr &I = Plan.Instrs[InstrIdx];
  FaultInjector &FI = FaultInjector::global();
  if (FI.shouldFire(FaultSite::Task))
    support::raise(support::ErrorCode::FaultInjected,
                   "injected task failure: task " + std::to_string(T) +
                       " (" + I.Label + ")");
  // Span bracket: a task that throws records no span (the trace then shows
  // the task as never having completed, which is the truth).
  obs::Tracer *Tr = C.Tr;
  const std::int64_t Span0 = Tr ? Tr->nowNs() : 0;
  auto EndSpan = [&] {
    if (!Tr)
      return;
    obs::TraceSpan S;
    S.T0 = Span0;
    S.T1 = Tr->nowNs();
    S.Kind = obs::SpanKind::Task;
    S.Label = C.TraceLabels[static_cast<std::size_t>(InstrIdx)];
    S.Task = T;
    S.Instr = InstrIdx;
    S.A0 = Participant;
    Tr->record(S);
    Tr->add(obs::Counter::TasksExecuted, 1);
  };
  if (I.External) {
    Clock::time_point Start = Clock::now();
    I.External(Participant);
    C.credit(InstrIdx, Participant, secondsSince(Start), 0, 0);
    if (Tr)
      Tr->add(obs::Counter::ExternalTasks, 1);
    EndSpan();
    return;
  }
  if (FI.shouldFire(FaultSite::Kernel))
    support::raise(support::ErrorCode::FaultInjected,
                   "injected kernel exception in " + I.Label);
  if (Rows && Rows[InstrIdx]) {
    Clock::time_point Start = Clock::now();
    std::int64_t Points = 0, RawReads = 0;
    RowRunCounters RC;
    Rows[InstrIdx]->run(Spaces, Points, RawReads, Tr ? &RC : nullptr);
    C.credit(InstrIdx, Participant, secondsSince(Start), Points, RawReads);
    if (Tr) {
      Tr->add(obs::Counter::BatchedInstrs, 1);
      Tr->add(obs::Counter::BatchedSegments, RC.Segments);
      Tr->add(obs::Counter::ModuloWraps, RC.Wraps);
      Tr->add(obs::Counter::PointsExecuted, Points);
      Tr->add(obs::Counter::RawReads, RawReads);
      Tr->add(obs::Counter::BytesMoved, 8 * (Points + RawReads));
    }
    EndSpan();
    return;
  }
  runInstr(I, Kernels, Spaces, C, InstrIdx, Participant);
  if (Tr)
    Tr->add(obs::Counter::ScalarInstrs, 1);
  EndSpan();
}

PlanStats finish(const ExecutionPlan &Plan, Collector &C, double Seconds,
                 int ThreadsRequested, int ThreadsUsed,
                 bool SerializedForStats) {
  PlanStats Stats;
  Stats.Seconds = Seconds;
  Stats.ThreadsRequested = ThreadsRequested;
  Stats.ThreadsUsed = ThreadsUsed;
  Stats.SerializedForStats = SerializedForStats;
  Stats.Nodes = std::move(C.Nodes);
  Stats.Workers = std::move(C.Workers);
  if (C.CountEdges) {
    for (std::size_t E = 0; E < Plan.Edges.size(); ++E) {
      PlanStats::EdgeStat ES;
      ES.Array = Plan.Edges[E].Array;
      ES.Consumer = Plan.Edges[E].Consumer;
      ES.Multiplicity = Plan.Edges[E].Multiplicity;
      ES.Distinct = C.Edges[E].Distinct;
      ES.Raw = C.EdgeRaw[E];
      Stats.Edges.push_back(std::move(ES));
    }
  }
  if (C.Tr) {
    obs::TraceSpan S;
    S.T0 = C.TraceRun0;
    S.T1 = C.Tr->nowNs();
    S.Kind = obs::SpanKind::Run;
    S.Label = C.Tr->intern("plan-run");
    S.A1 = ThreadsUsed;
    C.Tr->record(S);
  }
  return Stats;
}

/// Plan-vs-storage validation: every compiled stream must address its
/// space within bounds. The hull math matches the Collector's, refined by
/// each statement's guards; modulo streams wrap into [0, ModSize), so for
/// them only the window itself must fit. A plan compiled against storage
/// that later shrank (or a tampered plan) fails here with a structured
/// diagnostic instead of reading or writing out of bounds.
void validatePlan(const ExecutionPlan &Plan,
                  const storage::ConcreteStorage &Store) {
  if (Plan.NumSpaces > Store.numSpaces())
    support::raise(support::ErrorCode::PlanInvalid,
                   "plan addresses " + std::to_string(Plan.NumSpaces) +
                       " spaces but storage has " +
                       std::to_string(Store.numSpaces()));
  for (const NestInstr &I : Plan.Instrs) {
    if (I.External)
      continue;
    bool EmptyNest = false;
    for (const LoopLevel &L : I.Loops)
      EmptyNest = EmptyNest || L.Lo > L.Hi;
    if (EmptyNest)
      continue;
    for (const StmtRecord &S : I.Stmts) {
      auto Check = [&](const Stream &St, const char *What) {
        if (St.Space >= Store.numSpaces())
          support::raise(support::ErrorCode::PlanInvalid,
                         "instruction " + I.Label + ": " + What +
                             " stream addresses unknown space " +
                             std::to_string(St.Space));
        const auto Size =
            static_cast<std::int64_t>(Store.space(St.Space).size());
        if (St.Modulo) {
          if (St.ModSize < 1 || St.ModSize > Size)
            support::raise(support::ErrorCode::PlanInvalid,
                           "instruction " + I.Label + ": modulo window " +
                               std::to_string(St.ModSize) +
                               " does not fit space " +
                               std::to_string(St.Space) + " of size " +
                               std::to_string(Size));
          return;
        }
        std::int64_t Lo = St.Base, Hi = St.Base;
        for (std::size_t Lv = 0; Lv < I.Loops.size(); ++Lv) {
          std::int64_t L0 = I.Loops[Lv].Lo, H0 = I.Loops[Lv].Hi;
          for (const GuardBound &Gd : S.Guards)
            if (Gd.Level == Lv) {
              L0 = std::max(L0, Gd.Lo);
              H0 = std::min(H0, Gd.Hi);
            }
          if (L0 > H0)
            return; // Guard-empty statement: never runs.
          const std::int64_t A = L0 * St.LevelStrides[Lv];
          const std::int64_t B = H0 * St.LevelStrides[Lv];
          Lo += std::min(A, B);
          Hi += std::max(A, B);
        }
        if (Lo < 0 || Hi >= Size)
          support::raise(support::ErrorCode::PlanInvalid,
                         "instruction " + I.Label + ": " + What +
                             " stream spans [" + std::to_string(Lo) + ", " +
                             std::to_string(Hi) + "] outside space " +
                             std::to_string(St.Space) + " of size " +
                             std::to_string(Size));
      };
      Check(S.Write, "write");
      for (const Stream &R : S.Reads)
        Check(R, "read");
    }
  }
}

/// Redzone padding (elements) on each side of a hardened shadow buffer.
constexpr std::size_t RedzonePad = 16;
/// Recognizable canary value; any overwrite (including NaN) trips it.
constexpr double RedzoneCanary = -6.02214076e123;

} // namespace

// Concrete footprint model for the untiled parallel path (and, exported,
// for the serving layer's admission control): space sizes from the store,
// per-task touch sets from the plan's statement streams.
storage::FootprintTracker
exec::buildFootprintTracker(const ExecutionPlan &Plan,
                            const storage::ConcreteStorage &Store) {
  std::vector<storage::FootprintTracker::SpaceInfo> Spaces(Plan.NumSpaces);
  for (std::size_t S = 0; S < Plan.NumSpaces; ++S) {
    Spaces[S].Bytes =
        static_cast<std::int64_t>(Store.space(S).size() * sizeof(double));
    Spaces[S].Persistent = Plan.SpacePersistent[S];
  }
  std::vector<std::vector<unsigned>> TaskSpaces(Plan.Tasks.size());
  for (std::size_t T = 0; T < Plan.Tasks.size(); ++T) {
    const NestInstr &I = Plan.Instrs[Plan.Tasks[T].Instr];
    for (const StmtRecord &St : I.Stmts) {
      TaskSpaces[T].push_back(St.Write.Space);
      for (const Stream &R : St.Reads)
        TaskSpaces[T].push_back(R.Space);
    }
  }
  return storage::FootprintTracker(std::move(Spaces), std::move(TaskSpaces));
}

namespace {

/// Raises E016 when a budget was requested on a path that cannot honor it
/// (anything but the untiled list-scheduled run). Refusing loudly beats a
/// budget that silently does not bind; the recovery ladder turns this into
/// an L007 descent to the serial rung.
void refuseBudget(std::int64_t Budget, const char *Why) {
  if (Budget > 0)
    support::raise(support::ErrorCode::MemBudgetInfeasible,
                   std::string("memory budget not enforceable: ") + Why);
}

} // namespace

std::string_view exec::schedulerKindName(SchedulerKind K) {
  return K == SchedulerKind::Wavefront ? "wavefront" : "list";
}

SchedulerKind exec::effectiveScheduler(SchedulerKind Requested) {
  if (const char *Env = std::getenv("LCDFG_SCHED")) {
    if (std::string_view(Env) == "wavefront")
      return SchedulerKind::Wavefront;
    if (std::string_view(Env) == "list")
      return SchedulerKind::List;
  }
  return Requested;
}

std::string_view exec::kernelModeName(KernelMode K) {
  return K == KernelMode::Jit ? "jit" : "interp";
}

KernelMode exec::effectiveKernelMode(KernelMode Requested) {
  if (const char *Env = std::getenv("LCDFG_JIT")) {
    const std::string_view V(Env);
    if (V == "on" || V == "jit" || V == "1")
      return KernelMode::Jit;
    if (V == "off" || V == "interp" || V == "0")
      return KernelMode::Interp;
  }
  return Requested;
}

std::int64_t PlanStats::totalRead() const {
  std::int64_t Total = 0;
  for (const EdgeStat &E : Edges)
    Total += E.total();
  return Total;
}

double PlanStats::idleShare(std::size_t W) const {
  if (W >= Workers.size() || Seconds <= 0.0)
    return 0.0;
  const double Share = 1.0 - Workers[W].Seconds / Seconds;
  return std::min(1.0, std::max(0.0, Share));
}

double PlanStats::maxIdleShare() const {
  double Max = 0.0;
  for (std::size_t W = 0; W < Workers.size(); ++W)
    Max = std::max(Max, idleShare(W));
  return Max;
}

std::string PlanStats::toString() const {
  std::ostringstream OS;
  OS << "plan run: " << Seconds << " s (threads: " << ThreadsUsed;
  if (SerializedForStats)
    OS << ", serialized for stats collection; " << ThreadsRequested
       << " requested";
  OS << ")\n";
  for (const NodeStat &N : Nodes) {
    OS << "  node " << N.Label << ": " << N.Seconds << " s";
    if (N.Points)
      OS << ", " << N.Points << " points, " << N.RawReads << " reads";
    OS << "\n";
  }
  if (Workers.size() > 1) {
    double MaxSec = 0.0, MinSec = -1.0;
    for (std::size_t W = 0; W < Workers.size(); ++W) {
      const WorkerStat &WS = Workers[W];
      OS << "  worker " << W << ": " << WS.Seconds << " s, " << WS.Tasks
         << " tasks";
      if (WS.Points)
        OS << ", " << WS.Points << " points, " << WS.RawReads << " reads";
      OS << ", idle " << idleShare(W) * 100.0 << "%";
      OS << "\n";
      if (WS.Tasks) {
        MaxSec = std::max(MaxSec, WS.Seconds);
        MinSec = MinSec < 0 ? WS.Seconds : std::min(MinSec, WS.Seconds);
      }
    }
    if (MinSec > 0)
      OS << "  imbalance: max/min worker busy time " << MaxSec / MinSec
         << "x, max idle share " << maxIdleShare() * 100.0 << "%\n";
  }
  for (const EdgeStat &E : Edges)
    OS << "  edge " << E.Array << " -> " << E.Consumer << " (x"
       << E.Multiplicity << "): " << E.Distinct << " distinct, " << E.Raw
       << " raw, " << E.total() << " total\n";
  if (!Edges.empty())
    OS << "  measured total read: " << totalRead() << "\n";
  return OS.str();
}

PlanStats exec::runPlan(const ExecutionPlan &Plan,
                        const codegen::KernelRegistry &Kernels,
                        storage::ConcreteStorage &Store,
                        const RunOptions &Opts) {
  validatePlan(Plan, Store);
  const int Requested = ThreadPool::effectiveThreads(Opts.Threads);
  int Threads = Requested;
  const bool Serialized = Opts.CollectStats && Requested > 1;
  if (Opts.CollectStats)
    Threads = 1; // Element counting shares one collector.
  Collector C(Plan, Opts.CollectStats, Threads);

  // Row-batch the instructions once per run; the compiled plans are
  // immutable and shared by every worker. Stats runs stay on the scalar
  // interpreter, which owns the element counting.
  std::vector<std::optional<RowPlan>> Rows;
  const std::optional<RowPlan> *RowsPtr = nullptr;
  if (Opts.Batched && !Opts.CollectStats) {
    // Kernel provenance: under Jit mode each statement body is swapped for
    // a shape-specialized compiled kernel where the engine can produce
    // one; unspecializable statements keep the interpreted body (counted
    // as exec.jit.fallbacks so --metrics shows partial downgrades).
    jit::Engine *Jit = nullptr;
    if (effectiveKernelMode(Opts.Kernels) == KernelMode::Jit)
      Jit = Opts.Jit ? Opts.Jit : &jit::Engine::global();
    obs::Tracer &Tr = obs::Tracer::global();
    Rows.reserve(Plan.Instrs.size());
    for (const NestInstr &I : Plan.Instrs) {
      RowAnalysis RA = RowPlan::analyze(I, Kernels, Jit);
      if (Jit && RA.Plan)
        Tr.add(obs::Counter::JitFallbacks,
               static_cast<std::int64_t>(RA.Plan->Stmts.size()) - RA.JitStmts);
      Rows.push_back(std::move(RA.Plan));
    }
    RowsPtr = Rows.data();
  }

  Clock::time_point Start = Clock::now();

  // The caller's space table addresses the real storage — or, under
  // hardened mode, redzone-padded shadow buffers: persistent interiors
  // copied from the store, temporaries NaN-poisoned so a read-before-write
  // propagates a recognizable value instead of a silent stale zero.
  std::vector<std::vector<double>> Shadow;
  std::vector<double *> Shared(Plan.NumSpaces);
  if (Opts.Harden) {
    Shadow.resize(Plan.NumSpaces);
    for (std::size_t S = 0; S < Plan.NumSpaces; ++S) {
      const std::vector<double> &Real = Store.space(S);
      Shadow[S].assign(Real.size() + 2 * RedzonePad, RedzoneCanary);
      if (Plan.SpacePersistent[S])
        std::copy(Real.begin(), Real.end(), Shadow[S].begin() + RedzonePad);
      else
        std::fill(Shadow[S].begin() + static_cast<std::ptrdiff_t>(RedzonePad),
                  Shadow[S].end() - static_cast<std::ptrdiff_t>(RedzonePad),
                  std::numeric_limits<double>::quiet_NaN());
      Shared[S] = Shadow[S].data() + RedzonePad;
    }
  } else {
    for (std::size_t S = 0; S < Plan.NumSpaces; ++S)
      Shared[S] = Store.space(S).data();
  }

  // Post-run guard: check every redzone, scan persistent interiors for
  // escaped NaN, then publish the shadow interiors back to the store.
  // Raises E013-guard-tripped (leaving the store untouched) on violation.
  auto HardenGuard = [&]() {
    if (!Opts.Harden)
      return;
    for (std::size_t S = 0; S < Plan.NumSpaces; ++S) {
      const std::vector<double> &B = Shadow[S];
      for (std::size_t P = 0; P < RedzonePad; ++P)
        if (B[P] != RedzoneCanary || B[B.size() - 1 - P] != RedzoneCanary)
          throw support::StatusError(
              support::Status::error(support::ErrorCode::GuardTripped,
                                     "redzone violated on space " +
                                         std::to_string(S))
                  .withSubcode(GuardSubcodeRedzone));
      if (Plan.SpacePersistent[S])
        for (std::size_t E = RedzonePad; E < B.size() - RedzonePad; ++E)
          if (std::isnan(B[E]))
            throw support::StatusError(
                support::Status::error(support::ErrorCode::GuardTripped,
                                       "NaN escaped into persistent space " +
                                           std::to_string(S) + " at element " +
                                           std::to_string(E - RedzonePad) +
                                           " (read-before-write)")
                    .withSubcode(GuardSubcodeNanGuard));
    }
    for (std::size_t S = 0; S < Plan.NumSpaces; ++S)
      if (Plan.SpacePersistent[S])
        std::copy(Shadow[S].begin() + RedzonePad,
                  Shadow[S].end() - static_cast<std::ptrdiff_t>(RedzonePad),
                  Store.space(S).begin());
  };

  const SchedulerKind Sched = effectiveScheduler(Opts.Scheduler);

  // Tile-parallel contract: every tile recomputes the temporaries it
  // reads, starting from clean scratch. Kernels may read their write
  // target's current value, so "clean" has to mean the same initial state
  // on every participant and in every order — reset non-persistent spaces
  // at each tile boundary instead of letting a tile accumulate onto
  // whatever the previous tile left behind.
  const double ScratchInit =
      Opts.Harden ? std::numeric_limits<double>::quiet_NaN() : 0.0;

  if (Threads <= 1 || Plan.Tasks.empty()) {
    // Serial: task order (always a valid topological order) — this is the
    // reference semantics every parallel mode must reproduce. The
    // strategy and budget knobs do not apply: serial order's footprint is
    // the minimum any admission policy could reach anyway.
    int LastTile = -2;
    for (std::size_t T = 0; T < Plan.Tasks.size(); ++T) {
      if (Plan.TileParallel) {
        int Tile = Plan.Instrs[Plan.Tasks[T].Instr].Tile;
        if (Tile >= 0 && Tile != LastTile)
          for (std::size_t S = 0; S < Plan.NumSpaces; ++S)
            if (!Plan.SpacePersistent[S])
              std::fill_n(Shared[S], Store.space(S).size(), ScratchInit);
        LastTile = Tile;
      }
      runTask(Plan, static_cast<int>(T), Kernels, Shared.data(), RowsPtr, C,
              0);
    }
    PlanStats St =
        finish(Plan, C, secondsSince(Start), Requested, 1, Serialized);
    HardenGuard();
    return St;
  }

  if (!Plan.TileParallel) {
    // Untiled (or tile-serial) plans: schedule individual tasks in
    // dependence wavefronts over the shared storage; the conflict edges
    // guarantee no two concurrent tasks touch the same space.
    TaskGraph TG;
    for (std::size_t T = 0; T < Plan.Tasks.size(); ++T)
      TG.addTask([&Plan, &Kernels, &Shared, RowsPtr, &C, T](int Participant) {
        runTask(Plan, static_cast<int>(T), Kernels, Shared.data(), RowsPtr, C,
                Participant);
      });
    for (std::size_t T = 0; T < Plan.Tasks.size(); ++T)
      for (int D : Plan.Tasks[T].Deps)
        TG.addDependence(D, static_cast<int>(T));
    if (Sched == SchedulerKind::List) {
      // The footprint model always rides along (it feeds the priority
      // tie-break and the peak-live counter); the budget binds only when
      // the caller set one.
      storage::FootprintTracker Tracker = buildFootprintTracker(Plan, Store);
      TaskGraph::ListOptions LO;
      LO.Threads = Threads;
      LO.MemBudget = Opts.MemBudget;
      LO.Memory = &Tracker;
      TG.runList(LO);
    } else {
      refuseBudget(Opts.MemBudget, "the wavefront strategy has no admission "
                                   "step (use --scheduler=list)");
      TG.run(Threads);
    }
    PlanStats St =
        finish(Plan, C, secondsSince(Start), Requested, Threads, false);
    HardenGuard();
    return St;
  }

  // Tile-parallel: each tile's instructions run back to back on one
  // worker. Non-persistent spaces are privatized per participant (tiles
  // recompute every temporary they read, so zero-filled private buffers
  // are sufficient); persistent spaces stay shared — terminal nests write
  // disjoint seed regions.
  std::vector<std::vector<std::vector<double>>> Private(
      static_cast<std::size_t>(Threads));
  std::vector<std::vector<double *>> Tables(static_cast<std::size_t>(Threads));
  Tables[0] = Shared; // The caller keeps the real temporaries.
  for (int P = 1; P < Threads; ++P) {
    Private[P].resize(Plan.NumSpaces);
    Tables[P] = Shared;
    for (std::size_t S = 0; S < Plan.NumSpaces; ++S)
      if (!Plan.SpacePersistent[S]) {
        // Tiles recompute every temporary they read, so zero-filled
        // private buffers suffice; hardened runs poison them too.
        Private[P][S].assign(Store.space(S).size(),
                             Opts.Harden
                                 ? std::numeric_limits<double>::quiet_NaN()
                                 : 0.0);
        Tables[P][S] = Private[P][S].data();
      }
  }

  // Group consecutive tasks of the same tile into one scheduling unit.
  std::vector<std::vector<int>> Groups;
  std::vector<int> GroupOf(Plan.Tasks.size());
  int LastTile = -2;
  for (std::size_t T = 0; T < Plan.Tasks.size(); ++T) {
    int Tile = Plan.Instrs[Plan.Tasks[T].Instr].Tile;
    if (Groups.empty() || Tile < 0 || Tile != LastTile)
      Groups.emplace_back();
    Groups.back().push_back(static_cast<int>(T));
    GroupOf[T] = static_cast<int>(Groups.size()) - 1;
    LastTile = Tile;
  }

  TaskGraph TG;
  for (const std::vector<int> &Group : Groups)
    TG.addTask([&Plan, &Kernels, &Tables, &Store, RowsPtr, &C, &Group,
                ScratchInit](int Participant) {
      double *const *Spaces = Tables[static_cast<std::size_t>(Participant)]
                                  .data();
      // Clean scratch per group: participant 0 scribbles on the store's
      // own temporaries (unobservable after the run) and later groups
      // reuse every participant's buffers, so reset rather than trust
      // whatever the previous tile left.
      for (std::size_t S = 0; S < Plan.NumSpaces; ++S)
        if (!Plan.SpacePersistent[S])
          std::fill_n(Spaces[S], Store.space(S).size(), ScratchInit);
      for (int T : Group)
        runTask(Plan, T, Kernels, Spaces, RowsPtr, C, Participant);
    });
  std::set<std::pair<int, int>> Seen;
  for (std::size_t T = 0; T < Plan.Tasks.size(); ++T)
    for (int D : Plan.Tasks[T].Deps) {
      int From = GroupOf[D], To = GroupOf[T];
      if (From != To && Seen.emplace(From, To).second)
        TG.addDependence(From, To);
    }
  // Tile-parallel temporaries are privatized per worker, so a shared-live
  // budget has nothing meaningful to charge — the list scheduler runs
  // without a memory model here.
  refuseBudget(Opts.MemBudget,
               "tile-parallel runs privatize temporaries per worker");
  if (Sched == SchedulerKind::List) {
    TaskGraph::ListOptions LO;
    LO.Threads = Threads;
    TG.runList(LO);
  } else {
    TG.run(Threads);
  }
  PlanStats St =
      finish(Plan, C, secondsSince(Start), Requested, Threads, false);
  HardenGuard();
  return St;
}

PlanStats exec::runPlan(const ExecutionPlan &Plan, const RunOptions &Opts) {
  for (const NestInstr &I : Plan.Instrs)
    if (!I.External)
      support::raise(support::ErrorCode::KernelMissing,
                     "runPlan: compiled instruction requires kernels and "
                     "storage");
  static const codegen::KernelRegistry NoKernels;
  int Threads = ThreadPool::effectiveThreads(Opts.Threads);
  Collector C(Plan, /*CountEdges=*/false, Threads);
  Clock::time_point Start = Clock::now();
  if (Threads <= 1) {
    for (std::size_t T = 0; T < Plan.Tasks.size(); ++T)
      runTask(Plan, static_cast<int>(T), NoKernels, nullptr, nullptr, C, 0);
    return finish(Plan, C, secondsSince(Start), Threads, 1, false);
  }
  TaskGraph TG;
  for (std::size_t T = 0; T < Plan.Tasks.size(); ++T)
    TG.addTask([&Plan, &C, T](int Participant) {
      runTask(Plan, static_cast<int>(T), NoKernels, nullptr, nullptr, C,
              Participant);
    });
  for (std::size_t T = 0; T < Plan.Tasks.size(); ++T)
    for (int D : Plan.Tasks[T].Deps)
      TG.addDependence(D, static_cast<int>(T));
  // External plans own no storage, so there is no footprint to budget.
  refuseBudget(Opts.MemBudget, "external-only plans own no storage");
  if (effectiveScheduler(Opts.Scheduler) == SchedulerKind::List) {
    TaskGraph::ListOptions LO;
    LO.Threads = Threads;
    TG.runList(LO);
  } else {
    TG.run(Threads);
  }
  return finish(Plan, C, secondsSince(Start), Threads, Threads, false);
}
