//===- exec/Recovery.cpp --------------------------------------------------===//

#include "exec/Recovery.h"

#include "exec/FaultInjector.h"
#include "exec/RowPlan.h"
#include "exec/ThreadPool.h"
#include "jit/JitEngine.h"
#include "obs/Trace.h"
#include "storage/StorageMap.h"
#include "verify/PlanVerifier.h"

#include <sstream>
#include <utility>

using namespace lcdfg;
using namespace lcdfg::exec;
using support::ErrorCode;
using support::Status;

namespace {

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += ' ';
      else
        Out += C;
    }
  }
  return Out;
}

/// First error line of a diagnostics set, for descent details.
std::string firstError(const verify::Diagnostics &Diags) {
  for (const verify::Diagnostic &D : Diags.all())
    if (D.Sev == verify::Severity::Error)
      return D.toString();
  return "verifier reported errors";
}

} // namespace

std::string RunReport::toString() const {
  std::ostringstream OS;
  OS << "run report: "
     << (Completed ? (Recovered ? "recovered" : "completed") : "failed")
     << " at rung " << FinalRung << "\n";
  for (const Descent &D : Descents)
    OS << "  descent from " << D.Rung << " [" << D.Reason << "]: " << D.Detail
       << "\n";
  if (!Completed)
    OS << "  error: " << Error.toString() << "\n";
  return OS.str();
}

std::string RunReport::toJson() const {
  std::ostringstream OS;
  OS << "{\"completed\":" << (Completed ? "true" : "false")
     << ",\"recovered\":" << (Recovered ? "true" : "false")
     << ",\"final_rung\":\"" << jsonEscape(FinalRung) << "\",\"descents\":[";
  for (std::size_t I = 0; I < Descents.size(); ++I) {
    if (I)
      OS << ",";
    OS << "{\"rung\":\"" << jsonEscape(Descents[I].Rung) << "\",\"reason\":\""
       << jsonEscape(Descents[I].Reason) << "\",\"detail\":\""
       << jsonEscape(Descents[I].Detail) << "\"}";
  }
  OS << "]";
  if (!Completed)
    OS << ",\"error\":" << Error.toJson();
  OS << "}";
  return OS.str();
}

RunReport exec::runWithRecovery(const ExecutionPlan &Plan,
                                const codegen::KernelRegistry &Kernels,
                                storage::ConcreteStorage &Store,
                                const RecoverOptions &Opts) {
  RunReport R;
  const ExecutionPlan *Cur = &Plan;
  storage::ConcreteStorage *CurStore = &Store;
  RunOptions O = Opts.Run;
  // Resolve the env override once so descents and rung names agree; the
  // runner's own effectiveKernelMode call is then a no-op.
  O.Kernels = effectiveKernelMode(O.Kernels);
  bool OnFallback = false;
  bool JitChecked = false;

  auto RungName = [&]() {
    std::string Name = O.Batched ? "batched" : "scalar";
    if (O.Batched && O.Kernels == KernelMode::Jit)
      Name = "jit-" + Name;
    Name += ThreadPool::effectiveThreads(O.Threads) > 1 ? "-parallel"
                                                        : "-serial";
    if (OnFallback)
      Name = "fallback-" + Name;
    return Name;
  };

  // Ladder observability: every descent is an instant event labelled with
  // its stable L00x reason, every rung attempt a span, so a traced
  // recovery reads directly off the Chrome timeline.
  obs::Tracer &Tr = obs::Tracer::global();
  auto NoteDescent = [&](const char *Reason, std::string Detail) {
    if (Tr.enabled()) {
      Tr.instant(obs::SpanKind::Marker,
                 Tr.intern("descend:" + std::string(Reason)), -1, -1,
                 static_cast<std::int32_t>(R.Descents.size()));
      Tr.add(obs::Counter::RecoveryDescents, 1);
    }
    R.Descents.push_back({RungName(), Reason, std::move(Detail)});
  };

  // Switches the ladder to the untransformed fallback plan (scalar,
  // serial). Returns false when there is nowhere left to descend.
  auto ToFallback = [&]() {
    if (OnFallback || !Opts.Fallback)
      return false;
    OnFallback = true;
    Cur = Opts.Fallback;
    CurStore = Opts.FallbackStore ? Opts.FallbackStore : &Store;
    O.Batched = false;
    O.Threads = 1;
    return true;
  };

  // Structural fault campaigns mutate the system before the first rung: a
  // corrupted modulo window lives on a plan copy (the caller's plan stays
  // pristine), a truncated input mutates the store itself.
  ExecutionPlan Corrupted;
  FaultInjector &FI = FaultInjector::global();
  if (FI.armedFor(FaultSite::Modulo)) {
    Corrupted = Plan;
    if (FI.applyPlanFault(Corrupted))
      Cur = &Corrupted;
  }
  FI.applyStorageFault(*Cur, Store);

  // A failed attempt is not side-effect-free: the pool lets in-flight
  // tasks drain, so completed tasks have already published writes into
  // persistent spaces, and kernels may accumulate into their write target
  // — re-running the plan on the mutated store would silently diverge
  // from the scalar-serial oracle. Snapshot every store before its first
  // attempt (after any storage fault, so the fault environment persists
  // across rungs) and restore it before each retry; hardened attempts get
  // the same guarantee from their publish-on-success shadow buffers, but
  // a descent can land on an unhardened rung, so restore unconditionally.
  std::vector<std::pair<storage::ConcreteStorage *,
                        std::vector<std::vector<double>>>>
      Snapshots;
  auto RestoreOrSnapshotStore = [&]() {
    for (auto &[Snapped, Spaces] : Snapshots)
      if (Snapped == CurStore) {
        for (std::size_t S = 0; S < Spaces.size(); ++S)
          Snapped->space(S) = Spaces[S];
        return;
      }
    std::vector<std::vector<double>> Spaces;
    Spaces.reserve(CurStore->numSpaces());
    for (std::size_t S = 0; S < CurStore->numSpaces(); ++S)
      Spaces.push_back(CurStore->space(S));
    Snapshots.emplace_back(CurStore, std::move(Spaces));
  };

  const ExecutionPlan *Verified = nullptr;
  for (;;) {
    // Strict gate: statically verify each distinct plan before running it.
    if (Opts.StrictVerify && Cur != Verified) {
      verify::VerifyOptions VO;
      VO.Kernels = Opts.VerifyKernels;
      VO.Budget = Opts.VerifyBudget;
      verify::PlanVerifier V(*Cur, VO);
      verify::Diagnostics Diags = V.verify();
      Verified = Cur;
      if (Diags.hasErrors()) {
        std::string Detail = firstError(Diags);
        NoteDescent(ReasonVerifierError, Detail);
        if (ToFallback())
          continue;
        R.FinalRung = RungName();
        R.Error = Status::error(ErrorCode::Exhausted,
                                "verifier rejected the plan and no fallback "
                                "is available: " +
                                    Detail);
        return R;
      }
    }

    // Batched-compile refusal: an instruction whose statement interleave
    // has no provable segment cap keeps the whole run on the scalar path
    // (the per-instruction fallback inside runPlan covers the benign
    // refusal classes silently; the unsafe class is worth reporting).
    if (O.Batched) {
      for (const NestInstr &I : Cur->Instrs) {
        if (I.External)
          continue;
        if (RowPlan::analyze(I, Kernels).Refusal ==
            RowRefusal::UnsafeInterleave) {
          NoteDescent(ReasonBatchedRefusal,
                      "instruction " + I.Label +
                          ": no safe segment cap provable");
          O.Batched = false;
          break;
        }
      }
    }

    // JIT availability: requested-but-undeliverable specialization is
    // reported once (L008) and the run proceeds on the interpreted batched
    // bodies — never a hard error. Kernels without an expression form are
    // benign (like NoBatchedKernel above) and stay silent; a dead engine,
    // a failing host compile, or a translation-validation rejection is
    // worth a descent.
    if (!JitChecked && O.Batched && O.Kernels == KernelMode::Jit) {
      JitChecked = true;
      jit::Engine *Eng = O.Jit ? O.Jit : &jit::Engine::global();
      std::string Why;
      if (!Eng->available()) {
        Why = "engine unavailable: " + Eng->unavailableReason();
      } else {
        for (const NestInstr &I : Cur->Instrs) {
          if (I.External)
            continue;
          RowAnalysis RA = RowPlan::analyze(I, Kernels, Eng);
          if (RA.Jit == JitRefusal::EngineUnavailable ||
              RA.Jit == JitRefusal::CompileFailed ||
              RA.Jit == JitRefusal::ValidationRejected) {
            Why = "instruction " + I.Label + ": " + RA.JitDetail;
            break;
          }
        }
      }
      if (!Why.empty()) {
        NoteDescent(ReasonJitUnavailable, std::move(Why));
        O.Kernels = KernelMode::Interp;
      }
    }

    Status Err;
    RestoreOrSnapshotStore();
    std::int64_t Rung0 = 0;
    std::int32_t RungLabel = -1;
    if (Tr.enabled()) {
      RungLabel = Tr.intern("rung:" + RungName());
      Tr.add(obs::Counter::RecoveryRuns, 1);
      Rung0 = Tr.nowNs();
    }
    auto EndRung = [&] {
      if (RungLabel < 0)
        return;
      obs::TraceSpan S;
      S.T0 = Rung0;
      S.T1 = Tr.nowNs();
      S.Kind = obs::SpanKind::Rung;
      S.Label = RungLabel;
      S.A0 = static_cast<std::int32_t>(R.Descents.size());
      Tr.record(S);
    };
    try {
      R.Stats = runPlan(*Cur, Kernels, *CurStore, O);
      EndRung();
      R.Completed = true;
      R.Recovered = !R.Descents.empty();
      R.FinalRung = RungName();
      return R;
    } catch (const support::StatusError &E) {
      Err = E.status();
    } catch (const std::exception &E) {
      Err = Status::error(ErrorCode::Internal, E.what());
    }
    EndRung();

    switch (Err.code()) {
    case ErrorCode::PlanInvalid:
    case ErrorCode::StorageInvalid:
    case ErrorCode::UnknownArray:
    case ErrorCode::KernelMissing:
    case ErrorCode::InvalidChain:
    case ErrorCode::VerifierRejected: {
      // Deterministic rejections: the same rung would fail identically, so
      // jump straight to the fallback plan.
      NoteDescent(ReasonPlanInvalid, Err.toString());
      if (ToFallback())
        continue;
      break;
    }
    case ErrorCode::MemBudgetInfeasible: {
      // The budget (not the plan) is what failed, deterministically: no
      // retry at the same width can admit it. Waive the budget and run
      // scalar-serial — task order's footprint is the minimum any
      // admission policy could reach, so this is the closest rung to the
      // caller's memory intent that still completes.
      NoteDescent(ReasonMemBudget, Err.toString());
      O.MemBudget = 0;
      O.Threads = 1;
      continue;
    }
    case ErrorCode::GuardTripped: {
      const char *Reason = Err.subcode() == GuardSubcodeRedzone
                               ? ReasonRedzone
                               : ReasonNanGuard;
      NoteDescent(Reason, Err.toString());
      if (ToFallback())
        continue;
      break;
    }
    default: {
      // Runtime failures (worker exceptions, injected faults): retry one
      // rung down — batched->scalar, then parallel->serial, then the
      // fallback plan.
      NoteDescent(ReasonWorkerException, Err.toString());
      if (O.Batched) {
        O.Batched = false;
        continue;
      }
      if (ThreadPool::effectiveThreads(O.Threads) > 1) {
        O.Threads = 1;
        continue;
      }
      if (ToFallback())
        continue;
      break;
    }
    }

    R.FinalRung = RungName();
    R.Error = Status::error(ErrorCode::Exhausted,
                            "every degradation rung failed; last error: " +
                                Err.toString());
    return R;
  }
}
