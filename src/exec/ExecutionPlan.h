//===- exec/ExecutionPlan.h - Compiled, runnable schedules ------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowered execution representation every schedule runs through. A
/// plan compiles a schedule (untiled chain, generated loop AST, or
/// overlapped ChainTiling) against a ConcreteStorage binding into flat
/// per-nest instructions whose storage addressing is fully pre-resolved:
/// each access becomes a Stream with a constant base offset and one stride
/// per loop level, so the per-iteration path is a dot product plus an
/// optional modulo wrap instead of string-keyed map lookups. Instructions
/// are wrapped in tasks with explicit dependence edges (derived from
/// storage-space conflicts, i.e. from the M2DFG dataflow after
/// allocation), which is what lets the runner execute independent nests
/// and self-contained overlapped tiles in parallel.
///
/// Hand-written workloads (the baselines, the MiniFluxDiv variant kernels)
/// participate through external tasks: opaque callbacks scheduled and
/// instrumented by the same runner.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_EXEC_EXECUTIONPLAN_H
#define LCDFG_EXEC_EXECUTIONPLAN_H

#include "codegen/Ast.h"
#include "graph/Graph.h"
#include "storage/StorageMap.h"
#include "support/Status.h"
#include "tiling/Tiling.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lcdfg {
namespace exec {

using ParamEnv = std::map<std::string, std::int64_t, std::less<>>;

/// One pre-resolved access path. The linear index of the element accessed
/// at loop-iteration vector I is Base + sum_l I[l] * LevelStrides[l],
/// wrapped into [0, ModSize) when Modulo is set. The pre-wrap value is
/// injective over the array extent, so instrumentation uses it as the
/// element identity when counting distinct reads.
struct Stream {
  unsigned Space = 0;
  bool Modulo = false;
  std::int64_t ModSize = 1;
  std::int64_t Base = 0;
  std::vector<std::int64_t> LevelStrides; ///< One per loop level.
  /// Index into ExecutionPlan::Edges for traffic accounting; -1 when the
  /// access is a write or the plan was built without a graph.
  int Edge = -1;
  /// Index into ExecutionPlan::ArrayNames identifying the value array this
  /// stream addresses. Spaces are shared between arrays by the liveness
  /// allocator, so (ArrayId, pre-wrap index) — not the wrapped location —
  /// is the identity of the value an access touches. The runner ignores
  /// it; the static verifier keys its dataflow re-derivation on it.
  int ArrayId = -1;
};

/// A concrete bound on one loop level; statement records carry these where
/// a fused member's shifted domain is narrower than the hull.
struct GuardBound {
  unsigned Level = 0;
  std::int64_t Lo = 0;
  std::int64_t Hi = 0;
};

/// One statement set executed at every (guard-admitted) point of its
/// instruction's loops. Reads are flattened per access per stencil offset,
/// in declaration order — the order kernels expect.
struct StmtRecord {
  unsigned NestId = 0;
  int KernelId = -1;
  std::vector<GuardBound> Guards;
  std::vector<Stream> Reads;
  Stream Write;
};

/// One loop level, outermost first, with concrete inclusive bounds.
struct LoopLevel {
  std::string Iter;
  std::int64_t Lo = 0;
  std::int64_t Hi = -1;
};

/// One schedulable unit of compiled loops: a loop nest over concrete
/// bounds running one or more statement records per point — or, for
/// hand-written workloads, an opaque callback.
struct NestInstr {
  std::string Label;
  std::vector<LoopLevel> Loops;
  std::vector<StmtRecord> Stmts;
  /// Tile index for tiled plans (-1 otherwise). Instructions of one tile
  /// are scheduled as a unit on one worker.
  int Tile = -1;
  /// When set, the instruction is an external task: the runner invokes it
  /// with the participant id instead of interpreting Loops/Stmts.
  std::function<void(int)> External;
};

/// A task wraps one instruction with its dependence edges (indices of
/// tasks that must complete first). Task order is the serial execution
/// order and is always a valid topological order.
struct PlanTask {
  int Instr = 0;
  std::vector<int> Deps;
};

/// A read edge tracked by instrumentation, keyed like graph::Traffic:
/// (value array, consumer statement label), with the M2DFG multiplicity.
struct PlanEdge {
  std::string Array;
  std::string Consumer;
  unsigned Multiplicity = 1;
};

/// The compiled schedule.
class ExecutionPlan {
public:
  std::vector<NestInstr> Instrs;
  std::vector<PlanTask> Tasks;
  std::vector<PlanEdge> Edges;
  /// Value-array names referenced by the plan's streams, indexed by
  /// Stream::ArrayId (first-reference order).
  std::vector<std::string> ArrayNames;
  /// True when tiles are self-contained and may run concurrently (with
  /// non-persistent spaces privatized per worker).
  bool TileParallel = false;
  /// Space table shape, mirrored from the ConcreteStorage the plan was
  /// compiled against. SpacePersistent marks spaces holding persistent
  /// arrays (shared across workers; never privatized).
  std::size_t NumSpaces = 0;
  std::vector<bool> SpacePersistent;

  /// Compiles the untiled chain, one instruction per nest in chain order.
  /// \p G, when given, attaches traffic-instrumentation edges.
  static ExecutionPlan fromChain(const ir::LoopChain &Chain,
                                 const storage::ConcreteStorage &Store,
                                 const ParamEnv &Env,
                                 const graph::Graph *G = nullptr);

  /// Compiles a generated loop AST (the transformed schedule): one
  /// instruction per loop nest, with member guards and fusion shifts
  /// folded into the stream bases.
  static ExecutionPlan fromAst(const graph::Graph &G,
                               const codegen::AstNode &Root,
                               const storage::ConcreteStorage &Store,
                               const ParamEnv &Env);

  /// Compiles an overlapped tiling: per tile, per nest, one instruction
  /// over the expanded domain, in the serial fusion-of-tiles order.
  static ExecutionPlan fromTiling(const ir::LoopChain &Chain,
                                  const tiling::ChainTiling &Tiling,
                                  const storage::ConcreteStorage &Store,
                                  const ParamEnv &Env,
                                  const graph::Graph *G = nullptr);

  /// Validating forms of the three compilers: an E008-plan-invalid (or
  /// E003/E007 storage) Status instead of a thrown StatusError when the
  /// schedule cannot be lowered against the given concrete storage.
  static support::Expected<ExecutionPlan>
  tryFromChain(const ir::LoopChain &Chain, const storage::ConcreteStorage &Store,
               const ParamEnv &Env, const graph::Graph *G = nullptr);
  static support::Expected<ExecutionPlan>
  tryFromAst(const graph::Graph &G, const codegen::AstNode &Root,
             const storage::ConcreteStorage &Store, const ParamEnv &Env);
  static support::Expected<ExecutionPlan>
  tryFromTiling(const ir::LoopChain &Chain, const tiling::ChainTiling &Tiling,
                const storage::ConcreteStorage &Store, const ParamEnv &Env,
                const graph::Graph *G = nullptr);

  /// Appends an external task; returns its task index.
  int addExternalTask(std::string Label, std::function<void(int)> Work,
                      int Tile = -1);
  /// Declares that task \p After must wait for task \p Before.
  void addDependence(int Before, int After);

  /// Transitive closure of the task dependences: Closure[J][I] is true when
  /// task J (transitively) waits for task I. Task indices are their own
  /// topological order, so the closure is a single backward sweep. Exported
  /// for the static legality verifier, which checks every conflicting task
  /// pair against it; the list scheduler's priority pass and the trace
  /// checker share the same bits. Memoized: the O(N^2) sweep reruns only
  /// when the task/edge shape changed since the last call (members are
  /// public, so validity is keyed on task and edge counts — mutating Deps
  /// in place without changing either count is not supported). The
  /// reference is invalidated by the next shape change.
  const std::vector<std::vector<bool>> &dependenceClosure() const;

  /// Human-readable plan listing (the --dump-plan output).
  std::string dump() const;

private:
  mutable std::vector<std::vector<bool>> ClosureCache;
  /// Shape stamp of the cached closure: (task count, total edge count),
  /// or (-1, -1) when nothing is cached.
  mutable std::pair<std::int64_t, std::int64_t> ClosureKey{-1, -1};
};

} // namespace exec
} // namespace lcdfg

#endif // LCDFG_EXEC_EXECUTIONPLAN_H
