//===- exec/TaskGraph.cpp - Dependence-aware task scheduling --------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"

#include "exec/ThreadPool.h"
#include "obs/Trace.h"
#include "support/Errors.h"
#include "support/Status.h"

#include <utility>

namespace lcdfg {
namespace exec {

int TaskGraph::addTask(std::function<void(int)> Work) {
  Tasks.push_back(Task{std::move(Work), {}, 0});
  return static_cast<int>(Tasks.size()) - 1;
}

void TaskGraph::addDependence(int Before, int After) {
  Tasks.at(Before).Succs.push_back(After);
  ++Tasks.at(After).NumPreds;
}

std::vector<std::vector<int>> TaskGraph::wavefronts() const {
  const int N = size();
  std::vector<int> Pending(N), Level(N, 0);
  std::vector<int> Ready;
  for (int I = 0; I < N; ++I) {
    Pending[I] = Tasks[I].NumPreds;
    if (Pending[I] == 0)
      Ready.push_back(I);
  }
  std::vector<std::vector<int>> Levels;
  int Done = 0;
  while (!Ready.empty()) {
    Levels.push_back(Ready);
    std::vector<int> Next;
    for (int T : Ready) {
      ++Done;
      for (int S : Tasks[T].Succs) {
        Level[S] = std::max(Level[S], Level[T] + 1);
        if (--Pending[S] == 0)
          Next.push_back(S);
      }
    }
    Ready = std::move(Next);
  }
  if (Done != N)
    support::raise(support::ErrorCode::DependenceCycle,
                   "TaskGraph: dependence cycle detected");
  return Levels;
}

void TaskGraph::run(int Threads) {
  auto Levels = wavefronts();
  ThreadPool &Pool = ThreadPool::global();
  // Wavefront spans land on the caller's buffer: the caller dispatches the
  // level and participates in it, so its task spans nest inside.
  obs::Tracer &Tr = obs::Tracer::global();
  const bool Tracing = Tr.enabled();
  const std::int32_t WaveLabel = Tracing ? Tr.intern("wavefront") : -1;
  for (std::size_t Wave = 0; Wave < Levels.size(); ++Wave) {
    const std::vector<int> &Level = Levels[Wave];
    const std::int64_t T0 = Tracing ? Tr.nowNs() : 0;
    Pool.parallelForWorker(
        static_cast<int>(Level.size()), Threads,
        [&](int I, int Participant) { Tasks[Level[I]].Work(Participant); });
    if (Tracing) {
      obs::TraceSpan S;
      S.T0 = T0;
      S.T1 = Tr.nowNs();
      S.Kind = obs::SpanKind::Wavefront;
      S.Label = WaveLabel;
      S.A0 = static_cast<std::int32_t>(Wave);
      S.A1 = static_cast<std::int32_t>(Level.size());
      Tr.record(S);
      Tr.add(obs::Counter::Wavefronts, 1);
    }
  }
}

} // namespace exec
} // namespace lcdfg
