//===- exec/TaskGraph.cpp - Dependence-aware task scheduling --------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"

#include "exec/ThreadPool.h"
#include "obs/Trace.h"
#include "storage/LivenessAllocator.h"
#include "support/Errors.h"
#include "support/Status.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <utility>

namespace lcdfg {
namespace exec {

int TaskGraph::addTask(std::function<void(int)> Work) {
  CacheValid = false;
  Tasks.push_back(Task{std::move(Work), {}, 0});
  return static_cast<int>(Tasks.size()) - 1;
}

void TaskGraph::addDependence(int Before, int After) {
  CacheValid = false;
  Tasks.at(Before).Succs.push_back(After);
  ++Tasks.at(After).NumPreds;
}

void TaskGraph::computeLevels() const {
  const int N = size();
  std::vector<int> Pending(N), Level(N, 0);
  std::vector<int> Ready;
  for (int I = 0; I < N; ++I) {
    Pending[I] = Tasks[I].NumPreds;
    if (Pending[I] == 0)
      Ready.push_back(I);
  }
  std::vector<std::vector<int>> Levels;
  int Done = 0;
  while (!Ready.empty()) {
    Levels.push_back(Ready);
    std::vector<int> Next;
    for (int T : Ready) {
      ++Done;
      for (int S : Tasks[T].Succs) {
        Level[S] = std::max(Level[S], Level[T] + 1);
        if (--Pending[S] == 0)
          Next.push_back(S);
      }
    }
    Ready = std::move(Next);
  }
  if (Done != N)
    support::raise(support::ErrorCode::DependenceCycle,
                   "TaskGraph: dependence cycle detected");
  // Downward critical paths: successors live in deeper levels, so one
  // reverse sweep over the level order sees every successor first.
  std::vector<int> Heights(N, 1);
  for (auto It = Levels.rbegin(); It != Levels.rend(); ++It)
    for (int T : *It)
      for (int S : Tasks[T].Succs)
        Heights[T] = std::max(Heights[T], Heights[S] + 1);
  LevelsCache = std::move(Levels);
  HeightsCache = std::move(Heights);
  CacheValid = true;
}

const std::vector<std::vector<int>> &TaskGraph::wavefronts() const {
  if (!CacheValid)
    computeLevels();
  return LevelsCache;
}

const std::vector<int> &TaskGraph::heights() const {
  if (!CacheValid)
    computeLevels();
  return HeightsCache;
}

void TaskGraph::run(int Threads) {
  const std::vector<std::vector<int>> &Levels = wavefronts();
  ThreadPool &Pool = ThreadPool::global();
  // Wavefront spans land on the caller's buffer: the caller dispatches the
  // level and participates in it, so its task spans nest inside.
  obs::Tracer &Tr = obs::Tracer::global();
  const bool Tracing = Tr.enabled();
  const std::int32_t WaveLabel = Tracing ? Tr.intern("wavefront") : -1;
  for (std::size_t Wave = 0; Wave < Levels.size(); ++Wave) {
    const std::vector<int> &Level = Levels[Wave];
    const std::int64_t T0 = Tracing ? Tr.nowNs() : 0;
    Pool.parallelForWorker(
        static_cast<int>(Level.size()), Threads,
        [&](int I, int Participant) { Tasks[Level[I]].Work(Participant); });
    if (Tracing) {
      obs::TraceSpan S;
      S.T0 = T0;
      S.T1 = Tr.nowNs();
      S.Kind = obs::SpanKind::Wavefront;
      S.Label = WaveLabel;
      S.A0 = static_cast<std::int32_t>(Wave);
      S.A1 = static_cast<std::int32_t>(Level.size());
      Tr.record(S);
      Tr.add(obs::Counter::Wavefronts, 1);
    }
  }
}

namespace {

/// Shared list-scheduler state. One mutex guards everything: tasks are
/// coarse loop nests and the pool runs at most a handful of workers, so a
/// fine-grained lock-free deque would buy nothing over clarity here — the
/// lock is released around every Work() call, which is where the time is.
struct ListState {
  std::mutex Mu;
  std::condition_variable Cv;
  /// Per-participant ready deque, kept sorted by rank (front = highest
  /// priority). The owner pops from the front; thieves take from the back.
  std::vector<std::deque<int>> Queues;
  std::vector<int> Pending;
  /// Ready tasks set aside because admitting them would exceed the
  /// budget; revisited whenever a retiring task frees memory.
  std::vector<int> Deferred;
  int Remaining = 0;
  int InFlight = 0;
  bool Failed = false;
  std::exception_ptr Error;
  std::int64_t Steals = 0, Stalls = 0, DeferredEvents = 0;
};

} // namespace

void TaskGraph::runList(const ListOptions &Opts) {
  const int N = size();
  wavefronts(); // raises E010 on a cycle before anything runs
  const std::vector<int> &Height = heights();
  storage::FootprintTracker *Mem = Opts.Memory;
  const std::int64_t Budget = Opts.MemBudget;
  if (Budget > 0 && !Mem)
    support::raise(support::ErrorCode::MemBudgetInfeasible,
                   "list scheduler: memory budget given without a footprint "
                   "model to charge it against");
  if (Budget > 0 && Mem->maxSingleTaskBytes() > Budget) {
    std::ostringstream OS;
    OS << "list scheduler: budget " << Budget
       << " bytes cannot admit the largest task ("
       << Mem->maxSingleTaskBytes() << " bytes live at once)";
    support::raise(support::ErrorCode::MemBudgetInfeasible, OS.str());
  }
  if (N == 0)
    return;
  const int Threads = std::max(1, std::min(Opts.Threads, N));

  // Priority rank: critical-path length first, then the bytes scheduling
  // the task would tend to free (MRIS-style), then task id for
  // determinism. Rank[T] is T's position in the best-first order; deques
  // hold ranks-sorted task ids so comparisons are a single int.
  std::vector<std::int64_t> Hint(N, 0);
  if (Mem)
    for (int T = 0; T < N; ++T)
      Hint[T] = Mem->releaseHintBytes(T);
  std::vector<int> Order(N);
  for (int T = 0; T < N; ++T)
    Order[T] = T;
  std::stable_sort(Order.begin(), Order.end(), [&](int A, int B) {
    if (Height[A] != Height[B])
      return Height[A] > Height[B];
    if (Hint[A] != Hint[B])
      return Hint[A] > Hint[B];
    return A < B;
  });
  std::vector<int> Rank(N);
  for (int I = 0; I < N; ++I)
    Rank[Order[I]] = I;

  ListState S;
  S.Queues.resize(static_cast<std::size_t>(Threads));
  S.Pending.resize(N);
  S.Remaining = N;
  for (int T = 0; T < N; ++T)
    S.Pending[T] = Tasks[T].NumPreds;
  // Deal the initial ready set best-first round-robin so every worker
  // starts with a high-priority task at its front.
  {
    int Q = 0;
    for (int I = 0; I < N; ++I)
      if (S.Pending[Order[I]] == 0)
        S.Queues[static_cast<std::size_t>(Q++ % Threads)].push_back(Order[I]);
  }

  auto Admissible = [&](int T) {
    return Budget <= 0 || Mem->liveBytes() + Mem->activationBytes(T) <= Budget;
  };
  auto PushSorted = [&](std::deque<int> &Q, int T) {
    Q.insert(std::lower_bound(Q.begin(), Q.end(), T,
                              [&](int A, int B) { return Rank[A] < Rank[B]; }),
             T);
  };
  // Scans \p Q (front-to-back when \p FromFront, the reverse for thieves)
  // for the first task the budget admits; tasks skipped over are parked on
  // the deferred list until a retire frees memory.
  auto PopAdmissible = [&](std::deque<int> &Q, bool FromFront) {
    while (!Q.empty()) {
      const int T = FromFront ? Q.front() : Q.back();
      if (FromFront)
        Q.pop_front();
      else
        Q.pop_back();
      if (Admissible(T))
        return T;
      S.Deferred.push_back(T);
      ++S.DeferredEvents;
    }
    return -1;
  };

  obs::Tracer &Tr = obs::Tracer::global();

  auto Loop = [&](int, int P) {
    std::unique_lock<std::mutex> Lk(S.Mu);
    while (!S.Failed && S.Remaining > 0) {
      int T = PopAdmissible(S.Queues[static_cast<std::size_t>(P)], true);
      if (T < 0) {
        for (int V = 1; V < Threads && T < 0; ++V)
          T = PopAdmissible(
              S.Queues[static_cast<std::size_t>((P + V) % Threads)], false);
        if (T >= 0)
          ++S.Steals;
      }
      if (T < 0) {
        if (S.InFlight == 0) {
          // Nothing running, nothing admissible. With deferred tasks this
          // is a wedged budget (no retire will ever free memory); without
          // them it would be a cycle, which wavefronts() already ruled
          // out — so any task still pending is an internal error.
          support::Status Wedge;
          if (!S.Deferred.empty()) {
            std::ostringstream OS;
            OS << "list scheduler: budget " << Budget
               << " bytes wedged with " << Mem->liveBytes()
               << " bytes live and " << S.Deferred.size()
               << " ready task(s) over budget";
            Wedge = support::Status::error(
                support::ErrorCode::MemBudgetInfeasible, OS.str());
          } else {
            Wedge = support::Status::error(
                support::ErrorCode::Internal,
                "list scheduler: tasks pending with nothing ready, running, "
                "or deferred");
          }
          S.Failed = true;
          S.Error = std::make_exception_ptr(support::StatusError(Wedge));
          S.Cv.notify_all();
          break;
        }
        ++S.Stalls;
        S.Cv.wait(Lk);
        continue;
      }
      if (Mem)
        Mem->admit(T);
      ++S.InFlight;
      Lk.unlock();
      try {
        Tasks[T].Work(P);
      } catch (...) {
        Lk.lock();
        --S.InFlight;
        if (!S.Failed) {
          S.Failed = true;
          S.Error = std::current_exception();
        }
        S.Cv.notify_all();
        break;
      }
      Lk.lock();
      --S.InFlight;
      --S.Remaining;
      if (Mem) {
        Mem->retire(T);
        // Memory came back: re-queue every deferred task the budget now
        // admits (onto this worker — it just freed the bytes).
        for (std::size_t I = 0; I < S.Deferred.size();) {
          if (Admissible(S.Deferred[I])) {
            PushSorted(S.Queues[static_cast<std::size_t>(P)], S.Deferred[I]);
            S.Deferred[I] = S.Deferred.back();
            S.Deferred.pop_back();
          } else {
            ++I;
          }
        }
      }
      for (int Succ : Tasks[T].Succs)
        if (--S.Pending[Succ] == 0)
          PushSorted(S.Queues[static_cast<std::size_t>(P)], Succ);
      S.Cv.notify_all();
    }
  };

  ThreadPool::global().parallelForWorker(Threads, Threads, Loop);

  if (Tr.enabled()) {
    Tr.add(obs::Counter::SchedSteals, S.Steals);
    Tr.add(obs::Counter::SchedStalls, S.Stalls);
    Tr.add(obs::Counter::SchedDeferred, S.DeferredEvents);
    if (Mem)
      Tr.add(obs::Counter::SchedPeakLive, Mem->highWater());
  }
  if (S.Error)
    std::rethrow_exception(S.Error);
}

} // namespace exec
} // namespace lcdfg
