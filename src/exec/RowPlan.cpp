//===- exec/RowPlan.cpp - Row-batched instruction execution ---------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "exec/RowPlan.h"

#include "exec/FaultInjector.h"
#include "jit/JitEngine.h"
#include "verify/KernelVerifier.h"

#include <algorithm>
#include <limits>

using namespace lcdfg;
using namespace lcdfg::exec;

namespace {

/// Floored modulo into [0, M).
std::int64_t wrap(std::int64_t V, std::int64_t M) {
  V %= M;
  return V < 0 ? V + M : V;
}

/// Number of inner steps from wrapped index \p W (in [0, M)) until the
/// next modulo wrap with per-step advance \p S != 0. Always >= 1.
std::int64_t stepsToWrap(std::int64_t W, std::int64_t S, std::int64_t M) {
  if (S > 0)
    return (M - W + S - 1) / S;
  return W / -S + 1;
}

RowStream makeRowStream(const Stream &S, const std::vector<LoopLevel> &Outer) {
  RowStream R;
  R.Space = S.Space;
  R.Modulo = S.Modulo;
  R.ModSize = S.ModSize;
  R.InnerStride = S.LevelStrides.back();
  R.Base = S.Base;
  const std::size_t OL = Outer.size();
  R.OuterStrides.assign(S.LevelStrides.begin(), S.LevelStrides.begin() + OL);
  // Fold the outer lower bounds into the base so the odometer's running
  // row base starts at the stream's first row.
  for (std::size_t L = 0; L < OL; ++L)
    R.Base += Outer[L].Lo * R.OuterStrides[L];
  // Carrying into outer level l advances that level by one and resets
  // every deeper outer level to its lower bound.
  R.CarryDelta.assign(OL, 0);
  for (std::size_t L = 0; L < OL; ++L) {
    std::int64_t D = R.OuterStrides[L];
    for (std::size_t K = L + 1; K < OL; ++K)
      D -= (Outer[K].Hi - Outer[K].Lo) * R.OuterStrides[K];
    R.CarryDelta[L] = D;
  }
  return R;
}

bool sameShape(const RowStream &U, const RowStream &V) {
  return U.Modulo == V.Modulo && U.ModSize == V.ModSize &&
         U.InnerStride == V.InnerStride && U.OuterStrides == V.OuterStrides;
}

constexpr std::int64_t Unbounded = std::numeric_limits<std::int64_t>::max();

/// Longest segment over which running statement A (stream \p U) fully
/// before statement B (stream \p V, later in program order) is
/// unobservable relative to the scalar point-interleaved order. The
/// reorder moves B's access at x1 before A's access at x2 for every
/// x1 < x2 in the segment; it misbehaves exactly when such a pair touches
/// the same memory location, so the segment may extend up to the smallest
/// collision distance k = x2 - x1 >= 1.
///
/// With identical strides the pre-wrap index functions differ by the
/// constant C = V.Base - U.Base, and a collision at distance k requires
/// k * S == C exactly (direct storage), so k = C / S when C > 0 and S
/// divides it, and no collision exists otherwise. For modulo storage the
/// walker splits segments at every participating stream's wrap boundary,
/// so within one segment both wrapped indices advance linearly and their
/// phase difference is constant: either c' = C mod M (in [0, M)) or
/// c' - M. A collision needs k * S equal to that difference, which the
/// negative phase can never satisfy; the positive phase gives k = c' / S
/// when S divides c'. Two cases need no cap at all: c' == 0 (B touches
/// exactly what A touched at the same x, and the segment order preserves
/// A-before-B per point), and k at or beyond V's wrap distance in the
/// colliding phase — V starts no lower than c', so it wraps within
/// ceil((M - c') / S) steps and the wrap split already separates the
/// pair. Returns 0 when the pair cannot be reasoned about — the nest
/// then falls back to the scalar path, which remains the semantics of
/// record.
std::int64_t pairCap(const RowStream &U, const RowStream &V) {
  if (U.Space != V.Space)
    return Unbounded;
  if (!sameShape(U, V))
    return 0;
  const std::int64_t S = U.InnerStride;
  const std::int64_t C = V.Base - U.Base;
  if (S < 0)
    return 0; // Layout strides are non-negative; do not reason about
              // reversed rows.
  if (S == 0)
    return C != 0 ? Unbounded : 1;
  if (U.Modulo) {
    const std::int64_t CP = wrap(C, U.ModSize);
    if (CP == 0 || CP % S != 0)
      return Unbounded;
    const std::int64_t K = CP / S;
    if (K >= (U.ModSize - CP + S - 1) / S)
      return Unbounded;
    return K;
  }
  if (C <= 0 || C % S != 0)
    return Unbounded;
  return C / S;
}

/// Streams of \p A that conflict with streams of \p B: every pair with at
/// least one write involved bounds the segment length.
std::int64_t stmtPairCap(const RowStmt &A, const RowStmt &B) {
  std::int64_t Cap = pairCap(A.Write, B.Write);
  for (const RowStream &R : B.Reads)
    Cap = std::min(Cap, pairCap(A.Write, R));
  for (const RowStream &R : A.Reads)
    Cap = std::min(Cap, pairCap(R, B.Write));
  return Cap;
}

} // namespace

std::string_view exec::rowRefusalName(RowRefusal R) {
  switch (R) {
  case RowRefusal::None:
    return "none";
  case RowRefusal::External:
    return "external-task";
  case RowRefusal::NoLoops:
    return "no-loops";
  case RowRefusal::NoStmts:
    return "no-stmts";
  case RowRefusal::NoBatchedKernel:
    return "no-batched-kernel";
  case RowRefusal::UnsafeInterleave:
    return "unsafe-interleave";
  }
  return "unknown";
}

std::string_view exec::jitRefusalName(JitRefusal J) {
  switch (J) {
  case JitRefusal::NotRequested:
    return "not-requested";
  case JitRefusal::Specialized:
    return "specialized";
  case JitRefusal::NoKernelExpr:
    return "no-kernel-expr";
  case JitRefusal::EngineUnavailable:
    return "engine-unavailable";
  case JitRefusal::CompileFailed:
    return "compile-failed";
  case JitRefusal::ValidationRejected:
    return "validation-rejected";
  }
  return "unknown";
}

codegen::SegmentKernelSig exec::rowSegmentSig(const RowPlan &Plan,
                                              std::size_t SI) {
  const RowStmt &RS = Plan.Stmts[SI];
  codegen::SegmentKernelSig Sig;
  Sig.WriteStride = RS.Write.InnerStride;
  Sig.ReadStrides.reserve(RS.Reads.size());
  Sig.ReadAliasesWrite.reserve(RS.Reads.size());
  for (const RowStream &R : RS.Reads) {
    Sig.ReadStrides.push_back(R.InnerStride);
    Sig.ReadAliasesWrite.push_back(R.Space == RS.Write.Space);
  }
  return Sig;
}

std::optional<codegen::RowKernelDesc>
exec::rowKernelDesc(const RowPlan &Plan, const NestInstr &Instr,
                    const codegen::KernelRegistry &Kernels) {
  const std::size_t NS = Plan.Stmts.size();
  if (NS == 0 || NS > 64 || Instr.Stmts.size() != NS)
    return std::nullopt;
  bool AnySpan = false;
  for (const RowStmt &RS : Plan.Stmts)
    if (RS.InnerLo <= RS.InnerHi)
      AnySpan = true;
  if (!AnySpan)
    return std::nullopt;
  for (std::size_t SI = 0; SI < NS; ++SI) {
    const codegen::KernelExpr *E = Kernels.expr(Instr.Stmts[SI].KernelId);
    if (!E || E->maxRead() >= static_cast<int>(Plan.Stmts[SI].Reads.size()))
      return std::nullopt;
  }
  codegen::RowKernelDesc Desc;
  Desc.MaxSegment = Plan.MaxSegment;
  Desc.Stmts.reserve(NS);
  std::size_t Flat = 0;
  for (std::size_t SI = 0; SI < NS; ++SI) {
    const RowStmt &RS = Plan.Stmts[SI];
    codegen::RowKernelDesc::Stmt DS;
    DS.Body = Kernels.expr(Instr.Stmts[SI].KernelId);
    DS.Lo = RS.InnerLo;
    DS.Hi = RS.InnerHi;
    auto ToStream = [&Flat](const RowStream &S, bool AliasesWrite) {
      codegen::RowKernelDesc::Stream D;
      D.Space = S.Space;
      D.Modulo = S.Modulo;
      D.ModSize = S.ModSize;
      D.InnerStride = S.InnerStride;
      D.Flat = Flat++;
      D.AliasesWrite = AliasesWrite;
      return D;
    };
    DS.Write = ToStream(RS.Write, false);
    DS.Reads.reserve(RS.Reads.size());
    for (const RowStream &R : RS.Reads)
      DS.Reads.push_back(ToStream(R, R.Space == RS.Write.Space));
    Desc.Stmts.push_back(std::move(DS));
  }
  return Desc;
}

std::optional<RowPlan> RowPlan::compile(const NestInstr &Instr,
                                        const codegen::KernelRegistry &Kernels,
                                        jit::Engine *Jit) {
  return analyze(Instr, Kernels, Jit).Plan;
}

RowAnalysis RowPlan::analyze(const NestInstr &Instr,
                             const codegen::KernelRegistry &Kernels,
                             jit::Engine *Jit) {
  auto Refuse = [](RowRefusal Why) {
    RowAnalysis A;
    A.Refusal = Why;
    return A;
  };
  if (Instr.External)
    return Refuse(RowRefusal::External);
  if (Instr.Loops.empty())
    return Refuse(RowRefusal::NoLoops);
  if (Instr.Stmts.empty())
    return Refuse(RowRefusal::NoStmts);
  const unsigned Inner = static_cast<unsigned>(Instr.Loops.size()) - 1;

  RowPlan RP;
  RP.Outer.assign(Instr.Loops.begin(), Instr.Loops.end() - 1);
  for (const StmtRecord &S : Instr.Stmts) {
    codegen::BatchedKernel Body = Kernels.batched(S.KernelId);
    if (!Body)
      return Refuse(RowRefusal::NoBatchedKernel);
    RowStmt RS;
    RS.Body = Body;
    RS.InnerLo = Instr.Loops[Inner].Lo;
    RS.InnerHi = Instr.Loops[Inner].Hi;
    for (const GuardBound &Gd : S.Guards) {
      if (Gd.Level == Inner) {
        RS.InnerLo = std::max(RS.InnerLo, Gd.Lo);
        RS.InnerHi = std::min(RS.InnerHi, Gd.Hi);
      } else {
        RS.RowGuards.push_back(Gd);
      }
    }
    RS.Write = makeRowStream(S.Write, RP.Outer);
    RS.Reads.reserve(S.Reads.size());
    for (const Stream &R : S.Reads)
      RS.Reads.push_back(makeRowStream(R, RP.Outer));
    RP.Stmts.push_back(std::move(RS));
  }

  // Fused statement sets: running record I fully before record J over a
  // segment must be unobservable for every I < J pair. Conflicting pairs
  // with a finite collision distance cap the segment length instead of
  // rejecting the nest; a cap of 1 degenerates to scalar execution with
  // extra bookkeeping, so fall back outright.
  for (std::size_t I = 0; I + 1 < RP.Stmts.size(); ++I)
    for (std::size_t J = I + 1; J < RP.Stmts.size(); ++J)
      RP.MaxSegment = std::min(RP.MaxSegment,
                               stmtPairCap(RP.Stmts[I], RP.Stmts[J]));
  if (RP.MaxSegment <= 1)
    return Refuse(RowRefusal::UnsafeInterleave);

  RowAnalysis A;
  A.Plan = std::move(RP);
  if (!Jit)
    return A;

  // JIT specialization: swap each statement's interpreted batched body for
  // a shape-specialized compiled one. Strictly best-effort — any statement
  // that cannot be specialized keeps its interpreted body, and the plan
  // stays engaged either way (the recovery ladder reports the downgrade as
  // L008, but execution itself never fails here).
  A.Jit = JitRefusal::Specialized;
  auto Note = [&A](JitRefusal Why, std::string Detail) {
    // First failure wins: a fully-specialized outcome degrades to the
    // earliest reason, which is what --report surfaces.
    if (A.Jit == JitRefusal::Specialized) {
      A.Jit = Why;
      A.JitDetail = std::move(Detail);
    }
  };
  for (std::size_t SI = 0; SI < Instr.Stmts.size(); ++SI) {
    const StmtRecord &S = Instr.Stmts[SI];
    RowStmt &RS = A.Plan->Stmts[SI];
    const codegen::KernelExpr *E = Kernels.expr(S.KernelId);
    if (!E || E->maxRead() >= static_cast<int>(RS.Reads.size())) {
      Note(JitRefusal::NoKernelExpr,
           "kernel " + std::to_string(S.KernelId) + " has no expression form");
      continue;
    }
    const codegen::SegmentKernelSig Sig = rowSegmentSig(*A.Plan, SI);
    // Translation validation gate: the engine is never handed an emission
    // the static verifier cannot prove faithful to the plan. The jitval
    // fault site forces a rejection so CI can exercise this path without
    // needing a genuinely broken emission.
    std::string RejectWhy;
    bool Rejected = FaultInjector::global().shouldFire(FaultSite::JitValidate);
    if (Rejected) {
      RejectWhy = "fault-injected validation rejection";
    } else {
      verify::KernelVerifyOptions VO;
      VO.Budget = std::int64_t{1} << 15;
      verify::KernelVerifier KV(Instr, *A.Plan, Kernels, VO);
      verify::Diagnostics VD;
      KV.verifySegmentKernel(
          SI, codegen::printSegmentKernel(*E, Sig, "lcdfg_static_check"), VD);
      if (VD.hasErrors()) {
        Rejected = true;
        RejectWhy = VD.all().front().toString();
      }
    }
    if (Rejected) {
      Note(JitRefusal::ValidationRejected,
           "statement " + std::to_string(SI) + ": " + RejectWhy);
      continue;
    }
    auto K = Jit->kernel(*E, Sig);
    if (!K) {
      const bool Dead =
          K.error().code() == support::ErrorCode::JitUnavailable &&
          !Jit->available();
      Note(Dead ? JitRefusal::EngineUnavailable : JitRefusal::CompileFailed,
           K.error().message());
      if (Dead)
        break; // Every remaining statement would fail the same way.
      continue;
    }
    RS.Body = *K;
    ++A.JitStmts;
  }

  // Fused whole-row kernel: one compiled call per row covering every
  // statement. The emitted function is the segment walker itself with the
  // bounds, strides, modulo sizes and the conflict cap folded to constants
  // (codegen::printRowKernel), so it chunks and interleaves exactly as the
  // interpreted walk does — no additional reorder proof is needed; the
  // MaxSegment cap established above carries over verbatim. What moves
  // into compiled code is the cost: per-statement kernel dispatch, read-
  // pointer setup, and the per-row wrap divisions. Only attempted when
  // every statement specialized (a row kernel with interpreted bodies
  // would re-enter the dispatch it exists to remove); failure at any
  // point silently keeps the per-statement bodies.
  const std::size_t NS = A.Plan->Stmts.size();
  if (A.Jit != JitRefusal::Specialized ||
      A.JitStmts != static_cast<int>(NS) || NS > 64)
    return A;
  bool AnySpan = false;
  for (const RowStmt &RS : A.Plan->Stmts)
    if (RS.InnerLo <= RS.InnerHi)
      AnySpan = true;
  if (!AnySpan)
    return A;

  std::optional<codegen::RowKernelDesc> Desc =
      rowKernelDesc(*A.Plan, Instr, Kernels);
  if (!Desc)
    return A;
  // Same gate as the per-statement kernels: the fused walker's emission
  // must symbolically replay the interpreted walk before the engine may
  // compile it. Rejection keeps the per-statement bodies (already
  // validated above) — the plan stays engaged.
  if (FaultInjector::global().shouldFire(FaultSite::JitValidate)) {
    Note(JitRefusal::ValidationRejected,
         "row kernel: fault-injected validation rejection");
    return A;
  }
  verify::KernelVerifyOptions VO;
  VO.Budget = std::int64_t{1} << 15;
  verify::KernelVerifier KV(Instr, *A.Plan, Kernels, VO);
  verify::Diagnostics VD;
  KV.verifyRowKernel(codegen::printRowKernel(*Desc, "lcdfg_static_row"), VD);
  if (VD.hasErrors()) {
    Note(JitRefusal::ValidationRejected,
         "row kernel: " + VD.all().front().toString());
    return A;
  }
  if (auto RK = Jit->rowKernel(*Desc)) {
    A.Plan->Row = *RK;
    A.FusedRow = true;
  }
  return A;
}

void RowPlan::run(double *const *Spaces, std::int64_t &Points,
                  std::int64_t &RawReads, RowRunCounters *Counters) const {
  const std::size_t OL = Outer.size();
  for (std::size_t L = 0; L < OL; ++L)
    if (Outer[L].Lo > Outer[L].Hi)
      return;

  // Mutable cursor state, all on this stack frame so one compiled plan can
  // run on many workers at once. Streams are laid out in one flat arena
  // (per statement: write first, then reads). PreBase is the running
  // pre-wrap row base; Cur is the walking index (wrapped for modulo
  // streams); WrapLeft counts inner steps until the stream's next modulo
  // wrap, so the segment walk pays a division only at row setup and on
  // actual wrap events, never per segment.
  constexpr std::int64_t Never = std::int64_t{1} << 62;
  const std::size_t NS = Stmts.size();
  std::vector<std::size_t> Start(NS + 1);
  for (std::size_t SI = 0; SI < NS; ++SI)
    Start[SI + 1] = Start[SI] + 1 + Stmts[SI].Reads.size();
  std::vector<std::int64_t> PreBase(Start[NS]), Cur(Start[NS]),
      WrapLeft(Start[NS]);
  std::vector<std::int64_t> MinWrap(NS);
  std::vector<char> Admitted(NS);
  std::size_t MaxReads = 0;
  for (std::size_t SI = 0; SI < NS; ++SI) {
    PreBase[Start[SI]] = Stmts[SI].Write.Base;
    for (std::size_t R = 0; R < Stmts[SI].Reads.size(); ++R)
      PreBase[Start[SI] + 1 + R] = Stmts[SI].Reads[R].Base;
    MaxReads = std::max(MaxReads, Stmts[SI].Reads.size());
  }
  std::vector<const double *> ReadPtrs(MaxReads);
  std::vector<std::int64_t> ReadStrides(MaxReads);
  std::vector<std::int64_t> Iter(OL);
  for (std::size_t L = 0; L < OL; ++L)
    Iter[L] = Outer[L].Lo;

  // Positions one stream cursor at the statement's InnerLo and resets its
  // wrap countdown.
  auto resolveStream = [&](const RowStream &S, std::int64_t InnerLo,
                           std::size_t F) {
    Cur[F] = PreBase[F] + InnerLo * S.InnerStride;
    WrapLeft[F] = Never;
    if (S.Modulo) {
      Cur[F] = wrap(Cur[F], S.ModSize);
      if (S.InnerStride != 0)
        WrapLeft[F] = stepsToWrap(Cur[F], S.InnerStride, S.ModSize);
    }
  };
  // Advances one stream cursor by N inner steps, wrapping when the
  // countdown expires (the walker never lets a segment cross a wrap, so
  // the countdown reaches exactly zero).
  std::int64_t WrapEvents = 0, Segments = 0;
  auto advanceStream = [&](const RowStream &S, std::int64_t N,
                           std::size_t F) {
    Cur[F] += N * S.InnerStride;
    if ((WrapLeft[F] -= N) == 0) {
      Cur[F] = wrap(Cur[F], S.ModSize);
      WrapLeft[F] = stepsToWrap(Cur[F], S.InnerStride, S.ModSize);
      ++WrapEvents;
    }
  };

  std::int64_t P = 0, RR = 0;
  for (;;) {
    if (Row) {
      // Fused row path: guard admission and the row bounds are the only
      // interpreted work — cursor resolution, wrap countdowns and the
      // segment walk all live in the compiled row kernel, which reads the
      // pre-wrap base arena directly (same Start[] layout as the streams
      // above).
      std::uint64_t Admit = 0;
      std::int64_t RowLo = 0, RowHi = -1;
      for (std::size_t SI = 0; SI < NS; ++SI) {
        const RowStmt &S = Stmts[SI];
        if (S.InnerLo > S.InnerHi)
          continue;
        bool Ok = true;
        for (const GuardBound &Gd : S.RowGuards)
          if (Iter[Gd.Level] < Gd.Lo || Iter[Gd.Level] > Gd.Hi) {
            Ok = false;
            break;
          }
        if (!Ok)
          continue;
        if (!Admit || S.InnerLo < RowLo)
          RowLo = S.InnerLo;
        if (!Admit || S.InnerHi > RowHi)
          RowHi = S.InnerHi;
        Admit |= std::uint64_t{1} << SI;
        const std::int64_t Span = S.InnerHi - S.InnerLo + 1;
        P += Span;
        RR += Span * static_cast<std::int64_t>(S.Reads.size());
      }
      if (Admit) {
        std::int64_t RC[2] = {0, 0};
        Row(Spaces, PreBase.data(), Admit, RowLo, RowHi, RC);
        Segments += RC[0];
        WrapEvents += RC[1];
      }
    } else {
      // Resolve this row: guard admission, per-stream start indices and
      // wrap countdowns.
      std::int64_t RowLo = 0, RowHi = -1;
      bool Any = false;
      for (std::size_t SI = 0; SI < NS; ++SI) {
        const RowStmt &S = Stmts[SI];
        Admitted[SI] = S.InnerLo <= S.InnerHi;
        for (const GuardBound &Gd : S.RowGuards)
          if (Iter[Gd.Level] < Gd.Lo || Iter[Gd.Level] > Gd.Hi) {
            Admitted[SI] = 0;
            break;
          }
        if (!Admitted[SI])
          continue;
        resolveStream(S.Write, S.InnerLo, Start[SI]);
        MinWrap[SI] = WrapLeft[Start[SI]];
        for (std::size_t R = 0; R < S.Reads.size(); ++R) {
          resolveStream(S.Reads[R], S.InnerLo, Start[SI] + 1 + R);
          MinWrap[SI] = std::min(MinWrap[SI], WrapLeft[Start[SI] + 1 + R]);
        }
        if (!Any || S.InnerLo < RowLo)
          RowLo = S.InnerLo;
        if (!Any || S.InnerHi > RowHi)
          RowHi = S.InnerHi;
        Any = true;
      }

      // Walk the row in segments bounded by every admitted statement's
      // activation boundaries, every modulo stream's wrap countdown, and
      // the conflict cap.
      std::int64_t X = RowLo;
      while (Any && X <= RowHi) {
        std::int64_t N = std::min(RowHi - X + 1, MaxSegment);
        for (std::size_t SI = 0; SI < NS; ++SI) {
          const RowStmt &S = Stmts[SI];
          if (!Admitted[SI] || S.InnerHi < X)
            continue;
          if (S.InnerLo > X) {
            N = std::min(N, S.InnerLo - X);
            continue;
          }
          N = std::min(N, std::min(S.InnerHi - X + 1, MinWrap[SI]));
        }
        for (std::size_t SI = 0; SI < NS; ++SI) {
          const RowStmt &S = Stmts[SI];
          if (!Admitted[SI] || S.InnerLo > X || S.InnerHi < X)
            continue;
          double *W = Spaces[S.Write.Space] + Cur[Start[SI]];
          for (std::size_t R = 0; R < S.Reads.size(); ++R) {
            ReadPtrs[R] = Spaces[S.Reads[R].Space] + Cur[Start[SI] + 1 + R];
            ReadStrides[R] = S.Reads[R].InnerStride;
          }
          S.Body(W, ReadPtrs.data(), ReadStrides.data(), S.Write.InnerStride,
                 N);
          ++Segments;
          advanceStream(S.Write, N, Start[SI]);
          MinWrap[SI] = WrapLeft[Start[SI]];
          for (std::size_t R = 0; R < S.Reads.size(); ++R) {
            advanceStream(S.Reads[R], N, Start[SI] + 1 + R);
            MinWrap[SI] = std::min(MinWrap[SI], WrapLeft[Start[SI] + 1 + R]);
          }
          P += N;
          RR += N * static_cast<std::int64_t>(S.Reads.size());
        }
        X += N;
      }
    }

    // Odometer over the outer levels; the successful carry level's delta
    // accounts for every deeper level's reset.
    std::size_t L = OL;
    while (L > 0) {
      --L;
      if (++Iter[L] <= Outer[L].Hi) {
        for (std::size_t SI = 0; SI < NS; ++SI) {
          const RowStmt &S = Stmts[SI];
          PreBase[Start[SI]] += S.Write.CarryDelta[L];
          for (std::size_t R = 0; R < S.Reads.size(); ++R)
            PreBase[Start[SI] + 1 + R] += S.Reads[R].CarryDelta[L];
        }
        break;
      }
      Iter[L] = Outer[L].Lo;
      if (L == 0) {
        Points += P;
        RawReads += RR;
        if (Counters) {
          Counters->Segments += Segments;
          Counters->Wraps += WrapEvents;
        }
        return;
      }
    }
    if (OL == 0)
      break;
  }
  Points += P;
  RawReads += RR;
  if (Counters) {
    Counters->Segments += Segments;
    Counters->Wraps += WrapEvents;
  }
}
