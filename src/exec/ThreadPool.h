//===- exec/ThreadPool.h - Persistent worker-thread pool --------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent pool of worker threads behind every parallel construct in
/// the system. Replaces the one-shot OpenMP `parallel for` that used to
/// back rt::parallelFor: workers are spawned once and reused, iterations
/// are claimed dynamically, the first exception thrown by any participant
/// is rethrown at the caller, and the `LCDFG_THREADS` environment variable
/// caps the effective thread count of every parallel region (so benches
/// and tools can be throttled without recompiling).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_EXEC_THREADPOOL_H
#define LCDFG_EXEC_THREADPOOL_H

#include <functional>

namespace lcdfg {
namespace exec {

/// The persistent pool. Workers are created lazily, up to the largest
/// thread count any parallel region has requested; they park on a
/// condition variable between regions. Regions started from within a
/// worker run inline (no nested parallelism), matching the old OpenMP
/// behaviour.
class ThreadPool {
public:
  ThreadPool();
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// The process-wide pool.
  static ThreadPool &global();

  /// Runs Fn(I) for I in [0, Count) on up to \p Threads participants (the
  /// calling thread plus Threads - 1 workers). Iterations are claimed
  /// dynamically. Blocks until every iteration completed; rethrows the
  /// first exception any participant threw.
  void parallelFor(int Count, int Threads, const std::function<void(int)> &Fn);

  /// Like parallelFor, but Fn also receives a dense participant id in
  /// [0, Threads): the calling thread is participant 0. Participant ids
  /// let callers keep per-worker scratch state (e.g. privatized storage
  /// spaces) without locking.
  void parallelForWorker(int Count, int Threads,
                         const std::function<void(int, int)> &Fn);

  /// Number of worker threads currently alive (excluding callers).
  int workerCount() const;

  /// Applies the LCDFG_THREADS override: returns the requested count
  /// capped by the environment variable when it is set to a positive
  /// integer, the request unchanged otherwise.
  static int effectiveThreads(int Requested);

private:
  struct Impl;
  Impl *PImpl;
};

} // namespace exec
} // namespace lcdfg

#endif // LCDFG_EXEC_THREADPOOL_H
