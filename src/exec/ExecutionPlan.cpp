//===- exec/ExecutionPlan.cpp - Compiled, runnable schedules --------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecutionPlan.h"

#include "support/Errors.h"
#include "support/Status.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

using namespace lcdfg;
using namespace lcdfg::exec;

namespace {

/// Registry of instrumentation edges during plan construction: maps the
/// (array, consumer label) key to a PlanEdge index, accumulating M2DFG
/// read-edge multiplicities the way graph::Traffic does.
class EdgeTable {
public:
  EdgeTable(const graph::Graph *G, std::vector<PlanEdge> &Edges)
      : Edges(Edges) {
    if (!G)
      return;
    for (const graph::Edge &E : G->edges()) {
      if (E.Dead || E.FromKind != graph::EndpointKind::Value)
        continue;
      const std::string &Array = G->value(E.From).Array;
      const std::string &Consumer = G->stmt(E.To).Label;
      auto [It, Inserted] =
          Index.emplace(std::make_pair(Array, Consumer), Edges.size());
      if (Inserted)
        Edges.push_back(PlanEdge{Array, Consumer, E.Multiplicity});
      else
        Edges[It->second].Multiplicity += E.Multiplicity;
    }
  }

  /// Edge index for \p Array read inside consumer \p Label, or -1.
  int lookup(const std::string &Array, const std::string &Label) const {
    auto It = Index.find(std::make_pair(Array, Label));
    return It == Index.end() ? -1 : static_cast<int>(It->second);
  }

private:
  std::vector<PlanEdge> &Edges;
  std::map<std::pair<std::string, std::string>, std::size_t> Index;
};

/// Plan-construction registry for value-array identities: interns array
/// names into ExecutionPlan::ArrayNames so every stream carries the id of
/// the array it addresses (spaces are shared between arrays under liveness
/// allocation; the verifier needs the array to identify values).
class ArrayTable {
public:
  explicit ArrayTable(std::vector<std::string> &Names) : Names(Names) {}

  int idOf(const std::string &Array) {
    auto [It, Inserted] = Index.emplace(Array, Names.size());
    if (Inserted)
      Names.push_back(Array);
    return static_cast<int>(It->second);
  }

private:
  std::vector<std::string> &Names;
  std::map<std::string, std::size_t, std::less<>> Index;
};

/// Folds one access of \p Nest into a Stream against \p Loops: the base
/// absorbs the stencil offset, the fusion shift, and the array lower
/// bounds; per-level strides come from matching nest dimension names to
/// loop iterators.
Stream makeStream(const storage::ConcreteStorage &Store,
                  const std::string &Array,
                  const std::vector<std::int64_t> &Off,
                  const std::vector<std::int64_t> &Shift,
                  const ir::LoopNest &Nest,
                  const std::vector<LoopLevel> &Loops, int EdgeIdx,
                  std::vector<bool> &SpacePersistent, ArrayTable &Arrays) {
  storage::ConcreteStorage::Resolved R = Store.resolve(Array);
  unsigned Rank = Nest.Domain.rank();
  if (R.Lowers.size() != Rank)
    support::raise(support::ErrorCode::PlanInvalid,
                   "execution plan: rank mismatch between nest " + Nest.Name +
                       " and array " + Array);
  Stream S;
  S.Space = R.Space;
  S.Modulo = R.Modulo;
  S.ModSize = R.ModSize;
  S.Edge = EdgeIdx;
  S.ArrayId = Arrays.idOf(Array);
  S.LevelStrides.assign(Loops.size(), 0);
  for (unsigned D = 0; D < Rank; ++D) {
    const std::string &Name = Nest.Domain.dim(D).Name;
    auto It = std::find_if(Loops.begin(), Loops.end(), [&](const LoopLevel &L) {
      return L.Iter == Name;
    });
    if (It == Loops.end())
      support::raise(support::ErrorCode::PlanInvalid,
                     "execution plan: unbound iterator " + Name + " in nest " +
                         Nest.Name);
    std::int64_t Sh = Shift.empty() ? 0 : Shift[D];
    S.LevelStrides[It - Loops.begin()] += R.Strides[D];
    S.Base += (Off[D] - Sh - R.Lowers[D]) * R.Strides[D];
  }
  if (S.Space >= SpacePersistent.size())
    SpacePersistent.resize(S.Space + 1, false);
  if (R.Persistent)
    SpacePersistent[S.Space] = true;
  return S;
}

/// Builds the statement record for \p NestId executing under \p Loops with
/// fusion shift \p Shift.
StmtRecord makeRecord(const ir::LoopChain &Chain, unsigned NestId,
                      const std::vector<std::int64_t> &Shift,
                      const storage::ConcreteStorage &Store,
                      const std::vector<LoopLevel> &Loops,
                      const EdgeTable &Edges, const std::string &Consumer,
                      std::vector<bool> &SpacePersistent, ArrayTable &Arrays) {
  const ir::LoopNest &Nest = Chain.nest(NestId);
  StmtRecord Rec;
  Rec.NestId = NestId;
  Rec.KernelId = Nest.KernelId;
  for (const ir::Access &R : Nest.Reads) {
    int EdgeIdx = Edges.lookup(R.Array, Consumer);
    for (const auto &Off : R.Offsets)
      Rec.Reads.push_back(makeStream(Store, R.Array, Off, Shift, Nest, Loops,
                                     EdgeIdx, SpacePersistent, Arrays));
  }
  Rec.Write = makeStream(Store, Nest.Write.Array, Nest.Write.Offsets.front(),
                         Shift, Nest, Loops, /*EdgeIdx=*/-1, SpacePersistent,
                         Arrays);
  return Rec;
}

/// Concrete loop levels over \p Domain in its natural dimension order.
std::vector<LoopLevel> loopsOver(const poly::BoxSet &Domain,
                                 const ParamEnv &Env) {
  std::vector<LoopLevel> Loops;
  for (unsigned D = 0; D < Domain.rank(); ++D) {
    const poly::Dim &Dim = Domain.dim(D);
    Loops.push_back(
        LoopLevel{Dim.Name, Dim.Lower.evaluate(Env), Dim.Upper.evaluate(Env)});
  }
  return Loops;
}

/// Spaces an instruction reads and writes, for conflict-based sequencing.
struct SpaceUse {
  std::set<unsigned> Reads, Writes;
};

SpaceUse usesOf(const NestInstr &I) {
  SpaceUse U;
  for (const StmtRecord &S : I.Stmts) {
    for (const Stream &R : S.Reads)
      U.Reads.insert(R.Space);
    U.Writes.insert(S.Write.Space);
  }
  return U;
}

bool intersects(const std::set<unsigned> &A, const std::set<unsigned> &B) {
  for (unsigned X : A)
    if (B.count(X))
      return true;
  return false;
}

/// Sequences \p Plan's tasks by storage-space conflicts: task J waits for
/// the latest earlier task I whose writes touch J's reads or writes, or
/// whose reads touch J's writes. Conflicts are computed at space (not
/// element) granularity — conservative under allocator space reuse, exact
/// enough to expose independent nests.
void sequenceByConflicts(ExecutionPlan &Plan) {
  std::vector<SpaceUse> Uses;
  Uses.reserve(Plan.Instrs.size());
  for (const NestInstr &I : Plan.Instrs)
    Uses.push_back(usesOf(I));
  for (std::size_t J = 0; J < Plan.Tasks.size(); ++J) {
    for (std::size_t I = 0; I < J; ++I) {
      const SpaceUse &A = Uses[Plan.Tasks[I].Instr];
      const SpaceUse &B = Uses[Plan.Tasks[J].Instr];
      if (intersects(A.Writes, B.Writes) || intersects(A.Writes, B.Reads) ||
          intersects(A.Reads, B.Writes))
        Plan.Tasks[J].Deps.push_back(static_cast<int>(I));
    }
  }
}

} // namespace

ExecutionPlan ExecutionPlan::fromChain(const ir::LoopChain &Chain,
                                       const storage::ConcreteStorage &Store,
                                       const ParamEnv &Env,
                                       const graph::Graph *G) {
  ExecutionPlan Plan;
  Plan.NumSpaces = Store.numSpaces();
  EdgeTable Edges(G, Plan.Edges);
  ArrayTable Arrays(Plan.ArrayNames);
  for (unsigned N = 0; N < Chain.numNests(); ++N) {
    const ir::LoopNest &Nest = Chain.nest(N);
    NestInstr Instr;
    Instr.Label = Nest.Name;
    if (G) {
      graph::NodeId S = G->stmtOfNest(N);
      if (S != graph::InvalidNode)
        Instr.Label = G->stmt(S).Label;
    }
    Instr.Loops = loopsOver(Nest.Domain, Env);
    Instr.Stmts.push_back(makeRecord(Chain, N, /*Shift=*/{}, Store,
                                     Instr.Loops, Edges, Instr.Label,
                                     Plan.SpacePersistent, Arrays));
    Plan.Instrs.push_back(std::move(Instr));
    Plan.Tasks.push_back(PlanTask{static_cast<int>(Plan.Instrs.size()) - 1, {}});
  }
  Plan.SpacePersistent.resize(Plan.NumSpaces, false);
  sequenceByConflicts(Plan);
  return Plan;
}

ExecutionPlan ExecutionPlan::fromAst(const graph::Graph &G,
                                     const codegen::AstNode &Root,
                                     const storage::ConcreteStorage &Store,
                                     const ParamEnv &Env) {
  ExecutionPlan Plan;
  Plan.NumSpaces = Store.numSpaces();
  EdgeTable Edges(&G, Plan.Edges);

  // Walk the AST collecting statement instances with their loop and guard
  // context. Each distinct loop path becomes one instruction; consecutive
  // statement instances under the same path share it (that is how the
  // generator emits fused statement nodes).
  struct Walker {
    ExecutionPlan &Plan;
    const graph::Graph &G;
    const storage::ConcreteStorage &Store;
    const ParamEnv &Env;
    const EdgeTable &Edges;
    ArrayTable &Arrays;
    std::vector<const codegen::AstNode *> LoopPath;
    std::vector<const codegen::AstNode *> GuardPath;
    /// Loop path the currently open instruction was built from; empty when
    /// no instruction is open.
    std::vector<const codegen::AstNode *> OpenPath;

    void walk(const codegen::AstNode &Node) {
      switch (Node.Kind) {
      case codegen::AstKind::Block:
        for (const codegen::AstPtr &Child : Node.Children)
          walk(*Child);
        return;
      case codegen::AstKind::Loop:
        LoopPath.push_back(&Node);
        for (const codegen::AstPtr &Child : Node.Children)
          walk(*Child);
        LoopPath.pop_back();
        return;
      case codegen::AstKind::Guard:
        GuardPath.push_back(&Node);
        for (const codegen::AstPtr &Child : Node.Children)
          walk(*Child);
        GuardPath.pop_back();
        return;
      case codegen::AstKind::StmtInstance:
        emit(Node);
        return;
      }
    }

    void emit(const codegen::AstNode &Stmt) {
      if (LoopPath != OpenPath) {
        // A new loop nest starts. The generator never interleaves nests,
        // so a partial overlap with the open path is an unsupported shape.
        NestInstr Instr;
        for (const codegen::AstNode *L : LoopPath)
          Instr.Loops.push_back(LoopLevel{L->Iter, L->Lower.evaluate(Env),
                                          L->Upper.evaluate(Env)});
        graph::NodeId S = G.stmtOfNest(Stmt.NestId);
        Instr.Label = S != graph::InvalidNode
                          ? G.stmt(S).Label
                          : G.chain().nest(Stmt.NestId).Name;
        Plan.Instrs.push_back(std::move(Instr));
        Plan.Tasks.push_back(
            PlanTask{static_cast<int>(Plan.Instrs.size()) - 1, {}});
        OpenPath = LoopPath;
      }
      NestInstr &Instr = Plan.Instrs.back();
      StmtRecord Rec = makeRecord(G.chain(), Stmt.NestId, Stmt.Shift, Store,
                                  Instr.Loops, Edges, Instr.Label,
                                  Plan.SpacePersistent, Arrays);
      // Fold the guard stack into concrete per-level bounds.
      for (const codegen::AstNode *Guard : GuardPath) {
        for (unsigned D = 0; D < Guard->Domain.rank(); ++D) {
          const poly::Dim &Dim = Guard->Domain.dim(D);
          auto It = std::find_if(
              Instr.Loops.begin(), Instr.Loops.end(),
              [&](const LoopLevel &L) { return L.Iter == Dim.Name; });
          if (It == Instr.Loops.end())
            support::raise(support::ErrorCode::PlanInvalid,
                           "execution plan: guard on unbound iterator " +
                               Dim.Name);
          unsigned Level = static_cast<unsigned>(It - Instr.Loops.begin());
          std::int64_t Lo = Dim.Lower.evaluate(Env);
          std::int64_t Hi = Dim.Upper.evaluate(Env);
          if (Lo > It->Lo || Hi < It->Hi)
            Rec.Guards.push_back(GuardBound{Level, Lo, Hi});
        }
      }
      Instr.Stmts.push_back(std::move(Rec));
    }
  };

  ArrayTable Arrays(Plan.ArrayNames);
  Walker W{Plan, G, Store, Env, Edges, Arrays, {}, {}, {}};
  W.walk(Root);
  Plan.SpacePersistent.resize(Plan.NumSpaces, false);
  sequenceByConflicts(Plan);
  return Plan;
}

ExecutionPlan ExecutionPlan::fromTiling(const ir::LoopChain &Chain,
                                        const tiling::ChainTiling &Tiling,
                                        const storage::ConcreteStorage &Store,
                                        const ParamEnv &Env,
                                        const graph::Graph *G) {
  ExecutionPlan Plan;
  Plan.NumSpaces = Store.numSpaces();
  EdgeTable Edges(G, Plan.Edges);
  ArrayTable Arrays(Plan.ArrayNames);

  // Tiles may run concurrently when every nest that writes persistent
  // (worker-shared) storage executes exactly its untiled point count —
  // i.e. its per-tile domains partition, as terminal statement sets do.
  // Expanded (overlapping) nests write temporaries, which the runner
  // privatizes per worker. Any persistent write that is recomputed
  // across tiles would race, so such plans stay tile-serial.
  Plan.TileParallel = true;
  for (unsigned N = 0; N < Chain.numNests(); ++N) {
    if (!Store.resolve(Chain.nest(N).Write.Array).Persistent)
      continue;
    auto Executed = Tiling.ExecutedPoints.find(N);
    auto Required = Tiling.RequiredPoints.find(N);
    if (Executed == Tiling.ExecutedPoints.end() ||
        Required == Tiling.RequiredPoints.end() ||
        Executed->second != Required->second) {
      Plan.TileParallel = false;
      break;
    }
  }

  int PrevTileLast = -1;
  for (std::size_t T = 0; T < Tiling.Tiles.size(); ++T) {
    const tiling::OverlappedTile &Tile = Tiling.Tiles[T];
    int Prev = -1;
    for (unsigned N = 0; N < Chain.numNests(); ++N) {
      auto It = Tile.NestDomains.find(N);
      if (It == Tile.NestDomains.end())
        continue;
      const ir::LoopNest &Nest = Chain.nest(N);
      NestInstr Instr;
      Instr.Label = Nest.Name;
      Instr.Tile = static_cast<int>(T);
      Instr.Loops = loopsOver(It->second, Env);
      Instr.Stmts.push_back(makeRecord(Chain, N, /*Shift=*/{}, Store,
                                       Instr.Loops, Edges, Instr.Label,
                                       Plan.SpacePersistent, Arrays));
      Plan.Instrs.push_back(std::move(Instr));
      int Task = static_cast<int>(Plan.Tasks.size());
      PlanTask PT{static_cast<int>(Plan.Instrs.size()) - 1, {}};
      // Nests of one tile run in chain order; without tile parallelism
      // the tiles themselves are chained too.
      if (Prev >= 0)
        PT.Deps.push_back(Prev);
      else if (!Plan.TileParallel && PrevTileLast >= 0)
        PT.Deps.push_back(PrevTileLast);
      Plan.Tasks.push_back(std::move(PT));
      Prev = Task;
    }
    if (Prev >= 0)
      PrevTileLast = Prev;
  }
  Plan.SpacePersistent.resize(Plan.NumSpaces, false);
  return Plan;
}

int ExecutionPlan::addExternalTask(std::string Label,
                                   std::function<void(int)> Work, int Tile) {
  NestInstr Instr;
  Instr.Label = std::move(Label);
  Instr.Tile = Tile;
  Instr.External = std::move(Work);
  Instrs.push_back(std::move(Instr));
  Tasks.push_back(PlanTask{static_cast<int>(Instrs.size()) - 1, {}});
  return static_cast<int>(Tasks.size()) - 1;
}

const std::vector<std::vector<bool>> &ExecutionPlan::dependenceClosure() const {
  std::int64_t NumEdges = 0;
  for (const PlanTask &T : Tasks)
    NumEdges += static_cast<std::int64_t>(T.Deps.size());
  const std::pair<std::int64_t, std::int64_t> Key{
      static_cast<std::int64_t>(Tasks.size()), NumEdges};
  if (Key == ClosureKey)
    return ClosureCache;
  std::vector<std::vector<bool>> Closure(
      Tasks.size(), std::vector<bool>(Tasks.size(), false));
  for (std::size_t J = 0; J < Tasks.size(); ++J) {
    for (int D : Tasks[J].Deps) {
      if (D < 0 || static_cast<std::size_t>(D) >= J)
        support::raise(support::ErrorCode::PlanInvalid,
                       "execution plan: dependence not topological");
      Closure[J][static_cast<std::size_t>(D)] = true;
      for (std::size_t I = 0; I < Tasks.size(); ++I)
        if (Closure[static_cast<std::size_t>(D)][I])
          Closure[J][I] = true;
    }
  }
  ClosureCache = std::move(Closure);
  ClosureKey = Key;
  return ClosureCache;
}

void ExecutionPlan::addDependence(int Before, int After) {
  if (Before < 0 || After < 0 || Before >= static_cast<int>(Tasks.size()) ||
      After >= static_cast<int>(Tasks.size()) || Before == After)
    support::raise(support::ErrorCode::PlanInvalid,
                   "execution plan: invalid dependence");
  Tasks[After].Deps.push_back(Before);
}

std::string ExecutionPlan::dump() const {
  std::ostringstream OS;
  OS << "plan: " << Instrs.size() << " instrs, " << Tasks.size() << " tasks, "
     << Edges.size() << " edges, " << NumSpaces << " spaces, tile-parallel="
     << (TileParallel ? "yes" : "no") << "\n";
  for (std::size_t E = 0; E < Edges.size(); ++E)
    OS << "  edge " << E << ": " << Edges[E].Array << " -> "
       << Edges[E].Consumer << " (x" << Edges[E].Multiplicity << ")\n";
  auto Str = [&](const Stream &S) {
    OS << "space" << S.Space << " base " << S.Base << " strides (";
    for (std::size_t L = 0; L < S.LevelStrides.size(); ++L)
      OS << (L ? "," : "") << S.LevelStrides[L];
    OS << ")";
    if (S.Modulo)
      OS << " mod " << S.ModSize;
    if (S.Edge >= 0)
      OS << " edge " << S.Edge;
  };
  for (std::size_t I = 0; I < Instrs.size(); ++I) {
    const NestInstr &Instr = Instrs[I];
    OS << "instr " << I << " [" << Instr.Label << "]";
    if (Instr.Tile >= 0)
      OS << " tile " << Instr.Tile;
    if (Instr.External) {
      OS << " external\n";
      continue;
    }
    OS << "\n";
    OS << "  loops:";
    for (const LoopLevel &L : Instr.Loops)
      OS << " " << L.Iter << " in [" << L.Lo << "," << L.Hi << "]";
    OS << "\n";
    for (const StmtRecord &S : Instr.Stmts) {
      OS << "  stmt nest " << S.NestId << " kernel " << S.KernelId;
      for (const GuardBound &Gd : S.Guards)
        OS << " guard " << Instr.Loops[Gd.Level].Iter << " in [" << Gd.Lo
           << "," << Gd.Hi << "]";
      OS << "\n";
      for (const Stream &R : S.Reads) {
        OS << "    read  ";
        Str(R);
        OS << "\n";
      }
      OS << "    write ";
      Str(S.Write);
      OS << "\n";
    }
  }
  for (std::size_t T = 0; T < Tasks.size(); ++T) {
    OS << "task " << T << " -> instr " << Tasks[T].Instr;
    if (!Tasks[T].Deps.empty()) {
      OS << " deps (";
      for (std::size_t D = 0; D < Tasks[T].Deps.size(); ++D)
        OS << (D ? "," : "") << Tasks[T].Deps[D];
      OS << ")";
    }
    OS << "\n";
  }
  return OS.str();
}

support::Expected<ExecutionPlan>
ExecutionPlan::tryFromChain(const ir::LoopChain &Chain,
                            const storage::ConcreteStorage &Store,
                            const ParamEnv &Env, const graph::Graph *G) {
  auto R =
      support::tryInvoke([&] { return fromChain(Chain, Store, Env, G); });
  if (!R)
    return R.takeError().withContext("compiling chain " + Chain.name());
  return R;
}

support::Expected<ExecutionPlan>
ExecutionPlan::tryFromAst(const graph::Graph &G, const codegen::AstNode &Root,
                          const storage::ConcreteStorage &Store,
                          const ParamEnv &Env) {
  auto R = support::tryInvoke([&] { return fromAst(G, Root, Store, Env); });
  if (!R)
    return R.takeError().withContext("compiling transformed schedule");
  return R;
}

support::Expected<ExecutionPlan>
ExecutionPlan::tryFromTiling(const ir::LoopChain &Chain,
                             const tiling::ChainTiling &Tiling,
                             const storage::ConcreteStorage &Store,
                             const ParamEnv &Env, const graph::Graph *G) {
  auto R = support::tryInvoke(
      [&] { return fromTiling(Chain, Tiling, Store, Env, G); });
  if (!R)
    return R.takeError().withContext("compiling tiled schedule for chain " +
                                     Chain.name());
  return R;
}
