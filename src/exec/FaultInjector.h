//===- exec/FaultInjector.h - Injected faults for hardening -----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for exercising the fail-operational
/// execution layer. An armed FaultSpec names a site, a kind, and the
/// 1-based occurrence at which it fires; LCDFG_FAULT accepts one spec or
/// a `;`-separated list so paired drills run in one process:
///
///   LCDFG_FAULT=<site>:<kind>[:<nth>][;<site>:<kind>[:<nth>]...]
///
///   site    kind       effect
///   ------  --------   ----------------------------------------------
///   kernel  throw      StatusError(E012) from inside a kernel task
///   task    fail       StatusError(E012) before a task-graph node runs
///   modulo  corrupt    shrinks one modulo stream's window on a plan
///                      copy (caught statically as V001 under --verify)
///   input   truncate   halves one persistent backing space (caught by
///                      the runner's plan-vs-storage validation)
///   jitval  reject     forces the JIT translation-validation gate to
///                      reject one kernel (surfaced as L008, the run
///                      keeps the interpreted bodies)
///   peer    kill       the Nth shard worker rank _exit()s before its
///                      first halo send (peers observe EOF -> E018)
///   msg     drop       one halo frame is never sent and resend requests
///                      for it are ignored (deadline -> E019)
///   msg     truncate   one halo frame's payload is halved on every
///                      (re)send (checksum rejects it each time -> E019)
///   msg     delay      one halo frame is delayed LCDFG_SHARD_DELAY_MS
///                      before sending (past the exchange deadline by
///                      default -> E019; a short delay exercises the
///                      recoverable resend path instead)
///   serve   drop       the daemon closes one client connection before
///                      writing any response byte (the client observes
///                      EOF -> E018); other connections are untouched
///   serve   truncate   the daemon writes roughly half of one response
///                      line and closes mid-frame (the client sees an
///                      unterminated/corrupt frame -> E020)
///   serve   delay      the daemon stalls LCDFG_SERVE_DELAY_MS inside one
///                      response write — the server-side slow-loris; a
///                      stall past the client deadline is E019, a short
///                      one is absorbed
///
/// Faults are one-shot: a spec disarms itself when it fires, so a
/// degradation-ladder retry observes a healthy system — recovery from a
/// transient fault is deterministic and testable. With several specs
/// armed, each keeps its own occurrence counter for its site and fires
/// independently. The process-wide injector arms itself from LCDFG_FAULT
/// on first use; tests arm and disarm programmatically. Shard rank 0
/// inherits the armed specs across fork() and every other rank disarms,
/// so a msg fault deterministically strikes the Nth halo frame rank 0
/// sends rather than firing symmetrically in every worker
/// (docs/SHARDING.md).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_EXEC_FAULTINJECTOR_H
#define LCDFG_EXEC_FAULTINJECTOR_H

#include "support/Status.h"

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lcdfg {

namespace storage {
class ConcreteStorage;
}

namespace exec {

struct ExecutionPlan;

/// Where a fault strikes.
enum class FaultSite { None, Kernel, Task, Modulo, Input, JitValidate, Peer, Msg, Serve };
/// What the fault does at its site.
enum class FaultKind { None, Throw, Fail, Corrupt, Truncate, Reject, Kill, Drop, Delay };

/// One parsed fault specification.
struct FaultSpec {
  FaultSite Site = FaultSite::None;
  FaultKind Kind = FaultKind::None;
  /// 1-based occurrence of the site at which the fault fires.
  unsigned Nth = 1;
};

/// Printable names ("kernel", "throw", ...) for messages and reports.
std::string_view faultSiteName(FaultSite Site);
std::string_view faultKindName(FaultKind Kind);

/// The process-wide fault injector. Thread-safe: sites are probed from
/// pool workers; the unarmed fast path is a relaxed atomic load.
class FaultInjector {
public:
  /// The global instance, armed once from LCDFG_FAULT (when set and
  /// parseable; a malformed spec is reported fatally — a fault campaign
  /// with a typo must not silently test nothing).
  static FaultInjector &global();

  /// Parses "<site>:<kind>[:<nth>]", validating the site/kind pairing
  /// shown in the file header. Returns E012-fault-injected errors for
  /// malformed specs.
  static support::Expected<FaultSpec> parseSpec(std::string_view Spec);

  /// Parses a `;`-separated list of specs (empty segments are skipped, so
  /// a trailing `;` is harmless). Any malformed segment fails the whole
  /// parse with that segment's error.
  static support::Expected<std::vector<FaultSpec>>
  parseSpecs(std::string_view Specs);

  /// Arms exactly \p Spec, replacing anything previously armed.
  void arm(FaultSpec Spec);
  /// Arms every spec in \p Specs, replacing anything previously armed.
  /// Each spec keeps an independent occurrence counter for its site.
  void arm(std::vector<FaultSpec> Specs);
  void disarm();
  bool armedFor(FaultSite Site) const;
  /// The first still-armed spec (FaultSite::None when nothing is armed).
  FaultSpec spec() const;

  /// True exactly when this probe is some armed spec's Nth occurrence of
  /// \p Site; that spec disarms itself on firing (one-shot).
  bool shouldFire(FaultSite Site);

  /// Like shouldFire, but reports *which* kind fired at \p Site (so a
  /// single probe point — e.g. a shard frame send — can dispatch between
  /// msg:drop / msg:truncate / msg:delay). FaultKind::None when no armed
  /// spec fired.
  FaultKind fire(FaultSite Site);

  /// Faults fired since the last arm() (0 or 1 under one-shot specs).
  unsigned firedCount() const;

  /// Applies an armed modulo:corrupt fault to \p Plan: shrinks the first
  /// wrap window (ModSize > 1) it finds by one element, the smallest
  /// corruption a reuse-distance window cannot absorb. Returns true when
  /// the fault fired and the plan was mutated.
  bool applyPlanFault(ExecutionPlan &Plan);

  /// Applies an armed input:truncate fault to \p Store: halves the Nth
  /// eligible persistent backing space (per \p Plan's space table; each
  /// eligible space counts as one occurrence of the site). Returns true
  /// when the fault fired and the store was mutated.
  bool applyStorageFault(const ExecutionPlan &Plan,
                         storage::ConcreteStorage &Store);

private:
  struct ArmedSpec {
    FaultSpec Spec;
    unsigned Hits = 0;
  };

  mutable std::mutex Mu;
  std::atomic<bool> Armed{false};
  std::vector<ArmedSpec> Specs;
  unsigned Fired = 0;
};

} // namespace exec
} // namespace lcdfg

#endif // LCDFG_EXEC_FAULTINJECTOR_H
