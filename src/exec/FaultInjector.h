//===- exec/FaultInjector.h - Injected faults for hardening -----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for exercising the fail-operational
/// execution layer. A single armed FaultSpec names a site, a kind, and the
/// 1-based occurrence at which it fires:
///
///   LCDFG_FAULT=<site>:<kind>[:<nth>]
///
///   site    kind       effect
///   ------  --------   ----------------------------------------------
///   kernel  throw      StatusError(E012) from inside a kernel task
///   task    fail       StatusError(E012) before a task-graph node runs
///   modulo  corrupt    shrinks one modulo stream's window on a plan
///                      copy (caught statically as V001 under --verify)
///   input   truncate   halves one persistent backing space (caught by
///                      the runner's plan-vs-storage validation)
///   jitval  reject     forces the JIT translation-validation gate to
///                      reject one kernel (surfaced as L008, the run
///                      keeps the interpreted bodies)
///
/// Faults are one-shot: the spec disarms itself when it fires, so a
/// degradation-ladder retry observes a healthy system — recovery from a
/// transient fault is deterministic and testable. The process-wide
/// injector arms itself from LCDFG_FAULT on first use; tests arm and
/// disarm programmatically.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_EXEC_FAULTINJECTOR_H
#define LCDFG_EXEC_FAULTINJECTOR_H

#include "support/Status.h"

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>

namespace lcdfg {

namespace storage {
class ConcreteStorage;
}

namespace exec {

struct ExecutionPlan;

/// Where a fault strikes.
enum class FaultSite { None, Kernel, Task, Modulo, Input, JitValidate };
/// What the fault does at its site.
enum class FaultKind { None, Throw, Fail, Corrupt, Truncate, Reject };

/// One parsed fault specification.
struct FaultSpec {
  FaultSite Site = FaultSite::None;
  FaultKind Kind = FaultKind::None;
  /// 1-based occurrence of the site at which the fault fires.
  unsigned Nth = 1;
};

/// Printable names ("kernel", "throw", ...) for messages and reports.
std::string_view faultSiteName(FaultSite Site);
std::string_view faultKindName(FaultKind Kind);

/// The process-wide fault injector. Thread-safe: sites are probed from
/// pool workers; the unarmed fast path is a relaxed atomic load.
class FaultInjector {
public:
  /// The global instance, armed once from LCDFG_FAULT (when set and
  /// parseable; a malformed spec is reported fatally — a fault campaign
  /// with a typo must not silently test nothing).
  static FaultInjector &global();

  /// Parses "<site>:<kind>[:<nth>]", validating the site/kind pairing
  /// shown in the file header. Returns E012-fault-injected errors for
  /// malformed specs.
  static support::Expected<FaultSpec> parseSpec(std::string_view Spec);

  void arm(FaultSpec Spec);
  void disarm();
  bool armedFor(FaultSite Site) const;
  FaultSpec spec() const;

  /// True exactly when this probe is the armed spec's Nth occurrence of
  /// \p Site; the spec disarms itself on firing (one-shot).
  bool shouldFire(FaultSite Site);

  /// Faults fired since the last arm() (0 or 1 under one-shot specs).
  unsigned firedCount() const;

  /// Applies an armed modulo:corrupt fault to \p Plan: shrinks the first
  /// wrap window (ModSize > 1) it finds by one element, the smallest
  /// corruption a reuse-distance window cannot absorb. Returns true when
  /// the fault fired and the plan was mutated.
  bool applyPlanFault(ExecutionPlan &Plan);

  /// Applies an armed input:truncate fault to \p Store: halves the Nth
  /// eligible persistent backing space (per \p Plan's space table; each
  /// eligible space counts as one occurrence of the site). Returns true
  /// when the fault fired and the store was mutated.
  bool applyStorageFault(const ExecutionPlan &Plan,
                         storage::ConcreteStorage &Store);

private:
  mutable std::mutex Mu;
  std::atomic<bool> Armed{false};
  FaultSpec Spec;
  unsigned Hits = 0;
  unsigned Fired = 0;
};

} // namespace exec
} // namespace lcdfg

#endif // LCDFG_EXEC_FAULTINJECTOR_H
