//===- exec/RowPlan.h - Row-batched instruction execution -------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The row-batching compilation stage of the execution layer. A RowPlan
/// pre-compiles one NestInstr so the runner can execute whole innermost
/// rows through the batched kernel ABI (codegen::BatchedKernel) instead of
/// interpreting one statement instance at a time:
///
///  * the outer loop levels are walked with an odometer whose carries
///    adjust each stream's row base by a precomputed delta — no per-point
///    dot products;
///  * statement guards are resolved per row: outer-level guards admit or
///    reject the whole row, innermost-level guards clamp the statement to
///    a sub-range once;
///  * rows are split into segments at every modulo-wrap boundary of any
///    participating stream, so within a segment every access is plain
///    pointer + stride arithmetic and the kernel body auto-vectorizes.
///
/// Within a segment the statement records run one after another over the
/// whole segment, which reorders (x1, later-stmt) against (x2, earlier-
/// stmt) for x1 < x2 relative to the scalar point-interleaved oracle.
/// compile() proves this reordering unobservable (see the conflict rules
/// in RowPlan.cpp), capping the segment length below the smallest
/// conflicting pair's collision distance when one exists — fused schedules
/// over storage-reduced rolling buffers batch in short segments instead of
/// losing batching outright. When no safe cap exists the plan is refused
/// and the runner falls back to the scalar path, which stays the
/// semantics of record.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_EXEC_ROWPLAN_H
#define LCDFG_EXEC_ROWPLAN_H

#include "codegen/CPrinter.h"
#include "codegen/Interpreter.h"
#include "exec/ExecutionPlan.h"

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lcdfg {
namespace jit {
class Engine;
} // namespace jit
namespace exec {

/// One pre-resolved access path of a row-batched statement. The pre-wrap
/// linear index at inner position x of the row at outer iteration O is
///   Base + sum_l O[l] * OuterStrides[l] + x * InnerStride,
/// wrapped into [0, ModSize) when Modulo is set. The executor never
/// re-evaluates the sum: it keeps a running pre-wrap row base per stream
/// and applies CarryDelta[l] when the odometer carries into outer level l.
struct RowStream {
  unsigned Space = 0;
  bool Modulo = false;
  std::int64_t ModSize = 1;
  std::int64_t Base = 0; ///< Pre-wrap base at outer lows, inner x = 0.
  std::int64_t InnerStride = 0;
  std::vector<std::int64_t> OuterStrides; ///< One per outer level.
  std::vector<std::int64_t> CarryDelta;   ///< One per outer level.
};

/// One statement record compiled for row execution.
struct RowStmt {
  codegen::BatchedKernel Body = nullptr;
  /// Guards on outer levels: the row runs this statement only when every
  /// outer iterator lies inside its bound.
  std::vector<GuardBound> RowGuards;
  /// Innermost range after folding innermost-level guards into the loop
  /// bounds. Empty (Lo > Hi) statements never run.
  std::int64_t InnerLo = 0;
  std::int64_t InnerHi = -1;
  RowStream Write;
  std::vector<RowStream> Reads;
};

/// Why an instruction was kept on the scalar path. Exported (through
/// RowAnalysis) for the static verifier, which distinguishes structural
/// refusals from interleavings the compiler merely could not prove safe.
enum class RowRefusal {
  None,            ///< Compiled; RowAnalysis::Plan is engaged.
  External,        ///< Opaque callback task: nothing to batch.
  NoLoops,         ///< Zero loop levels: no innermost row exists.
  NoStmts,         ///< No statement records.
  NoBatchedKernel, ///< A statement kernel has no batched body.
  UnsafeInterleave ///< No statement-pair cap > 1 was provable.
};

/// Why JIT specialization was (or was not) applied — orthogonal to
/// RowRefusal: an instruction can batch fine yet stay on the interpreted
/// bodies, and `lcdfg-opt --report` prints the two dimensions separately
/// so "JIT-ineligible" no longer masquerades as "batched-ineligible".
enum class JitRefusal {
  NotRequested,      ///< analyze() ran without a JIT engine.
  Specialized,       ///< Every eligible statement got a JIT body.
  NoKernelExpr,      ///< A kernel carries no expression form (opaque).
  EngineUnavailable, ///< No working host compiler / cache (E017 probe).
  CompileFailed,     ///< The host compiler rejected an emitted body.
  /// The static translation validator (verify::KernelVerifier) could not
  /// prove the emission faithful to the plan; the kernel was never handed
  /// to the engine and the statement keeps its interpreted body.
  ValidationRejected
};

/// Stable printable names for the two refusal dimensions.
std::string_view rowRefusalName(RowRefusal R);
std::string_view jitRefusalName(JitRefusal J);

struct RowAnalysis;

/// Optional execution counters filled by RowPlan::run for the
/// observability layer: how many batched kernel segments were invoked and
/// how many modulo wrap-countdown expiries split them. (The scalar
/// interpreter's wrap counter counts wrapped accesses; this one counts
/// wrap boundary crossings — docs/OBSERVABILITY.md spells out the
/// difference.)
struct RowRunCounters {
  std::int64_t Segments = 0;
  std::int64_t Wraps = 0;
};

/// A compiled row view of one NestInstr. Immutable after compile(): the
/// executor keeps all mutable cursor state on its own stack, so one
/// RowPlan may run concurrently on many workers (tile-parallel plans
/// share the per-nest compilation across tiles' workers).
class RowPlan {
public:
  /// Outer loop levels, outermost first (all levels but the innermost).
  std::vector<LoopLevel> Outer;
  std::vector<RowStmt> Stmts;
  /// Upper bound on segment length: the smallest collision distance over
  /// all conflicting statement pairs (int64 max when unconstrained).
  std::int64_t MaxSegment = std::numeric_limits<std::int64_t>::max();
  /// Fused whole-row JIT kernel, or null. When set, run() dispatches one
  /// compiled call per row (admission mask, row bounds, pre-wrap base
  /// arena) instead of walking segments through per-statement kernel
  /// calls. The compiled function is this plan's segment walker with all
  /// shape constants (including MaxSegment) baked in — same chunking and
  /// statement interleave, so results are bit-identical by construction.
  codegen::RowKernel Row = nullptr;

  /// Compiles \p Instr for row-batched execution, or returns std::nullopt
  /// when the instruction must stay on the scalar path: external tasks,
  /// zero loop levels, a statement kernel without a batched body, or a
  /// statement interleaving whose reordering cannot be proven safe.
  /// \p Jit, when non-null, replaces each statement's interpreted batched
  /// body with a shape-specialized compiled one where possible; any JIT
  /// failure silently keeps the interpreted body (never a hard error).
  static std::optional<RowPlan> compile(const NestInstr &Instr,
                                        const codegen::KernelRegistry &Kernels,
                                        jit::Engine *Jit = nullptr);

  /// Like compile(), but also reports why an instruction stayed scalar
  /// and, with \p Jit, how specialization went per statement.
  static RowAnalysis analyze(const NestInstr &Instr,
                             const codegen::KernelRegistry &Kernels,
                             jit::Engine *Jit = nullptr);

  /// Executes the compiled rows against the space table \p Spaces
  /// (index = space id, value = buffer base pointer). Accumulates the
  /// statement-instance and operand-load counts the runner credits to the
  /// instruction's node; \p Counters, when non-null, additionally receives
  /// the batched-segment and modulo-wrap counts.
  void run(double *const *Spaces, std::int64_t &Points,
           std::int64_t &RawReads, RowRunCounters *Counters = nullptr) const;
};

/// The JIT segment-kernel signature analyze() requests for statement \p SI
/// of \p Plan: literal strides plus which reads walk the written space.
/// Exported so the static translation validator can re-derive exactly what
/// the engine would be asked to compile without constructing an engine.
/// \p SI must be a valid statement index.
codegen::SegmentKernelSig rowSegmentSig(const RowPlan &Plan, std::size_t SI);

/// The fused row-walker descriptor analyze() would hand jit::Engine for
/// \p Plan, or std::nullopt when the instruction has no fused-row form: a
/// kernel without an expression body, more than 64 statements, a statement
/// table that does not match \p Instr, or no statement with a non-empty
/// inner span. Purely shape-derived — no engine is consulted, so the
/// static validator can call it with no host compiler present.
std::optional<codegen::RowKernelDesc>
rowKernelDesc(const RowPlan &Plan, const NestInstr &Instr,
              const codegen::KernelRegistry &Kernels);

/// Result of the row-batching compilation attempt: the plan when it
/// succeeded, and the first refusal reason when it did not. The Jit
/// fields report the specialization dimension (see JitRefusal); a partial
/// outcome keeps Jit at the first failure kind while JitStmts counts the
/// statements that did get compiled bodies.
struct RowAnalysis {
  std::optional<RowPlan> Plan;
  RowRefusal Refusal = RowRefusal::None;
  JitRefusal Jit = JitRefusal::NotRequested;
  /// Detail of the first JIT failure ("" when none).
  std::string JitDetail;
  /// Statements whose Body is a JIT-specialized kernel.
  int JitStmts = 0;
  /// True when the plan additionally carries a fused whole-row kernel
  /// (RowPlan::Row): every statement specialized and the fused walker
  /// compiled.
  bool FusedRow = false;
};

} // namespace exec
} // namespace lcdfg

#endif // LCDFG_EXEC_ROWPLAN_H
