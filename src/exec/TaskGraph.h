//===- exec/TaskGraph.h - Dependence-aware task scheduling ------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small task graph executed in dependence-respecting wavefronts on the
/// persistent thread pool. Execution plans lower (tile x nest) units to
/// tasks here; baselines and the MiniFluxDiv driver use it directly for
/// their box/tile loops.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_EXEC_TASKGRAPH_H
#define LCDFG_EXEC_TASKGRAPH_H

#include <functional>
#include <vector>

namespace lcdfg {
namespace exec {

/// Directed acyclic graph of tasks. Tasks run when every predecessor has
/// completed; independent tasks of the same wavefront run concurrently.
class TaskGraph {
public:
  /// Adds a task and returns its id. \p Work receives the dense
  /// participant id of the thread running it (0 = the caller), usable as
  /// an index into per-worker scratch state.
  int addTask(std::function<void(int)> Work);

  /// Declares that \p After must not start before \p Before completed.
  void addDependence(int Before, int After);

  int size() const { return static_cast<int>(Tasks.size()); }

  /// Runs all tasks on up to \p Threads participants. Tasks are grouped
  /// into wavefronts by longest-path depth; each wavefront is a
  /// ThreadPool::parallelForWorker over its ready tasks. Rethrows the
  /// first exception a task threw (remaining wavefronts are skipped).
  void run(int Threads);

  /// The wavefront partition run() would use: Levels[L] holds the task
  /// ids whose longest dependence chain has length L. Exposed for plan
  /// dumping and tests.
  std::vector<std::vector<int>> wavefronts() const;

private:
  struct Task {
    std::function<void(int)> Work;
    std::vector<int> Succs;
    int NumPreds = 0;
  };
  std::vector<Task> Tasks;
};

} // namespace exec
} // namespace lcdfg

#endif // LCDFG_EXEC_TASKGRAPH_H
