//===- exec/TaskGraph.h - Dependence-aware task scheduling ------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small task graph executed on the persistent thread pool under one of
/// two strategies. Execution plans lower (tile x nest) units to tasks
/// here; baselines and the MiniFluxDiv driver use it directly for their
/// box/tile loops.
///
///  * run(): the paper's wavefront barrier — tasks grouped by longest-path
///    depth, one parallelFor per level. Kept selectable so the list
///    scheduler can be bit-compared and benched against it.
///  * runList(): a work-stealing list scheduler — per-worker ready deques
///    ordered by critical-path priority (ties favor tasks that free
///    temporaries), idle workers steal, and an optional live-temporary
///    budget defers tasks whose admission would push the tracked
///    footprint past the cap.
///
/// Both strategies run each task exactly once and never start a task
/// before all its predecessors completed, so any externally observable
/// difference between them is a data race by definition — lcdfg-lint
/// bit-compares their outputs (T007) on every example config.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_EXEC_TASKGRAPH_H
#define LCDFG_EXEC_TASKGRAPH_H

#include <cstdint>
#include <functional>
#include <vector>

namespace lcdfg {
namespace storage {
class FootprintTracker;
} // namespace storage

namespace exec {

/// Directed acyclic graph of tasks. Tasks run when every predecessor has
/// completed; independent tasks run concurrently.
class TaskGraph {
public:
  /// Knobs for runList().
  struct ListOptions {
    int Threads = 1;
    /// Live-temporary byte cap; 0 = unlimited. A positive budget requires
    /// Memory, and a budget no single task fits under is refused up front
    /// with E016 (before any task runs).
    std::int64_t MemBudget = 0;
    /// Footprint model consulted for admission and charged on
    /// admit/retire. May be null only when MemBudget is 0. Mutated under
    /// the scheduler's lock; the caller must not touch it during the run.
    storage::FootprintTracker *Memory = nullptr;
  };

  /// Adds a task and returns its id. \p Work receives the dense
  /// participant id of the thread running it (0 = the caller), usable as
  /// an index into per-worker scratch state.
  int addTask(std::function<void(int)> Work);

  /// Declares that \p After must not start before \p Before completed.
  void addDependence(int Before, int After);

  int size() const { return static_cast<int>(Tasks.size()); }

  /// Runs all tasks on up to \p Threads participants. Tasks are grouped
  /// into wavefronts by longest-path depth; each wavefront is a
  /// ThreadPool::parallelForWorker over its ready tasks. Rethrows the
  /// first exception a task threw (remaining wavefronts are skipped).
  void run(int Threads);

  /// Runs all tasks under the work-stealing list scheduler. Rethrows the
  /// first exception a task threw (tasks already running on other workers
  /// drain first; no new task starts after a failure). Raises E016 when
  /// the memory budget is infeasible — up front if a single task exceeds
  /// it, or mid-run if every remaining ready task is over budget with
  /// nothing in flight to free memory.
  void runList(const ListOptions &Opts);

  /// The wavefront partition run() would use: Levels[L] holds the task
  /// ids whose longest dependence chain has length L. Exposed for plan
  /// dumping and tests. Memoized — recomputed only after addTask /
  /// addDependence; the reference is invalidated by either.
  const std::vector<std::vector<int>> &wavefronts() const;

  /// Critical-path length per task (1 for sinks; the list scheduler's
  /// primary priority). Memoized alongside wavefronts().
  const std::vector<int> &heights() const;

private:
  struct Task {
    std::function<void(int)> Work;
    std::vector<int> Succs;
    int NumPreds = 0;
  };
  std::vector<Task> Tasks;

  /// Kahn levels + downward critical paths, computed together and reused
  /// by run(), runList()'s priority pass, plan dumping, and verify.
  void computeLevels() const;
  mutable std::vector<std::vector<int>> LevelsCache;
  mutable std::vector<int> HeightsCache;
  mutable bool CacheValid = false;
};

} // namespace exec
} // namespace lcdfg

#endif // LCDFG_EXEC_TASKGRAPH_H
