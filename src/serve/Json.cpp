//===- serve/Json.cpp -----------------------------------------------------===//

#include "serve/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::serve;
using support::ErrorCode;

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

std::string JsonValue::asString(std::string_view Def) const {
  return K == Kind::String ? Str : std::string(Def);
}

std::int64_t JsonValue::asInt(std::int64_t Def) const {
  if (K != Kind::Number)
    return Def;
  if (Num > 9.2e18 || Num < -9.2e18 || std::isnan(Num))
    return Def;
  return static_cast<std::int64_t>(Num);
}

double JsonValue::asDouble(double Def) const {
  return K == Kind::Number ? Num : Def;
}

bool JsonValue::asBool(bool Def) const { return K == Kind::Bool ? B : Def; }

namespace {

/// Recursive-descent parser over a bounded view. Depth-capped so an
/// "[[[[[..." bomb is an error, not a stack overflow.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  support::Expected<JsonValue> run() {
    JsonValue V;
    support::Status S = value(V, 0);
    if (!S)
      return S;
    skipWs();
    if (Pos != Text.size())
      return err("trailing bytes after the top-level value");
    return V;
  }

private:
  static constexpr int MaxDepth = 64;

  std::string_view Text;
  std::size_t Pos = 0;

  support::Status err(std::string Why) const {
    return support::Status::error(ErrorCode::Protocol,
                                  "json: " + std::move(Why) + " at byte " +
                                      std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  support::Status value(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return err("nesting deeper than " + std::to_string(MaxDepth));
    skipWs();
    if (Pos >= Text.size())
      return err("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return object(Out, Depth);
    case '[':
      return array(Out, Depth);
    case '"':
      Out.K = JsonValue::Kind::String;
      return string(Out.Str);
    case 't':
      if (Text.substr(Pos, 4) == "true") {
        Pos += 4;
        Out.K = JsonValue::Kind::Bool;
        Out.B = true;
        return support::Status::ok();
      }
      return err("bad literal");
    case 'f':
      if (Text.substr(Pos, 5) == "false") {
        Pos += 5;
        Out.K = JsonValue::Kind::Bool;
        Out.B = false;
        return support::Status::ok();
      }
      return err("bad literal");
    case 'n':
      if (Text.substr(Pos, 4) == "null") {
        Pos += 4;
        Out.K = JsonValue::Kind::Null;
        return support::Status::ok();
      }
      return err("bad literal");
    default:
      return number(Out);
    }
  }

  support::Status object(JsonValue &Out, int Depth) {
    ++Pos; // '{'
    Out.K = JsonValue::Kind::Object;
    skipWs();
    if (eat('}'))
      return support::Status::ok();
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return err("expected a string key");
      std::string Key;
      if (support::Status S = string(Key); !S)
        return S;
      skipWs();
      if (!eat(':'))
        return err("expected ':' after key");
      JsonValue V;
      if (support::Status S = value(V, Depth + 1); !S)
        return S;
      Out.Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (eat(','))
        continue;
      if (eat('}'))
        return support::Status::ok();
      return err("expected ',' or '}' in object");
    }
  }

  support::Status array(JsonValue &Out, int Depth) {
    ++Pos; // '['
    Out.K = JsonValue::Kind::Array;
    skipWs();
    if (eat(']'))
      return support::Status::ok();
    while (true) {
      JsonValue V;
      if (support::Status S = value(V, Depth + 1); !S)
        return S;
      Out.Items.push_back(std::move(V));
      skipWs();
      if (eat(','))
        continue;
      if (eat(']'))
        return support::Status::ok();
      return err("expected ',' or ']' in array");
    }
  }

  support::Status string(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return err("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return support::Status::ok();
      if (static_cast<unsigned char>(C) < 0x20)
        return err("raw control byte in string");
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return err("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return err("truncated \\u escape");
        unsigned CP = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          unsigned D;
          if (H >= '0' && H <= '9')
            D = static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            D = static_cast<unsigned>(H - 'a') + 10;
          else if (H >= 'A' && H <= 'F')
            D = static_cast<unsigned>(H - 'A') + 10;
          else
            return err("bad hex digit in \\u escape");
          CP = CP * 16 + D;
        }
        // Encode as UTF-8; surrogates pass through as replacement chars
        // (the protocol never legitimately carries them).
        if (CP < 0x80) {
          Out.push_back(static_cast<char>(CP));
        } else if (CP < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (CP >> 6)));
          Out.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (CP >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((CP >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
        }
        break;
      }
      default:
        return err("unknown escape");
      }
    }
  }

  support::Status number(JsonValue &Out) {
    std::size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto Digits = [&] {
      std::size_t N = 0;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ++N;
      }
      return N;
    };
    if (Digits() == 0)
      return err("expected a value");
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Digits() == 0)
        return err("digits required after '.'");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Digits() == 0)
        return err("digits required in exponent");
    }
    Out.K = JsonValue::Kind::Number;
    Out.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                          nullptr);
    return support::Status::ok();
  }
};

} // namespace

support::Expected<JsonValue> serve::parseJson(std::string_view Text) {
  return Parser(Text).run();
}

std::string serve::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

std::string serve::jsonField(std::string_view Key, std::string_view Value) {
  return "\"" + jsonEscape(Key) + "\":\"" + jsonEscape(Value) + "\"";
}

std::string serve::jsonField(std::string_view Key, std::int64_t Value) {
  return "\"" + jsonEscape(Key) + "\":" + std::to_string(Value);
}

std::string serve::jsonField(std::string_view Key, double Value) {
  std::ostringstream OS;
  OS << Value;
  return "\"" + jsonEscape(Key) + "\":" + OS.str();
}

std::string serve::jsonField(std::string_view Key, bool Value) {
  return "\"" + jsonEscape(Key) + "\":" + (Value ? "true" : "false");
}
