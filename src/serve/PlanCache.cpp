//===- serve/PlanCache.cpp ------------------------------------------------===//

#include "serve/PlanCache.h"

#include "codegen/Generator.h"
#include "graph/GraphBuilder.h"
#include "obs/Trace.h"
#include "parser/PragmaParser.h"
#include "parser/ScriptRunner.h"
#include "verify/PlanVerifier.h"

#include <chrono>
#include <tuple>
#include <utility>

using namespace lcdfg;
using namespace lcdfg::serve;
using support::ErrorCode;

namespace {

/// Batched synthetic stand-in bodies, mirroring the lcdfg-opt driver: a
/// parsed chain carries no executable kernels, so a sum of reads
/// (accumulating, or pure under hardening — the accumulating form reads
/// its unwritten target, which is exactly what the NaN guard flags) stands
/// in per read arity.
template <int Arity>
void batchedSum(double *W, const double *const *R, const std::int64_t *S,
                std::int64_t WS, std::int64_t N) {
  for (std::int64_t I = 0; I < N; ++I) {
    double Sum = W[I * WS];
    for (int J = 0; J < Arity; ++J)
      Sum += R[J][I * S[J]];
    W[I * WS] = Sum;
  }
}

template <int Arity>
void batchedPureSum(double *W, const double *const *R, const std::int64_t *S,
                    std::int64_t WS, std::int64_t N) {
  for (std::int64_t I = 0; I < N; ++I) {
    double Sum = 0.0;
    for (int J = 0; J < Arity; ++J)
      Sum += R[J][I * S[J]];
    W[I * WS] = Sum;
  }
}

codegen::BatchedKernel batchedSumForArity(std::size_t Arity, bool Pure) {
  static constexpr codegen::BatchedKernel Acc[] = {
      batchedSum<0>, batchedSum<1>, batchedSum<2>, batchedSum<3>,
      batchedSum<4>, batchedSum<5>, batchedSum<6>, batchedSum<7>,
      batchedSum<8>};
  static constexpr codegen::BatchedKernel PureT[] = {
      batchedPureSum<0>, batchedPureSum<1>, batchedPureSum<2>,
      batchedPureSum<3>, batchedPureSum<4>, batchedPureSum<5>,
      batchedPureSum<6>, batchedPureSum<7>, batchedPureSum<8>};
  if (Arity >= sizeof(Acc) / sizeof(Acc[0]))
    return nullptr;
  return Pure ? PureT[Arity] : Acc[Arity];
}

/// The same left-associated sum as an expression, so JIT emissions add in
/// the interpreter's order (bit-identity across kernel modes).
codegen::KernelExpr sumExpr(std::size_t Arity, bool Pure) {
  codegen::KernelExpr E = Pure ? codegen::lit(0.0) : codegen::current();
  for (std::size_t J = 0; J < Arity; ++J)
    E = E + codegen::read(static_cast<unsigned>(J));
  return E;
}

/// Registers one synthetic kernel per distinct read arity and assigns ids
/// to every nest the parse left kernel-less.
void assignSyntheticKernels(ir::LoopChain &Chain,
                            codegen::KernelRegistry &Kernels, bool Harden) {
  std::map<std::size_t, int> ByArity;
  auto IdFor = [&](std::size_t Arity) {
    auto It = ByArity.find(Arity);
    if (It != ByArity.end())
      return It->second;
    int Id = Harden ? Kernels.add(
                          [](const std::vector<double> &Reads, double) {
                            double Sum = 0.0;
                            for (double R : Reads)
                              Sum += R;
                            return Sum;
                          },
                          batchedSumForArity(Arity, true), sumExpr(Arity, true))
                    : Kernels.add(
                          [](const std::vector<double> &Reads, double Current) {
                            double Sum = Current;
                            for (double R : Reads)
                              Sum += R;
                            return Sum;
                          },
                          batchedSumForArity(Arity, false),
                          sumExpr(Arity, false));
    ByArity.emplace(Arity, Id);
    return Id;
  };
  for (unsigned N = 0; N < Chain.numNests(); ++N)
    if (Chain.nest(N).KernelId < 0) {
      std::size_t Arity = 0;
      for (const ir::Access &A : Chain.nest(N).Reads)
        Arity += A.Offsets.size();
      Chain.nest(N).KernelId = IdFor(Arity);
    }
}

std::int64_t storageBytes(const storage::ConcreteStorage &Store) {
  std::int64_t Bytes = 0;
  for (std::size_t S = 0; S < Store.numSpaces(); ++S)
    Bytes += static_cast<std::int64_t>(Store.space(S).size() * sizeof(double));
  return Bytes;
}

} // namespace

void CompiledPlan::seedStore(storage::ConcreteStorage &Store) const {
  for (const std::string &Name : Chain.arrayNames())
    if (Chain.array(Name).Kind == ir::StorageKind::PersistentInput) {
      std::vector<double> &Buf = Store.spaceOf(Name);
      for (std::size_t I = 0; I < Buf.size(); ++I)
        Buf[I] = 0.001 * static_cast<double>((I * 2654435761u) % 1000u);
    }
}

std::uint64_t PlanCache::hashText(std::string_view Text) {
  std::uint64_t H = 0xcbf29ce484222325ull;
  for (char C : Text) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

bool PlanCache::Key::operator<(const Key &O) const {
  return std::tie(ChainHash, ScriptHash, Size, Widen, Threads, Scheduler,
                  Harden) < std::tie(O.ChainHash, O.ScriptHash, O.Size,
                                     O.Widen, O.Threads, O.Scheduler,
                                     O.Harden);
}

PlanCache::Key PlanCache::keyOf(const RequestSpec &Spec) {
  Key K;
  K.ChainHash = hashText(Spec.Chain);
  K.ScriptHash = hashText(Spec.Script);
  K.Size = Spec.Size;
  K.Widen = Spec.Widen;
  K.Threads = Spec.Threads;
  K.Scheduler = static_cast<int>(Spec.Scheduler);
  K.Harden = Spec.Harden;
  return K;
}

namespace {

support::Expected<CompiledPlanPtr> compileImpl(const RequestSpec &Spec) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();

  auto CP = std::make_shared<CompiledPlan>();

  parser::ParseResult Parsed = parser::parseLoopChain(Spec.Chain);
  if (!Parsed)
    return Parsed.status().withContext("while compiling a serve request");
  CP->Chain = std::move(*Parsed.Chain);
  assignSyntheticKernels(CP->Chain, CP->Kernels, Spec.Harden);

  CP->G.emplace(graph::buildGraph(CP->Chain));
  if (!Spec.Script.empty()) {
    parser::ScriptResult R = parser::runScript(*CP->G, Spec.Script);
    if (!R)
      return support::Status::error(ErrorCode::IllegalTransform,
                                    "script line " + std::to_string(R.Line) +
                                        ": " + R.Error)
          .withContext("while compiling a serve request");
  }

  // Bind every plausible extent symbol to the requested size; chains only
  // consult the symbols they actually use.
  for (const char *Sym : {"N", "M", "X", "Y", "Z", "W"})
    CP->Env.emplace(Sym, Spec.Size);

  auto SPlan = storage::StoragePlan::tryBuild(*CP->G, true, Spec.Widen);
  if (!SPlan)
    return SPlan.takeError().withContext("while compiling a serve request");
  CP->SPlan = std::move(*SPlan);

  // One throwaway concrete binding: lowering resolves streams against it,
  // and it prices the per-request allocation for admission control.
  auto Lowered = support::tryInvoke([&] {
    storage::ConcreteStorage Store(CP->SPlan, CP->Env);
    CP->Ast = codegen::generate(*CP->G);
    CP->Plan = exec::ExecutionPlan::fromAst(*CP->G, *CP->Ast, Store, CP->Env);
    CP->StoreBytes = storageBytes(Store);
    storage::FootprintTracker Tracker =
        exec::buildFootprintTracker(CP->Plan, Store);
    CP->SerialHighWater = Tracker.serialHighWater();

    // The untransformed fallback rung, lowered against its own storage
    // plan (the transformed plan's store may have collapsed arrays the
    // fallback still writes in full).
    CP->RefG.emplace(graph::buildGraph(CP->Chain));
    CP->FbSPlan = storage::StoragePlan::build(*CP->RefG);
    storage::ConcreteStorage FbStore(CP->FbSPlan, CP->Env);
    CP->FbPlan =
        exec::ExecutionPlan::fromChain(CP->Chain, FbStore, CP->Env, &*CP->RefG);
    CP->FallbackBytes = storageBytes(FbStore);
    return 0;
  });
  if (!Lowered)
    return Lowered.takeError().withContext("while compiling a serve request");

  CP->Cost = graph::computeCost(*CP->G);
  CP->TrafficBytes =
      8 * CP->Cost.TotalRead.evaluate(std::max<std::int64_t>(Spec.Size, 1));
  // The ladder snapshots both stores before running, so a request's true
  // footprint is twice each allocation.
  CP->AdmitBytes = 2 * (CP->StoreBytes + CP->FallbackBytes);

  // Strict verification once per compile; per-request runs skip the gate
  // (the verdict cannot change for an immutable plan). An unclean plan is
  // still returned — the server answers its requests with E011.
  verify::VerifyOptions VOpts;
  VOpts.Kernels = &CP->Kernels;
  verify::PlanVerifier Verifier(CP->Plan, VOpts);
  verify::Diagnostics Diags = Verifier.verify();
  verify::checkGraphSchedule(*CP->G, Diags);
  if (Diags.hasErrors()) {
    CP->VerifyClean = false;
    CP->VerifyDetail = Diags.toString();
  }

  // Pre-warm the lazily memoized dependence closures: concurrent requests
  // share this entry read-only, and the first closure computation is the
  // one mutation a cold plan would otherwise make under readers.
  (void)CP->Plan.dependenceClosure();
  (void)CP->FbPlan.dependenceClosure();

  CP->CompileSeconds =
      std::chrono::duration<double>(Clock::now() - T0).count();
  return CompiledPlanPtr(std::move(CP));
}

} // namespace

support::Expected<CompiledPlanPtr> PlanCache::compile(const RequestSpec &Spec) {
  // Exception barrier for the whole pipeline: deep passes (graph build,
  // cost polynomials, verification) raise StatusError for chains that
  // parse but are not compilable — e.g. a fuzzed access that names a
  // variable its domain never binds. A daemon must hand those back as a
  // per-request Status, never let them unwind a connection thread.
  try {
    return compileImpl(Spec);
  } catch (const support::StatusError &E) {
    support::Status S = E.status();
    return S.withContext("while compiling a serve request");
  } catch (const std::exception &E) {
    return support::Status::error(ErrorCode::InvalidChain, E.what())
        .withContext("while compiling a serve request");
  }
}

PlanCache::PlanCache(std::size_t Capacity)
    : Capacity(Capacity == 0 ? 1 : Capacity) {}

support::Expected<CompiledPlanPtr> PlanCache::get(const RequestSpec &Spec,
                                                  bool *Hit) {
  if (Hit)
    *Hit = false;
  if (Spec.Bypass) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Stats.Misses;
    obs::Tracer::global().add(obs::Counter::ServeCacheMisses, 1);
  } else {
    Key K = keyOf(Spec);
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(K);
    if (It != Entries.end()) {
      ++Stats.Hits;
      obs::Tracer::global().add(obs::Counter::ServeCacheHits, 1);
      Order.splice(Order.begin(), Order, It->second.Order);
      if (Hit)
        *Hit = true;
      return It->second.Plan;
    }
    ++Stats.Misses;
    obs::Tracer::global().add(obs::Counter::ServeCacheMisses, 1);
  }

  // Compile outside the lock: a slow compile must not block hits.
  support::Expected<CompiledPlanPtr> Compiled = compile(Spec);
  if (!Compiled || Spec.Bypass)
    return Compiled;

  Key K = keyOf(Spec);
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(K);
  if (It != Entries.end())
    return It->second.Plan; // A racing miss inserted first; keep its entry.
  while (Entries.size() >= Capacity) {
    Entries.erase(Order.back());
    Order.pop_back();
    ++Stats.Evictions;
    obs::Tracer::global().add(obs::Counter::ServeEvictions, 1);
  }
  Order.push_front(K);
  Entries.emplace(K, Entry{*Compiled, Order.begin()});
  return Compiled;
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheStats S = Stats;
  S.Entries = static_cast<std::int64_t>(Entries.size());
  return S;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries.clear();
  Order.clear();
}
