//===- serve/PlanCache.h - Keyed compiled-plan cache ------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The amortization core of the serving daemon. The paper's pipeline
/// compiles a loop chain once and executes it many times; lcdfg-serve
/// turns that into a service by keeping the expensive front half — parse,
/// graph build, transform script, storage planning, AST generation, plan
/// lowering, fallback lowering, static verification — behind an LRU cache
/// keyed by everything that shapes the compiled artifact:
///
///   (chain hash, script, size, widen, threads, scheduler, harden)
///
/// The first six components are the protocol's cache key; the hardening
/// bit rides along because it swaps the synthetic kernel *bodies* (pure
/// vs accumulating stand-ins), which are baked into the registry at
/// compile time. Run-only knobs (batched, kernel mode, memory budget) are
/// deliberately not in the key: they select *how* a cached plan runs, not
/// what was compiled, and JIT kernels have their own two-level cache in
/// jit::Engine keyed by expression and segment shape.
///
/// A CompiledPlan is immutable after construction and shared by every
/// request that hits it (shared_ptr, so an entry evicted mid-flight stays
/// alive until its last request completes). Everything a concurrent run
/// reads is pre-warmed at compile time — including both plans' dependence
/// closures, whose lazy memoization would otherwise race.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SERVE_PLANCACHE_H
#define LCDFG_SERVE_PLANCACHE_H

#include "codegen/Ast.h"
#include "codegen/Interpreter.h"
#include "exec/ExecutionPlan.h"
#include "exec/PlanRunner.h"
#include "graph/CostModel.h"
#include "graph/Graph.h"
#include "ir/LoopChain.h"
#include "storage/StorageMap.h"
#include "support/Status.h"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace lcdfg {
namespace serve {

/// One compile+run request, decoded from the wire. Key fields (see file
/// header) select the cache entry; the rest are per-run options.
struct RequestSpec {
  std::string Chain;  ///< Pragma text (the chain source).
  std::string Script; ///< Transform script text ("" = untransformed).
  std::int64_t Size = 8;
  unsigned Widen = 1;
  int Threads = 1;
  exec::SchedulerKind Scheduler = exec::SchedulerKind::List;
  bool Harden = false;

  // Run-only knobs (not part of the cache key).
  bool Batched = true;
  exec::KernelMode Kernels = exec::KernelMode::Interp;
  std::int64_t MemBudget = 0;
  bool Bypass = false;   ///< Compile fresh, never consult or fill the cache.
  bool Checksum = false; ///< FNV the persistent outputs into the response.
};

/// Everything the daemon needs to run one cached configuration. The
/// members keep each other alive: the plan addresses spaces laid out by
/// SPlan, streams resolved against any ConcreteStorage(SPlan, env), and
/// kernel ids registered in Kernels; Ast and the graphs are retained so
/// nothing dangles.
struct CompiledPlan {
  ir::LoopChain Chain; ///< With synthetic kernel ids assigned.
  codegen::KernelRegistry Kernels;
  /// Transformed (script applied). Optional only because Graph binds to
  /// the chain at construction; engaged for every compiled entry.
  std::optional<graph::Graph> G;
  storage::StoragePlan SPlan;
  codegen::AstPtr Ast;
  exec::ExecutionPlan Plan;

  /// Untransformed reference for the fallback rung.
  std::optional<graph::Graph> RefG;
  storage::StoragePlan FbSPlan;
  exec::ExecutionPlan FbPlan;

  exec::ParamEnv Env;
  graph::CostReport Cost; ///< S_R / S_c of the transformed graph.

  std::int64_t StoreBytes = 0;    ///< One ConcreteStorage(SPlan, Env).
  std::int64_t FallbackBytes = 0; ///< One ConcreteStorage(FbSPlan, Env).
  /// What admission charges a request: primary + fallback stores twice
  /// over (the recovery ladder snapshots both before running).
  std::int64_t AdmitBytes = 0;
  /// Serial high-water of live temporaries (FootprintTracker) — the
  /// floor any admission policy could reach for this plan.
  std::int64_t SerialHighWater = 0;
  /// 8 * S_R(Size): the cost model's read traffic in bytes; the server's
  /// heavy-lane classifier keys on it.
  std::int64_t TrafficBytes = 0;

  /// Strict static verification runs once here, not per request; an
  /// unclean entry is still cached (recompiling would not fix it) and
  /// every request for it is answered with the E011 below.
  bool VerifyClean = true;
  std::string VerifyDetail;

  double CompileSeconds = 0.0;

  /// Deterministically seeds the persistent inputs of \p Store — the same
  /// pattern for every request, which is what makes warm-vs-cold
  /// bit-identity checkable.
  void seedStore(storage::ConcreteStorage &Store) const;
};

using CompiledPlanPtr = std::shared_ptr<const CompiledPlan>;

/// Hit/miss/eviction counters; Hits + Misses equals the requests that
/// consulted the cache (bypasses count as misses).
struct CacheStats {
  std::int64_t Hits = 0;
  std::int64_t Misses = 0;
  std::int64_t Evictions = 0;
  std::int64_t Entries = 0;
};

/// Thread-safe LRU over compiled plans. Compiles happen outside the lock,
/// so a slow compile never stalls hits on other keys; two racing misses
/// for the same key both compile and the later insert is dropped in
/// favor of the earlier (both count as misses).
class PlanCache {
public:
  explicit PlanCache(std::size_t Capacity = 64);

  /// Returns the cached entry for \p Spec, compiling on a miss. Compile
  /// failures (E001 parse, E005 script, E007 storage, E008 lowering) are
  /// returned and never cached — a poisoned request must not occupy a
  /// slot, and a retry after a fix must recompile. \p Hit, when non-null,
  /// reports whether this was a cache hit.
  support::Expected<CompiledPlanPtr> get(const RequestSpec &Spec,
                                         bool *Hit = nullptr);

  CacheStats stats() const;
  std::size_t capacity() const { return Capacity; }
  void clear();

  /// The front half of the pipeline, cache-free: parse, synthetic
  /// kernels, graph, script, storage plan (widened), AST, plan, fallback
  /// plan, cost model, footprint, one strict verification.
  static support::Expected<CompiledPlanPtr> compile(const RequestSpec &Spec);

  /// FNV-1a-64 over \p Text (the protocol's chain hash).
  static std::uint64_t hashText(std::string_view Text);

private:
  struct Key {
    std::uint64_t ChainHash = 0;
    std::uint64_t ScriptHash = 0;
    std::int64_t Size = 0;
    unsigned Widen = 1;
    int Threads = 1;
    int Scheduler = 0;
    bool Harden = false;

    bool operator<(const Key &O) const;
  };
  static Key keyOf(const RequestSpec &Spec);

  struct Entry {
    CompiledPlanPtr Plan;
    std::list<Key>::iterator Order; ///< Position in the LRU list.
  };

  mutable std::mutex Mu;
  std::size_t Capacity;
  std::list<Key> Order; ///< Front = most recently used.
  std::map<Key, Entry> Entries;
  CacheStats Stats;
};

} // namespace serve
} // namespace lcdfg

#endif // LCDFG_SERVE_PLANCACHE_H
