//===- serve/Json.h - Minimal JSON values for the wire protocol -*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request side of the serving protocol. The repo has plenty of JSON
/// *emitters* (Status::toJson, RunReport::toJson, bench::JsonReport) but
/// until the daemon existed nothing needed to read JSON back; this is the
/// smallest recursive-descent reader that covers the protocol grammar —
/// objects, arrays, strings with the standard escapes, numbers, booleans,
/// null — hardened for hostile input: a depth cap, a strict
/// must-consume-everything top level, and structured E020 errors instead
/// of exceptions, so the soak test can throw mutated garbage at it all
/// day. Numbers are kept as doubles (the protocol's integers are far
/// below 2^53); \uXXXX escapes are decoded to UTF-8.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SERVE_JSON_H
#define LCDFG_SERVE_JSON_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lcdfg {
namespace serve {

/// One parsed JSON value. A tagged aggregate rather than a variant: the
/// protocol's values are tiny and short-lived, so the few wasted bytes
/// buy simple, non-throwing accessors.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Object, Array };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<std::pair<std::string, JsonValue>> Members; ///< Kind::Object
  std::vector<JsonValue> Items;                           ///< Kind::Array

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNull() const { return K == Kind::Null; }

  /// First member named \p Key (nullptr when absent or not an object).
  const JsonValue *find(std::string_view Key) const;

  /// Typed reads with defaults; a present member of the wrong type reads
  /// as the default (callers that must distinguish use find()).
  std::string asString(std::string_view Def = "") const;
  std::int64_t asInt(std::int64_t Def = 0) const;
  double asDouble(double Def = 0.0) const;
  bool asBool(bool Def = false) const;
};

/// Parses \p Text as exactly one JSON value (leading/trailing whitespace
/// allowed, nothing else). Errors are E020-protocol with a byte offset in
/// the message.
support::Expected<JsonValue> parseJson(std::string_view Text);

/// Escapes \p S for embedding in a JSON string literal (quotes not
/// included). Control bytes become \u00XX.
std::string jsonEscape(std::string_view S);

/// Convenience: "key":"escaped-value" fragment builders used by the
/// response writers.
std::string jsonField(std::string_view Key, std::string_view Value);
std::string jsonField(std::string_view Key, std::int64_t Value);
std::string jsonField(std::string_view Key, double Value);
std::string jsonField(std::string_view Key, bool Value);

} // namespace serve
} // namespace lcdfg

#endif // LCDFG_SERVE_JSON_H
