//===- serve/Server.h - The plan-serving daemon -----------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// lcdfg-serve's engine: a newline-delimited JSON request/response server
/// over AF_UNIX or loopback TCP (docs/SERVING.md has the grammar). One
/// thread per connection reads frames, compiles-or-fetches through the
/// shared PlanCache, passes admission control, and executes through
/// exec::runWithRecovery — so a poisoned request (parse error, injected
/// kernel fault, infeasible budget) degrades or fails with a structured
/// per-request Status JSON while every other connection keeps being
/// served. Plan runs from concurrent connections multiplex over the one
/// process-wide ThreadPool, whose top-level-region queue serializes
/// parallel regions without blocking connection I/O.
///
/// Admission control is cost-model driven: each cached plan carries its
/// allocation charge (primary + fallback stores, doubled for the ladder's
/// snapshots) debited against the server's byte budget, and its modeled
/// read traffic 8*S_R(size), which classifies heavy requests into a
/// one-at-a-time lane so a monster request cannot convoy the small ones.
/// A request that can never fit is rejected with E016 immediately; one
/// that waits past the wedge deadline gets E016 "serve-wedged".
///
/// Defenses at the framing layer: a line-length cap (oversized frame ->
/// E020, connection closed), an idle read deadline (a slow-loris partial
/// line is cut off), and MSG_NOSIGNAL everywhere (a client vanishing
/// mid-response is a closed connection, not a SIGPIPE). The serve: fault
/// site injects the server-side failure modes — drop before the
/// response, truncate mid-response, delay mid-response — for the fault
/// matrix in tests/serve.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SERVE_SERVER_H
#define LCDFG_SERVE_SERVER_H

#include "serve/Json.h"
#include "serve/PlanCache.h"
#include "support/Status.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lcdfg {
namespace serve {

/// Server configuration. Exactly one of UnixPath / TcpPort is used:
/// a non-empty UnixPath binds a unix socket; otherwise TcpPort binds
/// 127.0.0.1:TcpPort (0 = kernel-assigned, read back via port()).
struct ServerOptions {
  std::string UnixPath;
  int TcpPort = 0;

  std::size_t CacheCapacity = 64;  ///< Compiled plans kept (LRU).
  int MaxClients = 32;             ///< Concurrent connections admitted.
  std::size_t MaxLineBytes = 1 << 20; ///< Request-frame cap (E020 above).
  int IdleTimeoutMs = 10000;       ///< Read deadline per frame.
  std::int64_t MaxSize = 512;      ///< Cap on the "size" knob.

  // Admission control.
  std::int64_t BudgetBytes = 0;    ///< Live request-bytes cap (0 = off).
  int MaxConcurrent = 0;           ///< Running requests cap (0 = 2x hw).
  std::int64_t HeavyBytes = 64 << 20; ///< 8*S_R(size) above this ->
                                      ///  heavy lane (one at a time).
  int WedgeTimeoutMs = 10000;      ///< Max admission wait before E016.

  /// Allow {"cmd":"shutdown"} to stop the server (tooling convenience;
  /// off means the command answers E020).
  bool AllowShutdown = true;
};

/// Monotonic counters, readable while serving. The invariant the soak
/// test holds the daemon to: Hits + Misses == Admitted (every admitted
/// compile+run request consulted the cache exactly once; commands and
/// protocol rejects never reach it).
struct ServerStats {
  std::int64_t Connections = 0;    ///< Accepted sockets, lifetime.
  std::int64_t Active = 0;         ///< Currently open connections.
  std::int64_t Requests = 0;       ///< Frames parsed into a request.
  std::int64_t Admitted = 0;       ///< Compile+run requests that reached
                                   ///  the cache.
  std::int64_t Hits = 0;           ///< From the plan cache.
  std::int64_t Misses = 0;
  std::int64_t Evictions = 0;
  std::int64_t Entries = 0;        ///< Plans currently cached.
  std::int64_t Errors = 0;         ///< Responses with "ok":false.
  std::int64_t ProtocolErrors = 0; ///< E020 frames (subset of Errors).
  std::int64_t Rejected = 0;       ///< Admission E016s (subset of Errors).
};

/// The daemon. start() binds and spawns the accept thread; stop() (or
/// destruction) drains connections and joins every thread. processLine()
/// is the transport-free core — unit tests drive it without sockets.
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and starts accepting. E015 on socket failures
  /// (address in use, path too long, ...).
  support::Status start();

  /// Stops accepting, wakes every connection, joins all threads. Safe to
  /// call twice (and from a connection thread via {"cmd":"shutdown"}).
  void stop();

  bool running() const { return Running.load(); }
  /// True once stop() or a shutdown command has been requested (the
  /// daemon main polls this alongside its signal flag).
  bool stopRequested() const { return Stopping.load(); }
  /// Bound TCP port (after start(); 0 for unix-socket servers).
  int port() const { return BoundPort; }
  const ServerOptions &options() const { return Opts; }

  ServerStats stats() const;

  /// Handles one request line and returns the response line (without the
  /// trailing newline). Never throws; malformed input yields an
  /// "ok":false E020 response. Sets \p Shutdown when the request asked
  /// the server to stop.
  std::string processLine(std::string_view Line, bool *Shutdown = nullptr);

  /// Blocks until stop() has been called (by a signal handler's stop(),
  /// a shutdown command, ...): the daemon main's park.
  void wait();

private:
  struct Conn {
    std::thread Th;
    std::atomic<bool> Done{false};
  };

  void acceptLoop();
  void serveConnection(int Fd);
  void reapConnections(bool Final);
  /// Writes \p Line + '\n' honoring an armed serve: fault. Returns false
  /// when the connection should be considered gone.
  bool writeResponse(int Fd, const std::string &Line);

  std::string handleCommand(const JsonValue &Req, bool *Shutdown);
  std::string handleRun(const JsonValue &Req);
  support::Status decodeSpec(const JsonValue &Req, RequestSpec &Spec) const;

  /// Admission: blocks until the request's bytes fit the budget and a
  /// concurrency slot (plus the heavy lane when Heavy) frees up.
  support::Status admit(std::int64_t Bytes, bool Heavy, double *WaitSeconds);
  void release(std::int64_t Bytes, bool Heavy);

  ServerOptions Opts;
  PlanCache Cache;

  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  int BoundPort = 0;
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  std::mutex ConnMu;
  std::vector<std::unique_ptr<Conn>> Conns;

  std::mutex StopMu;
  std::condition_variable StopCv;
  std::once_flag StopOnce;

  // Admission state.
  std::mutex AdmitMu;
  std::condition_variable AdmitCv;
  std::int64_t LiveBytes = 0;
  int RunningReqs = 0;
  int HeavyReqs = 0;

  // Counters (relaxed: read for reporting only).
  std::atomic<std::int64_t> CConnections{0}, CActive{0}, CRequests{0},
      CAdmitted{0}, CErrors{0}, CProtocolErrors{0}, CRejected{0};
};

/// A blocking line-protocol client for tools and tests. Maps transport
/// failures into the shard vocabulary: EOF/reset -> E018-peer-lost, a
/// passed deadline -> E019-exchange-timeout, an oversized or unparseable
/// response -> E020-protocol.
class Client {
public:
  Client() = default;
  Client(Client &&O) noexcept;
  Client &operator=(Client &&O) noexcept;
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  ~Client();

  static support::Expected<Client> connectUnix(const std::string &Path,
                                               int TimeoutMs = 5000);
  static support::Expected<Client> connectTcp(const std::string &Host,
                                              int Port, int TimeoutMs = 5000);

  bool valid() const { return Fd >= 0; }

  /// Sends \p Line plus the terminating newline.
  support::Status sendLine(std::string_view Line);
  /// Sends raw bytes with no terminator (for half-frame drills).
  support::Status sendRaw(std::string_view Bytes);

  /// Receives one newline-terminated line (terminator stripped).
  support::Expected<std::string> recvLine(int TimeoutMs = 10000,
                                          std::size_t MaxBytes = 8 << 20);

  /// sendLine + recvLine + parseJson in one step.
  support::Expected<JsonValue> request(std::string_view Line,
                                       int TimeoutMs = 10000);

  /// Closes abruptly (the mid-request disconnect drill).
  void closeNow();

private:
  int Fd = -1;
  std::string Buf; ///< Bytes read past the last returned line.
};

} // namespace serve
} // namespace lcdfg

#endif // LCDFG_SERVE_SERVER_H
