//===- serve/Server.cpp ---------------------------------------------------===//

#include "serve/Server.h"

#include "exec/FaultInjector.h"
#include "exec/Recovery.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lcdfg;
using namespace lcdfg::serve;
using support::ErrorCode;
using support::Status;

namespace {

constexpr int PollSliceMs = 200;

int envInt(const char *Name, int Def) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Def;
  char *End = nullptr;
  long N = std::strtol(V, &End, 10);
  if (End == V || *End)
    return Def;
  return static_cast<int>(N);
}

/// send() everything or report E018 (the peer is gone).
Status sendAll(int Fd, const char *Data, std::size_t Len) {
  std::size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, Data + Off, Len - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(ErrorCode::PeerLost,
                           std::string("send failed: ") + std::strerror(errno));
    }
    Off += static_cast<std::size_t>(N);
  }
  return Status::ok();
}

std::uint64_t fnv1a64(const unsigned char *Data, std::size_t Len,
                      std::uint64_t H) {
  for (std::size_t I = 0; I < Len; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

/// FNV-64 over the persistent spaces of \p Plan in space order — the
/// warm-vs-cold bit-identity witness.
std::string resultChecksum(const exec::ExecutionPlan &Plan,
                           const storage::ConcreteStorage &Store) {
  std::uint64_t H = 0xcbf29ce484222325ull;
  for (std::size_t S = 0; S < Plan.NumSpaces && S < Store.numSpaces(); ++S) {
    if (S < Plan.SpacePersistent.size() && !Plan.SpacePersistent[S])
      continue;
    const std::vector<double> &Buf = Store.space(S);
    H = fnv1a64(reinterpret_cast<const unsigned char *>(Buf.data()),
                Buf.size() * sizeof(double), H);
  }
  char Hex[19];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(H));
  return Hex;
}

std::string statusResponse(const Status &S, const std::string &IdField) {
  std::string Out = "{" + jsonField("ok", false) + ",";
  if (!IdField.empty())
    Out += IdField + ",";
  Out += "\"status\":" + S.toJson() + "}";
  return Out;
}

/// Pre-rendered "id":... echo fragment ("" when the request carried none).
std::string idFieldOf(const JsonValue &Req) {
  const JsonValue *Id = Req.find("id");
  if (!Id)
    return "";
  if (Id->isString())
    return jsonField("id", std::string_view(Id->Str));
  if (Id->isNumber())
    return jsonField("id", Id->asInt());
  return "";
}

} // namespace

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheCapacity) {
  if (Opts.MaxConcurrent <= 0) {
    unsigned HW = std::thread::hardware_concurrency();
    Opts.MaxConcurrent = static_cast<int>(HW ? 2 * HW : 8);
  }
}

Server::~Server() { stop(); }

Status Server::start() {
  if (Running.load())
    return Status::error(ErrorCode::Internal, "server already started");

  if (::pipe(WakePipe) != 0)
    return Status::error(ErrorCode::Internal,
                         std::string("pipe failed: ") + std::strerror(errno));

  if (!Opts.UnixPath.empty()) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Opts.UnixPath.size() >= sizeof(Addr.sun_path))
      return Status::error(ErrorCode::Internal,
                           "unix socket path too long: " + Opts.UnixPath);
    std::memcpy(Addr.sun_path, Opts.UnixPath.c_str(),
                Opts.UnixPath.size() + 1);
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (ListenFd < 0)
      return Status::error(ErrorCode::Internal,
                           std::string("socket failed: ") +
                               std::strerror(errno));
    ::unlink(Opts.UnixPath.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0)
      return Status::error(ErrorCode::Internal,
                           "bind " + Opts.UnixPath + " failed: " +
                               std::strerror(errno));
  } else {
    ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (ListenFd < 0)
      return Status::error(ErrorCode::Internal,
                           std::string("socket failed: ") +
                               std::strerror(errno));
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(static_cast<std::uint16_t>(Opts.TcpPort));
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0)
      return Status::error(ErrorCode::Internal,
                           "bind 127.0.0.1:" + std::to_string(Opts.TcpPort) +
                               " failed: " + std::strerror(errno));
    socklen_t Len = sizeof(Addr);
    if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) ==
        0)
      BoundPort = static_cast<int>(ntohs(Addr.sin_port));
  }

  if (::listen(ListenFd, 64) != 0)
    return Status::error(ErrorCode::Internal,
                         std::string("listen failed: ") +
                             std::strerror(errno));

  Running.store(true);
  Stopping.store(false);
  Acceptor = std::thread([this] { acceptLoop(); });
  return Status::ok();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> Lock(StopMu);
    Stopping.store(true);
  }
  StopCv.notify_all();
  std::call_once(StopOnce, [this] {
    if (WakePipe[1] >= 0) {
      char B = 1;
      (void)!::write(WakePipe[1], &B, 1);
    }
    if (Acceptor.joinable())
      Acceptor.join();
    reapConnections(true);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    if (!Opts.UnixPath.empty())
      ::unlink(Opts.UnixPath.c_str());
    for (int &Fd : WakePipe)
      if (Fd >= 0) {
        ::close(Fd);
        Fd = -1;
      }
    Running.store(false);
  });
}

void Server::wait() {
  std::unique_lock<std::mutex> Lock(StopMu);
  StopCv.wait(Lock, [this] { return Stopping.load() || !Running.load(); });
}

ServerStats Server::stats() const {
  ServerStats S;
  S.Connections = CConnections.load();
  S.Active = CActive.load();
  S.Requests = CRequests.load();
  S.Admitted = CAdmitted.load();
  CacheStats CS = Cache.stats();
  S.Hits = CS.Hits;
  S.Misses = CS.Misses;
  S.Evictions = CS.Evictions;
  S.Entries = CS.Entries;
  S.Errors = CErrors.load();
  S.ProtocolErrors = CProtocolErrors.load();
  S.Rejected = CRejected.load();
  return S;
}

void Server::reapConnections(bool Final) {
  std::lock_guard<std::mutex> Lock(ConnMu);
  auto It = Conns.begin();
  while (It != Conns.end()) {
    Conn &C = **It;
    if (Final || C.Done.load()) {
      if (C.Th.joinable())
        C.Th.join();
      It = Conns.erase(It);
    } else {
      ++It;
    }
  }
}

void Server::acceptLoop() {
  while (!Stopping.load()) {
    pollfd P[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int R = ::poll(P, 2, PollSliceMs);
    if (Stopping.load())
      break;
    if (R <= 0 || !(P[0].revents & POLLIN)) {
      reapConnections(false);
      continue;
    }
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    CConnections.fetch_add(1);
    reapConnections(false);

    if (CActive.load() >= Opts.MaxClients) {
      // Over the connection cap: answer with a structured rejection so
      // the client can back off, then close.
      std::string Resp = statusResponse(
          Status::error(ErrorCode::MemBudgetInfeasible,
                        "connection limit reached (" +
                            std::to_string(Opts.MaxClients) + " clients)")
              .withSubcode("serve-overload"),
          "");
      CErrors.fetch_add(1);
      CRejected.fetch_add(1);
      Resp += "\n";
      (void)sendAll(Fd, Resp.data(), Resp.size());
      ::close(Fd);
      continue;
    }

    CActive.fetch_add(1);
    auto C = std::make_unique<Conn>();
    Conn *CP = C.get();
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      Conns.push_back(std::move(C));
    }
    CP->Th = std::thread([this, Fd, CP] {
      serveConnection(Fd);
      CActive.fetch_sub(1);
      CP->Done.store(true);
    });
  }
}

void Server::serveConnection(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

  std::string Buf;
  using Clock = std::chrono::steady_clock;

  while (!Stopping.load()) {
    // Read one frame, slicing the poll so a stop() request is honored
    // promptly and a slow-loris partial line hits the idle deadline.
    Clock::time_point Deadline =
        Clock::now() + std::chrono::milliseconds(Opts.IdleTimeoutMs);
    std::string Line;
    bool HaveLine = false;
    while (!Stopping.load()) {
      std::size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        Line.assign(Buf, 0, NL);
        Buf.erase(0, NL + 1);
        HaveLine = true;
        break;
      }
      if (Buf.size() > Opts.MaxLineBytes) {
        // Oversized frame: respond E020 and drop the connection — the
        // rest of the frame is unframed garbage we must not reparse.
        CRequests.fetch_add(1);
        CErrors.fetch_add(1);
        CProtocolErrors.fetch_add(1);
        obs::Tracer::global().add(obs::Counter::ServeRequests, 1);
        obs::Tracer::global().add(obs::Counter::ServeErrors, 1);
        std::string Resp = statusResponse(
            Status::error(ErrorCode::Protocol,
                          "request frame exceeds " +
                              std::to_string(Opts.MaxLineBytes) + " bytes"),
            "");
        (void)writeResponse(Fd, Resp);
        ::close(Fd);
        return;
      }
      if (Clock::now() >= Deadline) {
        // Idle (or mid-frame stalled) connection: close it.
        ::close(Fd);
        return;
      }
      pollfd P = {Fd, POLLIN, 0};
      int R = ::poll(&P, 1, PollSliceMs);
      if (R < 0 && errno != EINTR) {
        ::close(Fd);
        return;
      }
      if (R <= 0 || !(P.revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N == 0 || (N < 0 && errno != EINTR)) {
        ::close(Fd); // EOF or reset: the client went away.
        return;
      }
      if (N > 0) {
        Buf.append(Chunk, static_cast<std::size_t>(N));
        Deadline =
            Clock::now() + std::chrono::milliseconds(Opts.IdleTimeoutMs);
      }
    }
    if (!HaveLine)
      break; // Stopping.
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue; // Tolerate blank keep-alive lines.

    bool Shutdown = false;
    std::string Resp = processLine(Line, &Shutdown);
    bool Alive = writeResponse(Fd, Resp);
    if (Shutdown) {
      {
        std::lock_guard<std::mutex> Lock(StopMu);
        Stopping.store(true);
      }
      StopCv.notify_all();
      if (WakePipe[1] >= 0) {
        char B = 1;
        (void)!::write(WakePipe[1], &B, 1);
      }
      break;
    }
    if (!Alive)
      break;
  }
  ::close(Fd);
}

bool Server::writeResponse(int Fd, const std::string &Line) {
  std::string Out = Line + "\n";
  switch (exec::FaultInjector::global().fire(exec::FaultSite::Serve)) {
  case exec::FaultKind::Drop:
    // Close before any response byte: the client observes EOF (E018).
    return false;
  case exec::FaultKind::Truncate: {
    // Half a response line, then gone: the client gets an unparseable
    // partial frame (E020 on its side).
    (void)sendAll(Fd, Out.data(), Out.size() / 2);
    return false;
  }
  case exec::FaultKind::Delay: {
    // Stall mid-write past the client's deadline (E019 for impatient
    // clients; absorbed when the stall is shorter than their budget).
    std::size_t Half = Out.size() / 2;
    if (!sendAll(Fd, Out.data(), Half))
      return false;
    int DelayMs = envInt("LCDFG_SERVE_DELAY_MS", 50);
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    return bool(sendAll(Fd, Out.data() + Half, Out.size() - Half));
  }
  default:
    return bool(sendAll(Fd, Out.data(), Out.size()));
  }
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

std::string Server::processLine(std::string_view Line, bool *Shutdown) {
  if (Shutdown)
    *Shutdown = false;
  CRequests.fetch_add(1);
  obs::Tracer::global().add(obs::Counter::ServeRequests, 1);

  support::Expected<JsonValue> Parsed = parseJson(Line);
  if (!Parsed) {
    CErrors.fetch_add(1);
    CProtocolErrors.fetch_add(1);
    obs::Tracer::global().add(obs::Counter::ServeErrors, 1);
    return statusResponse(Parsed.takeError(), "");
  }
  const JsonValue &Req = *Parsed;
  if (!Req.isObject()) {
    CErrors.fetch_add(1);
    CProtocolErrors.fetch_add(1);
    obs::Tracer::global().add(obs::Counter::ServeErrors, 1);
    return statusResponse(Status::error(ErrorCode::Protocol,
                                        "request must be a JSON object"),
                          idFieldOf(Req));
  }
  if (Req.find("cmd"))
    return handleCommand(Req, Shutdown);
  return handleRun(Req);
}

std::string Server::handleCommand(const JsonValue &Req, bool *Shutdown) {
  std::string IdField = idFieldOf(Req);
  const JsonValue *Cmd = Req.find("cmd");
  std::string Name = Cmd->asString();

  auto Reject = [&](std::string Why) {
    CErrors.fetch_add(1);
    CProtocolErrors.fetch_add(1);
    obs::Tracer::global().add(obs::Counter::ServeErrors, 1);
    return statusResponse(
        Status::error(ErrorCode::Protocol, std::move(Why)), IdField);
  };
  if (!Cmd->isString())
    return Reject("\"cmd\" must be a string");

  if (Name == "ping") {
    std::string Out = "{" + jsonField("ok", true) + ",";
    if (!IdField.empty())
      Out += IdField + ",";
    Out += jsonField("cmd", std::string_view("ping")) + "}";
    return Out;
  }

  if (Name == "stats") {
    ServerStats S = stats();
    std::string Out = "{" + jsonField("ok", true) + ",";
    if (!IdField.empty())
      Out += IdField + ",";
    Out += "\"stats\":{" + jsonField("connections", S.Connections) + "," +
           jsonField("active", S.Active) + "," +
           jsonField("requests", S.Requests) + "," +
           jsonField("admitted", S.Admitted) + "," +
           jsonField("hits", S.Hits) + "," + jsonField("misses", S.Misses) +
           "," + jsonField("evictions", S.Evictions) + "," +
           jsonField("entries", S.Entries) + "," +
           jsonField("capacity",
                     static_cast<std::int64_t>(Cache.capacity())) +
           "," + jsonField("errors", S.Errors) + "," +
           jsonField("protocol_errors", S.ProtocolErrors) + "," +
           jsonField("rejected", S.Rejected) + "}}";
    return Out;
  }

  if (Name == "shutdown") {
    if (!Opts.AllowShutdown)
      return Reject("shutdown is disabled on this server");
    if (Shutdown)
      *Shutdown = true;
    std::string Out = "{" + jsonField("ok", true) + ",";
    if (!IdField.empty())
      Out += IdField + ",";
    Out += jsonField("cmd", std::string_view("shutdown")) + "}";
    return Out;
  }

  return Reject("unknown command: " + Name);
}

Status Server::decodeSpec(const JsonValue &Req, RequestSpec &Spec) const {
  auto Bad = [](std::string Why) {
    return Status::error(ErrorCode::Protocol, std::move(Why));
  };

  const JsonValue *Chain = Req.find("chain");
  if (!Chain || !Chain->isString())
    return Bad("missing or non-string \"chain\"");
  Spec.Chain = Chain->Str;

  if (const JsonValue *V = Req.find("script")) {
    if (!V->isString())
      return Bad("\"script\" must be a string");
    Spec.Script = V->Str;
  }
  if (const JsonValue *V = Req.find("size")) {
    if (!V->isNumber())
      return Bad("\"size\" must be a number");
    Spec.Size = V->asInt();
    if (Spec.Size < 1 || Spec.Size > Opts.MaxSize)
      return Bad("\"size\" out of range [1, " + std::to_string(Opts.MaxSize) +
                 "]");
  }
  if (const JsonValue *V = Req.find("widen")) {
    if (!V->isNumber())
      return Bad("\"widen\" must be a number");
    std::int64_t W = V->asInt();
    if (W < 1 || W > 64)
      return Bad("\"widen\" out of range [1, 64]");
    Spec.Widen = static_cast<unsigned>(W);
  }
  if (const JsonValue *V = Req.find("threads")) {
    if (!V->isNumber())
      return Bad("\"threads\" must be a number");
    std::int64_t T = V->asInt();
    if (T < 1 || T > 256)
      return Bad("\"threads\" out of range [1, 256]");
    Spec.Threads = static_cast<int>(T);
  }
  if (const JsonValue *V = Req.find("scheduler")) {
    if (!V->isString())
      return Bad("\"scheduler\" must be a string");
    if (V->Str == "list")
      Spec.Scheduler = exec::SchedulerKind::List;
    else if (V->Str == "wavefront")
      Spec.Scheduler = exec::SchedulerKind::Wavefront;
    else
      return Bad("unknown scheduler: " + V->Str);
  }
  if (const JsonValue *V = Req.find("kernels")) {
    if (!V->isString())
      return Bad("\"kernels\" must be a string");
    if (V->Str == "interp")
      Spec.Kernels = exec::KernelMode::Interp;
    else if (V->Str == "jit")
      Spec.Kernels = exec::KernelMode::Jit;
    else
      return Bad("unknown kernel mode: " + V->Str);
  }
  if (const JsonValue *V = Req.find("batched")) {
    if (!V->isBool())
      return Bad("\"batched\" must be a boolean");
    Spec.Batched = V->B;
  }
  if (const JsonValue *V = Req.find("harden")) {
    if (!V->isBool())
      return Bad("\"harden\" must be a boolean");
    Spec.Harden = V->B;
  }
  if (const JsonValue *V = Req.find("mem_budget")) {
    if (!V->isNumber())
      return Bad("\"mem_budget\" must be a number");
    Spec.MemBudget = V->asInt();
    if (Spec.MemBudget < 0)
      return Bad("\"mem_budget\" must be >= 0");
  }
  if (const JsonValue *V = Req.find("cache")) {
    if (!V->isBool())
      return Bad("\"cache\" must be a boolean");
    Spec.Bypass = !V->B;
  }
  if (const JsonValue *V = Req.find("checksum")) {
    if (!V->isBool())
      return Bad("\"checksum\" must be a boolean");
    Spec.Checksum = V->B;
  }
  return Status::ok();
}

Status Server::admit(std::int64_t Bytes, bool Heavy, double *WaitSeconds) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();

  if (Opts.BudgetBytes > 0 && Bytes > Opts.BudgetBytes)
    return Status::error(ErrorCode::MemBudgetInfeasible,
                         "request needs " + std::to_string(Bytes) +
                             " bytes against a " +
                             std::to_string(Opts.BudgetBytes) +
                             "-byte server budget")
        .withSubcode("serve-admission");

  std::unique_lock<std::mutex> Lock(AdmitMu);
  auto Fits = [&] {
    return RunningReqs < Opts.MaxConcurrent &&
           (Opts.BudgetBytes <= 0 || LiveBytes + Bytes <= Opts.BudgetBytes) &&
           (!Heavy || HeavyReqs == 0);
  };
  if (!AdmitCv.wait_for(Lock, std::chrono::milliseconds(Opts.WedgeTimeoutMs),
                        Fits))
    return Status::error(ErrorCode::MemBudgetInfeasible,
                         "admission wedged for " +
                             std::to_string(Opts.WedgeTimeoutMs) +
                             " ms waiting on " + std::to_string(Bytes) +
                             " bytes")
        .withSubcode("serve-wedged");
  LiveBytes += Bytes;
  ++RunningReqs;
  if (Heavy)
    ++HeavyReqs;
  if (WaitSeconds)
    *WaitSeconds = std::chrono::duration<double>(Clock::now() - T0).count();
  return Status::ok();
}

void Server::release(std::int64_t Bytes, bool Heavy) {
  {
    std::lock_guard<std::mutex> Lock(AdmitMu);
    LiveBytes -= Bytes;
    --RunningReqs;
    if (Heavy)
      --HeavyReqs;
  }
  AdmitCv.notify_all();
}

std::string Server::handleRun(const JsonValue &Req) {
  std::string IdField = idFieldOf(Req);
  auto Fail = [&](const Status &S, bool IsProtocol) {
    CErrors.fetch_add(1);
    if (IsProtocol)
      CProtocolErrors.fetch_add(1);
    obs::Tracer::global().add(obs::Counter::ServeErrors, 1);
    return statusResponse(S, IdField);
  };

  RequestSpec Spec;
  if (Status S = decodeSpec(Req, Spec); !S)
    return Fail(S, true);

  // Consult the cache exactly once per admitted request: the soak test's
  // hits + misses == admitted invariant hangs off this ordering.
  CAdmitted.fetch_add(1);
  bool Hit = false;
  support::Expected<CompiledPlanPtr> Compiled = Cache.get(Spec, &Hit);
  if (!Compiled)
    return Fail(Compiled.takeError(), false);
  CompiledPlanPtr CP = *Compiled;

  if (!CP->VerifyClean) {
    // The one-time strict gate flagged this configuration; rerunning the
    // verifier per request could only repeat the verdict.
    std::string Detail = CP->VerifyDetail;
    if (Detail.size() > 400)
      Detail.resize(400);
    return Fail(Status::error(ErrorCode::VerifierRejected,
                              "static verification rejected the plan: " +
                                  Detail),
                false);
  }

  bool Heavy = CP->TrafficBytes > Opts.HeavyBytes;
  double WaitSeconds = 0.0;
  if (Status S = admit(CP->AdmitBytes, Heavy, &WaitSeconds); !S) {
    CRejected.fetch_add(1);
    return Fail(S, false);
  }

  exec::RunReport RR;
  std::string Fnv;
  {
    storage::ConcreteStorage Store(CP->SPlan, CP->Env);
    storage::ConcreteStorage FbStore(CP->FbSPlan, CP->Env);
    CP->seedStore(Store);
    CP->seedStore(FbStore);

    exec::RecoverOptions ROpts;
    ROpts.Run.Threads = Spec.Threads;
    ROpts.Run.Batched = Spec.Batched;
    ROpts.Run.Harden = Spec.Harden;
    ROpts.Run.Scheduler = Spec.Scheduler;
    ROpts.Run.MemBudget = Spec.MemBudget;
    ROpts.Run.Kernels = Spec.Kernels;
    // Strict verification already ran once at compile time; per-request
    // runs skip the gate (that is most of the warm-path speedup).
    ROpts.StrictVerify = false;
    ROpts.Fallback = &CP->FbPlan;
    ROpts.FallbackStore = &FbStore;

    RR = exec::runWithRecovery(CP->Plan, CP->Kernels, Store, ROpts);

    if (Spec.Checksum && RR.Completed)
      Fnv = RR.FinalRung == "fallback" ? resultChecksum(CP->FbPlan, FbStore)
                                       : resultChecksum(CP->Plan, Store);
  }
  release(CP->AdmitBytes, Heavy);

  std::int64_t Points = 0, RawReads = 0, Tasks = 0;
  for (const exec::PlanStats::WorkerStat &W : RR.Stats.Workers) {
    Points += W.Points;
    RawReads += W.RawReads;
    Tasks += W.Tasks;
  }

  std::string Out = "{" + jsonField("ok", RR.Completed) + ",";
  if (!IdField.empty())
    Out += IdField + ",";
  Out += jsonField("cache", std::string_view(Hit ? "hit" : "miss")) + ",";
  if (!RR.Completed) {
    CErrors.fetch_add(1);
    obs::Tracer::global().add(obs::Counter::ServeErrors, 1);
    Out += "\"status\":" + RR.Error.toJson() + ",";
  }
  Out += "\"report\":" + RR.toJson() + ",";
  Out += "\"metrics\":{" + jsonField("seconds", RR.Stats.Seconds) + "," +
         jsonField("compile_seconds", Hit ? 0.0 : CP->CompileSeconds) + "," +
         jsonField("wait_seconds", WaitSeconds) + "," +
         jsonField("points", Points) + "," +
         jsonField("raw_reads", RawReads) + "," + jsonField("tasks", Tasks) +
         "," +
         jsonField("threads_used",
                   static_cast<std::int64_t>(RR.Stats.ThreadsUsed)) +
         "},";
  Out += "\"cost\":{" +
         jsonField("sr", std::string_view(CP->Cost.TotalRead.toString())) +
         "," +
         jsonField("sc", static_cast<std::int64_t>(CP->Cost.MaxStreams)) +
         "," + jsonField("store_bytes", CP->StoreBytes) + "," +
         jsonField("admit_bytes", CP->AdmitBytes) + "," +
         jsonField("traffic_bytes", CP->TrafficBytes) + "," +
         jsonField("high_water", CP->SerialHighWater) + "," +
         jsonField("heavy", Heavy) + "}";
  if (!Fnv.empty())
    Out += "," + jsonField("result_fnv", std::string_view(Fnv));
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

Client::Client(Client &&O) noexcept : Fd(O.Fd), Buf(std::move(O.Buf)) {
  O.Fd = -1;
}

Client &Client::operator=(Client &&O) noexcept {
  if (this != &O) {
    closeNow();
    Fd = O.Fd;
    Buf = std::move(O.Buf);
    O.Fd = -1;
  }
  return *this;
}

Client::~Client() { closeNow(); }

void Client::closeNow() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
}

support::Expected<Client> Client::connectUnix(const std::string &Path,
                                              int TimeoutMs) {
  (void)TimeoutMs; // Unix connects are local and immediate.
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status::error(ErrorCode::Internal,
                         "unix socket path too long: " + Path);
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return Status::error(ErrorCode::Internal,
                         std::string("socket failed: ") +
                             std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status S = Status::error(ErrorCode::PeerLost,
                             "connect " + Path + " failed: " +
                                 std::strerror(errno));
    ::close(Fd);
    return S;
  }
  Client C;
  C.Fd = Fd;
  return support::Expected<Client>(std::move(C));
}

support::Expected<Client> Client::connectTcp(const std::string &Host, int Port,
                                             int TimeoutMs) {
  (void)TimeoutMs; // Loopback connects are immediate.
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return Status::error(ErrorCode::Internal, "bad address: " + Host);
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return Status::error(ErrorCode::Internal,
                         std::string("socket failed: ") +
                             std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status S = Status::error(ErrorCode::PeerLost,
                             "connect " + Host + ":" + std::to_string(Port) +
                                 " failed: " + std::strerror(errno));
    ::close(Fd);
    return S;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  Client C;
  C.Fd = Fd;
  return support::Expected<Client>(std::move(C));
}

Status Client::sendLine(std::string_view Line) {
  if (Fd < 0)
    return Status::error(ErrorCode::PeerLost, "client not connected");
  std::string Out(Line);
  Out += "\n";
  return sendAll(Fd, Out.data(), Out.size());
}

Status Client::sendRaw(std::string_view Bytes) {
  if (Fd < 0)
    return Status::error(ErrorCode::PeerLost, "client not connected");
  return sendAll(Fd, Bytes.data(), Bytes.size());
}

support::Expected<std::string> Client::recvLine(int TimeoutMs,
                                                std::size_t MaxBytes) {
  if (Fd < 0)
    return Status::error(ErrorCode::PeerLost, "client not connected");
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (true) {
    std::size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      return Line;
    }
    if (Buf.size() > MaxBytes)
      return Status::error(ErrorCode::Protocol,
                           "response frame exceeds " +
                               std::to_string(MaxBytes) + " bytes");
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    Deadline - Clock::now())
                    .count();
    if (Left <= 0)
      return Status::error(ErrorCode::ExchangeTimeout,
                           "no response line within " +
                               std::to_string(TimeoutMs) + " ms")
          .withSubcode("timeout");
    pollfd P = {Fd, POLLIN, 0};
    int R = ::poll(&P, 1, static_cast<int>(std::min<long long>(Left, 200)));
    if (R < 0 && errno != EINTR)
      return Status::error(ErrorCode::PeerLost,
                           std::string("poll failed: ") +
                               std::strerror(errno));
    if (R <= 0 || !(P.revents & (POLLIN | POLLHUP | POLLERR)))
      continue;
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N == 0) {
      // EOF mid-frame is a truncated response (E020); EOF with nothing
      // buffered means the peer dropped us before responding (E018).
      if (!Buf.empty())
        return Status::error(ErrorCode::Protocol,
                             "connection closed mid-frame after " +
                                 std::to_string(Buf.size()) + " bytes");
      return Status::error(ErrorCode::PeerLost,
                           "connection closed before a full response line");
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(ErrorCode::PeerLost,
                           std::string("recv failed: ") +
                               std::strerror(errno));
    }
    Buf.append(Chunk, static_cast<std::size_t>(N));
  }
}

support::Expected<JsonValue> Client::request(std::string_view Line,
                                             int TimeoutMs) {
  if (Status S = sendLine(Line); !S)
    return S;
  support::Expected<std::string> Resp = recvLine(TimeoutMs);
  if (!Resp)
    return Resp.takeError();
  return parseJson(*Resp);
}
