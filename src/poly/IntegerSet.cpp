//===- poly/IntegerSet.cpp ------------------------------------------------===//

#include "poly/IntegerSet.h"

#include <sstream>

using namespace lcdfg;
using namespace lcdfg::poly;

bool IntegerSet::isEmpty() const {
  for (const BoxSet &B : Boxes)
    if (!B.isProvablyEmpty())
      return false;
  return true;
}

IntegerSet IntegerSet::unionWith(const IntegerSet &RHS) const {
  IntegerSet Result = *this;
  for (const BoxSet &B : RHS.Boxes)
    Result.Boxes.push_back(B);
  return Result;
}

IntegerSet IntegerSet::intersect(const BoxSet &Box) const {
  IntegerSet Result;
  for (const BoxSet &B : Boxes) {
    BoxSet I = B.intersect(Box);
    if (!I.isProvablyEmpty())
      Result.Boxes.push_back(std::move(I));
  }
  return Result;
}

Polynomial IntegerSet::cardinality(std::string_view Symbol) const {
  Polynomial P;
  for (const BoxSet &B : Boxes)
    P += B.cardinality(Symbol);
  return P;
}

std::int64_t IntegerSet::numPoints(
    const std::map<std::string, std::int64_t, std::less<>> &Env) const {
  std::int64_t Count = 0;
  for (const BoxSet &B : Boxes)
    Count += B.numPoints(Env);
  return Count;
}

bool IntegerSet::contains(
    const std::vector<std::int64_t> &Point,
    const std::map<std::string, std::int64_t, std::less<>> &Env) const {
  for (const BoxSet &B : Boxes)
    if (B.contains(Point, Env))
      return true;
  return false;
}

std::string IntegerSet::toString() const {
  std::ostringstream OS;
  for (unsigned I = 0; I < Boxes.size(); ++I) {
    if (I)
      OS << " u ";
    OS << Boxes[I].toString();
  }
  if (Boxes.empty())
    OS << "{ }";
  return OS.str();
}
