//===- poly/BoxSet.h - Rectangular integer sets -----------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BoxSet is a rectangular integer set: for each named dimension an
/// inclusive lower and upper bound, both affine in the symbolic size
/// parameters (never in other iterators). Loop-chain stencil domains and
/// every set produced by the paper's graph operations (shift, expand, fuse,
/// tile) stay within this class of sets, which is why it can stand in for
/// general ISL sets here.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_POLY_BOXSET_H
#define LCDFG_POLY_BOXSET_H

#include "poly/AffineExpr.h"
#include "support/Polynomial.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace lcdfg {
namespace poly {

/// One dimension of a box: name plus inclusive affine bounds.
struct Dim {
  std::string Name;
  AffineExpr Lower;
  AffineExpr Upper; // inclusive

  bool operator==(const Dim &RHS) const = default;
};

/// A rectangular integer set over named dimensions.
class BoxSet {
public:
  BoxSet() = default;
  explicit BoxSet(std::vector<Dim> Dims) : Dims(std::move(Dims)) {}

  /// Convenience: builds { name in [lower, upper] } per entry.
  static BoxSet
  fromBounds(const std::vector<std::tuple<std::string, AffineExpr, AffineExpr>>
                 &Bounds);

  unsigned rank() const { return static_cast<unsigned>(Dims.size()); }
  const std::vector<Dim> &dims() const { return Dims; }
  const Dim &dim(unsigned I) const { return Dims[I]; }
  Dim &dim(unsigned I) { return Dims[I]; }

  /// Index of the dimension named \p Name, or nullopt.
  std::optional<unsigned> dimIndex(std::string_view Name) const;

  /// Returns a copy translated by \p Offsets (one per dimension).
  BoxSet translated(const std::vector<std::int64_t> &Offsets) const;

  /// Returns a copy with dimension \p I expanded by \p Lo below and \p Hi
  /// above (both non-negative widths).
  BoxSet expanded(unsigned I, std::int64_t Lo, std::int64_t Hi) const;

  /// Intersects two boxes with identical dimension names. Bound comparisons
  /// must be decidable under "all parameters >= 1"; aborts otherwise.
  BoxSet intersect(const BoxSet &RHS) const;

  /// Smallest box containing both (bounding box / convex-ish hull).
  BoxSet hull(const BoxSet &RHS) const;

  /// True when some dimension is provably empty (upper < lower for all
  /// parameter values >= 1).
  bool isProvablyEmpty() const;

  /// Number of points as a polynomial in \p Symbol. Every bound must be
  /// affine in \p Symbol only; substitute other parameters first.
  Polynomial cardinality(std::string_view Symbol = "N") const;

  /// Number of points for the concrete parameter binding \p Env. Empty
  /// dimensions clamp to zero.
  std::int64_t
  numPoints(const std::map<std::string, std::int64_t, std::less<>> &Env) const;

  /// True when \p Point (one coordinate per dim, in order) lies inside the
  /// set under parameter binding \p Env.
  bool
  contains(const std::vector<std::int64_t> &Point,
           const std::map<std::string, std::int64_t, std::less<>> &Env) const;

  /// Calls \p Fn for every point in lexicographic order (first dim
  /// outermost). Intended for tests and the interpreter at small sizes.
  void forEachPoint(
      const std::map<std::string, std::int64_t, std::less<>> &Env,
      const std::function<void(const std::vector<std::int64_t> &)> &Fn) const;

  /// Replaces parameter \p Name with \p Replacement in every bound.
  BoxSet substituted(std::string_view Name, const AffineExpr &Replacement)
      const;

  bool operator==(const BoxSet &RHS) const = default;

  /// Renders e.g. "{ [x, y] : 0 <= x <= N, 0 <= y <= N-1 }".
  std::string toString() const;

private:
  std::vector<Dim> Dims;
};

/// Returns the symbolically larger of two affine bounds under params >= 1;
/// aborts when the comparison is ambiguous.
AffineExpr affineMax(const AffineExpr &A, const AffineExpr &B);

/// Returns the symbolically smaller of two affine bounds under params >= 1;
/// aborts when the comparison is ambiguous.
AffineExpr affineMin(const AffineExpr &A, const AffineExpr &B);

} // namespace poly
} // namespace lcdfg

#endif // LCDFG_POLY_BOXSET_H
