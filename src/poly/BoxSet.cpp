//===- poly/BoxSet.cpp ----------------------------------------------------===//

#include "poly/BoxSet.h"

#include "support/Errors.h"
#include "support/Status.h"

#include <cassert>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::poly;

AffineExpr poly::affineMax(const AffineExpr &A, const AffineExpr &B) {
  AffineExpr Diff = A - B;
  switch (Diff.signForParamsGE1()) {
  case AffineExpr::SignKind::Zero:
  case AffineExpr::SignKind::NonNegative:
    return A;
  case AffineExpr::SignKind::NonPositive:
    return B;
  case AffineExpr::SignKind::Unknown:
    // Reachable from hostile chain sources (multi-parameter or shifted
    // bounds); must surface as a diagnostic, not kill the process.
    support::raise(support::ErrorCode::InvalidChain,
                   "affineMax: ambiguous bound comparison between " +
                       A.toString() + " and " + B.toString());
  }
  LCDFG_UNREACHABLE("covered switch");
}

AffineExpr poly::affineMin(const AffineExpr &A, const AffineExpr &B) {
  AffineExpr Diff = A - B;
  switch (Diff.signForParamsGE1()) {
  case AffineExpr::SignKind::Zero:
  case AffineExpr::SignKind::NonPositive:
    return A;
  case AffineExpr::SignKind::NonNegative:
    return B;
  case AffineExpr::SignKind::Unknown:
    support::raise(support::ErrorCode::InvalidChain,
                   "affineMin: ambiguous bound comparison between " +
                       A.toString() + " and " + B.toString());
  }
  LCDFG_UNREACHABLE("covered switch");
}

BoxSet BoxSet::fromBounds(
    const std::vector<std::tuple<std::string, AffineExpr, AffineExpr>>
        &Bounds) {
  std::vector<Dim> Dims;
  Dims.reserve(Bounds.size());
  for (const auto &[Name, Lo, Hi] : Bounds)
    Dims.push_back(Dim{Name, Lo, Hi});
  return BoxSet(std::move(Dims));
}

std::optional<unsigned> BoxSet::dimIndex(std::string_view Name) const {
  for (unsigned I = 0; I < Dims.size(); ++I)
    if (Dims[I].Name == Name)
      return I;
  return std::nullopt;
}

BoxSet BoxSet::translated(const std::vector<std::int64_t> &Offsets) const {
  assert(Offsets.size() == Dims.size() && "offset arity mismatch");
  BoxSet Result = *this;
  for (unsigned I = 0; I < Dims.size(); ++I) {
    Result.Dims[I].Lower += AffineExpr(Offsets[I]);
    Result.Dims[I].Upper += AffineExpr(Offsets[I]);
  }
  return Result;
}

BoxSet BoxSet::expanded(unsigned I, std::int64_t Lo, std::int64_t Hi) const {
  assert(I < Dims.size() && "dimension out of range");
  assert(Lo >= 0 && Hi >= 0 && "expansion widths must be non-negative");
  BoxSet Result = *this;
  Result.Dims[I].Lower -= AffineExpr(Lo);
  Result.Dims[I].Upper += AffineExpr(Hi);
  return Result;
}

BoxSet BoxSet::intersect(const BoxSet &RHS) const {
  assert(Dims.size() == RHS.Dims.size() && "rank mismatch in intersect");
  BoxSet Result = *this;
  for (unsigned I = 0; I < Dims.size(); ++I) {
    assert(Dims[I].Name == RHS.Dims[I].Name && "dim name mismatch");
    Result.Dims[I].Lower = affineMax(Dims[I].Lower, RHS.Dims[I].Lower);
    Result.Dims[I].Upper = affineMin(Dims[I].Upper, RHS.Dims[I].Upper);
  }
  return Result;
}

BoxSet BoxSet::hull(const BoxSet &RHS) const {
  assert(Dims.size() == RHS.Dims.size() && "rank mismatch in hull");
  BoxSet Result = *this;
  for (unsigned I = 0; I < Dims.size(); ++I) {
    assert(Dims[I].Name == RHS.Dims[I].Name && "dim name mismatch");
    Result.Dims[I].Lower = affineMin(Dims[I].Lower, RHS.Dims[I].Lower);
    Result.Dims[I].Upper = affineMax(Dims[I].Upper, RHS.Dims[I].Upper);
  }
  return Result;
}

bool BoxSet::isProvablyEmpty() const {
  for (const Dim &D : Dims) {
    // Empty when Upper - Lower < 0 always, i.e. Upper - Lower + 1 <= 0.
    AffineExpr Len = D.Upper - D.Lower + AffineExpr(1);
    if (Len.signForParamsGE1() == AffineExpr::SignKind::NonPositive &&
        !(Len.isConstant() && Len.constant() == 0))
      return true;
    if (Len.isConstant() && Len.constant() <= 0)
      return true;
  }
  return false;
}

Polynomial BoxSet::cardinality(std::string_view Symbol) const {
  Polynomial P(1);
  for (const Dim &D : Dims) {
    AffineExpr Len = D.Upper - D.Lower + AffineExpr(1);
    P *= Len.toPolynomial(Symbol);
  }
  return P;
}

std::int64_t BoxSet::numPoints(
    const std::map<std::string, std::int64_t, std::less<>> &Env) const {
  std::int64_t Count = 1;
  for (const Dim &D : Dims) {
    std::int64_t Len = D.Upper.evaluate(Env) - D.Lower.evaluate(Env) + 1;
    if (Len <= 0)
      return 0;
    Count *= Len;
  }
  return Count;
}

bool BoxSet::contains(
    const std::vector<std::int64_t> &Point,
    const std::map<std::string, std::int64_t, std::less<>> &Env) const {
  assert(Point.size() == Dims.size() && "point arity mismatch");
  for (unsigned I = 0; I < Dims.size(); ++I) {
    if (Point[I] < Dims[I].Lower.evaluate(Env) ||
        Point[I] > Dims[I].Upper.evaluate(Env))
      return false;
  }
  return true;
}

void BoxSet::forEachPoint(
    const std::map<std::string, std::int64_t, std::less<>> &Env,
    const std::function<void(const std::vector<std::int64_t> &)> &Fn) const {
  // A zero-dimensional box holds exactly one (empty) point.
  if (Dims.empty()) {
    Fn({});
    return;
  }
  std::vector<std::int64_t> Lo(Dims.size()), Hi(Dims.size());
  for (unsigned I = 0; I < Dims.size(); ++I) {
    Lo[I] = Dims[I].Lower.evaluate(Env);
    Hi[I] = Dims[I].Upper.evaluate(Env);
    if (Lo[I] > Hi[I])
      return;
  }
  std::vector<std::int64_t> Point = Lo;
  while (true) {
    Fn(Point);
    // Lexicographic increment, last dimension fastest.
    unsigned I = static_cast<unsigned>(Dims.size());
    while (I-- > 0) {
      if (Point[I] < Hi[I]) {
        ++Point[I];
        break;
      }
      Point[I] = Lo[I];
      if (I == 0)
        return;
    }
  }
}

BoxSet BoxSet::substituted(std::string_view Name,
                           const AffineExpr &Replacement) const {
  BoxSet Result = *this;
  for (Dim &D : Result.Dims) {
    D.Lower = D.Lower.substitute(Name, Replacement);
    D.Upper = D.Upper.substitute(Name, Replacement);
  }
  return Result;
}

std::string BoxSet::toString() const {
  std::ostringstream OS;
  OS << "{ [";
  for (unsigned I = 0; I < Dims.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Dims[I].Name;
  }
  OS << "] : ";
  for (unsigned I = 0; I < Dims.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Dims[I].Lower.toString() << " <= " << Dims[I].Name
       << " <= " << Dims[I].Upper.toString();
  }
  OS << " }";
  return OS.str();
}
