//===- poly/AffineExpr.h - Affine expressions over named vars ---*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine (linear + constant) integer expressions over named variables.
/// Variables may be loop iterators (x, y, z) or symbolic size parameters
/// (N, X, Y, Z). These are the building blocks of the integer-set substrate
/// that stands in for ISL/ISCC in this reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_POLY_AFFINEEXPR_H
#define LCDFG_POLY_AFFINEEXPR_H

#include "support/Polynomial.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace lcdfg {
namespace poly {

/// An affine expression: sum of integer-coefficient named variables plus an
/// integer constant, e.g. `x + 1`, `N - 2`, `2N + 3`.
class AffineExpr {
public:
  /// Constructs the constant expression \p Constant.
  /*implicit*/ AffineExpr(std::int64_t Constant = 0) : Constant(Constant) {}

  /// Returns the expression consisting of the single variable \p Name.
  static AffineExpr var(std::string_view Name);

  /// Parses expressions of the form `a*v + b*w + c` with optional `*`,
  /// e.g. "x+1", "N-2", "2N+3", "0". Returns nullopt on malformed input.
  static std::optional<AffineExpr> parse(std::string_view Text);

  std::int64_t constant() const { return Constant; }
  std::int64_t coeff(std::string_view Name) const;
  const std::map<std::string, std::int64_t, std::less<>> &coeffs() const {
    return Coeffs;
  }

  bool isConstant() const { return Coeffs.empty(); }

  /// True when the expression references the variable \p Name.
  bool references(std::string_view Name) const { return coeff(Name) != 0; }

  AffineExpr operator+(const AffineExpr &RHS) const;
  AffineExpr operator-(const AffineExpr &RHS) const;
  AffineExpr operator-() const;
  AffineExpr operator*(std::int64_t Scale) const;
  AffineExpr &operator+=(const AffineExpr &RHS);
  AffineExpr &operator-=(const AffineExpr &RHS);

  bool operator==(const AffineExpr &RHS) const {
    return Constant == RHS.Constant && Coeffs == RHS.Coeffs;
  }
  bool operator!=(const AffineExpr &RHS) const { return !(*this == RHS); }

  /// Replaces variable \p Name with \p Replacement.
  AffineExpr substitute(std::string_view Name,
                        const AffineExpr &Replacement) const;

  /// Evaluates with every variable bound by \p Lookup; asserts all variables
  /// are bound.
  std::int64_t
  evaluate(const std::map<std::string, std::int64_t, std::less<>> &Env) const;

  /// Converts to a polynomial in the single symbol \p Symbol. All variables
  /// other than \p Symbol must be absent (call substitute first).
  Polynomial toPolynomial(std::string_view Symbol = "N") const;

  /// Sign determination for all integer assignments with every variable
  /// >= 1 (size parameters are at least 1 in this domain).
  enum class SignKind { NonNegative, NonPositive, Zero, Unknown };
  SignKind signForParamsGE1() const;

  std::string toString() const;

private:
  std::map<std::string, std::int64_t, std::less<>> Coeffs;
  std::int64_t Constant = 0;
};

} // namespace poly
} // namespace lcdfg

#endif // LCDFG_POLY_AFFINEEXPR_H
