//===- poly/IntegerMap.h - Affine maps between iteration spaces -*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine maps from an input iteration space to an output space, one affine
/// expression per output dimension. Stencil data accesses are translations
/// (x, y, z) -> (x + c0, y + c1, z + c2); graph transformations are shifts.
/// Boxes are closed under application of such "separable" maps (each output
/// expression mentions at most one input dimension with coefficient +1),
/// which is all the paper's operations require.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_POLY_INTEGERMAP_H
#define LCDFG_POLY_INTEGERMAP_H

#include "poly/BoxSet.h"

#include <string>
#include <vector>

namespace lcdfg {
namespace poly {

/// An affine map { [in dims] -> [out exprs] }.
class IntegerMap {
public:
  IntegerMap() = default;
  IntegerMap(std::vector<std::string> InDims, std::vector<AffineExpr> OutExprs,
             std::vector<std::string> OutDims = {});

  /// The identity map on \p Dims.
  static IntegerMap identity(const std::vector<std::string> &Dims);

  /// The translation map [d0, ..] -> [d0 + Offsets[0], ..].
  static IntegerMap translation(const std::vector<std::string> &Dims,
                                const std::vector<std::int64_t> &Offsets);

  unsigned numInDims() const { return static_cast<unsigned>(InDims.size()); }
  unsigned numOutDims() const {
    return static_cast<unsigned>(OutExprs.size());
  }
  const std::vector<std::string> &inDims() const { return InDims; }
  const std::vector<AffineExpr> &outExprs() const { return OutExprs; }

  /// True when every output expression is `in_i + c` for distinct in_i.
  bool isSeparable() const;

  /// True when the map is a pure translation (identity plus offsets).
  bool isTranslation() const;

  /// For a translation, the constant offsets per dimension.
  std::vector<std::int64_t> translationOffsets() const;

  /// Applies to a point.
  std::vector<std::int64_t>
  apply(const std::vector<std::int64_t> &Point,
        const std::map<std::string, std::int64_t, std::less<>> &Env) const;

  /// Image of a box under a separable map; aborts if not separable.
  BoxSet apply(const BoxSet &Box) const;

  /// Composition Other(this(x)). Requires arities to match.
  IntegerMap compose(const IntegerMap &Other) const;

  /// Inverse of a translation.
  IntegerMap inverse() const;

  std::string toString() const;

private:
  std::vector<std::string> InDims;
  std::vector<AffineExpr> OutExprs;
  std::vector<std::string> OutDims; // optional names for output dims
};

} // namespace poly
} // namespace lcdfg

#endif // LCDFG_POLY_INTEGERMAP_H
