//===- poly/AffineExpr.cpp ------------------------------------------------===//

#include "poly/AffineExpr.h"

#include "support/Errors.h"
#include "support/Status.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::poly;

AffineExpr AffineExpr::var(std::string_view Name) {
  AffineExpr E;
  E.Coeffs.emplace(std::string(Name), 1);
  return E;
}

std::int64_t AffineExpr::coeff(std::string_view Name) const {
  auto It = Coeffs.find(Name);
  return It == Coeffs.end() ? 0 : It->second;
}

AffineExpr AffineExpr::operator+(const AffineExpr &RHS) const {
  AffineExpr Result = *this;
  Result += RHS;
  return Result;
}

AffineExpr &AffineExpr::operator+=(const AffineExpr &RHS) {
  Constant += RHS.Constant;
  for (const auto &[Name, C] : RHS.Coeffs) {
    auto [It, Inserted] = Coeffs.emplace(Name, C);
    if (!Inserted) {
      It->second += C;
      if (It->second == 0)
        Coeffs.erase(It);
    }
  }
  return *this;
}

AffineExpr AffineExpr::operator-() const {
  AffineExpr Result;
  Result.Constant = -Constant;
  for (const auto &[Name, C] : Coeffs)
    Result.Coeffs.emplace(Name, -C);
  return Result;
}

AffineExpr AffineExpr::operator-(const AffineExpr &RHS) const {
  return *this + (-RHS);
}

AffineExpr &AffineExpr::operator-=(const AffineExpr &RHS) {
  *this += -RHS;
  return *this;
}

AffineExpr AffineExpr::operator*(std::int64_t Scale) const {
  AffineExpr Result;
  if (Scale == 0)
    return Result;
  Result.Constant = Constant * Scale;
  for (const auto &[Name, C] : Coeffs)
    Result.Coeffs.emplace(Name, C * Scale);
  return Result;
}

AffineExpr AffineExpr::substitute(std::string_view Name,
                                  const AffineExpr &Replacement) const {
  auto It = Coeffs.find(Name);
  if (It == Coeffs.end())
    return *this;
  std::int64_t C = It->second;
  AffineExpr Result = *this;
  Result.Coeffs.erase(std::string(Name));
  Result += Replacement * C;
  return Result;
}

std::int64_t AffineExpr::evaluate(
    const std::map<std::string, std::int64_t, std::less<>> &Env) const {
  std::int64_t Result = Constant;
  for (const auto &[Name, C] : Coeffs) {
    auto It = Env.find(Name);
    if (It == Env.end())
      support::raise(support::ErrorCode::InvalidChain,
                     "unbound variable in AffineExpr::evaluate: " + Name);
    Result += C * It->second;
  }
  return Result;
}

Polynomial AffineExpr::toPolynomial(std::string_view Symbol) const {
  Polynomial P(Constant);
  for (const auto &[Name, C] : Coeffs) {
    if (Name != Symbol)
      support::raise(support::ErrorCode::InvalidChain,
                     "AffineExpr::toPolynomial: stray variable " + Name);
    P += Polynomial::term(C, 1);
  }
  return P;
}

AffineExpr::SignKind AffineExpr::signForParamsGE1() const {
  if (Coeffs.empty()) {
    if (Constant == 0)
      return SignKind::Zero;
    return Constant > 0 ? SignKind::NonNegative : SignKind::NonPositive;
  }
  // With every variable v >= 1 and unbounded above, a sum of c_v*v + k is
  // nonnegative for all assignments iff all c_v >= 0 and sum(c_v) + k >= 0.
  std::int64_t SumC = 0;
  bool AllNonNeg = true, AllNonPos = true;
  for (const auto &[Name, C] : Coeffs) {
    (void)Name;
    SumC += C;
    AllNonNeg &= C >= 0;
    AllNonPos &= C <= 0;
  }
  if (AllNonNeg && SumC + Constant >= 0)
    return SignKind::NonNegative;
  if (AllNonPos && SumC + Constant <= 0)
    return SignKind::NonPositive;
  return SignKind::Unknown;
}

std::string AffineExpr::toString() const {
  std::ostringstream OS;
  bool First = true;
  for (const auto &[Name, C] : Coeffs) {
    if (C == 0)
      continue;
    if (!First)
      OS << (C > 0 ? "+" : "-");
    else if (C < 0)
      OS << "-";
    std::int64_t Abs = C < 0 ? -C : C;
    if (Abs != 1)
      OS << Abs;
    OS << Name;
    First = false;
  }
  if (First) {
    OS << Constant;
  } else if (Constant != 0) {
    OS << (Constant > 0 ? "+" : "-") << (Constant < 0 ? -Constant : Constant);
  }
  return OS.str();
}

std::optional<AffineExpr> AffineExpr::parse(std::string_view Text) {
  std::string_view S = trim(Text);
  if (S.empty())
    return std::nullopt;
  AffineExpr Result;
  std::size_t I = 0;
  int Sign = 1;
  bool ExpectTerm = true;
  while (I < S.size()) {
    char C = S[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '+' || C == '-') {
      if (ExpectTerm && C == '-') {
        Sign = -Sign;
        ++I;
        continue;
      }
      if (ExpectTerm)
        return std::nullopt; // "++"
      Sign = C == '-' ? -1 : 1;
      ExpectTerm = true;
      ++I;
      continue;
    }
    if (!ExpectTerm)
      return std::nullopt;
    // A term: [number]['*'][identifier] or just number or identifier.
    std::int64_t Num = 1;
    bool HasNum = false;
    while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I]))) {
      if (!HasNum)
        Num = 0;
      HasNum = true;
      Num = Num * 10 + (S[I] - '0');
      ++I;
    }
    while (I < S.size() &&
           (S[I] == '*' || std::isspace(static_cast<unsigned char>(S[I]))))
      ++I;
    std::string Name;
    while (I < S.size() && (std::isalnum(static_cast<unsigned char>(S[I])) ||
                            S[I] == '_')) {
      if (Name.empty() && std::isdigit(static_cast<unsigned char>(S[I])))
        break;
      Name.push_back(S[I]);
      ++I;
    }
    if (Name.empty()) {
      if (!HasNum)
        return std::nullopt;
      Result.Constant += Sign * Num;
    } else {
      Result += AffineExpr::var(Name) * (Sign * Num);
    }
    Sign = 1;
    ExpectTerm = false;
  }
  if (ExpectTerm)
    return std::nullopt;
  return Result;
}
