//===- poly/IntegerSet.h - Unions of rectangular sets -----------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An IntegerSet is a finite union of BoxSets over the same dimension names.
/// Tiling decomposes a box domain into such a union; cardinality sums over
/// disjuncts (callers keep disjuncts disjoint where that matters).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_POLY_INTEGERSET_H
#define LCDFG_POLY_INTEGERSET_H

#include "poly/BoxSet.h"

#include <vector>

namespace lcdfg {
namespace poly {

/// A finite union of boxes.
class IntegerSet {
public:
  IntegerSet() = default;
  /*implicit*/ IntegerSet(BoxSet Box) { Boxes.push_back(std::move(Box)); }
  explicit IntegerSet(std::vector<BoxSet> Boxes) : Boxes(std::move(Boxes)) {}

  const std::vector<BoxSet> &boxes() const { return Boxes; }
  bool isEmpty() const;
  unsigned numBoxes() const { return static_cast<unsigned>(Boxes.size()); }

  /// Appends the disjuncts of \p RHS.
  IntegerSet unionWith(const IntegerSet &RHS) const;

  /// Intersects each disjunct with \p Box, dropping provably empty results.
  IntegerSet intersect(const BoxSet &Box) const;

  /// Sum of disjunct cardinalities (exact when disjuncts are disjoint).
  Polynomial cardinality(std::string_view Symbol = "N") const;

  /// Sum of disjunct point counts under \p Env.
  std::int64_t
  numPoints(const std::map<std::string, std::int64_t, std::less<>> &Env) const;

  /// True when any disjunct contains \p Point.
  bool
  contains(const std::vector<std::int64_t> &Point,
           const std::map<std::string, std::int64_t, std::less<>> &Env) const;

  std::string toString() const;

private:
  std::vector<BoxSet> Boxes;
};

} // namespace poly
} // namespace lcdfg

#endif // LCDFG_POLY_INTEGERSET_H
