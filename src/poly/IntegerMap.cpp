//===- poly/IntegerMap.cpp ------------------------------------------------===//

#include "poly/IntegerMap.h"

#include "support/Errors.h"

#include <cassert>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::poly;

IntegerMap::IntegerMap(std::vector<std::string> InDims,
                       std::vector<AffineExpr> OutExprs,
                       std::vector<std::string> OutDims)
    : InDims(std::move(InDims)), OutExprs(std::move(OutExprs)),
      OutDims(std::move(OutDims)) {}

IntegerMap IntegerMap::identity(const std::vector<std::string> &Dims) {
  std::vector<AffineExpr> Exprs;
  Exprs.reserve(Dims.size());
  for (const std::string &D : Dims)
    Exprs.push_back(AffineExpr::var(D));
  return IntegerMap(Dims, std::move(Exprs), Dims);
}

IntegerMap IntegerMap::translation(const std::vector<std::string> &Dims,
                                   const std::vector<std::int64_t> &Offsets) {
  assert(Dims.size() == Offsets.size() && "arity mismatch");
  std::vector<AffineExpr> Exprs;
  Exprs.reserve(Dims.size());
  for (unsigned I = 0; I < Dims.size(); ++I)
    Exprs.push_back(AffineExpr::var(Dims[I]) + AffineExpr(Offsets[I]));
  return IntegerMap(Dims, std::move(Exprs), Dims);
}

bool IntegerMap::isSeparable() const {
  std::vector<bool> Used(InDims.size(), false);
  for (const AffineExpr &E : OutExprs) {
    unsigned NumVars = 0;
    for (unsigned I = 0; I < InDims.size(); ++I) {
      std::int64_t C = E.coeff(InDims[I]);
      if (C == 0)
        continue;
      if (C != 1 || Used[I])
        return false;
      Used[I] = true;
      ++NumVars;
    }
    if (NumVars > 1)
      return false;
  }
  return true;
}

bool IntegerMap::isTranslation() const {
  if (OutExprs.size() != InDims.size())
    return false;
  for (unsigned I = 0; I < InDims.size(); ++I) {
    AffineExpr Diff = OutExprs[I] - AffineExpr::var(InDims[I]);
    if (!Diff.isConstant())
      return false;
  }
  return true;
}

std::vector<std::int64_t> IntegerMap::translationOffsets() const {
  assert(isTranslation() && "not a translation");
  std::vector<std::int64_t> Offsets;
  Offsets.reserve(InDims.size());
  for (unsigned I = 0; I < InDims.size(); ++I)
    Offsets.push_back(
        (OutExprs[I] - AffineExpr::var(InDims[I])).constant());
  return Offsets;
}

std::vector<std::int64_t> IntegerMap::apply(
    const std::vector<std::int64_t> &Point,
    const std::map<std::string, std::int64_t, std::less<>> &Env) const {
  assert(Point.size() == InDims.size() && "point arity mismatch");
  std::map<std::string, std::int64_t, std::less<>> Full = Env;
  for (unsigned I = 0; I < InDims.size(); ++I)
    Full[InDims[I]] = Point[I];
  std::vector<std::int64_t> Out;
  Out.reserve(OutExprs.size());
  for (const AffineExpr &E : OutExprs)
    Out.push_back(E.evaluate(Full));
  return Out;
}

BoxSet IntegerMap::apply(const BoxSet &Box) const {
  if (!isSeparable())
    reportFatalError("IntegerMap::apply: map is not separable: " + toString());
  assert(Box.rank() == InDims.size() && "box arity mismatch");
  std::vector<Dim> OutBounds;
  OutBounds.reserve(OutExprs.size());
  for (unsigned O = 0; O < OutExprs.size(); ++O) {
    const AffineExpr &E = OutExprs[O];
    std::string Name =
        O < OutDims.size() && !OutDims[O].empty()
            ? OutDims[O]
            : "o" + std::to_string(O);
    // Find the single input dim this output uses (if any).
    AffineExpr Lower = E, Upper = E;
    for (unsigned I = 0; I < InDims.size(); ++I) {
      if (E.coeff(InDims[I]) == 0)
        continue;
      // Substituting the input dim's bounds gives the image interval since
      // the coefficient is +1.
      Lower = Lower.substitute(InDims[I], Box.dim(I).Lower);
      Upper = Upper.substitute(InDims[I], Box.dim(I).Upper);
      Name = O < OutDims.size() && !OutDims[O].empty() ? OutDims[O]
                                                       : Box.dim(I).Name;
    }
    OutBounds.push_back(Dim{Name, Lower, Upper});
  }
  return BoxSet(std::move(OutBounds));
}

IntegerMap IntegerMap::compose(const IntegerMap &Other) const {
  assert(OutExprs.size() == Other.InDims.size() &&
         "composition arity mismatch");
  std::vector<AffineExpr> Exprs;
  Exprs.reserve(Other.OutExprs.size());
  for (const AffineExpr &E : Other.OutExprs) {
    AffineExpr Sub = E;
    // Substitute all input dims of Other simultaneously: first rename to
    // placeholders to avoid capture, then substitute.
    std::vector<AffineExpr> Values(OutExprs.begin(), OutExprs.end());
    AffineExpr Result(Sub.constant());
    for (const auto &[Name, C] : Sub.coeffs()) {
      bool IsInner = false;
      for (unsigned I = 0; I < Other.InDims.size(); ++I) {
        if (Name == Other.InDims[I]) {
          Result += Values[I] * C;
          IsInner = true;
          break;
        }
      }
      if (!IsInner)
        Result += AffineExpr::var(Name) * C;
    }
    Exprs.push_back(Result);
  }
  return IntegerMap(InDims, std::move(Exprs), Other.OutDims);
}

IntegerMap IntegerMap::inverse() const {
  if (!isTranslation())
    reportFatalError("IntegerMap::inverse: only translations are invertible");
  std::vector<std::int64_t> Offsets = translationOffsets();
  for (std::int64_t &O : Offsets)
    O = -O;
  return translation(InDims, Offsets);
}

std::string IntegerMap::toString() const {
  std::ostringstream OS;
  OS << "{ [";
  for (unsigned I = 0; I < InDims.size(); ++I) {
    if (I)
      OS << ", ";
    OS << InDims[I];
  }
  OS << "] -> [";
  for (unsigned I = 0; I < OutExprs.size(); ++I) {
    if (I)
      OS << ", ";
    OS << OutExprs[I].toString();
  }
  OS << "] }";
  return OS.str();
}
