//===- jit/JitEngine.h - Host-compiler segment-kernel backend ---*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles RowPlan segment classes to specialized shared objects at run
/// time. For each (KernelExpr, SegmentKernelSig) pair the engine emits one
/// C function via codegen::printSegmentKernel, invokes the host compiler
/// (`cc` by default) to build a `.so`, dlopens it, and hands back the
/// resulting codegen::BatchedKernel. Objects are cached on disk keyed by
/// (ABI version, compiler identity, flags, source), so repeat runs skip
/// compilation entirely; an in-memory map on top makes repeat requests
/// within one process a hash lookup.
///
/// Every failure mode — no compiler, unwritable cache, compile error,
/// corrupt object — surfaces as an E017 Expected error, never a crash: the
/// callers (exec::RowPlan::analyze, the recovery ladder's L008 rung) fall
/// back to the interpreted batched bodies.
///
/// Environment knobs (read by EngineOptions::fromEnvironment, i.e. the
/// process-wide Engine::global()):
///   LCDFG_JIT       on|off      also steers exec::effectiveKernelMode
///   LCDFG_JIT_CC    <compiler>  host compiler command (default "cc")
///   LCDFG_JIT_DIR   <path>      cache directory (default under $TMPDIR)
///   LCDFG_JIT_FLAGS <flags>     extra compiler flags, part of the cache key
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_JIT_JITENGINE_H
#define LCDFG_JIT_JITENGINE_H

#include "codegen/CPrinter.h"
#include "codegen/Interpreter.h"
#include "support/Status.h"

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

namespace lcdfg {
namespace jit {

/// Construction-time knobs. Tests build private engines with temp cache
/// dirs or dead compilers; everything else uses Engine::global(), which
/// reads fromEnvironment() once.
struct EngineOptions {
  /// Master switch: a disabled engine refuses every request with E017
  /// (the ladder then descends L008, exactly as if no compiler existed).
  bool Enabled = true;
  /// Host compiler command. Probed lazily with a tiny compile; a command
  /// that cannot produce a loadable object marks the engine unavailable.
  std::string Compiler = "cc";
  /// Cache directory; created on demand. Empty selects
  /// $LCDFG_JIT_DIR, else $TMPDIR/lcdfg-jit-<uid>, else /tmp/....
  std::string CacheDir;
  /// Extra flags appended to the compile line (and folded into the cache
  /// key, so changing them invalidates cached objects).
  std::string ExtraFlags;

  static EngineOptions fromEnvironment();
};

/// The compilation cache + dlopen loader. Thread-safe; kernels returned
/// stay valid for the engine's lifetime (handles are never dlclosed).
class Engine {
public:
  Engine();
  explicit Engine(EngineOptions OptsIn);
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// The process-wide engine, configured from the environment at first
  /// use. RunOptions::Jit == nullptr resolves here.
  static Engine &global();

  /// True when the host compiler produced and loaded a probe object.
  /// Cached after the first call; cheap thereafter.
  bool available();
  /// Why available() is false ("" while it is true).
  std::string unavailableReason();

  /// The specialized batched body for \p Body over \p Sig, compiling at
  /// most once per (expression, shape, flags) class. E017 on any failure.
  support::Expected<codegen::BatchedKernel>
  kernel(const codegen::KernelExpr &Body, const codegen::SegmentKernelSig &Sig);

  /// The fused whole-row kernel for \p Desc (codegen::printRowKernel),
  /// compiling at most once per (statement set, shape, flags) class. Same
  /// cache, counters and E017 semantics as kernel().
  support::Expected<codegen::RowKernel>
  rowKernel(const codegen::RowKernelDesc &Desc);

  /// Monotonic per-engine tallies (the Tracer counters mirror these when
  /// tracing is armed, but tests read them directly).
  struct Stats {
    std::int64_t Compiled = 0;  ///< Host-compiler invocations that built.
    std::int64_t CacheHits = 0; ///< Requests served without compiling.
    std::int64_t Failures = 0;  ///< Requests that returned E017.
  };
  Stats stats() const;

  /// The resolved cache directory (for tests that corrupt objects).
  const std::string &cacheDir() const { return Opts.CacheDir; }
  /// The probed compiler identity line folded into cache keys.
  std::string compilerVersion();

private:
  /// Cache-or-compile under Mu: in-memory map, then the on-disk object,
  /// then \p Render + host compiler. Both public kernel entry points reduce
  /// to this with their own key recipe and emitter; the returned pointer is
  /// the raw dlsym result, cast by the caller to its ABI.
  support::Expected<void *>
  fetchLocked(std::uint64_t Key,
              const std::function<std::string(const std::string &)> &Render);
  support::Expected<void *> load(const std::string &SoPath,
                                 const std::string &Symbol);
  support::Status compileTo(const std::string &CPath,
                            const std::string &SoPath);
  support::Status probe();
  void resolveVersionLocked();

  EngineOptions Opts;
  std::mutex Mu;
  bool Probed = false;
  support::Status ProbeStatus; ///< ok() once the probe succeeded.
  std::string Version;         ///< First --version line, or "unknown".
  std::string MarchFlag;       ///< "-march=native" when the probe took it.
  std::uint64_t KeyBase = 0;   ///< ABI+compiler+flags prefix of every key.
  std::unordered_map<std::uint64_t, void *> Loaded;
  Stats Tally;
};

} // namespace jit
} // namespace lcdfg

#endif // LCDFG_JIT_JITENGINE_H
