//===- jit/JitEngine.cpp - Host-compiler segment-kernel backend -----------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "jit/JitEngine.h"

#include "obs/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <dlfcn.h>
#include <unistd.h>

using namespace lcdfg;
using namespace lcdfg::jit;

namespace fs = std::filesystem;

namespace {

/// Bump when the emitted ABI or the key recipe changes: old cache entries
/// then miss instead of resolving to incompatible objects.
constexpr const char *AbiTag = "lcdfg-jit-abi-1";

/// Flags every compile gets. -ffp-contract=off is load-bearing: fused
/// multiply-adds would change rounding and break the bit-compare gates
/// against the interpreted bodies. -fopenmp-simd honors the pragma without
/// pulling in the OpenMP runtime.
constexpr const char *BaseFlags =
    "-O3 -fPIC -shared -fopenmp-simd -ffp-contract=off";

std::uint64_t fnv1a(std::string_view S, std::uint64_t H = 0xcbf29ce484222325ull) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::uint64_t fnvU64(std::uint64_t H, std::uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= static_cast<unsigned char>(V >> (I * 8));
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string hexKey(std::uint64_t Key) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Key));
  return Buf;
}

std::string quoted(const std::string &Path) { return "'" + Path + "'"; }

support::Status e017(std::string Msg) {
  return support::Status::error(support::ErrorCode::JitUnavailable,
                                std::move(Msg));
}

/// Atomically materializes \p Text at \p Path (tmp + rename, so concurrent
/// processes sharing a cache dir never observe a torn file).
support::Status writeFileAtomic(const std::string &Path,
                                const std::string &Text) {
  const std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    Out << Text;
    if (!Out)
      return e017("cannot write " + Tmp);
  }
  std::error_code EC;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return e017("cannot rename into " + Path);
  }
  return support::Status::ok();
}

std::string defaultCacheDir() {
  if (const char *Dir = std::getenv("LCDFG_JIT_DIR"); Dir && *Dir)
    return Dir;
  std::string Base = "/tmp";
  if (const char *Tmp = std::getenv("TMPDIR"); Tmp && *Tmp)
    Base = Tmp;
  return Base + "/lcdfg-jit-" + std::to_string(::getuid());
}

} // namespace

EngineOptions EngineOptions::fromEnvironment() {
  EngineOptions O;
  if (const char *V = std::getenv("LCDFG_JIT"); V && *V) {
    const std::string S = V;
    O.Enabled = !(S == "off" || S == "0" || S == "interp");
  }
  if (const char *CC = std::getenv("LCDFG_JIT_CC"); CC && *CC)
    O.Compiler = CC;
  if (const char *Flags = std::getenv("LCDFG_JIT_FLAGS"); Flags && *Flags)
    O.ExtraFlags = Flags;
  O.CacheDir = defaultCacheDir();
  return O;
}

Engine::Engine() : Engine(EngineOptions::fromEnvironment()) {}

Engine::Engine(EngineOptions OptsIn) : Opts(std::move(OptsIn)) {
  if (Opts.CacheDir.empty())
    Opts.CacheDir = defaultCacheDir();
}

// Loaded objects stay mapped for the process lifetime: returned kernel
// pointers may be cached inside compiled RowPlans that outlive the engine.
Engine::~Engine() = default;

Engine &Engine::global() {
  static Engine G;
  return G;
}

/// Caller holds Mu. One popen per engine; "unknown" when the compiler
/// cannot even report a version (the probe will fail right after).
void Engine::resolveVersionLocked() {
  if (!Version.empty())
    return;
  Version = "unknown";
  if (FILE *P = ::popen((Opts.Compiler + " --version 2>/dev/null").c_str(),
                        "r")) {
    char Line[256];
    if (std::fgets(Line, sizeof(Line), P)) {
      std::string S(Line);
      while (!S.empty() && (S.back() == '\n' || S.back() == '\r'))
        S.pop_back();
      if (!S.empty())
        Version = S;
    }
    ::pclose(P);
  }
}

std::string Engine::compilerVersion() {
  std::lock_guard<std::mutex> Lock(Mu);
  resolveVersionLocked();
  return Version;
}

support::Status Engine::compileTo(const std::string &CPath,
                                  const std::string &SoPath) {
  const std::string Tmp = SoPath + ".tmp." + std::to_string(::getpid());
  const std::string Log = SoPath + ".log";
  std::ostringstream Cmd;
  Cmd << Opts.Compiler << ' ' << BaseFlags;
  if (!MarchFlag.empty())
    Cmd << ' ' << MarchFlag;
  if (!Opts.ExtraFlags.empty())
    Cmd << ' ' << Opts.ExtraFlags;
  Cmd << " -o " << quoted(Tmp) << ' ' << quoted(CPath) << " 2>"
      << quoted(Log);
  if (std::system(Cmd.str().c_str()) != 0) {
    std::error_code EC;
    fs::remove(Tmp, EC);
    return e017("host compiler failed (see " + Log + ")");
  }
  std::error_code EC;
  fs::rename(Tmp, SoPath, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return e017("cannot rename compiled object into " + SoPath);
  }
  return support::Status::ok();
}

/// One-time compiler probe under Mu: resolves the version line, checks the
/// base flag set produces a loadable object, and opts into -march=native
/// when the compiler accepts it (vector-width changes cannot alter results:
/// the emitted bodies are elementwise IEEE ops with contraction off).
support::Status Engine::probe() {
  if (Probed)
    return ProbeStatus;
  Probed = true;
  resolveVersionLocked();
  // The key prefix folds in everything environmental that shapes compiled
  // objects; per-request keys extend it with the (expression, shape)
  // structural hash. MarchFlag is settled below before the first request
  // can observe KeyBase (kernel() probes before keying).
  auto SealKeyBase = [&] {
    KeyBase = fnv1a(AbiTag);
    KeyBase = fnv1a(Opts.Compiler, fnv1a("\x1f", KeyBase));
    KeyBase = fnv1a(Version, fnv1a("\x1f", KeyBase));
    KeyBase = fnv1a(BaseFlags, fnv1a("\x1f", KeyBase));
    KeyBase = fnv1a(MarchFlag, fnv1a("\x1f", KeyBase));
    KeyBase = fnv1a(Opts.ExtraFlags, fnv1a("\x1f", KeyBase));
  };
  SealKeyBase();
  if (!Opts.Enabled) {
    ProbeStatus = e017("JIT disabled (LCDFG_JIT=off)");
    return ProbeStatus;
  }
  std::error_code EC;
  fs::create_directories(Opts.CacheDir, EC);
  if (EC) {
    ProbeStatus = e017("cannot create cache dir " + Opts.CacheDir);
    return ProbeStatus;
  }
  const std::string Pid = std::to_string(::getpid());
  const std::string CPath = Opts.CacheDir + "/probe-" + Pid + ".c";
  const std::string SoPath = Opts.CacheDir + "/probe-" + Pid + ".so";
  const char *Src = "#include <stdint.h>\n"
                    "int64_t lcdfg_jit_probe(int64_t N) {\n"
                    "  int64_t Acc = 0;\n"
                    "#pragma omp simd\n"
                    "  for (int64_t I = 0; I < N; ++I)\n"
                    "    Acc += I;\n"
                    "  return Acc;\n"
                    "}\n";
  if (support::Status S = writeFileAtomic(CPath, Src); !S) {
    ProbeStatus = std::move(S);
    return ProbeStatus;
  }
  ProbeStatus = compileTo(CPath, SoPath);
  if (ProbeStatus) {
    if (void *H = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL)) {
      if (!::dlsym(H, "lcdfg_jit_probe"))
        ProbeStatus = e017("probe object lacks its symbol");
      ::dlclose(H);
    } else {
      ProbeStatus = e017(std::string("probe dlopen failed: ") + ::dlerror());
    }
  }
  if (ProbeStatus) {
    // Vector ISA opt-in: a separate probe, so an unsupported -march flag
    // degrades to portable codegen instead of marking the engine dead.
    MarchFlag = "-march=native";
    if (!compileTo(CPath, SoPath + ".march"))
      MarchFlag.clear();
    fs::remove(SoPath + ".march", EC);
    SealKeyBase(); // MarchFlag is now final.
  }
  fs::remove(CPath, EC);
  fs::remove(SoPath, EC);
  return ProbeStatus;
}

bool Engine::available() {
  std::lock_guard<std::mutex> Lock(Mu);
  return static_cast<bool>(probe());
}

std::string Engine::unavailableReason() {
  std::lock_guard<std::mutex> Lock(Mu);
  support::Status S = probe();
  return S ? std::string() : S.message();
}

support::Expected<void *> Engine::load(const std::string &SoPath,
                                       const std::string &Symbol) {
  void *H = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!H)
    return e017("dlopen " + SoPath + ": " + ::dlerror());
  if (void *Sym = ::dlsym(H, Symbol.c_str()))
    return Sym;
  return e017("dlsym " + Symbol + " in " + SoPath + ": " + ::dlerror());
}

support::Expected<void *>
Engine::fetchLocked(std::uint64_t Key,
                    const std::function<std::string(const std::string &)>
                        &Render) {
  obs::Tracer &Tr = obs::Tracer::global();
  if (auto It = Loaded.find(Key); It != Loaded.end()) {
    ++Tally.CacheHits;
    Tr.add(obs::Counter::JitCacheHits, 1);
    return It->second;
  }

  const std::string Stem = Opts.CacheDir + "/" + hexKey(Key);
  const std::string Symbol = "lcdfg_k_" + hexKey(Key);
  const std::string CPath = Stem + ".c";
  const std::string SoPath = Stem + ".so";

  std::error_code EC;
  bool FromDisk = fs::exists(SoPath, EC);
  if (FromDisk) {
    // A prior process built this class; a corrupt or truncated object is
    // discarded and rebuilt below rather than surfacing as a hard error.
    if (auto K = load(SoPath, Symbol)) {
      ++Tally.CacheHits;
      Tr.add(obs::Counter::JitCacheHits, 1);
      Loaded.emplace(Key, *K);
      return *K;
    }
    fs::remove(SoPath, EC);
  }

  const std::string Real = Render(Symbol);
  if (support::Status S = writeFileAtomic(CPath, Real); !S) {
    ++Tally.Failures;
    return S;
  }
  const std::int64_t T0 = Tr.enabled() ? Tr.nowNs() : 0;
  support::Status S = compileTo(CPath, SoPath);
  if (Tr.enabled()) {
    obs::TraceSpan Span;
    Span.Kind = obs::SpanKind::Jit;
    Span.T0 = T0;
    Span.T1 = Tr.nowNs();
    Span.Label = Tr.intern("jit-compile:" + hexKey(Key));
    Tr.record(Span);
  }
  if (!S) {
    ++Tally.Failures;
    return S;
  }
  auto K = load(SoPath, Symbol);
  if (!K) {
    ++Tally.Failures;
    return K.takeError();
  }
  ++Tally.Compiled;
  Tr.add(obs::Counter::JitCompiled, 1);
  Loaded.emplace(Key, *K);
  return *K;
}

support::Expected<codegen::BatchedKernel>
Engine::kernel(const codegen::KernelExpr &Body,
               const codegen::SegmentKernelSig &Sig) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (support::Status S = probe(); !S) {
    ++Tally.Failures;
    return S;
  }

  // The cache key covers everything that shapes the object: the sealed
  // environmental prefix (ABI tag, compiler path + version line, the full
  // flag set) extended with the structural hash of the expression and the
  // segment shape — which together fully determine the emitted source.
  // Hashing structure instead of rendered text keeps repeat lookups (one
  // per statement per run) free of string building.
  std::uint64_t Key =
      fnvU64(KeyBase, static_cast<std::uint64_t>(Sig.WriteStride));
  Key = fnvU64(Key, Sig.ReadStrides.size());
  for (std::size_t J = 0; J < Sig.ReadStrides.size(); ++J) {
    Key = fnvU64(Key, static_cast<std::uint64_t>(Sig.ReadStrides[J]));
    Key = fnvU64(Key, J < Sig.ReadAliasesWrite.size() && Sig.ReadAliasesWrite[J]
                          ? 1
                          : 0);
  }
  Key = Body.hash(Key);

  auto R = fetchLocked(Key, [&Body, &Sig](const std::string &Symbol) {
    return codegen::printSegmentKernel(Body, Sig, Symbol);
  });
  if (!R)
    return R.takeError();
  return reinterpret_cast<codegen::BatchedKernel>(*R);
}

support::Expected<codegen::RowKernel>
Engine::rowKernel(const codegen::RowKernelDesc &Desc) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (support::Status S = probe(); !S) {
    ++Tally.Failures;
    return S;
  }

  // Row-kernel keys get their own tag so a single-statement row class can
  // never collide with the plain segment class of the same expression.
  // The tag doubles as the fused-walker emission version: bump it whenever
  // printRowKernel's output or the RowKernel ABI changes.
  std::uint64_t Key = fnvU64(KeyBase, 0x726f777732ULL); // "roww2"
  Key = fnvU64(Key, Desc.Stmts.size());
  Key = fnvU64(Key, static_cast<std::uint64_t>(Desc.MaxSegment));
  auto FoldStream = [&Key](const codegen::RowKernelDesc::Stream &S) {
    Key = fnvU64(Key, S.Space);
    Key = fnvU64(Key, S.Modulo ? 1 : 0);
    Key = fnvU64(Key, static_cast<std::uint64_t>(S.ModSize));
    Key = fnvU64(Key, static_cast<std::uint64_t>(S.InnerStride));
    Key = fnvU64(Key, S.Flat);
    Key = fnvU64(Key, S.AliasesWrite ? 1 : 0);
  };
  for (const codegen::RowKernelDesc::Stmt &St : Desc.Stmts) {
    Key = fnvU64(Key, static_cast<std::uint64_t>(St.Lo));
    Key = fnvU64(Key, static_cast<std::uint64_t>(St.Hi));
    FoldStream(St.Write);
    Key = fnvU64(Key, St.Reads.size());
    for (const codegen::RowKernelDesc::Stream &R : St.Reads)
      FoldStream(R);
    Key = St.Body ? St.Body->hash(Key) : fnvU64(Key, 0);
  }

  auto R = fetchLocked(Key, [&Desc](const std::string &Symbol) {
    return codegen::printRowKernel(Desc, Symbol);
  });
  if (!R)
    return R.takeError();
  return reinterpret_cast<codegen::RowKernel>(*R);
}

Engine::Stats Engine::stats() const {
  // Mu guards Tally, but stats() is read from test threads only after the
  // requests of interest returned; a const_cast lock keeps it honest.
  std::lock_guard<std::mutex> Lock(const_cast<std::mutex &>(Mu));
  return Tally;
}
