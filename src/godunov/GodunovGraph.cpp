//===- godunov/GodunovGraph.cpp -------------------------------------------===//

#include "godunov/GodunovGraph.h"

#include "godunov/Kernels.h"
#include "graph/Transforms.h"
#include "support/Errors.h"

using namespace lcdfg;
using namespace lcdfg::gdnv;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;

namespace {

/// Dimension labels 1..3 map to (x, y, z); the box dims are ordered
/// (z, y, x), so dimension d uses offset index 3 - d.
unsigned offsetIdx(int D) { return static_cast<unsigned>(3 - D); }

BoxSet region(const AffineExpr &Hi) {
  return BoxSet({Dim{"z", AffineExpr(0), Hi}, Dim{"y", AffineExpr(0), Hi},
                 Dim{"x", AffineExpr(0), Hi}});
}

std::vector<std::int64_t> offset(int D, std::int64_t V) {
  std::vector<std::int64_t> O(3, 0);
  if (D != 0)
    O[offsetIdx(D)] = V;
  return O;
}

unsigned nestByName(const ir::LoopChain &Chain, const std::string &Name) {
  for (unsigned I = 0; I < Chain.numNests(); ++I)
    if (Chain.nest(I).Name == Name)
      return I;
  reportFatalError("godunov recipe: no nest named " + Name);
}

graph::NodeId nodeOf(const graph::Graph &G, const std::string &NestName) {
  graph::NodeId Id = G.stmtOfNest(nestByName(G.chain(), NestName));
  if (Id == graph::InvalidNode)
    reportFatalError("godunov recipe: nest " + NestName + " is dead");
  return Id;
}

void mustOk(const graph::TransformResult &R) {
  if (!R)
    reportFatalError("godunov recipe: " + R.Error);
}

} // namespace

ir::LoopChain gdnv::buildComputeWHalfChain() {
  ir::LoopChain Chain("computeWHalf", "fuse");
  AffineExpr N = AffineExpr::var("N");
  BoxSet R2 = region(N + AffineExpr(1)); // predictor region [0, N+1]
  BoxSet R1 = region(N);                 // transverse region [0, N]
  BoxSet R0 = region(N - AffineExpr(1)); // interior [0, N-1]
  std::vector<std::int64_t> Zero(3, 0);

  auto S = [](int D) { return std::to_string(D); };

  // Stage 1: PPM predictors.
  for (int D = 1; D <= 3; ++D) {
    for (const char *Side : {"m", "p"}) {
      ir::LoopNest Nest;
      Nest.Name = std::string("PPM") + Side + "_" + S(D);
      Nest.Domain = R2;
      Nest.Write = ir::Access{
          (Side[0] == 'm' ? "WMinus_" : "WPlus_") + S(D), {Zero}};
      Nest.Reads = {
          ir::Access{"W", {offset(D, -1), Zero, offset(D, 1)}}};
      Chain.addNest(std::move(Nest));
    }
  }
  // Stage 2: first Riemann solves.
  for (int D = 1; D <= 3; ++D) {
    ir::LoopNest Nest;
    Nest.Name = "riem1_" + S(D);
    Nest.Domain = R2;
    Nest.Write = ir::Access{"WHalf1_" + S(D), {Zero}};
    Nest.Reads = {ir::Access{"WMinus_" + S(D), {Zero}},
                  ir::Access{"WPlus_" + S(D), {Zero}}};
    Chain.addNest(std::move(Nest));
  }
  // Stages 3-4: transverse qlu pairs and their Riemann solves.
  for (int D1 = 1; D1 <= 3; ++D1)
    for (int D2 = 1; D2 <= 3; ++D2) {
      if (D1 == D2)
        continue;
      std::string Pair = S(D1) + S(D2);
      for (const char *Side : {"M", "P"}) {
        ir::LoopNest Nest;
        Nest.Name = std::string("qlu") + Side + "_" + Pair;
        Nest.Domain = R1;
        Nest.Write = ir::Access{
            (Side[0] == 'M' ? "WTempMinus_" : "WTempPlus_") + Pair, {Zero}};
        Nest.Reads = {
            ir::Access{(Side[0] == 'M' ? "WMinus_" : "WPlus_") + S(D1),
                       {Zero}},
            ir::Access{"WHalf1_" + S(D2), {Zero, offset(D2, 1)}}};
        Chain.addNest(std::move(Nest));
      }
      ir::LoopNest Nest;
      Nest.Name = "riem2_" + Pair;
      Nest.Domain = R1;
      Nest.Write = ir::Access{"WHalf2_" + Pair, {Zero}};
      Nest.Reads = {ir::Access{"WTempMinus_" + Pair, {Zero}},
                    ir::Access{"WTempPlus_" + Pair, {Zero}}};
      Chain.addNest(std::move(Nest));
    }
  // Stages 5-6: final corrections and Riemann solves.
  for (int D = 1; D <= 3; ++D) {
    int A = D == 1 ? 2 : 1;
    int B = D == 3 ? 2 : 3;
    for (const char *Side : {"M", "P"}) {
      ir::LoopNest Nest;
      Nest.Name = std::string("qlu2") + Side + "_" + S(D);
      Nest.Domain = R0;
      Nest.Write = ir::Access{
          (Side[0] == 'M' ? "WFinalMinus_" : "WFinalPlus_") + S(D), {Zero}};
      Nest.Reads = {
          ir::Access{(Side[0] == 'M' ? "WMinus_" : "WPlus_") + S(D), {Zero}},
          ir::Access{"WHalf2_" + S(A) + S(B), {Zero, offset(A, 1)}},
          ir::Access{"WHalf2_" + S(B) + S(A), {Zero, offset(B, 1)}}};
      Chain.addNest(std::move(Nest));
    }
    ir::LoopNest Nest;
    Nest.Name = "riem3_" + S(D);
    Nest.Domain = R0;
    Nest.Write = ir::Access{"WHalf_" + S(D), {Zero}};
    Nest.Reads = {ir::Access{"WFinalMinus_" + S(D), {Zero}},
                  ir::Access{"WFinalPlus_" + S(D), {Zero}}};
    Chain.addNest(std::move(Nest));
  }
  Chain.finalize();
  return Chain;
}

void gdnv::registerKernels(ir::LoopChain &Chain,
                           codegen::KernelRegistry &Registry) {
  int PPMm = Registry.add([](const std::vector<double> &R, double) {
    return ppmMinus(R[0], R[1], R[2]);
  });
  int PPMp = Registry.add([](const std::vector<double> &R, double) {
    return ppmPlus(R[0], R[1], R[2]);
  });
  int Riem = Registry.add([](const std::vector<double> &R, double) {
    return riemann(R[0], R[1]);
  });
  int Qlu = Registry.add([](const std::vector<double> &R, double) {
    return qlu(R[0], R[1], R[2]);
  });
  int Qlu2 = Registry.add([](const std::vector<double> &R, double) {
    return qlu2(R[0], R[1], R[2], R[3], R[4]);
  });
  for (unsigned I = 0; I < Chain.numNests(); ++I) {
    ir::LoopNest &Nest = Chain.nest(I);
    if (Nest.Name.rfind("PPMm", 0) == 0)
      Nest.KernelId = PPMm;
    else if (Nest.Name.rfind("PPMp", 0) == 0)
      Nest.KernelId = PPMp;
    else if (Nest.Name.rfind("riem", 0) == 0)
      Nest.KernelId = Riem;
    else if (Nest.Name.rfind("qlu2", 0) == 0)
      Nest.KernelId = Qlu2;
    else if (Nest.Name.rfind("qlu", 0) == 0)
      Nest.KernelId = Qlu;
    else
      reportFatalError("godunov kernels: unrecognized nest " + Nest.Name);
  }
}

void gdnv::applyGodunovFusion(graph::Graph &G) {
  auto S = [](int D) { return std::to_string(D); };
  // Figure 14: each transverse qlu pair executes fused with its Riemann
  // solve.
  for (int D1 = 1; D1 <= 3; ++D1)
    for (int D2 = 1; D2 <= 3; ++D2) {
      if (D1 == D2)
        continue;
      std::string Pair = S(D1) + S(D2);
      mustOk(graph::fuseReadReduction(G, nodeOf(G, "qluM_" + Pair),
                                      nodeOf(G, "qluP_" + Pair)));
      mustOk(graph::fuseProducerConsumer(G, nodeOf(G, "qluM_" + Pair),
                                         nodeOf(G, "riem2_" + Pair)));
    }
  // The final qlu pairs fuse with the last Riemann solves the same way.
  for (int D = 1; D <= 3; ++D) {
    mustOk(graph::fuseReadReduction(G, nodeOf(G, std::string("qlu2M_") + S(D)),
                                    nodeOf(G, std::string("qlu2P_") + S(D))));
    mustOk(graph::fuseProducerConsumer(
        G, nodeOf(G, std::string("qlu2M_") + S(D)),
        nodeOf(G, "riem3_" + S(D))));
  }
  G.compactRows();
  G.compactColumns();
}
