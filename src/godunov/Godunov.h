//===- godunov/Godunov.h - Mini AMR-Godunov ComputeWHalf --------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The case study of Section 5.6: ComputeWHalf, the subroutine consuming
/// ~80% of an AMR-Godunov time step, as a C++ mini-kernel with the Figure
/// 13 dataflow. Per spatial dimension a PPM predictor produces traced
/// states (WMinus, WPlus), Riemann solves produce half-step states, and
/// quasi-linear updates (qlu) apply transverse corrections; the final
/// Riemann solves produce WHalf per dimension.
///
/// The original schedule materializes every node in a full-box temporary.
/// The optimized schedule of Figure 14 fuses each qlu pair with its
/// following Riemann solve, eliminating the WTemp and corrected-state
/// arrays (their reuse distance is zero, so they collapse to scalars).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GODUNOV_GODUNOV_H
#define LCDFG_GODUNOV_GODUNOV_H

#include "runtime/BoxGrid.h"

#include <array>
#include <vector>

namespace lcdfg {
namespace gdnv {

inline constexpr int NumComps = 5;
/// PPM predictor needs W three cells deep past the widest temporary region.
inline constexpr int GhostDepth = 3;
/// Riemann linearization constant.
inline constexpr double Lambda = 0.3;
/// Transverse-correction CFL factor.
inline constexpr double DtDx = 0.1;

/// Per-box outputs: one half-step state per dimension.
using WHalfSet = std::array<rt::Box, 3>;

/// Allocates outputs (no ghost cells) for \p NumBoxes boxes of \p N^3.
std::vector<WHalfSet> makeOutputs(int NumBoxes, int N);

/// The original schedule: one loop nest per Figure 13 node, full-box
/// temporaries throughout.
void computeWHalfOriginal(const rt::Box &W, WHalfSet &Out);

/// The Figure 14 schedule: qlu pairs fused with their Riemann solves; the
/// WTemp and corrected-state value sets collapse to scalars.
void computeWHalfFused(const rt::Box &W, WHalfSet &Out);

/// Runs a whole set of boxes on \p Threads threads (parallel over boxes).
void runOriginal(const std::vector<rt::Box> &In, std::vector<WHalfSet> &Out,
                 int Threads);
void runFused(const std::vector<rt::Box> &In, std::vector<WHalfSet> &Out,
              int Threads);

/// Temporary elements per box for each schedule (the storage the Figure 14
/// fusion eliminates).
long temporaryElementsOriginal(int N);
long temporaryElementsFused(int N);

/// Max relative difference between the two schedules on a random box.
double verifySchedules(int N, std::uint64_t Seed = 0x90d);

} // namespace gdnv
} // namespace lcdfg

#endif // LCDFG_GODUNOV_GODUNOV_H
