//===- godunov/Kernels.h - ComputeWHalf pointwise kernels -------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pointwise math of the mini ComputeWHalf, shared by the hand-coded
/// schedules (Godunov.cpp) and the interpreter kernels registered for the
/// Figure 13 loop chain (GodunovGraph).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GODUNOV_KERNELS_H
#define LCDFG_GODUNOV_KERNELS_H

#include "godunov/Godunov.h"

namespace lcdfg {
namespace gdnv {

/// PPM-style traced states from the centered and neighboring values.
inline double ppmMinus(double WM, double W0, double WP) {
  return W0 - 0.25 * (WP - WM) + 0.05 * (WP - 2.0 * W0 + WM);
}
inline double ppmPlus(double WM, double W0, double WP) {
  return W0 + 0.25 * (WP - WM) + 0.05 * (WP - 2.0 * W0 + WM);
}

/// Linearized Riemann solve of a left/right state pair.
inline double riemann(double A, double B) {
  return 0.5 * (A + B) - Lambda * (B - A);
}

/// Quasi-linear transverse correction from one half-state difference.
inline double qlu(double W, double H0, double H1) {
  return W - DtDx * (H1 - H0);
}

/// Final correction from both transverse half-state differences.
inline double qlu2(double W, double HA0, double HA1, double HB0,
                   double HB1) {
  return W - 0.5 * DtDx * ((HA1 - HA0) + (HB1 - HB0));
}

} // namespace gdnv
} // namespace lcdfg

#endif // LCDFG_GODUNOV_KERNELS_H
