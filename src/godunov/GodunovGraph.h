//===- godunov/GodunovGraph.h - ComputeWHalf as an M2DFG --------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ComputeWHalf subroutine of AMR-Godunov expressed as a loop chain and
/// the Figure 13 -> Figure 14 optimization expressed as an M2DFG
/// transformation sequence: each qlu pair is read-reduction fused, then
/// producer-consumer fused with its Riemann solve, collapsing the WTemp and
/// corrected-state value sets to scalars. Arrays model one component; the
/// kernels in Godunov.h carry five.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GODUNOV_GODUNOVGRAPH_H
#define LCDFG_GODUNOV_GODUNOVGRAPH_H

#include "codegen/Interpreter.h"
#include "graph/Graph.h"
#include "ir/LoopChain.h"

namespace lcdfg {
namespace gdnv {

/// Builds the Figure 13 loop chain: 6 PPM nests, 3 first Riemann solves,
/// 12 transverse qlu nests, 6 second Riemann solves, 6 final qlu nests,
/// and 3 final Riemann solves.
ir::LoopChain buildComputeWHalfChain();

/// Applies the Figure 14 fusion sequence to the initial graph of
/// buildComputeWHalfChain(). Aborts on an illegal step (the sequence is
/// known-legal).
void applyGodunovFusion(graph::Graph &G);

/// Registers interpreter kernels for a chain built by
/// buildComputeWHalfChain(), so the Figure 13/14 schedules execute.
void registerKernels(ir::LoopChain &Chain,
                     codegen::KernelRegistry &Registry);

} // namespace gdnv
} // namespace lcdfg

#endif // LCDFG_GODUNOV_GODUNOVGRAPH_H
