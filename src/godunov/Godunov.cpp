//===- godunov/Godunov.cpp ------------------------------------------------===//

#include "godunov/Godunov.h"

#include "godunov/Kernels.h"
#include "minifluxdiv/FaceOps.h"
#include "runtime/Parallel.h"

#include <cassert>

using namespace lcdfg;
using namespace lcdfg::gdnv;
using mfd::Buf3;
using rt::Box;

namespace {

/// The two dimensions other than \p D.
void otherDims(int D, int &A, int &B) {
  A = D == 0 ? 1 : 0;
  B = D == 2 ? 1 : 2;
}

/// Stride of dimension \p D (0 = x, 1 = y, 2 = z) in a box.
std::int64_t strideOf(const Box &W, int D) {
  return D == 0 ? W.strideX() : D == 1 ? W.strideY() : W.strideZ();
}

/// Step vector of dimension \p D in (z, y, x) index order.
void stepOf(int D, int &DZ, int &DY, int &DX) {
  DZ = D == 2;
  DY = D == 1;
  DX = D == 0;
}

/// Intermediate stages cover [0, N+1] in every dimension so that every
/// downstream +1 stencil stays in range; see the header chain of needs.
constexpr int regionHi(int N) { return N + 1; } // inclusive

/// Computes WMinus/WPlus/WHalf1 for dimension \p D over the extended
/// region.
void predictorStage(const Box &W, int D, std::vector<Buf3> &WMinus,
                    std::vector<Buf3> &WPlus, std::vector<Buf3> &WHalf1) {
  int Hi = regionHi(W.size());
  std::int64_t S = strideOf(W, D);
  for (int C = 0; C < NumComps; ++C) {
    WMinus[C].resize(0, 0, 0, Hi + 1, Hi + 1, Hi + 1);
    WPlus[C].resize(0, 0, 0, Hi + 1, Hi + 1, Hi + 1);
    WHalf1[C].resize(0, 0, 0, Hi + 1, Hi + 1, Hi + 1);
    const double *P = W.origin(C);
    for (int Z = 0; Z <= Hi; ++Z)
      for (int Y = 0; Y <= Hi; ++Y)
        for (int X = 0; X <= Hi; ++X) {
          const double *Q =
              P + Z * W.strideZ() + Y * W.strideY() + X;
          WMinus[C].at(Z, Y, X) = ppmMinus(Q[-S], Q[0], Q[S]);
          WPlus[C].at(Z, Y, X) = ppmPlus(Q[-S], Q[0], Q[S]);
        }
    for (int Z = 0; Z <= Hi; ++Z)
      for (int Y = 0; Y <= Hi; ++Y)
        for (int X = 0; X <= Hi; ++X)
          WHalf1[C].at(Z, Y, X) =
              riemann(WMinus[C].at(Z, Y, X), WPlus[C].at(Z, Y, X));
  }
}

} // namespace

std::vector<WHalfSet> gdnv::makeOutputs(int NumBoxes, int N) {
  std::vector<WHalfSet> Out;
  Out.reserve(NumBoxes);
  for (int I = 0; I < NumBoxes; ++I)
    Out.push_back(WHalfSet{Box(N, 0, NumComps), Box(N, 0, NumComps),
                           Box(N, 0, NumComps)});
  return Out;
}

void gdnv::computeWHalfOriginal(const Box &W, WHalfSet &Out) {
  int N = W.size();
  int Hi = regionHi(N);

  // Stage 1-2: predictors and first Riemann solves, all materialized.
  std::vector<std::vector<Buf3>> WMinus(3, std::vector<Buf3>(NumComps));
  std::vector<std::vector<Buf3>> WPlus(3, std::vector<Buf3>(NumComps));
  std::vector<std::vector<Buf3>> WHalf1(3, std::vector<Buf3>(NumComps));
  for (int D = 0; D < 3; ++D)
    predictorStage(W, D, WMinus[D], WPlus[D], WHalf1[D]);

  // Stage 3-4: transverse corrections per ordered pair (D1 corrected by
  // D2), WTemp arrays materialized, then the second Riemann solves.
  // WHalf2[D1][D2] is indexed by the corrected dimension D1 and the
  // transverse dimension D2.
  std::vector<std::vector<std::vector<Buf3>>> WHalf2(
      3, std::vector<std::vector<Buf3>>(3, std::vector<Buf3>(NumComps)));
  std::vector<Buf3> WTm(NumComps), WTp(NumComps);
  for (int D1 = 0; D1 < 3; ++D1)
    for (int D2 = 0; D2 < 3; ++D2) {
      if (D1 == D2)
        continue;
      int DZ, DY, DX;
      stepOf(D2, DZ, DY, DX);
      for (int C = 0; C < NumComps; ++C) {
        WTm[C].resize(0, 0, 0, Hi + 1, Hi + 1, Hi + 1);
        WTp[C].resize(0, 0, 0, Hi + 1, Hi + 1, Hi + 1);
        WHalf2[D1][D2][C].resize(0, 0, 0, Hi + 1, Hi + 1, Hi + 1);
        for (int Z = 0; Z < Hi; ++Z)
          for (int Y = 0; Y < Hi; ++Y)
            for (int X = 0; X < Hi; ++X) {
              const Buf3 &H = WHalf1[D2][C];
              WTm[C].at(Z, Y, X) =
                  qlu(WMinus[D1][C].at(Z, Y, X), H.at(Z, Y, X),
                      H.at(Z + DZ, Y + DY, X + DX));
              WTp[C].at(Z, Y, X) =
                  qlu(WPlus[D1][C].at(Z, Y, X), H.at(Z, Y, X),
                      H.at(Z + DZ, Y + DY, X + DX));
            }
        for (int Z = 0; Z < Hi; ++Z)
          for (int Y = 0; Y < Hi; ++Y)
            for (int X = 0; X < Hi; ++X)
              WHalf2[D1][D2][C].at(Z, Y, X) =
                  riemann(WTm[C].at(Z, Y, X), WTp[C].at(Z, Y, X));
      }
    }

  // Stage 5-6: final corrections from both transverse half-states, then
  // the final Riemann solves into the outputs.
  std::vector<Buf3> WM2(NumComps), WP2(NumComps);
  for (int D = 0; D < 3; ++D) {
    int A, B;
    otherDims(D, A, B);
    int AZ, AY, AX, BZ, BY, BX;
    stepOf(A, AZ, AY, AX);
    stepOf(B, BZ, BY, BX);
    for (int C = 0; C < NumComps; ++C) {
      WM2[C].resize(0, 0, 0, N, N, N);
      WP2[C].resize(0, 0, 0, N, N, N);
      const Buf3 &HA = WHalf2[A][B][C];
      const Buf3 &HB = WHalf2[B][A][C];
      for (int Z = 0; Z < N; ++Z)
        for (int Y = 0; Y < N; ++Y)
          for (int X = 0; X < N; ++X) {
            WM2[C].at(Z, Y, X) = qlu2(
                WMinus[D][C].at(Z, Y, X), HA.at(Z, Y, X),
                HA.at(Z + AZ, Y + AY, X + AX), HB.at(Z, Y, X),
                HB.at(Z + BZ, Y + BY, X + BX));
            WP2[C].at(Z, Y, X) = qlu2(
                WPlus[D][C].at(Z, Y, X), HA.at(Z, Y, X),
                HA.at(Z + AZ, Y + AY, X + AX), HB.at(Z, Y, X),
                HB.at(Z + BZ, Y + BY, X + BX));
          }
      for (int Z = 0; Z < N; ++Z)
        for (int Y = 0; Y < N; ++Y)
          for (int X = 0; X < N; ++X)
            Out[D].at(C, Z, Y, X) =
                riemann(WM2[C].at(Z, Y, X), WP2[C].at(Z, Y, X));
    }
  }
}

void gdnv::computeWHalfFused(const Box &W, WHalfSet &Out) {
  int N = W.size();
  int Hi = regionHi(N);

  std::vector<std::vector<Buf3>> WMinus(3, std::vector<Buf3>(NumComps));
  std::vector<std::vector<Buf3>> WPlus(3, std::vector<Buf3>(NumComps));
  std::vector<std::vector<Buf3>> WHalf1(3, std::vector<Buf3>(NumComps));
  for (int D = 0; D < 3; ++D)
    predictorStage(W, D, WMinus[D], WPlus[D], WHalf1[D]);

  // Fused stage 3+4 (Figure 14): the qlu pair and its Riemann solve run in
  // one loop; WTemp collapses to two scalars per point.
  std::vector<std::vector<std::vector<Buf3>>> WHalf2(
      3, std::vector<std::vector<Buf3>>(3, std::vector<Buf3>(NumComps)));
  for (int D1 = 0; D1 < 3; ++D1)
    for (int D2 = 0; D2 < 3; ++D2) {
      if (D1 == D2)
        continue;
      int DZ, DY, DX;
      stepOf(D2, DZ, DY, DX);
      for (int C = 0; C < NumComps; ++C) {
        WHalf2[D1][D2][C].resize(0, 0, 0, Hi + 1, Hi + 1, Hi + 1);
        const Buf3 &H = WHalf1[D2][C];
        for (int Z = 0; Z < Hi; ++Z)
          for (int Y = 0; Y < Hi; ++Y)
            for (int X = 0; X < Hi; ++X) {
              double H0 = H.at(Z, Y, X);
              double H1 = H.at(Z + DZ, Y + DY, X + DX);
              double Tm = qlu(WMinus[D1][C].at(Z, Y, X), H0, H1);
              double Tp = qlu(WPlus[D1][C].at(Z, Y, X), H0, H1);
              WHalf2[D1][D2][C].at(Z, Y, X) = riemann(Tm, Tp);
            }
      }
    }

  // Fused stage 5+6: corrected states collapse to scalars feeding the
  // final Riemann solve directly.
  for (int D = 0; D < 3; ++D) {
    int A, B;
    otherDims(D, A, B);
    int AZ, AY, AX, BZ, BY, BX;
    stepOf(A, AZ, AY, AX);
    stepOf(B, BZ, BY, BX);
    for (int C = 0; C < NumComps; ++C) {
      const Buf3 &HA = WHalf2[A][B][C];
      const Buf3 &HB = WHalf2[B][A][C];
      for (int Z = 0; Z < N; ++Z)
        for (int Y = 0; Y < N; ++Y)
          for (int X = 0; X < N; ++X) {
            double A0 = HA.at(Z, Y, X);
            double A1 = HA.at(Z + AZ, Y + AY, X + AX);
            double B0 = HB.at(Z, Y, X);
            double B1 = HB.at(Z + BZ, Y + BY, X + BX);
            double M2 = qlu2(WMinus[D][C].at(Z, Y, X), A0, A1, B0, B1);
            double P2 = qlu2(WPlus[D][C].at(Z, Y, X), A0, A1, B0, B1);
            Out[D].at(C, Z, Y, X) = riemann(M2, P2);
          }
    }
  }
}

void gdnv::runOriginal(const std::vector<Box> &In, std::vector<WHalfSet> &Out,
                       int Threads) {
  assert(In.size() == Out.size() && "box count mismatch");
  rt::parallelFor(static_cast<int>(In.size()), Threads,
                  [&](int I) { computeWHalfOriginal(In[I], Out[I]); });
}

void gdnv::runFused(const std::vector<Box> &In, std::vector<WHalfSet> &Out,
                    int Threads) {
  assert(In.size() == Out.size() && "box count mismatch");
  rt::parallelFor(static_cast<int>(In.size()), Threads,
                  [&](int I) { computeWHalfFused(In[I], Out[I]); });
}

long gdnv::temporaryElementsOriginal(int N) {
  long Region = static_cast<long>(N + 2) * (N + 2) * (N + 2);
  long Interior = static_cast<long>(N) * N * N;
  // WMinus/WPlus (6), WHalf1 (3), WTemp pair (2), WHalf2 (6), WM2/WP2 (2),
  // each x components.
  return NumComps * ((6L + 3L + 2L + 6L) * Region + 2L * Interior);
}

long gdnv::temporaryElementsFused(int N) {
  long Region = static_cast<long>(N + 2) * (N + 2) * (N + 2);
  // The WTemp and corrected-state arrays are gone.
  return NumComps * (6L + 3L + 6L) * Region;
}

double gdnv::verifySchedules(int N, std::uint64_t Seed) {
  Box W(N, GhostDepth, NumComps);
  W.fillPseudoRandom(Seed);
  std::vector<WHalfSet> A = makeOutputs(1, N);
  std::vector<WHalfSet> B = makeOutputs(1, N);
  computeWHalfOriginal(W, A[0]);
  computeWHalfFused(W, B[0]);
  double Max = 0.0;
  for (int D = 0; D < 3; ++D)
    Max = std::max(Max, rt::maxRelDiff(A[0][D], B[0][D]));
  return Max;
}
