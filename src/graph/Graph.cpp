//===- graph/Graph.cpp ----------------------------------------------------===//

#include "graph/Graph.h"

#include "support/Errors.h"
#include "support/Status.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace lcdfg;
using namespace lcdfg::graph;

NodeId Graph::addValueNode(ValueNode V) {
  Values.push_back(std::move(V));
  return static_cast<NodeId>(Values.size() - 1);
}

NodeId Graph::addStmtNode(StmtNode S) {
  Stmts.push_back(std::move(S));
  return static_cast<NodeId>(Stmts.size() - 1);
}

void Graph::addReadEdge(NodeId Value, NodeId Stmt, unsigned Multiplicity) {
  assert(Value < Values.size() && Stmt < Stmts.size() && "bad edge endpoint");
  Edges.push_back(
      Edge{Value, Stmt, EndpointKind::Value, Multiplicity, false});
}

void Graph::addWriteEdge(NodeId Stmt, NodeId Value) {
  assert(Value < Values.size() && Stmt < Stmts.size() && "bad edge endpoint");
  Edges.push_back(Edge{Stmt, Value, EndpointKind::Stmt, 1, false});
}

NodeId Graph::findValue(std::string_view Array) const {
  for (NodeId I = 0; I < Values.size(); ++I)
    if (!Values[I].Dead && Values[I].Array == Array)
      return I;
  return InvalidNode;
}

NodeId Graph::findStmt(std::string_view Label) const {
  for (NodeId I = 0; I < Stmts.size(); ++I)
    if (!Stmts[I].Dead && Stmts[I].Label == Label)
      return I;
  return InvalidNode;
}

NodeId Graph::stmtOfNest(unsigned NestId) const {
  for (NodeId I = 0; I < Stmts.size(); ++I) {
    if (Stmts[I].Dead)
      continue;
    for (unsigned N : Stmts[I].Nests)
      if (N == NestId)
        return I;
  }
  return InvalidNode;
}

std::vector<const Edge *> Graph::readsOf(NodeId StmtId) const {
  std::vector<const Edge *> Result;
  for (const Edge &E : Edges)
    if (!E.Dead && E.FromKind == EndpointKind::Value && E.To == StmtId)
      Result.push_back(&E);
  return Result;
}

std::vector<const Edge *> Graph::readersOf(NodeId ValueId) const {
  std::vector<const Edge *> Result;
  for (const Edge &E : Edges)
    if (!E.Dead && E.FromKind == EndpointKind::Value && E.From == ValueId)
      Result.push_back(&E);
  return Result;
}

NodeId Graph::producerOf(NodeId ValueId) const {
  for (const Edge &E : Edges)
    if (!E.Dead && E.FromKind == EndpointKind::Stmt && E.To == ValueId)
      return E.From;
  return InvalidNode;
}

std::vector<NodeId> Graph::outputsOf(NodeId StmtId) const {
  std::vector<NodeId> Result;
  for (const Edge &E : Edges)
    if (!E.Dead && E.FromKind == EndpointKind::Stmt && E.From == StmtId)
      Result.push_back(E.To);
  return Result;
}

unsigned Graph::outDegree(NodeId ValueId) const {
  unsigned Degree = 0;
  for (const Edge *E : readersOf(ValueId))
    Degree += E->Multiplicity;
  return Degree;
}

unsigned Graph::inDegree(NodeId StmtId) const {
  unsigned Degree = 0;
  for (const Edge *E : readsOf(StmtId))
    Degree += E->Multiplicity;
  return Degree;
}

std::vector<DataflowEdge> Graph::dataflowEdges() const {
  std::vector<DataflowEdge> Result;
  // Chains are single-assignment at the nest level: each array is written
  // by at most one nest, so a read's producer is the unique writer.
  std::map<std::string, unsigned, std::less<>> WriterOf;
  for (unsigned N = 0; N < Chain->numNests(); ++N)
    WriterOf.emplace(Chain->nest(N).Write.Array, N);
  for (unsigned N = 0; N < Chain->numNests(); ++N) {
    NodeId Consumer = stmtOfNest(N);
    if (Consumer == InvalidNode)
      continue;
    for (const ir::Access &R : Chain->nest(N).Reads) {
      auto It = WriterOf.find(R.Array);
      if (It == WriterOf.end() || It->second == N)
        continue; // Chain input (or self-stencil): no cross-nest edge.
      DataflowEdge E;
      E.ProducerNest = It->second;
      E.ConsumerNest = N;
      E.Array = R.Array;
      E.SameNode = stmtOfNest(It->second) == Consumer;
      Result.push_back(std::move(E));
    }
  }
  return Result;
}

std::vector<NodeId> Graph::scheduleOrder() const {
  std::vector<NodeId> Order;
  for (NodeId I = 0; I < Stmts.size(); ++I)
    if (!Stmts[I].Dead)
      Order.push_back(I);
  std::stable_sort(Order.begin(), Order.end(), [&](NodeId A, NodeId B) {
    if (Stmts[A].Row != Stmts[B].Row)
      return Stmts[A].Row < Stmts[B].Row;
    return Stmts[A].Col < Stmts[B].Col;
  });
  return Order;
}

int Graph::maxRow() const {
  int Max = 0;
  for (const StmtNode &S : Stmts)
    if (!S.Dead)
      Max = std::max(Max, S.Row);
  for (const ValueNode &V : Values)
    if (!V.Dead)
      Max = std::max(Max, V.Row);
  return Max;
}

void Graph::compactColumns() {
  std::map<int, std::vector<NodeId>> StmtsByRow;
  for (NodeId I = 0; I < Stmts.size(); ++I)
    if (!Stmts[I].Dead)
      StmtsByRow[Stmts[I].Row].push_back(I);
  for (auto &[Row, Ids] : StmtsByRow) {
    (void)Row;
    std::stable_sort(Ids.begin(), Ids.end(), [&](NodeId A, NodeId B) {
      return Stmts[A].Col < Stmts[B].Col;
    });
    int Col = 0;
    for (NodeId Id : Ids)
      Stmts[Id].Col = Col++;
  }
}

void Graph::compactRows() {
  std::set<int> UsedRows;
  for (const StmtNode &S : Stmts)
    if (!S.Dead)
      UsedRows.insert(S.Row);
  std::map<int, int> Renumber;
  // Row 0 is reserved for chain inputs even when no statement sits there.
  int Next = 1;
  for (int Row : UsedRows)
    Renumber[Row] = Next++;
  for (StmtNode &S : Stmts)
    if (!S.Dead)
      S.Row = Renumber[S.Row];
  for (NodeId I = 0; I < Values.size(); ++I) {
    if (Values[I].Dead)
      continue;
    NodeId Producer = producerOf(I);
    Values[I].Row = Producer == InvalidNode ? 0 : Stmts[Producer].Row;
  }
}

void Graph::verify() const {
  for (const Edge &E : Edges) {
    if (E.Dead)
      continue;
    if (E.FromKind == EndpointKind::Value) {
      if (E.From >= Values.size() || E.To >= Stmts.size() ||
          Values[E.From].Dead || Stmts[E.To].Dead)
        support::raise(support::ErrorCode::GraphInvalid,
                       "graph verify: dangling read edge");
    } else {
      if (E.From >= Stmts.size() || E.To >= Values.size() ||
          Stmts[E.From].Dead || Values[E.To].Dead)
        support::raise(support::ErrorCode::GraphInvalid,
                       "graph verify: dangling write edge");
    }
  }
  // Each temporary value has at most one producer; persistent outputs may
  // be accumulated into by several statement nodes (e.g. Dx and Dy both
  // updating the cell-centered result in MiniFluxDiv).
  std::vector<unsigned> Producers(Values.size(), 0);
  for (const Edge &E : Edges)
    if (!E.Dead && E.FromKind == EndpointKind::Stmt)
      ++Producers[E.To];
  for (NodeId I = 0; I < Values.size(); ++I)
    if (!Values[I].Dead && !Values[I].Persistent && Producers[I] > 1)
      support::raise(support::ErrorCode::GraphInvalid,
                     "graph verify: temporary value " + Values[I].Array +
                         " has multiple producers");
  // Rows respect dataflow: a consumer's row is strictly after its
  // producer's row.
  for (NodeId S = 0; S < Stmts.size(); ++S) {
    if (Stmts[S].Dead)
      continue;
    for (const Edge *E : readsOf(S)) {
      NodeId Producer = producerOf(E->From);
      // A fused node consumes its own internalized values: not a row-order
      // constraint.
      if (Producer == InvalidNode || Producer == S)
        continue;
      if (Stmts[Producer].Row >= Stmts[S].Row)
        support::raise(support::ErrorCode::GraphInvalid,
                       "graph verify: row order violates dataflow from " +
                           Stmts[Producer].Label + " to " + Stmts[S].Label);
    }
  }
}
