//===- graph/Transforms.h - M2DFG scheduling transformations ----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph operations of Section 4: reschedule, producer-consumer fusion,
/// and read-reduction fusion. Each corresponds to a transformation of the
/// generated code; fusion shifts member statement sets automatically to keep
/// execution legal ("any shifting will be automatically applied", §3.2).
///
/// Transformations validate their preconditions and return an error without
/// mutating the graph when they would be illegal.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GRAPH_TRANSFORMS_H
#define LCDFG_GRAPH_TRANSFORMS_H

#include "graph/Graph.h"
#include "support/Status.h"

#include <string>

namespace lcdfg {
namespace graph {

/// Outcome of a transformation attempt.
struct TransformResult {
  bool Ok = true;
  std::string Error;

  explicit operator bool() const { return Ok; }
  static TransformResult success() { return {}; }
  static TransformResult failure(std::string Msg) {
    return TransformResult{false, std::move(Msg)};
  }

  /// Folds the legacy Ok/Error pair into the common diagnostics
  /// vocabulary: ok(), or an E005-illegal-transform Status.
  support::Status status() const {
    if (Ok)
      return support::Status::ok();
    return support::Status::error(support::ErrorCode::IllegalTransform, Error);
  }
};

/// Moves statement node \p Stmt to \p NewRow (Section 4.1). Legal when every
/// producer feeding \p Stmt sits in an earlier row and every consumer of its
/// outputs sits in a later row.
TransformResult reschedule(Graph &G, NodeId Stmt, int NewRow);

/// Producer-consumer fusion (Section 4.2): fuses \p Consumer into
/// \p Producer, which must produce at least one temporary value read by
/// \p Consumer. Consumer statement sets are shifted to respect the stencil
/// dependences; shared temporaries whose readers all end up inside the
/// fused node are internalized (enabling storage reduction). The fused node
/// takes the consumer's schedule position, so any other reader of the
/// producer's outputs must be scheduled after the consumer.
TransformResult fuseProducerConsumer(Graph &G, NodeId Producer,
                                     NodeId Consumer);

/// Read-reduction fusion (Section 4.2): fuses \p B into \p A when the two
/// nodes share at least one read value (or accumulate into a common
/// persistent output) and no dataflow connects them. Each fused statement
/// set keeps its own output. With \p CollapseShared (the default), edges
/// from shared values collapse to a single stream — the read reduction;
/// passing false merely co-schedules the nodes (node coalescing).
TransformResult fuseReadReduction(Graph &G, NodeId A, NodeId B,
                                  bool CollapseShared = true);

/// Collapses all read edges from \p Value into \p Stmt to a single stream
/// (an explicit intra-node read reduction).
TransformResult collapseReads(Graph &G, NodeId Value, NodeId Stmt);

/// Loop interchange on a statement node: executes the node's loops in
/// \p Order (domain-dimension indices, outermost first). Legal when every
/// intra-node dependence distance stays lexicographically non-negative in
/// the new order. Changes reuse distances — the "larger set of intra-tile
/// schedules" of Section 5.2 — so run storage reduction afterwards.
TransformResult interchange(Graph &G, NodeId Stmt,
                            const std::vector<unsigned> &Order);

} // namespace graph
} // namespace lcdfg

#endif // LCDFG_GRAPH_TRANSFORMS_H
