//===- graph/DotExport.h - Graphviz rendering of M2DFGs ---------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an M2DFG in Graphviz dot syntax, following the paper's visual
/// conventions: value nodes as rectangles (persistent ones shaded gray),
/// statement nodes as inverted triangles, layout rows as ranks, and value
/// sizes as labels. This is the "visual interface to aid the performance
/// expert" of Section 1.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GRAPH_DOTEXPORT_H
#define LCDFG_GRAPH_DOTEXPORT_H

#include "graph/CostModel.h"
#include "graph/Graph.h"

#include <string>

namespace lcdfg {
namespace graph {

/// Options for dot rendering.
struct DotOptions {
  /// Annotate each rank with the row's data-read cost and width.
  bool ShowCosts = true;
  /// Graph title.
  std::string Title;
};

/// Returns the graph in dot syntax.
std::string toDot(const Graph &G, const DotOptions &Options = {});

/// Plain-text schedule dump: one line per row listing statement nodes and
/// the values they produce.
std::string toText(const Graph &G);

} // namespace graph
} // namespace lcdfg

#endif // LCDFG_GRAPH_DOTEXPORT_H
