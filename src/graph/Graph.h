//===- graph/Graph.h - Modified macro dataflow graphs -----------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modified macro dataflow graph (M2DFG) of Section 3: a tuple
/// G = (V, S, E) of value nodes, statement nodes, and directed edges. Value
/// nodes carry symbolic cardinalities; statement nodes group all iterations
/// of one or more loop nests; graph layout (rows) expresses the execution
/// schedule, executed top-to-bottom and left-to-right.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GRAPH_GRAPH_H
#define LCDFG_GRAPH_GRAPH_H

#include "ir/LoopChain.h"
#include "poly/BoxSet.h"
#include "support/Polynomial.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lcdfg {
namespace graph {

using NodeId = unsigned;
inline constexpr NodeId InvalidNode = ~0u;

/// A value node: a set of values mapped to memory (Section 3.1). Persistent
/// value sets are accessed outside the chain and keep their storage mapping;
/// temporary value sets may be internalized by producer-consumer fusion and
/// have their storage reduced.
struct ValueNode {
  std::string Array;
  Polynomial Size;         ///< Current (possibly reduced) cardinality.
  Polynomial OriginalSize; ///< Single-assignment cardinality.
  bool Persistent = false;
  /// True once producer-consumer fusion pulled this value inside a statement
  /// node; its storage is then sized by reuse distance (Section 4.4).
  bool Internalized = false;
  int Row = 0;
  int Col = 0;
  bool Dead = false; ///< Removed from the graph (kept for stable ids).
};

/// A statement node: one or more loop-nest statement sets co-scheduled in a
/// single (possibly fused) iteration space.
struct StmtNode {
  std::string Label;
  /// Indices into the originating LoopChain, in intra-node execution order.
  std::vector<unsigned> Nests;
  /// Per-nest lexicographic shift applied to make fusion legal (same arity
  /// as the nest's domain). Empty means zero shift.
  std::vector<std::vector<std::int64_t>> Shifts;
  /// The fused iteration space (hull of member domains after shifting).
  poly::BoxSet Domain;
  /// Loop execution order as domain-dimension indices, outermost first;
  /// empty means the domain's natural order. Set by the interchange
  /// transformation; changes reuse distances and generated loop order.
  std::vector<unsigned> DimOrder;

  /// The execution order (explicit or natural).
  std::vector<unsigned> executionOrder() const {
    if (!DimOrder.empty())
      return DimOrder;
    std::vector<unsigned> Order(Domain.rank());
    for (unsigned D = 0; D < Domain.rank(); ++D)
      Order[D] = D;
    return Order;
  }
  int Row = 0;
  int Col = 0;
  bool Dead = false;
};

/// Edge endpoints name either a value or a statement node.
enum class EndpointKind { Value, Stmt };

/// A directed edge. Read edges run value -> stmt; write edges stmt -> value.
/// Multiplicity counts how many statement sets inside the consumer read the
/// value; read-reduction fusion collapses it to 1 (Section 4.2).
struct Edge {
  NodeId From = InvalidNode;
  NodeId To = InvalidNode;
  EndpointKind FromKind = EndpointKind::Value;
  unsigned Multiplicity = 1;
  bool Dead = false;
};

/// One nest-level producer→consumer dependence of the chain as currently
/// scheduled: the consumer nest reads \p Array, which the producer nest
/// writes. Nest ids are stable across every transformation (fusion merges
/// statement *nodes*, not nests), so the verifier uses these to check that
/// a transformed schedule preserves the original M2DFG's dataflow.
struct DataflowEdge {
  unsigned ProducerNest = 0;
  unsigned ConsumerNest = 0;
  std::string Array;
  /// True when both nests are members of the same (fused) statement node;
  /// the dependence is then internal and ordered by the fusion shifts,
  /// which the plan-level simulation checks.
  bool SameNode = false;
};

/// The M2DFG. Node ids are stable across transformations; removed nodes are
/// tombstoned with the Dead flag.
class Graph {
public:
  explicit Graph(const ir::LoopChain &Chain) : Chain(&Chain) {}

  const ir::LoopChain &chain() const { return *Chain; }

  NodeId addValueNode(ValueNode V);
  NodeId addStmtNode(StmtNode S);
  void addReadEdge(NodeId Value, NodeId Stmt, unsigned Multiplicity = 1);
  void addWriteEdge(NodeId Stmt, NodeId Value);

  unsigned numValueNodes() const {
    return static_cast<unsigned>(Values.size());
  }
  unsigned numStmtNodes() const { return static_cast<unsigned>(Stmts.size()); }

  const ValueNode &value(NodeId Id) const { return Values[Id]; }
  ValueNode &value(NodeId Id) { return Values[Id]; }
  const StmtNode &stmt(NodeId Id) const { return Stmts[Id]; }
  StmtNode &stmt(NodeId Id) { return Stmts[Id]; }
  const std::vector<Edge> &edges() const { return Edges; }
  std::vector<Edge> &edges() { return Edges; }

  /// Id of the value node for \p Array, or InvalidNode.
  NodeId findValue(std::string_view Array) const;
  /// Id of the statement node whose label is \p Label, or InvalidNode.
  NodeId findStmt(std::string_view Label) const;
  /// Id of the live statement node containing chain nest \p NestId.
  NodeId stmtOfNest(unsigned NestId) const;

  /// Live read edges into statement \p Id.
  std::vector<const Edge *> readsOf(NodeId StmtId) const;
  /// Live read edges out of value \p Id.
  std::vector<const Edge *> readersOf(NodeId ValueId) const;
  /// Producer statement of value \p Id, or InvalidNode for chain inputs.
  NodeId producerOf(NodeId ValueId) const;
  /// Values written by statement \p Id.
  std::vector<NodeId> outputsOf(NodeId StmtId) const;

  /// Sum of read-edge multiplicities leaving value \p Id (the out-degree
  /// used by the cost model).
  unsigned outDegree(NodeId ValueId) const;
  /// Sum of read-edge multiplicities entering statement \p Id.
  unsigned inDegree(NodeId StmtId) const;

  /// Every nest-level producer→consumer dependence of the chain, resolved
  /// against the current node membership (see DataflowEdge). Derived from
  /// the chain's accesses, not from the (possibly tombstoned) edge list,
  /// so it is exactly the original M2DFG dataflow re-keyed to live nodes.
  std::vector<DataflowEdge> dataflowEdges() const;

  /// Live statement nodes ordered by (row, col): the execution schedule.
  std::vector<NodeId> scheduleOrder() const;
  /// Highest row index in use.
  int maxRow() const;

  /// Renumbers columns within each row to be consecutive (display helper).
  void compactColumns();
  /// Removes empty rows, renumbering so rows are consecutive from 0.
  void compactRows();

  /// Asserts basic invariants (every live edge touches live nodes, each
  /// value has at most one producer, rows respect dataflow).
  void verify() const;

private:
  const ir::LoopChain *Chain;
  std::vector<ValueNode> Values;
  std::vector<StmtNode> Stmts;
  std::vector<Edge> Edges;
};

} // namespace graph
} // namespace lcdfg

#endif // LCDFG_GRAPH_GRAPH_H
