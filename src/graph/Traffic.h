//===- graph/Traffic.h - Exact traffic vs the cost model --------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validation of the S_R cost model against ground truth. S_R approximates
/// the data read as (value-set size) x (out-degree); the exact quantity it
/// models is, per read edge, the number of *distinct* elements the
/// consumer's statement sets load from the value set. This analysis
/// enumerates those footprints at a concrete size, so tests and benches
/// can quantify where the approximation is exact (the series schedules)
/// and where it deviates (e.g. union-shaped footprints after read
/// reduction).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GRAPH_TRAFFIC_H
#define LCDFG_GRAPH_TRAFFIC_H

#include "graph/Graph.h"

#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace lcdfg {
namespace graph {

/// Exact per-edge traffic at a concrete parameter value.
struct TrafficReport {
  /// (value array, consumer label) -> distinct elements read.
  std::map<std::pair<std::string, std::string>, std::int64_t> EdgeReads;
  /// Total distinct-element reads over all edges.
  std::int64_t Total = 0;
  /// S_R evaluated at the same size, for comparison.
  std::int64_t ModelTotal = 0;

  /// ModelTotal / Total (1.0 = the model is exact). A graph with no
  /// measured traffic is exact only when the model also predicts zero;
  /// a nonzero prediction against zero ground truth reports infinity
  /// rather than masquerading as exact.
  double modelAccuracy() const {
    if (Total == 0)
      return ModelTotal == 0 ? 1.0
                             : std::numeric_limits<double>::infinity();
    return static_cast<double>(ModelTotal) / static_cast<double>(Total);
  }
};

/// Enumerates the exact read traffic of \p G at size \p NVal. Edge
/// multiplicity is honored: a collapsed (read-reduced) edge streams its
/// footprint once, an uncollapsed one once per statement set.
TrafficReport measureTraffic(const Graph &G, std::int64_t NVal);

} // namespace graph
} // namespace lcdfg

#endif // LCDFG_GRAPH_TRAFFIC_H
