//===- graph/Transforms.cpp -----------------------------------------------===//

#include "graph/Transforms.h"

#include "support/Errors.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

bool liveStmt(const Graph &G, NodeId Id) {
  return Id < G.numStmtNodes() && !G.stmt(Id).Dead;
}

int nextColInRow(const Graph &G, int Row) {
  int Col = 0;
  for (NodeId I = 0; I < G.numStmtNodes(); ++I)
    if (!G.stmt(I).Dead && G.stmt(I).Row == Row)
      Col = std::max(Col, G.stmt(I).Col + 1);
  return Col;
}

/// Componentwise max accumulation: Dst = max(Dst, Src).
void maxInto(std::vector<std::int64_t> &Dst,
             const std::vector<std::int64_t> &Src) {
  assert(Dst.size() == Src.size() && "shift arity mismatch");
  for (std::size_t I = 0; I < Dst.size(); ++I)
    Dst[I] = std::max(Dst[I], Src[I]);
}

/// Returns the index (within \p Node's Nests) of the member nest writing
/// \p Array, or -1.
int memberWriting(const Graph &G, const StmtNode &Node,
                  std::string_view Array) {
  for (std::size_t I = 0; I < Node.Nests.size(); ++I)
    if (G.chain().nest(Node.Nests[I]).Write.Array == Array)
      return static_cast<int>(I);
  return -1;
}

/// Recomputes a node's fused domain as the hull of its shifted member
/// domains.
void recomputeDomain(Graph &G, NodeId Id) {
  StmtNode &Node = G.stmt(Id);
  std::optional<poly::BoxSet> Hull;
  for (std::size_t I = 0; I < Node.Nests.size(); ++I) {
    poly::BoxSet D =
        G.chain().nest(Node.Nests[I]).Domain.translated(Node.Shifts[I]);
    Hull = Hull ? Hull->hull(D) : D;
  }
  Node.Domain = *Hull;
}

/// Marks every temporary produced by \p Node whose readers are all \p Node
/// itself as internalized.
void internalizeCaptured(Graph &G, NodeId Node) {
  for (NodeId V : G.outputsOf(Node)) {
    ValueNode &Value = G.value(V);
    if (Value.Persistent)
      continue;
    bool AllInside = true;
    for (const Edge *E : G.readersOf(V))
      AllInside &= E->To == Node;
    if (AllInside && !G.readersOf(V).empty())
      Value.Internalized = true;
  }
}

/// Moves every edge endpoint on statement \p From to statement \p To,
/// merging parallel read edges by summing multiplicities.
void repointEdges(Graph &G, NodeId From, NodeId To) {
  for (Edge &E : G.edges()) {
    if (E.Dead)
      continue;
    if (E.FromKind == EndpointKind::Value && E.To == From) {
      // Merge with an existing read edge from the same value if present.
      Edge *Existing = nullptr;
      for (Edge &F : G.edges())
        if (!F.Dead && &F != &E && F.FromKind == EndpointKind::Value &&
            F.From == E.From && F.To == To)
          Existing = &F;
      if (Existing) {
        Existing->Multiplicity += E.Multiplicity;
        E.Dead = true;
      } else {
        E.To = To;
      }
    } else if (E.FromKind == EndpointKind::Stmt && E.From == From) {
      E.From = To;
    }
  }
}

} // namespace

TransformResult graph::reschedule(Graph &G, NodeId Stmt, int NewRow) {
  if (!liveStmt(G, Stmt))
    return TransformResult::failure("reschedule: no such statement node");
  if (NewRow < 1)
    return TransformResult::failure(
        "reschedule: row 0 is reserved for chain inputs");
  for (const Edge *E : G.readsOf(Stmt)) {
    NodeId Producer = G.producerOf(E->From);
    if (Producer != InvalidNode && Producer != Stmt &&
        G.stmt(Producer).Row >= NewRow)
      return TransformResult::failure(
          "reschedule: would execute before producer " +
          G.stmt(Producer).Label);
  }
  for (NodeId V : G.outputsOf(Stmt))
    for (const Edge *E : G.readersOf(V))
      if (E->To != Stmt && G.stmt(E->To).Row <= NewRow)
        return TransformResult::failure(
            "reschedule: would execute after consumer " +
            G.stmt(E->To).Label);
  int NewCol = nextColInRow(G, NewRow);
  G.stmt(Stmt).Row = NewRow;
  G.stmt(Stmt).Col = NewCol;
  G.verify();
  return TransformResult::success();
}

TransformResult graph::fuseProducerConsumer(Graph &G, NodeId Producer,
                                            NodeId Consumer) {
  if (!liveStmt(G, Producer) || !liveStmt(G, Consumer) ||
      Producer == Consumer)
    return TransformResult::failure("fusePC: invalid node pair");
  StmtNode &P = G.stmt(Producer);
  StmtNode &C = G.stmt(Consumer);
  if (P.Domain.rank() != C.Domain.rank())
    return TransformResult::failure("fusePC: iteration space rank mismatch");
  if (P.Row >= C.Row)
    return TransformResult::failure(
        "fusePC: producer must be scheduled before consumer");

  // There must be a temporary value produced by P and read by C.
  bool SharesValue = false;
  for (const Edge *E : G.readsOf(Consumer)) {
    if (G.producerOf(E->From) == Producer && !G.value(E->From).Persistent)
      SharesValue = true;
  }
  if (!SharesValue)
    return TransformResult::failure(
        "fusePC: no temporary value flows from " + P.Label + " to " +
        C.Label);

  // The fused node executes at the consumer's position, so every other
  // reader of the producer's outputs must be scheduled after the consumer.
  for (NodeId V : G.outputsOf(Producer))
    for (const Edge *E : G.readersOf(V))
      if (E->To != Consumer && E->To != Producer &&
          G.stmt(E->To).Row <= C.Row)
        return TransformResult::failure(
            "fusePC: " + G.value(V).Array + " is also read by " +
            G.stmt(E->To).Label + " at or before row " +
            std::to_string(C.Row));

  // Compute the uniform extra shift for C's members: for every read in C of
  // a value written by a member of P, the consumer instance must execute at
  // or after the producing instance.
  unsigned Rank = P.Domain.rank();
  std::vector<std::int64_t> Delta(Rank, 0);
  for (std::size_t CI = 0; CI < C.Nests.size(); ++CI) {
    const ir::LoopNest &CNest = G.chain().nest(C.Nests[CI]);
    for (const ir::Access &R : CNest.Reads) {
      int PI = memberWriting(G, P, R.Array);
      if (PI < 0)
        continue;
      const ir::LoopNest &PNest = G.chain().nest(P.Nests[PI]);
      const std::vector<std::int64_t> &WOff = PNest.Write.Offsets.front();
      for (const auto &ROff : R.Offsets) {
        // Constraint: shift_C + delta >= rOff - wOff + shift_P.
        std::vector<std::int64_t> Needed(Rank);
        for (unsigned D = 0; D < Rank; ++D)
          Needed[D] = ROff[D] - WOff[D] + P.Shifts[PI][D] -
                      C.Shifts[CI][D];
        maxInto(Delta, Needed);
      }
    }
  }

  // Apply: append C's members to P with the adjusted shifts.
  for (std::size_t CI = 0; CI < C.Nests.size(); ++CI) {
    std::vector<std::int64_t> Shift = C.Shifts[CI];
    for (unsigned D = 0; D < Rank; ++D)
      Shift[D] += Delta[D];
    P.Nests.push_back(C.Nests[CI]);
    P.Shifts.push_back(std::move(Shift));
  }
  P.Label += "+" + C.Label;
  P.Row = C.Row;
  P.Col = C.Col;
  repointEdges(G, Consumer, Producer);
  C.Dead = true;
  recomputeDomain(G, Producer);
  internalizeCaptured(G, Producer);

  // Values produced by the fused node move with it for display purposes.
  for (NodeId V = 0; V < G.numValueNodes(); ++V)
    if (!G.value(V).Dead && G.producerOf(V) == Producer)
      G.value(V).Row = P.Row;

  G.verify();
  return TransformResult::success();
}

TransformResult graph::fuseReadReduction(Graph &G, NodeId A, NodeId B,
                                         bool CollapseShared) {
  if (!liveStmt(G, A) || !liveStmt(G, B) || A == B)
    return TransformResult::failure("fuseRR: invalid node pair");
  StmtNode &NA = G.stmt(A);
  StmtNode &NB = G.stmt(B);
  if (NA.Domain.rank() != NB.Domain.rank())
    return TransformResult::failure("fuseRR: iteration space rank mismatch");

  // No dataflow may connect the two nodes (that would be a PC fusion).
  for (const Edge *E : G.readsOf(B))
    if (G.producerOf(E->From) == A)
      return TransformResult::failure(
          "fuseRR: dataflow from " + NA.Label + " to " + NB.Label +
          " (use producer-consumer fusion)");
  for (const Edge *E : G.readsOf(A))
    if (G.producerOf(E->From) == B)
      return TransformResult::failure(
          "fuseRR: dataflow from " + NB.Label + " to " + NA.Label +
          " (use producer-consumer fusion)");

  // They must share at least one read value, or accumulate into a common
  // persistent output (Dx/Dy both updating the cell-centered result).
  bool Shares = false;
  for (const Edge *EA : G.readsOf(A))
    for (const Edge *EB : G.readsOf(B))
      Shares |= EA->From == EB->From;
  for (NodeId VA : G.outputsOf(A))
    for (NodeId VB : G.outputsOf(B))
      Shares |= VA == VB && G.value(VA).Persistent;
  if (!Shares)
    return TransformResult::failure("fuseRR: " + NA.Label + " and " +
                                    NB.Label +
                                    " share no read value or output");

  int TargetRow = std::min(NA.Row, NB.Row);
  // All producers must come before the target row; all consumers after.
  for (NodeId Id : {A, B}) {
    for (const Edge *E : G.readsOf(Id)) {
      NodeId Producer = G.producerOf(E->From);
      // Self-produced (internalized) inputs travel with the node.
      if (Producer == InvalidNode || Producer == A || Producer == B)
        continue;
      if (G.stmt(Producer).Row >= TargetRow)
        return TransformResult::failure(
            "fuseRR: input of " + G.stmt(Id).Label +
            " is not available at row " + std::to_string(TargetRow));
    }
    for (NodeId V : G.outputsOf(Id))
      for (const Edge *E : G.readersOf(V))
        if (E->To != A && E->To != B && G.stmt(E->To).Row <= TargetRow)
          return TransformResult::failure(
              "fuseRR: output of " + G.stmt(Id).Label +
              " is consumed at or before row " + std::to_string(TargetRow));
  }

  // Record which values both nodes read so their streams can collapse.
  std::vector<NodeId> SharedValues;
  for (const Edge *EA : G.readsOf(A))
    for (const Edge *EB : G.readsOf(B))
      if (EA->From == EB->From)
        SharedValues.push_back(EA->From);

  for (std::size_t BI = 0; BI < NB.Nests.size(); ++BI) {
    NA.Nests.push_back(NB.Nests[BI]);
    NA.Shifts.push_back(NB.Shifts[BI]);
  }
  NA.Label += "+" + NB.Label;
  NA.Row = TargetRow;
  repointEdges(G, B, A);
  NB.Dead = true;
  recomputeDomain(G, A);

  // The read reduction itself: one stream per shared value.
  if (CollapseShared) {
    for (NodeId V : SharedValues) {
      TransformResult R = collapseReads(G, V, A);
      if (!R)
        return R;
    }
  }
  G.verify();
  return TransformResult::success();
}

TransformResult graph::collapseReads(Graph &G, NodeId Value, NodeId Stmt) {
  if (!liveStmt(G, Stmt) || Value >= G.numValueNodes() ||
      G.value(Value).Dead)
    return TransformResult::failure("collapseReads: invalid node pair");
  bool Found = false;
  for (Edge &E : G.edges()) {
    if (E.Dead || E.FromKind != EndpointKind::Value || E.From != Value ||
        E.To != Stmt)
      continue;
    if (Found) {
      E.Dead = true;
    } else {
      E.Multiplicity = 1;
      Found = true;
    }
  }
  if (!Found)
    return TransformResult::failure("collapseReads: no such edge");
  return TransformResult::success();
}

TransformResult graph::interchange(Graph &G, NodeId Stmt,
                                   const std::vector<unsigned> &Order) {
  if (!liveStmt(G, Stmt))
    return TransformResult::failure("interchange: no such statement node");
  StmtNode &Node = G.stmt(Stmt);
  unsigned Rank = Node.Domain.rank();
  if (Order.size() != Rank)
    return TransformResult::failure("interchange: order arity mismatch");
  std::vector<bool> Seen(Rank, false);
  for (unsigned D : Order) {
    if (D >= Rank || Seen[D])
      return TransformResult::failure(
          "interchange: order is not a permutation");
    Seen[D] = true;
  }

  // Every intra-node dependence distance must stay lexicographically
  // non-negative under the new order. Distances come from member pairs
  // where one writes what the other reads.
  for (std::size_t P = 0; P < Node.Nests.size(); ++P) {
    const ir::LoopNest &PNest = G.chain().nest(Node.Nests[P]);
    const std::vector<std::int64_t> &WOff = PNest.Write.Offsets.front();
    for (std::size_t C = 0; C < Node.Nests.size(); ++C) {
      const ir::LoopNest &CNest = G.chain().nest(Node.Nests[C]);
      for (const ir::Access &R : CNest.Reads) {
        if (R.Array != PNest.Write.Array)
          continue;
        for (const auto &ROff : R.Offsets) {
          // Sign of the distance in the new order.
          int Sign = 0;
          for (unsigned K = 0; K < Rank && Sign == 0; ++K) {
            unsigned D = Order[K];
            std::int64_t Delta = (Node.Shifts[C][D] - ROff[D]) -
                                 (Node.Shifts[P][D] - WOff[D]);
            Sign = Delta > 0 ? 1 : Delta < 0 ? -1 : 0;
          }
          if (Sign < 0)
            return TransformResult::failure(
                "interchange: dependence from " + PNest.Name + " to " +
                CNest.Name + " becomes lexicographically negative");
        }
      }
    }
  }

  // Identity orders clear the override.
  bool Identity = true;
  for (unsigned D = 0; D < Rank; ++D)
    Identity &= Order[D] == D;
  Node.DimOrder = Identity ? std::vector<unsigned>{} : Order;
  return TransformResult::success();
}
