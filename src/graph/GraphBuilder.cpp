//===- graph/GraphBuilder.cpp ---------------------------------------------===//

#include "graph/GraphBuilder.h"

#include "support/Errors.h"
#include "support/Status.h"

#include <map>

using namespace lcdfg;
using namespace lcdfg::graph;

support::Expected<Graph> graph::tryBuildGraph(const ir::LoopChain &Chain,
                                              const BuildOptions &Options) {
  auto R = support::tryInvoke([&] { return buildGraph(Chain, Options); });
  if (!R)
    return R.takeError().withContext("building M2DFG for chain " +
                                     Chain.name());
  return R;
}

std::string graph::rowGroupLabel(std::string_view NestName) {
  auto Pos = NestName.rfind('_');
  if (Pos == std::string_view::npos || Pos == 0)
    return std::string(NestName);
  return std::string(NestName.substr(0, Pos));
}

Graph graph::buildGraph(const ir::LoopChain &Chain,
                        const BuildOptions &Options) {
  Graph G(Chain);

  // Value nodes: one per referenced array, sized by its extent (inputs
  // optionally by their first reader's footprint; see BuildOptions).
  std::map<std::string, NodeId, std::less<>> ValueIds;
  for (const std::string &Name : Chain.arrayNames()) {
    const ir::ArrayInfo &Info = Chain.array(Name);
    ValueNode V;
    V.Array = Name;
    V.OriginalSize = Chain.valueSize(Name, Options.Symbol);
    if (Options.InputSizeFromFirstReader &&
        Info.Kind == ir::StorageKind::PersistentInput) {
      for (unsigned I = 0; I < Chain.numNests(); ++I) {
        const ir::LoopNest &Nest = Chain.nest(I);
        std::optional<poly::BoxSet> FP;
        for (unsigned R = 0; R < Nest.Reads.size(); ++R)
          if (Nest.Reads[R].Array == Name)
            FP = FP ? FP->hull(Nest.readFootprint(R))
                    : Nest.readFootprint(R);
        if (FP) {
          V.OriginalSize = FP->cardinality(Options.Symbol);
          break;
        }
      }
    }
    V.Size = V.OriginalSize;
    V.Persistent = Info.Kind != ir::StorageKind::Temporary;
    ValueIds[Name] = G.addValueNode(std::move(V));
  }

  // Statement nodes in program order; row grouping by name prefix.
  int Row = 0;
  int Col = 0;
  std::string PrevGroup;
  for (unsigned I = 0; I < Chain.numNests(); ++I) {
    const ir::LoopNest &Nest = Chain.nest(I);
    std::string Group = Options.GroupRowsByNamePrefix
                            ? rowGroupLabel(Nest.Name)
                            : Nest.Name;
    if (I == 0 || Group != PrevGroup) {
      ++Row;
      Col = 0;
      PrevGroup = Group;
    }
    StmtNode S;
    S.Label = Nest.Name;
    S.Nests = {I};
    S.Shifts = {std::vector<std::int64_t>(Nest.Domain.rank(), 0)};
    S.Domain = Nest.Domain;
    S.Row = Row;
    S.Col = Col++;
    NodeId StmtId = G.addStmtNode(std::move(S));

    for (const ir::Access &R : Nest.Reads) {
      auto It = ValueIds.find(R.Array);
      if (It == ValueIds.end())
        support::raise(support::ErrorCode::UnknownArray,
                       "graph build: unknown array " + R.Array);
      G.addReadEdge(It->second, StmtId);
    }
    auto It = ValueIds.find(Nest.Write.Array);
    if (It == ValueIds.end())
      support::raise(support::ErrorCode::UnknownArray,
                     "graph build: unknown array " + Nest.Write.Array);
    G.addWriteEdge(StmtId, It->second);
  }

  // Place value nodes: inputs in row 0, otherwise the producer's row.
  for (NodeId V = 0; V < G.numValueNodes(); ++V) {
    NodeId Producer = G.producerOf(V);
    G.value(V).Row = Producer == InvalidNode ? 0 : G.stmt(Producer).Row;
  }

  G.verify();
  return G;
}
