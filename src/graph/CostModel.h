//===- graph/CostModel.h - Memory-traffic cost model ------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-level cost model of Section 3.3. Two metrics are computed from
/// the value nodes of an M2DFG:
///
///   S_R  total data read: for each value set, the number of outgoing edges
///        multiplied by the size of the value set, summed over the graph;
///   S_c  maximum number of simultaneously accessed streams: the maximum
///        incoming degree over all statement sets.
///
/// Internalized temporaries (after producer-consumer fusion and storage
/// reduction) contribute their *reduced* sizes, which is how the fused
/// variants' totals in Figures 8 and 9 pick up constant and O(N) terms.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GRAPH_COSTMODEL_H
#define LCDFG_GRAPH_COSTMODEL_H

#include "graph/Graph.h"
#include "support/Polynomial.h"

#include <map>
#include <string>
#include <vector>

namespace lcdfg {
namespace graph {

/// Options for the cost computation.
struct CostOptions {
  /// When true, an edge whose consumer reads a multi-point stencil from the
  /// value counts one stream per distinct offset in non-innermost
  /// dimensions (the "wide stencil" refinement sketched in Section 3.3).
  /// Off by default to match the paper's figures.
  bool CountWideStencilStreams = false;
};

/// Cost report for a graph.
struct CostReport {
  /// Total data read per layout row (row index -> polynomial in N).
  std::map<int, Polynomial> RowRead;
  /// Maximum stream width per layout row.
  std::map<int, unsigned> RowWidth;
  /// Total data read, S_R.
  Polynomial TotalRead;
  /// Maximum simultaneous streams, S_c.
  unsigned MaxStreams = 0;

  /// Renders the per-row table in the style of the yellow/blue boxes of
  /// Figure 3.
  std::string toString() const;
};

/// Computes the cost model for \p G.
CostReport computeCost(const Graph &G, const CostOptions &Options = {});

} // namespace graph
} // namespace lcdfg

#endif // LCDFG_GRAPH_COSTMODEL_H
