//===- graph/AutoScheduler.cpp --------------------------------------------===//

#include "graph/AutoScheduler.h"

#include "graph/CostModel.h"
#include "graph/Transforms.h"
#include "storage/ReuseDistance.h"

#include <algorithm>
#include <optional>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

/// A candidate move: optional enabling reschedules followed by a fusion.
struct Move {
  enum class Kind { ProducerConsumer, ReadReduction } MoveKind;
  NodeId A = InvalidNode;
  NodeId B = InvalidNode;
  std::vector<std::pair<NodeId, int>> PreReschedules;
  std::int64_t Cost = 0; // evaluated S_R after the move
  std::string Description;
};

/// The minimal row at which \p Stmt could legally execute: one past its
/// latest producer.
int minimalRow(const Graph &G, NodeId Stmt) {
  int Row = 1;
  for (const Edge *E : G.readsOf(Stmt)) {
    NodeId P = G.producerOf(E->From);
    if (P != InvalidNode && P != Stmt)
      Row = std::max(Row, G.stmt(P).Row + 1);
  }
  return Row;
}

/// Attempts to reschedule producers feeding \p A and \p B so a fusion at
/// min(row(A), row(B)) becomes legal; records the reschedules performed.
bool makeInputsAvailable(Graph &G, NodeId A, NodeId B,
                         std::vector<std::pair<NodeId, int>> &Applied) {
  int Target = std::min(G.stmt(A).Row, G.stmt(B).Row);
  // Iterate to a fixed point: moving one producer earlier may require its
  // own inputs to move first; bounded by the node count.
  for (unsigned Iter = 0; Iter < G.numStmtNodes(); ++Iter) {
    NodeId Offender = InvalidNode;
    for (NodeId Id : {A, B}) {
      for (const Edge *E : G.readsOf(Id)) {
        NodeId P = G.producerOf(E->From);
        if (P == InvalidNode || P == A || P == B)
          continue;
        if (G.stmt(P).Row >= Target) {
          Offender = P;
          break;
        }
      }
      if (Offender != InvalidNode)
        break;
    }
    if (Offender == InvalidNode)
      return true;
    int Row = minimalRow(G, Offender);
    if (Row >= Target)
      return false;
    if (!reschedule(G, Offender, Row))
      return false;
    Applied.emplace_back(Offender, Row);
  }
  return false;
}

/// Executes \p M on \p G; returns false when any step fails.
bool applyMove(Graph &G, const Move &M) {
  for (const auto &[Node, Row] : M.PreReschedules)
    if (!reschedule(G, Node, Row))
      return false;
  if (M.MoveKind == Move::Kind::ProducerConsumer)
    return static_cast<bool>(fuseProducerConsumer(G, M.A, M.B));
  return static_cast<bool>(fuseReadReduction(G, M.A, M.B));
}

/// S_R (evaluated) and S_c of \p G after storage reduction, computed on a
/// scratch copy.
std::pair<std::int64_t, unsigned> evaluate(const Graph &G,
                                           std::int64_t EvalAt) {
  Graph Copy = G;
  storage::reduceStorage(Copy);
  CostReport Cost = computeCost(Copy);
  return {Cost.TotalRead.evaluate(EvalAt), Cost.MaxStreams};
}

std::vector<NodeId> liveStmts(const Graph &G) {
  std::vector<NodeId> Live;
  for (NodeId S = 0; S < G.numStmtNodes(); ++S)
    if (!G.stmt(S).Dead)
      Live.push_back(S);
  return Live;
}

} // namespace

AutoScheduleResult graph::autoSchedule(Graph &G,
                                       const AutoScheduleOptions &Options) {
  AutoScheduleResult Result;
  Result.InitialRead = computeCost(G).TotalRead;
  std::int64_t Best = evaluate(G, Options.EvalAt).first;

  for (unsigned Step = 0; Step < Options.MaxSteps; ++Step) {
    // Producer-consumer fusions are considered before read reductions:
    // an RR merge of two nodes forecloses the PC chains through them
    // (greedy RR-first gets stuck in a local optimum on MiniFluxDiv),
    // while PC chains never block later read reductions.
    std::optional<Move> BestPC, BestRR;

    auto Consider = [&](Move M) {
      Graph Trial = G;
      if (!applyMove(Trial, M))
        return;
      auto [SR, SC] = evaluate(Trial, Options.EvalAt);
      if (SC > Options.MaxStreams || SR >= Best)
        return;
      std::optional<Move> &Slot =
          M.MoveKind == Move::Kind::ProducerConsumer ? BestPC : BestRR;
      if (!Slot || SR < Slot->Cost) {
        M.Cost = SR;
        Slot = std::move(M);
      }
    };

    std::vector<NodeId> Live = liveStmts(G);

    if (Options.AllowProducerConsumer) {
      for (NodeId V = 0; V < G.numValueNodes(); ++V) {
        const ValueNode &Value = G.value(V);
        if (Value.Dead || Value.Persistent || Value.Internalized)
          continue;
        NodeId P = G.producerOf(V);
        if (P == InvalidNode)
          continue;
        for (const Edge *E : G.readersOf(V)) {
          if (E->To == P)
            continue;
          Move M;
          M.MoveKind = Move::Kind::ProducerConsumer;
          M.A = P;
          M.B = E->To;
          M.Description = "fusePC " + G.stmt(P).Label + " -> " +
                          G.stmt(E->To).Label;
          Consider(std::move(M));
        }
      }
    }

    if (Options.AllowReadReduction) {
      for (std::size_t I = 0; I < Live.size(); ++I)
        for (std::size_t J = I + 1; J < Live.size(); ++J) {
          Move M;
          M.MoveKind = Move::Kind::ReadReduction;
          M.A = Live[I];
          M.B = Live[J];
          M.Description = "fuseRR " + G.stmt(Live[I]).Label + " + " +
                          G.stmt(Live[J]).Label;
          // Derive enabling reschedules on a scratch copy first.
          Graph Probe = G;
          std::vector<std::pair<NodeId, int>> Pre;
          if (!makeInputsAvailable(Probe, Live[I], Live[J], Pre))
            continue;
          M.PreReschedules = std::move(Pre);
          Consider(std::move(M));
        }
    }

    std::optional<Move> &BestMove = BestPC ? BestPC : BestRR;
    if (!BestMove)
      break;
    if (!applyMove(G, *BestMove))
      break;
    Best = BestMove->Cost;
    std::ostringstream Line;
    Line << BestMove->Description << " (S_R@" << Options.EvalAt << " -> "
         << BestMove->Cost << ")";
    Result.Log.push_back(Line.str());
    ++Result.StepsApplied;
  }

  storage::reduceStorage(G);
  CostReport Final = computeCost(G);
  Result.FinalRead = Final.TotalRead;
  Result.FinalStreams = Final.MaxStreams;
  G.compactRows();
  G.compactColumns();
  return Result;
}
