//===- graph/DotExport.cpp ------------------------------------------------===//

#include "graph/DotExport.h"

#include <map>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::graph;

std::string graph::toDot(const Graph &G, const DotOptions &Options) {
  CostReport Cost = computeCost(G);
  std::ostringstream OS;
  OS << "digraph M2DFG {\n";
  if (!Options.Title.empty())
    OS << "  label=\"" << Options.Title << "\";\n  labelloc=t;\n";
  OS << "  rankdir=TB;\n  node [fontsize=10];\n";

  for (NodeId V = 0; V < G.numValueNodes(); ++V) {
    const ValueNode &Node = G.value(V);
    if (Node.Dead)
      continue;
    OS << "  v" << V << " [shape=box, label=\"" << Node.Array << "\\n"
       << Node.Size.toString() << "\"";
    if (Node.Persistent)
      OS << ", style=filled, fillcolor=gray80";
    else if (Node.Internalized)
      OS << ", style=dashed";
    OS << "];\n";
  }
  for (NodeId S = 0; S < G.numStmtNodes(); ++S) {
    const StmtNode &Node = G.stmt(S);
    if (Node.Dead)
      continue;
    OS << "  s" << S << " [shape=invtriangle, label=\"" << Node.Label
       << "\"];\n";
  }

  // Ranks per row.
  std::map<int, std::vector<std::string>> Ranks;
  for (NodeId V = 0; V < G.numValueNodes(); ++V)
    if (!G.value(V).Dead)
      Ranks[G.value(V).Row].push_back("v" + std::to_string(V));
  for (NodeId S = 0; S < G.numStmtNodes(); ++S)
    if (!G.stmt(S).Dead)
      Ranks[G.stmt(S).Row].push_back("s" + std::to_string(S));
  for (const auto &[Row, Nodes] : Ranks) {
    OS << "  { rank=same;";
    for (const std::string &N : Nodes)
      OS << " " << N << ";";
    if (Options.ShowCosts) {
      OS << " cost" << Row << " [shape=note, label=\"row " << Row;
      if (auto It = Cost.RowRead.find(Row); It != Cost.RowRead.end())
        OS << "\\nread " << It->second.toString();
      if (auto It = Cost.RowWidth.find(Row); It != Cost.RowWidth.end())
        OS << "\\nwidth " << It->second;
      OS << "\"];";
    }
    OS << " }\n";
  }

  for (const Edge &E : G.edges()) {
    if (E.Dead)
      continue;
    if (E.FromKind == EndpointKind::Value)
      OS << "  v" << E.From << " -> s" << E.To;
    else
      OS << "  s" << E.From << " -> v" << E.To;
    if (E.Multiplicity > 1)
      OS << " [label=\"x" << E.Multiplicity << "\"]";
    OS << ";\n";
  }
  if (Options.ShowCosts)
    OS << "  total [shape=note, label=\"S_R = " << Cost.TotalRead.toString()
       << "\\nS_c = " << Cost.MaxStreams << "\"];\n";
  OS << "}\n";
  return OS.str();
}

std::string graph::toText(const Graph &G) {
  std::ostringstream OS;
  std::map<int, std::vector<NodeId>> Rows;
  for (NodeId S = 0; S < G.numStmtNodes(); ++S)
    if (!G.stmt(S).Dead)
      Rows[G.stmt(S).Row].push_back(S);
  // Row 0: chain inputs.
  OS << "row 0:";
  for (NodeId V = 0; V < G.numValueNodes(); ++V)
    if (!G.value(V).Dead && G.value(V).Row == 0)
      OS << " [" << G.value(V).Array << " " << G.value(V).Size.toString()
         << "]";
  OS << "\n";
  for (const auto &[Row, Stmts] : Rows) {
    OS << "row " << Row << ":";
    for (NodeId S : Stmts) {
      OS << " <" << G.stmt(S).Label << ">";
      for (NodeId V : G.outputsOf(S))
        OS << " [" << G.value(V).Array << " " << G.value(V).Size.toString()
           << (G.value(V).Internalized ? " internal" : "") << "]";
    }
    OS << "\n";
  }
  return OS.str();
}
