//===- graph/CostModel.cpp ------------------------------------------------===//

#include "graph/CostModel.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

/// Streams opened by one statement set: one per read access, or — under
/// the wide-stencil refinement sketched in Section 3.3 — one per distinct
/// combination of non-innermost stencil offsets within each access.
unsigned nestStreams(const ir::LoopNest &Nest, bool WideStencils) {
  if (!WideStencils)
    return static_cast<unsigned>(Nest.Reads.size());
  unsigned Streams = 0;
  for (const ir::Access &R : Nest.Reads) {
    std::set<std::vector<std::int64_t>> OuterOffsets;
    for (const auto &Offsets : R.Offsets)
      OuterOffsets.insert(
          std::vector<std::int64_t>(Offsets.begin(), Offsets.end() - 1));
    Streams += std::max<unsigned>(
        1, static_cast<unsigned>(OuterOffsets.size()));
  }
  return Streams;
}

} // namespace

CostReport graph::computeCost(const Graph &G, const CostOptions &Options) {
  CostReport Report;

  // S_R: sum over value nodes of size x out-degree, grouped by row.
  for (NodeId V = 0; V < G.numValueNodes(); ++V) {
    const ValueNode &Node = G.value(V);
    if (Node.Dead)
      continue;
    unsigned Degree = G.outDegree(V);
    if (Degree == 0)
      continue;
    Polynomial Contribution = Node.Size * Polynomial(Degree);
    Report.RowRead[Node.Row] += Contribution;
    Report.TotalRead += Contribution;
  }

  // S_c: maximum stream count over statement *sets* — fusion groups sets
  // into one node, but each set still opens its own streams while it
  // executes (which is why the fused rows of Figures 8 and 9 keep width 2).
  for (NodeId S = 0; S < G.numStmtNodes(); ++S) {
    const StmtNode &Node = G.stmt(S);
    if (Node.Dead)
      continue;
    unsigned Streams = 0;
    for (unsigned NestId : Node.Nests)
      Streams = std::max(
          Streams, nestStreams(G.chain().nest(NestId),
                               Options.CountWideStencilStreams));
    auto [It, Inserted] = Report.RowWidth.emplace(Node.Row, Streams);
    if (!Inserted)
      It->second = std::max(It->second, Streams);
    Report.MaxStreams = std::max(Report.MaxStreams, Streams);
  }

  return Report;
}

std::string CostReport::toString() const {
  std::ostringstream OS;
  OS << "row  width  data read\n";
  std::set<int> Rows;
  for (const auto &[Row, P] : RowRead) {
    (void)P;
    Rows.insert(Row);
  }
  for (const auto &[Row, W] : RowWidth) {
    (void)W;
    Rows.insert(Row);
  }
  for (int Row : Rows) {
    OS << Row << "    ";
    auto WIt = RowWidth.find(Row);
    OS << (WIt == RowWidth.end() ? std::string("-")
                                 : std::to_string(WIt->second));
    OS << "      ";
    auto RIt = RowRead.find(Row);
    OS << (RIt == RowRead.end() ? std::string("0") : RIt->second.toString());
    OS << "\n";
  }
  OS << "S_R = " << TotalRead.toString() << "\n";
  OS << "S_c = " << MaxStreams << "\n";
  return OS.str();
}
