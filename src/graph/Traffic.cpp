//===- graph/Traffic.cpp --------------------------------------------------===//

#include "graph/Traffic.h"

#include "graph/CostModel.h"

#include <set>

using namespace lcdfg;
using namespace lcdfg::graph;

TrafficReport graph::measureTraffic(const Graph &G, std::int64_t NVal) {
  TrafficReport Report;
  std::map<std::string, std::int64_t, std::less<>> Env{{"N", NVal}};

  for (const Edge &E : G.edges()) {
    if (E.Dead || E.FromKind != EndpointKind::Value)
      continue;
    const ValueNode &Value = G.value(E.From);
    const StmtNode &Consumer = G.stmt(E.To);

    // Distinct elements the consumer's statement sets read from this
    // value, enumerated over their (original, unshifted) domains.
    std::set<std::vector<std::int64_t>> Elements;
    for (unsigned NestId : Consumer.Nests) {
      const ir::LoopNest &Nest = G.chain().nest(NestId);
      for (const ir::Access &R : Nest.Reads) {
        if (R.Array != Value.Array)
          continue;
        for (const auto &Off : R.Offsets) {
          Nest.Domain.forEachPoint(
              Env, [&](const std::vector<std::int64_t> &P) {
                std::vector<std::int64_t> Element(P.size());
                for (std::size_t D = 0; D < P.size(); ++D)
                  Element[D] = P[D] + Off[D];
                Elements.insert(std::move(Element));
              });
        }
      }
    }
    if (Elements.empty())
      continue;
    // A collapsed edge streams the union once; otherwise each statement
    // set opens its own stream — modeled by the multiplicity.
    std::int64_t Reads =
        static_cast<std::int64_t>(Elements.size()) * E.Multiplicity;
    auto Key = std::make_pair(Value.Array, Consumer.Label);
    Report.EdgeReads[Key] += Reads;
    Report.Total += Reads;
  }

  Report.ModelTotal = computeCost(G).TotalRead.evaluate(NVal);
  return Report;
}
