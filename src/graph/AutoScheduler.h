//===- graph/AutoScheduler.h - Cost-model-driven scheduling -----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper positions the graph operations as a toolbox "intended to
/// reduce S_R, and keep S_c below a threshold" (Section 3.3), driven by a
/// performance expert through the visual interface. This module automates
/// that loop: a greedy search over the legal transformation space that
/// applies the producer-consumer or read-reduction fusion (with enabling
/// reschedules) yielding the largest S_R reduction, subject to the stream
/// budget, until no profitable move remains. On MiniFluxDiv it discovers
/// a schedule matching the hand-derived fuse-all-levels variant.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GRAPH_AUTOSCHEDULER_H
#define LCDFG_GRAPH_AUTOSCHEDULER_H

#include "graph/Graph.h"
#include "support/Polynomial.h"

#include <string>
#include <vector>

namespace lcdfg {
namespace graph {

/// Search configuration.
struct AutoScheduleOptions {
  /// Upper bound on S_c (the prefetcher stream budget).
  unsigned MaxStreams = 4;
  /// Candidate classes.
  bool AllowProducerConsumer = true;
  bool AllowReadReduction = true;
  /// Concrete size at which symbolic costs are compared.
  std::int64_t EvalAt = 64;
  /// Safety bound on the number of applied transformations.
  unsigned MaxSteps = 256;
};

/// Outcome of a search.
struct AutoScheduleResult {
  unsigned StepsApplied = 0;
  Polynomial InitialRead;
  Polynomial FinalRead;
  unsigned FinalStreams = 0;
  /// Human-readable description of each applied move.
  std::vector<std::string> Log;
};

/// Greedily optimizes \p G in place. Storage reduction is applied to
/// evaluate candidates and to the final graph.
AutoScheduleResult autoSchedule(Graph &G,
                                const AutoScheduleOptions &Options = {});

} // namespace graph
} // namespace lcdfg

#endif // LCDFG_GRAPH_AUTOSCHEDULER_H
