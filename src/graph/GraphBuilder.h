//===- graph/GraphBuilder.h - M2DFG construction from chains ----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a modified macro dataflow graph from an annotated loop chain
/// (the "procedure to generate M2DFGs given annotated source code" of the
/// contributions list). One statement node is created per loop nest and one
/// value node per referenced array; rows reflect the original series-of-
/// loops schedule.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_GRAPH_GRAPHBUILDER_H
#define LCDFG_GRAPH_GRAPHBUILDER_H

#include "graph/Graph.h"
#include "support/Status.h"

namespace lcdfg {
namespace graph {

/// Options controlling the initial layout.
struct BuildOptions {
  /// When true, consecutive nests whose names share the prefix before the
  /// last '_' (e.g. "Fx1_rho", "Fx1_u" -> "Fx1") are placed in the same row,
  /// reproducing the component columns of Figure 3. When false every nest
  /// gets its own row.
  bool GroupRowsByNamePrefix = true;
  /// Symbol used for symbolic cardinalities.
  std::string Symbol = "N";
  /// Sizes pure-input value nodes by the read footprint of their first
  /// reading nest rather than by the hull of all accesses. This matches the
  /// paper's labeling: the MiniFluxDiv inputs are labeled N^2+4N, the
  /// x-direction footprint, although the y-direction flux also reads them.
  bool InputSizeFromFirstReader = true;
};

/// Builds the initial (series-of-loops schedule) M2DFG for \p Chain. The
/// chain must be finalized.
Graph buildGraph(const ir::LoopChain &Chain, const BuildOptions &Options = {});

/// Validating form of buildGraph: an E003-unknown-array or
/// E004-graph-invalid Status instead of a thrown StatusError when the
/// chain references undeclared arrays or the built graph fails verify().
support::Expected<Graph> tryBuildGraph(const ir::LoopChain &Chain,
                                       const BuildOptions &Options = {});

/// Returns the row-group label of a nest name: the prefix before the last
/// '_' when present ("Fx1_rho" -> "Fx1"), otherwise the whole name.
std::string rowGroupLabel(std::string_view NestName);

} // namespace graph
} // namespace lcdfg

#endif // LCDFG_GRAPH_GRAPHBUILDER_H
