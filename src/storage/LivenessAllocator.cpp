//===- storage/LivenessAllocator.cpp --------------------------------------===//

#include "storage/LivenessAllocator.h"

#include <algorithm>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::storage;
using graph::Graph;
using graph::InvalidNode;
using graph::NodeId;

namespace {

struct Lifetime {
  NodeId Value = InvalidNode;
  int BirthRow = 0; // row of the producing statement node
  int DeathRow = 0; // row of the last reader
};

struct TableEntry {
  Polynomial Capacity;
  bool Active = false;
};

/// True when A's capacity accommodates B (A >= B asymptotically or equal).
bool accommodates(const Polynomial &Capacity, const Polynomial &Need) {
  return !Capacity.asymptoticallyLess(Need);
}

} // namespace

Allocation storage::allocateSpaces(const Graph &G) {
  Allocation Result;

  // Collect lifetimes of all live temporaries that are actually read.
  std::vector<Lifetime> Lifetimes;
  for (NodeId V = 0; V < G.numValueNodes(); ++V) {
    const graph::ValueNode &Value = G.value(V);
    if (Value.Dead || Value.Persistent)
      continue;
    NodeId Producer = G.producerOf(V);
    if (Producer == InvalidNode)
      continue;
    auto Readers = G.readersOf(V);
    if (Readers.empty())
      continue;
    Lifetime L;
    L.Value = V;
    L.BirthRow = G.stmt(Producer).Row;
    L.DeathRow = L.BirthRow;
    for (const graph::Edge *E : Readers)
      L.DeathRow = std::max(L.DeathRow, G.stmt(E->To).Row);
    Lifetimes.push_back(L);
    Result.SsaTotal += Value.Size;
  }

  // Reverse execution order: walk rows from last to first. At each row,
  // first assign spaces to values whose last read happens here (they become
  // live, looking backward), then release values written here.
  int MaxRow = G.maxRow();
  std::vector<TableEntry> Table;
  for (int Row = MaxRow; Row >= 0; --Row) {
    for (const Lifetime &L : Lifetimes) {
      if (L.DeathRow != Row)
        continue;
      const Polynomial &Need = G.value(L.Value).Size;
      // Find the smallest inactive space that can accommodate the value.
      int Best = -1;
      for (int I = 0; I < static_cast<int>(Table.size()); ++I) {
        if (Table[I].Active || !accommodates(Table[I].Capacity, Need))
          continue;
        if (Best < 0 ||
            Table[I].Capacity.asymptoticallyLess(Table[Best].Capacity))
          Best = I;
      }
      if (Best < 0) {
        // Expand the largest inactive space, or add a new one.
        for (int I = 0; I < static_cast<int>(Table.size()); ++I) {
          if (Table[I].Active)
            continue;
          if (Best < 0 ||
              Table[Best].Capacity.asymptoticallyLess(Table[I].Capacity))
            Best = I;
        }
        if (Best >= 0) {
          Table[Best].Capacity = Need;
        } else {
          Table.push_back(TableEntry{Need, false});
          Best = static_cast<int>(Table.size() - 1);
        }
      }
      Table[Best].Active = true;
      Result.ValueToSpace[G.value(L.Value).Array] =
          static_cast<unsigned>(Best);
    }
    for (const Lifetime &L : Lifetimes) {
      if (L.BirthRow != Row)
        continue;
      auto It = Result.ValueToSpace.find(G.value(L.Value).Array);
      if (It != Result.ValueToSpace.end())
        Table[It->second].Active = false;
    }
  }

  for (unsigned I = 0; I < Table.size(); ++I) {
    Result.Spaces.push_back(Space{I, Table[I].Capacity});
    Result.Total += Table[I].Capacity;
  }
  return Result;
}

std::string Allocation::toString() const {
  std::ostringstream OS;
  OS << "spaces:\n";
  for (const Space &S : Spaces)
    OS << "  ptr" << S.PointerId << " capacity " << S.Capacity.toString()
       << "\n";
  OS << "assignments:\n";
  for (const auto &[Array, Id] : ValueToSpace)
    OS << "  " << Array << " -> ptr" << Id << "\n";
  OS << "total " << Total.toString() << " (single-assignment "
     << SsaTotal.toString() << ")\n";
  return OS.str();
}
