//===- storage/LivenessAllocator.cpp --------------------------------------===//

#include "storage/LivenessAllocator.h"

#include <algorithm>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::storage;
using graph::Graph;
using graph::InvalidNode;
using graph::NodeId;

namespace {

struct Lifetime {
  NodeId Value = InvalidNode;
  int BirthRow = 0; // row of the producing statement node
  int DeathRow = 0; // row of the last reader
};

struct TableEntry {
  Polynomial Capacity;
  bool Active = false;
};

/// True when A's capacity accommodates B (A >= B asymptotically or equal).
bool accommodates(const Polynomial &Capacity, const Polynomial &Need) {
  return !Capacity.asymptoticallyLess(Need);
}

} // namespace

Allocation storage::allocateSpaces(const Graph &G) {
  Allocation Result;

  // Collect lifetimes of all live temporaries that are actually read.
  std::vector<Lifetime> Lifetimes;
  for (NodeId V = 0; V < G.numValueNodes(); ++V) {
    const graph::ValueNode &Value = G.value(V);
    if (Value.Dead || Value.Persistent)
      continue;
    NodeId Producer = G.producerOf(V);
    if (Producer == InvalidNode)
      continue;
    auto Readers = G.readersOf(V);
    if (Readers.empty())
      continue;
    Lifetime L;
    L.Value = V;
    L.BirthRow = G.stmt(Producer).Row;
    L.DeathRow = L.BirthRow;
    for (const graph::Edge *E : Readers)
      L.DeathRow = std::max(L.DeathRow, G.stmt(E->To).Row);
    Lifetimes.push_back(L);
    Result.SsaTotal += Value.Size;
  }

  // Reverse execution order: walk rows from last to first. At each row,
  // first assign spaces to values whose last read happens here (they become
  // live, looking backward), then release values written here.
  int MaxRow = G.maxRow();
  std::vector<TableEntry> Table;
  for (int Row = MaxRow; Row >= 0; --Row) {
    for (const Lifetime &L : Lifetimes) {
      if (L.DeathRow != Row)
        continue;
      const Polynomial &Need = G.value(L.Value).Size;
      // Find the smallest inactive space that can accommodate the value.
      int Best = -1;
      for (int I = 0; I < static_cast<int>(Table.size()); ++I) {
        if (Table[I].Active || !accommodates(Table[I].Capacity, Need))
          continue;
        if (Best < 0 ||
            Table[I].Capacity.asymptoticallyLess(Table[Best].Capacity))
          Best = I;
      }
      if (Best < 0) {
        // Expand the largest inactive space, or add a new one.
        for (int I = 0; I < static_cast<int>(Table.size()); ++I) {
          if (Table[I].Active)
            continue;
          if (Best < 0 ||
              Table[Best].Capacity.asymptoticallyLess(Table[I].Capacity))
            Best = I;
        }
        if (Best >= 0) {
          Table[Best].Capacity = Need;
        } else {
          Table.push_back(TableEntry{Need, false});
          Best = static_cast<int>(Table.size() - 1);
        }
      }
      Table[Best].Active = true;
      Result.ValueToSpace[G.value(L.Value).Array] =
          static_cast<unsigned>(Best);
    }
    for (const Lifetime &L : Lifetimes) {
      if (L.BirthRow != Row)
        continue;
      auto It = Result.ValueToSpace.find(G.value(L.Value).Array);
      if (It != Result.ValueToSpace.end())
        Table[It->second].Active = false;
    }
  }

  for (unsigned I = 0; I < Table.size(); ++I) {
    Result.Spaces.push_back(Space{I, Table[I].Capacity});
    Result.Total += Table[I].Capacity;
  }
  return Result;
}

FootprintTracker::FootprintTracker(
    std::vector<SpaceInfo> SpacesIn,
    std::vector<std::vector<unsigned>> TaskSpacesIn)
    : Spaces(std::move(SpacesIn)), TaskSpaces(std::move(TaskSpacesIn)),
      RemainingUses(Spaces.size(), 0), Active(Spaces.size(), false) {
  // Normalize each task's touch set: sorted, deduped, and stripped of
  // spaces the budget never charges for (persistent or zero bytes).
  for (std::vector<unsigned> &Touched : TaskSpaces) {
    std::sort(Touched.begin(), Touched.end());
    Touched.erase(std::unique(Touched.begin(), Touched.end()), Touched.end());
    Touched.erase(std::remove_if(Touched.begin(), Touched.end(),
                                 [&](unsigned S) {
                                   return S >= Spaces.size() ||
                                          Spaces[S].Persistent ||
                                          Spaces[S].Bytes <= 0;
                                 }),
                  Touched.end());
    for (unsigned S : Touched)
      ++RemainingUses[S];
  }
}

std::int64_t FootprintTracker::activationBytes(int T) const {
  if (T < 0 || static_cast<std::size_t>(T) >= TaskSpaces.size())
    return 0;
  std::int64_t Delta = 0;
  for (unsigned S : TaskSpaces[T])
    if (!Active[S])
      Delta += Spaces[S].Bytes;
  return Delta;
}

void FootprintTracker::admit(int T) {
  if (T < 0 || static_cast<std::size_t>(T) >= TaskSpaces.size())
    return;
  for (unsigned S : TaskSpaces[T]) {
    if (!Active[S]) {
      Active[S] = true;
      Live += Spaces[S].Bytes;
    }
  }
  HighWater = std::max(HighWater, Live);
}

void FootprintTracker::retire(int T) {
  if (T < 0 || static_cast<std::size_t>(T) >= TaskSpaces.size())
    return;
  for (unsigned S : TaskSpaces[T]) {
    if (--RemainingUses[S] == 0 && Active[S]) {
      Active[S] = false;
      Live -= Spaces[S].Bytes;
    }
  }
}

std::int64_t FootprintTracker::maxSingleTaskBytes() const {
  std::int64_t Max = 0;
  for (const std::vector<unsigned> &Touched : TaskSpaces) {
    std::int64_t Sum = 0;
    for (unsigned S : Touched)
      Sum += Spaces[S].Bytes;
    Max = std::max(Max, Sum);
  }
  return Max;
}

std::int64_t FootprintTracker::releaseHintBytes(int T) const {
  if (T < 0 || static_cast<std::size_t>(T) >= TaskSpaces.size())
    return 0;
  std::int64_t Hint = 0;
  for (unsigned S : TaskSpaces[T]) {
    bool LastToucher = true;
    for (std::size_t U = static_cast<std::size_t>(T) + 1;
         U < TaskSpaces.size() && LastToucher; ++U)
      if (std::binary_search(TaskSpaces[U].begin(), TaskSpaces[U].end(), S))
        LastToucher = false;
    if (LastToucher)
      Hint += Spaces[S].Bytes;
  }
  return Hint;
}

std::int64_t FootprintTracker::serialHighWater() const {
  FootprintTracker Scratch = *this;
  for (std::size_t T = 0; T < TaskSpaces.size(); ++T) {
    Scratch.admit(static_cast<int>(T));
    Scratch.retire(static_cast<int>(T));
  }
  return Scratch.highWater();
}

std::string Allocation::toString() const {
  std::ostringstream OS;
  OS << "spaces:\n";
  for (const Space &S : Spaces)
    OS << "  ptr" << S.PointerId << " capacity " << S.Capacity.toString()
       << "\n";
  OS << "assignments:\n";
  for (const auto &[Array, Id] : ValueToSpace)
    OS << "  " << Array << " -> ptr" << Id << "\n";
  OS << "total " << Total.toString() << " (single-assignment "
     << SsaTotal.toString() << ")\n";
  return OS.str();
}
