//===- storage/StorageMap.h - Value-set to memory mappings ------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage mappings from value-set elements to memory locations
/// (Section 4.4). Standalone value nodes use a one-to-one (direct) map from
/// the writing iterator to locations; values internalized by producer-
/// consumer fusion use a modulo map over a buffer sized by reuse distance
/// (the `*(temp + x&1)` mapping of Figure 1). All maps are relative: the
/// base address comes from the liveness-allocated space table.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_STORAGE_STORAGEMAP_H
#define LCDFG_STORAGE_STORAGEMAP_H

#include "graph/Graph.h"
#include "storage/LivenessAllocator.h"
#include "support/Polynomial.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lcdfg {
namespace storage {

/// How a value set's elements map to locations within its space.
enum class MapKind {
  Direct, ///< one-to-one over the array extent
  Modulo  ///< circular buffer of reuse-distance size
};

/// The storage mapping for one array.
struct StorageMap {
  std::string Array;
  MapKind Kind = MapKind::Direct;
  /// Index space of the array (used for Direct linearization and for
  /// Modulo stride computation).
  poly::BoxSet Extent;
  /// For Modulo maps: the producing node's loop execution order (extent
  /// dimension indices, outermost first; empty = natural). The circular
  /// buffer must be linearized in execution order or interchange would
  /// wrap live values onto each other.
  std::vector<unsigned> ExecOrder;
  /// Element count of the backing buffer.
  Polynomial Size;
  /// Space the buffer lives in. Persistent arrays and each space from the
  /// liveness allocator get distinct ids.
  unsigned SpaceId = 0;
  bool Persistent = false;

  /// Renders e.g. "VAL_1(x,y) -> temp2[( (y-0)*(N) + (x-0) ) mod 2]".
  std::string toString(std::string_view Symbol = "N") const;
};

/// The whole-graph storage plan: one map per live array plus the space
/// table.
class StoragePlan {
public:
  /// Builds the plan for \p G. Call storage::reduceStorage first when
  /// reduced mappings are wanted; with \p UseAllocation false every
  /// temporary receives a private space (single-assignment layout).
  ///
  /// \p ModuloWiden multiplies every Modulo map's buffer size by a
  /// constant factor (1 = the exact reuse-distance window). Widening
  /// trades footprint for schedule freedom: a rolling window of size M
  /// only admits row-batched reordering of a producer/consumer pair at
  /// lag C when M >= 2*C, so widening by 2 or more legalizes unbounded
  /// batch segments over every reuse-distance-reduced buffer (the
  /// classic double-buffering trade), and larger factors additionally
  /// lengthen the wrap-free runs of small windows.
  static StoragePlan build(const graph::Graph &G, bool UseAllocation = true,
                           unsigned ModuloWiden = 1);

  /// Validating form of build: an E007-storage-invalid or
  /// E003-unknown-array Status instead of a thrown StatusError when the
  /// graph carries extent-less live arrays.
  static support::Expected<StoragePlan>
  tryBuild(const graph::Graph &G, bool UseAllocation = true,
           unsigned ModuloWiden = 1);

  const StorageMap &map(std::string_view Array) const;
  bool hasMap(std::string_view Array) const;
  const std::map<std::string, StorageMap, std::less<>> &maps() const {
    return Maps;
  }
  /// Capacity (in elements) of each space.
  const std::vector<Polynomial> &spaceSizes() const { return SpaceSizes; }

  /// Total elements allocated for temporaries.
  Polynomial temporaryFootprint() const;

  std::string toString(std::string_view Symbol = "N") const;

private:
  std::map<std::string, StorageMap, std::less<>> Maps;
  std::vector<Polynomial> SpaceSizes;
};

/// A concrete instantiation of a StoragePlan for a parameter binding: real
/// buffers plus (array, point) -> double& resolution. Used by the schedule
/// interpreter.
class ConcreteStorage {
public:
  ConcreteStorage(const StoragePlan &Plan,
                  const std::map<std::string, std::int64_t, std::less<>> &Env);

  /// Reference to the element of \p Array at \p Point.
  double &at(std::string_view Array, const std::vector<std::int64_t> &Point);

  /// Zero-fills every buffer.
  void clear();

  /// Raw access to an array's backing space (for initializing inputs and
  /// reading outputs). Direct-mapped arrays only.
  std::vector<double> &spaceOf(std::string_view Array);

  /// Linearized index of \p Point within \p Array's space.
  std::size_t indexOf(std::string_view Array,
                      const std::vector<std::int64_t> &Point) const;

  /// Everything an execution plan needs to address \p Array without
  /// further lookups: the linear index of point P is
  /// sum_d (P[d] - Lowers[d]) * Strides[d], wrapped mod ModSize when
  /// Modulo is set.
  struct Resolved {
    unsigned Space = 0;
    bool Persistent = false;
    bool Modulo = false;
    std::int64_t ModSize = 1;
    std::vector<std::int64_t> Lowers;
    std::vector<std::int64_t> Strides;
  };
  Resolved resolve(std::string_view Array) const;

  /// Number of backing spaces and raw access to them by id (execution
  /// plans address spaces directly; per-worker privatization clones the
  /// non-persistent ones).
  std::size_t numSpaces() const { return Spaces.size(); }
  std::vector<double> &space(std::size_t I) { return Spaces[I]; }
  const std::vector<double> &space(std::size_t I) const { return Spaces[I]; }

private:
  struct ArrayLayout {
    const StorageMap *Map = nullptr;
    std::vector<std::int64_t> Lowers;
    std::vector<std::int64_t> Strides;
    std::int64_t Size = 0;
    unsigned Space = 0;
  };

  const ArrayLayout &layout(std::string_view Array) const;

  std::map<std::string, ArrayLayout, std::less<>> Layouts;
  std::vector<std::vector<double>> Spaces;
};

} // namespace storage
} // namespace lcdfg

#endif // LCDFG_STORAGE_STORAGEMAP_H
