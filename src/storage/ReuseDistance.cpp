//===- storage/ReuseDistance.cpp ------------------------------------------===//

#include "storage/ReuseDistance.h"

#include "support/Errors.h"
#include "support/Status.h"

#include <cassert>

using namespace lcdfg;
using namespace lcdfg::storage;
using graph::Graph;
using graph::NodeId;

std::vector<Polynomial> storage::domainStrides(const poly::BoxSet &Domain,
                                               std::string_view Symbol) {
  unsigned Rank = Domain.rank();
  std::vector<Polynomial> Strides(Rank, Polynomial(1));
  for (unsigned D = Rank; D-- > 0;) {
    if (D + 1 < Rank) {
      const poly::Dim &Inner = Domain.dim(D + 1);
      Polynomial Extent =
          (Inner.Upper - Inner.Lower + poly::AffineExpr(1))
              .toPolynomial(Symbol);
      Strides[D] = Strides[D + 1] * Extent;
    }
  }
  return Strides;
}

Polynomial storage::reducedSize(const Graph &G, NodeId ValueId,
                                std::string_view Symbol) {
  const graph::ValueNode &Value = G.value(ValueId);
  assert(Value.Internalized && "reducedSize requires an internalized value");
  NodeId Producer = G.producerOf(ValueId);
  assert(Producer != graph::InvalidNode && "internalized value needs writer");
  const graph::StmtNode &Node = G.stmt(Producer);

  // Locate the member nest that writes this value.
  int WriterIdx = -1;
  for (std::size_t I = 0; I < Node.Nests.size(); ++I)
    if (G.chain().nest(Node.Nests[I]).Write.Array == Value.Array)
      WriterIdx = static_cast<int>(I);
  if (WriterIdx < 0)
    support::raise(support::ErrorCode::StorageInvalid,
                   "reducedSize: no member writes " + Value.Array);
  const ir::LoopNest &WNest = G.chain().nest(Node.Nests[WriterIdx]);
  const std::vector<std::int64_t> &WOff = WNest.Write.Offsets.front();
  const std::vector<std::int64_t> &WShift = Node.Shifts[WriterIdx];

  unsigned Rank = Node.Domain.rank();
  // Strides follow the node's execution order (interchange permutes it):
  // the innermost executed dimension has stride one.
  std::vector<unsigned> Order = Node.executionOrder();
  std::vector<Polynomial> Strides(Rank, Polynomial(1));
  {
    Polynomial Acc(1);
    for (unsigned K = Rank; K-- > 0;) {
      unsigned D = Order[K];
      Strides[D] = Acc;
      const poly::Dim &Dim = Node.Domain.dim(D);
      Acc *= (Dim.Upper - Dim.Lower + poly::AffineExpr(1))
                 .toPolynomial(Symbol);
    }
  }

  // Maximum linearized lifetime over all consuming reads inside the node.
  Polynomial MaxLifetime(0);
  bool Any = false;
  for (std::size_t CI = 0; CI < Node.Nests.size(); ++CI) {
    const ir::LoopNest &CNest = G.chain().nest(Node.Nests[CI]);
    for (const ir::Access &R : CNest.Reads) {
      if (R.Array != Value.Array)
        continue;
      for (const auto &ROff : R.Offsets) {
        // Element v[k] is produced at fused time k - WOff + WShift and
        // consumed at k - ROff + CShift; the lifetime vector is the
        // difference of those times.
        Polynomial Lifetime(0);
        for (unsigned D = 0; D < Rank; ++D) {
          std::int64_t Steps =
              (WOff[D] - ROff[D]) + (Node.Shifts[CI][D] - WShift[D]);
          Lifetime += Strides[D] * Polynomial(Steps);
        }
        MaxLifetime = Any ? Polynomial::asymptoticMax(MaxLifetime, Lifetime)
                          : Lifetime;
        Any = true;
      }
    }
  }
  if (!Any)
    return Polynomial(1);
  Polynomial Size = MaxLifetime + Polynomial(1);
  // A provably non-positive lifetime still needs one element.
  if (Size.isConstant() && Size.coeff(0) < 1)
    return Polynomial(1);
  return Size;
}

std::map<std::string, Polynomial>
storage::reduceStorage(Graph &G, std::string_view Symbol) {
  std::map<std::string, Polynomial> Reduced;
  for (NodeId V = 0; V < G.numValueNodes(); ++V) {
    graph::ValueNode &Value = G.value(V);
    if (Value.Dead || !Value.Internalized)
      continue;
    Value.Size = reducedSize(G, V, Symbol);
    Reduced.emplace(Value.Array, Value.Size);
  }
  return Reduced;
}
