//===- storage/ReuseDistance.h - Buffer sizing after fusion -----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Temporary-storage minimization within fused statement nodes
/// (Section 4.4). For a value internalized by producer-consumer fusion, the
/// reuse distance between the production of an element and its last
/// consumption in the fused schedule bounds the number of live elements:
/// a distance of 1 with a single read reduces the value set to one scalar;
/// a stencil read in the second-innermost dimension needs a buffer on the
/// order of the innermost extent (the paper's 2N example for fusing Dy with
/// Fy1).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_STORAGE_REUSEDISTANCE_H
#define LCDFG_STORAGE_REUSEDISTANCE_H

#include "graph/Graph.h"
#include "support/Polynomial.h"

#include <map>
#include <string>

namespace lcdfg {
namespace storage {

/// Computes the reduced buffer size (in elements) for internalized value
/// \p ValueId of graph \p G: one plus the maximum linearized reuse distance
/// over all consuming reads inside the fused node.
Polynomial reducedSize(const graph::Graph &G, graph::NodeId ValueId,
                       std::string_view Symbol = "N");

/// Applies reuse-distance sizing to every internalized value in \p G,
/// updating ValueNode::Size in place. Returns array name -> reduced size.
std::map<std::string, Polynomial> reduceStorage(graph::Graph &G,
                                                std::string_view Symbol = "N");

/// The linearization strides of a fused iteration space: Strides[d] is the
/// number of elements skipped by one step of dimension d (innermost dim has
/// stride 1).
std::vector<Polynomial> domainStrides(const poly::BoxSet &Domain,
                                      std::string_view Symbol = "N");

} // namespace storage
} // namespace lcdfg

#endif // LCDFG_STORAGE_REUSEDISTANCE_H
