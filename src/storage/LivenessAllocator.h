//===- storage/LivenessAllocator.h - Whole-graph space reuse ----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static liveness analysis of Section 4.4 that assigns temporary value
/// sets to a small table of shared spaces. The graph is processed in reverse
/// execution order; a table tracks spaces with their capacity and an active
/// flag. A value node is assigned to an inactive space of sufficient
/// capacity, or an inactive smaller space is expanded, or a new space is
/// created; when the node writing the value is visited the space becomes
/// inactive again.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_STORAGE_LIVENESSALLOCATOR_H
#define LCDFG_STORAGE_LIVENESSALLOCATOR_H

#include "graph/Graph.h"
#include "support/Polynomial.h"

#include <map>
#include <string>
#include <vector>

namespace lcdfg {
namespace storage {

/// One entry of the allocator's space table.
struct Space {
  unsigned PointerId = 0;
  Polynomial Capacity;
};

/// Result of the liveness-based allocation.
struct Allocation {
  /// Array name -> space id.
  std::map<std::string, unsigned> ValueToSpace;
  std::vector<Space> Spaces;
  /// Total bytes-in-elements of the shared allocation.
  Polynomial Total;
  /// Total under static single assignment (every temporary gets its own
  /// buffer of its current size) for comparison.
  Polynomial SsaTotal;

  std::string toString() const;
};

/// Runs the allocation over all temporary values of \p G (internalized or
/// not), using their current (possibly reduced) sizes.
Allocation allocateSpaces(const graph::Graph &G);

} // namespace storage
} // namespace lcdfg

#endif // LCDFG_STORAGE_LIVENESSALLOCATOR_H
