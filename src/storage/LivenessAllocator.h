//===- storage/LivenessAllocator.h - Whole-graph space reuse ----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static liveness analysis of Section 4.4 that assigns temporary value
/// sets to a small table of shared spaces. The graph is processed in reverse
/// execution order; a table tracks spaces with their capacity and an active
/// flag. A value node is assigned to an inactive space of sufficient
/// capacity, or an inactive smaller space is expanded, or a new space is
/// created; when the node writing the value is visited the space becomes
/// inactive again.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_STORAGE_LIVENESSALLOCATOR_H
#define LCDFG_STORAGE_LIVENESSALLOCATOR_H

#include "graph/Graph.h"
#include "support/Polynomial.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lcdfg {
namespace storage {

/// One entry of the allocator's space table.
struct Space {
  unsigned PointerId = 0;
  Polynomial Capacity;
};

/// Result of the liveness-based allocation.
struct Allocation {
  /// Array name -> space id.
  std::map<std::string, unsigned> ValueToSpace;
  std::vector<Space> Spaces;
  /// Total bytes-in-elements of the shared allocation.
  Polynomial Total;
  /// Total under static single assignment (every temporary gets its own
  /// buffer of its current size) for comparison.
  Polynomial SsaTotal;

  std::string toString() const;
};

/// Runs the allocation over all temporary values of \p G (internalized or
/// not), using their current (possibly reduced) sizes.
Allocation allocateSpaces(const graph::Graph &G);

/// The concrete (bytes, not polynomials) sibling of allocateSpaces for the
/// list scheduler's live-temporary budget: given each storage space's size
/// and the set of temporary spaces every task touches, it answers "what
/// would admitting task T cost right now?" and tracks the high-water mark
/// of live bytes as tasks are admitted and retired.
///
/// A temporary space becomes live when the first task touching it is
/// admitted and stays live until every task touching it has retired (the
/// conservative closure of the Section-4.4 liveness: without per-use
/// dataflow we cannot free a space while a later toucher is still
/// outstanding). Persistent spaces are the program's inputs/outputs — they
/// exist regardless of schedule and are excluded from the budget.
///
/// Not thread-safe: the list scheduler queries and mutates it under its
/// own ready-queue lock.
class FootprintTracker {
public:
  /// One space as the tracker sees it.
  struct SpaceInfo {
    std::int64_t Bytes = 0;
    bool Persistent = false;
  };

  /// \p Spaces is indexed by space id; \p TaskSpaces[T] lists the space
  /// ids task T touches (duplicates tolerated; persistent and zero-byte
  /// spaces are ignored).
  FootprintTracker(std::vector<SpaceInfo> Spaces,
                   std::vector<std::vector<unsigned>> TaskSpaces);

  /// Bytes that would newly become live if task \p T were admitted now.
  std::int64_t activationBytes(int T) const;
  /// Marks task \p T running: activates its inactive spaces and advances
  /// the high-water mark.
  void admit(int T);
  /// Marks task \p T finished: spaces whose every toucher has retired go
  /// dead and their bytes leave the live total.
  void retire(int T);

  /// Currently live temporary bytes.
  std::int64_t liveBytes() const { return Live; }
  /// Maximum of liveBytes() over the admits so far.
  std::int64_t highWater() const { return HighWater; }
  /// The largest single-task activation from a cold start — no budget
  /// below this is feasible for any schedule.
  std::int64_t maxSingleTaskBytes() const;
  /// Static tie-break hint: bytes of spaces whose last toucher (highest
  /// task id, i.e. latest in the plan's topological order) is \p T.
  /// Scheduling T sooner tends to free these sooner.
  std::int64_t releaseHintBytes(int T) const;
  /// High-water mark of running tasks 0..N-1 in index order on a scratch
  /// copy (the serial schedule's footprint — a known-feasible budget).
  std::int64_t serialHighWater() const;

private:
  std::vector<SpaceInfo> Spaces;
  std::vector<std::vector<unsigned>> TaskSpaces;
  std::vector<int> RemainingUses; ///< Per space: touchers not yet retired.
  std::vector<bool> Active;       ///< Per space: currently live.
  std::int64_t Live = 0;
  std::int64_t HighWater = 0;
};

} // namespace storage
} // namespace lcdfg

#endif // LCDFG_STORAGE_LIVENESSALLOCATOR_H
