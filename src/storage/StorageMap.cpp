//===- storage/StorageMap.cpp ---------------------------------------------===//

#include "storage/StorageMap.h"

#include "support/Errors.h"
#include "support/Status.h"

#include <cassert>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::storage;
using graph::Graph;
using graph::InvalidNode;
using graph::NodeId;

std::string StorageMap::toString(std::string_view Symbol) const {
  std::ostringstream OS;
  OS << Array << " -> space" << SpaceId << " [";
  OS << (Kind == MapKind::Direct ? "direct" : "modulo");
  OS << ", size " << Size.toString(Symbol);
  if (Persistent)
    OS << ", persistent";
  OS << "]";
  return OS.str();
}

StoragePlan StoragePlan::build(const Graph &G, bool UseAllocation,
                               unsigned ModuloWiden) {
  StoragePlan Plan;
  assert(ModuloWiden >= 1 && "widening factor must be positive");

  Allocation Alloc;
  if (UseAllocation)
    Alloc = allocateSpaces(G);

  // Temporaries first: their spaces come from the liveness allocation (or
  // are private under single assignment).
  unsigned NextSpace = 0;
  if (UseAllocation) {
    for (const Space &S : Alloc.Spaces)
      Plan.SpaceSizes.push_back(S.Capacity);
    NextSpace = static_cast<unsigned>(Plan.SpaceSizes.size());
  }

  for (NodeId V = 0; V < G.numValueNodes(); ++V) {
    const graph::ValueNode &Value = G.value(V);
    if (Value.Dead)
      continue;
    const ir::ArrayInfo &Info = G.chain().array(Value.Array);
    if (!Info.Extent)
      support::raise(support::ErrorCode::StorageInvalid,
                     "storage plan: array without extent: " + Value.Array);

    StorageMap M;
    M.Array = Value.Array;
    M.Extent = *Info.Extent;
    M.Persistent = Value.Persistent;
    if (Value.Persistent) {
      M.Kind = MapKind::Direct;
      M.Size = Value.OriginalSize;
      M.SpaceId = NextSpace++;
      Plan.SpaceSizes.push_back(M.Size);
    } else {
      M.Kind = Value.Internalized ? MapKind::Modulo : MapKind::Direct;
      M.Size = Value.Size;
      if (M.Kind == MapKind::Modulo && ModuloWiden > 1)
        M.Size *= Polynomial(static_cast<std::int64_t>(ModuloWiden));
      if (Value.Internalized) {
        NodeId Producer = G.producerOf(V);
        if (Producer != InvalidNode)
          M.ExecOrder = G.stmt(Producer).DimOrder;
      }
      auto It = Alloc.ValueToSpace.find(Value.Array);
      if (UseAllocation && It != Alloc.ValueToSpace.end()) {
        M.SpaceId = It->second;
      } else {
        M.SpaceId = NextSpace++;
        Plan.SpaceSizes.push_back(M.Size);
      }
    }
    Plan.Maps.emplace(M.Array, std::move(M));
  }
  return Plan;
}

const StorageMap &StoragePlan::map(std::string_view Array) const {
  auto It = Maps.find(Array);
  if (It == Maps.end())
    support::raise(support::ErrorCode::UnknownArray,
                   "storage plan: no map for array " + std::string(Array));
  return It->second;
}

bool StoragePlan::hasMap(std::string_view Array) const {
  return Maps.find(Array) != Maps.end();
}

Polynomial StoragePlan::temporaryFootprint() const {
  // Sum capacities of spaces that hold at least one temporary.
  std::vector<bool> IsTemp(SpaceSizes.size(), false);
  for (const auto &[Name, M] : Maps) {
    (void)Name;
    if (!M.Persistent)
      IsTemp[M.SpaceId] = true;
  }
  Polynomial Total;
  for (std::size_t I = 0; I < SpaceSizes.size(); ++I)
    if (IsTemp[I])
      Total += SpaceSizes[I];
  return Total;
}

std::string StoragePlan::toString(std::string_view Symbol) const {
  std::ostringstream OS;
  for (const auto &[Name, M] : Maps) {
    (void)Name;
    OS << M.toString(Symbol) << "\n";
  }
  OS << "temporary footprint: " << temporaryFootprint().toString(Symbol)
     << " elements\n";
  return OS.str();
}

ConcreteStorage::ConcreteStorage(
    const StoragePlan &Plan,
    const std::map<std::string, std::int64_t, std::less<>> &Env) {
  std::size_t NumSpaces = Plan.spaceSizes().size();
  Spaces.resize(NumSpaces);
  std::vector<std::int64_t> SpaceElems(NumSpaces, 0);
  for (std::size_t I = 0; I < NumSpaces; ++I)
    SpaceElems[I] = Plan.spaceSizes()[I].evaluate(
        Env.count("N") ? Env.find("N")->second : 1);

  for (const auto &[Name, M] : Plan.maps()) {
    ArrayLayout L;
    L.Map = &M;
    L.Space = M.SpaceId;
    unsigned Rank = M.Extent.rank();
    L.Lowers.resize(Rank);
    L.Strides.assign(Rank, 1);
    std::vector<std::int64_t> Extents(Rank);
    for (unsigned D = 0; D < Rank; ++D) {
      L.Lowers[D] = M.Extent.dim(D).Lower.evaluate(Env);
      Extents[D] =
          M.Extent.dim(D).Upper.evaluate(Env) - L.Lowers[D] + 1;
      if (Extents[D] < 0)
        Extents[D] = 0;
    }
    // Strides follow the producing loop's execution order (relevant for
    // modulo buffers after interchange); the natural order otherwise.
    std::vector<unsigned> Order = M.ExecOrder;
    if (Order.empty()) {
      Order.resize(Rank);
      for (unsigned D = 0; D < Rank; ++D)
        Order[D] = D;
    }
    std::int64_t Acc = 1;
    for (unsigned K = Rank; K-- > 0;) {
      L.Strides[Order[K]] = Acc;
      Acc *= Extents[Order[K]];
    }
    L.Size = M.Size.evaluate(Env.count("N") ? Env.find("N")->second : 1);
    if (L.Size < 1)
      L.Size = 1;
    // Ensure the space is large enough (capacities may have been expanded
    // by the allocator; direct maps need the full extent product).
    std::int64_t Needed =
        M.Kind == MapKind::Direct
            ? (Rank ? L.Strides[0] * Extents[0] : 1)
            : L.Size;
    SpaceElems[L.Space] = std::max(SpaceElems[L.Space], Needed);
    Layouts.emplace(Name, std::move(L));
  }
  for (std::size_t I = 0; I < NumSpaces; ++I)
    Spaces[I].assign(static_cast<std::size_t>(std::max<std::int64_t>(
                         SpaceElems[I], 1)),
                     0.0);
}

const ConcreteStorage::ArrayLayout &
ConcreteStorage::layout(std::string_view Array) const {
  auto It = Layouts.find(Array);
  if (It == Layouts.end())
    support::raise(support::ErrorCode::UnknownArray,
                   "concrete storage: unknown array " + std::string(Array));
  return It->second;
}

std::size_t
ConcreteStorage::indexOf(std::string_view Array,
                         const std::vector<std::int64_t> &Point) const {
  const ArrayLayout &L = layout(Array);
  assert(Point.size() == L.Lowers.size() && "point arity mismatch");
  std::int64_t Linear = 0;
  for (std::size_t D = 0; D < Point.size(); ++D)
    Linear += (Point[D] - L.Lowers[D]) * L.Strides[D];
  if (L.Map->Kind == MapKind::Modulo) {
    Linear %= L.Size;
    if (Linear < 0)
      Linear += L.Size;
  }
  assert(Linear >= 0 && "negative storage index");
  return static_cast<std::size_t>(Linear);
}

double &ConcreteStorage::at(std::string_view Array,
                            const std::vector<std::int64_t> &Point) {
  const ArrayLayout &L = layout(Array);
  std::size_t Index = indexOf(Array, Point);
  std::vector<double> &Buffer = Spaces[L.Space];
  assert(Index < Buffer.size() && "storage index out of bounds");
  return Buffer[Index];
}

ConcreteStorage::Resolved
ConcreteStorage::resolve(std::string_view Array) const {
  const ArrayLayout &L = layout(Array);
  Resolved R;
  R.Space = L.Space;
  R.Persistent = L.Map->Persistent;
  R.Modulo = L.Map->Kind == MapKind::Modulo;
  R.ModSize = L.Size;
  R.Lowers = L.Lowers;
  R.Strides = L.Strides;
  return R;
}

void ConcreteStorage::clear() {
  for (std::vector<double> &S : Spaces)
    std::fill(S.begin(), S.end(), 0.0);
}

std::vector<double> &ConcreteStorage::spaceOf(std::string_view Array) {
  return Spaces[layout(Array).Space];
}

support::Expected<StoragePlan> StoragePlan::tryBuild(const graph::Graph &G,
                                                     bool UseAllocation,
                                                     unsigned ModuloWiden) {
  auto R = support::tryInvoke(
      [&] { return build(G, UseAllocation, ModuloWiden); });
  if (!R)
    return R.takeError().withContext("building storage plan");
  return R;
}
