//===- tiling/Wavefront.cpp -----------------------------------------------===//

#include "tiling/Wavefront.h"

#include "support/Errors.h"
#include "support/Status.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace lcdfg;
using namespace lcdfg::tiling;
using graph::Graph;
using graph::NodeId;

namespace {

/// Collects the fused-space dependence distance vectors of \p Node: for a
/// producer member writing A and a consumer member reading A, the distance
/// from the producing to the consuming fused iteration is
/// (consumerShift - readOffset) - (producerShift - writeOffset).
std::vector<std::vector<std::int64_t>>
dependenceDistances(const Graph &G, const graph::StmtNode &Node) {
  unsigned Rank = Node.Domain.rank();
  std::set<std::vector<std::int64_t>> Distances;
  for (std::size_t P = 0; P < Node.Nests.size(); ++P) {
    const ir::LoopNest &PNest = G.chain().nest(Node.Nests[P]);
    const std::vector<std::int64_t> &WOff = PNest.Write.Offsets.front();
    for (std::size_t C = 0; C < Node.Nests.size(); ++C) {
      const ir::LoopNest &CNest = G.chain().nest(Node.Nests[C]);
      for (const ir::Access &R : CNest.Reads) {
        if (R.Array != PNest.Write.Array)
          continue;
        for (const auto &ROff : R.Offsets) {
          std::vector<std::int64_t> D(Rank);
          bool NonZero = false;
          for (unsigned K = 0; K < Rank; ++K) {
            D[K] = (Node.Shifts[C][K] - ROff[K]) -
                   (Node.Shifts[P][K] - WOff[K]);
            NonZero |= D[K] != 0;
          }
          if (NonZero)
            Distances.insert(std::move(D));
        }
      }
    }
  }
  return {Distances.begin(), Distances.end()};
}

} // namespace

WavefrontPlan tiling::wavefrontTiling(const Graph &G, NodeId Stmt,
                                      const std::vector<std::int64_t>
                                          &TileSizes,
                                      const ParamEnv &Env) {
  const graph::StmtNode &Node = G.stmt(Stmt);
  unsigned Rank = Node.Domain.rank();
  assert(TileSizes.size() == Rank && "tile size arity mismatch");
  if (!Node.DimOrder.empty())
    support::raise(support::ErrorCode::TilingInvalid,
                   "wavefrontTiling: interchange the node after tiling "
                   "decisions, not before (DimOrder must be natural)");

  WavefrontPlan Plan;
  Plan.Tiles = classicTiles(Node.Domain, TileSizes, Env);

  // Tile-grid shape (for index arithmetic).
  std::vector<std::int64_t> Lo(Rank), Extent(Rank), GridDim(Rank, 1);
  for (unsigned D = 0; D < Rank; ++D) {
    Lo[D] = Node.Domain.dim(D).Lower.evaluate(Env);
    Extent[D] = Node.Domain.dim(D).Upper.evaluate(Env) - Lo[D] + 1;
    std::int64_t T = TileSizes[D] > 0 ? TileSizes[D] : Extent[D];
    GridDim[D] = (Extent[D] + T - 1) / T;
  }

  // Dependence distances must stay within a single tile so tile-level
  // dependences connect only adjacent tiles.
  std::vector<std::vector<std::int64_t>> Distances =
      dependenceDistances(G, Node);
  for (const auto &D : Distances)
    for (unsigned K = 0; K < Rank; ++K) {
      std::int64_t T = TileSizes[K] > 0 ? TileSizes[K] : Extent[K];
      if (std::abs(D[K]) > T)
        support::raise(
            support::ErrorCode::TilingInvalid,
            "wavefrontTiling: dependence distance exceeds the tile size "
            "in dimension " +
                Node.Domain.dim(K).Name);
    }
  std::set<std::vector<int>> Signs;
  for (const auto &D : Distances) {
    std::vector<int> S(Rank);
    bool NonZero = false;
    for (unsigned K = 0; K < Rank; ++K) {
      S[K] = D[K] > 0 ? 1 : D[K] < 0 ? -1 : 0;
      NonZero |= S[K] != 0;
    }
    if (NonZero)
      Signs.insert(std::move(S));
  }
  Plan.DepVectors.assign(Signs.begin(), Signs.end());

  // Level the tile grid by longest path. classicTiles enumerates tiles in
  // lexicographic grid order and dependence vectors are lexicographically
  // positive, so a single pass in tile order reaches a fixed point.
  std::vector<int> Level(Plan.Tiles.size(), 0);
  auto GridIndex = [&](const std::vector<std::int64_t> &Coord) {
    std::int64_t Index = 0;
    for (unsigned D = 0; D < Rank; ++D)
      Index = Index * GridDim[D] + Coord[D];
    return Index;
  };
  std::vector<std::int64_t> Coord(Rank, 0);
  for (std::size_t T = 0; T < Plan.Tiles.size(); ++T) {
    // Propagate to dependents.
    for (const std::vector<int> &V : Plan.DepVectors) {
      std::vector<std::int64_t> Next(Rank);
      bool InGrid = true;
      for (unsigned D = 0; D < Rank; ++D) {
        Next[D] = Coord[D] + V[D];
        InGrid &= Next[D] >= 0 && Next[D] < GridDim[D];
      }
      if (InGrid) {
        std::int64_t NI = GridIndex(Next);
        Level[static_cast<std::size_t>(NI)] =
            std::max(Level[static_cast<std::size_t>(NI)],
                     Level[T] + 1);
      }
    }
    // Advance lexicographic tile coordinate.
    for (unsigned D = Rank; D-- > 0;) {
      if (++Coord[D] < GridDim[D])
        break;
      Coord[D] = 0;
    }
  }

  int MaxLevel = 0;
  for (int L : Level)
    MaxLevel = std::max(MaxLevel, L);
  Plan.Fronts.assign(static_cast<std::size_t>(MaxLevel) + 1, {});
  for (std::size_t T = 0; T < Plan.Tiles.size(); ++T)
    Plan.Fronts[static_cast<std::size_t>(Level[T])].push_back(
        static_cast<unsigned>(T));
  return Plan;
}

void tiling::executeWavefront(const Graph &G, NodeId Stmt,
                              const WavefrontPlan &Plan,
                              const codegen::KernelRegistry &Kernels,
                              storage::ConcreteStorage &Store,
                              const ParamEnv &Env,
                              bool ReverseWithinFront) {
  const graph::StmtNode &Node = G.stmt(Stmt);
  unsigned Rank = Node.Domain.rank();
  std::vector<double> Reads;
  std::vector<std::int64_t> Orig(Rank), Where(Rank);

  auto RunTile = [&](unsigned TileIdx) {
    const poly::BoxSet &Tile = Plan.Tiles[TileIdx];
    for (std::size_t M = 0; M < Node.Nests.size(); ++M) {
      const ir::LoopNest &Nest = G.chain().nest(Node.Nests[M]);
      const codegen::KernelRegistry::Kernel &Kernel =
          Kernels.get(Nest.KernelId);
      poly::BoxSet Domain =
          Nest.Domain.translated(Node.Shifts[M])
              .substituted("N", poly::AffineExpr(Env.at("N")));
      // Intersect the shifted member domain with the tile; both are
      // concrete after substitution.
      poly::BoxSet Slice = Domain.intersect(Tile);
      if (Slice.isProvablyEmpty())
        continue;
      Slice.forEachPoint(Env, [&](const std::vector<std::int64_t> &Point) {
        for (unsigned D = 0; D < Rank; ++D)
          Orig[D] = Point[D] - Node.Shifts[M][D];
        Reads.clear();
        for (const ir::Access &R : Nest.Reads)
          for (const auto &Off : R.Offsets) {
            for (unsigned D = 0; D < Rank; ++D)
              Where[D] = Orig[D] + Off[D];
            Reads.push_back(Store.at(R.Array, Where));
          }
        for (unsigned D = 0; D < Rank; ++D)
          Where[D] = Orig[D] + Nest.Write.Offsets.front()[D];
        double &Target = Store.at(Nest.Write.Array, Where);
        Target = Kernel(Reads, Target);
      });
    }
  };

  for (const std::vector<unsigned> &Front : Plan.Fronts) {
    if (ReverseWithinFront) {
      for (auto It = Front.rbegin(); It != Front.rend(); ++It)
        RunTile(*It);
    } else {
      for (unsigned T : Front)
        RunTile(T);
    }
  }
}
