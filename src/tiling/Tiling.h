//===- tiling/Tiling.h - Classic and overlapped tiling ----------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiling transformations over loop chains (Section 4.3, Figure 5). Classic
/// tiling assigns each iteration to exactly one tile and needs barriers
/// between dependent statement sets. Overlapped tiling expands producer
/// statement sets per tile so tiles execute independently, at the price of
/// redundant computation. Two intra-tile schedules are supported:
///
///  * fusion of tiles (Figure 5c, the Halide/PolyMage shape): each statement
///    set runs to completion over its expanded tile domain, keeping
///    vectorizable inner loops and full-tile temporaries;
///  * fusion within tiles (Figure 5f, this paper's contribution): the
///    shifted, fused schedule runs inside each tile, shrinking temporaries
///    to the reuse distance.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_TILING_TILING_H
#define LCDFG_TILING_TILING_H

#include "ir/LoopChain.h"
#include "poly/IntegerSet.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lcdfg {
namespace tiling {

/// Environment binding symbolic parameters to concrete values.
using ParamEnv = std::map<std::string, std::int64_t, std::less<>>;

/// Decomposes \p Domain into disjoint rectangular tiles of \p TileSizes
/// (one entry per dimension; 0 means "do not tile this dimension"). Bounds
/// are concrete under \p Env; the final tile in a dimension may be partial.
std::vector<poly::BoxSet> classicTiles(const poly::BoxSet &Domain,
                                       const std::vector<std::int64_t>
                                           &TileSizes,
                                       const ParamEnv &Env);

/// One overlapped tile: the seed tile of the final consumer plus the
/// expanded iteration domain of every nest in the chain.
struct OverlappedTile {
  poly::BoxSet Seed;
  /// Nest id -> expanded (and clipped) domain the tile must execute.
  std::map<unsigned, poly::BoxSet> NestDomains;
};

/// Result of an overlapped tiling of a whole chain.
struct ChainTiling {
  std::vector<OverlappedTile> Tiles;

  /// Total iterations executed per nest across all tiles.
  std::map<unsigned, std::int64_t> ExecutedPoints;
  /// Iterations in the untiled nest domains.
  std::map<unsigned, std::int64_t> RequiredPoints;

  /// Redundant-computation ratio: executed / required over all nests.
  double redundancy() const;

  /// True when the seed tiles are pairwise disjoint under \p Env — the
  /// property that makes the terminal statement set's per-tile writes
  /// race-free. Exported for the static verifier.
  bool seedsDisjoint(const ParamEnv &Env) const;
};

/// Computes the overlapped tiling of \p Chain: the domain of the *last*
/// nest is decomposed with \p TileSizes, and every earlier nest's domain is
/// expanded backward through the read stencils so each tile is
/// self-contained (Figure 5(c)/(f) share this decomposition; they differ in
/// the intra-tile schedule). Nest domains are clipped to the original
/// domains.
ChainTiling overlappedTiling(const ir::LoopChain &Chain,
                             const std::vector<std::int64_t> &TileSizes,
                             const ParamEnv &Env);

/// Validating form of overlappedTiling: an E006-tiling-invalid Status
/// instead of a thrown StatusError when the tiling preconditions fail.
support::Expected<ChainTiling>
tryOverlappedTiling(const ir::LoopChain &Chain,
                    const std::vector<std::int64_t> &TileSizes,
                    const ParamEnv &Env);

/// Renders a 1D chain tiling in the style of Figure 5: one line per nest
/// per tile, listing the executed iterations.
std::string renderTiling1D(const ir::LoopChain &Chain, const ChainTiling &T,
                           const ParamEnv &Env);

} // namespace tiling
} // namespace lcdfg

#endif // LCDFG_TILING_TILING_H
