//===- tiling/Wavefront.h - Wavefront execution of fused tiles --*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic (non-overlapped) tiling of a *fused* statement node creates
/// dependences between tiles: Figure 5(e) shows the 1D case, where they
/// force serial execution. The loop-chain toolchain's answer (Bertolacci
/// et al.) is wavefront scheduling: tiles are levelled by their dependence
/// distances, and every tile within a level (a front) can execute in
/// parallel. This module derives the inter-tile dependence vectors from
/// the fused node's shifts and access offsets, levels the tile grid, and
/// executes the fronts — giving the classic-tiling alternative to the
/// overlapped tiling of Section 4.3 without redundant computation.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_TILING_WAVEFRONT_H
#define LCDFG_TILING_WAVEFRONT_H

#include "codegen/Interpreter.h"
#include "graph/Graph.h"
#include "storage/StorageMap.h"
#include "tiling/Tiling.h"

#include <cstdint>
#include <vector>

namespace lcdfg {
namespace tiling {

/// A wavefront plan for one fused statement node.
struct WavefrontPlan {
  /// Disjoint tiles of the fused iteration space (concrete bounds).
  std::vector<poly::BoxSet> Tiles;
  /// Tile-grid dependence vectors (one entry per dimension, in
  /// {-1, 0, +1}); each is lexicographically positive.
  std::vector<std::vector<int>> DepVectors;
  /// Tile indices grouped by dependence level: every tile in a front may
  /// execute concurrently once the previous fronts completed.
  std::vector<std::vector<unsigned>> Fronts;

  /// True when every front holds a single tile — the serialized execution
  /// of Figure 5(e).
  bool isSerial() const {
    for (const auto &F : Fronts)
      if (F.size() > 1)
        return false;
    return true;
  }
  /// Width of the widest front (the available tile parallelism).
  std::size_t maxParallelism() const {
    std::size_t Max = 0;
    for (const auto &F : Fronts)
      Max = std::max(Max, F.size());
    return Max;
  }
};

/// Builds the wavefront plan for fused statement node \p Stmt of \p G,
/// tiling its domain with \p TileSizes (0 = do not tile that dimension).
/// Every dependence distance must fit within one tile (tile sizes at least
/// the stencil extents); aborts otherwise.
WavefrontPlan wavefrontTiling(const graph::Graph &G, graph::NodeId Stmt,
                              const std::vector<std::int64_t> &TileSizes,
                              const ParamEnv &Env);

/// Executes the fused node front by front (tiles within a front run in an
/// arbitrary order — pass \p ReverseWithinFront to stress independence).
void executeWavefront(const graph::Graph &G, graph::NodeId Stmt,
                      const WavefrontPlan &Plan,
                      const codegen::KernelRegistry &Kernels,
                      storage::ConcreteStorage &Store, const ParamEnv &Env,
                      bool ReverseWithinFront = false);

} // namespace tiling
} // namespace lcdfg

#endif // LCDFG_TILING_WAVEFRONT_H
