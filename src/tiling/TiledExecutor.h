//===- tiling/TiledExecutor.h - Execute overlapped tilings ------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a ChainTiling through the kernel registry and concrete
/// storage: per tile, every nest runs to completion over its expanded
/// domain in chain order (the fusion-of-tiles schedule of Figure 5(c)).
/// Because tiles are self-contained, any tile order — including parallel —
/// produces the untiled result; the property tests rely on this to
/// validate the tiling machinery end to end.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_TILING_TILEDEXECUTOR_H
#define LCDFG_TILING_TILEDEXECUTOR_H

#include "codegen/Interpreter.h"
#include "storage/StorageMap.h"
#include "tiling/Tiling.h"

namespace lcdfg {
namespace tiling {

/// Runs \p Tiling over \p Store by compiling it to an exec::ExecutionPlan.
/// Kernels are looked up by each nest's KernelId. With \p Threads <= 1
/// tiles execute in order (within a tile, nests execute in chain order
/// over their expanded domains); with more, self-contained tiles run
/// concurrently on the thread pool with temporaries privatized per worker,
/// producing the identical result.
void executeTiled(const ir::LoopChain &Chain, const ChainTiling &Tiling,
                  const codegen::KernelRegistry &Kernels,
                  storage::ConcreteStorage &Store, const ParamEnv &Env,
                  int Threads = 1);

/// Reference: the untiled chain, one nest after another (independent
/// nests may run concurrently when \p Threads > 1).
void executeUntiled(const ir::LoopChain &Chain,
                    const codegen::KernelRegistry &Kernels,
                    storage::ConcreteStorage &Store, const ParamEnv &Env,
                    int Threads = 1);

} // namespace tiling
} // namespace lcdfg

#endif // LCDFG_TILING_TILEDEXECUTOR_H
