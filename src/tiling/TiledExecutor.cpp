//===- tiling/TiledExecutor.cpp -------------------------------------------===//

#include "tiling/TiledExecutor.h"

using namespace lcdfg;
using namespace lcdfg::tiling;

namespace {

/// Executes one nest over \p Domain.
void runNest(const ir::LoopNest &Nest,
             const codegen::KernelRegistry &Kernels,
             storage::ConcreteStorage &Store, const poly::BoxSet &Domain,
             const ParamEnv &Env) {
  const codegen::KernelRegistry::Kernel &Kernel = Kernels.get(Nest.KernelId);
  unsigned Rank = Nest.Domain.rank();
  std::vector<double> Reads;
  std::vector<std::int64_t> Where(Rank);
  Domain.forEachPoint(Env, [&](const std::vector<std::int64_t> &Point) {
    Reads.clear();
    for (const ir::Access &R : Nest.Reads)
      for (const auto &Off : R.Offsets) {
        for (unsigned D = 0; D < Rank; ++D)
          Where[D] = Point[D] + Off[D];
        Reads.push_back(Store.at(R.Array, Where));
      }
    for (unsigned D = 0; D < Rank; ++D)
      Where[D] = Point[D] + Nest.Write.Offsets.front()[D];
    double &Target = Store.at(Nest.Write.Array, Where);
    Target = Kernel(Reads, Target);
  });
}

} // namespace

void tiling::executeTiled(const ir::LoopChain &Chain,
                          const ChainTiling &Tiling,
                          const codegen::KernelRegistry &Kernels,
                          storage::ConcreteStorage &Store,
                          const ParamEnv &Env) {
  for (const OverlappedTile &Tile : Tiling.Tiles)
    for (unsigned N = 0; N < Chain.numNests(); ++N) {
      auto It = Tile.NestDomains.find(N);
      if (It == Tile.NestDomains.end())
        continue;
      runNest(Chain.nest(N), Kernels, Store, It->second, Env);
    }
}

void tiling::executeUntiled(const ir::LoopChain &Chain,
                            const codegen::KernelRegistry &Kernels,
                            storage::ConcreteStorage &Store,
                            const ParamEnv &Env) {
  for (unsigned N = 0; N < Chain.numNests(); ++N)
    runNest(Chain.nest(N), Kernels, Store, Chain.nest(N).Domain, Env);
}
