//===- tiling/TiledExecutor.cpp -------------------------------------------===//

#include "tiling/TiledExecutor.h"

#include "exec/ExecutionPlan.h"
#include "exec/PlanRunner.h"

using namespace lcdfg;
using namespace lcdfg::tiling;

void tiling::executeTiled(const ir::LoopChain &Chain,
                          const ChainTiling &Tiling,
                          const codegen::KernelRegistry &Kernels,
                          storage::ConcreteStorage &Store, const ParamEnv &Env,
                          int Threads) {
  exec::ExecutionPlan Plan =
      exec::ExecutionPlan::fromTiling(Chain, Tiling, Store, Env);
  exec::RunOptions Opts;
  Opts.Threads = Threads;
  exec::runPlan(Plan, Kernels, Store, Opts);
}

void tiling::executeUntiled(const ir::LoopChain &Chain,
                            const codegen::KernelRegistry &Kernels,
                            storage::ConcreteStorage &Store,
                            const ParamEnv &Env, int Threads) {
  exec::ExecutionPlan Plan = exec::ExecutionPlan::fromChain(Chain, Store, Env);
  exec::RunOptions Opts;
  Opts.Threads = Threads;
  exec::runPlan(Plan, Kernels, Store, Opts);
}
