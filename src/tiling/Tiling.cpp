//===- tiling/Tiling.cpp --------------------------------------------------===//

#include "tiling/Tiling.h"

#include "support/Errors.h"
#include "support/Status.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::tiling;

std::vector<poly::BoxSet>
tiling::classicTiles(const poly::BoxSet &Domain,
                     const std::vector<std::int64_t> &TileSizes,
                     const ParamEnv &Env) {
  unsigned Rank = Domain.rank();
  assert(TileSizes.size() == Rank && "tile size arity mismatch");
  std::vector<std::int64_t> Lo(Rank), Hi(Rank);
  for (unsigned D = 0; D < Rank; ++D) {
    Lo[D] = Domain.dim(D).Lower.evaluate(Env);
    Hi[D] = Domain.dim(D).Upper.evaluate(Env);
    if (Lo[D] > Hi[D])
      return {};
  }

  std::vector<poly::BoxSet> Tiles;
  // Iterate tile origins dimension by dimension.
  std::vector<std::int64_t> Origin = Lo;
  while (true) {
    std::vector<poly::Dim> Dims(Rank);
    for (unsigned D = 0; D < Rank; ++D) {
      std::int64_t Size = TileSizes[D] > 0 ? TileSizes[D] : Hi[D] - Lo[D] + 1;
      Dims[D] = poly::Dim{Domain.dim(D).Name, poly::AffineExpr(Origin[D]),
                          poly::AffineExpr(std::min(Origin[D] + Size - 1,
                                                    Hi[D]))};
    }
    Tiles.push_back(poly::BoxSet(std::move(Dims)));

    // Advance origin (last dimension fastest).
    unsigned D = Rank;
    bool Done = true;
    while (D-- > 0) {
      std::int64_t Size = TileSizes[D] > 0 ? TileSizes[D] : Hi[D] - Lo[D] + 1;
      Origin[D] += Size;
      if (Origin[D] <= Hi[D]) {
        Done = false;
        break;
      }
      Origin[D] = Lo[D];
      if (D == 0)
        break;
    }
    if (Done)
      break;
  }
  return Tiles;
}

double ChainTiling::redundancy() const {
  std::int64_t Executed = 0, Required = 0;
  for (const auto &[Nest, Points] : ExecutedPoints) {
    (void)Nest;
    Executed += Points;
  }
  for (const auto &[Nest, Points] : RequiredPoints) {
    (void)Nest;
    Required += Points;
  }
  return Required == 0 ? 1.0
                       : static_cast<double>(Executed) /
                             static_cast<double>(Required);
}

bool ChainTiling::seedsDisjoint(const ParamEnv &Env) const {
  for (std::size_t A = 0; A < Tiles.size(); ++A)
    for (std::size_t B = A + 1; B < Tiles.size(); ++B)
      if (Tiles[A].Seed.intersect(Tiles[B].Seed).numPoints(Env) != 0)
        return false;
  return true;
}

ChainTiling tiling::overlappedTiling(const ir::LoopChain &Chain,
                                     const std::vector<std::int64_t>
                                         &TileSizes,
                                     const ParamEnv &Env) {
  if (Chain.numNests() == 0)
    support::raise(support::ErrorCode::TilingInvalid,
                   "overlappedTiling: empty chain");
  unsigned Last = Chain.numNests() - 1;
  unsigned Rank = Chain.nest(Last).Domain.rank();

  // Terminal nests — those whose outputs nothing in the chain reads — all
  // seed the tiling: a chain like MiniFluxDiv has one terminal per
  // direction (Dx, Dy, Dz), each of which must execute every iteration
  // exactly once across the tiles.
  std::vector<unsigned> Terminals;
  for (unsigned I = 0; I < Chain.numNests(); ++I)
    if (Chain.readersOf(Chain.nest(I).Write.Array).empty())
      Terminals.push_back(I);
  if (Terminals.empty())
    Terminals.push_back(Last);

  ChainTiling Result;
  for (unsigned I = 0; I < Chain.numNests(); ++I)
    Result.RequiredPoints[I] = Chain.nest(I).Domain.numPoints(Env);

  // Concretized clip box for a nest's own domain.
  auto ConcreteDomain = [&](unsigned NestId) {
    std::vector<std::tuple<std::string, poly::AffineExpr, poly::AffineExpr>>
        Bounds;
    const poly::BoxSet &D = Chain.nest(NestId).Domain;
    for (unsigned R = 0; R < Rank; ++R)
      Bounds.emplace_back(D.dim(R).Name,
                          poly::AffineExpr(D.dim(R).Lower.evaluate(Env)),
                          poly::AffineExpr(D.dim(R).Upper.evaluate(Env)));
    return poly::BoxSet::fromBounds(Bounds);
  };

  // Tile the hull of the terminal domains so every terminal is covered
  // even when their extents differ.
  poly::BoxSet TileRegion = ConcreteDomain(Terminals.front());
  for (unsigned T : Terminals)
    TileRegion = TileRegion.hull(ConcreteDomain(T));

  for (const poly::BoxSet &Seed : classicTiles(TileRegion, TileSizes, Env)) {
    OverlappedTile Tile;
    Tile.Seed = Seed;
    // Every terminal executes this tile's slice of its own domain.
    for (unsigned T : Terminals) {
      poly::BoxSet Slice = Seed.intersect(ConcreteDomain(T));
      if (!Slice.isProvablyEmpty())
        Tile.NestDomains[T] = std::move(Slice);
    }

    // Walk the chain backward: a producer must cover every element its
    // consumers read, translated back through the write offset.
    for (unsigned P = Chain.numNests() - 1; P-- > 0;) {
      const ir::LoopNest &PNest = Chain.nest(P);
      const std::string &Written = PNest.Write.Array;
      const std::vector<std::int64_t> &WOff = PNest.Write.Offsets.front();

      std::optional<poly::BoxSet> Needed;
      for (unsigned C = P + 1; C < Chain.numNests(); ++C) {
        auto CIt = Tile.NestDomains.find(C);
        if (CIt == Tile.NestDomains.end())
          continue;
        const ir::LoopNest &CNest = Chain.nest(C);
        for (const ir::Access &R : CNest.Reads) {
          if (R.Array != Written)
            continue;
          std::vector<std::int64_t> MinOff = R.minOffsets();
          std::vector<std::int64_t> MaxOff = R.maxOffsets();
          // Elements read: [C.lo + minOff, C.hi + maxOff]; producer
          // iterations: subtract the write offset.
          std::vector<poly::Dim> Dims(Rank);
          for (unsigned D = 0; D < Rank; ++D) {
            const poly::Dim &CD = CIt->second.dim(D);
            Dims[D] = poly::Dim{
                CD.Name, CD.Lower + poly::AffineExpr(MinOff[D] - WOff[D]),
                CD.Upper + poly::AffineExpr(MaxOff[D] - WOff[D])};
          }
          poly::BoxSet Box(std::move(Dims));
          Needed = Needed ? Needed->hull(Box) : Box;
        }
      }
      if (!Needed)
        continue;
      // Clip to the full nest domain (boundary tiles).
      poly::BoxSet Clipped = Needed->intersect(
          // Concretize the nest domain bounds so affine comparisons are
          // decidable for boundary tiles.
          poly::BoxSet::fromBounds([&] {
            std::vector<std::tuple<std::string, poly::AffineExpr,
                                   poly::AffineExpr>>
                Bounds;
            for (unsigned D = 0; D < Rank; ++D) {
              const poly::Dim &PD = PNest.Domain.dim(D);
              Bounds.emplace_back(PD.Name,
                                  poly::AffineExpr(PD.Lower.evaluate(Env)),
                                  poly::AffineExpr(PD.Upper.evaluate(Env)));
            }
            return Bounds;
          }()));
      if (!Clipped.isProvablyEmpty())
        Tile.NestDomains[P] = std::move(Clipped);
    }

    for (const auto &[Nest, Domain] : Tile.NestDomains)
      Result.ExecutedPoints[Nest] += Domain.numPoints(Env);
    Result.Tiles.push_back(std::move(Tile));
  }
  return Result;
}

std::string tiling::renderTiling1D(const ir::LoopChain &Chain,
                                   const ChainTiling &T, const ParamEnv &Env) {
  std::ostringstream OS;
  for (std::size_t TI = 0; TI < T.Tiles.size(); ++TI) {
    OS << "tile " << TI << ":\n";
    for (unsigned N = 0; N < Chain.numNests(); ++N) {
      auto It = T.Tiles[TI].NestDomains.find(N);
      if (It == T.Tiles[TI].NestDomains.end())
        continue;
      OS << "  " << Chain.nest(N).Name << ":";
      It->second.forEachPoint(Env,
                              [&](const std::vector<std::int64_t> &Point) {
                                OS << " " << Point.front();
                              });
      OS << "\n";
    }
  }
  return OS.str();
}

support::Expected<ChainTiling>
tiling::tryOverlappedTiling(const ir::LoopChain &Chain,
                            const std::vector<std::int64_t> &TileSizes,
                            const ParamEnv &Env) {
  auto R = support::tryInvoke(
      [&] { return overlappedTiling(Chain, TileSizes, Env); });
  if (!R)
    return R.takeError().withContext("tiling chain " + Chain.name());
  return R;
}
