//===- parser/ScriptRunner.h - Transformation script language ---*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small scripting front end over the graph transformations, in the
/// spirit of the scriptable loop-transformation tools the paper relates to
/// (CHiLL, POET, URUK): a performance expert writes the Figure 7/8/9
/// recipes as text instead of C++ calls. One command per line, `#`
/// comments:
///
/// \code
///   reschedule Fy1_v 1      # move a node to a row
///   fusepc Fx1_rho Fx2_rho  # producer-consumer fusion
///   fuserr Dx_rho Dy_rho    # read-reduction fusion
///   fuserr A B nocollapse   # co-schedule without collapsing streams
///   collapse in_rho S       # collapse reads of a value into one stream
///   reduce                  # reuse-distance storage reduction
///   autoschedule 4          # greedy search with a stream budget
///   compact                 # renumber rows and columns
///   cost                    # append the cost report to the log
/// \endcode
///
/// Statement nodes are addressed by their (possibly fused, '+'-joined)
/// labels.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_PARSER_SCRIPTRUNNER_H
#define LCDFG_PARSER_SCRIPTRUNNER_H

#include "graph/Graph.h"

#include <string>
#include <string_view>
#include <vector>

namespace lcdfg {
namespace parser {

/// Result of running a script.
struct ScriptResult {
  bool Ok = true;
  std::string Error;  // first failure, empty on success
  unsigned Line = 0;  // 1-based line of the failure
  std::vector<std::string> Log;

  explicit operator bool() const { return Ok; }
};

/// Runs \p Script against \p G, stopping at the first failing command.
/// The graph retains all transformations applied before the failure.
ScriptResult runScript(graph::Graph &G, std::string_view Script);

} // namespace parser
} // namespace lcdfg

#endif // LCDFG_PARSER_SCRIPTRUNNER_H
