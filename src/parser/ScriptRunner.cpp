//===- parser/ScriptRunner.cpp --------------------------------------------===//

#include "parser/ScriptRunner.h"

#include "graph/AutoScheduler.h"
#include "graph/CostModel.h"
#include "graph/Transforms.h"
#include "storage/ReuseDistance.h"
#include "support/StringUtils.h"

#include <cstdlib>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::parser;
using graph::Graph;
using graph::InvalidNode;
using graph::NodeId;

namespace {

struct Command {
  std::vector<std::string> Words;
  unsigned Line = 0;
};

std::vector<Command> tokenize(std::string_view Script) {
  std::vector<Command> Commands;
  unsigned LineNo = 0;
  std::size_t Start = 0;
  for (std::size_t I = 0; I <= Script.size(); ++I) {
    if (I != Script.size() && Script[I] != '\n')
      continue;
    ++LineNo;
    std::string_view Line = Script.substr(Start, I - Start);
    Start = I + 1;
    if (auto Hash = Line.find('#'); Hash != std::string_view::npos)
      Line = Line.substr(0, Hash);
    Line = trim(Line);
    if (Line.empty())
      continue;
    Command Cmd;
    Cmd.Line = LineNo;
    for (const std::string &W : split(Line, ' '))
      if (!W.empty())
        Cmd.Words.push_back(W);
    Commands.push_back(std::move(Cmd));
  }
  return Commands;
}

ScriptResult fail(std::string Msg, unsigned Line, ScriptResult Result) {
  Result.Ok = false;
  Result.Error = std::move(Msg);
  Result.Line = Line;
  return Result;
}

} // namespace

ScriptResult parser::runScript(Graph &G, std::string_view Script) {
  ScriptResult Result;

  auto Stmt = [&](const std::string &Label) {
    return G.findStmt(Label);
  };
  auto Value = [&](const std::string &Array) {
    return G.findValue(Array);
  };

  for (const Command &Cmd : tokenize(Script)) {
    const std::vector<std::string> &W = Cmd.Words;
    const std::string &Op = W[0];

    auto RequireArgs = [&](std::size_t Count) {
      return W.size() == Count + 1;
    };
    auto LogOk = [&](const std::string &What) {
      Result.Log.push_back(What);
    };

    if (Op == "reschedule") {
      if (!RequireArgs(2))
        return fail("reschedule expects <stmt> <row>", Cmd.Line, Result);
      NodeId S = Stmt(W[1]);
      if (S == InvalidNode)
        return fail("no statement node named " + W[1], Cmd.Line, Result);
      graph::TransformResult R =
          graph::reschedule(G, S, std::atoi(W[2].c_str()));
      if (!R)
        return fail(R.Error, Cmd.Line, Result);
      LogOk("rescheduled " + W[1] + " to row " + W[2]);
    } else if (Op == "fusepc" || Op == "fuserr") {
      bool Collapse = true;
      if (W.size() == 4 && W[3] == "nocollapse" && Op == "fuserr") {
        Collapse = false;
      } else if (!RequireArgs(2)) {
        return fail(Op + " expects <a> <b>", Cmd.Line, Result);
      }
      NodeId A = Stmt(W[1]), B = Stmt(W[2]);
      if (A == InvalidNode)
        return fail("no statement node named " + W[1], Cmd.Line, Result);
      if (B == InvalidNode)
        return fail("no statement node named " + W[2], Cmd.Line, Result);
      graph::TransformResult R =
          Op == "fusepc" ? graph::fuseProducerConsumer(G, A, B)
                         : graph::fuseReadReduction(G, A, B, Collapse);
      if (!R)
        return fail(R.Error, Cmd.Line, Result);
      LogOk(Op + " " + W[1] + " " + W[2]);
    } else if (Op == "collapse") {
      if (!RequireArgs(2))
        return fail("collapse expects <array> <stmt>", Cmd.Line, Result);
      NodeId V = Value(W[1]);
      NodeId S = Stmt(W[2]);
      if (V == InvalidNode)
        return fail("no value node named " + W[1], Cmd.Line, Result);
      if (S == InvalidNode)
        return fail("no statement node named " + W[2], Cmd.Line, Result);
      graph::TransformResult R = graph::collapseReads(G, V, S);
      if (!R)
        return fail(R.Error, Cmd.Line, Result);
      LogOk("collapsed reads of " + W[1] + " into " + W[2]);
    } else if (Op == "interchange") {
      if (W.size() < 3)
        return fail("interchange expects <stmt> <dim indices...>", Cmd.Line,
                    Result);
      NodeId S = Stmt(W[1]);
      if (S == InvalidNode)
        return fail("no statement node named " + W[1], Cmd.Line, Result);
      std::vector<unsigned> Order;
      for (std::size_t I = 2; I < W.size(); ++I)
        Order.push_back(static_cast<unsigned>(std::atoi(W[I].c_str())));
      graph::TransformResult R = graph::interchange(G, S, Order);
      if (!R)
        return fail(R.Error, Cmd.Line, Result);
      LogOk("interchanged " + W[1]);
    } else if (Op == "reduce") {
      auto Reduced = storage::reduceStorage(G);
      LogOk("reduced storage of " + std::to_string(Reduced.size()) +
            " internalized value sets");
    } else if (Op == "autoschedule") {
      graph::AutoScheduleOptions Options;
      if (W.size() == 2)
        Options.MaxStreams = static_cast<unsigned>(std::atoi(W[1].c_str()));
      else if (W.size() != 1)
        return fail("autoschedule expects at most one argument", Cmd.Line,
                    Result);
      graph::AutoScheduleResult R = graph::autoSchedule(G, Options);
      LogOk("autoschedule applied " + std::to_string(R.StepsApplied) +
            " moves: S_R " + R.InitialRead.toString() + " -> " +
            R.FinalRead.toString());
    } else if (Op == "compact") {
      G.compactRows();
      G.compactColumns();
      LogOk("compacted layout");
    } else if (Op == "cost") {
      std::ostringstream OS;
      OS << graph::computeCost(G).toString();
      LogOk(OS.str());
    } else {
      return fail("unknown command '" + Op + "'", Cmd.Line, Result);
    }
  }
  return Result;
}
