//===- parser/PragmaPrinter.cpp -------------------------------------------===//

#include "parser/PragmaPrinter.h"

#include <sstream>

using namespace lcdfg;
using namespace lcdfg::parser;

namespace {

/// Renders one access tuple in `with` order, e.g. "(x-2,y)".
std::string tupleFor(const ir::LoopNest &Nest,
                     const std::vector<std::int64_t> &Offsets) {
  unsigned Rank = Nest.Domain.rank();
  std::ostringstream OS;
  OS << "(";
  // `with` order is the reverse of loop order: innermost first.
  for (unsigned P = 0; P < Rank; ++P) {
    unsigned D = Rank - 1 - P;
    if (P)
      OS << ",";
    OS << Nest.Domain.dim(D).Name;
    std::int64_t Off = Offsets[D];
    if (Off > 0)
      OS << "+" << Off;
    else if (Off < 0)
      OS << Off;
  }
  OS << ")";
  return OS.str();
}

std::string accessFor(const ir::LoopNest &Nest, const ir::Access &A) {
  std::ostringstream OS;
  OS << A.Array << "{";
  for (std::size_t I = 0; I < A.Offsets.size(); ++I) {
    if (I)
      OS << ",";
    OS << tupleFor(Nest, A.Offsets[I]);
  }
  OS << "}";
  return OS.str();
}

} // namespace

std::string parser::printPragmas(const ir::LoopChain &Chain) {
  std::ostringstream OS;
  OS << "#pragma omplc parallel("
     << (Chain.scheduleHint().empty() ? "fuse" : Chain.scheduleHint())
     << ")\n{\n";
  for (unsigned I = 0; I < Chain.numNests(); ++I) {
    const ir::LoopNest &Nest = Chain.nest(I);
    unsigned Rank = Nest.Domain.rank();
    OS << "#pragma omplc for domain(";
    for (unsigned P = 0; P < Rank; ++P) {
      unsigned D = Rank - 1 - P;
      if (P)
        OS << ", ";
      OS << Nest.Domain.dim(D).Lower.toString() << ":"
         << Nest.Domain.dim(D).Upper.toString();
    }
    OS << ") with (";
    for (unsigned P = 0; P < Rank; ++P) {
      if (P)
        OS << ", ";
      OS << Nest.Domain.dim(Rank - 1 - P).Name;
    }
    OS << ") \\\n    write " << accessFor(Nest, Nest.Write);
    for (const ir::Access &R : Nest.Reads)
      OS << " \\\n    read " << accessFor(Nest, R);
    OS << "\n" << Nest.Name << ": ";
    if (!Nest.BodyText.empty()) {
      OS << Nest.BodyText;
    } else {
      // Synthesize a body from the accesses.
      OS << Nest.Write.Array << tupleFor(Nest, Nest.Write.Offsets.front())
         << " = f_" << Nest.Name << "(";
      bool First = true;
      for (const ir::Access &R : Nest.Reads)
        for (const auto &Off : R.Offsets) {
          if (!First)
            OS << ", ";
          OS << R.Array << tupleFor(Nest, Off);
          First = false;
        }
      OS << ");";
    }
    OS << "\n\n";
  }
  OS << "}\n";
  return OS.str();
}
