//===- parser/PragmaParser.h - omplc annotation parser ----------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the loop-chain pragma annotation language of Figure 1 /
/// Bertolacci et al. (WACCPD 2016), restricted as in the paper. The accepted
/// form is line-oriented:
///
/// \code
///   #pragma omplc parallel(fuse)
///   {
///   #pragma omplc for domain(0:X+1, 0:Y, 0:Z) with (x, y, z) <backslash>
///       write VAL_1{(x,y,z)} read VAL_0{(x-1,y,z),(x,y,z)}
///   S1: VAL_1(x,y,z) = func1(VAL_0(x-1,y,z), VAL_0(x,y,z));
///   ...
///   }
/// \endcode
///
/// Domain bounds are inclusive and listed in the same order as the `with`
/// iterator tuple. The generated loop nest runs the *last* iterator of the
/// `with` tuple outermost (matching the paper's example, where
/// `with (x,y,z)` annotates `for z / for y / for x`); an explicit
/// `order(z,y,x)` clause overrides this. Backslash line continuations and
/// `//` comments are handled.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_PARSER_PRAGMAPARSER_H
#define LCDFG_PARSER_PRAGMAPARSER_H

#include "ir/LoopChain.h"
#include "support/Status.h"

#include <optional>
#include <string>
#include <string_view>

namespace lcdfg {
namespace parser {

/// Result of a parse: either a chain or a diagnostic. Diagnostics carry
/// the 1-based line and column of the failure plus the offending logical
/// source line (continuations joined, comments stripped) so callers can
/// render a caret snippet.
struct ParseResult {
  std::optional<ir::LoopChain> Chain;
  std::string Error;   // empty on success
  unsigned Line = 0;   // 1-based line of the error
  unsigned Column = 0; // 1-based column within Snippet (0 = unknown)
  std::string Snippet; // the logical source line the error points into

  explicit operator bool() const { return Chain.has_value(); }

  /// "line L, column C: message", followed by the snippet and a caret
  /// line when position information is available:
  ///   line 3, column 17: omplc for: malformed domain clause
  ///     omplc for domain 0:8) with (x) write A{(x)}
  ///                      ^
  std::string formatted() const;

  /// Folds the diagnostic into the common vocabulary: ok() on success,
  /// otherwise an E001-parse Status with the position as context.
  support::Status status() const;
};

/// Parses an annotated source fragment into a LoopChain. The chain is
/// finalized (array classification and extents inferred) before returning.
ParseResult parseLoopChain(std::string_view Source);

} // namespace parser
} // namespace lcdfg

#endif // LCDFG_PARSER_PRAGMAPARSER_H
