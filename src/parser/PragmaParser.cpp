//===- parser/PragmaParser.cpp --------------------------------------------===//

#include "parser/PragmaParser.h"

#include "support/StringUtils.h"

#include <cassert>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::parser;

namespace {

/// Line-oriented cursor over the preprocessed source.
struct Cursor {
  std::vector<std::string> Lines;
  std::vector<unsigned> LineNumbers; // original 1-based numbers
  std::size_t Pos = 0;

  bool atEnd() const { return Pos >= Lines.size(); }
  const std::string &peek() const { return Lines[Pos]; }
  unsigned lineNo() const {
    return Pos < LineNumbers.size() ? LineNumbers[Pos]
                                    : (LineNumbers.empty()
                                           ? 1
                                           : LineNumbers.back());
  }
  void advance() { ++Pos; }
};

/// Joins backslash continuations, strips // comments, drops blank lines.
Cursor preprocess(std::string_view Source) {
  Cursor C;
  std::string Pending;
  unsigned PendingLine = 0;
  unsigned LineNo = 0;
  std::size_t Start = 0;
  auto FlushLine = [&](std::string_view Raw) {
    std::string Line(Raw);
    if (auto Slash = Line.find("//"); Slash != std::string::npos)
      Line.erase(Slash);
    std::string_view Trimmed = trim(Line);
    bool Continued = !Trimmed.empty() && Trimmed.back() == '\\';
    if (Continued)
      Trimmed.remove_suffix(1);
    if (Pending.empty())
      PendingLine = LineNo;
    if (!Trimmed.empty()) {
      if (!Pending.empty())
        Pending += ' ';
      Pending += std::string(trim(Trimmed));
    }
    if (!Continued && !Pending.empty()) {
      C.Lines.push_back(Pending);
      C.LineNumbers.push_back(PendingLine);
      Pending.clear();
    }
  };
  for (std::size_t I = 0; I <= Source.size(); ++I) {
    if (I == Source.size() || Source[I] == '\n') {
      ++LineNo;
      FlushLine(Source.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  if (!Pending.empty()) {
    C.Lines.push_back(Pending);
    C.LineNumbers.push_back(PendingLine);
  }
  return C;
}

ParseResult makeError(std::string Msg, unsigned Line, unsigned Column = 0,
                      std::string Snippet = "") {
  ParseResult R;
  R.Error = std::move(Msg);
  R.Line = Line;
  R.Column = Column;
  R.Snippet = std::move(Snippet);
  return R;
}

/// Extracts the balanced "(...)" argument list that starts at S[Pos] and
/// returns its contents; advances Pos past the ')'.
std::optional<std::string> takeParenGroup(std::string_view S,
                                          std::size_t &Pos) {
  while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
    ++Pos;
  if (Pos >= S.size() || S[Pos] != '(')
    return std::nullopt;
  int Depth = 0;
  std::size_t Start = Pos + 1;
  for (; Pos < S.size(); ++Pos) {
    if (S[Pos] == '(')
      ++Depth;
    else if (S[Pos] == ')') {
      if (--Depth == 0) {
        std::string Inner(S.substr(Start, Pos - Start));
        ++Pos;
        return Inner;
      }
    }
  }
  return std::nullopt;
}

/// Parses "NAME{(..),(..)}" starting at Pos; advances past the '}'.
std::optional<ir::Access> takeAccess(std::string_view S, std::size_t &Pos,
                                     const std::vector<std::string> &Iters,
                                     const std::vector<unsigned> &IterToDim,
                                     std::string &Err) {
  while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
    ++Pos;
  std::size_t NameStart = Pos;
  while (Pos < S.size() && (std::isalnum(static_cast<unsigned char>(S[Pos])) ||
                            S[Pos] == '_'))
    ++Pos;
  if (Pos == NameStart) {
    Err = "expected array name in access";
    return std::nullopt;
  }
  ir::Access A;
  A.Array = std::string(S.substr(NameStart, Pos - NameStart));
  while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
    ++Pos;
  if (Pos >= S.size() || S[Pos] != '{') {
    Err = "expected '{' after array name " + A.Array;
    return std::nullopt;
  }
  std::size_t Close = Pos;
  int Depth = 0;
  for (; Close < S.size(); ++Close) {
    if (S[Close] == '{')
      ++Depth;
    else if (S[Close] == '}' && --Depth == 0)
      break;
  }
  if (Close >= S.size()) {
    Err = "unterminated access braces for " + A.Array;
    return std::nullopt;
  }
  std::string_view Body = S.substr(Pos + 1, Close - Pos - 1);
  Pos = Close + 1;

  for (const std::string &Tuple : splitTopLevel(Body, ',')) {
    std::string_view T = trim(Tuple);
    if (T.size() < 2 || T.front() != '(' || T.back() != ')') {
      Err = "malformed access tuple '" + Tuple + "'";
      return std::nullopt;
    }
    std::vector<std::string> Elems = split(T.substr(1, T.size() - 2), ',');
    if (Elems.size() != Iters.size()) {
      Err = "access tuple arity mismatch in " + A.Array;
      return std::nullopt;
    }
    // Offsets are stored in *domain* order (IterToDim maps tuple position
    // to domain dimension).
    std::vector<std::int64_t> Offsets(Iters.size(), 0);
    for (std::size_t P = 0; P < Elems.size(); ++P) {
      auto E = poly::AffineExpr::parse(Elems[P]);
      if (!E) {
        Err = "cannot parse access expression '" + Elems[P] + "'";
        return std::nullopt;
      }
      // Expected form: iterator_P + constant.
      poly::AffineExpr Diff = *E - poly::AffineExpr::var(Iters[P]);
      if (!Diff.isConstant()) {
        Err = "access expression '" + Elems[P] +
              "' must be iterator '" + Iters[P] + "' plus a constant";
        return std::nullopt;
      }
      Offsets[IterToDim[P]] = Diff.constant();
    }
    A.Offsets.push_back(std::move(Offsets));
  }
  if (A.Offsets.empty()) {
    Err = "access " + A.Array + " has no tuples";
    return std::nullopt;
  }
  return A;
}

} // namespace

ParseResult parser::parseLoopChain(std::string_view Source) {
  Cursor C = preprocess(Source);
  ir::LoopChain Chain("chain");
  bool SawParallel = false;
  unsigned StmtCounter = 0;

  while (!C.atEnd()) {
    std::string_view Line = C.peek();
    unsigned LineNo = C.lineNo();
    // Columns are 1-based offsets into the *logical* line (continuations
    // joined), which is also the snippet the caret renders into.
    auto ColOf = [&](std::string_view Sub, std::size_t Off) -> unsigned {
      if (Sub.data() < Line.data() ||
          Sub.data() > Line.data() + Line.size())
        return 0;
      std::size_t Base = static_cast<std::size_t>(Sub.data() - Line.data());
      std::size_t Col = Base + Off;
      if (Col >= Line.size())
        Col = Line.empty() ? 0 : Line.size() - 1;
      return static_cast<unsigned>(Col) + 1;
    };
    auto Err = [&](std::string Msg, unsigned Column) {
      return makeError(std::move(Msg), LineNo, Column, std::string(Line));
    };
    // Accept both "#pragma omplc ..." and bare "omplc ..." directives.
    std::string_view Rest = Line;
    bool IsPragma = consumePrefix(Rest, "#pragma omplc") ||
                    consumePrefix(Rest, "omplc");
    if (!IsPragma) {
      // Braces and stray code outside a `for` directive are ignored.
      C.advance();
      continue;
    }
    Rest = trim(Rest);
    if (consumePrefix(Rest, "parallel")) {
      std::size_t Pos = 0;
      auto Hint = takeParenGroup(Rest, Pos);
      if (!Hint)
        return Err("expected (schedule) after 'parallel'", ColOf(Rest, Pos));
      Chain.setScheduleHint(std::string(trim(*Hint)));
      SawParallel = true;
      C.advance();
      continue;
    }
    if (!consumePrefix(Rest, "for"))
      return Err("unknown omplc directive: " + std::string(Rest),
                 ColOf(Rest, 0));

    // --- domain(...) ---
    std::string S(Rest);
    auto SCol = [&](std::size_t Off) { return ColOf(Rest, Off); };
    std::size_t DomPos = S.find("domain");
    if (DomPos == std::string::npos)
      return Err("omplc for: missing domain clause", SCol(0));
    std::size_t Pos = DomPos + 6;
    auto DomBody = takeParenGroup(S, Pos);
    if (!DomBody)
      return Err("omplc for: malformed domain clause", SCol(DomPos));
    std::vector<std::string> Ranges = splitTopLevel(*DomBody, ',');

    // --- with (...) ---
    std::size_t WithPos = S.find("with", Pos);
    if (WithPos == std::string::npos)
      return Err("omplc for: missing with clause", SCol(Pos));
    std::size_t WPos = WithPos + 4;
    auto WithBody = takeParenGroup(S, WPos);
    if (!WithBody)
      return Err("omplc for: malformed with clause", SCol(WithPos));
    std::vector<std::string> Iters = split(*WithBody, ',');
    if (Iters.size() != Ranges.size())
      return Err("omplc for: domain/with arity mismatch", SCol(WithPos));

    // --- optional order (...) ---
    std::vector<std::string> Order;
    std::size_t AccessStart = WPos;
    std::size_t OrderPos = S.find("order", WPos);
    if (OrderPos != std::string::npos) {
      std::size_t OPos = OrderPos + 5;
      auto OrderBody = takeParenGroup(S, OPos);
      if (!OrderBody)
        return Err("omplc for: malformed order clause", SCol(OrderPos));
      Order = split(*OrderBody, ',');
      AccessStart = OPos;
    } else {
      // Default: last `with` iterator is outermost (paper's convention).
      Order.assign(Iters.rbegin(), Iters.rend());
    }
    if (Order.size() != Iters.size())
      return Err("omplc for: order/with arity mismatch",
                 SCol(OrderPos == std::string::npos ? WithPos : OrderPos));

    // Map with-tuple position -> domain dimension index (loop order).
    std::vector<unsigned> IterToDim(Iters.size(), 0);
    for (std::size_t P = 0; P < Iters.size(); ++P) {
      bool Found = false;
      for (std::size_t D = 0; D < Order.size(); ++D)
        if (Order[D] == Iters[P]) {
          IterToDim[P] = static_cast<unsigned>(D);
          Found = true;
          break;
        }
      if (!Found)
        return Err("order clause missing iterator " + Iters[P],
                   SCol(OrderPos == std::string::npos ? WithPos : OrderPos));
    }

    // Build the domain in loop order (outermost first).
    std::vector<poly::Dim> Dims(Iters.size());
    for (std::size_t P = 0; P < Ranges.size(); ++P) {
      std::vector<std::string> Parts = split(Ranges[P], ':');
      if (Parts.size() != 2)
        return Err("domain range '" + Ranges[P] + "' must be lower:upper",
                   SCol(DomPos));
      auto Lo = poly::AffineExpr::parse(Parts[0]);
      auto Hi = poly::AffineExpr::parse(Parts[1]);
      if (!Lo || !Hi)
        return Err("cannot parse domain bounds '" + Ranges[P] + "'",
                   SCol(DomPos));
      Dims[IterToDim[P]] = poly::Dim{Iters[P], *Lo, *Hi};
    }

    // --- write / read clauses ---
    ir::LoopNest Nest;
    Nest.Domain = poly::BoxSet(std::move(Dims));
    std::string_view Tail = std::string_view(S).substr(AccessStart);
    std::size_t TPos = 0;
    bool SawWrite = false;
    while (true) {
      while (TPos < Tail.size() &&
             std::isspace(static_cast<unsigned char>(Tail[TPos])))
        ++TPos;
      if (TPos >= Tail.size())
        break;
      std::string AccessErr;
      std::size_t ClauseStart = TPos;
      auto TCol = [&](std::size_t Off) { return SCol(AccessStart + Off); };
      if (Tail.substr(TPos, 5) == "write") {
        TPos += 5;
        auto A = takeAccess(Tail, TPos, Iters, IterToDim, AccessErr);
        if (!A)
          return Err(std::move(AccessErr), TCol(TPos));
        if (SawWrite)
          return Err("multiple write clauses in one nest", TCol(ClauseStart));
        if (A->Offsets.size() != 1)
          return Err("write access must have exactly one tuple",
                     TCol(ClauseStart));
        Nest.Write = std::move(*A);
        SawWrite = true;
      } else if (Tail.substr(TPos, 4) == "read") {
        TPos += 4;
        auto A = takeAccess(Tail, TPos, Iters, IterToDim, AccessErr);
        if (!A)
          return Err(std::move(AccessErr), TCol(TPos));
        Nest.Reads.push_back(std::move(*A));
      } else {
        return Err("expected 'write' or 'read', got '" +
                       std::string(Tail.substr(TPos, 10)) + "'",
                   TCol(TPos));
      }
    }
    if (!SawWrite)
      return Err("omplc for: missing write clause", SCol(0));

    // --- statement body: following non-pragma lines up to ';' ---
    C.advance();
    std::string Body;
    while (!C.atEnd()) {
      std::string_view Next = trim(C.peek());
      if (startsWith(Next, "#pragma") || startsWith(Next, "omplc") ||
          Next == "{" || Next == "}")
        break;
      if (!Body.empty())
        Body += ' ';
      Body += std::string(Next);
      C.advance();
      if (!Body.empty() && Body.back() == ';')
        break;
    }
    // Optional "NAME:" label at the front of the body names the nest.
    std::string Name;
    if (auto Colon = Body.find(':');
        Colon != std::string::npos && Colon > 0 &&
        Body.find('=') != std::string::npos && Colon < Body.find('=')) {
      std::string_view Label = trim(std::string_view(Body).substr(0, Colon));
      bool IsIdent = !Label.empty();
      for (char Ch : Label)
        IsIdent &= std::isalnum(static_cast<unsigned char>(Ch)) || Ch == '_';
      if (IsIdent) {
        Name = std::string(Label);
        Body.erase(0, Colon + 1);
        Body = std::string(trim(Body));
      }
    }
    if (Name.empty())
      Name = "S" + std::to_string(++StmtCounter);
    Nest.Name = Name;
    Nest.BodyText = Body;
    if (auto Added = Chain.tryAddNest(std::move(Nest)); !Added)
      return makeError(Added.error().toString(), LineNo, 0,
                       std::string(Line));
  }

  if (Chain.numNests() == 0)
    return makeError("no loop nests found", 1);
  if (!SawParallel)
    Chain.setScheduleHint("");
  try {
    Chain.finalize();
  } catch (const support::StatusError &E) {
    return makeError(E.status().toString(), 1);
  }
  ParseResult R;
  R.Chain = std::move(Chain);
  return R;
}

std::string ParseResult::formatted() const {
  if (Chain)
    return "ok";
  std::ostringstream OS;
  OS << "line " << Line;
  if (Column)
    OS << ", column " << Column;
  OS << ": " << Error;
  if (!Snippet.empty()) {
    OS << "\n  " << Snippet;
    if (Column)
      OS << "\n  " << std::string(Column - 1, ' ') << '^';
  }
  return OS.str();
}

support::Status ParseResult::status() const {
  if (Chain)
    return support::Status::ok();
  support::Status S =
      support::Status::error(support::ErrorCode::Parse, Error);
  S.withContext("parsing pragma text at line " + std::to_string(Line) +
                (Column ? ", column " + std::to_string(Column) : ""));
  return S;
}
