//===- parser/PragmaPrinter.h - LoopChain to annotation text ----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse of the pragma parser: renders a LoopChain back into the
/// omplc annotation language, so chains built programmatically can be
/// inspected, diffed, and round-tripped (printPragmas followed by
/// parseLoopChain reproduces the chain).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_PARSER_PRAGMAPRINTER_H
#define LCDFG_PARSER_PRAGMAPRINTER_H

#include "ir/LoopChain.h"

#include <string>

namespace lcdfg {
namespace parser {

/// Renders \p Chain as annotated source. Domains print in `with` order
/// (the reverse of the stored loop order, matching the parser's default
/// convention); statement bodies print as labeled statements when
/// available and as synthesized assignments otherwise.
std::string printPragmas(const ir::LoopChain &Chain);

} // namespace parser
} // namespace lcdfg

#endif // LCDFG_PARSER_PRAGMAPRINTER_H
