//===- ir/LoopChain.h - Loop chain intermediate representation --*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop chain abstraction (Krieger et al., HIPS 2013; Bertolacci et al.,
/// WACCPD 2016): a series of loop nests that share data, each annotated with
/// its iteration domain and its read/write access patterns. A LoopChain is
/// the input to M2DFG construction (Section 2.2 of the paper). It can be
/// built programmatically or parsed from omplc-style pragma annotations.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_IR_LOOPCHAIN_H
#define LCDFG_IR_LOOPCHAIN_H

#include "poly/BoxSet.h"
#include "support/Polynomial.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lcdfg {
namespace ir {

/// A data access: an array accessed at a set of constant offsets relative to
/// the iteration point. `read VAL_2{(x,y,z),(x+1,y,z)}` becomes offsets
/// {(0,0,0), (1,0,0)}.
struct Access {
  std::string Array;
  std::vector<std::vector<std::int64_t>> Offsets;

  /// Componentwise minimum over the stencil offsets.
  std::vector<std::int64_t> minOffsets() const;
  /// Componentwise maximum over the stencil offsets.
  std::vector<std::int64_t> maxOffsets() const;

  std::string toString() const;
};

/// One annotated loop nest within a chain: a named statement set with an
/// iteration domain, exactly one written array, and any number of reads.
struct LoopNest {
  std::string Name;
  poly::BoxSet Domain;
  Access Write;
  std::vector<Access> Reads;
  /// Human-readable statement body for code printing, e.g.
  /// "VAL_1(x,y) = f1(VAL_0(x,y));".
  std::string BodyText;
  /// Identifier of an executable kernel in the interpreter's registry
  /// (-1 when the nest is symbolic only).
  int KernelId = -1;

  /// Image of the write access over the domain: the value set this nest
  /// produces.
  poly::BoxSet writeFootprint() const;

  /// Image of the I-th read access over the domain (hull over the stencil
  /// points).
  poly::BoxSet readFootprint(unsigned I) const;

  /// Structural validation of one nest against the loop-chain model:
  /// exactly one single-point write tuple, every access non-empty, every
  /// stencil offset of the domain's rank. Parser-reachable — malformed
  /// chains must report in Release builds too, so these are not asserts.
  support::Status validate(unsigned Rank) const;
};

/// How an array relates to the chain (Section 3.1: persistent value sets are
/// accessed outside the loop chain; temporaries live only inside it).
enum class StorageKind { PersistentInput, PersistentOutput, Temporary };

/// Per-array information, partly declared and partly inferred.
struct ArrayInfo {
  std::string Name;
  StorageKind Kind = StorageKind::Temporary;
  /// Index-space extent; inferred as the hull of all access footprints when
  /// not declared.
  std::optional<poly::BoxSet> Extent;
};

/// A series of loop nests sharing data, plus the array table.
class LoopChain {
public:
  explicit LoopChain(std::string Name = "chain",
                     std::string ScheduleHint = "")
      : Name(std::move(Name)), ScheduleHint(std::move(ScheduleHint)) {}

  const std::string &name() const { return Name; }
  const std::string &scheduleHint() const { return ScheduleHint; }
  void setScheduleHint(std::string Hint) { ScheduleHint = std::move(Hint); }

  /// Appends a nest; returns its index. Aborts on a structurally invalid
  /// nest (programmatic builders construct valid nests by construction);
  /// parser-reachable paths use tryAddNest.
  unsigned addNest(LoopNest Nest);

  /// Validating form of addNest: returns the new index, or an
  /// E002-invalid-chain Status describing the first violation (empty
  /// stencil, multi-point write, offset/domain rank mismatch).
  support::Expected<unsigned> tryAddNest(LoopNest Nest);

  /// Re-validates every nest (the tryAddNest checks over the whole chain).
  support::Status validate() const;

  unsigned numNests() const { return static_cast<unsigned>(Nests.size()); }
  const LoopNest &nest(unsigned I) const { return Nests[I]; }
  LoopNest &nest(unsigned I) { return Nests[I]; }
  const std::vector<LoopNest> &nests() const { return Nests; }

  /// Declares or overrides array metadata.
  void declareArray(ArrayInfo Info);
  bool hasArray(std::string_view Name) const;
  const ArrayInfo &array(std::string_view Name) const;

  /// Classifies every referenced array. Arrays read before any write are
  /// persistent inputs; arrays written but never read afterwards are
  /// persistent outputs; the rest are temporaries. Explicit declarations
  /// win. Also infers extents as hulls of access footprints.
  void finalize();

  /// All referenced array names in first-reference order.
  std::vector<std::string> arrayNames() const;

  /// Symbolic size of the array's value set: the extent's cardinality.
  Polynomial valueSize(std::string_view ArrayName,
                       std::string_view Symbol = "N") const;

  /// Index of the nest that writes \p ArrayName first, or nullopt for
  /// chain inputs.
  std::optional<unsigned> writerOf(std::string_view ArrayName) const;

  /// Indices of nests that read \p ArrayName.
  std::vector<unsigned> readersOf(std::string_view ArrayName) const;

  std::string toString() const;

private:
  std::string Name;
  std::string ScheduleHint;
  std::vector<LoopNest> Nests;
  std::map<std::string, ArrayInfo, std::less<>> Arrays;
  std::vector<std::string> ArrayOrder;
};

} // namespace ir
} // namespace lcdfg

#endif // LCDFG_IR_LOOPCHAIN_H
