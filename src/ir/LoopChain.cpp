//===- ir/LoopChain.cpp ---------------------------------------------------===//

#include "ir/LoopChain.h"

#include "poly/IntegerMap.h"
#include "support/Errors.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::ir;
using support::ErrorCode;

std::vector<std::int64_t> Access::minOffsets() const {
  if (Offsets.empty())
    support::raise(ErrorCode::InvalidChain,
                   "access " + Array + " has no stencil points");
  std::vector<std::int64_t> Min = Offsets.front();
  for (const auto &O : Offsets)
    for (std::size_t I = 0; I < Min.size(); ++I)
      Min[I] = std::min(Min[I], O[I]);
  return Min;
}

std::vector<std::int64_t> Access::maxOffsets() const {
  if (Offsets.empty())
    support::raise(ErrorCode::InvalidChain,
                   "access " + Array + " has no stencil points");
  std::vector<std::int64_t> Max = Offsets.front();
  for (const auto &O : Offsets)
    for (std::size_t I = 0; I < Max.size(); ++I)
      Max[I] = std::max(Max[I], O[I]);
  return Max;
}

std::string Access::toString() const {
  std::ostringstream OS;
  OS << Array << "{";
  for (unsigned I = 0; I < Offsets.size(); ++I) {
    if (I)
      OS << ",";
    OS << "(";
    for (unsigned J = 0; J < Offsets[I].size(); ++J) {
      if (J)
        OS << ",";
      OS << Offsets[I][J];
    }
    OS << ")";
  }
  OS << "}";
  return OS.str();
}

poly::BoxSet LoopNest::writeFootprint() const {
  if (Write.Offsets.size() != 1)
    support::raise(ErrorCode::InvalidChain,
                   "nest " + Name + ": write must be a single point");
  return Domain.translated(Write.Offsets.front());
}

poly::BoxSet LoopNest::readFootprint(unsigned I) const {
  if (I >= Reads.size())
    support::raise(ErrorCode::InvalidChain,
                   "nest " + Name + ": read index " + std::to_string(I) +
                       " out of range (" + std::to_string(Reads.size()) +
                       " reads)");
  const Access &A = Reads[I];
  if (A.Offsets.empty())
    support::raise(ErrorCode::InvalidChain,
                   "nest " + Name + ": read " + A.Array +
                       " has no stencil points");
  poly::BoxSet FP = Domain.translated(A.Offsets.front());
  for (std::size_t P = 1; P < A.Offsets.size(); ++P)
    FP = FP.hull(Domain.translated(A.Offsets[P]));
  return FP;
}

support::Status LoopNest::validate(unsigned Rank) const {
  auto Invalid = [&](std::string Msg) {
    return support::Status::error(ErrorCode::InvalidChain,
                                  "nest " + Name + ": " + std::move(Msg));
  };
  if (Write.Offsets.empty())
    return Invalid("write access " + Write.Array + " has an empty stencil");
  if (Write.Offsets.size() != 1)
    return Invalid("write access " + Write.Array + " has " +
                   std::to_string(Write.Offsets.size()) +
                   " points; loop chain nests write exactly one point per "
                   "iteration");
  auto CheckRank = [&](const Access &A) -> support::Status {
    if (A.Offsets.empty())
      return Invalid("access " + A.Array + " has an empty stencil");
    for (const std::vector<std::int64_t> &O : A.Offsets)
      if (O.size() != Rank)
        return Invalid("access " + A.Array + " offset rank " +
                       std::to_string(O.size()) + " does not match domain "
                       "rank " + std::to_string(Rank));
    return support::Status::ok();
  };
  if (support::Status S = CheckRank(Write); !S)
    return S;
  for (const Access &R : Reads)
    if (support::Status S = CheckRank(R); !S)
      return S;
  return support::Status::ok();
}

support::Expected<unsigned> LoopChain::tryAddNest(LoopNest Nest) {
  if (support::Status S = Nest.validate(Nest.Domain.rank()); !S)
    return S.withContext("adding nest to chain " + Name);
  Nests.push_back(std::move(Nest));
  return static_cast<unsigned>(Nests.size() - 1);
}

unsigned LoopChain::addNest(LoopNest Nest) {
  return tryAddNest(std::move(Nest)).expect("LoopChain::addNest");
}

support::Status LoopChain::validate() const {
  for (const LoopNest &Nest : Nests)
    if (support::Status S = Nest.validate(Nest.Domain.rank()); !S)
      return S.withContext("validating chain " + Name);
  return support::Status::ok();
}

void LoopChain::declareArray(ArrayInfo Info) {
  auto It = Arrays.find(Info.Name);
  if (It == Arrays.end()) {
    ArrayOrder.push_back(Info.Name);
    Arrays.emplace(Info.Name, std::move(Info));
  } else {
    It->second = std::move(Info);
  }
}

bool LoopChain::hasArray(std::string_view Name) const {
  return Arrays.find(Name) != Arrays.end();
}

const ArrayInfo &LoopChain::array(std::string_view Name) const {
  auto It = Arrays.find(Name);
  if (It == Arrays.end())
    support::raise(ErrorCode::UnknownArray,
                   "unknown array: " + std::string(Name));
  return It->second;
}

void LoopChain::finalize() {
  // Record first-reference order and classify.
  std::set<std::string> Declared;
  for (const auto &[Name, Info] : Arrays) {
    (void)Info;
    Declared.insert(Name);
  }

  auto Touch = [&](const std::string &Name) -> ArrayInfo & {
    auto It = Arrays.find(Name);
    if (It == Arrays.end()) {
      ArrayOrder.push_back(Name);
      It = Arrays.emplace(Name, ArrayInfo{Name, StorageKind::Temporary, {}})
               .first;
    }
    return It->second;
  };

  std::set<std::string> Written, ReadAfterWrite, ReadBeforeWrite;
  for (const LoopNest &Nest : Nests) {
    for (const Access &R : Nest.Reads) {
      Touch(R.Array);
      if (Written.count(R.Array))
        ReadAfterWrite.insert(R.Array);
      else
        ReadBeforeWrite.insert(R.Array);
    }
    Touch(Nest.Write.Array);
    Written.insert(Nest.Write.Array);
  }

  for (const std::string &Name : ArrayOrder) {
    ArrayInfo &Info = Arrays.find(Name)->second;
    if (!Declared.count(Name)) {
      if (ReadBeforeWrite.count(Name) && !Written.count(Name))
        Info.Kind = StorageKind::PersistentInput;
      else if (Written.count(Name) && !ReadAfterWrite.count(Name))
        Info.Kind = StorageKind::PersistentOutput;
      else
        Info.Kind = StorageKind::Temporary;
    }
    // Infer extent as the hull of all access footprints.
    if (!Info.Extent) {
      std::optional<poly::BoxSet> Extent;
      for (const LoopNest &Nest : Nests) {
        auto Merge = [&](const poly::BoxSet &FP) {
          Extent = Extent ? Extent->hull(FP) : FP;
        };
        if (Nest.Write.Array == Name)
          Merge(Nest.writeFootprint());
        for (unsigned I = 0; I < Nest.Reads.size(); ++I)
          if (Nest.Reads[I].Array == Name)
            Merge(Nest.readFootprint(I));
      }
      Info.Extent = Extent;
    }
  }
}

std::vector<std::string> LoopChain::arrayNames() const { return ArrayOrder; }

Polynomial LoopChain::valueSize(std::string_view ArrayName,
                                std::string_view Symbol) const {
  const ArrayInfo &Info = array(ArrayName);
  if (!Info.Extent)
    support::raise(ErrorCode::StorageInvalid,
                   "array has no extent (finalize() not called?): " +
                       std::string(ArrayName));
  return Info.Extent->cardinality(Symbol);
}

std::optional<unsigned> LoopChain::writerOf(std::string_view ArrayName) const {
  for (unsigned I = 0; I < Nests.size(); ++I)
    if (Nests[I].Write.Array == ArrayName)
      return I;
  return std::nullopt;
}

std::vector<unsigned> LoopChain::readersOf(std::string_view ArrayName) const {
  std::vector<unsigned> Readers;
  for (unsigned I = 0; I < Nests.size(); ++I)
    for (const Access &R : Nests[I].Reads)
      if (R.Array == ArrayName) {
        Readers.push_back(I);
        break;
      }
  return Readers;
}

std::string LoopChain::toString() const {
  std::ostringstream OS;
  OS << "loopchain " << Name;
  if (!ScheduleHint.empty())
    OS << " parallel(" << ScheduleHint << ")";
  OS << " {\n";
  for (const LoopNest &Nest : Nests) {
    OS << "  " << Nest.Name << ": domain " << Nest.Domain.toString()
       << "\n    write " << Nest.Write.toString() << "\n";
    for (const Access &R : Nest.Reads)
      OS << "    read " << R.toString() << "\n";
  }
  OS << "}\n";
  return OS.str();
}
