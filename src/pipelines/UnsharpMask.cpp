//===- pipelines/UnsharpMask.cpp ------------------------------------------===//

#include "pipelines/UnsharpMask.h"

#include <cmath>

using namespace lcdfg;
using namespace lcdfg::pipelines;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;

void Image::fillPseudoRandom(std::uint64_t Seed) {
  std::uint64_t State = Seed;
  for (double &V : Data) {
    State += 0x9e3779b97f4a7c15ull;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    Z ^= Z >> 31;
    V = static_cast<double>(Z >> 11) / 9007199254740992.0;
  }
}

double pipelines::maxAbsDiff(const Image &A, const Image &B) {
  double Max = 0.0;
  for (int Y = 0; Y < A.size(); ++Y)
    for (int X = 0; X < A.size(); ++X)
      Max = std::fmax(Max, std::fabs(A.at(Y, X) - B.at(Y, X)));
  return Max;
}

namespace {

inline double blur5(double A, double B, double C, double D, double E) {
  return Gauss[0] * A + Gauss[1] * B + Gauss[2] * C + Gauss[3] * D +
         Gauss[4] * E;
}

inline double sharpenOf(double Img, double Blur) {
  return (1.0 + SharpenWeight) * Img - SharpenWeight * Blur;
}

inline double maskOf(double Img, double Blur, double Sharpen) {
  return std::fabs(Img - Blur) < MaskThreshold ? Img : Sharpen;
}

} // namespace

ir::LoopChain pipelines::buildUnsharpChain() {
  ir::LoopChain Chain("unsharp", "fuse");
  AffineExpr N = AffineExpr::var("N");
  // blurx feeds a +-2 stencil in y, so it covers two extra rows each way.
  BoxSet BlurxDomain({Dim{"y", AffineExpr(-2), N + AffineExpr(1)},
                      Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  BoxSet Cells({Dim{"y", AffineExpr(0), N - AffineExpr(1)},
                Dim{"x", AffineExpr(0), N - AffineExpr(1)}});

  ir::LoopNest Blurx;
  Blurx.Name = "blurx";
  Blurx.Domain = BlurxDomain;
  Blurx.Write = ir::Access{"blurx", {{0, 0}}};
  Blurx.Reads = {
      ir::Access{"img", {{0, -2}, {0, -1}, {0, 0}, {0, 1}, {0, 2}}}};
  Chain.addNest(Blurx);

  ir::LoopNest Blury;
  Blury.Name = "blury";
  Blury.Domain = Cells;
  Blury.Write = ir::Access{"blury", {{0, 0}}};
  Blury.Reads = {
      ir::Access{"blurx", {{-2, 0}, {-1, 0}, {0, 0}, {1, 0}, {2, 0}}}};
  Chain.addNest(Blury);

  ir::LoopNest Sharpen;
  Sharpen.Name = "sharpen";
  Sharpen.Domain = Cells;
  Sharpen.Write = ir::Access{"sharpen", {{0, 0}}};
  Sharpen.Reads = {ir::Access{"img", {{0, 0}}},
                   ir::Access{"blury", {{0, 0}}}};
  Chain.addNest(Sharpen);

  ir::LoopNest Mask;
  Mask.Name = "mask";
  Mask.Domain = Cells;
  Mask.Write = ir::Access{"out", {{0, 0}}};
  Mask.Reads = {ir::Access{"img", {{0, 0}}},
                ir::Access{"blury", {{0, 0}}},
                ir::Access{"sharpen", {{0, 0}}}};
  Chain.addNest(Mask);

  Chain.finalize();
  return Chain;
}

void pipelines::registerKernels(ir::LoopChain &Chain,
                                codegen::KernelRegistry &Registry) {
  Chain.nest(0).KernelId =
      Registry.add([](const std::vector<double> &R, double) {
        return blur5(R[0], R[1], R[2], R[3], R[4]);
      });
  Chain.nest(1).KernelId = Chain.nest(0).KernelId;
  Chain.nest(2).KernelId =
      Registry.add([](const std::vector<double> &R, double) {
        return sharpenOf(R[0], R[1]);
      });
  Chain.nest(3).KernelId =
      Registry.add([](const std::vector<double> &R, double) {
        return maskOf(R[0], R[1], R[2]);
      });
}

void pipelines::runUnsharpSeries(const Image &In, Image &Out) {
  int N = In.size();
  // Full-image intermediates, one stage after another.
  Image Blurx(N), Blury(N), Sharpen(N);
  for (int Y = -2; Y < N + 2; ++Y)
    for (int X = 0; X < N; ++X)
      Blurx.at(Y, X) = blur5(In.at(Y, X - 2), In.at(Y, X - 1), In.at(Y, X),
                             In.at(Y, X + 1), In.at(Y, X + 2));
  for (int Y = 0; Y < N; ++Y)
    for (int X = 0; X < N; ++X)
      Blury.at(Y, X) =
          blur5(Blurx.at(Y - 2, X), Blurx.at(Y - 1, X), Blurx.at(Y, X),
                Blurx.at(Y + 1, X), Blurx.at(Y + 2, X));
  for (int Y = 0; Y < N; ++Y)
    for (int X = 0; X < N; ++X)
      Sharpen.at(Y, X) = sharpenOf(In.at(Y, X), Blury.at(Y, X));
  for (int Y = 0; Y < N; ++Y)
    for (int X = 0; X < N; ++X)
      Out.at(Y, X) = maskOf(In.at(Y, X), Blury.at(Y, X), Sharpen.at(Y, X));
}

void pipelines::runUnsharpFused(const Image &In, Image &Out) {
  int N = In.size();
  // blurx collapses to a five-line circular buffer (its reuse distance in
  // the fused schedule); blury and sharpen collapse to scalars.
  std::vector<double> Lines(static_cast<std::size_t>(5) * N);
  auto LineAt = [&](int Y) { return Lines.data() + (((Y % 5) + 5) % 5) * N; };

  // Prologue: the four leading blurx rows.
  for (int Y = -2; Y < 2; ++Y) {
    double *Row = LineAt(Y);
    for (int X = 0; X < N; ++X)
      Row[X] = blur5(In.at(Y, X - 2), In.at(Y, X - 1), In.at(Y, X),
                     In.at(Y, X + 1), In.at(Y, X + 2));
  }
  for (int Y = 0; Y < N; ++Y) {
    // Produce blurx row Y+2, then consume rows Y-2..Y+2.
    double *RowP2 = LineAt(Y + 2);
    for (int X = 0; X < N; ++X)
      RowP2[X] =
          blur5(In.at(Y + 2, X - 2), In.at(Y + 2, X - 1), In.at(Y + 2, X),
                In.at(Y + 2, X + 1), In.at(Y + 2, X + 2));
    const double *RM2 = LineAt(Y - 2), *RM1 = LineAt(Y - 1),
                 *R0 = LineAt(Y), *RP1 = LineAt(Y + 1), *RP2 = RowP2;
    for (int X = 0; X < N; ++X) {
      double Blur = blur5(RM2[X], RM1[X], R0[X], RP1[X], RP2[X]);
      double Img = In.at(Y, X);
      Out.at(Y, X) = maskOf(Img, Blur, sharpenOf(Img, Blur));
    }
  }
}

long pipelines::temporaryElementsSeries(int N) {
  long Padded = static_cast<long>(N + 2 * Border) * (N + 2 * Border);
  return 3 * Padded; // blurx, blury, sharpen
}

long pipelines::temporaryElementsFused(int N) { return 5L * N; }
