//===- pipelines/UnsharpMask.h - Image pipeline case study ------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Halide and PolyMage — the systems the paper compares against — target
/// image-processing pipelines; unsharp masking is PolyMage's flagship
/// benchmark. This module expresses it as a loop chain (blurx -> blury ->
/// sharpen -> mask) to demonstrate that the M2DFG machinery is not
/// specific to CFD: the same fusion + reuse-distance reduction collapses
/// the full-image intermediates to a handful of line buffers.
///
///   blurx(y, x)  = G * img(y, x-2..x+2)         (5-tap Gaussian in x)
///   blury(y, x)  = G * blurx(y-2..y+2, x)       (5-tap Gaussian in y)
///   sharpen      = (1 + w) img - w blury
///   out          = |img - blury| < t ? img : sharpen
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_PIPELINES_UNSHARPMASK_H
#define LCDFG_PIPELINES_UNSHARPMASK_H

#include "codegen/Interpreter.h"
#include "ir/LoopChain.h"

#include <cstdint>
#include <vector>

namespace lcdfg {
namespace pipelines {

inline constexpr double Gauss[5] = {1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16,
                                    1.0 / 16};
inline constexpr double SharpenWeight = 0.8;
inline constexpr double MaskThreshold = 0.01;
/// Ghost border required by the two 5-tap stencils.
inline constexpr int Border = 4;

/// A square 2D image with a ghost border.
class Image {
public:
  Image(int N, int BorderWidth = Border)
      : N(N), B(BorderWidth),
        Data(static_cast<std::size_t>(N + 2 * BorderWidth) *
                 (N + 2 * BorderWidth),
             0.0) {}

  int size() const { return N; }
  int border() const { return B; }
  std::int64_t stride() const { return N + 2 * B; }

  double &at(int Y, int X) {
    return Data[static_cast<std::size_t>(Y + B) * stride() + (X + B)];
  }
  double at(int Y, int X) const {
    return const_cast<Image *>(this)->at(Y, X);
  }

  /// Deterministic pseudo-random fill of the whole padded image.
  void fillPseudoRandom(std::uint64_t Seed);

private:
  int N;
  int B;
  std::vector<double> Data;
};

/// Maximum absolute difference over the interiors.
double maxAbsDiff(const Image &A, const Image &B);

/// Builds the unsharp-mask loop chain over an N x N image.
ir::LoopChain buildUnsharpChain();

/// Registers interpreter kernels and assigns LoopNest::KernelId.
void registerKernels(ir::LoopChain &Chain, codegen::KernelRegistry &Registry);

/// Hand-written schedules.
/// Series of loops: every stage materialized over the full image.
void runUnsharpSeries(const Image &In, Image &Out);
/// Fully fused with reuse-distance line buffers: blurx lives in a 5-line
/// circular buffer, blury/sharpen in registers.
void runUnsharpFused(const Image &In, Image &Out);

/// Peak temporary doubles of each schedule.
long temporaryElementsSeries(int N);
long temporaryElementsFused(int N);

} // namespace pipelines
} // namespace lcdfg

#endif // LCDFG_PIPELINES_UNSHARPMASK_H
