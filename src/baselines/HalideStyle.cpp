//===- baselines/HalideStyle.cpp ------------------------------------------===//

#include "baselines/HalideStyle.h"

#include "exec/ExecutionPlan.h"
#include "exec/PlanRunner.h"
#include "minifluxdiv/FaceOps.h"

#include <algorithm>

using namespace lcdfg;
using namespace lcdfg::baselines;
using namespace lcdfg::mfd;
using rt::Box;

namespace {

int halideTile(int N) { return N >= 32 ? 16 : 8; }

/// One (z, y) tile: per direction, F1 then F2 into tile-local buffers
/// (compute_at tile granularity), then the flux difference over the tile
/// with a vectorizable inner x loop.
void halideTileBody(const Box &In, Box &Out, int TZ, int Z1, int TY,
                    int Y1) {
  int N = In.size();
  // Per-stage tile scratch (compute_at tile granularity), reused across
  // tiles per thread like Halide's arena allocations.
  auto F1 = [](int C) -> Buf3 & { return scratchBuf(C); };
  auto F2 = [](int C) -> Buf3 & { return scratchBuf(NumComps + C); };
  for (int Dir = 0; Dir < 3; ++Dir) {
    for (int C = 0; C < NumComps; ++C) {
      resizeFaceBuf(F1(C), Dir, TZ, TY, 0, Z1 - TZ, Y1 - TY, N);
      computeF1(In, C, Dir, F1(C));
    }
    for (int C = 0; C < NumComps; ++C)
      computeF2(F1(C), F1(VelOfDir[Dir]), F2(C));
    for (int C = 0; C < NumComps; ++C)
      accumulateDiff(Out, C, Dir, F2(C), TZ, Z1, TY, Y1, 0, N);
  }
}

} // namespace

void baselines::runHalideStyle(const std::vector<Box> &In,
                               std::vector<Box> &Out, int Threads,
                               int TileSize) {
  // One task graph over all boxes: each box's interior copy gates its
  // tile tasks; tiles (and boxes) are otherwise independent.
  exec::ExecutionPlan Plan;
  for (std::size_t B = 0; B < In.size(); ++B) {
    const Box &IB = In[B];
    Box &OB = Out[B];
    int N = IB.size();
    int T = TileSize > 0 ? TileSize : halideTile(N);
    int TilesZ = (N + T - 1) / T;
    int TilesY = (N + T - 1) / T;
    int Copy = Plan.addExternalTask(
        "halide-copy", [&IB, &OB](int) { OB.copyInteriorFrom(IB); });
    for (int Tile = 0; Tile < TilesZ * TilesY; ++Tile) {
      int Task = Plan.addExternalTask(
          "halide-tile", [&IB, &OB, N, T, TilesY, Tile](int) {
            int TZ = (Tile / TilesY) * T;
            int TY = (Tile % TilesY) * T;
            halideTileBody(IB, OB, TZ, std::min(TZ + T, N), TY,
                           std::min(TY + T, N));
          });
      Plan.addDependence(Copy, Task);
    }
  }
  exec::RunOptions Opts;
  Opts.Threads = Threads;
  exec::runPlan(Plan, Opts);
}
