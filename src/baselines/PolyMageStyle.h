//===- baselines/PolyMageStyle.h - PolyMage comparator ----------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stand-in for the PolyMage implementation of Section 5.5. PolyMage
/// groups the whole pipeline into one overlapped-tile group backed by
/// scratchpad buffers: per tile, every stage of every direction is
/// materialized into tile-local scratchpads before the single consumer
/// sweep runs. Parallelism is restricted to within boxes, as the paper
/// notes for both comparators. See DESIGN.md, Substitutions.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_BASELINES_POLYMAGESTYLE_H
#define LCDFG_BASELINES_POLYMAGESTYLE_H

#include "minifluxdiv/Variants.h"
#include "runtime/BoxGrid.h"

#include <vector>

namespace lcdfg {
namespace baselines {

/// Runs the PolyMage-style schedule: boxes sequentially, tiles within each
/// box in parallel on \p Threads threads.
void runPolyMageStyle(const std::vector<rt::Box> &In,
                      std::vector<rt::Box> &Out, int Threads,
                      int TileSize = 0);

} // namespace baselines
} // namespace lcdfg

#endif // LCDFG_BASELINES_POLYMAGESTYLE_H
