//===- baselines/HalideStyle.h - Halide-autotuned comparator ----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stand-in for the Halide implementation of Section 5.5. Halide itself
/// cannot be shipped here, so this implements the schedule its autotuner
/// produced for MiniFluxDiv as characterized by the paper: overlapped
/// tiling in the Figure 5(c) shape (tile the consumer, expand producers
/// per tile, full-tile temporaries), vectorizable inner loops, each
/// direction treated as a pipeline stage computed at tile granularity, and
/// parallelism restricted to *within* boxes. See DESIGN.md, Substitutions.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_BASELINES_HALIDESTYLE_H
#define LCDFG_BASELINES_HALIDESTYLE_H

#include "minifluxdiv/Variants.h"
#include "runtime/BoxGrid.h"

#include <vector>

namespace lcdfg {
namespace baselines {

/// Runs the Halide-style schedule: boxes sequentially, tiles within each
/// box in parallel on \p Threads threads.
void runHalideStyle(const std::vector<rt::Box> &In, std::vector<rt::Box> &Out,
                    int Threads, int TileSize = 0);

} // namespace baselines
} // namespace lcdfg

#endif // LCDFG_BASELINES_HALIDESTYLE_H
