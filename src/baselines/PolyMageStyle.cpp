//===- baselines/PolyMageStyle.cpp ----------------------------------------===//

#include "baselines/PolyMageStyle.h"

#include "exec/ExecutionPlan.h"
#include "exec/PlanRunner.h"
#include "minifluxdiv/FaceOps.h"

#include <algorithm>

using namespace lcdfg;
using namespace lcdfg::baselines;
using namespace lcdfg::mfd;
using rt::Box;

namespace {

int polymageTile(int N) { return N >= 32 ? 8 : 4; }

/// One tile of the single overlapped group: all fifteen F1 scratchpads,
/// then all fifteen F2 scratchpads, then one fused consumer sweep — the
/// whole pipeline lives in one group, PolyMage's grouping for short
/// pipelines.
void polymageTileBody(const Box &In, Box &Out, int TZ, int Z1, int TY,
                      int Y1) {
  int N = In.size();
  // Scratchpads for the whole overlapped group, reused across tiles per
  // thread like PolyMage's pool allocator.
  auto F1 = [](int Dir, int C) -> Buf3 & {
    return scratchBuf(Dir * NumComps + C);
  };
  auto F2 = [](int Dir, int C) -> Buf3 & {
    return scratchBuf(3 * NumComps + Dir * NumComps + C);
  };
  for (int Dir = 0; Dir < 3; ++Dir)
    for (int C = 0; C < NumComps; ++C) {
      resizeFaceBuf(F1(Dir, C), Dir, TZ, TY, 0, Z1 - TZ, Y1 - TY, N);
      computeF1(In, C, Dir, F1(Dir, C));
    }
  for (int Dir = 0; Dir < 3; ++Dir)
    for (int C = 0; C < NumComps; ++C)
      computeF2(F1(Dir, C), F1(Dir, VelOfDir[Dir]), F2(Dir, C));
  for (int C = 0; C < NumComps; ++C) {
    const Buf3 &FX = F2(DirX, C), &FY = F2(DirY, C), &FZ = F2(DirZ, C);
    for (int Z = TZ; Z < Z1; ++Z)
      for (int Y = TY; Y < Y1; ++Y) {
        const double *RX = &FX.at(Z, Y, 0);
        const double *RY0 = &FY.at(Z, Y, 0), *RY1 = &FY.at(Z, Y + 1, 0);
        const double *RZ0 = &FZ.at(Z, Y, 0), *RZ1 = &FZ.at(Z + 1, Y, 0);
        double *OutRow = &Out.at(C, Z, Y, 0);
        for (int X = 0; X < N; ++X)
          OutRow[X] += DiffScale * ((RX[X + 1] - RX[X]) +
                                    (RY1[X] - RY0[X]) + (RZ1[X] - RZ0[X]));
      }
  }
}

} // namespace

void baselines::runPolyMageStyle(const std::vector<Box> &In,
                                 std::vector<Box> &Out, int Threads,
                                 int TileSize) {
  // One task graph over all boxes: each box's interior copy gates its
  // tile tasks; tiles (and boxes) are otherwise independent.
  exec::ExecutionPlan Plan;
  for (std::size_t B = 0; B < In.size(); ++B) {
    const Box &IB = In[B];
    Box &OB = Out[B];
    int N = IB.size();
    int T = TileSize > 0 ? TileSize : polymageTile(N);
    int TilesZ = (N + T - 1) / T;
    int TilesY = (N + T - 1) / T;
    int Copy = Plan.addExternalTask(
        "polymage-copy", [&IB, &OB](int) { OB.copyInteriorFrom(IB); });
    for (int Tile = 0; Tile < TilesZ * TilesY; ++Tile) {
      int Task = Plan.addExternalTask(
          "polymage-tile", [&IB, &OB, N, T, TilesY, Tile](int) {
            int TZ = (Tile / TilesY) * T;
            int TY = (Tile % TilesY) * T;
            polymageTileBody(IB, OB, TZ, std::min(TZ + T, N), TY,
                             std::min(TY + T, N));
          });
      Plan.addDependence(Copy, Task);
    }
  }
  exec::RunOptions Opts;
  Opts.Threads = Threads;
  exec::runPlan(Plan, Opts);
}
