//===- runtime/GhostExchange.h - Inter-box ghost-cell exchange --*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark models the shared-memory portion of one time step of a
/// Chombo-style solver: "each time step involves communicating ghost cells
/// and then processing each box independently" (Section 5.6). This module
/// provides that communication step for a periodic domain decomposed into
/// a regular grid of boxes, enabling multi-step drivers on top of the
/// single-step kernels.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_RUNTIME_GHOSTEXCHANGE_H
#define LCDFG_RUNTIME_GHOSTEXCHANGE_H

#include "runtime/BoxGrid.h"

#include <vector>

namespace lcdfg {
namespace rt {

/// A regular decomposition of a periodic domain into Bz x By x Bx boxes.
struct GridLayout {
  int Bz = 1;
  int By = 1;
  int Bx = 1;

  int numBoxes() const { return Bz * By * Bx; }
  int index(int Z, int Y, int X) const { return (Z * By + Y) * Bx + X; }

  /// Wraps a (possibly negative) box coordinate periodically.
  static int wrap(int Coord, int Extent) {
    int M = Coord % Extent;
    return M < 0 ? M + Extent : M;
  }
};

/// Fills every ghost cell of every box from the interior of the owning
/// neighbor under periodic boundary conditions. All boxes must share
/// size, ghost depth, and component count; Boxes.size() must equal
/// Layout.numBoxes() with boxes stored in Layout::index order.
void exchangeGhosts(std::vector<Box> &Boxes, const GridLayout &Layout,
                    int Threads = 1);

} // namespace rt
} // namespace lcdfg

#endif // LCDFG_RUNTIME_GHOSTEXCHANGE_H
