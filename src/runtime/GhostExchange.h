//===- runtime/GhostExchange.h - Inter-box ghost-cell exchange --*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark models the shared-memory portion of one time step of a
/// Chombo-style solver: "each time step involves communicating ghost cells
/// and then processing each box independently" (Section 5.6). This module
/// provides that communication step for a periodic domain decomposed into
/// a regular grid of boxes, enabling multi-step drivers on top of the
/// single-step kernels.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_RUNTIME_GHOSTEXCHANGE_H
#define LCDFG_RUNTIME_GHOSTEXCHANGE_H

#include "runtime/BoxGrid.h"
#include "support/Status.h"

#include <vector>

namespace lcdfg {
namespace rt {

/// A regular decomposition of a periodic domain into Bz x By x Bx boxes.
struct GridLayout {
  int Bz = 1;
  int By = 1;
  int Bx = 1;

  int numBoxes() const { return Bz * By * Bx; }
  int index(int Z, int Y, int X) const { return (Z * By + Y) * Bx + X; }

  /// Wraps a (possibly negative) box coordinate periodically.
  static int wrap(int Coord, int Extent) {
    int M = Coord % Extent;
    return M < 0 ? M + Extent : M;
  }
};

/// Checks the exchangeGhosts preconditions: Layout has positive extents,
/// Boxes.size() equals Layout.numBoxes(), every box shares the first
/// box's size / ghost depth / component count, and the ghost depth does
/// not exceed the box interior (a G > N exchange would need next-nearest
/// neighbors, which the periodic split does not model). Violations return
/// E002-invalid-chain with a "ghost-grid" subcode.
support::Status validateGhostGrid(const std::vector<Box> &Boxes,
                                  const GridLayout &Layout);

/// Fills the ghost cells of the single box at \p Index from the interiors
/// of its periodic neighbors — the per-box body of exchangeGhosts. Shard
/// workers call it per owned box once remote halo slabs have been written
/// into the neighbor boxes (docs/SHARDING.md). Preconditions are NOT
/// re-validated here; run validateGhostGrid once up front.
void fillGhostsOfBox(std::vector<Box> &Boxes, const GridLayout &Layout,
                     int Index);

/// Fills every ghost cell of every box from the interior of the owning
/// neighbor under periodic boundary conditions. All boxes must share
/// size, ghost depth, and component count; Boxes.size() must equal
/// Layout.numBoxes() with boxes stored in Layout::index order. The
/// preconditions are validated (validateGhostGrid) and violations are
/// returned as a structured error instead of corrupting memory.
support::Status exchangeGhosts(std::vector<Box> &Boxes,
                               const GridLayout &Layout, int Threads = 1);

} // namespace rt
} // namespace lcdfg

#endif // LCDFG_RUNTIME_GHOSTEXCHANGE_H
