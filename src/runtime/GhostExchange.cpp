//===- runtime/GhostExchange.cpp ------------------------------------------===//

#include "runtime/GhostExchange.h"

#include "obs/Trace.h"
#include "runtime/Parallel.h"
#include "support/Errors.h"

#include <cassert>

using namespace lcdfg;
using namespace lcdfg::rt;

namespace {

/// Maps a global (per-box-relative) coordinate into (neighbor offset,
/// local coordinate).
inline void splitCoord(int Coord, int N, int &BoxOffset, int &Local) {
  if (Coord < 0) {
    BoxOffset = -1;
    Local = Coord + N;
  } else if (Coord >= N) {
    BoxOffset = 1;
    Local = Coord - N;
  } else {
    BoxOffset = 0;
    Local = Coord;
  }
}

} // namespace

void rt::exchangeGhosts(std::vector<Box> &Boxes, const GridLayout &Layout,
                        int Threads) {
  if (static_cast<int>(Boxes.size()) != Layout.numBoxes())
    reportFatalError("exchangeGhosts: box count does not match layout");
  if (Boxes.empty())
    return;
  const int N = Boxes.front().size();
  const int G = Boxes.front().ghost();
  const int NumComp = Boxes.front().numComponents();
  assert(G <= N && "ghost depth deeper than a neighboring box interior");

  // Every non-interior cell of every box is filled once per exchange; each
  // fill reads one source cell and writes one ghost cell (16 bytes).
  obs::Tracer &Tr = obs::Tracer::global();
  if (Tr.enabled()) {
    const std::int64_t Ext = N + 2 * G;
    const std::int64_t PerBox =
        (Ext * Ext * Ext - static_cast<std::int64_t>(N) * N * N) * NumComp;
    const std::int64_t Cells = PerBox * Layout.numBoxes();
    Tr.add(obs::Counter::GhostExchanges, 1);
    Tr.add(obs::Counter::GhostCells, Cells);
    Tr.add(obs::Counter::BytesMoved, Cells * 16);
  }

  parallelFor(Layout.numBoxes(), Threads, [&](int Index) {
    int BZ = Index / (Layout.By * Layout.Bx);
    int BY = (Index / Layout.Bx) % Layout.By;
    int BX = Index % Layout.Bx;
    Box &Dst = Boxes[static_cast<std::size_t>(Index)];

    for (int C = 0; C < NumComp; ++C)
      for (int Z = -G; Z < N + G; ++Z)
        for (int Y = -G; Y < N + G; ++Y)
          for (int X = -G; X < N + G; ++X) {
            bool Interior = Z >= 0 && Z < N && Y >= 0 && Y < N && X >= 0 &&
                            X < N;
            if (Interior)
              continue;
            int DZ, DY, DX, LZ, LY, LX;
            splitCoord(Z, N, DZ, LZ);
            splitCoord(Y, N, DY, LY);
            splitCoord(X, N, DX, LX);
            const Box &Src = Boxes[static_cast<std::size_t>(Layout.index(
                GridLayout::wrap(BZ + DZ, Layout.Bz),
                GridLayout::wrap(BY + DY, Layout.By),
                GridLayout::wrap(BX + DX, Layout.Bx)))];
            Dst.at(C, Z, Y, X) = Src.at(C, LZ, LY, LX);
          }
  });
}
