//===- runtime/GhostExchange.cpp ------------------------------------------===//

#include "runtime/GhostExchange.h"

#include "obs/Trace.h"
#include "runtime/Parallel.h"
#include "support/Errors.h"

#include <string>

using namespace lcdfg;
using namespace lcdfg::rt;
using support::ErrorCode;
using support::Status;

namespace {

/// Maps a global (per-box-relative) coordinate into (neighbor offset,
/// local coordinate).
inline void splitCoord(int Coord, int N, int &BoxOffset, int &Local) {
  if (Coord < 0) {
    BoxOffset = -1;
    Local = Coord + N;
  } else if (Coord >= N) {
    BoxOffset = 1;
    Local = Coord - N;
  } else {
    BoxOffset = 0;
    Local = Coord;
  }
}

} // namespace

Status rt::validateGhostGrid(const std::vector<Box> &Boxes,
                             const GridLayout &Layout) {
  auto Bad = [](std::string Why) {
    return Status::error(ErrorCode::InvalidChain,
                         "ghost grid: " + std::move(Why))
        .withSubcode("ghost-grid");
  };
  if (Layout.Bz <= 0 || Layout.By <= 0 || Layout.Bx <= 0)
    return Bad("layout extents must be positive (" +
               std::to_string(Layout.Bz) + "x" + std::to_string(Layout.By) +
               "x" + std::to_string(Layout.Bx) + ")");
  if (static_cast<int>(Boxes.size()) != Layout.numBoxes())
    return Bad("box count " + std::to_string(Boxes.size()) +
               " does not match layout (" +
               std::to_string(Layout.numBoxes()) + " boxes)");
  if (Boxes.empty())
    return Status::ok();
  const int N = Boxes.front().size();
  const int G = Boxes.front().ghost();
  const int NumComp = Boxes.front().numComponents();
  for (std::size_t I = 1; I < Boxes.size(); ++I) {
    const Box &B = Boxes[I];
    if (B.size() != N || B.ghost() != G || B.numComponents() != NumComp)
      return Bad("box " + std::to_string(I) + " (" +
                 std::to_string(B.size()) + "^3, ghost " +
                 std::to_string(B.ghost()) + ", " +
                 std::to_string(B.numComponents()) +
                 " comp) differs from box 0 (" + std::to_string(N) +
                 "^3, ghost " + std::to_string(G) + ", " +
                 std::to_string(NumComp) + " comp)");
  }
  if (G > N)
    return Bad("ghost depth " + std::to_string(G) +
               " exceeds box interior extent " + std::to_string(N) +
               " (would read past the nearest neighbor)");
  return Status::ok();
}

void rt::fillGhostsOfBox(std::vector<Box> &Boxes, const GridLayout &Layout,
                         int Index) {
  const int N = Boxes.front().size();
  const int G = Boxes.front().ghost();
  const int NumComp = Boxes.front().numComponents();
  int BZ = Index / (Layout.By * Layout.Bx);
  int BY = (Index / Layout.Bx) % Layout.By;
  int BX = Index % Layout.Bx;
  Box &Dst = Boxes[static_cast<std::size_t>(Index)];

  for (int C = 0; C < NumComp; ++C)
    for (int Z = -G; Z < N + G; ++Z)
      for (int Y = -G; Y < N + G; ++Y)
        for (int X = -G; X < N + G; ++X) {
          bool Interior =
              Z >= 0 && Z < N && Y >= 0 && Y < N && X >= 0 && X < N;
          if (Interior)
            continue;
          int DZ, DY, DX, LZ, LY, LX;
          splitCoord(Z, N, DZ, LZ);
          splitCoord(Y, N, DY, LY);
          splitCoord(X, N, DX, LX);
          const Box &Src = Boxes[static_cast<std::size_t>(Layout.index(
              GridLayout::wrap(BZ + DZ, Layout.Bz),
              GridLayout::wrap(BY + DY, Layout.By),
              GridLayout::wrap(BX + DX, Layout.Bx)))];
          Dst.at(C, Z, Y, X) = Src.at(C, LZ, LY, LX);
        }
}

Status rt::exchangeGhosts(std::vector<Box> &Boxes, const GridLayout &Layout,
                          int Threads) {
  if (Status S = validateGhostGrid(Boxes, Layout); !S)
    return S.withContext("exchanging ghosts");
  if (Boxes.empty())
    return Status::ok();
  const int N = Boxes.front().size();
  const int G = Boxes.front().ghost();
  const int NumComp = Boxes.front().numComponents();

  // Every non-interior cell of every box is filled once per exchange; each
  // fill reads one source cell and writes one ghost cell (16 bytes).
  obs::Tracer &Tr = obs::Tracer::global();
  if (Tr.enabled()) {
    const std::int64_t Ext = N + 2 * G;
    const std::int64_t PerBox =
        (Ext * Ext * Ext - static_cast<std::int64_t>(N) * N * N) * NumComp;
    const std::int64_t Cells = PerBox * Layout.numBoxes();
    Tr.add(obs::Counter::GhostExchanges, 1);
    Tr.add(obs::Counter::GhostCells, Cells);
    Tr.add(obs::Counter::BytesMoved, Cells * 16);
  }

  parallelFor(Layout.numBoxes(), Threads, [&](int Index) {
    fillGhostsOfBox(Boxes, Layout, Index);
  });
  return Status::ok();
}
