//===- runtime/BoxGrid.h - Boxes, ghost cells, components -------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data substrate of the MiniFluxDiv benchmark (Section 2.1): the
/// domain is decomposed into independent boxes; each box holds a vector of
/// components per 3D cell and is padded with a layer of ghost cells two
/// deep.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_RUNTIME_BOXGRID_H
#define LCDFG_RUNTIME_BOXGRID_H

#include <cstdint>
#include <vector>

namespace lcdfg {
namespace rt {

/// A 3D box of cells with ghost padding, storing several components
/// contiguously (component-major).
class Box {
public:
  /// Creates a zero-filled box of \p N^3 interior cells with \p Ghost ghost
  /// layers and \p NumComp components.
  Box(int N, int Ghost, int NumComp);

  int size() const { return N; }
  int ghost() const { return Ghost; }
  int numComponents() const { return NumComp; }

  /// Padded extent per dimension.
  int padded() const { return N + 2 * Ghost; }

  /// Strides for raw-pointer iteration: x is contiguous.
  std::int64_t strideX() const { return 1; }
  std::int64_t strideY() const { return padded(); }
  std::int64_t strideZ() const {
    return static_cast<std::int64_t>(padded()) * padded();
  }

  /// Pointer to interior origin (0,0,0) of component \p C; ghost cells lie
  /// at negative offsets.
  double *origin(int C);
  const double *origin(int C) const;

  /// Element access; indices range over [-Ghost, N+Ghost).
  double &at(int C, int Z, int Y, int X) {
    return const_cast<double &>(
        static_cast<const Box *>(this)->at(C, Z, Y, X));
  }
  const double &at(int C, int Z, int Y, int X) const;

  /// Fills every cell (ghosts included) with a deterministic pseudo-random
  /// value derived from \p Seed.
  void fillPseudoRandom(std::uint64_t Seed);

  /// Copies the interior cells of \p Src into this box.
  void copyInteriorFrom(const Box &Src);

  /// Zero-fills the whole box.
  void clear();

private:
  int N;
  int Ghost;
  int NumComp;
  std::vector<double> Data;
};

/// Maximum relative difference between the interiors of two boxes; used to
/// verify that all schedule variants compute the same result.
double maxRelDiff(const Box &A, const Box &B);

} // namespace rt
} // namespace lcdfg

#endif // LCDFG_RUNTIME_BOXGRID_H
