//===- runtime/BoxGrid.cpp ------------------------------------------------===//

#include "runtime/BoxGrid.h"

#include <cassert>
#include <cmath>

using namespace lcdfg;
using namespace lcdfg::rt;

Box::Box(int N, int Ghost, int NumComp)
    : N(N), Ghost(Ghost), NumComp(NumComp),
      Data(static_cast<std::size_t>(NumComp) * padded() * padded() *
               padded(),
           0.0) {
  assert(N > 0 && Ghost >= 0 && NumComp > 0 && "invalid box shape");
}

double *Box::origin(int C) {
  std::int64_t Base = static_cast<std::int64_t>(C) * padded() * padded() *
                      padded();
  std::int64_t GhostOffset = Ghost * (strideZ() + strideY() + strideX());
  return Data.data() + Base + GhostOffset;
}

const double *Box::origin(int C) const {
  return const_cast<Box *>(this)->origin(C);
}

const double &Box::at(int C, int Z, int Y, int X) const {
  assert(C >= 0 && C < NumComp && "component out of range");
  assert(Z >= -Ghost && Z < N + Ghost && "z out of range");
  assert(Y >= -Ghost && Y < N + Ghost && "y out of range");
  assert(X >= -Ghost && X < N + Ghost && "x out of range");
  return origin(C)[Z * strideZ() + Y * strideY() + X];
}

void Box::fillPseudoRandom(std::uint64_t Seed) {
  // SplitMix64: deterministic, fast, good enough for workload data.
  std::uint64_t State = Seed;
  for (double &V : Data) {
    State += 0x9e3779b97f4a7c15ull;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    Z ^= Z >> 31;
    // Map to [0.5, 1.5) to keep values well-conditioned.
    V = 0.5 + static_cast<double>(Z >> 11) * (1.0 / 9007199254740992.0);
  }
}

void Box::copyInteriorFrom(const Box &Src) {
  assert(N == Src.N && NumComp == Src.NumComp && "shape mismatch");
  for (int C = 0; C < NumComp; ++C)
    for (int Z = 0; Z < N; ++Z)
      for (int Y = 0; Y < N; ++Y)
        for (int X = 0; X < N; ++X)
          at(C, Z, Y, X) = Src.at(C, Z, Y, X);
}

void Box::clear() { std::fill(Data.begin(), Data.end(), 0.0); }

double rt::maxRelDiff(const Box &A, const Box &B) {
  assert(A.size() == B.size() && A.numComponents() == B.numComponents() &&
         "shape mismatch");
  double Max = 0.0;
  for (int C = 0; C < A.numComponents(); ++C)
    for (int Z = 0; Z < A.size(); ++Z)
      for (int Y = 0; Y < A.size(); ++Y)
        for (int X = 0; X < A.size(); ++X) {
          double VA = A.at(C, Z, Y, X), VB = B.at(C, Z, Y, X);
          double Denom = std::fmax(std::fabs(VA), std::fabs(VB));
          if (Denom < 1e-300)
            continue;
          Max = std::fmax(Max, std::fabs(VA - VB) / Denom);
        }
  return Max;
}
