//===- runtime/Parallel.cpp -----------------------------------------------===//

#include "runtime/Parallel.h"

#include <omp.h>

using namespace lcdfg;

void rt::parallelFor(int Count, int Threads,
                     const std::function<void(int)> &Fn) {
  if (Threads <= 1) {
    for (int I = 0; I < Count; ++I)
      Fn(I);
    return;
  }
#pragma omp parallel for num_threads(Threads) schedule(static)
  for (int I = 0; I < Count; ++I)
    Fn(I);
}

int rt::hardwareThreads() { return omp_get_max_threads(); }
