//===- runtime/Parallel.cpp -----------------------------------------------===//

#include "runtime/Parallel.h"

#include "exec/ThreadPool.h"

#include <thread>

using namespace lcdfg;

void rt::parallelFor(int Count, int Threads,
                     const std::function<void(int)> &Fn) {
  exec::ThreadPool::global().parallelFor(Count, Threads, Fn);
}

int rt::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? static_cast<int>(N) : 1;
}
