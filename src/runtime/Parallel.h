//===- runtime/Parallel.h - Thread-count-controlled parallel for -*- C++-*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel iteration over boxes (or tiles) with an explicit thread count,
/// mirroring the "per thread parallelism over the boxes" setup of
/// Section 5.1. A thin wrapper over the persistent exec::ThreadPool:
/// iterations are claimed dynamically, the first exception thrown by an
/// iteration propagates to the caller, and the LCDFG_THREADS environment
/// variable caps the thread count of every call.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_RUNTIME_PARALLEL_H
#define LCDFG_RUNTIME_PARALLEL_H

#include <functional>

namespace lcdfg {
namespace rt {

/// Runs Fn(I) for I in [0, Count) on up to \p Threads pool threads.
/// Threads <= 1 (and nested calls from inside a parallel region) run
/// serially on the calling thread.
void parallelFor(int Count, int Threads, const std::function<void(int)> &Fn);

/// The hardware thread count visible to this process.
int hardwareThreads();

} // namespace rt
} // namespace lcdfg

#endif // LCDFG_RUNTIME_PARALLEL_H
