//===- runtime/Parallel.h - Thread-count-controlled parallel for -*- C++-*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel iteration over boxes (or tiles) with an explicit thread count,
/// mirroring the "per thread parallelism over the boxes" setup of
/// Section 5.1.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_RUNTIME_PARALLEL_H
#define LCDFG_RUNTIME_PARALLEL_H

#include <functional>

namespace lcdfg {
namespace rt {

/// Runs Fn(I) for I in [0, Count) on \p Threads OpenMP threads with a
/// static schedule. Threads <= 1 runs serially.
void parallelFor(int Count, int Threads, const std::function<void(int)> &Fn);

/// The hardware thread count visible to this process.
int hardwareThreads();

} // namespace rt
} // namespace lcdfg

#endif // LCDFG_RUNTIME_PARALLEL_H
