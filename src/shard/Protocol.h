//===- shard/Protocol.h - Checksummed shard message framing -----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the sharded runner: fixed-size self-describing
/// frame headers (magic, type, sender rank, step, slab coordinates,
/// payload length, FNV-1a-64 payload checksum) followed by the payload,
/// carried over AF_UNIX SOCK_SEQPACKET socketpairs created before fork.
/// SEQPACKET gives message boundaries and per-channel ordering for free,
/// so a frame either arrives whole or is detectably short — a truncated
/// or checksum-failing datagram surfaces as a non-terminal E019 "corrupt"
/// error the caller answers with a resend request, never as silently
/// wrong data. recv() is poll()-based with a millisecond deadline: EOF or
/// peer reset is terminal E018-peer-lost; an expired deadline is E019
/// "timeout". Sends use MSG_NOSIGNAL so a dead peer is a Status, not a
/// SIGPIPE. Payloads are bounded (chunked by the callers) to stay far
/// under the SEQPACKET datagram limit.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SHARD_PROTOCOL_H
#define LCDFG_SHARD_PROTOCOL_H

#include "support/Status.h"

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace lcdfg {
namespace shard {

/// What a frame carries. Halo frames flow worker-to-worker; the rest flow
/// on the coordinator channels.
enum class FrameType : std::uint16_t {
  HaloData = 1, ///< One halo slab's doubles for (Box, Comp, Z0, ZCount).
  HaloResend,   ///< "Resend your step-N halo frames" (BoxIndex -1 = all).
  Heartbeat,    ///< Liveness tick to the coordinator (empty).
  StepDone,     ///< Step finished; payload = per-step stats (int64s).
  BoxState,     ///< Checkpoint chunk of an owned box's interior planes.
  Abort,        ///< Terminal worker error; payload = rendered Status,
                ///  Comp = its support::ErrorCode.
  Shutdown      ///< Coordinator tells a worker to exit cleanly (empty).
};

std::string_view frameTypeName(FrameType T);

/// The fixed wire header. Both ends are fork twins of one process, so
/// layout/endianness agree by construction; Magic still guards against
/// desynchronized streams.
struct FrameHeader {
  std::uint32_t Magic = 0;
  std::uint16_t Type = 0;
  std::uint16_t Rank = 0;   ///< Sender rank (CoordinatorRank for the parent).
  std::int32_t Step = 0;
  std::int32_t BoxIndex = -1;
  std::int32_t Comp = -1;
  std::int32_t Z0 = 0;
  std::int32_t ZCount = 0;
  std::uint32_t PayloadBytes = 0;
  std::uint64_t Checksum = 0; ///< FNV-1a-64 of the payload bytes.
};

inline constexpr std::uint32_t FrameMagic = 0x4c435346; // "LCSF"
inline constexpr std::uint16_t CoordinatorRank = 0xffff;

/// One parsed frame.
struct Frame {
  FrameHeader H;
  std::vector<std::uint8_t> Payload;

  FrameType type() const { return static_cast<FrameType>(H.Type); }
  const double *doubles() const {
    return reinterpret_cast<const double *>(Payload.data());
  }
  std::size_t numDoubles() const { return Payload.size() / sizeof(double); }
};

/// FNV-1a-64 over \p Len bytes.
std::uint64_t fnv1a(const void *Data, std::size_t Len);

/// One end of a SEQPACKET socketpair. Move-only; closes on destruction.
class Channel {
public:
  Channel() = default;
  explicit Channel(int Fd) : Fd(Fd) {}
  Channel(Channel &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Channel &operator=(Channel &&O) noexcept;
  Channel(const Channel &) = delete;
  Channel &operator=(const Channel &) = delete;
  ~Channel() { close(); }

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// Creates a connected pair. E015 on resource exhaustion.
  static support::Expected<std::pair<Channel, Channel>> makePair();

  /// Sends \p F as one datagram, finalizing Magic / PayloadBytes /
  /// Checksum from the payload. \p TruncateTo < Payload.size() sends that
  /// many payload bytes while the header still claims (and checksums) the
  /// full length — the msg:truncate fault, detectably corrupt at the
  /// receiver. E018 when the peer is gone.
  support::Status send(Frame F, std::size_t TruncateTo = SIZE_MAX);

  /// Receives one frame, waiting at most \p TimeoutMs (0 = only what is
  /// already queued). Errors: E018 on EOF/reset (terminal), E019 subcode
  /// "timeout" when the deadline passes with nothing queued, E019 subcode
  /// "corrupt" for a short datagram, bad magic, length mismatch, or
  /// checksum failure (non-terminal — ask for a resend).
  support::Expected<Frame> recv(int TimeoutMs);

private:
  int Fd = -1;
};

/// Poll helper: waits up to \p TimeoutMs for any channel in \p Fds to
/// become readable; returns indices into \p Fds that are readable or
/// hung up (empty on timeout).
std::vector<std::size_t> pollReadable(const std::vector<int> &Fds,
                                      int TimeoutMs);

} // namespace shard
} // namespace lcdfg

#endif // LCDFG_SHARD_PROTOCOL_H
