//===- shard/ShardRunner.h - Multi-process sharded timestepping -*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded execution mode for the paper's Section 5.6 workload: the
/// coordinator forks one worker process per shard, each owning a
/// contiguous slab of the box grid (Topology.h). Every timestep a worker
/// sends its boundary halo slabs to its ring neighbors, computes interior
/// boxes on a spawned thread while the exchange is in flight (the
/// interior footprint needs no remote data, so compute/communication
/// overlap falls out of the ownership map), then fills boundary ghosts
/// from the received slabs, computes the boundary boxes, and checkpoints
/// its interiors to the coordinator.
///
/// The mode is fail-operational rather than merely functional. The
/// coordinator's copy of the grid only advances when EVERY rank reports a
/// step complete, so it is always a consistent pre-step snapshot. Workers
/// enforce per-exchange deadlines (LCDFG_SHARD_TIMEOUT_MS) with bounded
/// exponential-backoff resend retries over checksummed frames; the
/// coordinator tracks per-worker heartbeats and a step deadline. Peer
/// death (E018-peer-lost) or an exhausted exchange (E019-exchange-timeout)
/// triggers the L009-shard-degraded descent: kill the remaining workers,
/// keep the untouched snapshot, and finish every remaining step
/// single-process scalar-serial — bit-identical to a never-sharded run,
/// because ghost doubles are copied exactly and per-box compute is
/// deterministic. exec::FaultInjector's peer:kill / msg:drop /
/// msg:truncate / msg:delay sites make every rung of that story
/// drillable (docs/SHARDING.md).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SHARD_SHARDRUNNER_H
#define LCDFG_SHARD_SHARDRUNNER_H

#include "exec/Recovery.h"
#include "runtime/GhostExchange.h"
#include "support/Status.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lcdfg {
namespace shard {

/// One box's per-step kernel: reads In's interior + ghosts, writes Out's
/// interior. Must be deterministic — the L009 bit-identity guarantee
/// rests on it.
using StepFn = std::function<void(const rt::Box &In, rt::Box &Out)>;

/// Sharded-run configuration.
struct ShardOptions {
  /// Worker processes; 1 runs the loop in-process without forking.
  int Shards = 1;
  /// Worker-local compute threads (plain std::threads — forked children
  /// must not touch the global ThreadPool, whose threads fork does not
  /// duplicate).
  int Threads = 1;
  /// Per-exchange deadline in ms; also paces heartbeats and the
  /// coordinator's step deadline (4x). LCDFG_SHARD_TIMEOUT_MS overrides.
  int TimeoutMs = 2000;
  /// msg:delay fault duration in ms; -1 means 3 * TimeoutMs, i.e. past
  /// the deadline. LCDFG_SHARD_DELAY_MS overrides (a small value turns
  /// the delay fault into a recoverable late-frame drill).
  int DelayMs = -1;

  /// Applies the LCDFG_SHARD_* environment overrides to \p Base.
  static ShardOptions fromEnv(ShardOptions Base);
};

/// Counters mirrored into obs (rt.shard.*) after the run.
struct ShardStats {
  std::int64_t Exchanges = 0; ///< Completed per-worker exchange phases.
  std::int64_t Bytes = 0;     ///< Halo payload bytes sent.
  std::int64_t Retries = 0;   ///< Resend requests issued.
  std::int64_t Timeouts = 0;  ///< Terminal exchange deadline failures.
  std::int64_t PeersLost = 0; ///< Worker processes lost mid-protocol.
};

/// What a sharded run did. Mirrors exec::RunReport's JSON shape
/// ("completed" / "recovered" / "final_rung" / "descents") so report
/// tooling and CI greps treat both uniformly.
struct ShardReport {
  std::vector<exec::RunReport::Descent> Descents;
  std::string FinalRung; ///< "sharded-N", or "shard-degraded-serial".
  bool Completed = false;
  bool Recovered = false;        ///< Completed after an L009 descent.
  support::Status Error;         ///< Set when !Completed.
  ShardStats Stats;
  double Seconds = 0.0;

  std::string toString() const;
  std::string toJson() const;
};

/// Runs \p Steps timesteps of (ghost exchange, then \p Fn per box, then
/// commit) over \p Boxes, sharded across Opts.Shards worker processes.
/// On success Boxes holds the final state; on an L009 descent it still
/// does, recomputed single-process from the last committed snapshot.
/// Validation failures (bad grid, Shards > Bz) return !Completed with the
/// structured error and Boxes untouched. Never throws.
///
/// Must be called from a single-threaded process state when Shards > 1
/// (fork duplicates only the calling thread; the global pool's workers
/// would be silently absent in the children).
ShardReport runSharded(std::vector<rt::Box> &Boxes,
                       const rt::GridLayout &Layout, int Steps,
                       const StepFn &Fn, const ShardOptions &Opts = {});

/// The single-process scalar-serial reference loop: exchange, step every
/// box, commit. The oracle sharded runs are compared against, and the
/// body of the L009 serial fallback.
support::Status runSerialReference(std::vector<rt::Box> &Boxes,
                                   const rt::GridLayout &Layout, int Steps,
                                   const StepFn &Fn);

} // namespace shard
} // namespace lcdfg

#endif // LCDFG_SHARD_SHARDRUNNER_H
