//===- shard/Protocol.cpp -------------------------------------------------===//

#include "shard/Protocol.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <unistd.h>

using namespace lcdfg;
using namespace lcdfg::shard;
using support::ErrorCode;
using support::Status;

std::string_view shard::frameTypeName(FrameType T) {
  switch (T) {
  case FrameType::HaloData:
    return "halo-data";
  case FrameType::HaloResend:
    return "halo-resend";
  case FrameType::Heartbeat:
    return "heartbeat";
  case FrameType::StepDone:
    return "step-done";
  case FrameType::BoxState:
    return "box-state";
  case FrameType::Abort:
    return "abort";
  case FrameType::Shutdown:
    return "shutdown";
  }
  return "unknown";
}

std::uint64_t shard::fnv1a(const void *Data, std::size_t Len) {
  const auto *Bytes = static_cast<const std::uint8_t *>(Data);
  std::uint64_t Hash = 0xcbf29ce484222325ull;
  for (std::size_t I = 0; I < Len; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

Channel &Channel::operator=(Channel &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void Channel::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

support::Expected<std::pair<Channel, Channel>> Channel::makePair() {
  int Fds[2];
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, Fds) != 0)
    return Status::error(ErrorCode::Internal,
                         std::string("socketpair failed: ") +
                             std::strerror(errno));
  return std::make_pair(Channel(Fds[0]), Channel(Fds[1]));
}

Status Channel::send(Frame F, std::size_t TruncateTo) {
  if (Fd < 0)
    return Status::error(ErrorCode::PeerLost, "send on a closed channel");
  F.H.Magic = FrameMagic;
  F.H.PayloadBytes = static_cast<std::uint32_t>(F.Payload.size());
  F.H.Checksum = fnv1a(F.Payload.data(), F.Payload.size());
  const std::size_t SendBytes =
      TruncateTo < F.Payload.size() ? TruncateTo : F.Payload.size();

  std::vector<std::uint8_t> Wire(sizeof(FrameHeader) + SendBytes);
  std::memcpy(Wire.data(), &F.H, sizeof(FrameHeader));
  if (SendBytes)
    std::memcpy(Wire.data() + sizeof(FrameHeader), F.Payload.data(),
                SendBytes);
  for (;;) {
    ssize_t Sent = ::send(Fd, Wire.data(), Wire.size(), MSG_NOSIGNAL);
    if (Sent >= 0)
      return Status::ok();
    if (errno == EINTR)
      continue;
    return Status::error(ErrorCode::PeerLost,
                         std::string("send(") +
                             std::string(frameTypeName(F.type())) +
                             ") failed: " + std::strerror(errno));
  }
}

support::Expected<Frame> Channel::recv(int TimeoutMs) {
  if (Fd < 0)
    return Status::error(ErrorCode::PeerLost, "recv on a closed channel");
  struct pollfd P;
  P.fd = Fd;
  P.events = POLLIN;
  P.revents = 0;
  for (;;) {
    int Ready = ::poll(&P, 1, TimeoutMs);
    if (Ready < 0 && errno == EINTR)
      continue;
    if (Ready == 0)
      return Status::error(ErrorCode::ExchangeTimeout,
                           "no frame within " + std::to_string(TimeoutMs) +
                               "ms")
          .withSubcode("timeout");
    break;
  }
  // POLLHUP with queued data still reads the data first; a bare hangup
  // falls through to the Got == 0 EOF below.
  std::vector<std::uint8_t> Wire(sizeof(FrameHeader) + (std::size_t{1} << 20));
  ssize_t Got;
  for (;;) {
    Got = ::recv(Fd, Wire.data(), Wire.size(), 0);
    if (Got < 0 && errno == EINTR)
      continue;
    break;
  }
  if (Got == 0)
    return Status::error(ErrorCode::PeerLost, "peer closed the channel");
  if (Got < 0)
    return Status::error(ErrorCode::PeerLost,
                         std::string("recv failed: ") + std::strerror(errno));
  if (static_cast<std::size_t>(Got) < sizeof(FrameHeader))
    return Status::error(ErrorCode::ExchangeTimeout,
                         "short datagram (" + std::to_string(Got) +
                             " bytes, no full header)")
        .withSubcode("corrupt");

  Frame F;
  std::memcpy(&F.H, Wire.data(), sizeof(FrameHeader));
  if (F.H.Magic != FrameMagic)
    return Status::error(ErrorCode::ExchangeTimeout, "bad frame magic")
        .withSubcode("corrupt");
  const std::size_t Body = static_cast<std::size_t>(Got) - sizeof(FrameHeader);
  if (Body != F.H.PayloadBytes)
    return Status::error(ErrorCode::ExchangeTimeout,
                         std::string(frameTypeName(F.type())) +
                             " payload truncated (" + std::to_string(Body) +
                             " of " + std::to_string(F.H.PayloadBytes) +
                             " bytes)")
        .withSubcode("corrupt");
  F.Payload.assign(Wire.data() + sizeof(FrameHeader),
                   Wire.data() + sizeof(FrameHeader) + Body);
  if (fnv1a(F.Payload.data(), F.Payload.size()) != F.H.Checksum)
    return Status::error(ErrorCode::ExchangeTimeout,
                         std::string(frameTypeName(F.type())) +
                             " payload checksum mismatch")
        .withSubcode("corrupt");
  return F;
}

std::vector<std::size_t> shard::pollReadable(const std::vector<int> &Fds,
                                             int TimeoutMs) {
  std::vector<struct pollfd> Ps;
  Ps.reserve(Fds.size());
  for (int Fd : Fds) {
    struct pollfd P;
    P.fd = Fd; // poll ignores negative fds, which keeps indices aligned
    P.events = POLLIN;
    P.revents = 0;
    Ps.push_back(P);
  }
  for (;;) {
    int Ready = ::poll(Ps.data(), Ps.size(), TimeoutMs);
    if (Ready < 0 && errno == EINTR)
      continue;
    break;
  }
  std::vector<std::size_t> Readable;
  for (std::size_t I = 0; I < Ps.size(); ++I)
    if (Ps[I].revents & (POLLIN | POLLHUP | POLLERR))
      Readable.push_back(I);
  return Readable;
}
