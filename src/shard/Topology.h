//===- shard/Topology.h - Slab ownership and halo plans ---------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ownership partitioning for the sharded multi-process runner: the box
/// grid is split into contiguous slabs of whole z-rows, one slab per shard
/// rank, arranged in a ring. Because every rank owns complete z-rows and
/// the ghost depth never exceeds a box interior (validateGhostGrid), the
/// only remote data a rank ever needs are G-deep z-face slabs of the boxes
/// in the two adjacent rows — everything else a box's ghost fill reads
/// (including edge and corner ghosts, which reach diagonal neighbors) is
/// owned locally. buildExchangePlan enumerates exactly those slabs, in a
/// deterministic order both ends of a channel agree on, so senders and
/// receivers need no negotiation (docs/SHARDING.md).
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_SHARD_TOPOLOGY_H
#define LCDFG_SHARD_TOPOLOGY_H

#include "runtime/GhostExchange.h"
#include "support/Status.h"

#include <vector>

namespace lcdfg {
namespace shard {

/// Contiguous z-row slab ownership: rank r owns z-rows
/// [RowBegin[r], RowBegin[r+1]) of the layout's Bz rows.
struct SlabPartition {
  int Shards = 1;
  std::vector<int> RowBegin; ///< Size Shards + 1; RowBegin[0] == 0.

  int firstRow(int Rank) const { return RowBegin[static_cast<std::size_t>(Rank)]; }
  int endRow(int Rank) const { return RowBegin[static_cast<std::size_t>(Rank) + 1]; }
  int rowsOf(int Rank) const { return endRow(Rank) - firstRow(Rank); }
  int ownerOfRow(int Z) const;
};

/// Balanced partition of the layout's Bz z-rows over \p Shards ranks
/// (every rank gets Bz/Shards rows, the first Bz%Shards ranks one extra).
/// Requires 1 <= Shards <= Layout.Bz; violations return E002 with a
/// "shard-topology" subcode.
support::Expected<SlabPartition> partitionRows(const rt::GridLayout &Layout,
                                               int Shards);

/// One halo slab: interior z-planes [Z0, Z0 + ZCount) of box BoxIndex,
/// full Y/X interior extent, every component. Z0 is 0 for a LOW face and
/// N - G for a HIGH face.
struct HaloSlab {
  int BoxIndex = 0;
  int Z0 = 0;
  int ZCount = 0;
};

/// Everything rank \p Rank exchanges each step. Send slabs are cut from
/// owned boxes; receive slabs land in (unowned) adjacent-row boxes. With
/// two shards Prev == Next: both lists still travel distinct channels.
/// A single shard has no peers and all lists are empty.
struct ExchangePlan {
  int Prev = -1;
  int Next = -1;
  std::vector<HaloSlab> SendPrev; ///< LOW faces of my first row's boxes.
  std::vector<HaloSlab> SendNext; ///< HIGH faces of my last row's boxes.
  std::vector<HaloSlab> RecvPrev; ///< HIGH faces of the row before mine.
  std::vector<HaloSlab> RecvNext; ///< LOW faces of the row after mine.
};

/// Builds rank \p Rank's exchange plan for boxes of interior extent \p N
/// and ghost depth \p G under \p Part.
ExchangePlan buildExchangePlan(const rt::GridLayout &Layout,
                               const SlabPartition &Part, int Rank, int N,
                               int G);

/// The box indices of z-row \p Z in Layout::index order.
std::vector<int> boxesInRow(const rt::GridLayout &Layout, int Z);

} // namespace shard
} // namespace lcdfg

#endif // LCDFG_SHARD_TOPOLOGY_H
