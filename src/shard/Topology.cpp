//===- shard/Topology.cpp -------------------------------------------------===//

#include "shard/Topology.h"

#include <string>

using namespace lcdfg;
using namespace lcdfg::shard;
using support::ErrorCode;
using support::Status;

int SlabPartition::ownerOfRow(int Z) const {
  for (int R = 0; R < Shards; ++R)
    if (Z >= firstRow(R) && Z < endRow(R))
      return R;
  return -1;
}

support::Expected<SlabPartition> shard::partitionRows(
    const rt::GridLayout &Layout, int Shards) {
  if (Shards < 1 || Shards > Layout.Bz)
    return Status::error(ErrorCode::InvalidChain,
                         "shard count " + std::to_string(Shards) +
                             " must lie in [1, Bz=" +
                             std::to_string(Layout.Bz) +
                             "] (each rank owns whole z-rows)")
        .withSubcode("shard-topology");
  SlabPartition P;
  P.Shards = Shards;
  P.RowBegin.resize(static_cast<std::size_t>(Shards) + 1, 0);
  const int Base = Layout.Bz / Shards;
  const int Extra = Layout.Bz % Shards;
  for (int R = 0; R < Shards; ++R)
    P.RowBegin[static_cast<std::size_t>(R) + 1] =
        P.RowBegin[static_cast<std::size_t>(R)] + Base + (R < Extra ? 1 : 0);
  return P;
}

std::vector<int> shard::boxesInRow(const rt::GridLayout &Layout, int Z) {
  std::vector<int> Indices;
  Indices.reserve(static_cast<std::size_t>(Layout.By) *
                  static_cast<std::size_t>(Layout.Bx));
  for (int Y = 0; Y < Layout.By; ++Y)
    for (int X = 0; X < Layout.Bx; ++X)
      Indices.push_back(Layout.index(Z, Y, X));
  return Indices;
}

ExchangePlan shard::buildExchangePlan(const rt::GridLayout &Layout,
                                      const SlabPartition &Part, int Rank,
                                      int N, int G) {
  ExchangePlan Plan;
  if (Part.Shards <= 1)
    return Plan;
  Plan.Prev = (Rank + Part.Shards - 1) % Part.Shards;
  Plan.Next = (Rank + 1) % Part.Shards;

  const int First = Part.firstRow(Rank);
  const int Last = Part.endRow(Rank) - 1;
  const int RowBefore = rt::GridLayout::wrap(First - 1, Layout.Bz);
  const int RowAfter = rt::GridLayout::wrap(Last + 1, Layout.Bz);

  auto Slabs = [&](int Row, int Z0) {
    std::vector<HaloSlab> Out;
    for (int Index : boxesInRow(Layout, Row))
      Out.push_back(HaloSlab{Index, Z0, G});
    return Out;
  };
  // A box's Z-direction ghost fill reads the facing G interior planes of
  // the adjacent row's boxes (splitCoord maps ghost Z < 0 to source
  // z in [N - G, N) one row down, ghost Z >= N to z in [0, G) one row up);
  // edge/corner ghosts shift Y/X but stay within the same source row, and
  // the slabs span the boxes' full Y/X interior, so two face slabs per
  // adjacent-row box are exactly the remote data needed.
  Plan.SendPrev = Slabs(First, 0);
  Plan.SendNext = Slabs(Last, N - G);
  Plan.RecvPrev = Slabs(RowBefore, N - G);
  Plan.RecvNext = Slabs(RowAfter, 0);
  return Plan;
}
