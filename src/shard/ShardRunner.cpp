//===- shard/ShardRunner.cpp ----------------------------------------------===//

#include "shard/ShardRunner.h"

#include "exec/FaultInjector.h"
#include "obs/Trace.h"
#include "shard/Protocol.h"
#include "shard/Topology.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <sys/wait.h>
#include <thread>
#include <tuple>
#include <unistd.h>

using namespace lcdfg;
using namespace lcdfg::shard;
using support::ErrorCode;
using support::Status;

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t msSince(Clock::time_point T0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               T0)
      .count();
}

int envInt(const char *Name, int Fallback) {
  if (const char *V = std::getenv(Name); V && *V) {
    int Parsed = std::atoi(V);
    if (Parsed > 0)
      return Parsed;
  }
  return Fallback;
}

/// Fork-safe parallel-for over [0, Count) on plain std::threads. Workers
/// must not touch the global ThreadPool: fork only duplicates the calling
/// thread, so the pool's workers do not exist in a child.
template <typename Fn>
void localParallelFor(int Count, int Threads, const Fn &Body) {
  if (Threads <= 1 || Count <= 1) {
    for (int I = 0; I < Count; ++I)
      Body(I);
    return;
  }
  std::atomic<int> NextItem{0};
  auto Work = [&] {
    for (int I; (I = NextItem.fetch_add(1)) < Count;)
      Body(I);
  };
  std::vector<std::thread> Helpers;
  const int Spawn = std::min(Threads, Count) - 1;
  Helpers.reserve(static_cast<std::size_t>(Spawn));
  for (int T = 0; T < Spawn; ++T)
    Helpers.emplace_back(Work);
  Work();
  for (std::thread &H : Helpers)
    H.join();
}

/// Packs interior z-planes [Z0, Z0+ZCount) of component \p C (full Y/X
/// interior extent) into doubles, z-major then y then x.
std::vector<std::uint8_t> packPlanes(const rt::Box &B, int C, int Z0,
                                     int ZCount) {
  const int N = B.size();
  std::vector<std::uint8_t> Payload(static_cast<std::size_t>(ZCount) *
                                    static_cast<std::size_t>(N) *
                                    static_cast<std::size_t>(N) *
                                    sizeof(double));
  auto *Out = reinterpret_cast<double *>(Payload.data());
  for (int Z = Z0; Z < Z0 + ZCount; ++Z)
    for (int Y = 0; Y < N; ++Y)
      for (int X = 0; X < N; ++X)
        *Out++ = B.at(C, Z, Y, X);
  return Payload;
}

/// Inverse of packPlanes.
void unpackPlanes(rt::Box &B, int C, int Z0, int ZCount, const double *In) {
  const int N = B.size();
  for (int Z = Z0; Z < Z0 + ZCount; ++Z)
    for (int Y = 0; Y < N; ++Y)
      for (int X = 0; X < N; ++X)
        B.at(C, Z, Y, X) = *In++;
}

/// Checkpoint chunking: z-planes per BoxState frame, sized to keep each
/// datagram around 32KB regardless of N.
int chunkPlanes(int N) {
  int Planes = 4096 / (N * N);
  return Planes < 1 ? 1 : Planes;
}

constexpr int MaxResendRetries = 6;
constexpr int InitialBackoffMs = 25;
constexpr std::size_t StepDoneInts = 6; // exch, bytes, retries, timeouts,
                                        // peers-lost, exchange-nanos

struct StepStats {
  std::int64_t Exchanges = 0;
  std::int64_t Bytes = 0;
  std::int64_t Retries = 0;
  std::int64_t Timeouts = 0;
  std::int64_t PeersLost = 0;
  std::int64_t ExchangeNanos = 0;
};

//===----------------------------------------------------------------------===//
// Worker
//===----------------------------------------------------------------------===//

/// The poison ledger for msg faults. A fired msg fault does not merely
/// perturb one transmission — it poisons that frame for the step, so
/// resend recovery cannot paper over a drop or repeated truncation and
/// the acceptance fault matrix genuinely reaches L009 (a *short* delay,
/// below the deadline, is the recoverable case by design).
using FrameKey = std::tuple<int, int, int, int>; // step, box, comp, z0

struct Worker {
  int Rank = 0;
  rt::GridLayout Layout;
  SlabPartition Part;
  ExchangePlan Plan;
  ShardOptions Opts;
  int Steps = 0;
  const StepFn *Fn = nullptr;

  std::vector<rt::Box> *Boxes = nullptr;
  int N = 0, G = 0, NumComp = 0;

  Channel Coord, Prev, Next;

  std::vector<int> Owned;            ///< Owned box indices.
  std::vector<int> InteriorBoxes;    ///< Owned boxes needing no remote data.
  std::vector<int> BoundaryBoxes;    ///< Owned boxes in the first/last row.
  std::map<int, std::size_t> Dense;  ///< Owned box index -> NextState slot.
  std::vector<rt::Box> NextState;

  std::map<FrameKey, exec::FaultKind> Poison;
  /// Sent halo frames of the current and previous step, replayed on
  /// HaloResend (a peer may lag one full step behind).
  std::map<int, std::vector<std::pair<bool, Frame>>> SentCache; // ToPrev?
  std::vector<Frame> FutureHalos;

  StepStats Stats;

  [[noreturn]] void fail(Status S, int Step) {
    Frame F;
    F.H.Type = static_cast<std::uint16_t>(FrameType::Abort);
    F.H.Rank = static_cast<std::uint16_t>(Rank);
    F.H.Step = Step;
    F.H.Comp = static_cast<std::int32_t>(S.code());
    const std::string Text = S.toString();
    F.Payload.assign(Text.begin(), Text.end());
    (void)Coord.send(std::move(F)); // best effort; the coordinator also
                                    // notices EOF and reaped children
    _exit(1);
  }

  void sendControl(FrameType T, int Step, const std::uint8_t *Data,
                   std::size_t Len) {
    Frame F;
    F.H.Type = static_cast<std::uint16_t>(T);
    F.H.Rank = static_cast<std::uint16_t>(Rank);
    F.H.Step = Step;
    if (Len)
      F.Payload.assign(Data, Data + Len);
    if (Status S = Coord.send(std::move(F)); !S)
      _exit(1); // coordinator is gone; nothing left to report to
  }

  /// Transmits \p F honoring a poison entry: Drop never reaches the wire,
  /// Truncate halves the payload on EVERY transmission, Delay sleeps
  /// DelayMs before the first transmission only (\p FirstSend).
  void transmit(Channel &Ch, const Frame &F, bool FirstSend) {
    const FrameKey Key{F.H.Step, F.H.BoxIndex, F.H.Comp, F.H.Z0};
    exec::FaultKind Fault = exec::FaultKind::None;
    if (auto It = Poison.find(Key); It != Poison.end())
      Fault = It->second;

    std::size_t TruncateTo = SIZE_MAX;
    switch (Fault) {
    case exec::FaultKind::Drop:
      return; // never sent; resend requests find the poison entry again
    case exec::FaultKind::Truncate:
      TruncateTo = F.Payload.size() / 2;
      break;
    case exec::FaultKind::Delay:
      if (FirstSend)
        std::this_thread::sleep_for(std::chrono::milliseconds(Opts.DelayMs));
      break;
    default:
      break;
    }
    const std::size_t Sent = std::min(TruncateTo, F.Payload.size());
    if (Ch.send(F, TruncateTo))
      Stats.Bytes += static_cast<std::int64_t>(Sent);
    // A failed send surfaces as the peer's E018/E019; our own gather or
    // the coordinator channel reports the terminal condition.
  }

  /// Builds, caches, and sends one halo frame, probing the msg fault site
  /// (each first transmission is one occurrence).
  void sendHalo(Channel &Ch, bool ToPrev, int Step, const HaloSlab &Slab,
                int C) {
    Frame F;
    F.H.Type = static_cast<std::uint16_t>(FrameType::HaloData);
    F.H.Rank = static_cast<std::uint16_t>(Rank);
    F.H.Step = Step;
    F.H.BoxIndex = Slab.BoxIndex;
    F.H.Comp = C;
    F.H.Z0 = Slab.Z0;
    F.H.ZCount = Slab.ZCount;
    F.Payload = packPlanes((*Boxes)[static_cast<std::size_t>(Slab.BoxIndex)],
                           C, Slab.Z0, Slab.ZCount);

    const exec::FaultKind Fault =
        exec::FaultInjector::global().fire(exec::FaultSite::Msg);
    if (Fault != exec::FaultKind::None)
      Poison[{Step, Slab.BoxIndex, C, Slab.Z0}] = Fault;

    SentCache[Step].push_back({ToPrev, F});
    transmit(Ch, F, /*FirstSend=*/true);
  }

  void answerResend(bool FromPrev, int Step) {
    auto It = SentCache.find(Step);
    if (It == SentCache.end())
      return;
    // The requester is our prev peer iff the request arrived on the prev
    // channel; replay the CACHED frames originally sent that way (the
    // live boxes may already hold a later step's state).
    for (auto &[ToPrev, F] : It->second)
      if (ToPrev == FromPrev)
        transmit(FromPrev ? Prev : Next, F, /*FirstSend=*/false);
  }

  void requestResend(Channel &Ch, int Step) {
    Frame F;
    F.H.Type = static_cast<std::uint16_t>(FrameType::HaloResend);
    F.H.Rank = static_cast<std::uint16_t>(Rank);
    F.H.Step = Step;
    F.H.BoxIndex = -1;
    (void)Ch.send(std::move(F));
    ++Stats.Retries;
  }

  /// Applies a validated halo frame into the adjacent-row box it refreshes.
  void applyHalo(const Frame &F) {
    unpackPlanes((*Boxes)[static_cast<std::size_t>(F.H.BoxIndex)], F.H.Comp,
                 F.H.Z0, F.H.ZCount, F.doubles());
  }

  /// Collects every expected halo slab for \p Step, answering peers'
  /// resend requests along the way. Bounded retries with exponential
  /// backoff inside the LCDFG_SHARD_TIMEOUT_MS deadline; terminal E018 on
  /// peer EOF, terminal E019 when the deadline or retry budget runs out.
  Status gatherHalos(int Step) {
    std::map<FrameKey, bool> Expected;
    for (const HaloSlab &S : Plan.RecvPrev)
      for (int C = 0; C < NumComp; ++C)
        Expected[{Step, S.BoxIndex, C, S.Z0}] = false;
    for (const HaloSlab &S : Plan.RecvNext)
      for (int C = 0; C < NumComp; ++C)
        Expected[{Step, S.BoxIndex, C, S.Z0}] = false;
    std::size_t Missing = Expected.size();

    auto Accept = [&](const Frame &F) {
      if (F.H.Step < Step)
        return; // stale duplicate
      if (F.H.Step > Step) {
        FutureHalos.push_back(F); // a peer already running the next step
        return;
      }
      auto It = Expected.find({Step, F.H.BoxIndex, F.H.Comp, F.H.Z0});
      if (It == Expected.end() || It->second)
        return;
      applyHalo(F);
      It->second = true;
      --Missing;
    };

    std::vector<Frame> Buffered;
    Buffered.swap(FutureHalos);
    for (Frame &F : Buffered)
      Accept(F);

    const auto T0 = Clock::now();
    int BackoffMs = InitialBackoffMs;
    int Retries = 0;
    while (Missing > 0) {
      const std::int64_t Elapsed = msSince(T0);
      if (Elapsed >= Opts.TimeoutMs || Retries > MaxResendRetries) {
        ++Stats.Timeouts;
        return Status::error(
                   ErrorCode::ExchangeTimeout,
                   "rank " + std::to_string(Rank) + " step " +
                       std::to_string(Step) + ": " +
                       std::to_string(Missing) +
                       " halo frame(s) unrecovered after " +
                       std::to_string(Retries) + " resend request(s) in " +
                       std::to_string(Elapsed) + "ms")
            .withContext("gathering halo slabs");
      }
      const int Slice = static_cast<int>(
          std::min<std::int64_t>(BackoffMs, Opts.TimeoutMs - Elapsed));
      std::vector<int> Fds{Prev.fd(), Next.fd()};
      std::vector<std::size_t> Ready = pollReadable(Fds, Slice);
      if (Ready.empty()) {
        // Nothing in flight: nudge both peers and back off. Transient
        // stalls (a delayed frame, a peer mid-compute) recover here.
        requestResend(Prev, Step);
        if (Next.fd() != Prev.fd())
          requestResend(Next, Step);
        ++Retries;
        BackoffMs *= 2;
        continue;
      }
      for (std::size_t Idx : Ready) {
        Channel &Ch = Idx == 0 ? Prev : Next;
        auto F = Ch.recv(0);
        if (!F) {
          const Status &E = F.error();
          if (E.code() == ErrorCode::PeerLost) {
            ++Stats.PeersLost;
            return Status::error(ErrorCode::PeerLost,
                                 "rank " + std::to_string(Rank) + " step " +
                                     std::to_string(Step) + ": " +
                                     (Idx == 0 ? "prev" : "next") +
                                     " peer lost (" + E.message() + ")")
                .withContext("gathering halo slabs");
          }
          if (E.subcode() == "corrupt") {
            // Identifiably damaged: ask for a replay and keep draining.
            requestResend(Ch, Step);
            ++Retries;
          }
          continue; // timeout subcode: queue raced empty, poll again
        }
        switch (F->type()) {
        case FrameType::HaloData:
          Accept(*F);
          break;
        case FrameType::HaloResend:
          answerResend(/*FromPrev=*/Idx == 0, F->H.Step);
          break;
        default:
          break; // heartbeats etc. have no meaning between workers
        }
      }
    }
    return Status::ok();
  }

  void computeBoxes(const std::vector<int> &Indices) {
    localParallelFor(
        static_cast<int>(Indices.size()), Opts.Threads, [&](int I) {
          const int BoxIdx = Indices[static_cast<std::size_t>(I)];
          rt::fillGhostsOfBox(*Boxes, Layout, BoxIdx);
          (*Fn)((*Boxes)[static_cast<std::size_t>(BoxIdx)],
                NextState[Dense.at(BoxIdx)]);
        });
  }

  void checkpoint(int Step) {
    const int Chunk = chunkPlanes(N);
    for (int BoxIdx : Owned)
      for (int C = 0; C < NumComp; ++C)
        for (int Z0 = 0; Z0 < N; Z0 += Chunk) {
          const int ZCount = std::min(Chunk, N - Z0);
          Frame F;
          F.H.Type = static_cast<std::uint16_t>(FrameType::BoxState);
          F.H.Rank = static_cast<std::uint16_t>(Rank);
          F.H.Step = Step;
          F.H.BoxIndex = BoxIdx;
          F.H.Comp = C;
          F.H.Z0 = Z0;
          F.H.ZCount = ZCount;
          F.Payload = packPlanes((*Boxes)[static_cast<std::size_t>(BoxIdx)],
                                 C, Z0, ZCount);
          if (!Coord.send(std::move(F)))
            _exit(1);
        }
    std::int64_t Done[StepDoneInts] = {Stats.Exchanges, Stats.Bytes,
                                       Stats.Retries,   Stats.Timeouts,
                                       Stats.PeersLost, Stats.ExchangeNanos};
    sendControl(FrameType::StepDone, Step,
                reinterpret_cast<const std::uint8_t *>(Done), sizeof(Done));
    Stats = StepStats{};
  }

  [[noreturn]] void run() {
    for (int BoxIdx : Owned) {
      Dense[BoxIdx] = NextState.size();
      NextState.emplace_back(N, G, NumComp);
    }
    for (int Step = 0; Step < Steps; ++Step) {
      sendControl(FrameType::Heartbeat, Step, nullptr, 0);
      const auto ExchangeT0 = Clock::now();
      for (const HaloSlab &S : Plan.SendPrev)
        for (int C = 0; C < NumComp; ++C)
          sendHalo(Prev, /*ToPrev=*/true, Step, S, C);
      for (const HaloSlab &S : Plan.SendNext)
        for (int C = 0; C < NumComp; ++C)
          sendHalo(Next, /*ToPrev=*/false, Step, S, C);

      // Interior boxes read only owned rows (still at the pre-step state),
      // so their ghost fill + kernel overlap the in-flight exchange; the
      // gather thread only writes adjacent-row boxes the interior
      // footprint never touches.
      Status GatherResult = Status::ok();
      std::thread Interior([&] { computeBoxes(InteriorBoxes); });
      if (Plan.Prev >= 0)
        GatherResult = gatherHalos(Step);
      Interior.join();
      if (!GatherResult)
        fail(std::move(GatherResult), Step);
      Stats.ExchangeNanos +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               ExchangeT0)
              .count();
      if (Plan.Prev >= 0)
        ++Stats.Exchanges;

      computeBoxes(BoundaryBoxes);
      for (int BoxIdx : Owned)
        (*Boxes)[static_cast<std::size_t>(BoxIdx)].copyInteriorFrom(
            NextState[Dense.at(BoxIdx)]);
      SentCache.erase(Step - 1); // keep current + previous step only
      checkpoint(Step);
    }
    // Hold the channels open until the coordinator has consumed the final
    // checkpoint and says so.
    (void)Coord.recv(Opts.TimeoutMs * 8);
    _exit(0);
  }
};

[[noreturn]] void workerMain(Worker &W, bool KillSelf) {
  if (KillSelf)
    _exit(9); // peer:kill — die before the first halo send
  W.Owned.clear();
  for (int Z = W.Part.firstRow(W.Rank); Z < W.Part.endRow(W.Rank); ++Z)
    for (int Idx : boxesInRow(W.Layout, Z))
      W.Owned.push_back(Idx);
  const int First = W.Part.firstRow(W.Rank);
  const int Last = W.Part.endRow(W.Rank) - 1;
  for (int Z = First; Z <= Last; ++Z) {
    const bool Boundary =
        W.Part.Shards > 1 && (Z == First || Z == Last);
    for (int Idx : boxesInRow(W.Layout, Z))
      (Boundary ? W.BoundaryBoxes : W.InteriorBoxes).push_back(Idx);
  }
  W.run();
}

//===----------------------------------------------------------------------===//
// Coordinator
//===----------------------------------------------------------------------===//

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

struct Coordinator {
  rt::GridLayout Layout;
  SlabPartition Part;
  ShardOptions Opts;
  int Steps = 0;
  const StepFn *Fn = nullptr;
  std::vector<rt::Box> *Boxes = nullptr;

  std::vector<pid_t> Pids;
  std::vector<Channel> Chans; ///< Parent end per rank.
  std::vector<rt::Box> Staging;
  std::vector<std::pair<int, Frame>> Pending; ///< (rank, future-step frame).

  ShardReport Report;
  int Committed = 0;

  void killWorkers() {
    for (pid_t P : Pids)
      if (P > 0)
        ::kill(P, SIGKILL);
    for (pid_t &P : Pids) {
      if (P > 0) {
        int WStatus = 0;
        while (::waitpid(P, &WStatus, 0) < 0 && errno == EINTR) {
        }
      }
      P = -1;
    }
    for (Channel &C : Chans)
      C.close();
  }

  void applyBoxState(const Frame &F) {
    unpackPlanes(Staging[static_cast<std::size_t>(F.H.BoxIndex)], F.H.Comp,
                 F.H.Z0, F.H.ZCount, F.doubles());
  }

  /// Runs one step's collection: every rank must deliver its checkpoint
  /// chunks and StepDone inside the step deadline, with heartbeats and
  /// frame arrivals counting as liveness. Returns the terminal error on
  /// peer loss / abort / deadline.
  Status collectStep(int Step) {
    obs::Tracer &Tr = obs::Tracer::global();
    const std::int64_t StepT0Ns = Tr.enabled() ? Tr.nowNs() : 0;
    std::vector<bool> Done(static_cast<std::size_t>(Part.Shards), false);
    int DoneCount = 0;

    auto HandleFrame = [&](int Rank, const Frame &F) -> Status {
      switch (F.type()) {
      case FrameType::Heartbeat:
        return Status::ok();
      case FrameType::BoxState:
        if (F.H.Step == Step)
          applyBoxState(F);
        else if (F.H.Step > Step)
          Pending.push_back({Rank, F});
        return Status::ok();
      case FrameType::StepDone: {
        if (F.H.Step != Step) {
          if (F.H.Step > Step)
            Pending.push_back({Rank, F});
          return Status::ok();
        }
        if (F.Payload.size() >= StepDoneInts * sizeof(std::int64_t)) {
          const auto *V =
              reinterpret_cast<const std::int64_t *>(F.Payload.data());
          Report.Stats.Exchanges += V[0];
          Report.Stats.Bytes += V[1];
          Report.Stats.Retries += V[2];
          Report.Stats.Timeouts += V[3];
          Report.Stats.PeersLost += V[4];
          if (Tr.enabled()) {
            obs::TraceSpan Span;
            Span.Kind = obs::SpanKind::Exchange;
            Span.T0 = StepT0Ns;
            Span.T1 = StepT0Ns + V[5];
            Span.A0 = Rank;
            Span.A1 = Step;
            Tr.record(Span);
          }
        }
        if (!Done[static_cast<std::size_t>(Rank)]) {
          Done[static_cast<std::size_t>(Rank)] = true;
          ++DoneCount;
        }
        return Status::ok();
      }
      case FrameType::Abort: {
        const auto Code = static_cast<ErrorCode>(F.H.Comp);
        // The aborting worker never sends its StepDone stats; fold the
        // failure class into the coordinator's counters here.
        if (Code == ErrorCode::ExchangeTimeout)
          ++Report.Stats.Timeouts;
        else if (Code == ErrorCode::PeerLost)
          ++Report.Stats.PeersLost;
        std::string Detail(F.Payload.begin(), F.Payload.end());
        if (Detail.empty())
          Detail = "worker aborted without detail";
        return Status::error(Code == ErrorCode::None ? ErrorCode::PeerLost
                                                     : Code,
                             "rank " + std::to_string(Rank) +
                                 " aborted: " + Detail);
      }
      default:
        return Status::ok();
      }
    };

    for (std::size_t I = 0; I < Pending.size();) {
      if (Pending[I].second.H.Step == Step) {
        if (Status S = HandleFrame(Pending[I].first, Pending[I].second); !S)
          return S;
        Pending.erase(Pending.begin() + static_cast<std::ptrdiff_t>(I));
      } else {
        ++I;
      }
    }

    const auto T0 = Clock::now();
    const int DeadlineMs =
        std::max(4 * Opts.TimeoutMs, Opts.DelayMs + 2 * Opts.TimeoutMs);
    while (DoneCount < Part.Shards) {
      for (std::size_t R = 0; R < Pids.size(); ++R) {
        if (Pids[R] <= 0 || Done[R])
          continue;
        int WStatus = 0;
        pid_t Reaped = ::waitpid(Pids[R], &WStatus, WNOHANG);
        if (Reaped == Pids[R]) {
          Pids[R] = -1;
          ++Report.Stats.PeersLost;
          return Status::error(ErrorCode::PeerLost,
                               "rank " + std::to_string(R) +
                                   " exited mid-step (status " +
                                   std::to_string(WStatus) + ")");
        }
      }
      if (msSince(T0) > DeadlineMs) {
        ++Report.Stats.Timeouts;
        return Status::error(ErrorCode::ExchangeTimeout,
                             "step " + std::to_string(Step) +
                                 " missed the coordinator deadline (" +
                                 std::to_string(DeadlineMs) + "ms)");
      }
      // A rank that finished this step may race ahead (or, after the last
      // step, exit once its shutdown grace expires) — only the laggards'
      // channels are polled; early frames queue until the next step.
      std::vector<int> Fds;
      Fds.reserve(Chans.size());
      for (std::size_t R = 0; R < Chans.size(); ++R)
        Fds.push_back(Done[R] ? -1 : Chans[R].fd());
      std::vector<std::size_t> Ready = pollReadable(Fds, 50);
      for (std::size_t R : Ready) {
        // Drain everything queued on this channel before polling again.
        for (;;) {
          auto F = Chans[R].recv(0);
          if (!F) {
            if (F.error().code() == ErrorCode::PeerLost) {
              ++Report.Stats.PeersLost;
              return Status::error(ErrorCode::PeerLost,
                                   "rank " + std::to_string(R) +
                                       " channel closed (" +
                                       F.error().message() + ")");
            }
            break; // drained (timeout) or corrupt: next poll decides
          }
          if (Status S = HandleFrame(static_cast<int>(R), *F); !S)
            return S;
        }
      }
    }

    for (std::size_t I = 0; I < Boxes->size(); ++I)
      (*Boxes)[I].copyInteriorFrom(Staging[I]);
    ++Committed;
    if (Tr.enabled()) {
      obs::TraceSpan Span;
      Span.Kind = obs::SpanKind::Shard;
      Span.T0 = StepT0Ns;
      Span.T1 = Tr.nowNs();
      Span.A0 = Step;
      Span.A1 = Part.Shards;
      Tr.record(Span);
      Tr.intern("shard-step"); // keep label table stable for tooling
    }
    return Status::ok();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

ShardOptions ShardOptions::fromEnv(ShardOptions Base) {
  Base.TimeoutMs = envInt("LCDFG_SHARD_TIMEOUT_MS", Base.TimeoutMs);
  Base.DelayMs = envInt("LCDFG_SHARD_DELAY_MS", Base.DelayMs);
  if (Base.DelayMs < 0)
    Base.DelayMs = 3 * Base.TimeoutMs;
  return Base;
}

Status shard::runSerialReference(std::vector<rt::Box> &Boxes,
                                 const rt::GridLayout &Layout, int Steps,
                                 const StepFn &Fn) {
  if (Status S = rt::validateGhostGrid(Boxes, Layout); !S)
    return S.withContext("serial reference run");
  std::vector<rt::Box> Next;
  Next.reserve(Boxes.size());
  for (const rt::Box &B : Boxes)
    Next.emplace_back(B.size(), B.ghost(), B.numComponents());
  for (int Step = 0; Step < Steps; ++Step) {
    if (Status S = rt::exchangeGhosts(Boxes, Layout, 1); !S)
      return S;
    for (std::size_t I = 0; I < Boxes.size(); ++I)
      Fn(Boxes[I], Next[I]);
    for (std::size_t I = 0; I < Boxes.size(); ++I)
      Boxes[I].copyInteriorFrom(Next[I]);
  }
  return Status::ok();
}

std::string ShardReport::toString() const {
  std::ostringstream OS;
  OS << "shard report: "
     << (Completed ? (Recovered ? "recovered" : "completed") : "failed")
     << " at rung " << FinalRung << "\n";
  for (const exec::RunReport::Descent &D : Descents)
    OS << "  descent from " << D.Rung << " [" << D.Reason
       << "]: " << D.Detail << "\n";
  if (!Completed)
    OS << "  error: " << Error.toString() << "\n";
  OS << "  stats: exchanges=" << Stats.Exchanges << " bytes=" << Stats.Bytes
     << " retries=" << Stats.Retries << " timeouts=" << Stats.Timeouts
     << " peers_lost=" << Stats.PeersLost << "\n";
  return OS.str();
}

std::string ShardReport::toJson() const {
  std::ostringstream OS;
  OS << "{\"completed\":" << (Completed ? "true" : "false")
     << ",\"recovered\":" << (Recovered ? "true" : "false")
     << ",\"final_rung\":\"" << jsonEscape(FinalRung) << "\",\"descents\":[";
  for (std::size_t I = 0; I < Descents.size(); ++I) {
    if (I)
      OS << ",";
    OS << "{\"rung\":\"" << jsonEscape(Descents[I].Rung)
       << "\",\"reason\":\"" << jsonEscape(Descents[I].Reason)
       << "\",\"detail\":\"" << jsonEscape(Descents[I].Detail) << "\"}";
  }
  OS << "],\"stats\":{\"exchanges\":" << Stats.Exchanges
     << ",\"bytes\":" << Stats.Bytes << ",\"retries\":" << Stats.Retries
     << ",\"timeouts\":" << Stats.Timeouts
     << ",\"peers_lost\":" << Stats.PeersLost << "}";
  if (!Completed)
    OS << ",\"error\":" << Error.toJson();
  OS << "}";
  return OS.str();
}

ShardReport shard::runSharded(std::vector<rt::Box> &Boxes,
                              const rt::GridLayout &Layout, int Steps,
                              const StepFn &Fn, const ShardOptions &Opts) {
  const auto WallT0 = Clock::now();
  ShardReport Report;
  auto Finish = [&](ShardReport R) {
    R.Seconds = std::chrono::duration<double>(Clock::now() - WallT0).count();
    obs::Tracer &Tr = obs::Tracer::global();
    Tr.add(obs::Counter::ShardExchanges, R.Stats.Exchanges);
    Tr.add(obs::Counter::ShardBytes, R.Stats.Bytes);
    Tr.add(obs::Counter::ShardRetries, R.Stats.Retries);
    Tr.add(obs::Counter::ShardTimeouts, R.Stats.Timeouts);
    Tr.add(obs::Counter::ShardPeerLost, R.Stats.PeersLost);
    return R;
  };

  const ShardOptions Cfg = ShardOptions::fromEnv(Opts);
  if (Status S = rt::validateGhostGrid(Boxes, Layout); !S) {
    Report.Error = S.withContext("sharded run");
    Report.FinalRung = "sharded-" + std::to_string(Cfg.Shards);
    return Finish(std::move(Report));
  }
  auto Partition = partitionRows(Layout, Cfg.Shards);
  if (!Partition) {
    Report.Error = Partition.takeError().withContext("sharded run");
    Report.FinalRung = "sharded-" + std::to_string(Cfg.Shards);
    return Finish(std::move(Report));
  }

  if (Cfg.Shards == 1) {
    Report.FinalRung = "sharded-1";
    if (Status S = runSerialReference(Boxes, Layout, Steps, Fn); !S) {
      Report.Error = std::move(S);
      return Finish(std::move(Report));
    }
    Report.Completed = true;
    return Finish(std::move(Report));
  }

  const int S = Cfg.Shards;
  const int N = Boxes.front().size();
  const int G = Boxes.front().ghost();
  const int NumComp = Boxes.front().numComponents();

  // peer:kill selects its victim here, before fork: rank order, one
  // occurrence per rank, so peer:kill:<nth> condemns rank nth-1.
  std::vector<bool> KillSelf(static_cast<std::size_t>(S), false);
  for (int R = 0; R < S; ++R)
    if (exec::FaultInjector::global().fire(exec::FaultSite::Peer) ==
        exec::FaultKind::Kill)
      KillSelf[static_cast<std::size_t>(R)] = true;

  // Channel plumbing, created before any fork. CoordPair[r] links the
  // coordinator with rank r; Ring[r] links rank r (its "next" side) with
  // rank (r+1)%S (its "prev" side).
  std::vector<Channel> CoordParent, CoordChild, RingNextEnd, RingPrevEnd;
  for (int R = 0; R < S; ++R) {
    auto CoordPair = Channel::makePair();
    auto RingPair = Channel::makePair();
    if (!CoordPair || !RingPair) {
      Report.Error = (!CoordPair ? CoordPair.takeError()
                                 : RingPair.takeError())
                         .withContext("creating shard channels");
      Report.FinalRung = "sharded-" + std::to_string(S);
      return Finish(std::move(Report));
    }
    CoordParent.push_back(std::move(CoordPair->first));
    CoordChild.push_back(std::move(CoordPair->second));
    RingNextEnd.push_back(std::move(RingPair->first));
    RingPrevEnd.push_back(std::move(RingPair->second));
  }

  Coordinator Coord;
  Coord.Layout = Layout;
  Coord.Part = *Partition;
  Coord.Opts = Cfg;
  Coord.Steps = Steps;
  Coord.Fn = &Fn;
  Coord.Boxes = &Boxes;
  Coord.Pids.assign(static_cast<std::size_t>(S), -1);

  for (int R = 0; R < S; ++R) {
    pid_t Pid = ::fork();
    if (Pid < 0) {
      Report.Error = Status::error(ErrorCode::Internal,
                                   std::string("fork failed: ") +
                                       std::strerror(errno));
      Report.FinalRung = "sharded-" + std::to_string(S);
      Coord.killWorkers();
      return Finish(std::move(Report));
    }
    if (Pid == 0) {
      // Every child inherits the armed fault specs across fork(); left
      // alone, a msg fault would fire symmetrically in every rank (each
      // counts its own sends), which e.g. turns msg:delay into a harmless
      // synchronized stall. Rank 0 is the deterministic victim: the Nth
      // occurrence counts rank 0's halo sends.
      if (R != 0)
        exec::FaultInjector::global().disarm();
      Worker W;
      W.Rank = R;
      W.Layout = Layout;
      W.Part = *Partition;
      W.Plan = buildExchangePlan(Layout, *Partition, R, N, G);
      W.Opts = Cfg;
      W.Steps = Steps;
      W.Fn = &Fn;
      W.Boxes = &Boxes;
      W.N = N;
      W.G = G;
      W.NumComp = NumComp;
      W.Coord = std::move(CoordChild[static_cast<std::size_t>(R)]);
      W.Next = std::move(RingNextEnd[static_cast<std::size_t>(R)]);
      W.Prev = std::move(RingPrevEnd[static_cast<std::size_t>((R - 1 + S) % S)]);
      CoordParent.clear();
      CoordChild.clear();
      RingNextEnd.clear();
      RingPrevEnd.clear();
      workerMain(W, KillSelf[static_cast<std::size_t>(R)]); // never returns
    }
    Coord.Pids[static_cast<std::size_t>(R)] = Pid;
  }
  CoordChild.clear();
  RingNextEnd.clear();
  RingPrevEnd.clear();
  Coord.Chans = std::move(CoordParent);
  Coord.Staging = Boxes;
  Coord.Report.FinalRung = "sharded-" + std::to_string(S);

  Status StepError = Status::ok();
  for (int Step = 0; Step < Steps; ++Step) {
    StepError = Coord.collectStep(Step);
    if (!StepError)
      break;
  }
  Report = std::move(Coord.Report);

  if (StepError) {
    for (Channel &C : Coord.Chans) {
      Frame F;
      F.H.Type = static_cast<std::uint16_t>(FrameType::Shutdown);
      F.H.Rank = CoordinatorRank;
      (void)C.send(std::move(F));
    }
    Coord.killWorkers(); // reap; Shutdown already let them exit cleanly
    Report.Completed = true;
    return Finish(std::move(Report));
  }

  // L009-shard-degraded: the sharded attempt is dead, the committed
  // snapshot is intact (checkpoints only merge on full-step quorum), so
  // finish every remaining step single-process scalar-serial —
  // bit-identical to a never-sharded run.
  Coord.killWorkers();
  Report.Descents.push_back(exec::RunReport::Descent{
      "sharded-" + std::to_string(S), exec::ReasonShardDegraded,
      StepError.toString()});
  if (Status Serial =
          runSerialReference(Boxes, Layout, Steps - Coord.Committed, Fn);
      !Serial) {
    Report.Error = Status::error(ErrorCode::Exhausted,
                                 "serial fallback failed after shard "
                                 "descent: " +
                                     Serial.toString());
    Report.FinalRung = "shard-degraded-serial";
    return Finish(std::move(Report));
  }
  Report.FinalRung = "shard-degraded-serial";
  Report.Completed = true;
  Report.Recovered = true;
  return Finish(std::move(Report));
}
