//===- obs/Trace.cpp ------------------------------------------------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

using namespace lcdfg;
using namespace lcdfg::obs;

std::string_view obs::counterName(Counter C) {
  switch (C) {
  case Counter::PointsExecuted:
    return "exec.points";
  case Counter::RawReads:
    return "exec.reads.raw";
  case Counter::BytesMoved:
    return "exec.bytes.moved";
  case Counter::TasksExecuted:
    return "exec.tasks";
  case Counter::ExternalTasks:
    return "exec.tasks.external";
  case Counter::Wavefronts:
    return "exec.wavefronts";
  case Counter::BatchedInstrs:
    return "exec.instrs.batched";
  case Counter::ScalarInstrs:
    return "exec.instrs.scalar";
  case Counter::BatchedSegments:
    return "exec.segments.batched";
  case Counter::ModuloWraps:
    return "exec.modulo.wraps";
  case Counter::GhostExchanges:
    return "rt.ghost.exchanges";
  case Counter::GhostCells:
    return "rt.ghost.cells";
  case Counter::RecoveryRuns:
    return "recovery.attempts";
  case Counter::RecoveryDescents:
    return "recovery.descents";
  case Counter::FaultsFired:
    return "fault.fired";
  case Counter::SchedSteals:
    return "exec.sched.steals";
  case Counter::SchedStalls:
    return "exec.sched.stalls";
  case Counter::SchedDeferred:
    return "exec.sched.deferred";
  case Counter::SchedPeakLive:
    return "exec.sched.live.peak";
  case Counter::JitCompiled:
    return "exec.jit.compiled";
  case Counter::JitCacheHits:
    return "exec.jit.cache.hits";
  case Counter::JitFallbacks:
    return "exec.jit.fallbacks";
  case Counter::ShardExchanges:
    return "rt.shard.exchanges";
  case Counter::ShardBytes:
    return "rt.shard.bytes";
  case Counter::ShardRetries:
    return "rt.shard.retries";
  case Counter::ShardTimeouts:
    return "rt.shard.timeouts";
  case Counter::ShardPeerLost:
    return "rt.shard.peer_lost";
  case Counter::ServeRequests:
    return "serve.requests";
  case Counter::ServeCacheHits:
    return "serve.cache.hits";
  case Counter::ServeCacheMisses:
    return "serve.cache.misses";
  case Counter::ServeEvictions:
    return "serve.cache.evictions";
  case Counter::ServeErrors:
    return "serve.errors";
  case Counter::NumCounters:
    break;
  }
  return "unknown";
}

std::string_view obs::spanKindName(SpanKind K) {
  switch (K) {
  case SpanKind::Task:
    return "task";
  case SpanKind::Wavefront:
    return "wavefront";
  case SpanKind::Rung:
    return "rung";
  case SpanKind::Run:
    return "run";
  case SpanKind::Marker:
    return "marker";
  case SpanKind::Jit:
    return "jit";
  case SpanKind::Shard:
    return "shard";
  case SpanKind::Exchange:
    return "exchange";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

/// One recording thread's private state. Only the owning thread writes the
/// ring/counters while recording is live; the draining thread reads them
/// only between parallel regions (the Tracer contract).
struct ThreadBuf {
  std::vector<TraceSpan> Ring;
  std::size_t Capacity = 0;
  std::size_t Total = 0; ///< Spans ever recorded (>Capacity => wrapped).
  std::array<std::int64_t, NumCountersV> Counters{};

  void clear(std::size_t Cap) {
    Ring.clear();
    Ring.reserve(Cap);
    Capacity = Cap;
    Total = 0;
    Counters.fill(0);
  }

  void push(const TraceSpan &S) {
    if (Ring.size() < Capacity)
      Ring.push_back(S);
    else if (Capacity)
      Ring[Total % Capacity] = S;
    ++Total;
  }
};

} // namespace

struct Tracer::Impl {
  std::atomic<bool> Enabled{false};
  /// Bumped by enable()/drain(); a thread whose cached generation is stale
  /// re-registers, so stale thread-local pointers never dangle into a
  /// cleared buffer list.
  std::atomic<std::uint64_t> Generation{0};
  Clock::time_point Epoch{};
  std::size_t Capacity = DefaultCapacity;

  std::mutex Mu; ///< Guards Bufs, Labels, LabelIds.
  std::vector<std::unique_ptr<ThreadBuf>> Bufs;
  std::vector<std::string> Labels;
  std::unordered_map<std::string, std::int32_t> LabelIds;

  /// Set when LCDFG_TRACE armed the global tracer: drained + written at
  /// process exit.
  std::string ExitPath;

  ThreadBuf *acquire() {
    // Fast path: this thread already registered a buffer for the current
    // generation. Thread-locals are per-tracer-irrelevant (there is one
    // global tracer in practice; unit tests construct their own but never
    // share threads mid-trace with the global one while both are enabled).
    thread_local ThreadBuf *Buf = nullptr;
    thread_local std::uint64_t Gen = ~std::uint64_t{0};
    thread_local Impl *Owner = nullptr;
    std::uint64_t Cur = Generation.load(std::memory_order_acquire);
    if (Buf && Gen == Cur && Owner == this)
      return Buf;
    std::lock_guard<std::mutex> L(Mu);
    Bufs.push_back(std::make_unique<ThreadBuf>());
    Bufs.back()->clear(Capacity);
    Buf = Bufs.back().get();
    Gen = Cur;
    Owner = this;
    return Buf;
  }
};

Tracer::Tracer() : PImpl(new Impl) {}

Tracer::~Tracer() {
  if (!PImpl->ExitPath.empty() && PImpl->Enabled.load()) {
    Trace T = drain();
    if (!T.Spans.empty() || !T.WorkerCounters.empty()) {
      std::string Json = T.toChromeJson();
      if (std::FILE *F = std::fopen(PImpl->ExitPath.c_str(), "w")) {
        std::fwrite(Json.data(), 1, Json.size(), F);
        std::fclose(F);
        std::fprintf(stderr, "lcdfg: wrote trace to %s (%zu spans)\n",
                     PImpl->ExitPath.c_str(), T.Spans.size());
      }
    }
  }
  delete PImpl;
}

Tracer &Tracer::global() {
  static Tracer T;
  static bool Armed = [] {
    if (const char *Path = std::getenv("LCDFG_TRACE"); Path && *Path) {
      std::size_t Cap = DefaultCapacity;
      if (const char *CapStr = std::getenv("LCDFG_TRACE_CAP"))
        if (long long V = std::atoll(CapStr); V > 0)
          Cap = static_cast<std::size_t>(V);
      T.enable(Cap);
      T.PImpl->ExitPath = Path;
    }
    return true;
  }();
  (void)Armed;
  return T;
}

bool Tracer::enabled() const {
  return PImpl->Enabled.load(std::memory_order_relaxed);
}

void Tracer::enable(std::size_t CapacityPerWorker) {
  Impl &I = *PImpl;
  I.Enabled.store(false);
  {
    std::lock_guard<std::mutex> L(I.Mu);
    I.Bufs.clear();
    I.Labels.clear();
    I.LabelIds.clear();
    I.Capacity = CapacityPerWorker ? CapacityPerWorker : 1;
  }
  I.Epoch = Clock::now();
  I.Generation.fetch_add(1, std::memory_order_acq_rel);
  I.Enabled.store(true, std::memory_order_release);
}

void Tracer::disable() { PImpl->Enabled.store(false); }

Trace Tracer::drain() {
  Impl &I = *PImpl;
  Trace T;
  std::lock_guard<std::mutex> L(I.Mu);
  // Invalidate every cached thread-local pointer before the buffers die.
  I.Generation.fetch_add(1, std::memory_order_acq_rel);
  T.Labels = std::move(I.Labels);
  I.Labels.clear();
  I.LabelIds.clear();
  T.WorkerCounters.reserve(I.Bufs.size());
  for (std::size_t W = 0; W < I.Bufs.size(); ++W) {
    ThreadBuf &B = *I.Bufs[W];
    T.WorkerCounters.push_back(B.Counters);
    std::size_t Kept = std::min(B.Total, B.Capacity);
    T.Dropped += static_cast<std::int64_t>(B.Total - Kept);
    // On wrap-around the oldest surviving span sits at Total % Capacity.
    std::size_t Start = B.Total > B.Capacity ? B.Total % B.Capacity : 0;
    for (std::size_t K = 0; K < Kept; ++K) {
      TraceSpan S = B.Ring[(Start + K) % B.Capacity];
      S.Worker = static_cast<std::int32_t>(W);
      T.Spans.push_back(S);
    }
  }
  I.Bufs.clear();
  std::stable_sort(T.Spans.begin(), T.Spans.end(),
                   [](const TraceSpan &A, const TraceSpan &B) {
                     return A.T0 != B.T0 ? A.T0 < B.T0 : A.T1 < B.T1;
                   });
  return T;
}

std::int32_t Tracer::intern(std::string_view S) {
  Impl &I = *PImpl;
  std::lock_guard<std::mutex> L(I.Mu);
  auto [It, Inserted] =
      I.LabelIds.try_emplace(std::string(S),
                             static_cast<std::int32_t>(I.Labels.size()));
  if (Inserted)
    I.Labels.emplace_back(S);
  return It->second;
}

std::int64_t Tracer::nowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              PImpl->Epoch)
      .count();
}

void Tracer::record(const TraceSpan &S) {
  if (!enabled())
    return;
  PImpl->acquire()->push(S);
}

void Tracer::instant(SpanKind Kind, std::int32_t Label, std::int32_t Task,
                     std::int32_t Instr, std::int32_t A0, std::int32_t A1) {
  if (!enabled())
    return;
  TraceSpan S;
  S.T0 = S.T1 = nowNs();
  S.Kind = Kind;
  S.Label = Label;
  S.Task = Task;
  S.Instr = Instr;
  S.A0 = A0;
  S.A1 = A1;
  PImpl->acquire()->push(S);
}

void Tracer::add(Counter C, std::int64_t V) {
  if (!enabled())
    return;
  PImpl->acquire()->Counters[static_cast<std::size_t>(C)] += V;
}

//===----------------------------------------------------------------------===//
// Trace
//===----------------------------------------------------------------------===//

std::int64_t Trace::counter(Counter C) const {
  std::int64_t Total = 0;
  for (const auto &W : WorkerCounters)
    Total += W[static_cast<std::size_t>(C)];
  return Total;
}

std::string_view Trace::label(std::int32_t Id) const {
  if (Id < 0 || static_cast<std::size_t>(Id) >= Labels.size())
    return "";
  return Labels[static_cast<std::size_t>(Id)];
}

std::string Trace::summary() const {
  std::ostringstream OS;
  std::size_t Tasks = 0, Markers = 0;
  for (const TraceSpan &S : Spans) {
    Tasks += S.Kind == SpanKind::Task;
    Markers += S.Kind == SpanKind::Marker;
  }
  OS << "trace summary: " << Spans.size() << " spans (" << Tasks << " task, "
     << Markers << " instant";
  if (Dropped)
    OS << ", " << Dropped << " dropped";
  OS << "), " << WorkerCounters.size() << " worker buffer"
     << (WorkerCounters.size() == 1 ? "" : "s") << "\n";

  OS << "  counters:\n";
  for (std::size_t C = 0; C < NumCountersV; ++C) {
    std::int64_t V = counter(static_cast<Counter>(C));
    if (!V)
      continue;
    std::string Name(counterName(static_cast<Counter>(C)));
    OS << "    " << Name << std::string(Name.size() < 24 ? 24 - Name.size() : 1,
                                        ' ')
       << V << "\n";
  }

  // Per-worker load from task spans: busy time, task count, and the
  // points shard from the per-worker counter arrays. "Worker" here is a
  // recording thread (pool worker or the caller), not a participant slot.
  struct Load {
    std::int64_t BusyNs = 0;
    std::int64_t Tasks = 0;
  };
  std::vector<Load> Loads(WorkerCounters.size());
  for (const TraceSpan &S : Spans) {
    if (S.Kind != SpanKind::Task || S.Worker < 0 ||
        static_cast<std::size_t>(S.Worker) >= Loads.size())
      continue;
    Loads[static_cast<std::size_t>(S.Worker)].BusyNs += S.T1 - S.T0;
    ++Loads[static_cast<std::size_t>(S.Worker)].Tasks;
  }
  std::int64_t MaxBusy = 0;
  std::int64_t MinBusy = -1;
  bool AnyTasks = false;
  OS << "  workers:\n";
  for (std::size_t W = 0; W < Loads.size(); ++W) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "    worker %zu: busy %.6f s, %lld task spans, %lld points\n",
                  W, static_cast<double>(Loads[W].BusyNs) * 1e-9,
                  static_cast<long long>(Loads[W].Tasks),
                  static_cast<long long>(
                      WorkerCounters[W][static_cast<std::size_t>(
                          Counter::PointsExecuted)]));
    OS << Buf;
    if (Loads[W].Tasks) {
      AnyTasks = true;
      MaxBusy = std::max(MaxBusy, Loads[W].BusyNs);
      MinBusy = MinBusy < 0 ? Loads[W].BusyNs
                            : std::min(MinBusy, Loads[W].BusyNs);
    }
  }
  if (AnyTasks && MinBusy > 0) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "  imbalance: max/min worker busy time %.2fx\n",
                  static_cast<double>(MaxBusy) / static_cast<double>(MinBusy));
    OS << Buf;
  }
  return OS.str();
}

namespace {

void jsonEscapeInto(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += ' ';
      else
        Out += C;
    }
  }
}

void appendNum(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  Out += Buf;
}

} // namespace

std::string Trace::toChromeJson() const {
  // chrome://tracing's JSON: ts/dur are microseconds (fractions allowed);
  // we map each worker buffer to one tid under a single pid.
  std::string Out;
  Out.reserve(Spans.size() * 96 + 4096);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto Comma = [&] {
    if (!First)
      Out += ",";
    First = false;
  };

  for (std::size_t W = 0; W < WorkerCounters.size(); ++W) {
    Comma();
    Out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    Out += std::to_string(W);
    Out += ",\"args\":{\"name\":\"worker ";
    Out += std::to_string(W);
    Out += "\"}}";
  }

  for (const TraceSpan &S : Spans) {
    Comma();
    Out += "{\"name\":\"";
    std::string_view L = label(S.Label);
    if (L.empty())
      Out += spanKindName(S.Kind);
    else
      jsonEscapeInto(Out, L);
    Out += "\",\"cat\":\"";
    Out += spanKindName(S.Kind);
    if (S.Kind == SpanKind::Marker) {
      Out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      appendNum(Out, static_cast<double>(S.T0) * 1e-3);
    } else {
      Out += "\",\"ph\":\"X\",\"ts\":";
      appendNum(Out, static_cast<double>(S.T0) * 1e-3);
      Out += ",\"dur\":";
      appendNum(Out, static_cast<double>(S.T1 - S.T0) * 1e-3);
    }
    Out += ",\"pid\":0,\"tid\":";
    Out += std::to_string(S.Worker < 0 ? 0 : S.Worker);
    Out += ",\"args\":{";
    bool FirstArg = true;
    auto Arg = [&](const char *K, std::int32_t V) {
      if (V < 0)
        return;
      if (!FirstArg)
        Out += ",";
      FirstArg = false;
      Out += "\"";
      Out += K;
      Out += "\":";
      Out += std::to_string(V);
    };
    Arg("task", S.Task);
    Arg("instr", S.Instr);
    Arg("a0", S.A0);
    Arg("a1", S.A1);
    Out += "}}";
  }

  // Merged counter totals as Chrome counter events at t=0 (drawn as a
  // value track; also greppable by the conformance tests).
  for (std::size_t C = 0; C < NumCountersV; ++C) {
    std::int64_t V = counter(static_cast<Counter>(C));
    if (!V)
      continue;
    Comma();
    Out += "{\"name\":\"";
    Out += counterName(static_cast<Counter>(C));
    Out += "\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"args\":{\"value\":";
    Out += std::to_string(V);
    Out += "}}";
  }

  Out += "]";
  if (Dropped) {
    Out += ",\"lcdfg_dropped_spans\":";
    Out += std::to_string(Dropped);
  }
  Out += "}";
  return Out;
}
