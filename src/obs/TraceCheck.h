//===- obs/TraceCheck.h - Trace-vs-plan conformance validator ---*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic post-hoc race observer: replays a drained Trace against
/// the ExecutionPlan that produced it and asserts the schedule actually
/// respected its dependence structure. The static PlanVerifier proves a
/// plan *could* execute legally; TraceCheck proves one concrete execution
/// *did* — every dependence edge is backed by span timestamps (producer
/// span ends before consumer span starts, which by transitivity covers the
/// whole dependenceClosure()) and every task span sits on exactly one
/// worker with no same-worker overlap.
///
/// Checks run in stages and later stages are skipped once an earlier stage
/// errors, so a single mutation (a deleted span, a reversed pair) yields
/// exactly one diagnostic instead of a cascade:
///
///   T006  the trace is incomplete (ring buffers dropped spans)
///   T001  a plan task has no span / a span names an unknown task
///   T002  a plan task has more than one span (one trace = one run)
///   T003  a span ends before it starts
///   T005  two task spans on the same worker overlap in time
///   T004  a dependence edge is violated (consumer started before its
///         producer finished)
///
/// The input must be the drain of exactly one runPlan invocation of the
/// given plan; traces spanning several attempts (e.g. a recovery ladder)
/// legitimately repeat task spans and are rejected as T002.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_OBS_TRACECHECK_H
#define LCDFG_OBS_TRACECHECK_H

#include "obs/Trace.h"
#include "verify/Diagnostics.h"

namespace lcdfg {
namespace exec {
class ExecutionPlan;
} // namespace exec

namespace obs {

/// Stable trace-check identifiers, sibling namespace to the verifier's
/// Vnnn codes. Documented in docs/OBSERVABILITY.md.
inline constexpr const char *CheckMissingSpan = "T001-missing-span";
inline constexpr const char *CheckDuplicateSpan = "T002-duplicate-span";
inline constexpr const char *CheckReversedSpan = "T003-reversed-span";
inline constexpr const char *CheckDependenceOrder = "T004-dependence-order";
inline constexpr const char *CheckWorkerOverlap = "T005-worker-overlap";
inline constexpr const char *CheckDroppedSpans = "T006-dropped-spans";
/// Not emitted by checkTrace itself: lcdfg-lint's scheduler bit-compare
/// folds a wavefront-vs-list output divergence under this id.
inline constexpr const char *CheckSchedulerDivergence =
    "T007-scheduler-divergence";
/// Likewise lint-only: a --kernels=jit run whose persistent spaces are not
/// bit-identical to the interpreted batched reference.
inline constexpr const char *CheckJitDivergence = "T008-jit-divergence";

/// Validates \p T against \p Plan as described above. Non-task spans
/// (wavefronts, rungs, markers) are ignored; only SpanKind::Task spans
/// participate.
verify::Diagnostics checkTrace(const exec::ExecutionPlan &Plan,
                               const Trace &T);

} // namespace obs
} // namespace lcdfg

#endif // LCDFG_OBS_TRACECHECK_H
