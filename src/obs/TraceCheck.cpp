//===- obs/TraceCheck.cpp -------------------------------------------------===//

#include "obs/TraceCheck.h"

#include "exec/ExecutionPlan.h"

#include <algorithm>

using namespace lcdfg;
using namespace lcdfg::obs;
using verify::Diagnostic;
using verify::Diagnostics;
using verify::Severity;

namespace {

Diagnostic makeDiag(const char *CheckId, std::string Message, int Task = -1,
                    int OtherTask = -1) {
  Diagnostic D;
  D.Sev = Severity::Error;
  D.CheckId = CheckId;
  D.Message = std::move(Message);
  D.Task = Task;
  D.OtherTask = OtherTask;
  return D;
}

} // namespace

Diagnostics obs::checkTrace(const exec::ExecutionPlan &Plan, const Trace &T) {
  Diagnostics Diags;
  const std::size_t NumTasks = Plan.Tasks.size();

  // Stage 0: a wrapped ring buffer means spans were lost; every later
  // stage would report phantom "missing" tasks, so stop here.
  if (T.Dropped) {
    Diags.add(makeDiag(CheckDroppedSpans,
                       std::to_string(T.Dropped) +
                           " spans were dropped by ring-buffer wrap-around; "
                           "the trace is incomplete (raise the tracer "
                           "capacity)"));
    return Diags;
  }

  // Stage 1: structural — exactly one well-formed span per plan task.
  // Spans is time-sorted, so the first span seen for a task is kept as its
  // canonical execution for the later stages.
  std::vector<int> SpanOf(NumTasks, -1);
  for (std::size_t S = 0; S < T.Spans.size(); ++S) {
    const TraceSpan &Sp = T.Spans[S];
    if (Sp.Kind != SpanKind::Task)
      continue;
    if (Sp.Task < 0 || static_cast<std::size_t>(Sp.Task) >= NumTasks) {
      Diags.add(makeDiag(CheckMissingSpan,
                         "task span references task " +
                             std::to_string(Sp.Task) +
                             " outside the plan (plan has " +
                             std::to_string(NumTasks) + " tasks)",
                         Sp.Task));
      continue;
    }
    if (SpanOf[static_cast<std::size_t>(Sp.Task)] >= 0) {
      Diags.add(makeDiag(CheckDuplicateSpan,
                         "task " + std::to_string(Sp.Task) +
                             " has more than one span (one trace must cover "
                             "exactly one run of the plan)",
                         Sp.Task));
      continue;
    }
    SpanOf[static_cast<std::size_t>(Sp.Task)] = static_cast<int>(S);
    if (Sp.T1 < Sp.T0)
      Diags.add(makeDiag(CheckReversedSpan,
                         "task " + std::to_string(Sp.Task) +
                             " span ends before it starts (" +
                             std::to_string(Sp.T1) + " < " +
                             std::to_string(Sp.T0) + " ns)",
                         Sp.Task));
  }
  for (std::size_t J = 0; J < NumTasks; ++J)
    if (SpanOf[J] < 0)
      Diags.add(makeDiag(CheckMissingSpan,
                         "task " + std::to_string(J) +
                             " was never executed: no span recorded",
                         static_cast<int>(J)));
  if (Diags.hasErrors())
    return Diags;

  // Stage 2: worker placement — a worker is one thread, so its task spans
  // must not overlap (tasks never nest inside each other; wavefront/rung
  // container spans are exempt by construction). Spans are time-sorted, so
  // tracking the latest end per worker finds any overlap.
  {
    std::vector<std::pair<std::int64_t, int>> LastEnd; // per worker: end, task
    bool Overlap = false;
    for (const TraceSpan &Sp : T.Spans) {
      if (Sp.Kind != SpanKind::Task || Sp.Task < 0 ||
          static_cast<std::size_t>(Sp.Task) >= NumTasks)
        continue;
      if (Sp.Worker < 0) {
        Diags.add(makeDiag(CheckWorkerOverlap,
                           "task " + std::to_string(Sp.Task) +
                               " span carries no worker id",
                           Sp.Task));
        Overlap = true;
        break;
      }
      if (static_cast<std::size_t>(Sp.Worker) >= LastEnd.size())
        LastEnd.resize(static_cast<std::size_t>(Sp.Worker) + 1,
                       {std::int64_t{-1}, -1});
      auto &[End, Prev] = LastEnd[static_cast<std::size_t>(Sp.Worker)];
      if (Prev >= 0 && Sp.T0 < End) {
        Diags.add(makeDiag(CheckWorkerOverlap,
                           "tasks " + std::to_string(Prev) + " and " +
                               std::to_string(Sp.Task) +
                               " overlap on worker " +
                               std::to_string(Sp.Worker),
                           Sp.Task, Prev));
        Overlap = true;
        break;
      }
      End = std::max(End, Sp.T1);
      Prev = Sp.Task;
    }
    if (Overlap)
      return Diags;
  }

  // Stage 3: dependence order. Checking every closure pair directly would
  // let one swapped pair cascade into many reports, so walk each dependent
  // task's closure row and report only its first violated producer; since
  // stage 1 guaranteed T0 <= T1 per span, direct-edge timestamps chain
  // transitively, and a clean pass here covers the full closure.
  const std::vector<std::vector<bool>> Closure = Plan.dependenceClosure();
  for (std::size_t J = 0; J < NumTasks; ++J) {
    const TraceSpan &SJ = T.Spans[static_cast<std::size_t>(SpanOf[J])];
    for (std::size_t I = 0; I < J; ++I) {
      if (!Closure[J][I])
        continue;
      const TraceSpan &SI = T.Spans[static_cast<std::size_t>(SpanOf[I])];
      if (SI.T1 > SJ.T0) {
        Diags.add(makeDiag(
            CheckDependenceOrder,
            "task " + std::to_string(J) + " started at " +
                std::to_string(SJ.T0) + " ns before its dependence task " +
                std::to_string(I) + " finished at " + std::to_string(SI.T1) +
                " ns",
            static_cast<int>(J), static_cast<int>(I)));
        break;
      }
    }
  }

  return Diags;
}
