//===- obs/Trace.h - Span tracing and counter registry ----------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution observability layer. PlanStats reports end-of-run totals;
/// the tracer records *how* a schedule executed: one span per plan task,
/// per wavefront, and per recovery rung, plus instant events for ladder
/// descents and fault-injector firings, and a registry of named counters
/// (statement instances, raw loads, batched segments vs scalar fallbacks,
/// modulo wraps, ghost exchanges, bytes moved).
///
/// Recording is designed for the hot path of exec::TaskGraph / ThreadPool
/// workers: each thread owns a private ring buffer (registered lazily
/// through a thread-local pointer), so a span record is two clock reads
/// and a bounded-buffer store — no locks, no allocation after the buffer
/// exists, and a single relaxed atomic load when tracing is disabled.
/// Buffers are drained after the run, on the caller's thread, into a
/// Trace: a time-sorted span list with per-worker counter totals that
/// exports as Chrome `trace_event` JSON (chrome://tracing, Perfetto) or as
/// a compact text summary including per-worker load-imbalance figures.
///
/// The drained trace doubles as a conformance artifact: obs::checkTrace
/// (TraceCheck.h) replays it against an ExecutionPlan's dependence closure
/// to assert the schedule actually respected every dependence edge.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_OBS_TRACE_H
#define LCDFG_OBS_TRACE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lcdfg {
namespace obs {

/// The counter registry. Counters are accumulated per worker thread (no
/// contention) and merged at drain; Trace keeps the per-worker shards so
/// tools can show load imbalance at T>1. Names are stable strings
/// (counterName) documented in docs/OBSERVABILITY.md; tests and CI match
/// on them.
enum class Counter : unsigned {
  PointsExecuted,  ///< exec.points: statement instances executed.
  RawReads,        ///< exec.reads.raw: operand loads performed.
  BytesMoved,      ///< exec.bytes.moved: 8 * (loads + stores).
  TasksExecuted,   ///< exec.tasks: plan tasks run (incl. external).
  ExternalTasks,   ///< exec.tasks.external: opaque callback tasks.
  Wavefronts,      ///< exec.wavefronts: TaskGraph wavefronts dispatched.
  BatchedInstrs,   ///< exec.instrs.batched: instruction executions that
                   ///  went through the row-batched path.
  ScalarInstrs,    ///< exec.instrs.scalar: instruction executions through
                   ///  the scalar interpreter (fallback or --batched=off).
  BatchedSegments, ///< exec.segments.batched: batched kernel invocations.
  ModuloWraps,     ///< exec.modulo.wraps: modulo wrap events (scalar
                   ///  index wraps + batched wrap-countdown expiries).
  GhostExchanges,  ///< rt.ghost.exchanges: exchangeGhosts calls.
  GhostCells,      ///< rt.ghost.cells: ghost cells filled.
  RecoveryRuns,    ///< recovery.attempts: degradation-ladder rung attempts.
  RecoveryDescents,///< recovery.descents: rung descents recorded.
  FaultsFired,     ///< fault.fired: injected faults that fired.
  SchedSteals,     ///< exec.sched.steals: list-scheduler tasks taken from
                   ///  another worker's deque.
  SchedStalls,     ///< exec.sched.stalls: list-scheduler waits with no
                   ///  admissible task anywhere (work-starved or all
                   ///  ready tasks deferred for memory).
  SchedDeferred,   ///< exec.sched.deferred: ready tasks deferred because
                   ///  admitting them would exceed RunOptions::MemBudget.
  SchedPeakLive,   ///< exec.sched.live.peak: high-water mark of live
                   ///  temporary bytes under the list scheduler (recorded
                   ///  once per run, not summed per worker).
  JitCompiled,     ///< exec.jit.compiled: segment kernels compiled by the
                   ///  host compiler (disk-cache misses).
  JitCacheHits,    ///< exec.jit.cache.hits: segment-kernel requests served
                   ///  from the in-memory or on-disk object cache.
  JitFallbacks,    ///< exec.jit.fallbacks: statements that requested JIT
                   ///  specialization but ran the interpreted batched body
                   ///  (no expression form, compiler unavailable, or a
                   ///  compile/load failure).
  ShardExchanges,  ///< rt.shard.exchanges: completed cross-process halo
                   ///  exchange phases (one per worker per step), as
                   ///  reported back to the coordinator.
  ShardBytes,      ///< rt.shard.bytes: halo payload bytes moved over the
                   ///  shard channels (send side).
  ShardRetries,    ///< rt.shard.retries: resend requests issued for late,
                   ///  truncated, or corrupt halo frames.
  ShardTimeouts,   ///< rt.shard.timeouts: exchange deadlines exceeded
                   ///  (terminal E019 events, before recovery).
  ShardPeerLost,   ///< rt.shard.peer_lost: peer processes lost
                   ///  mid-protocol (terminal E018 events).
  ServeRequests,   ///< serve.requests: request lines the daemon accepted
                   ///  for processing (commands and compile+run alike).
  ServeCacheHits,  ///< serve.cache.hits: compile+run requests served from
                   ///  a cached compiled plan.
  ServeCacheMisses,///< serve.cache.misses: compile+run requests that
                   ///  compiled fresh (including cache bypasses and
                   ///  compiles that failed).
  ServeEvictions,  ///< serve.cache.evictions: compiled plans evicted by
                   ///  the LRU policy to admit a new entry.
  ServeErrors,     ///< serve.errors: responses sent with "ok":false
                   ///  (protocol violations, compile errors, exhausted
                   ///  ladders, admission rejections).
  NumCounters
};

inline constexpr std::size_t NumCountersV =
    static_cast<std::size_t>(Counter::NumCounters);

/// Stable printable name of \p C (e.g. "exec.points").
std::string_view counterName(Counter C);

/// What a span covers. Task spans are the substrate of TraceCheck; the
/// rest exist for the human reading the Chrome timeline.
enum class SpanKind : unsigned char {
  Task,      ///< One plan task execution (Task/Instr set).
  Wavefront, ///< One TaskGraph wavefront (A0 = index, A1 = size).
  Rung,      ///< One degradation-ladder rung attempt (A0 = attempt).
  Run,       ///< One whole runPlan invocation.
  Marker,    ///< Instant event (T1 == T0): descent, fault firing.
  Jit,       ///< One JIT host-compiler invocation (src/jit).
  Shard,     ///< One sharded timestep on the coordinator (A0 = step,
             ///  A1 = shard count).
  Exchange   ///< One worker's halo exchange phase, re-timed on the
             ///  coordinator clock from the worker's reported duration
             ///  (A0 = shard rank, A1 = step).
};

/// Printable name of \p K ("task", "wavefront", ...).
std::string_view spanKindName(SpanKind K);

/// One recorded span. Timestamps are nanoseconds since the tracer's
/// enable() epoch; Worker is the recording thread's dense buffer id,
/// assigned at drain time.
struct TraceSpan {
  std::int64_t T0 = 0;
  std::int64_t T1 = 0;
  std::int32_t Worker = -1;
  std::int32_t Label = -1; ///< Intern id into Trace::Labels, or -1.
  std::int32_t Task = -1;  ///< Plan task index, or -1.
  std::int32_t Instr = -1; ///< Plan instruction index, or -1.
  std::int32_t A0 = -1;    ///< Kind-specific argument (see SpanKind).
  std::int32_t A1 = -1;
  SpanKind Kind = SpanKind::Task;
};

/// A drained trace: every surviving span (time-sorted), the label intern
/// table, and the per-worker counter shards.
struct Trace {
  std::vector<TraceSpan> Spans;
  std::vector<std::string> Labels;
  /// One counter array per worker buffer (index = TraceSpan::Worker).
  std::vector<std::array<std::int64_t, NumCountersV>> WorkerCounters;
  /// Spans overwritten by ring wrap-around before the drain. A nonzero
  /// count means the span list is incomplete (TraceCheck refuses it).
  std::int64_t Dropped = 0;

  /// Merged total of \p C over all workers.
  std::int64_t counter(Counter C) const;
  /// Label text for intern id \p Id ("" for -1 / out of range).
  std::string_view label(std::int32_t Id) const;

  /// Compact human-readable rendering: span/drop totals, every non-zero
  /// counter, and a per-worker busy-time table with the max/min imbalance
  /// ratio (the --metrics output).
  std::string summary() const;

  /// Chrome trace_event JSON ("X" duration events on one tid per worker,
  /// "i" instants, "C" counter totals, thread-name metadata). Loadable in
  /// chrome://tracing and Perfetto.
  std::string toChromeJson() const;
};

/// The process-wide tracer. Disabled by default: every record call is a
/// single relaxed atomic load until enable() arms it. The LCDFG_TRACE
/// environment variable arms it at first use and writes the Chrome JSON
/// of everything recorded to the named file at process exit, so any
/// binary in the repo (benches included) is traceable without code
/// changes; LCDFG_TRACE_CAP overrides the per-worker ring capacity.
///
/// Contract: enable(), disable(), and drain() must not race with recording
/// threads — call them between parallel regions (the pool parks its
/// workers between runs, so "after runPlan returned" is always safe).
class Tracer {
public:
  static constexpr std::size_t DefaultCapacity = std::size_t{1} << 15;

  /// The global instance (arms itself from LCDFG_TRACE when set).
  static Tracer &global();

  bool enabled() const;

  /// Starts a fresh trace: resets the epoch, clears buffers and interned
  /// labels, and sets the per-worker ring capacity (spans per thread).
  void enable(std::size_t CapacityPerWorker = DefaultCapacity);

  /// Stops recording (buffers are kept until the next drain/enable).
  void disable();

  /// Collects every worker buffer into a Trace (spans sorted by start
  /// time), then clears the buffers and intern table so a subsequent run
  /// starts clean. The tracer stays enabled.
  Trace drain();

  /// Interns \p S and returns its id (stable until the next drain or
  /// enable). Takes a lock: intern at setup time, not per record.
  std::int32_t intern(std::string_view S);

  /// Nanoseconds since the enable() epoch.
  std::int64_t nowNs() const;

  /// Records \p S into the calling thread's ring buffer (Worker field is
  /// assigned at drain). No-op when disabled.
  void record(const TraceSpan &S);

  /// Records an instant event at now().
  void instant(SpanKind Kind, std::int32_t Label, std::int32_t Task = -1,
               std::int32_t Instr = -1, std::int32_t A0 = -1,
               std::int32_t A1 = -1);

  /// Adds \p V to counter \p C in the calling thread's shard. No-op when
  /// disabled.
  void add(Counter C, std::int64_t V);

  Tracer();
  ~Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

private:
  struct Impl;
  Impl *PImpl;
};

} // namespace obs
} // namespace lcdfg

#endif // LCDFG_OBS_TRACE_H
