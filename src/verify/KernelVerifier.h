//===- verify/KernelVerifier.h - JIT translation validation -----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static translation validation for the JIT kernel path. PlanVerifier
/// re-derives plan-level legality (V codes) and checkTrace audits executed
/// schedules (T codes); this pass closes the remaining rung: the C text
/// jit::Engine would hand the host compiler. It never compiles or runs
/// anything — the emitted address arithmetic (literal strides, constant-
/// divisor stream resolution, wrap countdowns, the MaxSegment cap pass) is
/// executed symbolically and compared against the RowPlan's streams, which
/// are themselves the plan's polyhedral footprint.
///
/// Claims are parsed back out of the emission text, never taken from the
/// descriptor that produced it, so a printer bug and a descriptor bug are
/// equally visible. The truth side is the RowPlan plus the registered
/// KernelExpr trees. Findings use the K-code family of verify::Diagnostics
/// (docs/KERNEL-VERIFY.md is the catalog):
///
///   K000  emission text does not have the expected walker shape
///   K001  a load/store address set differs from the plan footprint
///   K002  `#pragma omp simd` on a segment with a loop-carried dependence
///   K003  `restrict` claimed on a pointer that aliases the write stream
///   K004  fused-walker chunking diverges from the interpreted walker
///   K005  segment cap widened beyond the proven collision distance
///   K006  FP evaluation order reassociated against the registered tree
///   K007  symbolic-execution budget exhausted (walk abandoned)
///
/// Wired three ways: RowPlan::analyze refuses to install any kernel that
/// fails validation (JitRefusal::ValidationRejected, surfaced through the
/// L008 recovery rung), `lcdfg-opt --verify` runs it whenever a JIT engine
/// is selectable, and `lcdfg-lint --jit-static` validates every example
/// config without needing a host compiler present.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_VERIFY_KERNELVERIFIER_H
#define LCDFG_VERIFY_KERNELVERIFIER_H

#include "codegen/Interpreter.h"
#include "exec/RowPlan.h"
#include "verify/Diagnostics.h"

#include <cstdint>
#include <string>

namespace lcdfg {
namespace verify {

/// Options for the kernel verifier.
struct KernelVerifyOptions {
  /// Upper bound on symbolically compared statement-instance accesses per
  /// row kernel. Exceeding it abandons the walk with a K007 warning — the
  /// checks that did run stand, nothing is silently skipped without a
  /// diagnostic.
  std::int64_t Budget = std::int64_t{1} << 20;
  /// Instruction index stamped on diagnostics (-1 when unknown).
  int Instr = -1;
};

/// Validates the emissions jit::Engine would compile for one instruction:
/// per-statement segment kernels and the fused row walker. Holds references
/// only — the instruction, plan and registry must outlive the verifier.
class KernelVerifier {
public:
  KernelVerifier(const exec::NestInstr &Instr, const exec::RowPlan &Plan,
                 const codegen::KernelRegistry &Kernels,
                 KernelVerifyOptions Opts = {});
  KernelVerifier(const exec::NestInstr &&, const exec::RowPlan &,
                 const codegen::KernelRegistry &,
                 KernelVerifyOptions = {}) = delete;
  KernelVerifier(const exec::NestInstr &, const exec::RowPlan &&,
                 const codegen::KernelRegistry &,
                 KernelVerifyOptions = {}) = delete;

  /// Validates statement \p SI's segment-kernel emission \p Text
  /// (printSegmentKernel output): body tree (K006), simd/restrict claims
  /// (K002/K003) and the baked strides against the plan streams (K001).
  /// Appends findings to \p Diags; adds nothing when the emission is
  /// proven faithful.
  void verifySegmentKernel(std::size_t SI, const std::string &Text,
                           Diagnostics &Diags);

  /// Validates the fused row-walker emission \p Text (printRowKernel
  /// output) by symbolically executing its claimed cursor arithmetic over
  /// the full outer iteration space and comparing step for step against
  /// the interpreted walker: cap claims (K005), chunk boundaries (K004),
  /// per-point addresses (K001), plus the per-statement body and alias
  /// checks (K006/K002/K003). Appends findings to \p Diags.
  void verifyRowKernel(const std::string &Text, Diagnostics &Diags);

private:
  const exec::NestInstr &Instr;
  const exec::RowPlan &Plan;
  const codegen::KernelRegistry &Kernels;
  KernelVerifyOptions Opts;
};

/// Runs the full static validation of everything jit::Engine would be
/// asked to compile for \p Plan: for every row-batchable instruction, each
/// statement's segment kernel and — where the instruction has a fused-row
/// form — the row walker. Never constructs an engine and never invokes a
/// host compiler; instructions that stay scalar (or whose kernels have no
/// expression form) contribute nothing, exactly as they would never reach
/// the engine.
Diagnostics verifyPlanKernels(const exec::ExecutionPlan &Plan,
                              const codegen::KernelRegistry &Kernels,
                              const KernelVerifyOptions &Opts = {});

} // namespace verify
} // namespace lcdfg

#endif // LCDFG_VERIFY_KERNELVERIFIER_H
