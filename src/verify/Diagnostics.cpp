//===- verify/Diagnostics.cpp - Verifier diagnostics ----------------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "verify/Diagnostics.h"

#include <sstream>

using namespace lcdfg;
using namespace lcdfg::verify;

const char *verify::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

namespace {

void printPoint(std::ostringstream &OS, const std::vector<std::int64_t> &Pt) {
  OS << "(";
  for (std::size_t I = 0; I < Pt.size(); ++I)
    OS << (I ? "," : "") << Pt[I];
  OS << ")";
}

/// JSON string escaping for the small character set diagnostics contain.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

void jsonPoint(std::ostringstream &OS, const char *Key,
               const std::vector<std::int64_t> &Pt) {
  OS << ",\"" << Key << "\":[";
  for (std::size_t I = 0; I < Pt.size(); ++I)
    OS << (I ? "," : "") << Pt[I];
  OS << "]";
}

} // namespace

std::string Diagnostic::toString() const {
  std::ostringstream OS;
  OS << severityName(Sev) << "[" << CheckId << "]";
  if (Task >= 0)
    OS << " task " << Task;
  if (Instr >= 0)
    OS << " instr " << Instr;
  if (Space >= 0)
    OS << " space " << Space;
  if (!Array.empty())
    OS << " array " << Array;
  OS << ": " << Message;
  if (!Point.empty()) {
    OS << " at ";
    printPoint(OS, Point);
  }
  if (OtherTask >= 0 || OtherInstr >= 0 || !OtherPoint.empty()) {
    OS << "; other";
    if (OtherTask >= 0)
      OS << " task " << OtherTask;
    if (OtherInstr >= 0)
      OS << " instr " << OtherInstr;
    if (!OtherPoint.empty()) {
      OS << " at ";
      printPoint(OS, OtherPoint);
    }
  }
  return OS.str();
}

std::size_t Diagnostics::count(Severity Sev) const {
  std::size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Sev)
      ++N;
  return N;
}

std::string Diagnostics::toString() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.toString() << "\n";
  OS << "verify: " << count(Severity::Error) << " error(s), "
     << count(Severity::Warning) << " warning(s), " << count(Severity::Note)
     << " note(s)\n";
  return OS.str();
}

std::string Diagnostics::toJson() const {
  std::ostringstream OS;
  OS << "{\"diagnostics\":[";
  for (std::size_t I = 0; I < Diags.size(); ++I) {
    const Diagnostic &D = Diags[I];
    OS << (I ? "," : "") << "{\"severity\":\"" << severityName(D.Sev)
       << "\",\"check\":\"" << jsonEscape(D.CheckId) << "\",\"message\":\""
       << jsonEscape(D.Message) << "\"";
    if (D.Task >= 0)
      OS << ",\"task\":" << D.Task;
    if (D.Instr >= 0)
      OS << ",\"instr\":" << D.Instr;
    if (D.OtherTask >= 0)
      OS << ",\"other_task\":" << D.OtherTask;
    if (D.OtherInstr >= 0)
      OS << ",\"other_instr\":" << D.OtherInstr;
    if (D.Space >= 0)
      OS << ",\"space\":" << D.Space;
    if (!D.Array.empty())
      OS << ",\"array\":\"" << jsonEscape(D.Array) << "\"";
    if (!D.Point.empty())
      jsonPoint(OS, "point", D.Point);
    if (!D.OtherPoint.empty())
      jsonPoint(OS, "other_point", D.OtherPoint);
    OS << "}";
  }
  OS << "],\"errors\":" << count(Severity::Error)
     << ",\"warnings\":" << count(Severity::Warning)
     << ",\"notes\":" << count(Severity::Note) << "}";
  return OS.str();
}
