//===- verify/KernelVerifier.cpp - JIT translation validation -------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
//
// The validator has two halves. A fact scanner parses claims back out of the
// emission text itself — strides, modulo sizes, wrap countdowns, restrict
// and simd markers, the cap clamp — so a bug in the printer and a bug in the
// descriptor that fed it are equally visible. A symbolic executor then runs
// the claimed walker against the interpreted one: the truth side computes
// every address from the plan's polyhedral form (Base + dot(outer iters,
// strides) + x * inner stride, wrapped), never from the incremental cursor
// arithmetic it is checking.
//
//===----------------------------------------------------------------------===//

#include "verify/KernelVerifier.h"

#include "codegen/CPrinter.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::verify;

namespace {

/// The emitted walker's "no countdown" sentinel (printRowKernel).
constexpr std::int64_t Never = std::int64_t{1} << 62;

/// Floored modulo into [0, M). Independent re-derivation of the walker's
/// wrap; M must be positive.
std::int64_t wrapIdx(std::int64_t V, std::int64_t M) {
  V %= M;
  return V < 0 ? V + M : V;
}

/// Inner steps from wrapped index \p W until the next wrap with per-step
/// advance \p S != 0 and window \p M.
std::int64_t stepsToWrap(std::int64_t W, std::int64_t S, std::int64_t M) {
  if (S > 0)
    return (M - W + S - 1) / S;
  return W / -S + 1;
}

bool startsAt(const std::string &T, std::size_t P, const std::string &S) {
  return P <= T.size() && T.compare(P, S.size(), S) == 0;
}

/// Parses a decimal (possibly negative) int64 at \p Pos, advancing it.
/// Unsigned accumulation so a hostile 19-digit literal cannot overflow.
bool parseIntAt(const std::string &T, std::size_t &Pos, std::int64_t &Out) {
  std::size_t P = Pos;
  bool Neg = false;
  if (P < T.size() && T[P] == '-') {
    Neg = true;
    ++P;
  }
  std::uint64_t V = 0;
  std::size_t Digits = 0;
  while (P < T.size() && T[P] >= '0' && T[P] <= '9') {
    if (++Digits > 19)
      return false;
    V = V * 10 + static_cast<std::uint64_t>(T[P] - '0');
    ++P;
  }
  if (Digits == 0 ||
      V > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()))
    return false;
  Out = Neg ? -static_cast<std::int64_t>(V) : static_cast<std::int64_t>(V);
  Pos = P;
  return true;
}

/// Finds \p Prefix at or after \p From and parses the integer right behind
/// it. Returns the offset just past the integer, or npos.
std::size_t intAfter(const std::string &T, std::size_t From,
                     const std::string &Prefix, std::int64_t &Out) {
  const std::size_t P = T.find(Prefix, From);
  if (P == std::string::npos)
    return std::string::npos;
  std::size_t Q = P + Prefix.size();
  if (!parseIntAt(T, Q, Out))
    return std::string::npos;
  return Q;
}

/// Claims scanned out of one statement body's right-hand side: operand
/// strides from every "R<j>[I * k]" / "W[I * k]" occurrence, plus the
/// normalized expression text (brackets stripped), which must equal the
/// registered tree's canonical text if no reassociation happened.
struct BodyClaims {
  std::string Normalized;
  std::optional<std::int64_t> CurrentStride;
  std::vector<std::optional<std::int64_t>> ReadStrides;
  bool Consistent = true; ///< One operand never claims two strides.
};

BodyClaims scanBody(const std::string &Rhs, std::size_t Arity) {
  BodyClaims B;
  B.ReadStrides.assign(Arity, std::nullopt);
  auto Note = [&B](std::optional<std::int64_t> &Slot, std::int64_t K) {
    if (Slot && *Slot != K)
      B.Consistent = false;
    Slot = K;
  };
  std::size_t P = 0;
  while (P < Rhs.size()) {
    if (Rhs[P] == 'W' && startsAt(Rhs, P + 1, "[I * ")) {
      std::size_t Q = P + 6;
      std::int64_t K = 0;
      if (parseIntAt(Rhs, Q, K) && Q < Rhs.size() && Rhs[Q] == ']') {
        Note(B.CurrentStride, K);
        B.Normalized += 'W';
        P = Q + 1;
        continue;
      }
    }
    if (Rhs[P] == 'R') {
      std::size_t Q = P + 1;
      std::int64_t J = 0;
      if (parseIntAt(Rhs, Q, J) && startsAt(Rhs, Q, "[I * ")) {
        std::size_t E = Q + 5;
        std::int64_t K = 0;
        if (parseIntAt(Rhs, E, K) && E < Rhs.size() && Rhs[E] == ']') {
          B.Normalized += "R" + std::to_string(J);
          if (J >= 0 && static_cast<std::size_t>(J) < Arity)
            Note(B.ReadStrides[static_cast<std::size_t>(J)], K);
          else
            B.Consistent = false;
          P = E + 1;
          continue;
        }
      }
    }
    B.Normalized += Rhs[P];
    ++P;
  }
  return B;
}

/// Claims parsed from a printSegmentKernel emission.
struct SegmentClaims {
  bool Ok = false;
  std::string Why;
  bool Simd = false;
  bool RestrictW = false;
  std::vector<char> RestrictR;
  std::vector<char> ReadDeclared;
  std::int64_t WriteStride = 0;
  BodyClaims Body;
};

SegmentClaims parseSegmentText(const std::string &T, std::size_t Arity) {
  SegmentClaims C;
  C.RestrictR.assign(Arity, 0);
  C.ReadDeclared.assign(Arity, 0);
  C.Simd = T.find("#pragma omp simd") != std::string::npos;
  C.RestrictW = T.find("double *restrict W") != std::string::npos;
  for (std::size_t J = 0; J < Arity; ++J) {
    const std::string Tail =
        "R" + std::to_string(J) + " = R[" + std::to_string(J) + "];";
    if (T.find("const double *restrict " + Tail) != std::string::npos) {
      C.ReadDeclared[J] = 1;
      C.RestrictR[J] = 1;
    } else if (T.find("const double *" + Tail) != std::string::npos) {
      C.ReadDeclared[J] = 1;
    }
  }
  const std::size_t P = T.find("\n    W[I * ");
  if (P == std::string::npos) {
    C.Why = "no statement body found";
    return C;
  }
  std::size_t Q = P + 11;
  if (!parseIntAt(T, Q, C.WriteStride) || !startsAt(T, Q, "] = ")) {
    C.Why = "unparseable store expression";
    return C;
  }
  Q += 4;
  const std::size_t End = T.find(';', Q);
  if (End == std::string::npos) {
    C.Why = "unterminated statement body";
    return C;
  }
  C.Body = scanBody(T.substr(Q, End - Q), Arity);
  C.Ok = true;
  return C;
}

/// Claims for one cursor of the fused walker: the setup line, the optional
/// setup wrap and countdown declaration, and the advance / wrap-advance
/// lines of the exec pass. The countdown *initialization formula* is the
/// one piece taken on faith (its constants are cross-checked through the
/// setup and wrap lines); docs/KERNEL-VERIFY.md lists it under "assumed".
struct StreamClaims {
  bool HaveSetup = false;
  std::int64_t Flat = 0;
  std::int64_t Lo = 0;
  std::int64_t SetupStride = 0;
  bool SetupWrap = false;
  std::int64_t SetupMod = 0;
  bool Countdown = false;
  bool HaveAdvance = false;
  std::int64_t AdvStride = 0;
  bool WrapAdvance = false;
  std::int64_t WrapMod = 0;
};

/// Claims for one statement of the fused walker.
struct RowStmtClaims {
  bool Emitted = false;
  std::int64_t Lo = 0;
  std::int64_t Hi = -1;
  bool HasMWClamp = false;
  bool Simd = false;
  bool RestrictW = false;
  bool HaveW = false;
  std::int64_t WSpace = -1;
  std::vector<char> RestrictR;
  std::vector<char> ReadDeclared;
  std::vector<std::int64_t> RSpace;
  bool BodyOk = false;
  std::int64_t WLhsStride = 0;
  BodyClaims Body;
  std::vector<StreamClaims> Streams; ///< Write, then reads.
};

struct RowClaims {
  std::int64_t Cap = Never;
  std::vector<RowStmtClaims> Stmts;
};

RowClaims parseRowText(const std::string &T, const exec::RowPlan &Plan) {
  RowClaims C;
  const std::size_t NS = Plan.Stmts.size();
  C.Stmts.resize(NS);

  // The global cap clamp sits at 4-space indent right after the walk
  // header; the per-statement clamps are deeper and compare against X or
  // MW<SI>, so this prefix matches only the cap.
  {
    std::int64_t Cap = 0;
    const std::size_t E = intAfter(T, 0, "\n    if (N > ", Cap);
    if (E != std::string::npos && startsAt(T, E, "LL) N = "))
      C.Cap = Cap;
  }

  for (std::size_t SI = 0; SI < NS; ++SI) {
    RowStmtClaims &SC = C.Stmts[SI];
    const std::size_t NR = Plan.Stmts[SI].Reads.size();
    SC.Streams.resize(1 + NR);
    SC.RestrictR.assign(NR, 0);
    SC.ReadDeclared.assign(NR, 0);
    SC.RSpace.assign(NR, -1);
    const std::string SIs = std::to_string(SI);

    for (std::size_t J = 0; J <= NR; ++J) {
      StreamClaims &S = SC.Streams[J];
      const std::string CurN = "C" + SIs + "_" + std::to_string(J);
      const std::string CntN = "L" + SIs + "_" + std::to_string(J);
      std::int64_t V = 0;
      std::size_t E = intAfter(T, 0, "\n    " + CurN + " = Base[", V);
      if (E != std::string::npos && startsAt(T, E, "] + ")) {
        S.Flat = V;
        std::size_t Q = E + 4;
        if (parseIntAt(T, Q, S.Lo) && startsAt(T, Q, "LL * ")) {
          Q += 5;
          if (parseIntAt(T, Q, S.SetupStride) && startsAt(T, Q, "LL;"))
            S.HaveSetup = true;
        }
      }
      E = intAfter(T, 0, "\n    " + CurN + " %= ", V);
      if (E != std::string::npos && startsAt(T, E, "LL;")) {
        S.SetupWrap = true;
        S.SetupMod = V;
      }
      S.Countdown = T.find("int64_t " + CntN + " = ") != std::string::npos;
      E = intAfter(T, 0, "\n      " + CurN + " += N * ", V);
      if (E != std::string::npos && startsAt(T, E, "LL;")) {
        S.HaveAdvance = true;
        S.AdvStride = V;
      }
      E = intAfter(T, 0, "if ((" + CntN + " -= N) == 0) { " + CurN + " %= ",
                   V);
      if (E != std::string::npos && startsAt(T, E, "LL;")) {
        S.WrapAdvance = true;
        S.WrapMod = V;
      }
    }

    SC.HasMWClamp =
        T.find("if (N > MW" + SIs + ")") != std::string::npos;

    // Exec-pass opener: "if (A<SI> && <lo>LL <= X && X <= <hi>LL) {". The
    // cap-pass opener for the same statement reads "&& X <=" instead, so a
    // literal right after "&& " disambiguates the two.
    const std::string OpenPfx = "    if (A" + SIs + " && ";
    std::size_t Opener = std::string::npos;
    for (std::size_t P = T.find(OpenPfx); P != std::string::npos;
         P = T.find(OpenPfx, P + 1)) {
      std::size_t Q = P + OpenPfx.size();
      std::int64_t Lo = 0, Hi = 0;
      if (!parseIntAt(T, Q, Lo) || !startsAt(T, Q, "LL <= X && X <= "))
        continue;
      Q += 16;
      if (!parseIntAt(T, Q, Hi) || !startsAt(T, Q, "LL) {"))
        continue;
      SC.Lo = Lo;
      SC.Hi = Hi;
      Opener = P;
      break;
    }
    if (Opener == std::string::npos)
      continue;
    SC.Emitted = true;
    std::size_t BlockEnd = T.find("\n    }", Opener);
    if (BlockEnd == std::string::npos)
      BlockEnd = T.size();

    SC.Simd = [&] {
      const std::size_t P = T.find("#pragma omp simd", Opener);
      return P != std::string::npos && P < BlockEnd;
    }();

    // "        double *" matches only the write pointer: the read pointer
    // lines start with "        const".
    std::size_t P = T.find("        double *", Opener);
    if (P != std::string::npos && P < BlockEnd) {
      std::size_t Q = P + 16;
      const bool Rq = startsAt(T, Q, "restrict ");
      if (Rq)
        Q += 9;
      if (startsAt(T, Q, "W = Spaces[")) {
        Q += 11;
        std::int64_t Sp = 0;
        if (parseIntAt(T, Q, Sp) && startsAt(T, Q, "] + C" + SIs + "_0;")) {
          SC.HaveW = true;
          SC.WSpace = Sp;
          SC.RestrictW = Rq;
        }
      }
    }
    for (std::size_t R = 0; R < NR; ++R) {
      const std::string Tail = "R" + std::to_string(R) + " = Spaces[";
      bool Rq = true;
      P = T.find("        const double *restrict " + Tail, Opener);
      if (P == std::string::npos || P >= BlockEnd) {
        Rq = false;
        P = T.find("        const double *" + Tail, Opener);
      }
      if (P == std::string::npos || P >= BlockEnd)
        continue;
      std::size_t Q = T.find("Spaces[", P) + 7;
      std::int64_t Sp = 0;
      if (parseIntAt(T, Q, Sp) &&
          startsAt(T, Q, "] + C" + SIs + "_" + std::to_string(R + 1) + ";")) {
        SC.ReadDeclared[R] = 1;
        SC.RSpace[R] = Sp;
        SC.RestrictR[R] = Rq ? 1 : 0;
      }
    }

    P = T.find("W[I * ", Opener);
    if (P != std::string::npos && P < BlockEnd) {
      std::size_t Q = P + 6;
      if (parseIntAt(T, Q, SC.WLhsStride) && startsAt(T, Q, "] = ")) {
        Q += 4;
        const std::size_t End = T.find(';', Q);
        if (End != std::string::npos && End < BlockEnd) {
          SC.Body = scanBody(T.substr(Q, End - Q), NR);
          SC.BodyOk = true;
        }
      }
    }
  }
  return C;
}

/// Operand streams the registered tree actually loads — the statement's
/// footprint covers only these (plus the write, and the write again when
/// the tree uses current()).
std::vector<char> usedReads(const codegen::KernelExpr &E, std::size_t Arity) {
  std::vector<char> Used(Arity, 0);
  (void)E.render(
      [&Used, Arity](unsigned J) {
        if (J < Arity)
          Used[J] = 1;
        return "R" + std::to_string(J);
      },
      "W");
  return Used;
}

std::string capText(std::int64_t Cap) {
  return Cap >= Never ? std::string("unbounded") : std::to_string(Cap);
}

} // namespace

KernelVerifier::KernelVerifier(const exec::NestInstr &Instr,
                               const exec::RowPlan &Plan,
                               const codegen::KernelRegistry &Kernels,
                               KernelVerifyOptions Opts)
    : Instr(Instr), Plan(Plan), Kernels(Kernels), Opts(Opts) {}

void KernelVerifier::verifySegmentKernel(std::size_t SI,
                                         const std::string &Text,
                                         Diagnostics &Diags) {
  auto Mk = [&](const char *Check, std::string Msg) {
    Diagnostic D;
    D.CheckId = Check;
    D.Message = std::move(Msg);
    D.Instr = Opts.Instr;
    return D;
  };
  if (SI >= Plan.Stmts.size() || SI >= Instr.Stmts.size()) {
    Diags.add(Mk(CheckKernelShape, "segment kernel for statement " +
                                       std::to_string(SI) +
                                       " of a plan without that statement"));
    return;
  }
  const exec::RowStmt &RS = Plan.Stmts[SI];
  const codegen::KernelExpr *E = Kernels.expr(Instr.Stmts[SI].KernelId);
  if (!E) {
    Diags.add(Mk(CheckKernelShape, "statement " + std::to_string(SI) +
                                       " has no registered expression form"));
    return;
  }
  const std::size_t NR = RS.Reads.size();
  const SegmentClaims C = parseSegmentText(Text, NR);
  if (!C.Ok) {
    Diags.add(Mk(CheckKernelShape, "statement " + std::to_string(SI) +
                                       ": " + C.Why));
    return;
  }
  const std::vector<char> Used = usedReads(*E, NR);

  // K006: the emitted body with access brackets stripped must equal the
  // registered tree's canonical text — same parenthesization, same hexfloat
  // constants, same operand order. Anything else reorders FP evaluation.
  if (C.Body.Normalized != E->text()) {
    Diags.add(Mk(CheckKernelFpReassociation,
                 "statement " + std::to_string(SI) + " body `" +
                     C.Body.Normalized + "` is not the registered tree `" +
                     E->text() + "`"));
    return;
  }

  bool AliasAny = false;
  for (const exec::RowStream &R : RS.Reads)
    if (R.Space == RS.Write.Space)
      AliasAny = true;
  if (C.Simd && AliasAny) {
    Diagnostic D = Mk(CheckKernelSimdUnsafe,
                      "statement " + std::to_string(SI) +
                          ": #pragma omp simd on a segment with a read into "
                          "the written space (loop-carried dependence)");
    D.Space = static_cast<int>(RS.Write.Space);
    Diags.add(std::move(D));
    return;
  }
  bool AnyRestrictR = false;
  for (char R : C.RestrictR)
    AnyRestrictR = AnyRestrictR || R;
  if (AliasAny && (C.RestrictW || AnyRestrictR)) {
    Diagnostic D = Mk(CheckKernelRestrictAlias,
                      "statement " + std::to_string(SI) +
                          ": restrict-qualified pointer on a segment whose "
                          "read and write streams share a space");
    D.Space = static_cast<int>(RS.Write.Space);
    Diags.add(std::move(D));
    return;
  }

  // K001: every baked stride against the plan stream it claims to walk.
  // The witness point is I = 1, the first element where a stride error
  // becomes an address error (both sides agree at I = 0 by construction).
  auto Footprint = [&](const std::string &Which, std::int64_t Got,
                       std::int64_t Want, unsigned Space) {
    Diagnostic D = Mk(CheckKernelFootprint,
                      "statement " + std::to_string(SI) + " " + Which +
                          " walks stride " + std::to_string(Got) +
                          ", plan footprint stride " + std::to_string(Want));
    D.Space = static_cast<int>(Space);
    D.Point = {1};
    Diags.add(std::move(D));
  };
  if (!C.Body.Consistent) {
    Diags.add(Mk(CheckKernelFootprint,
                 "statement " + std::to_string(SI) +
                     ": one operand is loaded with two different strides"));
    return;
  }
  if (C.WriteStride != RS.Write.InnerStride) {
    Footprint("store", C.WriteStride, RS.Write.InnerStride, RS.Write.Space);
    return;
  }
  if (C.Body.CurrentStride && *C.Body.CurrentStride != RS.Write.InnerStride) {
    Footprint("current-value load", *C.Body.CurrentStride,
              RS.Write.InnerStride, RS.Write.Space);
    return;
  }
  for (std::size_t J = 0; J < NR; ++J) {
    if (!Used[J])
      continue;
    if (!C.ReadDeclared[J]) {
      Diagnostic D = Mk(CheckKernelFootprint,
                        "statement " + std::to_string(SI) + " read " +
                            std::to_string(J) +
                            " is never bound to its stream");
      D.Space = static_cast<int>(RS.Reads[J].Space);
      Diags.add(std::move(D));
      return;
    }
    if (C.Body.ReadStrides[J] &&
        *C.Body.ReadStrides[J] != RS.Reads[J].InnerStride) {
      Footprint("read " + std::to_string(J), *C.Body.ReadStrides[J],
                RS.Reads[J].InnerStride, RS.Reads[J].Space);
      return;
    }
  }
}

void KernelVerifier::verifyRowKernel(const std::string &Text,
                                     Diagnostics &Diags) {
  auto Mk = [&](const char *Check, std::string Msg) {
    Diagnostic D;
    D.CheckId = Check;
    D.Message = std::move(Msg);
    D.Instr = Opts.Instr;
    return D;
  };
  const std::size_t NS = Plan.Stmts.size();
  if (NS == 0 || NS != Instr.Stmts.size()) {
    Diags.add(Mk(CheckKernelShape,
                 "row kernel for a plan whose statement table does not "
                 "match its instruction"));
    return;
  }
  std::vector<const codegen::KernelExpr *> Exprs(NS, nullptr);
  std::vector<std::vector<char>> Used(NS);
  for (std::size_t SI = 0; SI < NS; ++SI) {
    Exprs[SI] = Kernels.expr(Instr.Stmts[SI].KernelId);
    if (!Exprs[SI]) {
      Diags.add(Mk(CheckKernelShape,
                   "statement " + std::to_string(SI) +
                       " has no registered expression form"));
      return;
    }
    Used[SI] = usedReads(*Exprs[SI], Plan.Stmts[SI].Reads.size());
  }
  const RowClaims C = parseRowText(Text, Plan);

  // Truth arena layout: per statement, write then reads — the Start[]
  // layout RowPlan::run maintains and the emitted Base[] indices must hit.
  std::vector<std::size_t> Start(NS + 1, 0);
  for (std::size_t SI = 0; SI < NS; ++SI)
    Start[SI + 1] = Start[SI] + 1 + Plan.Stmts[SI].Reads.size();
  const std::size_t Total = Start[NS];
  auto StreamOf = [&](std::size_t SI, std::size_t J) -> const exec::RowStream & {
    return J == 0 ? Plan.Stmts[SI].Write : Plan.Stmts[SI].Reads[J - 1];
  };

  // Shape pass: a statement the plan would emit must have parsed fully.
  std::vector<char> ShouldEmit(NS, 0);
  for (std::size_t SI = 0; SI < NS; ++SI) {
    ShouldEmit[SI] = Plan.Stmts[SI].InnerLo <= Plan.Stmts[SI].InnerHi;
    const RowStmtClaims &SC = C.Stmts[SI];
    if (!ShouldEmit[SI] || !SC.Emitted)
      continue;
    bool SetupOk = true;
    for (const StreamClaims &S : SC.Streams)
      SetupOk = SetupOk && S.HaveSetup;
    if (!SC.HaveW || !SC.BodyOk || !SetupOk) {
      Diags.add(Mk(CheckKernelShape,
                   "statement " + std::to_string(SI) +
                       ": emission does not have the expected walker shape"));
      return;
    }
  }

  // K006 per statement.
  for (std::size_t SI = 0; SI < NS; ++SI) {
    const RowStmtClaims &SC = C.Stmts[SI];
    if (!SC.Emitted)
      continue;
    if (SC.Body.Normalized != Exprs[SI]->text()) {
      Diags.add(Mk(CheckKernelFpReassociation,
                   "statement " + std::to_string(SI) + " body `" +
                       SC.Body.Normalized +
                       "` is not the registered tree `" + Exprs[SI]->text() +
                       "`"));
      return;
    }
  }

  // K002/K003 per statement, against the plan's own alias facts.
  for (std::size_t SI = 0; SI < NS; ++SI) {
    const RowStmtClaims &SC = C.Stmts[SI];
    if (!SC.Emitted)
      continue;
    const exec::RowStmt &RS = Plan.Stmts[SI];
    bool AliasAny = false;
    for (const exec::RowStream &R : RS.Reads)
      AliasAny = AliasAny || R.Space == RS.Write.Space;
    if (!AliasAny)
      continue;
    if (SC.Simd) {
      Diagnostic D = Mk(CheckKernelSimdUnsafe,
                        "statement " + std::to_string(SI) +
                            ": #pragma omp simd on a segment with a read "
                            "into the written space (loop-carried "
                            "dependence)");
      D.Space = static_cast<int>(RS.Write.Space);
      Diags.add(std::move(D));
      return;
    }
    bool AnyRestrict = SC.RestrictW;
    for (char R : SC.RestrictR)
      AnyRestrict = AnyRestrict || R;
    if (AnyRestrict) {
      Diagnostic D = Mk(CheckKernelRestrictAlias,
                        "statement " + std::to_string(SI) +
                            ": restrict-qualified pointer on a segment "
                            "whose read and write streams share a space");
      D.Space = static_cast<int>(RS.Write.Space);
      Diags.add(std::move(D));
      return;
    }
  }

  // Constant footprint claims: statement presence, base-arena slots,
  // space-table indices, operand pointer bindings, stride consistency.
  for (std::size_t SI = 0; SI < NS; ++SI) {
    const RowStmtClaims &SC = C.Stmts[SI];
    const exec::RowStmt &RS = Plan.Stmts[SI];
    if (ShouldEmit[SI] && !SC.Emitted) {
      Diagnostic D = Mk(CheckKernelFootprint,
                        "statement " + std::to_string(SI) +
                            " is absent from the emitted walker: its whole "
                            "access set is missing");
      D.Space = static_cast<int>(RS.Write.Space);
      Diags.add(std::move(D));
      return;
    }
    if (!SC.Emitted)
      continue;
    for (std::size_t J = 0; J < SC.Streams.size(); ++J)
      if (SC.Streams[J].Flat !=
          static_cast<std::int64_t>(Start[SI] + J)) {
        Diags.add(Mk(CheckKernelFootprint,
                     "statement " + std::to_string(SI) + " stream " +
                         std::to_string(J) + " reads base-arena slot " +
                         std::to_string(SC.Streams[J].Flat) +
                         "; the caller maintains it at slot " +
                         std::to_string(Start[SI] + J)));
        return;
      }
    if (SC.WSpace != static_cast<std::int64_t>(RS.Write.Space)) {
      Diagnostic D = Mk(CheckKernelFootprint,
                        "statement " + std::to_string(SI) +
                            " writes space " + std::to_string(SC.WSpace) +
                            ", plan footprint is space " +
                            std::to_string(RS.Write.Space));
      D.Space = static_cast<int>(RS.Write.Space);
      Diags.add(std::move(D));
      return;
    }
    if (!SC.Body.Consistent) {
      Diags.add(Mk(CheckKernelFootprint,
                   "statement " + std::to_string(SI) +
                       ": one operand is loaded with two different "
                       "strides"));
      return;
    }
    for (std::size_t J = 0; J < RS.Reads.size(); ++J) {
      if (!Used[SI][J])
        continue;
      if (!SC.ReadDeclared[J]) {
        Diagnostic D = Mk(CheckKernelFootprint,
                          "statement " + std::to_string(SI) + " read " +
                              std::to_string(J) +
                              " is never bound to its stream");
        D.Space = static_cast<int>(RS.Reads[J].Space);
        Diags.add(std::move(D));
        return;
      }
      if (SC.RSpace[J] != static_cast<std::int64_t>(RS.Reads[J].Space)) {
        Diagnostic D = Mk(CheckKernelFootprint,
                          "statement " + std::to_string(SI) + " read " +
                              std::to_string(J) + " loads space " +
                              std::to_string(SC.RSpace[J]) +
                              ", plan footprint is space " +
                              std::to_string(RS.Reads[J].Space));
        D.Space = static_cast<int>(RS.Reads[J].Space);
        Diags.add(std::move(D));
        return;
      }
    }
  }

  // Symbolic walk machinery. Truth addresses always come from the
  // polyhedral form, never from cursor arithmetic.
  const std::size_t OL = Plan.Outer.size();
  std::vector<std::int64_t> Iter(OL, 0);
  auto PolyBase = [&](const exec::RowStream &S) {
    std::int64_t B = S.Base;
    for (std::size_t L = 0; L < OL; ++L)
      B += (Iter[L] - Plan.Outer[L].Lo) * S.OuterStrides[L];
    return B;
  };
  auto PolyAddr = [&](const exec::RowStream &S, std::int64_t X) {
    const std::int64_t A = PolyBase(S) + X * S.InnerStride;
    return S.Modulo ? wrapIdx(A, S.ModSize) : A;
  };

  std::int64_t BudgetLeft = Opts.Budget;
  bool BudgetOut = false;

  /// Runs \p CB once per row of the outer iteration space with the truth
  /// admission mask and the (truth) row bounds the caller would pass in.
  auto ForEachRow =
      [&](const std::function<bool(const std::vector<char> &, std::int64_t,
                                   std::int64_t)> &CB) {
        for (std::size_t L = 0; L < OL; ++L) {
          if (Plan.Outer[L].Lo > Plan.Outer[L].Hi)
            return;
          Iter[L] = Plan.Outer[L].Lo;
        }
        for (;;) {
          std::vector<char> Adm(NS, 0);
          std::int64_t RowLo = 0, RowHi = -1;
          bool Any = false;
          for (std::size_t SI = 0; SI < NS; ++SI) {
            const exec::RowStmt &S = Plan.Stmts[SI];
            if (S.InnerLo > S.InnerHi)
              continue;
            bool Ok = true;
            for (const exec::GuardBound &Gd : S.RowGuards)
              if (Iter[Gd.Level] < Gd.Lo || Iter[Gd.Level] > Gd.Hi) {
                Ok = false;
                break;
              }
            if (!Ok)
              continue;
            Adm[SI] = 1;
            if (!Any || S.InnerLo < RowLo)
              RowLo = S.InnerLo;
            if (!Any || S.InnerHi > RowHi)
              RowHi = S.InnerHi;
            Any = true;
          }
          if (Any && !CB(Adm, RowLo, RowHi))
            return;
          if (OL == 0)
            return;
          std::size_t L = OL;
          for (;;) {
            if (L == 0)
              return;
            --L;
            if (++Iter[L] <= Plan.Outer[L].Hi)
              break;
            Iter[L] = Plan.Outer[L].Lo;
          }
        }
      };

  struct Chunk {
    std::int64_t X = 0;
    std::int64_t N = 0;
    std::uint64_t Active = 0;
  };

  /// The interpreted walker's chunking for one row, re-derived from the
  /// plan streams (RowPlan::run's cap pass with truth constants).
  auto TruthChunksRow = [&](const std::vector<char> &Adm, std::int64_t RowLo,
                            std::int64_t RowHi, std::vector<Chunk> &Out) {
    std::vector<std::int64_t> Cur(Total, 0), Cnt(Total, Never);
    std::vector<std::int64_t> MinW(NS, Never);
    for (std::size_t SI = 0; SI < NS; ++SI) {
      if (!Adm[SI])
        continue;
      const exec::RowStmt &RS = Plan.Stmts[SI];
      for (std::size_t J = 0; J < 1 + RS.Reads.size(); ++J) {
        const exec::RowStream &S = StreamOf(SI, J);
        const std::size_t F = Start[SI] + J;
        Cur[F] = PolyBase(S) + RS.InnerLo * S.InnerStride;
        if (S.Modulo) {
          Cur[F] = wrapIdx(Cur[F], S.ModSize);
          if (S.InnerStride != 0)
            Cnt[F] = stepsToWrap(Cur[F], S.InnerStride, S.ModSize);
        }
        MinW[SI] = std::min(MinW[SI], Cnt[F]);
      }
    }
    std::int64_t X = RowLo;
    while (X <= RowHi) {
      std::int64_t N = std::min(RowHi - X + 1, Plan.MaxSegment);
      for (std::size_t SI = 0; SI < NS; ++SI) {
        const exec::RowStmt &S = Plan.Stmts[SI];
        if (!Adm[SI] || S.InnerHi < X)
          continue;
        if (S.InnerLo > X) {
          N = std::min(N, S.InnerLo - X);
          continue;
        }
        N = std::min(N, std::min(S.InnerHi - X + 1, MinW[SI]));
      }
      if (N <= 0)
        return; // Unreachable for a well-formed plan; stay finite.
      Chunk Ck;
      Ck.X = X;
      Ck.N = N;
      for (std::size_t SI = 0; SI < NS; ++SI) {
        const exec::RowStmt &S = Plan.Stmts[SI];
        if (!Adm[SI] || S.InnerLo > X || S.InnerHi < X)
          continue;
        Ck.Active |= std::uint64_t{1} << SI;
        for (std::size_t J = 0; J < 1 + S.Reads.size(); ++J) {
          const exec::RowStream &St = StreamOf(SI, J);
          const std::size_t F = Start[SI] + J;
          Cur[F] += N * St.InnerStride;
          if (Cnt[F] != Never && (Cnt[F] -= N) == 0) {
            Cur[F] = wrapIdx(Cur[F], St.ModSize);
            Cnt[F] = stepsToWrap(Cur[F], St.InnerStride, St.ModSize);
          }
        }
        MinW[SI] = Never;
        for (std::size_t J = 0; J < 1 + S.Reads.size(); ++J)
          MinW[SI] = std::min(MinW[SI], Cnt[Start[SI] + J]);
      }
      Out.push_back(Ck);
      X += N;
    }
  };

  /// The claimed walker for one row, built purely from the parsed text
  /// facts. \p CB sees each chunk with the cursor arena as of its start;
  /// returning false stops the row. Returns false when the claimed walker
  /// would stop making progress (N <= 0).
  auto ClaimedWalk =
      [&](const std::vector<char> &Adm, std::int64_t RowLo, std::int64_t RowHi,
          const std::function<bool(const Chunk &,
                                   const std::vector<std::int64_t> &)> &CB) {
        std::vector<std::int64_t> Cur(Total, 0), Cnt(Total, Never);
        std::vector<std::int64_t> MinW(NS, Never);
        for (std::size_t SI = 0; SI < NS; ++SI) {
          const RowStmtClaims &SC = C.Stmts[SI];
          if (!Adm[SI] || !SC.Emitted)
            continue;
          for (std::size_t J = 0; J < SC.Streams.size(); ++J) {
            const StreamClaims &S = SC.Streams[J];
            const std::size_t F = Start[SI] + J;
            // Flat indices were verified against Start[] above, so the
            // arena value the emitted code reads is this stream's
            // polyhedral row base.
            Cur[F] = PolyBase(StreamOf(SI, J)) + S.Lo * S.SetupStride;
            if (S.SetupWrap && S.SetupMod > 0)
              Cur[F] = wrapIdx(Cur[F], S.SetupMod);
            if (S.Countdown) {
              const std::int64_t M =
                  S.SetupWrap ? S.SetupMod : (S.WrapAdvance ? S.WrapMod : 0);
              if (M > 0 && S.SetupStride != 0)
                Cnt[F] = stepsToWrap(Cur[F], S.SetupStride, M);
              MinW[SI] = std::min(MinW[SI], Cnt[F]);
            }
          }
        }
        std::int64_t X = RowLo;
        while (X <= RowHi) {
          std::int64_t N = RowHi - X + 1;
          if (C.Cap < Never && N > C.Cap)
            N = C.Cap;
          for (std::size_t SI = 0; SI < NS; ++SI) {
            const RowStmtClaims &SC = C.Stmts[SI];
            if (!Adm[SI] || !SC.Emitted || SC.Hi < X)
              continue;
            if (SC.Lo > X) {
              N = std::min(N, SC.Lo - X);
              continue;
            }
            N = std::min(N, SC.Hi - X + 1);
            if (SC.HasMWClamp)
              N = std::min(N, MinW[SI]);
          }
          if (N <= 0)
            return false;
          Chunk Ck;
          Ck.X = X;
          Ck.N = N;
          for (std::size_t SI = 0; SI < NS; ++SI) {
            const RowStmtClaims &SC = C.Stmts[SI];
            if (Adm[SI] && SC.Emitted && SC.Lo <= X && X <= SC.Hi)
              Ck.Active |= std::uint64_t{1} << SI;
          }
          if (!CB(Ck, Cur))
            return true;
          for (std::size_t SI = 0; SI < NS; ++SI) {
            if (!(Ck.Active >> SI & 1))
              continue;
            const RowStmtClaims &SC = C.Stmts[SI];
            for (std::size_t J = 0; J < SC.Streams.size(); ++J) {
              const StreamClaims &S = SC.Streams[J];
              const std::size_t F = Start[SI] + J;
              if (S.HaveAdvance)
                Cur[F] += N * S.AdvStride;
              if (S.Countdown && Cnt[F] != Never && (Cnt[F] -= N) == 0) {
                const std::int64_t M =
                    S.WrapAdvance ? S.WrapMod : S.SetupMod;
                const std::int64_t St =
                    S.HaveAdvance ? S.AdvStride : S.SetupStride;
                if (M > 0) {
                  Cur[F] = wrapIdx(Cur[F], M);
                  Cnt[F] = St != 0 ? stepsToWrap(Cur[F], St, M) : Never;
                }
              }
            }
            MinW[SI] = Never;
            for (std::size_t J = 0; J < SC.Streams.size(); ++J)
              if (SC.Streams[J].Countdown)
                MinW[SI] = std::min(MinW[SI], Cnt[Start[SI] + J]);
          }
          X += N;
        }
        return true;
      };

  auto Witness = [&](std::int64_t X) {
    std::vector<std::int64_t> P(Iter.begin(), Iter.end());
    P.push_back(X);
    return P;
  };

  // K005: the cap clamp is the one claim whose safety rests on the plan's
  // collision-distance proof; a wider clamp voids that proof outright. The
  // walk below would also notice (as chunk divergence), but the root cause
  // is the cap, so report it as such — with a concrete reordered pair as
  // witness when one exists at this size.
  const std::int64_t TruthCap =
      Plan.MaxSegment < Never ? Plan.MaxSegment : Never;
  if (C.Cap > TruthCap) {
    Diagnostic D =
        Mk(CheckKernelCapWidened,
           "segment cap " + capText(C.Cap) +
               " exceeds the proven collision distance " + capText(TruthCap));
    bool Found = false;
    ForEachRow([&](const std::vector<char> &Adm, std::int64_t RowLo,
                   std::int64_t RowHi) {
      if (--BudgetLeft <= 0)
        return false;
      ClaimedWalk(Adm, RowLo, RowHi, [&](const Chunk &Ck,
                                         const std::vector<std::int64_t> &) {
        for (std::size_t I = 0; I < NS && !Found; ++I) {
          if (!(Ck.Active >> I & 1))
            continue;
          for (std::size_t J = I + 1; J < NS && !Found; ++J) {
            if (!(Ck.Active >> J & 1))
              continue;
            // Stream pairs with a write involved, as in the plan's own
            // collision proof: running statement I's whole chunk before
            // statement J reorders J's access at x1 before I's at x2 for
            // every x1 < x2 within the chunk.
            const exec::RowStmt &A = Plan.Stmts[I];
            const exec::RowStmt &B = Plan.Stmts[J];
            std::vector<std::pair<const exec::RowStream *,
                                  const exec::RowStream *>> Pairs;
            Pairs.emplace_back(&A.Write, &B.Write);
            for (const exec::RowStream &R : B.Reads)
              Pairs.emplace_back(&A.Write, &R);
            for (const exec::RowStream &R : A.Reads)
              Pairs.emplace_back(&R, &B.Write);
            for (const auto &[U, V] : Pairs) {
              if (U->Space != V->Space)
                continue;
              for (std::int64_t X2 = Ck.X + 1;
                   X2 < Ck.X + Ck.N && !Found; ++X2)
                for (std::int64_t X1 = Ck.X; X1 < X2; ++X1) {
                  if (--BudgetLeft <= 0)
                    return false;
                  if (PolyAddr(*V, X1) == PolyAddr(*U, X2)) {
                    D.Point = Witness(X1);
                    D.OtherPoint = Witness(X2);
                    D.Space = static_cast<int>(U->Space);
                    D.Message += "; the widened chunk reorders statement " +
                                 std::to_string(J) + " at x=" +
                                 std::to_string(X1) +
                                 " before statement " + std::to_string(I) +
                                 " at x=" + std::to_string(X2) +
                                 " on a shared location";
                    Found = true;
                    break;
                  }
                }
              if (Found)
                break;
            }
          }
        }
        return !Found && BudgetLeft > 0;
      });
      return !Found && BudgetLeft > 0;
    });
    Diags.add(std::move(D));
    return;
  }

  // K004 + K001: walk every row; chunk sequences must match step for step,
  // and within matching chunks every active statement's addresses must hit
  // the polyhedral footprint. Within one chunk both sides are linear in
  // the element index (the truth walk splits at every wrap), so checking
  // offsets {0, 1, N-1} covers the whole chunk. The first divergence stops
  // the walk — one root cause, one diagnostic.
  bool Stopped = false;
  ForEachRow([&](const std::vector<char> &Adm, std::int64_t RowLo,
                 std::int64_t RowHi) {
    if (--BudgetLeft <= 0) {
      BudgetOut = true;
      return false;
    }
    std::vector<Chunk> TC;
    TruthChunksRow(Adm, RowLo, RowHi, TC);
    std::size_t Idx = 0;
    const bool Progress = ClaimedWalk(
        Adm, RowLo, RowHi,
        [&](const Chunk &Ck, const std::vector<std::int64_t> &Cur) {
          if (Idx >= TC.size() || TC[Idx].X != Ck.X || TC[Idx].N != Ck.N ||
              TC[Idx].Active != Ck.Active) {
            Diagnostic D =
                Mk(CheckKernelChunkDivergence,
                   Idx < TC.size()
                       ? "emitted walker runs a segment of " +
                             std::to_string(Ck.N) + " step(s) at x=" +
                             std::to_string(Ck.X) +
                             "; the interpreted walker splits after " +
                             std::to_string(TC[Idx].N) +
                             " (wrap boundary or activation bound)"
                       : "emitted walker runs a segment at x=" +
                             std::to_string(Ck.X) +
                             " past the interpreted walker's last split");
            D.Point = Witness(Ck.X);
            Diags.add(std::move(D));
            Stopped = true;
            return false;
          }
          ++Idx;
          for (std::size_t SI = 0; SI < NS && !Stopped; ++SI) {
            if (!(Ck.Active >> SI & 1))
              continue;
            const RowStmtClaims &SC = C.Stmts[SI];
            const exec::RowStmt &RS = Plan.Stmts[SI];
            const std::int64_t Offs[3] = {0, 1, Ck.N - 1};
            for (std::size_t JJ = 0; JJ < 1 + RS.Reads.size() && !Stopped;
                 ++JJ) {
              std::int64_t Stride = 0;
              std::string Which;
              if (JJ == 0) {
                Stride = SC.WLhsStride;
                Which = "store";
              } else {
                if (!Used[SI][JJ - 1] || !SC.Body.ReadStrides[JJ - 1])
                  continue;
                Stride = *SC.Body.ReadStrides[JJ - 1];
                Which = "read " + std::to_string(JJ - 1);
              }
              const exec::RowStream &S = StreamOf(SI, JJ);
              for (std::int64_t I : Offs) {
                if (I < 0 || I >= Ck.N)
                  continue;
                if (--BudgetLeft <= 0) {
                  BudgetOut = true;
                  return false;
                }
                const std::int64_t Got = Cur[Start[SI] + JJ] + I * Stride;
                const std::int64_t Want = PolyAddr(S, Ck.X + I);
                if (Got != Want) {
                  Diagnostic D =
                      Mk(CheckKernelFootprint,
                         "statement " + std::to_string(SI) + " " + Which +
                             " hits linear index " + std::to_string(Got) +
                             ", plan footprint is " + std::to_string(Want));
                  D.Space = static_cast<int>(S.Space);
                  D.Point = Witness(Ck.X + I);
                  Diags.add(std::move(D));
                  Stopped = true;
                  break;
                }
              }
            }
          }
          return !Stopped;
        });
    if (!Progress) {
      Diagnostic D = Mk(CheckKernelChunkDivergence,
                        "emitted walker stops making progress (a segment "
                        "clamps to zero length)");
      D.Point = std::vector<std::int64_t>(Iter.begin(), Iter.end());
      Diags.add(std::move(D));
      Stopped = true;
    }
    return !Stopped && !BudgetOut;
  });

  if (BudgetOut && !Stopped) {
    Diagnostic D = Mk(CheckKernelBudget,
                      "symbolic walk abandoned after " +
                          std::to_string(Opts.Budget) +
                          " comparisons; checks completed so far stand");
    D.Sev = Severity::Warning;
    Diags.add(std::move(D));
  }
}

Diagnostics verify::verifyPlanKernels(const exec::ExecutionPlan &Plan,
                                      const codegen::KernelRegistry &Kernels,
                                      const KernelVerifyOptions &Opts) {
  Diagnostics Diags;
  for (std::size_t II = 0; II < Plan.Instrs.size(); ++II) {
    const exec::NestInstr &I = Plan.Instrs[II];
    const exec::RowAnalysis RA = exec::RowPlan::analyze(I, Kernels, nullptr);
    if (!RA.Plan)
      continue; // Scalar path: the engine is never asked.
    KernelVerifyOptions O = Opts;
    O.Instr = static_cast<int>(II);
    KernelVerifier V(I, *RA.Plan, Kernels, O);
    for (std::size_t SI = 0; SI < RA.Plan->Stmts.size(); ++SI) {
      const codegen::KernelExpr *E = Kernels.expr(I.Stmts[SI].KernelId);
      if (!E ||
          E->maxRead() >= static_cast<int>(RA.Plan->Stmts[SI].Reads.size()))
        continue; // No expression form: stays on the interpreted body.
      const codegen::SegmentKernelSig Sig = exec::rowSegmentSig(*RA.Plan, SI);
      V.verifySegmentKernel(
          SI, codegen::printSegmentKernel(*E, Sig, "lcdfg_static_check"),
          Diags);
    }
    if (const auto Desc = exec::rowKernelDesc(*RA.Plan, I, Kernels))
      V.verifyRowKernel(codegen::printRowKernel(*Desc, "lcdfg_static_row"),
                        Diags);
  }
  return Diags;
}
