//===- verify/PlanVerifier.cpp - Static legality verifier -----------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "verify/PlanVerifier.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <tuple>

using namespace lcdfg;
using namespace lcdfg::verify;
using exec::ExecutionPlan;
using exec::GuardBound;
using exec::LoopLevel;
using exec::NestInstr;
using exec::RowPlan;
using exec::StmtRecord;
using exec::Stream;

namespace {

/// Floored modulo into [0, M).
std::int64_t wrap(std::int64_t V, std::int64_t M) {
  V %= M;
  return V < 0 ? V + M : V;
}

/// Floored division (consistent with wrap): the modulo epoch of a pre-wrap
/// index. Two accesses of one stream fall into one wrap-free run of the
/// row walker exactly when their epochs match.
std::int64_t floorDiv(std::int64_t V, std::int64_t M) {
  std::int64_t Q = V / M;
  return (V % M != 0 && (V < 0) != (M < 0)) ? Q - 1 : Q;
}

/// Pre-wrap linear index of stream \p S at iteration point \p Pt.
std::int64_t preOf(const Stream &S, const std::vector<std::int64_t> &Pt) {
  std::int64_t P = S.Base;
  std::size_t N = std::min(Pt.size(), S.LevelStrides.size());
  for (std::size_t L = 0; L < N; ++L)
    P += Pt[L] * S.LevelStrides[L];
  return P;
}

/// Storage location (wrapped index) for pre-wrap index \p Pre.
std::int64_t locOf(const Stream &S, std::int64_t Pre) {
  return S.Modulo ? wrap(Pre, S.ModSize) : Pre;
}

bool admits(const StmtRecord &R, const std::vector<std::int64_t> &Pt) {
  for (const GuardBound &G : R.Guards)
    if (Pt[G.Level] < G.Lo || Pt[G.Level] > G.Hi)
      return false;
  return true;
}

/// One enumerated access, passed to the walk callback. Point and stream
/// pointers are only valid during the callback.
struct AccessInfo {
  int Task = -1;
  int Instr = -1;
  std::size_t Stmt = 0;
  bool IsWrite = false;
  const Stream *S = nullptr;
  std::int64_t Pre = 0;
  std::int64_t Loc = 0;
  std::int64_t Pos = 0; ///< Serial access position (stable across walks).
  const std::vector<std::int64_t> *Point = nullptr;
};

enum class WalkEnd { Done, Stopped, OutOfBudget };

/// Enumerates every access of \p TaskIds in executed order: tasks in the
/// given order, loop points lexicographically, statements in record
/// order, reads (in record order) before the write. The callback returns
/// false to stop early. Budget is charged per statement instance; the
/// position counter is deterministic, so repeated walks over the same
/// task list agree on positions.
template <typename Fn>
WalkEnd walkAccesses(const ExecutionPlan &Plan, const std::vector<int> &TaskIds,
                     std::int64_t &Budget, Fn &&Callback) {
  std::int64_t Pos = 0;
  for (int T : TaskIds) {
    int InstrIdx = Plan.Tasks[static_cast<std::size_t>(T)].Instr;
    const NestInstr &I = Plan.Instrs[static_cast<std::size_t>(InstrIdx)];
    if (I.External)
      continue;
    std::vector<std::int64_t> Pt;
    Pt.reserve(I.Loops.size());
    bool Empty = false;
    for (const LoopLevel &L : I.Loops) {
      if (L.Lo > L.Hi) {
        Empty = true;
        break;
      }
      Pt.push_back(L.Lo);
    }
    if (Empty)
      continue;
    for (;;) {
      for (std::size_t SI = 0; SI < I.Stmts.size(); ++SI) {
        const StmtRecord &R = I.Stmts[SI];
        if (!admits(R, Pt))
          continue;
        if (--Budget < 0)
          return WalkEnd::OutOfBudget;
        AccessInfo A;
        A.Task = T;
        A.Instr = InstrIdx;
        A.Stmt = SI;
        A.Point = &Pt;
        for (const Stream &Rd : R.Reads) {
          A.IsWrite = false;
          A.S = &Rd;
          A.Pre = preOf(Rd, Pt);
          A.Loc = locOf(Rd, A.Pre);
          A.Pos = Pos++;
          if (!Callback(A))
            return WalkEnd::Stopped;
        }
        A.IsWrite = true;
        A.S = &R.Write;
        A.Pre = preOf(R.Write, Pt);
        A.Loc = locOf(R.Write, A.Pre);
        A.Pos = Pos++;
        if (!Callback(A))
          return WalkEnd::Stopped;
      }
      std::size_t L = I.Loops.size();
      bool Carried = false;
      while (L > 0) {
        --L;
        if (++Pt[L] <= I.Loops[L].Hi) {
          Carried = true;
          break;
        }
        Pt[L] = I.Loops[L].Lo;
      }
      if (!Carried)
        break;
    }
  }
  return WalkEnd::Done;
}

/// Identity of the value an access touches: (space, array, pre-wrap
/// index). The space is redundant when ArrayId is resolved (an array
/// lives in one space) but keeps hand-built plans with unset ArrayId from
/// conflating values across spaces.
using ValueId = std::tuple<unsigned, int, std::int64_t>;

ValueId idOf(const AccessInfo &A) {
  return ValueId{A.S->Space, A.S->ArrayId, A.Pre};
}

std::vector<int> allTasks(const ExecutionPlan &Plan) {
  std::vector<int> Ids(Plan.Tasks.size());
  std::iota(Ids.begin(), Ids.end(), 0);
  return Ids;
}

void addBudgetDiag(Diagnostics &Diags, const char *Family) {
  Diagnostic D;
  D.Sev = Severity::Warning;
  D.CheckId = CheckTraceBudget;
  D.Message = std::string("enumeration budget exceeded; ") + Family +
              " checks skipped (re-run with a smaller problem size or a "
              "larger budget)";
  Diags.add(std::move(D));
}

bool isPersistent(const ExecutionPlan &Plan, unsigned Space) {
  return Space < Plan.SpacePersistent.size() && Plan.SpacePersistent[Space];
}

std::string arrayName(const ExecutionPlan &Plan, int ArrayId) {
  if (ArrayId >= 0 &&
      static_cast<std::size_t>(ArrayId) < Plan.ArrayNames.size())
    return Plan.ArrayNames[static_cast<std::size_t>(ArrayId)];
  return {};
}

/// Resolves witness positions back to (task, instr, point) by replaying
/// the same deterministic walk.
struct Witness {
  int Task = -1;
  int Instr = -1;
  std::vector<std::int64_t> Point;
};

std::map<std::int64_t, Witness> decodePositions(const ExecutionPlan &Plan,
                                                const std::vector<int> &Tasks,
                                                std::int64_t Budget,
                                                const std::set<std::int64_t>
                                                    &Wanted) {
  std::map<std::int64_t, Witness> Got;
  if (Wanted.empty())
    return Got;
  walkAccesses(Plan, Tasks, Budget, [&](const AccessInfo &A) {
    if (Wanted.count(A.Pos))
      Got.emplace(A.Pos, Witness{A.Task, A.Instr, *A.Point});
    return Got.size() < Wanted.size();
  });
  return Got;
}

} // namespace

Diagnostics PlanVerifier::verify() {
  Diagnostics Diags;
  for (std::size_t I = 0; I < Plan.Instrs.size(); ++I)
    if (Plan.Instrs[I].External) {
      Diagnostic D;
      D.Sev = Severity::Note;
      D.CheckId = CheckOpaqueExternal;
      D.Message = "plan contains external (opaque callback) tasks; their "
                  "footprints cannot be checked statically";
      D.Instr = static_cast<int>(I);
      Diags.add(std::move(D));
      break;
    }
  checkSerialDataflow(Diags);
  checkTaskRaces(Diags);
  checkRowBatching(Diags);
  checkTilePrivatization(Diags);
  return Diags;
}

void PlanVerifier::checkSerialDataflow(Diagnostics &Diags) {
  const std::vector<int> Tasks = allTasks(Plan);

  // Pass 0: per value identity, the first write and last read position
  // along the serial order.
  std::map<ValueId, std::int64_t> FirstWrite, LastRead;
  std::int64_t Budget = Opts.Budget;
  WalkEnd End = walkAccesses(Plan, Tasks, Budget, [&](const AccessInfo &A) {
    if (A.IsWrite)
      FirstWrite.emplace(idOf(A), A.Pos);
    else
      LastRead[idOf(A)] = A.Pos; // Positions ascend; the last write wins.
    return true;
  });
  if (End == WalkEnd::OutOfBudget) {
    addBudgetDiag(Diags, "serial dataflow");
    return;
  }

  // Pass 1: simulate the content of every storage location and compare
  // each read against the value identity it must observe. One diagnostic
  // per (check, space) — a bad window floods every element of the space.
  struct Content {
    int ArrayId = -1;
    std::int64_t Pre = 0;
    std::int64_t Pos = 0;
  };
  std::map<std::pair<unsigned, std::int64_t>, Content> Mem;
  struct PendingDiag {
    Diagnostic D;
    std::int64_t PosA = -1, PosB = -1;
  };
  std::vector<PendingDiag> Pending;
  std::set<std::pair<std::string, unsigned>> Reported;

  auto report = [&](const char *Check, const AccessInfo &A,
                    std::int64_t OtherPos, std::string Message) {
    if (!Reported.emplace(Check, A.S->Space).second)
      return;
    PendingDiag P;
    P.D.Sev = Severity::Error;
    P.D.CheckId = Check;
    P.D.Message = std::move(Message);
    P.D.Task = A.Task;
    P.D.Instr = A.Instr;
    P.D.Space = static_cast<int>(A.S->Space);
    P.D.Array = arrayName(Plan, A.S->ArrayId);
    P.PosA = A.Pos;
    P.PosB = OtherPos;
    Pending.push_back(std::move(P));
  };

  Budget = Opts.Budget;
  walkAccesses(Plan, Tasks, Budget, [&](const AccessInfo &A) {
    auto MemKey = std::make_pair(A.S->Space, A.Loc);
    auto MIt = Mem.find(MemKey);
    if (A.IsWrite) {
      if (MIt != Mem.end() && (MIt->second.ArrayId != A.S->ArrayId ||
                               MIt->second.Pre != A.Pre)) {
        ValueId Old{A.S->Space, MIt->second.ArrayId, MIt->second.Pre};
        auto LR = LastRead.find(Old);
        if (LR != LastRead.end() && LR->second > A.Pos) {
          std::ostringstream OS;
          OS << "write of " << arrayName(Plan, A.S->ArrayId)
             << " overwrites a live value of "
             << arrayName(Plan, MIt->second.ArrayId)
             << " still read later: modulo window (mod " << A.S->ModSize
             << ") is smaller than the true reuse distance";
          report(CheckStorageClobber, A, LR->second, OS.str());
        }
      }
      Mem[MemKey] = Content{A.S->ArrayId, A.Pre, A.Pos};
      return true;
    }
    // Read.
    ValueId Id = idOf(A);
    if (MIt != Mem.end()) {
      if (MIt->second.ArrayId == A.S->ArrayId && MIt->second.Pre == A.Pre)
        return true;
      auto FW = FirstWrite.find(Id);
      if (FW != FirstWrite.end() && FW->second < A.Pos) {
        report(CheckStorageClobber, A, MIt->second.Pos,
               "read observes a clobbered location: the expected value was "
               "overwritten before this use (modulo window too small)");
      } else {
        report(CheckLostDependence, A,
               FW != FirstWrite.end() ? FW->second : MIt->second.Pos,
               "read observes a foreign value; the value it depends on is " +
                   std::string(FW != FirstWrite.end()
                                   ? "produced only later in the executed "
                                     "order (lost producer dependence)"
                                   : "never produced by the plan"));
      }
      return true;
    }
    // Location never written so far. Persistent spaces hold
    // caller-initialized arrays (chain inputs, ghost cells): reading them
    // before any plan write is the normal input pattern.
    if (isPersistent(Plan, A.S->Space))
      return true;
    auto FW = FirstWrite.find(Id);
    if (FW != FirstWrite.end() && FW->second > A.Pos)
      report(CheckLostDependence, A, FW->second,
             "read before write: the producing statement executes only "
             "later in the executed order (lost producer dependence)");
    else if (FW == FirstWrite.end())
      report(CheckLostDependence, A, -1,
             "read of a temporary value the plan never produces");
    return true;
  });

  // Resolve witness positions to iteration points and emit.
  std::set<std::int64_t> Wanted;
  for (const PendingDiag &P : Pending) {
    Wanted.insert(P.PosA);
    if (P.PosB >= 0)
      Wanted.insert(P.PosB);
  }
  std::map<std::int64_t, Witness> Points =
      decodePositions(Plan, Tasks, Opts.Budget, Wanted);
  for (PendingDiag &P : Pending) {
    auto AIt = Points.find(P.PosA);
    if (AIt != Points.end())
      P.D.Point = AIt->second.Point;
    if (P.PosB >= 0) {
      auto BIt = Points.find(P.PosB);
      if (BIt != Points.end()) {
        P.D.OtherTask = BIt->second.Task;
        P.D.OtherInstr = BIt->second.Instr;
        P.D.OtherPoint = BIt->second.Point;
      }
    }
    Diags.add(std::move(P.D));
  }
}

void PlanVerifier::checkTaskRaces(Diagnostics &Diags) {
  if (Plan.Tasks.size() < 2)
    return;

  // Element-granular footprints per task per space. Wrapped locations are
  // what two concurrent tasks would actually contend on.
  struct Footprint {
    std::map<unsigned, std::set<std::int64_t>> Reads, Writes;
  };
  std::vector<Footprint> Foot(Plan.Tasks.size());
  std::int64_t Budget = Opts.Budget;
  WalkEnd End =
      walkAccesses(Plan, allTasks(Plan), Budget, [&](const AccessInfo &A) {
        Footprint &F = Foot[static_cast<std::size_t>(A.Task)];
        (A.IsWrite ? F.Writes : F.Reads)[A.S->Space].insert(A.Loc);
        return true;
      });
  if (End == WalkEnd::OutOfBudget) {
    addBudgetDiag(Diags, "task race");
    return;
  }

  auto tileOf = [&](std::size_t T) {
    return Plan.Instrs[static_cast<std::size_t>(Plan.Tasks[T].Instr)].Tile;
  };
  auto externalOf = [&](std::size_t T) {
    return static_cast<bool>(
        Plan.Instrs[static_cast<std::size_t>(Plan.Tasks[T].Instr)].External);
  };

  const std::vector<std::vector<bool>> Closure = Plan.dependenceClosure();

  // First shared location of two per-space sets, or nullopt.
  auto firstShared =
      [](const std::set<std::int64_t> &A,
         const std::set<std::int64_t> &B) -> std::optional<std::int64_t> {
    auto AIt = A.begin(), BIt = B.begin();
    while (AIt != A.end() && BIt != B.end()) {
      if (*AIt == *BIt)
        return *AIt;
      if (*AIt < *BIt)
        ++AIt;
      else
        ++BIt;
    }
    return std::nullopt;
  };

  for (std::size_t I = 0; I < Plan.Tasks.size(); ++I) {
    for (std::size_t J = I + 1; J < Plan.Tasks.size(); ++J) {
      if (externalOf(I) || externalOf(J))
        continue; // No footprints; V000 already noted.
      if (Closure[J][I] || Closure[I][J])
        continue; // Ordered by (transitive) task dependences.
      // Consecutive tasks of one tile run in order on one worker under
      // tile parallelism; the grouping is the implicit ordering.
      bool SameTile =
          Plan.TileParallel && tileOf(I) >= 0 && tileOf(I) == tileOf(J);
      if (SameTile)
        continue;
      std::optional<std::int64_t> Shared;
      unsigned Space = 0;
      for (const auto &[S, WI] : Foot[I].Writes) {
        // Tile-parallel workers privatize non-persistent spaces: no
        // sharing between different tiles.
        if (Plan.TileParallel && tileOf(I) != tileOf(J) &&
            !isPersistent(Plan, S))
          continue;
        auto WJ = Foot[J].Writes.find(S);
        if (WJ != Foot[J].Writes.end())
          Shared = firstShared(WI, WJ->second);
        if (!Shared) {
          auto RJ = Foot[J].Reads.find(S);
          if (RJ != Foot[J].Reads.end())
            Shared = firstShared(WI, RJ->second);
        }
        if (Shared) {
          Space = S;
          break;
        }
      }
      if (!Shared) {
        for (const auto &[S, WJ] : Foot[J].Writes) {
          if (Plan.TileParallel && tileOf(I) != tileOf(J) &&
              !isPersistent(Plan, S))
            continue;
          auto RI = Foot[I].Reads.find(S);
          if (RI != Foot[I].Reads.end())
            Shared = firstShared(RI->second, WJ);
          if (Shared) {
            Space = S;
            break;
          }
        }
      }
      if (!Shared)
        continue;

      // Witness: the first access of each task touching the location.
      Diagnostic D;
      D.Sev = Severity::Error;
      D.CheckId = CheckTaskRace;
      D.Task = static_cast<int>(I);
      D.Instr = Plan.Tasks[I].Instr;
      D.OtherTask = static_cast<int>(J);
      D.OtherInstr = Plan.Tasks[J].Instr;
      D.Space = static_cast<int>(Space);
      {
        std::ostringstream OS;
        OS << "tasks " << I << " and " << J
           << " touch the same element (a write involved) but no "
              "dependence path orders them";
        D.Message = OS.str();
      }
      for (int Side = 0; Side < 2; ++Side) {
        std::vector<int> One{static_cast<int>(Side == 0 ? I : J)};
        std::int64_t B = Opts.Budget;
        walkAccesses(Plan, One, B, [&](const AccessInfo &A) {
          if (A.S->Space != Space || A.Loc != *Shared)
            return true;
          if (Side == 0) {
            D.Point = *A.Point;
            D.Array = arrayName(Plan, A.S->ArrayId);
          } else {
            D.OtherPoint = *A.Point;
          }
          return false;
        });
      }
      Diags.add(std::move(D));
      break; // One race per earlier task keeps the report readable.
    }
  }
}

namespace {

/// A collision found by the brute-force segment-reorder search: running
/// statement StmtI fully before StmtJ within one segment moves StmtJ's
/// access at inner position X1 ahead of StmtI's access at X2 = X1 + K,
/// and both touch the same storage element.
struct Collision {
  std::int64_t K = 0;
  unsigned Space = 0;
  int ArrayId = -1;
  std::size_t StmtI = 0, StmtJ = 0;
  std::vector<std::int64_t> PointI, PointJ;
};

/// Exhaustively searches \p Instr's rows for the smallest-distance
/// collision with K in [1, KMax]. Mirrors the row walker's segment
/// semantics: a pair only shares a segment when neither participating
/// stream crosses a modulo wrap boundary between X1 and X2.
std::optional<Collision> findCollision(const NestInstr &Instr,
                                       std::int64_t KMax, std::int64_t &Budget,
                                       bool &OutOfBudget) {
  OutOfBudget = false;
  if (Instr.Stmts.size() < 2 || Instr.Loops.empty() || KMax < 1)
    return std::nullopt;
  const std::size_t Inner = Instr.Loops.size() - 1;

  struct StmtInfo {
    std::vector<GuardBound> RowGuards;
    std::int64_t Lo = 0, Hi = -1;
    std::vector<std::pair<const Stream *, bool>> Accs; ///< (stream, write).
  };
  std::vector<StmtInfo> Infos;
  for (const StmtRecord &S : Instr.Stmts) {
    StmtInfo SI;
    SI.Lo = Instr.Loops[Inner].Lo;
    SI.Hi = Instr.Loops[Inner].Hi;
    for (const GuardBound &G : S.Guards) {
      if (G.Level == Inner) {
        SI.Lo = std::max(SI.Lo, G.Lo);
        SI.Hi = std::min(SI.Hi, G.Hi);
      } else {
        SI.RowGuards.push_back(G);
      }
    }
    for (const Stream &R : S.Reads)
      SI.Accs.emplace_back(&R, false);
    SI.Accs.emplace_back(&S.Write, true);
    Infos.push_back(std::move(SI));
  }

  std::vector<std::int64_t> Pt(Instr.Loops.size(), 0);
  for (std::size_t L = 0; L < Inner; ++L) {
    if (Instr.Loops[L].Lo > Instr.Loops[L].Hi)
      return std::nullopt;
    Pt[L] = Instr.Loops[L].Lo;
  }

  // Epoch-stable same-location test for one access pair at (X1, X2).
  auto collides = [&](const Stream &SA, std::int64_t X2, const Stream &SB,
                      std::int64_t X1) {
    if (SA.Space != SB.Space)
      return false;
    auto PreAt = [&](const Stream &S, std::int64_t X) {
      Pt[Inner] = X;
      return preOf(S, Pt);
    };
    std::int64_t PreA = PreAt(SA, X2);
    std::int64_t PreB = PreAt(SB, X1);
    if (locOf(SA, PreA) != locOf(SB, PreB))
      return false;
    if (SA.Modulo &&
        floorDiv(PreAt(SA, X1), SA.ModSize) != floorDiv(PreA, SA.ModSize))
      return false;
    if (SB.Modulo &&
        floorDiv(PreB, SB.ModSize) != floorDiv(PreAt(SB, X2), SB.ModSize))
      return false;
    return true;
  };

  std::optional<Collision> Best;
  for (;;) {
    std::vector<char> Admitted(Infos.size(), 1);
    for (std::size_t SI = 0; SI < Infos.size(); ++SI) {
      if (Infos[SI].Lo > Infos[SI].Hi)
        Admitted[SI] = 0;
      for (const GuardBound &G : Infos[SI].RowGuards)
        if (Pt[G.Level] < G.Lo || Pt[G.Level] > G.Hi)
          Admitted[SI] = 0;
    }
    for (std::size_t SI = 0; SI + 1 < Infos.size(); ++SI) {
      if (!Admitted[SI])
        continue;
      for (std::size_t SJ = SI + 1; SJ < Infos.size(); ++SJ) {
        if (!Admitted[SJ])
          continue;
        std::int64_t Cap = Best ? Best->K - 1 : KMax;
        for (std::int64_t K = 1; K <= Cap; ++K) {
          std::int64_t Lo = std::max(Infos[SJ].Lo, Infos[SI].Lo - K);
          std::int64_t Hi = std::min(Infos[SJ].Hi, Infos[SI].Hi - K);
          for (std::int64_t X1 = Lo; X1 <= Hi; ++X1) {
            for (const auto &[SA, WA] : Infos[SI].Accs) {
              for (const auto &[SB, WB] : Infos[SJ].Accs) {
                if (!WA && !WB)
                  continue;
                if (--Budget < 0) {
                  OutOfBudget = true;
                  return Best;
                }
                if (!collides(*SA, X1 + K, *SB, X1))
                  continue;
                Collision C;
                C.K = K;
                C.Space = SA->Space;
                C.ArrayId = WA ? SA->ArrayId : SB->ArrayId;
                C.StmtI = SI;
                C.StmtJ = SJ;
                Pt[Inner] = X1 + K;
                C.PointI = Pt;
                Pt[Inner] = X1;
                C.PointJ = Pt;
                Best = std::move(C);
                goto nextPair; // Smaller K only; Cap shrinks next pair.
              }
            }
          }
        }
      nextPair:;
      }
    }
    // Outer odometer.
    std::size_t L = Inner;
    bool Carried = false;
    while (L > 0) {
      --L;
      if (++Pt[L] <= Instr.Loops[L].Hi) {
        Carried = true;
        break;
      }
      Pt[L] = Instr.Loops[L].Lo;
    }
    if (!Carried)
      break;
  }
  return Best;
}

} // namespace

void PlanVerifier::checkRowBatching(Diagnostics &Diags) {
  if (!Opts.Kernels && !Opts.Rows)
    return;
  std::int64_t Budget = Opts.Budget;
  for (std::size_t II = 0; II < Plan.Instrs.size(); ++II) {
    const NestInstr &Instr = Plan.Instrs[II];
    if (Instr.External || Instr.Loops.empty() || Instr.Stmts.size() < 2)
      continue;

    std::int64_t MaxSegment = -1;
    exec::RowRefusal Refusal = exec::RowRefusal::None;
    if (Opts.Rows && II < Opts.Rows->size() && (*Opts.Rows)[II])
      MaxSegment = (*Opts.Rows)[II]->MaxSegment;
    else if (Opts.Kernels) {
      exec::RowAnalysis RA = RowPlan::analyze(Instr, *Opts.Kernels);
      if (RA.Plan)
        MaxSegment = RA.Plan->MaxSegment;
      else
        Refusal = RA.Refusal;
    } else {
      continue;
    }

    const std::size_t Inner = Instr.Loops.size() - 1;
    const std::int64_t RowSpan =
        Instr.Loops[Inner].Hi - Instr.Loops[Inner].Lo;
    bool OutOfBudget = false;
    if (MaxSegment > 1) {
      // A segment of length MaxSegment reorders pairs at distances up to
      // MaxSegment - 1; any collision in that range is unsafe.
      std::int64_t KMax = std::min(MaxSegment - 1, RowSpan);
      std::optional<Collision> C =
          findCollision(Instr, KMax, Budget, OutOfBudget);
      if (C) {
        Diagnostic D;
        D.Sev = Severity::Error;
        D.CheckId = CheckSegmentCap;
        D.Instr = static_cast<int>(II);
        D.Space = static_cast<int>(C->Space);
        D.Array = arrayName(Plan, C->ArrayId);
        std::ostringstream OS;
        OS << "segment cap " << MaxSegment
           << " admits an observable reorder: statements " << C->StmtI
           << " and " << C->StmtJ << " collide at inner distance " << C->K;
        D.Message = OS.str();
        D.Point = C->PointI;
        D.OtherPoint = C->PointJ;
        Diags.add(std::move(D));
      }
    } else if (Refusal == exec::RowRefusal::UnsafeInterleave) {
      // The compiler fell back to scalar because no cap > 1 was provable
      // pairwise; if no distance-1 collision exists, a cap of 2 was safe.
      std::optional<Collision> C =
          findCollision(Instr, /*KMax=*/1, Budget, OutOfBudget);
      if (!C && !OutOfBudget && RowSpan >= 1) {
        Diagnostic D;
        D.Sev = Severity::Warning;
        D.CheckId = CheckScalarFallback;
        D.Instr = static_cast<int>(II);
        D.Message = "instruction fell back to scalar execution, but no "
                    "distance-1 collision exists at this size: a segment "
                    "cap of at least 2 was provable";
        Diags.add(std::move(D));
      }
    }
    if (OutOfBudget) {
      addBudgetDiag(Diags, "row batching");
      return;
    }
  }
}

void PlanVerifier::checkTilePrivatization(Diagnostics &Diags) {
  if (!Plan.TileParallel)
    return;
  std::int64_t Budget = Opts.Budget;
  std::set<unsigned> Reported;
  std::size_t T0 = 0;
  while (T0 < Plan.Tasks.size()) {
    int Tile =
        Plan.Instrs[static_cast<std::size_t>(Plan.Tasks[T0].Instr)].Tile;
    std::size_t T1 = T0 + 1;
    while (T1 < Plan.Tasks.size() &&
           Plan.Instrs[static_cast<std::size_t>(Plan.Tasks[T1].Instr)].Tile ==
               Tile)
      ++T1;
    if (Tile >= 0) {
      // Each tile's workers see fresh privatized copies of non-persistent
      // spaces: every temporary value read must be produced tile-locally.
      std::vector<int> Group;
      for (std::size_t T = T0; T < T1; ++T)
        Group.push_back(static_cast<int>(T));
      std::set<std::pair<unsigned, std::int64_t>> Written;
      WalkEnd End =
          walkAccesses(Plan, Group, Budget, [&](const AccessInfo &A) {
            if (isPersistent(Plan, A.S->Space))
              return true;
            auto Key = std::make_pair(A.S->Space, A.Loc);
            if (A.IsWrite) {
              Written.insert(Key);
              return true;
            }
            if (!Written.count(Key) &&
                Reported.insert(A.S->Space).second) {
              Diagnostic D;
              D.Sev = Severity::Error;
              D.CheckId = CheckPrivateUncovered;
              D.Task = A.Task;
              D.Instr = A.Instr;
              D.Space = static_cast<int>(A.S->Space);
              D.Array = arrayName(Plan, A.S->ArrayId);
              std::ostringstream OS;
              OS << "tile " << Tile
                 << " reads a privatized temporary it never computed; "
                    "under tile parallelism this observes a zero-filled "
                    "private copy";
              D.Message = OS.str();
              D.Point = *A.Point;
              Diags.add(std::move(D));
            }
            return true;
          });
      if (End == WalkEnd::OutOfBudget) {
        addBudgetDiag(Diags, "tile privatization");
        return;
      }
    }
    T0 = T1;
  }
}

void verify::checkGraphSchedule(const graph::Graph &G, Diagnostics &Diags) {
  const std::vector<graph::DataflowEdge> Edges = G.dataflowEdges();
  const std::vector<graph::NodeId> Order = G.scheduleOrder();
  std::map<graph::NodeId, std::size_t> PosOf;
  for (std::size_t I = 0; I < Order.size(); ++I)
    PosOf.emplace(Order[I], I);
  std::set<std::pair<unsigned, unsigned>> Reported;
  for (const graph::DataflowEdge &E : Edges) {
    if (E.SameNode)
      continue; // Internal to a fused node; ordered by shifts, which the
                // plan-level simulation checks.
    graph::NodeId P = G.stmtOfNest(E.ProducerNest);
    graph::NodeId C = G.stmtOfNest(E.ConsumerNest);
    if (!Reported.emplace(E.ProducerNest, E.ConsumerNest).second)
      continue;
    Diagnostic D;
    D.Sev = Severity::Error;
    D.CheckId = CheckLostDependence;
    D.Array = E.Array;
    if (P == graph::InvalidNode || C == graph::InvalidNode) {
      std::ostringstream OS;
      OS << "dataflow edge " << E.Array << " (nest " << E.ProducerNest
         << " -> nest " << E.ConsumerNest
         << ") lost: a statement node no longer contains the nest";
      D.Message = OS.str();
      Diags.add(std::move(D));
      continue;
    }
    if (PosOf.at(P) > PosOf.at(C)) {
      std::ostringstream OS;
      OS << "schedule reverses dataflow edge " << E.Array << ": producer '"
         << G.stmt(P).Label << "' is scheduled after consumer '"
         << G.stmt(C).Label << "'";
      D.Message = OS.str();
      Diags.add(std::move(D));
    }
  }
}
