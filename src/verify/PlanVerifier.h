//===- verify/PlanVerifier.h - Static legality verifier ---------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent static legality checker for lowered execution plans. The
/// transform pipeline derives fusion shifts, reuse-distance buffer windows,
/// task dependences, and batching caps — and then asserts its own results.
/// The verifier re-derives everything from the plan's polyhedral footprints
/// alone (loop bounds, guards, access streams, the (ArrayId, pre-wrap
/// index) value identities) and certifies, or rejects with a concrete
/// iteration-point witness, four invariant families:
///
///  * serial dataflow (V001/V004): a deterministic enumeration of every
///    access in executed order simulates the content of each storage
///    location; a read observing a foreign value exposes an under-sized
///    modulo window (storage clobber) or a lost producer→consumer
///    dependence (e.g. a corrupted fusion shift);
///  * static races (V002): any two tasks with intersecting element
///    footprints (a write involved) must be ordered by the transitive
///    dependence closure, unless the runner orders them implicitly
///    (same-tile grouping) or privatizes the space (tile-parallel
///    temporaries);
///  * batching safety (V003/V005): an exhaustive collision-distance search
///    over each instruction's rows audits the RowPlan's MaxSegment cap,
///    and flags scalar fallbacks whose cap was provable;
///  * tile privatization (V006): under tile parallelism every tile must
///    compute each privatized temporary value before reading it.
///
/// Checks are budgeted: plans too large to enumerate get a V007 warning
/// instead of a silent pass. External (opaque callback) tasks cannot be
/// footprinted and are reported once as a V000 note.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_VERIFY_PLANVERIFIER_H
#define LCDFG_VERIFY_PLANVERIFIER_H

#include "exec/RowPlan.h"
#include "graph/Graph.h"
#include "verify/Diagnostics.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace lcdfg {
namespace verify {

/// Knobs for one verification run.
struct VerifyOptions {
  /// Kernel registry used to re-run the row-batching analysis. The
  /// batching checks are skipped when neither this nor \p Rows is set.
  const codegen::KernelRegistry *Kernels = nullptr;
  /// Per-instruction row-plan override (index = instruction id). Engaged
  /// entries are audited in place of RowPlan::analyze — the mutation tests
  /// use this to feed the verifier a tampered MaxSegment.
  const std::vector<std::optional<exec::RowPlan>> *Rows = nullptr;
  /// Upper bound on enumerated statement instances / collision probes per
  /// check family. Exceeding it abandons the family with a V007 warning.
  std::int64_t Budget = std::int64_t{1} << 22;
};

/// The verifier. Holds only references; cheap to construct per plan.
class PlanVerifier {
public:
  explicit PlanVerifier(const exec::ExecutionPlan &ThePlan,
                        VerifyOptions TheOpts = {})
      : Plan(ThePlan), Opts(TheOpts) {}
  /// The verifier keeps a reference to the plan; a temporary would dangle
  /// before verify() runs.
  explicit PlanVerifier(exec::ExecutionPlan &&, VerifyOptions = {}) = delete;

  /// Runs every check family and returns the findings.
  Diagnostics verify();

  /// V001 storage clobbers + V004 lost dependences, by simulating storage
  /// content over the serial execution order.
  void checkSerialDataflow(Diagnostics &Diags);
  /// V002 races: conflicting task pairs not ordered by the dependence
  /// closure.
  void checkTaskRaces(Diagnostics &Diags);
  /// V003 over-long segment caps + V005 provable-but-missed batching.
  void checkRowBatching(Diagnostics &Diags);
  /// V006 tile-parallel reads of privatized values the tile never wrote.
  void checkTilePrivatization(Diagnostics &Diags);

private:
  const exec::ExecutionPlan &Plan;
  VerifyOptions Opts;
};

/// Schedule-legality check at the M2DFG level (V004): every nest-level
/// producer→consumer dependence of the chain must be preserved by the
/// (possibly fused / rescheduled) graph \p G — same fused node, or the
/// producer's node scheduled before the consumer's node.
void checkGraphSchedule(const graph::Graph &G, Diagnostics &Diags);

} // namespace verify
} // namespace lcdfg

#endif // LCDFG_VERIFY_PLANVERIFIER_H
