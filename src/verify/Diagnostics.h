//===- verify/Diagnostics.h - Verifier diagnostics --------------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic records produced by the static legality verifier. Every
/// finding carries a stable check id (the Vnnn codes below), a severity,
/// the plan location it anchors to (task / instruction / storage space /
/// value array), and up to two concrete iteration points as witness. The
/// collection renders either as human-readable lines or as JSON for CI.
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_VERIFY_DIAGNOSTICS_H
#define LCDFG_VERIFY_DIAGNOSTICS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lcdfg {
namespace verify {

/// Stable check identifiers. Documented in docs/VERIFY.md; tests and CI
/// match on these strings, so they never change meaning.
inline constexpr const char *CheckOpaqueExternal = "V000-opaque-external";
inline constexpr const char *CheckStorageClobber = "V001-storage-clobber";
inline constexpr const char *CheckTaskRace = "V002-task-race";
inline constexpr const char *CheckSegmentCap = "V003-segment-cap";
inline constexpr const char *CheckLostDependence = "V004-lost-dependence";
inline constexpr const char *CheckScalarFallback = "V005-scalar-fallback";
inline constexpr const char *CheckPrivateUncovered = "V006-private-uncovered";
inline constexpr const char *CheckTraceBudget = "V007-trace-budget";

/// K-code family: the JIT translation validator (verify/KernelVerifier.h).
/// Same stability contract as the V codes; docs/KERNEL-VERIFY.md is the
/// catalog.
inline constexpr const char *CheckKernelShape = "K000-emission-shape";
inline constexpr const char *CheckKernelFootprint = "K001-footprint-mismatch";
inline constexpr const char *CheckKernelSimdUnsafe = "K002-simd-unsafe";
inline constexpr const char *CheckKernelRestrictAlias = "K003-restrict-alias";
inline constexpr const char *CheckKernelChunkDivergence =
    "K004-chunk-divergence";
inline constexpr const char *CheckKernelCapWidened = "K005-cap-widened";
inline constexpr const char *CheckKernelFpReassociation =
    "K006-fp-reassociation";
inline constexpr const char *CheckKernelBudget = "K007-kernel-budget";

enum class Severity { Note, Warning, Error };

/// Name of \p Sev as printed ("note", "warning", "error").
const char *severityName(Severity Sev);

/// One verifier finding.
struct Diagnostic {
  Severity Sev = Severity::Error;
  std::string CheckId;
  std::string Message;
  int Task = -1;       ///< Plan task index, or -1.
  int Instr = -1;      ///< Plan instruction index, or -1.
  int OtherTask = -1;  ///< Second task involved (races), or -1.
  int OtherInstr = -1; ///< Second instruction involved, or -1.
  int Space = -1;      ///< Storage space id, or -1.
  std::string Array;   ///< Value array name, when known.
  std::vector<std::int64_t> Point;      ///< Witness iteration point.
  std::vector<std::int64_t> OtherPoint; ///< Second witness point.

  /// One-line rendering: "error[V001-storage-clobber] task 2 ...".
  std::string toString() const;
};

/// Ordered collection of findings with severity accounting.
class Diagnostics {
public:
  void add(Diagnostic D) { Diags.push_back(std::move(D)); }

  const std::vector<Diagnostic> &all() const { return Diags; }
  std::size_t count(Severity Sev) const;
  bool hasErrors() const { return count(Severity::Error) != 0; }

  /// All findings, one line each, plus a trailing summary line.
  std::string toString() const;
  /// JSON object: {"diagnostics":[...],"errors":N,"warnings":N,"notes":N}.
  std::string toJson() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace verify
} // namespace lcdfg

#endif // LCDFG_VERIFY_DIAGNOSTICS_H
