//===- tests/support/ErrorsTest.cpp ---------------------------------------===//

#include "support/Errors.h"

#include <gtest/gtest.h>

using namespace lcdfg;

TEST(Errors, ReportFatalErrorAborts) {
  EXPECT_DEATH(reportFatalError("boom goes the dynamite"),
               "lcdfg fatal error: boom goes the dynamite");
}

TEST(Errors, UnreachableCarriesLocation) {
  EXPECT_DEATH(LCDFG_UNREACHABLE("should not happen"),
               "unreachable at .*ErrorsTest.cpp.*should not happen");
}
