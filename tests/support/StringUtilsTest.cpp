//===- tests/support/StringUtilsTest.cpp ----------------------------------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace lcdfg;

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(StringUtils, Split) {
  auto Parts = split("a, b ,c", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("a,,c", ',')[1], "");
}

TEST(StringUtils, SplitTopLevelRespectsNesting) {
  auto Parts = splitTopLevel("(x,y),(x+1,y)", ',');
  ASSERT_EQ(Parts.size(), 2u);
  EXPECT_EQ(Parts[0], "(x,y)");
  EXPECT_EQ(Parts[1], "(x+1,y)");

  Parts = splitTopLevel("f{a,b}, c, (d,e)", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "f{a,b}");
  EXPECT_EQ(Parts[1], "c");
  EXPECT_EQ(Parts[2], "(d,e)");
}

TEST(StringUtils, SplitTopLevelDropsEmpty) {
  EXPECT_TRUE(splitTopLevel("", ',').empty());
  EXPECT_EQ(splitTopLevel("a,,b", ',').size(), 2u);
}

TEST(StringUtils, ConsumePrefix) {
  std::string_view S = "  #pragma omplc for domain(...)";
  EXPECT_TRUE(consumePrefix(S, "#pragma omplc"));
  EXPECT_EQ(trim(S), "for domain(...)");
  std::string_view T = "nothing";
  EXPECT_FALSE(consumePrefix(T, "#pragma"));
  EXPECT_EQ(T, "nothing");
}
