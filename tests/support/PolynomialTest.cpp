//===- tests/support/PolynomialTest.cpp -----------------------------------===//

#include "support/Polynomial.h"

#include <gtest/gtest.h>

using lcdfg::Polynomial;

TEST(Polynomial, ZeroAndConstants) {
  Polynomial Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_TRUE(Zero.isConstant());
  EXPECT_EQ(Zero.toString(), "0");
  EXPECT_EQ(Zero.evaluate(17), 0);

  Polynomial Five(5);
  EXPECT_FALSE(Five.isZero());
  EXPECT_TRUE(Five.isConstant());
  EXPECT_EQ(Five.toString(), "5");
  EXPECT_EQ(Five.evaluate(100), 5);
}

TEST(Polynomial, TermConstruction) {
  Polynomial P = Polynomial::term(3, 2);
  EXPECT_EQ(P.degree(), 2u);
  EXPECT_EQ(P.coeff(2), 3);
  EXPECT_EQ(P.coeff(1), 0);
  EXPECT_EQ(P.toString(), "3N^2");
  EXPECT_TRUE(Polynomial::term(0, 5).isZero());
}

TEST(Polynomial, PaperLabels) {
  // The value-node labels of Figure 3.
  Polynomial N = Polynomial::symbol();
  Polynomial InputSize = N * N + Polynomial(4) * N;
  EXPECT_EQ(InputSize.toString(), "N^2+4N");
  Polynomial FaceSize = N * N + N;
  EXPECT_EQ(FaceSize.toString(), "N^2+N");
  Polynomial SeriesTotal = Polynomial(8) * InputSize +
                           Polynomial(22) * FaceSize;
  EXPECT_EQ(SeriesTotal.toString(), "30N^2+54N");
  EXPECT_EQ(SeriesTotal.evaluate(16), 30 * 256 + 54 * 16);
}

TEST(Polynomial, Arithmetic) {
  Polynomial N = Polynomial::symbol();
  Polynomial A = N * N - N + Polynomial(1);
  Polynomial B = N + Polynomial(1);
  EXPECT_EQ((A * B).toString(), "N^3+1");
  EXPECT_EQ((A - A).toString(), "0");
  EXPECT_EQ((A + (-A)).toString(), "0");

  Polynomial C = A;
  C += B;
  EXPECT_EQ(C.toString(), "N^2+2");
  C -= B;
  EXPECT_EQ(C, A);
  C *= Polynomial(2);
  EXPECT_EQ(C.toString(), "2N^2-2N+2");
}

TEST(Polynomial, CancellationTrims) {
  Polynomial N = Polynomial::symbol();
  Polynomial P = N * N + N;
  Polynomial Q = N * N;
  EXPECT_EQ((P - Q).degree(), 1u);
  EXPECT_EQ((P - Q).toString(), "N");
}

TEST(Polynomial, EvaluateHorner) {
  Polynomial N = Polynomial::symbol();
  Polynomial P = Polynomial(2) * N * N * N - Polynomial(7) * N +
                 Polynomial(3);
  for (std::int64_t V : {-3, 0, 1, 16, 128})
    EXPECT_EQ(P.evaluate(V), 2 * V * V * V - 7 * V + 3);
}

TEST(Polynomial, AsymptoticComparison) {
  Polynomial N = Polynomial::symbol();
  Polynomial Small = Polynomial(100) * N;
  Polynomial Large = N * N;
  EXPECT_TRUE(Small.asymptoticallyLess(Large));
  EXPECT_FALSE(Large.asymptoticallyLess(Small));
  EXPECT_FALSE(Large.asymptoticallyLess(Large));
  EXPECT_EQ(Polynomial::asymptoticMax(Small, Large), Large);
  EXPECT_EQ(Polynomial::asymptoticMax(Large, Small), Large);
}

TEST(Polynomial, ToStringSigns) {
  Polynomial N = Polynomial::symbol();
  EXPECT_EQ((-N).toString(), "-N");
  EXPECT_EQ((N - Polynomial(1)).toString(), "N-1");
  EXPECT_EQ((Polynomial(-2) * N * N - N + Polynomial(7)).toString(),
            "-2N^2-N+7");
  EXPECT_EQ(N.toString("T"), "T");
}

class PolynomialRingProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PolynomialRingProperty, DistributivityAndCommutativity) {
  auto [I, J] = GetParam();
  Polynomial N = Polynomial::symbol();
  Polynomial A = Polynomial(I) * N * N + Polynomial(J) * N + Polynomial(1);
  Polynomial B = Polynomial(J) * N - Polynomial(I);
  Polynomial C = N + Polynomial(I * J);
  EXPECT_EQ(A * (B + C), A * B + A * C);
  EXPECT_EQ(A * B, B * A);
  EXPECT_EQ(A + B, B + A);
  // Evaluation is a ring homomorphism.
  for (std::int64_t V : {1, 4, 9}) {
    EXPECT_EQ((A * B).evaluate(V), A.evaluate(V) * B.evaluate(V));
    EXPECT_EQ((A + B).evaluate(V), A.evaluate(V) + B.evaluate(V));
  }
}

INSTANTIATE_TEST_SUITE_P(Coefficients, PolynomialRingProperty,
                         ::testing::Combine(::testing::Values(-3, -1, 0, 2,
                                                              5),
                                            ::testing::Values(-2, 0, 1, 7)));
