//===- tests/support/StatusTest.cpp ---------------------------------------===//
//
// The recoverable-error vocabulary: stable E0xx code strings, context
// chaining, JSON rendering, Expected round trips, and the StatusError /
// tryInvoke module-boundary adapter everything above support/ leans on.
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace lcdfg;
using namespace lcdfg::support;

TEST(Status, OkIsOkAndPrintsOk) {
  Status S = Status::ok();
  EXPECT_TRUE(S.isOk());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.code(), ErrorCode::None);
  EXPECT_EQ(S.toString(), "ok");
  // Context frames on success are dropped: there is nothing to explain.
  S.withContext("while doing nothing");
  EXPECT_TRUE(S.contexts().empty());
}

TEST(Status, ErrorCodesHaveStableNames) {
  // Tests and CI match on these strings; renaming one is a breaking
  // change that must be reflected in docs/ROBUSTNESS.md.
  EXPECT_EQ(errorCodeName(ErrorCode::Parse), "E001-parse");
  EXPECT_EQ(errorCodeName(ErrorCode::InvalidChain), "E002-invalid-chain");
  EXPECT_EQ(errorCodeName(ErrorCode::UnknownArray), "E003-unknown-array");
  EXPECT_EQ(errorCodeName(ErrorCode::GraphInvalid), "E004-graph-invalid");
  EXPECT_EQ(errorCodeName(ErrorCode::IllegalTransform),
            "E005-illegal-transform");
  EXPECT_EQ(errorCodeName(ErrorCode::TilingInvalid), "E006-tiling-invalid");
  EXPECT_EQ(errorCodeName(ErrorCode::StorageInvalid), "E007-storage-invalid");
  EXPECT_EQ(errorCodeName(ErrorCode::PlanInvalid), "E008-plan-invalid");
  EXPECT_EQ(errorCodeName(ErrorCode::KernelMissing), "E009-kernel-missing");
  EXPECT_EQ(errorCodeName(ErrorCode::DependenceCycle),
            "E010-dependence-cycle");
  EXPECT_EQ(errorCodeName(ErrorCode::VerifierRejected),
            "E011-verifier-rejected");
  EXPECT_EQ(errorCodeName(ErrorCode::FaultInjected), "E012-fault-injected");
  EXPECT_EQ(errorCodeName(ErrorCode::GuardTripped), "E013-guard-tripped");
  EXPECT_EQ(errorCodeName(ErrorCode::Exhausted), "E014-exhausted");
  EXPECT_EQ(errorCodeName(ErrorCode::Internal), "E015-internal");
}

TEST(Status, ContextChainRendersInnermostFirst) {
  Status S = Status::error(ErrorCode::StorageInvalid, "array without extent")
                 .withContext("building storage plan")
                 .withContext("compiling fig1:original");
  EXPECT_FALSE(S.isOk());
  EXPECT_EQ(S.toString(), "E007-storage-invalid: array without extent "
                          "(while building storage plan) "
                          "(while compiling fig1:original)");
}

TEST(Status, JsonCarriesCodeMessageAndContext) {
  Status S = Status::error(ErrorCode::Parse, "unexpected \"token\"")
                 .withContext("line 3");
  std::string J = S.toJson();
  EXPECT_NE(J.find("\"code\":\"E001-parse\""), std::string::npos) << J;
  EXPECT_NE(J.find("unexpected \\\"token\\\""), std::string::npos)
      << "quotes must be escaped: " << J;
  EXPECT_NE(J.find("line 3"), std::string::npos) << J;
}

TEST(Status, SubcodeDiscriminatesWithinACode) {
  // The structured sub-discriminator (e.g. which E013 guard fired): set
  // and read as a value, serialized in JSON, dropped on success.
  Status S = Status::error(ErrorCode::GuardTripped, "redzone violated")
                 .withSubcode("redzone");
  EXPECT_EQ(S.subcode(), "redzone");
  EXPECT_NE(S.toJson().find("\"subcode\":\"redzone\""), std::string::npos)
      << S.toJson();

  Status NoSub = Status::error(ErrorCode::GuardTripped, "NaN escaped");
  EXPECT_TRUE(NoSub.subcode().empty());
  EXPECT_EQ(NoSub.toJson().find("\"subcode\""), std::string::npos);

  Status Ok = Status::ok();
  Ok.withSubcode("ignored");
  EXPECT_TRUE(Ok.subcode().empty());
}

TEST(Expected, HoldsValueOrError) {
  Expected<int> V(42);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 42);
  EXPECT_EQ(std::move(V).expect("test"), 42);

  Expected<int> E(Status::error(ErrorCode::TilingInvalid, "empty chain"));
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.error().code(), ErrorCode::TilingInvalid);
  EXPECT_EQ(E.error().message(), "empty chain");
}

TEST(Expected, RefusesOkStatusAsError) {
  // Constructing an Expected error from an ok Status is a bug in the
  // caller; it degrades to a diagnosable internal error, never to a
  // half-initialized success.
  Expected<int> E{Status::ok()};
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.error().code(), ErrorCode::Internal);
}

TEST(StatusErrorTest, RaiseThrowsWithRenderedWhat) {
  try {
    raise(ErrorCode::KernelMissing, "unknown kernel id 7");
    FAIL() << "raise must throw";
  } catch (const StatusError &E) {
    EXPECT_EQ(E.status().code(), ErrorCode::KernelMissing);
    EXPECT_NE(std::string(E.what()).find("E009-kernel-missing"),
              std::string::npos);
    EXPECT_NE(std::string(E.what()).find("unknown kernel id 7"),
              std::string::npos);
  }
}

TEST(TryInvoke, ConvertsStatusErrorToExpected) {
  Expected<int> Ok = tryInvoke([] { return 7; });
  ASSERT_TRUE(static_cast<bool>(Ok));
  EXPECT_EQ(*Ok, 7);

  Expected<int> Err = tryInvoke([]() -> int {
    raise(ErrorCode::GraphInvalid, "node without statement");
  });
  ASSERT_FALSE(static_cast<bool>(Err));
  EXPECT_EQ(Err.error().code(), ErrorCode::GraphInvalid);
}
