//===- tests/storage/LivenessAllocatorTest.cpp ----------------------------===//

#include "storage/LivenessAllocator.h"

#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;
using storage::Allocation;

namespace {

/// Birth/death rows of a temporary for overlap checking.
struct Life {
  int Birth;
  int Death;
};

std::map<std::string, Life> lifetimes(const Graph &G) {
  std::map<std::string, Life> L;
  for (NodeId V = 0; V < G.numValueNodes(); ++V) {
    const ValueNode &Value = G.value(V);
    if (Value.Dead || Value.Persistent)
      continue;
    NodeId P = G.producerOf(V);
    if (P == InvalidNode || G.readersOf(V).empty())
      continue;
    Life Entry{G.stmt(P).Row, G.stmt(P).Row};
    for (const Edge *E : G.readersOf(V))
      Entry.Death = std::max(Entry.Death, G.stmt(E->To).Row);
    L[Value.Array] = Entry;
  }
  return L;
}

} // namespace

TEST(LivenessAllocator, ReusesSpacesAcrossDirections) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  Allocation A = storage::allocateSpaces(G);
  // 16 temporaries exist; the x and y direction temporaries have disjoint
  // lifetimes, so at most ~half as many spaces are needed.
  EXPECT_EQ(A.ValueToSpace.size(), 16u);
  EXPECT_LE(A.Spaces.size(), 8u);
  EXPECT_TRUE(A.Total.asymptoticallyLess(A.SsaTotal));
}

TEST(LivenessAllocator, NoOverlappingLiveRangesShareASpace) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  Allocation A = storage::allocateSpaces(G);
  auto L = lifetimes(G);
  for (const auto &[NameA, SpaceA] : A.ValueToSpace)
    for (const auto &[NameB, SpaceB] : A.ValueToSpace) {
      if (NameA >= NameB || SpaceA != SpaceB)
        continue;
      const Life &LA = L.at(NameA), &LB = L.at(NameB);
      // A value is live from its producing row through its last reading
      // row; the allocator is conservative, so co-tenants must have
      // strictly disjoint ranges.
      bool Disjoint = LA.Death < LB.Birth || LB.Death < LA.Birth;
      EXPECT_TRUE(Disjoint) << NameA << " [" << LA.Birth << "," << LA.Death
                            << "] and " << NameB << " [" << LB.Birth << ","
                            << LB.Death << "] share space " << SpaceA;
    }
}

TEST(LivenessAllocator, SpacesAccommodateTheirValues) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  Allocation A = storage::allocateSpaces(G);
  for (const auto &[Name, Space] : A.ValueToSpace) {
    const Polynomial &Size = G.value(G.findValue(Name)).Size;
    EXPECT_FALSE(A.Spaces[Space].Capacity.asymptoticallyLess(Size))
        << Name << " does not fit its space";
  }
}

TEST(LivenessAllocator, ReducedGraphShrinksTotals) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph Plain = buildGraph(Chain);
  Allocation PlainAlloc = storage::allocateSpaces(Plain);

  ir::LoopChain Chain2 = mfd::buildChain2D();
  Graph Fused = buildGraph(Chain2);
  mfd::applyFuseAllLevels(Fused);
  storage::reduceStorage(Fused);
  Allocation FusedAlloc = storage::allocateSpaces(Fused);

  EXPECT_TRUE(FusedAlloc.Total.asymptoticallyLess(PlainAlloc.Total));
  // The fused chain needs only the velocity arrays (O(N^2)) plus O(N)
  // buffers: degree 2 total, versus the series' many N^2 arrays.
  EXPECT_EQ(FusedAlloc.Total.degree(), 2u);
  EXPECT_LE(FusedAlloc.Total.coeff(2), 2);
}

TEST(LivenessAllocator, ReportRendering) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  Allocation A = storage::allocateSpaces(G);
  std::string Text = A.toString();
  EXPECT_NE(Text.find("spaces:"), std::string::npos);
  EXPECT_NE(Text.find("->"), std::string::npos);
  EXPECT_NE(Text.find("single-assignment"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// FootprintTracker: the concrete live-byte model behind the list
// scheduler's memory budget.
//===----------------------------------------------------------------------===//

using storage::FootprintTracker;

TEST(FootprintTracker, SpacesLiveFromFirstAdmitToLastRetire) {
  // Space 0 (100 B) is shared by tasks 0 and 2; space 1 (50 B) belongs to
  // task 1 alone.
  FootprintTracker T({{100, false}, {50, false}},
                     {{0u}, {1u}, {0u}});

  EXPECT_EQ(T.liveBytes(), 0);
  EXPECT_EQ(T.activationBytes(0), 100);
  T.admit(0);
  EXPECT_EQ(T.liveBytes(), 100);
  // Already live for the co-toucher: admitting task 2 costs nothing new.
  EXPECT_EQ(T.activationBytes(2), 0);
  T.admit(1);
  EXPECT_EQ(T.liveBytes(), 150);
  EXPECT_EQ(T.highWater(), 150);

  T.retire(0);
  // Space 0 stays live: task 2 has not retired.
  EXPECT_EQ(T.liveBytes(), 150);
  T.retire(1);
  EXPECT_EQ(T.liveBytes(), 100);
  T.admit(2);
  T.retire(2);
  EXPECT_EQ(T.liveBytes(), 0);
  EXPECT_EQ(T.highWater(), 150);
}

TEST(FootprintTracker, PersistentAndZeroByteSpacesExcluded) {
  FootprintTracker T({{100, true}, {0, false}, {60, false}},
                     {{0u, 1u, 2u}});
  // Only the 60-byte temporary counts; the persistent input/output and
  // the zero-byte space are free.
  EXPECT_EQ(T.activationBytes(0), 60);
  T.admit(0);
  EXPECT_EQ(T.liveBytes(), 60);
  T.retire(0);
  EXPECT_EQ(T.liveBytes(), 0);
}

TEST(FootprintTracker, DuplicateTouchesCountOnce) {
  FootprintTracker T({{80, false}}, {{0u, 0u, 0u}});
  EXPECT_EQ(T.activationBytes(0), 80);
  T.admit(0);
  EXPECT_EQ(T.liveBytes(), 80);
  T.retire(0);
  EXPECT_EQ(T.liveBytes(), 0);
}

TEST(FootprintTracker, MaxSingleTaskAndSerialHighWater) {
  // Task 0: 100 B; task 1: 100 + 40 B (shares space 0); task 2: 70 B.
  FootprintTracker T({{100, false}, {40, false}, {70, false}},
                     {{0u}, {0u, 1u}, {2u}});
  EXPECT_EQ(T.maxSingleTaskBytes(), 140);
  // Serial order: 0 admits 100; 1 adds 40 (0's space still live via 1);
  // after 1 retires both die; 2 peaks at 70. High water = 140.
  EXPECT_EQ(T.serialHighWater(), 140);
  // serialHighWater works on a scratch copy: the real tracker unchanged.
  EXPECT_EQ(T.liveBytes(), 0);
  EXPECT_EQ(T.highWater(), 0);
}

TEST(FootprintTracker, ReleaseHintFavorsLastTouchers) {
  // Space 0's last toucher is task 1; space 1's last toucher is task 0.
  FootprintTracker T({{100, false}, {30, false}},
                     {{0u, 1u}, {0u}});
  EXPECT_EQ(T.releaseHintBytes(0), 30);  // Finishing 0 frees space 1 only.
  EXPECT_EQ(T.releaseHintBytes(1), 100); // Space 0 dies with task 1.
}
