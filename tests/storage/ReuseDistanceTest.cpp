//===- tests/storage/ReuseDistanceTest.cpp --------------------------------===//

#include "storage/ReuseDistance.h"

#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "minifluxdiv/Spec.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

TEST(ReuseDistance, DomainStrides) {
  poly::AffineExpr N = poly::AffineExpr::var("N");
  poly::BoxSet Domain({poly::Dim{"z", poly::AffineExpr(0), N},
                       poly::Dim{"y", poly::AffineExpr(0),
                                 N - poly::AffineExpr(1)},
                       poly::Dim{"x", poly::AffineExpr(0), N}});
  std::vector<Polynomial> S = storage::domainStrides(Domain);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[2].toString(), "1");
  EXPECT_EQ(S[1].toString(), "N+1"); // extent of x
  EXPECT_EQ(S[0].toString(), "N^2+N");
}

namespace {

struct Fused {
  ir::LoopChain Chain;
  Graph G;
  Fused() : Chain(mfd::buildChain2D()), G(buildGraph(Chain)) {
    mfd::applyFuseWithinDirections(G);
  }
};

} // namespace

TEST(ReuseDistance, PointwiseConsumerCollapsesToScalar) {
  Fused F;
  // F1x_rho is consumed at distance 0 inside the fused node: one scalar
  // (the paper's single-scalar example in Section 4.4).
  NodeId V = F.G.findValue("F1x_rho");
  ASSERT_TRUE(F.G.value(V).Internalized);
  EXPECT_EQ(storage::reducedSize(F.G, V).toString(), "1");
}

TEST(ReuseDistance, UnitStencilNeedsTwoValues) {
  Fused F;
  // Dx reads F2x at x and x+1: two values must be maintained (the Figure 1
  // storage mapping *(temp + x&1)).
  NodeId V = F.G.findValue("F2x_rho");
  ASSERT_TRUE(F.G.value(V).Internalized);
  EXPECT_EQ(storage::reducedSize(F.G, V).toString(), "2");
}

TEST(ReuseDistance, OuterDimensionStencilNeedsPencilBuffer) {
  Fused F;
  // Dy reads F2y at y and y+1; the reuse distance is the x extent, so the
  // buffer holds N+1 values (the paper's Section 4.4 discussion sizes this
  // class of buffer at O(N)).
  NodeId V = F.G.findValue("F2y_e");
  ASSERT_TRUE(F.G.value(V).Internalized);
  EXPECT_EQ(storage::reducedSize(F.G, V).toString(), "N+1");
}

TEST(ReuseDistance, ReduceStorageUpdatesGraph) {
  Fused F;
  auto Reduced = storage::reduceStorage(F.G);
  EXPECT_EQ(Reduced.at("F1x_rho").toString(), "1");
  EXPECT_EQ(Reduced.at("F2x_u").toString(), "2");
  EXPECT_EQ(Reduced.at("F2y_v").toString(), "N+1");
  EXPECT_EQ(F.G.value(F.G.findValue("F2x_u")).Size.toString(), "2");
  // Non-internalized values keep their original sizes.
  NodeId Vel = F.G.findValue("F1x_u");
  EXPECT_FALSE(F.G.value(Vel).Internalized);
  EXPECT_EQ(F.G.value(Vel).Size.toString(), "N^2+N");
}

TEST(ReuseDistance, ThreeDimensionalPlaneBuffer) {
  ir::LoopChain Chain = mfd::buildChain3D();
  Graph G = buildGraph(Chain);
  mfd::applyFuseWithinDirections(G);
  // Dz reads F2z at z and z+1 in a (z, y, x) nest: the reuse distance is a
  // full N x N plane, so the buffer holds N^2 + 1 elements.
  NodeId V = G.findValue("F2z_rho");
  ASSERT_NE(V, InvalidNode);
  ASSERT_TRUE(G.value(V).Internalized);
  Polynomial Size = storage::reducedSize(G, V);
  EXPECT_EQ(Size.degree(), 2u);
  EXPECT_EQ(Size.evaluate(16), 16 * 16 + 1);
}
