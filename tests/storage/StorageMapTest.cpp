//===- tests/storage/StorageMapTest.cpp -----------------------------------===//

#include "storage/StorageMap.h"

#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;
using storage::ConcreteStorage;
using storage::MapKind;
using storage::StoragePlan;

namespace {

struct Fused {
  ir::LoopChain Chain;
  Graph G;
  Fused() : Chain(mfd::buildChain2D()), G(buildGraph(Chain)) {
    mfd::applyFuseWithinDirections(G);
    storage::reduceStorage(G);
  }
};

std::map<std::string, std::int64_t, std::less<>> env(std::int64_t N) {
  return {{"N", N}};
}

} // namespace

TEST(StorageMap, KindsFollowInternalization) {
  Fused F;
  StoragePlan Plan = StoragePlan::build(F.G);
  EXPECT_EQ(Plan.map("in_rho").Kind, MapKind::Direct);
  EXPECT_TRUE(Plan.map("in_rho").Persistent);
  EXPECT_EQ(Plan.map("F1x_u").Kind, MapKind::Direct);
  EXPECT_FALSE(Plan.map("F1x_u").Persistent);
  EXPECT_EQ(Plan.map("F2x_rho").Kind, MapKind::Modulo);
  EXPECT_EQ(Plan.map("F2x_rho").Size.toString(), "2");
  EXPECT_EQ(Plan.map("F2y_rho").Size.toString(), "N+1");
}

TEST(StorageMap, ModuloMappingWrapsLikeFigure1) {
  Fused F;
  StoragePlan Plan = StoragePlan::build(F.G);
  ConcreteStorage Store(Plan, env(4));
  // The two-element buffer behaves as *(temp + x&1).
  EXPECT_EQ(Store.indexOf("F2x_rho", {0, 0}), 0u);
  EXPECT_EQ(Store.indexOf("F2x_rho", {0, 1}), 1u);
  EXPECT_EQ(Store.indexOf("F2x_rho", {0, 2}), 0u);
  // Writing through the wrap reuses the same location.
  Store.at("F2x_rho", {0, 0}) = 42.0;
  EXPECT_EQ(Store.at("F2x_rho", {0, 2}), 42.0);
}

TEST(StorageMap, DirectMappingIsInjective) {
  Fused F;
  StoragePlan Plan = StoragePlan::build(F.G);
  ConcreteStorage Store(Plan, env(4));
  std::set<std::size_t> Seen;
  const auto &Extent = Plan.map("F1x_u").Extent;
  Extent.forEachPoint(env(4), [&](const std::vector<std::int64_t> &P) {
    EXPECT_TRUE(Seen.insert(Store.indexOf("F1x_u", P)).second);
  });
  EXPECT_EQ(Seen.size(), 4u * 5u);
}

TEST(StorageMap, GhostedInputsResolve) {
  Fused F;
  StoragePlan Plan = StoragePlan::build(F.G);
  ConcreteStorage Store(Plan, env(4));
  // in_rho extent includes the ghost offsets read by the stencils.
  Store.at("in_rho", {-2, 0}) = 1.5;
  Store.at("in_rho", {5, 3}) = 2.5;
  EXPECT_EQ(Store.at("in_rho", {-2, 0}), 1.5);
  EXPECT_EQ(Store.at("in_rho", {5, 3}), 2.5);
}

TEST(StorageMap, TemporaryFootprintShrinks) {
  ir::LoopChain SeriesChain = mfd::buildChain2D();
  Graph Series = buildGraph(SeriesChain);
  StoragePlan SeriesPlan = StoragePlan::build(Series);

  Fused F;
  StoragePlan FusedPlan = StoragePlan::build(F.G);
  EXPECT_TRUE(FusedPlan.temporaryFootprint().asymptoticallyLess(
      SeriesPlan.temporaryFootprint()));
}

TEST(StorageMap, SingleAssignmentPlanGivesPrivateSpaces) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  StoragePlan Shared = StoragePlan::build(G, /*UseAllocation=*/true);
  StoragePlan Private = StoragePlan::build(G, /*UseAllocation=*/false);
  EXPECT_LT(Shared.spaceSizes().size(), Private.spaceSizes().size());
  EXPECT_TRUE(Shared.temporaryFootprint().asymptoticallyLess(
      Private.temporaryFootprint()));
}

TEST(StorageMap, RenderingMentionsKinds) {
  Fused F;
  StoragePlan Plan = StoragePlan::build(F.G);
  std::string Text = Plan.toString();
  EXPECT_NE(Text.find("modulo"), std::string::npos);
  EXPECT_NE(Text.find("direct"), std::string::npos);
  EXPECT_NE(Text.find("temporary footprint"), std::string::npos);
}
