//===- tests/pipelines/UnsharpMaskTest.cpp --------------------------------===//

#include "pipelines/UnsharpMask.h"

#include "codegen/Generator.h"
#include "graph/AutoScheduler.h"
#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::pipelines;
using namespace lcdfg::graph;

TEST(UnsharpMask, FusedKernelMatchesSeries) {
  for (int N : {8, 17, 32}) {
    Image In(N);
    In.fillPseudoRandom(0x1333 + N);
    Image A(N), B(N);
    runUnsharpSeries(In, A);
    runUnsharpFused(In, B);
    EXPECT_EQ(maxAbsDiff(A, B), 0.0) << "N=" << N;
  }
}

TEST(UnsharpMask, ChainShape) {
  ir::LoopChain Chain = buildUnsharpChain();
  EXPECT_EQ(Chain.numNests(), 4u);
  EXPECT_EQ(Chain.array("img").Kind, ir::StorageKind::PersistentInput);
  EXPECT_EQ(Chain.array("out").Kind, ir::StorageKind::PersistentOutput);
  EXPECT_EQ(Chain.array("blurx").Kind, ir::StorageKind::Temporary);
  // blurx covers the two halo rows the y-blur needs.
  EXPECT_EQ(Chain.valueSize("blurx").toString(), "N^2+4N");
}

TEST(UnsharpMask, FusionCollapsesIntermediatesToLineBuffers) {
  ir::LoopChain Chain = buildUnsharpChain();
  Graph G = buildGraph(Chain);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx"),
                                   G.findStmt("blury")));
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx+blury"),
                                   G.findStmt("sharpen")));
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx+blury+sharpen"),
                                   G.findStmt("mask")));
  auto Reduced = storage::reduceStorage(G);
  // blurx: produced 2 rows ahead of its consumption window -> 4N+1.
  EXPECT_EQ(Reduced.at("blurx").toString(), "4N+1");
  EXPECT_EQ(Reduced.at("blury").toString(), "1");
  EXPECT_EQ(Reduced.at("sharpen").toString(), "1");
  // The cost drop mirrors the hand kernels' footprint drop.
  CostReport Cost = computeCost(G);
  EXPECT_EQ(Cost.TotalRead.degree(), 2u);
  EXPECT_LE(Cost.TotalRead.coeff(2), 3); // img streams only
}

TEST(UnsharpMask, AutoSchedulerFindsTheFusedPipeline) {
  ir::LoopChain Chain = buildUnsharpChain();
  Graph G = buildGraph(Chain);
  Polynomial Before = computeCost(G).TotalRead;
  AutoScheduleResult R = autoSchedule(G);
  EXPECT_TRUE(R.FinalRead.asymptoticallyLess(Before));
  // One fused statement node remains.
  unsigned Live = 0;
  for (NodeId S = 0; S < G.numStmtNodes(); ++S)
    Live += G.stmt(S).Dead ? 0 : 1;
  EXPECT_EQ(Live, 1u);
}

TEST(UnsharpMask, InterpretedFusedScheduleMatchesHandKernels) {
  const std::int64_t N = 10;
  Image In(static_cast<int>(N));
  In.fillPseudoRandom(0xabc);
  Image Expected(static_cast<int>(N));
  runUnsharpSeries(In, Expected);

  ir::LoopChain Chain = buildUnsharpChain();
  codegen::KernelRegistry Kernels;
  registerKernels(Chain, Kernels);
  Graph G = buildGraph(Chain);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx"),
                                   G.findStmt("blury")));
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx+blury"),
                                   G.findStmt("sharpen")));
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx+blury+sharpen"),
                                   G.findStmt("mask")));
  storage::reduceStorage(G);

  std::map<std::string, std::int64_t, std::less<>> Env{{"N", N}};
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  storage::ConcreteStorage Store(Plan, Env);
  G.chain().array("img").Extent->forEachPoint(
      Env, [&](const std::vector<std::int64_t> &P) {
        Store.at("img", P) = In.at(static_cast<int>(P[0]),
                                   static_cast<int>(P[1]));
      });
  codegen::AstPtr Ast = codegen::generate(G);
  codegen::execute(G, *Ast, Kernels, Store, Env);

  for (int Y = 0; Y < N; ++Y)
    for (int X = 0; X < N; ++X)
      ASSERT_NEAR(Store.at("out", {Y, X}), Expected.at(Y, X), 1e-14)
          << Y << "," << X;
}

TEST(UnsharpMask, TemporaryFootprints) {
  EXPECT_GT(temporaryElementsSeries(512), temporaryElementsFused(512) * 50);
}
