//===- tests/shard/TopologyTest.cpp ---------------------------------------===//
//
// Slab ownership and exchange-plan enumeration: the sharded runner's
// correctness rests on both ends of a channel deriving the same slab list
// without negotiation.
//
//===----------------------------------------------------------------------===//

#include "shard/Topology.h"

#include "gtest/gtest.h"

#include <algorithm>

namespace {

using namespace lcdfg;
using namespace lcdfg::shard;

std::vector<int> boxIndices(const std::vector<HaloSlab> &Slabs) {
  std::vector<int> Out;
  for (const HaloSlab &S : Slabs)
    Out.push_back(S.BoxIndex);
  return Out;
}

TEST(SlabPartition, BalancesRowsWithRemainderAtTheFront) {
  rt::GridLayout Layout{8, 2, 3};
  auto Part = partitionRows(Layout, 3);
  ASSERT_TRUE(Part);
  EXPECT_EQ(Part->Shards, 3);
  const std::vector<int> Expect{0, 3, 6, 8};
  EXPECT_EQ(Part->RowBegin, Expect);
  EXPECT_EQ(Part->rowsOf(0), 3);
  EXPECT_EQ(Part->rowsOf(1), 3);
  EXPECT_EQ(Part->rowsOf(2), 2);
}

TEST(SlabPartition, OwnerOfRowInvertsTheBounds) {
  rt::GridLayout Layout{5, 1, 1};
  auto Part = partitionRows(Layout, 2);
  ASSERT_TRUE(Part);
  for (int Z = 0; Z < Layout.Bz; ++Z) {
    const int Rank = Part->ownerOfRow(Z);
    ASSERT_GE(Rank, 0) << "row " << Z << " unowned";
    EXPECT_LE(Part->firstRow(Rank), Z);
    EXPECT_LT(Z, Part->endRow(Rank));
  }
}

TEST(SlabPartition, EveryRowOwnedExactlyOnce) {
  rt::GridLayout Layout{7, 1, 1};
  auto Part = partitionRows(Layout, 4);
  ASSERT_TRUE(Part);
  int Covered = 0;
  for (int R = 0; R < Part->Shards; ++R) {
    EXPECT_GE(Part->rowsOf(R), 1);
    Covered += Part->rowsOf(R);
  }
  EXPECT_EQ(Covered, Layout.Bz);
  EXPECT_EQ(Part->RowBegin.front(), 0);
  EXPECT_EQ(Part->RowBegin.back(), Layout.Bz);
}

TEST(SlabPartition, RejectsImpossibleShardCounts) {
  rt::GridLayout Layout{4, 2, 2};
  auto Zero = partitionRows(Layout, 0);
  ASSERT_FALSE(Zero);
  support::Status E = Zero.takeError();
  EXPECT_EQ(E.code(), support::ErrorCode::InvalidChain);
  EXPECT_EQ(E.subcode(), "shard-topology");

  auto Over = partitionRows(Layout, 5);
  ASSERT_FALSE(Over);
  EXPECT_EQ(Over.takeError().subcode(), "shard-topology");
}

TEST(ExchangePlan, SingleShardHasNoPeersAndNoSlabs) {
  rt::GridLayout Layout{4, 2, 2};
  auto Part = partitionRows(Layout, 1);
  ASSERT_TRUE(Part);
  ExchangePlan Plan = buildExchangePlan(Layout, *Part, 0, 4, 1);
  EXPECT_EQ(Plan.Prev, -1);
  EXPECT_EQ(Plan.Next, -1);
  EXPECT_TRUE(Plan.SendPrev.empty());
  EXPECT_TRUE(Plan.SendNext.empty());
  EXPECT_TRUE(Plan.RecvPrev.empty());
  EXPECT_TRUE(Plan.RecvNext.empty());
}

TEST(ExchangePlan, SlabsCoverAdjacentRowFaces) {
  rt::GridLayout Layout{4, 2, 2};
  auto Part = partitionRows(Layout, 2);
  ASSERT_TRUE(Part);
  const int N = 4, G = 1;
  ExchangePlan Plan = buildExchangePlan(Layout, *Part, 0, N, G);
  EXPECT_EQ(Plan.Prev, 1);
  EXPECT_EQ(Plan.Next, 1);

  // Rank 0 owns rows 0-1: LOW faces of row 0 go to prev, HIGH faces of
  // row 1 go to next; it receives HIGH faces of row 3 and LOW of row 2.
  EXPECT_EQ(boxIndices(Plan.SendPrev), boxesInRow(Layout, 0));
  EXPECT_EQ(boxIndices(Plan.SendNext), boxesInRow(Layout, 1));
  EXPECT_EQ(boxIndices(Plan.RecvPrev), boxesInRow(Layout, 3));
  EXPECT_EQ(boxIndices(Plan.RecvNext), boxesInRow(Layout, 2));
  for (const HaloSlab &S : Plan.SendPrev) {
    EXPECT_EQ(S.Z0, 0);
    EXPECT_EQ(S.ZCount, G);
  }
  for (const HaloSlab &S : Plan.SendNext) {
    EXPECT_EQ(S.Z0, N - G);
    EXPECT_EQ(S.ZCount, G);
  }
  for (const HaloSlab &S : Plan.RecvPrev)
    EXPECT_EQ(S.Z0, N - G);
  for (const HaloSlab &S : Plan.RecvNext)
    EXPECT_EQ(S.Z0, 0);
}

TEST(ExchangePlan, SendAndRecvListsPairUpAcrossTheRing) {
  // Rank r's SendNext must be exactly rank (r+1)'s RecvPrev, and its
  // SendPrev exactly rank (r-1)'s RecvNext — both ends enumerate the same
  // slabs without negotiation.
  rt::GridLayout Layout{5, 2, 1};
  auto Part = partitionRows(Layout, 3);
  ASSERT_TRUE(Part);
  const int N = 3, G = 2;
  std::vector<ExchangePlan> Plans;
  for (int R = 0; R < 3; ++R)
    Plans.push_back(buildExchangePlan(Layout, *Part, R, N, G));
  for (int R = 0; R < 3; ++R) {
    const ExchangePlan &Mine = Plans[static_cast<std::size_t>(R)];
    const ExchangePlan &Nxt = Plans[static_cast<std::size_t>((R + 1) % 3)];
    ASSERT_EQ(Mine.SendNext.size(), Nxt.RecvPrev.size());
    for (std::size_t I = 0; I < Mine.SendNext.size(); ++I) {
      EXPECT_EQ(Mine.SendNext[I].BoxIndex, Nxt.RecvPrev[I].BoxIndex);
      EXPECT_EQ(Mine.SendNext[I].Z0, Nxt.RecvPrev[I].Z0);
      EXPECT_EQ(Mine.SendNext[I].ZCount, Nxt.RecvPrev[I].ZCount);
    }
    const ExchangePlan &Prv = Plans[static_cast<std::size_t>((R + 2) % 3)];
    ASSERT_EQ(Mine.SendPrev.size(), Prv.RecvNext.size());
    for (std::size_t I = 0; I < Mine.SendPrev.size(); ++I)
      EXPECT_EQ(Mine.SendPrev[I].BoxIndex, Prv.RecvNext[I].BoxIndex);
  }
}

TEST(ExchangePlan, SingleRowRankSendsTheSameRowBothWays) {
  // Bz == Shards: every rank owns one row; with two shards Prev == Next
  // and the same row's LOW and HIGH faces travel distinct channels.
  rt::GridLayout Layout{2, 1, 2};
  auto Part = partitionRows(Layout, 2);
  ASSERT_TRUE(Part);
  const int N = 4, G = 1;
  ExchangePlan Plan = buildExchangePlan(Layout, *Part, 0, N, G);
  EXPECT_EQ(Plan.Prev, 1);
  EXPECT_EQ(Plan.Next, 1);
  EXPECT_EQ(boxIndices(Plan.SendPrev), boxesInRow(Layout, 0));
  EXPECT_EQ(boxIndices(Plan.SendNext), boxesInRow(Layout, 0));
  EXPECT_EQ(boxIndices(Plan.RecvPrev), boxesInRow(Layout, 1));
  EXPECT_EQ(boxIndices(Plan.RecvNext), boxesInRow(Layout, 1));
  EXPECT_NE(Plan.SendPrev.front().Z0, Plan.SendNext.front().Z0);
}

TEST(BoxesInRow, FollowsLayoutIndexOrder) {
  rt::GridLayout Layout{3, 2, 2};
  const std::vector<int> Row1 = boxesInRow(Layout, 1);
  const std::vector<int> Expect{Layout.index(1, 0, 0), Layout.index(1, 0, 1),
                                Layout.index(1, 1, 0), Layout.index(1, 1, 1)};
  EXPECT_EQ(Row1, Expect);
  EXPECT_TRUE(std::is_sorted(Row1.begin(), Row1.end()));
}

} // namespace
