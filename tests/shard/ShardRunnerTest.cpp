//===- tests/shard/ShardRunnerTest.cpp ------------------------------------===//
//
// End-to-end sharded execution: clean multi-process runs must be
// bit-identical to the scalar-serial oracle, a short msg:delay must be
// absorbed by the resend retries, and every terminal fault in the
// acceptance matrix must descend to L009-shard-degraded with — again —
// bit-identical results.
//
// Everything before runSharded's fork must stay single-threaded: the
// oracle runs at Threads = 1 (rt::parallelFor executes inline) and no test
// here touches the global ThreadPool.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardRunner.h"

#include "exec/FaultInjector.h"
#include "shard/Topology.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <string>
#include <vector>

namespace {

using namespace lcdfg;
using namespace lcdfg::shard;

std::vector<rt::Box> makeState(const rt::GridLayout &Layout, int N, int G,
                               int NumComp) {
  std::vector<rt::Box> Boxes;
  Boxes.reserve(static_cast<std::size_t>(Layout.numBoxes()));
  for (int I = 0; I < Layout.numBoxes(); ++I) {
    Boxes.emplace_back(N, G, NumComp);
    Boxes.back().fillPseudoRandom(0x5eedULL +
                                  static_cast<std::uint64_t>(I) * 1009);
  }
  return Boxes;
}

/// A 7-point box-local average: reads one ghost layer in every direction,
/// so every exchanged halo double feeds the result.
void averageStep(const rt::Box &In, rt::Box &Out) {
  for (int C = 0; C < In.numComponents(); ++C)
    for (int Z = 0; Z < In.size(); ++Z)
      for (int Y = 0; Y < In.size(); ++Y)
        for (int X = 0; X < In.size(); ++X)
          Out.at(C, Z, Y, X) =
              (In.at(C, Z, Y, X) + In.at(C, Z - 1, Y, X) +
               In.at(C, Z + 1, Y, X) + In.at(C, Z, Y - 1, X) +
               In.at(C, Z, Y + 1, X) + In.at(C, Z, Y, X - 1) +
               In.at(C, Z, Y, X + 1)) /
              7.0;
}

::testing::AssertionResult bitIdentical(const std::vector<rt::Box> &A,
                                        const std::vector<rt::Box> &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure()
           << "box counts differ: " << A.size() << " vs " << B.size();
  for (std::size_t I = 0; I < A.size(); ++I)
    for (int C = 0; C < A[I].numComponents(); ++C)
      for (int Z = 0; Z < A[I].size(); ++Z)
        for (int Y = 0; Y < A[I].size(); ++Y)
          for (int X = 0; X < A[I].size(); ++X)
            if (A[I].at(C, Z, Y, X) != B[I].at(C, Z, Y, X))
              return ::testing::AssertionFailure()
                     << "box " << I << " comp " << C << " (" << Z << "," << Y
                     << "," << X << "): " << A[I].at(C, Z, Y, X)
                     << " != " << B[I].at(C, Z, Y, X);
  return ::testing::AssertionSuccess();
}

/// Arms the global injector for one test and disarms on scope exit.
struct ArmedFault {
  explicit ArmedFault(const std::string &Specs) {
    auto Parsed = exec::FaultInjector::parseSpecs(Specs);
    EXPECT_TRUE(Parsed) << Specs;
    if (Parsed)
      exec::FaultInjector::global().arm(*Parsed);
  }
  ~ArmedFault() { exec::FaultInjector::global().disarm(); }
};

struct OracleAndRun {
  std::vector<rt::Box> Oracle;
  std::vector<rt::Box> Sharded;
  ShardReport Report;
};

OracleAndRun runBoth(const rt::GridLayout &Layout, int N, int G, int NumComp,
                     int Steps, ShardOptions Opts) {
  OracleAndRun R;
  R.Oracle = makeState(Layout, N, G, NumComp);
  EXPECT_TRUE(
      runSerialReference(R.Oracle, Layout, Steps, averageStep).isOk());
  R.Sharded = makeState(Layout, N, G, NumComp);
  R.Report = runSharded(R.Sharded, Layout, Steps, averageStep, Opts);
  return R;
}

TEST(ShardRunner, SingleShardMatchesTheSerialReference) {
  const rt::GridLayout Layout{2, 2, 2};
  OracleAndRun R = runBoth(Layout, 4, 1, 2, 3, ShardOptions{});
  EXPECT_TRUE(R.Report.Completed);
  EXPECT_FALSE(R.Report.Recovered);
  EXPECT_EQ(R.Report.FinalRung, "sharded-1");
  EXPECT_TRUE(R.Report.Descents.empty());
  EXPECT_TRUE(bitIdentical(R.Sharded, R.Oracle));
}

TEST(ShardRunner, TwoShardsAreBitIdenticalToTheOracle) {
  const rt::GridLayout Layout{4, 2, 2};
  ShardOptions Opts;
  Opts.Shards = 2;
  Opts.Threads = 2; // exercises the interior/gather overlap window
  Opts.TimeoutMs = 8000;
  OracleAndRun R = runBoth(Layout, 4, 1, 2, 3, Opts);
  EXPECT_TRUE(R.Report.Completed) << R.Report.toString();
  EXPECT_FALSE(R.Report.Recovered);
  EXPECT_EQ(R.Report.FinalRung, "sharded-2");
  EXPECT_GT(R.Report.Stats.Exchanges, 0);
  EXPECT_GT(R.Report.Stats.Bytes, 0);
  EXPECT_EQ(R.Report.Stats.Timeouts, 0);
  EXPECT_EQ(R.Report.Stats.PeersLost, 0);
  EXPECT_TRUE(bitIdentical(R.Sharded, R.Oracle));
}

TEST(ShardRunner, FourSingleRowShardsWithFullDepthGhostsAreBitIdentical) {
  // Bz == Shards puts every owned box on the boundary (no interior
  // overlap), and G == N makes the two faces of a box overlap completely —
  // the degenerate slab shapes the topology must still handle.
  const rt::GridLayout Layout{4, 2, 1};
  ShardOptions Opts;
  Opts.Shards = 4;
  Opts.Threads = 2;
  Opts.TimeoutMs = 8000;
  OracleAndRun R = runBoth(Layout, 2, 2, 1, 3, Opts);
  EXPECT_TRUE(R.Report.Completed) << R.Report.toString();
  EXPECT_FALSE(R.Report.Recovered);
  EXPECT_EQ(R.Report.FinalRung, "sharded-4");
  EXPECT_TRUE(bitIdentical(R.Sharded, R.Oracle));
}

TEST(ShardRunner, ShortDelayIsAbsorbedByResendRetries) {
  // A delay well under the deadline: rank 0 stalls its first frame, the
  // receiving peer's backoff loop issues resend requests, and the step
  // completes without any descent.
  ArmedFault Fault("msg:delay");
  const rt::GridLayout Layout{4, 2, 2};
  ShardOptions Opts;
  Opts.Shards = 2;
  Opts.Threads = 2;
  Opts.TimeoutMs = 8000;
  Opts.DelayMs = 120;
  OracleAndRun R = runBoth(Layout, 4, 1, 2, 3, Opts);
  EXPECT_TRUE(R.Report.Completed) << R.Report.toString();
  EXPECT_FALSE(R.Report.Recovered) << R.Report.toString();
  EXPECT_TRUE(R.Report.Descents.empty());
  EXPECT_GT(R.Report.Stats.Retries, 0) << R.Report.toString();
  EXPECT_TRUE(bitIdentical(R.Sharded, R.Oracle));
}

struct MatrixCase {
  const char *Spec;
  int Shards;
};

class ShardFaultMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ShardFaultMatrix, DescendsToL009AndStaysBitIdentical) {
  const MatrixCase &Case = GetParam();
  ArmedFault Fault(Case.Spec);
  const rt::GridLayout Layout{4, 2, 2};
  ShardOptions Opts;
  Opts.Shards = Case.Shards;
  Opts.Threads = 2;
  Opts.TimeoutMs = 400; // DelayMs defaults to 3x: past the deadline
  OracleAndRun R = runBoth(Layout, 4, 1, 2, 3, Opts);
  EXPECT_TRUE(R.Report.Completed) << R.Report.toString();
  EXPECT_TRUE(R.Report.Recovered) << R.Report.toString();
  EXPECT_EQ(R.Report.FinalRung, "shard-degraded-serial");
  ASSERT_EQ(R.Report.Descents.size(), 1u);
  EXPECT_EQ(R.Report.Descents[0].Reason, "L009-shard-degraded");
  EXPECT_EQ(R.Report.Descents[0].Rung,
            "sharded-" + std::to_string(Case.Shards));
  EXPECT_TRUE(bitIdentical(R.Sharded, R.Oracle));
  // The failure class must be visible in the stats the report carries.
  if (std::string(Case.Spec).rfind("peer:", 0) == 0)
    EXPECT_GT(R.Report.Stats.PeersLost, 0) << R.Report.toString();
  else
    EXPECT_GT(R.Report.Stats.Timeouts + R.Report.Stats.PeersLost, 0)
        << R.Report.toString();
}

INSTANTIATE_TEST_SUITE_P(
    AcceptanceMatrix, ShardFaultMatrix,
    ::testing::Values(MatrixCase{"peer:kill", 2}, MatrixCase{"peer:kill:2", 4},
                      MatrixCase{"msg:drop", 2}, MatrixCase{"msg:drop", 4},
                      MatrixCase{"msg:truncate", 2},
                      MatrixCase{"msg:truncate", 4},
                      MatrixCase{"msg:delay", 2}, MatrixCase{"msg:delay", 4}),
    [](const ::testing::TestParamInfo<MatrixCase> &Info) {
      std::string Name = Info.param.Spec;
      for (char &C : Name)
        if (C == ':')
          C = '_';
      return Name + "_x" + std::to_string(Info.param.Shards);
    });

TEST(ShardRunner, InvalidShardCountFailsStructurally) {
  const rt::GridLayout Layout{4, 2, 2};
  std::vector<rt::Box> Boxes = makeState(Layout, 4, 1, 1);
  ShardOptions Opts;
  Opts.Shards = 5; // > Bz
  ShardReport Report = runSharded(Boxes, Layout, 3, averageStep, Opts);
  EXPECT_FALSE(Report.Completed);
  EXPECT_EQ(Report.Error.code(), support::ErrorCode::InvalidChain);
  EXPECT_EQ(Report.Error.subcode(), "shard-topology");
  EXPECT_NE(Report.toJson().find("\"completed\":false"), std::string::npos);
}

TEST(ShardRunner, BadGridIsRejectedBeforeForking) {
  const rt::GridLayout Layout{2, 2, 2};
  std::vector<rt::Box> Boxes = makeState(Layout, 4, 1, 1);
  Boxes.pop_back(); // box count no longer matches the layout
  ShardOptions Opts;
  Opts.Shards = 2;
  ShardReport Report = runSharded(Boxes, Layout, 1, averageStep, Opts);
  EXPECT_FALSE(Report.Completed);
  EXPECT_EQ(Report.Error.code(), support::ErrorCode::InvalidChain);
  EXPECT_EQ(Report.Error.subcode(), "ghost-grid");
}

TEST(ShardReport, JsonMirrorsTheRunReportShape) {
  const rt::GridLayout Layout{2, 1, 1};
  ShardOptions Opts;
  Opts.Shards = 2;
  Opts.Threads = 1;
  Opts.TimeoutMs = 8000;
  OracleAndRun R = runBoth(Layout, 3, 1, 1, 2, Opts);
  ASSERT_TRUE(R.Report.Completed) << R.Report.toString();
  const std::string Json = R.Report.toJson();
  EXPECT_NE(Json.find("\"completed\":true"), std::string::npos);
  EXPECT_NE(Json.find("\"recovered\":false"), std::string::npos);
  EXPECT_NE(Json.find("\"final_rung\":\"sharded-2\""), std::string::npos);
  EXPECT_NE(Json.find("\"descents\":[]"), std::string::npos);
  EXPECT_NE(Json.find("\"stats\":{\"exchanges\":"), std::string::npos);
}

} // namespace
