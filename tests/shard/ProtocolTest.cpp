//===- tests/shard/ProtocolTest.cpp ---------------------------------------===//
//
// Wire-protocol framing: corruption must be detectable (never silently
// wrong data), deadlines must surface as E019 "timeout", and peer death
// as terminal E018.
//
//===----------------------------------------------------------------------===//

#include "shard/Protocol.h"

#include "gtest/gtest.h"

#include <cstring>
#include <sys/socket.h>
#include <utility>
#include <vector>

namespace {

using namespace lcdfg;
using namespace lcdfg::shard;
using support::ErrorCode;

Frame makeHaloFrame(const std::vector<double> &Vals) {
  Frame F;
  F.H.Type = static_cast<std::uint16_t>(FrameType::HaloData);
  F.H.Rank = 3;
  F.H.Step = 7;
  F.H.BoxIndex = 5;
  F.H.Comp = 1;
  F.H.Z0 = 2;
  F.H.ZCount = 1;
  F.Payload.resize(Vals.size() * sizeof(double));
  std::memcpy(F.Payload.data(), Vals.data(), F.Payload.size());
  return F;
}

TEST(Fnv1a, MatchesTheReferenceVectors) {
  // Offset basis for empty input; the single-byte vectors are from the
  // published FNV-1a test suite.
  EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ull);
  const char A = 'a';
  EXPECT_EQ(fnv1a(&A, 1), 0xaf63dc4c8601ec8cull);
}

TEST(Channel, RoundTripsAFrame) {
  auto Pair = Channel::makePair();
  ASSERT_TRUE(Pair);
  Channel A = std::move(Pair->first);
  Channel B = std::move(Pair->second);

  const std::vector<double> Vals{1.5, -2.25, 3.75};
  ASSERT_TRUE(A.send(makeHaloFrame(Vals)).isOk());

  auto Got = B.recv(1000);
  ASSERT_TRUE(Got);
  EXPECT_EQ(Got->type(), FrameType::HaloData);
  EXPECT_EQ(Got->H.Rank, 3);
  EXPECT_EQ(Got->H.Step, 7);
  EXPECT_EQ(Got->H.BoxIndex, 5);
  EXPECT_EQ(Got->H.Comp, 1);
  EXPECT_EQ(Got->H.Z0, 2);
  ASSERT_EQ(Got->numDoubles(), Vals.size());
  for (std::size_t I = 0; I < Vals.size(); ++I)
    EXPECT_EQ(Got->doubles()[I], Vals[I]);
}

TEST(Channel, PreservesMessageBoundariesAndOrder) {
  auto Pair = Channel::makePair();
  ASSERT_TRUE(Pair);
  Channel A = std::move(Pair->first);
  Channel B = std::move(Pair->second);
  for (int I = 0; I < 4; ++I) {
    Frame F = makeHaloFrame({static_cast<double>(I)});
    F.H.Step = I;
    ASSERT_TRUE(A.send(std::move(F)).isOk());
  }
  for (int I = 0; I < 4; ++I) {
    auto Got = B.recv(1000);
    ASSERT_TRUE(Got);
    EXPECT_EQ(Got->H.Step, I);
    ASSERT_EQ(Got->numDoubles(), 1u);
    EXPECT_EQ(Got->doubles()[0], static_cast<double>(I));
  }
}

TEST(Channel, TruncatedPayloadIsDetectablyCorrupt) {
  auto Pair = Channel::makePair();
  ASSERT_TRUE(Pair);
  Channel A = std::move(Pair->first);
  Channel B = std::move(Pair->second);

  Frame F = makeHaloFrame({1.0, 2.0, 3.0, 4.0});
  // The msg:truncate fault path: header claims (and checksums) the full
  // payload, the wire carries half of it.
  ASSERT_TRUE(A.send(std::move(F), 2 * sizeof(double)).isOk());

  auto Got = B.recv(1000);
  ASSERT_FALSE(Got);
  support::Status E = Got.takeError();
  EXPECT_EQ(E.code(), ErrorCode::ExchangeTimeout);
  EXPECT_EQ(E.subcode(), "corrupt");
  EXPECT_NE(E.message().find("truncated"), std::string::npos);
}

TEST(Channel, ChecksumMismatchIsCorrupt) {
  auto Pair = Channel::makePair();
  ASSERT_TRUE(Pair);
  Channel A = std::move(Pair->first);
  Channel B = std::move(Pair->second);

  FrameHeader H;
  H.Magic = FrameMagic;
  H.Type = static_cast<std::uint16_t>(FrameType::HaloData);
  H.PayloadBytes = sizeof(double);
  H.Checksum = 0xdeadbeefull; // not FNV-1a of the payload
  std::vector<std::uint8_t> Wire(sizeof(FrameHeader) + sizeof(double), 0);
  std::memcpy(Wire.data(), &H, sizeof(FrameHeader));
  ASSERT_EQ(::send(A.fd(), Wire.data(), Wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(Wire.size()));

  auto Got = B.recv(1000);
  ASSERT_FALSE(Got);
  support::Status E = Got.takeError();
  EXPECT_EQ(E.code(), ErrorCode::ExchangeTimeout);
  EXPECT_EQ(E.subcode(), "corrupt");
  EXPECT_NE(E.message().find("checksum"), std::string::npos);
}

TEST(Channel, BadMagicIsCorrupt) {
  auto Pair = Channel::makePair();
  ASSERT_TRUE(Pair);
  Channel A = std::move(Pair->first);
  Channel B = std::move(Pair->second);

  FrameHeader H;
  H.Magic = 0x12345678;
  std::vector<std::uint8_t> Wire(sizeof(FrameHeader), 0);
  std::memcpy(Wire.data(), &H, sizeof(FrameHeader));
  ASSERT_EQ(::send(A.fd(), Wire.data(), Wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(Wire.size()));

  auto Got = B.recv(1000);
  ASSERT_FALSE(Got);
  EXPECT_EQ(Got.error().subcode(), "corrupt");
}

TEST(Channel, RecvDeadlineIsATimeoutSubcode) {
  auto Pair = Channel::makePair();
  ASSERT_TRUE(Pair);
  auto Got = Pair->second.recv(10);
  ASSERT_FALSE(Got);
  support::Status E = Got.takeError();
  EXPECT_EQ(E.code(), ErrorCode::ExchangeTimeout);
  EXPECT_EQ(E.subcode(), "timeout");
}

TEST(Channel, PeerCloseIsTerminalPeerLost) {
  auto Pair = Channel::makePair();
  ASSERT_TRUE(Pair);
  Channel A = std::move(Pair->first);
  Channel B = std::move(Pair->second);
  A.close();
  auto Got = B.recv(1000);
  ASSERT_FALSE(Got);
  EXPECT_EQ(Got.error().code(), ErrorCode::PeerLost);
}

TEST(PollReadable, IgnoresNegativeFdsAndKeepsIndicesAligned) {
  auto Pair = Channel::makePair();
  ASSERT_TRUE(Pair);
  Channel A = std::move(Pair->first);
  Channel B = std::move(Pair->second);
  ASSERT_TRUE(A.send(makeHaloFrame({1.0})).isOk());

  // Slot 0 is a disabled (finished-rank) channel; slot 1 is readable.
  std::vector<std::size_t> Ready = pollReadable({-1, B.fd()}, 1000);
  ASSERT_EQ(Ready.size(), 1u);
  EXPECT_EQ(Ready.front(), 1u);

  std::vector<std::size_t> None = pollReadable({-1, A.fd()}, 10);
  EXPECT_TRUE(None.empty());
}

} // namespace
