//===- tests/parser/ScriptRunnerTest.cpp ----------------------------------===//

#include "parser/ScriptRunner.h"

#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

struct Fixture {
  ir::LoopChain Chain;
  Graph G;
  Fixture() : Chain(mfd::buildChain2D()), G(buildGraph(Chain)) {}
};

} // namespace

TEST(ScriptRunner, Figure8RecipeAsScript) {
  // The fuse-within-directions recipe written in the script language.
  Fixture F;
  const char *Script = R"(
# x direction
fusepc Fx1_rho Fx2_rho
fusepc Fx1_rho+Fx2_rho Dx_rho
fusepc Fx1_v Fx2_v
fusepc Fx1_v+Fx2_v Dx_v
fusepc Fx1_e Fx2_e
fusepc Fx1_e+Fx2_e Dx_e
fusepc Fx2_u Dx_u
# y direction
fusepc Fy1_rho Fy2_rho
fusepc Fy1_rho+Fy2_rho Dy_rho
fusepc Fy1_u Fy2_u
fusepc Fy1_u+Fy2_u Dy_u
fusepc Fy1_e Fy2_e
fusepc Fy1_e+Fy2_e Dy_e
fusepc Fy2_v Dy_v
reduce
compact
cost
)";
  parser::ScriptResult R = parser::runScript(F.G, Script);
  ASSERT_TRUE(R) << R.Error << " at line " << R.Line;
  F.G.verify();
  // Same totals as the hand recipe (FigureCostsTest).
  CostReport Cost = computeCost(F.G);
  EXPECT_EQ(Cost.TotalRead.toString(), "16N^2+44N+18");
  // The cost command appended a report to the log.
  EXPECT_FALSE(R.Log.empty());
  EXPECT_NE(R.Log.back().find("S_R ="), std::string::npos);
}

TEST(ScriptRunner, RescheduleAndAutoSchedule) {
  Fixture F;
  parser::ScriptResult R = parser::runScript(F.G, R"(
reschedule Fy1_v 1
autoschedule 4
)");
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Log.size(), 2u);
  EXPECT_NE(R.Log[1].find("autoschedule applied"), std::string::npos);
}

TEST(ScriptRunner, CommentsAndBlankLines) {
  Fixture F;
  parser::ScriptResult R = parser::runScript(F.G, R"(
# nothing but comments

   # indented comment
)");
  ASSERT_TRUE(R);
  EXPECT_TRUE(R.Log.empty());
}

TEST(ScriptRunner, StopsAtFirstFailure) {
  Fixture F;
  parser::ScriptResult R = parser::runScript(F.G, R"(
fusepc Fx1_rho Fx2_rho
fusepc NoSuchNode Fx2_v
fusepc Fx1_v Fx2_v
)");
  ASSERT_FALSE(R);
  EXPECT_EQ(R.Line, 3u);
  EXPECT_NE(R.Error.find("NoSuchNode"), std::string::npos);
  // The first command was applied; the third was not.
  EXPECT_NE(F.G.findStmt("Fx1_rho+Fx2_rho"), InvalidNode);
  EXPECT_NE(F.G.findStmt("Fx1_v"), InvalidNode);
}

TEST(ScriptRunner, ReportsIllegalTransforms) {
  Fixture F;
  parser::ScriptResult R =
      parser::runScript(F.G, "fusepc Fx1_u Fx2_u\n");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("also read by"), std::string::npos);
}

TEST(ScriptRunner, UnknownCommand) {
  Fixture F;
  parser::ScriptResult R = parser::runScript(F.G, "explode everything\n");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("unknown command"), std::string::npos);
}

TEST(ScriptRunner, FuseRRNoCollapseKeepsStreams) {
  Fixture F;
  NodeId In = F.G.findValue("in_rho");
  parser::ScriptResult R =
      parser::runScript(F.G, "fuserr Fx1_rho Fy1_rho nocollapse\n");
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(F.G.outDegree(In), 2u);
  Fixture F2;
  ASSERT_TRUE(parser::runScript(F2.G, "fuserr Fx1_rho Fy1_rho\n"));
  EXPECT_EQ(F2.G.outDegree(F2.G.findValue("in_rho")), 1u);
}

TEST(ScriptRunner, InterchangeCommand) {
  ir::LoopChain Chain = mfd::buildChain3D();
  Graph G = buildGraph(Chain);
  parser::ScriptResult R = parser::runScript(G, R"(
fusepc Fz1_rho Fz2_rho
fusepc Fz1_rho+Fz2_rho Dz_rho
interchange Fz1_rho+Fz2_rho+Dz_rho 1 2 0
reduce
)");
  ASSERT_TRUE(R) << R.Error << " at line " << R.Line;
  // z runs innermost: the plane buffer collapsed to two scalars.
  EXPECT_EQ(G.value(G.findValue("F2z_rho")).Size.toString(), "2");
  // Bad permutation fails cleanly.
  parser::ScriptResult Bad =
      parser::runScript(G, "interchange Fz1_rho+Fz2_rho+Dz_rho 0 0 1\n");
  EXPECT_FALSE(Bad);
}
