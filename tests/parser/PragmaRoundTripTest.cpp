//===- tests/parser/PragmaRoundTripTest.cpp -------------------------------===//
//
// Property: printPragmas followed by parseLoopChain reproduces the chain —
// domains, accesses, classifications, and extents.
//
//===----------------------------------------------------------------------===//

#include "parser/PragmaPrinter.h"

#include "godunov/GodunovGraph.h"
#include "minifluxdiv/Spec.h"
#include "parser/PragmaParser.h"

#include <gtest/gtest.h>

using namespace lcdfg;

namespace {

void expectSameChain(const ir::LoopChain &A, const ir::LoopChain &B) {
  ASSERT_EQ(A.numNests(), B.numNests());
  for (unsigned I = 0; I < A.numNests(); ++I) {
    const ir::LoopNest &NA = A.nest(I);
    const ir::LoopNest &NB = B.nest(I);
    EXPECT_EQ(NA.Name, NB.Name) << "nest " << I;
    EXPECT_EQ(NA.Domain, NB.Domain) << "nest " << NA.Name;
    EXPECT_EQ(NA.Write.Array, NB.Write.Array);
    EXPECT_EQ(NA.Write.Offsets, NB.Write.Offsets);
    ASSERT_EQ(NA.Reads.size(), NB.Reads.size()) << "nest " << NA.Name;
    for (std::size_t R = 0; R < NA.Reads.size(); ++R) {
      EXPECT_EQ(NA.Reads[R].Array, NB.Reads[R].Array);
      EXPECT_EQ(NA.Reads[R].Offsets, NB.Reads[R].Offsets)
          << NA.Name << " read " << R;
    }
  }
  for (const std::string &Name : A.arrayNames()) {
    ASSERT_TRUE(B.hasArray(Name)) << Name;
    EXPECT_EQ(A.array(Name).Kind, B.array(Name).Kind) << Name;
    EXPECT_EQ(A.valueSize(Name), B.valueSize(Name)) << Name;
  }
}

void roundTrip(const ir::LoopChain &Chain) {
  std::string Text = parser::printPragmas(Chain);
  parser::ParseResult R = parser::parseLoopChain(Text);
  ASSERT_TRUE(R) << R.Error << " at line " << R.Line << "\n" << Text;
  expectSameChain(Chain, *R.Chain);
}

} // namespace

TEST(PragmaRoundTrip, MiniFluxDiv2D) { roundTrip(mfd::buildChain2D()); }

TEST(PragmaRoundTrip, MiniFluxDiv3D) { roundTrip(mfd::buildChain3D()); }

TEST(PragmaRoundTrip, ComputeWHalf) {
  roundTrip(gdnv::buildComputeWHalfChain());
}

TEST(PragmaRoundTrip, PrintedTextLooksLikeThePaper) {
  std::string Text = parser::printPragmas(mfd::buildChain2D());
  EXPECT_NE(Text.find("#pragma omplc parallel(fuse)"), std::string::npos);
  EXPECT_NE(Text.find("#pragma omplc for domain("), std::string::npos);
  EXPECT_NE(Text.find("with (x, y)"), std::string::npos);
  EXPECT_NE(Text.find("read in_rho{(x-2,y),(x-1,y),(x,y),(x+1,y)}"),
            std::string::npos);
  EXPECT_NE(Text.find("write F1x_rho{(x,y)}"), std::string::npos);
}

TEST(PragmaRoundTrip, DoubleRoundTripIsStable) {
  ir::LoopChain Chain = mfd::buildChain2D();
  std::string Once = parser::printPragmas(Chain);
  parser::ParseResult R = parser::parseLoopChain(Once);
  ASSERT_TRUE(R);
  std::string Twice = parser::printPragmas(*R.Chain);
  EXPECT_EQ(Once, Twice);
}
