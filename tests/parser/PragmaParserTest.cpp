//===- tests/parser/PragmaParserTest.cpp ----------------------------------===//

#include "parser/PragmaParser.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using parser::parseLoopChain;

namespace {

const char *Figure1Source = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:X, 0:Y-1) with (x, y) \
    write VAL_1{(x,y)} read VAL_0{(x,y)}
S1: VAL_1(x,y) = func1(VAL_0(x,y));

#pragma omplc for domain(0:X, 0:Y-1) with (x, y) \
    write VAL_2{(x,y)} read VAL_1{(x,y)}
S2: VAL_2(x,y) = func2(VAL_1(x,y));

#pragma omplc for domain(0:X-1, 0:Y-1) with (x, y) \
    write VAL_3{(x,y)} read VAL_2{(x,y),(x+1,y)}
S3: VAL_3(x,y) = func3(VAL_2(x,y), VAL_2(x+1,y));
}
)";

} // namespace

TEST(PragmaParser, ParsesFigure1) {
  parser::ParseResult R = parseLoopChain(Figure1Source);
  ASSERT_TRUE(R) << R.Error << " at line " << R.Line;
  const ir::LoopChain &Chain = *R.Chain;
  EXPECT_EQ(Chain.scheduleHint(), "fuse");
  ASSERT_EQ(Chain.numNests(), 3u);
  EXPECT_EQ(Chain.nest(0).Name, "S1");
  EXPECT_EQ(Chain.nest(2).Name, "S3");
  EXPECT_EQ(Chain.nest(0).BodyText, "VAL_1(x,y) = func1(VAL_0(x,y));");
}

TEST(PragmaParser, DomainOrderConvention) {
  parser::ParseResult R = parseLoopChain(Figure1Source);
  ASSERT_TRUE(R);
  // with (x, y): y is outermost by default, so the domain dims are (y, x).
  const poly::BoxSet &D = R.Chain->nest(0).Domain;
  ASSERT_EQ(D.rank(), 2u);
  EXPECT_EQ(D.dim(0).Name, "y");
  EXPECT_EQ(D.dim(1).Name, "x");
  EXPECT_EQ(D.dim(1).Upper.toString(), "X");
  EXPECT_EQ(D.dim(0).Upper.toString(), "Y-1");
}

TEST(PragmaParser, StencilOffsets) {
  parser::ParseResult R = parseLoopChain(Figure1Source);
  ASSERT_TRUE(R);
  const ir::LoopNest &S3 = R.Chain->nest(2);
  ASSERT_EQ(S3.Reads.size(), 1u);
  ASSERT_EQ(S3.Reads[0].Offsets.size(), 2u);
  // Offsets are stored in domain order (y, x).
  EXPECT_EQ(S3.Reads[0].Offsets[0], (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(S3.Reads[0].Offsets[1], (std::vector<std::int64_t>{0, 1}));
}

TEST(PragmaParser, StorageClassification) {
  parser::ParseResult R = parseLoopChain(Figure1Source);
  ASSERT_TRUE(R);
  EXPECT_EQ(R.Chain->array("VAL_0").Kind, ir::StorageKind::PersistentInput);
  EXPECT_EQ(R.Chain->array("VAL_1").Kind, ir::StorageKind::Temporary);
  EXPECT_EQ(R.Chain->array("VAL_3").Kind, ir::StorageKind::PersistentOutput);
}

TEST(PragmaParser, ExplicitOrderClause) {
  const char *Src = R"(
#pragma omplc for domain(0:N-1, 0:N-1, 0:N-1) with (x, y, z) \
    order(x, z, y) write A{(x,y,z)} read B{(x,y,z)}
A(x,y,z) = f(B(x,y,z));
)";
  parser::ParseResult R = parseLoopChain(Src);
  ASSERT_TRUE(R) << R.Error;
  const poly::BoxSet &D = R.Chain->nest(0).Domain;
  EXPECT_EQ(D.dim(0).Name, "x");
  EXPECT_EQ(D.dim(1).Name, "z");
  EXPECT_EQ(D.dim(2).Name, "y");
}

TEST(PragmaParser, ThreeDimensionalDomain) {
  const char *Src = R"(
#pragma omplc for domain(0:X+1, 0:Y, 0:Z) with (x, y, z) \
    write F{(x,y,z)} read V{(x-2,y,z),(x-1,y,z),(x,y,z),(x+1,y,z)}
F(x,y,z) = flux(V);
)";
  parser::ParseResult R = parseLoopChain(Src);
  ASSERT_TRUE(R) << R.Error;
  const ir::LoopNest &Nest = R.Chain->nest(0);
  // Default order: z outermost.
  EXPECT_EQ(Nest.Domain.dim(0).Name, "z");
  EXPECT_EQ(Nest.Domain.dim(2).Name, "x");
  EXPECT_EQ(Nest.Domain.dim(2).Upper.toString(), "X+1");
  ASSERT_EQ(Nest.Reads[0].Offsets.size(), 4u);
  EXPECT_EQ(Nest.Reads[0].Offsets[0],
            (std::vector<std::int64_t>{0, 0, -2}));
}

TEST(PragmaParser, UnlabeledStatementsGetNames) {
  const char *Src = R"(
#pragma omplc for domain(0:N) with (i) write A{(i)} read B{(i)}
A(i) = B(i);
)";
  parser::ParseResult R = parseLoopChain(Src);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Chain->nest(0).Name, "S1");
}

struct ErrorCase {
  const char *Source;
  const char *ExpectSubstring;
};

class PragmaParserErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(PragmaParserErrors, Reports) {
  parser::ParseResult R = parseLoopChain(GetParam().Source);
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find(GetParam().ExpectSubstring), std::string::npos)
      << "got: " << R.Error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PragmaParserErrors,
    ::testing::Values(
        ErrorCase{"#pragma omplc for with (x) write A{(x)}\nA(x)=1;",
                  "missing domain"},
        ErrorCase{"#pragma omplc for domain(0:N) write A{(x)}\nA(x)=1;",
                  "missing with"},
        ErrorCase{"#pragma omplc for domain(0:N, 0:N) with (x) "
                  "write A{(x)}\nA(x)=1;",
                  "arity mismatch"},
        ErrorCase{"#pragma omplc for domain(0:N) with (x) read B{(x)}\nx;",
                  "missing write"},
        ErrorCase{"#pragma omplc for domain(0:N) with (x) "
                  "write A{(2x)} read B{(x)}\nA;",
                  "must be iterator"},
        ErrorCase{"", "no loop nests"}));

TEST(PragmaParserDiagnostics, ErrorsCarryColumnAndSnippet) {
  // The malformed domain bound sits mid-line; the diagnostic must point a
  // 1-based column into the logical (continuation-joined) source line.
  parser::ParseResult R = parseLoopChain(
      "#pragma omplc for domain(0:N, oops) with (x, y) \\\n"
      "    write A{(x,y)} read B{(x,y)}\n"
      "S1: A(x,y) = f(B(x,y));\n");
  ASSERT_FALSE(R);
  EXPECT_GE(R.Line, 1u);
  ASSERT_GT(R.Column, 0u) << R.Error;
  ASSERT_FALSE(R.Snippet.empty());
  EXPECT_LE(R.Column, R.Snippet.size());
  // The column lands on (or inside) the offending clause text.
  EXPECT_NE(R.Snippet.find("oops"), std::string::npos);
  EXPECT_GE(R.Column, R.Snippet.find("domain") + 1);
}

TEST(PragmaParserDiagnostics, FormattedRendersAlignedCaret) {
  parser::ParseResult R = parseLoopChain(
      "#pragma omplc for domain(0:N) with (x) write A{(x)} read B{bad}\n"
      "S1: A(x) = f(B(x));\n");
  ASSERT_FALSE(R);
  ASSERT_GT(R.Column, 0u);
  std::string F = R.formatted();
  EXPECT_NE(F.find("line "), std::string::npos) << F;
  EXPECT_NE(F.find("column "), std::string::npos) << F;
  EXPECT_NE(F.find(R.Snippet), std::string::npos) << F;
  // The caret line: newline, (Column - 1) spaces inside the indented
  // snippet block, then '^'.
  std::size_t Caret = F.rfind('^');
  ASSERT_NE(Caret, std::string::npos) << F;
  std::size_t LineStart = F.rfind('\n', Caret);
  ASSERT_NE(LineStart, std::string::npos);
  std::size_t SnippetPos = F.find(R.Snippet);
  std::size_t SnippetLineStart = F.rfind('\n', SnippetPos);
  ASSERT_NE(SnippetLineStart, std::string::npos);
  std::size_t Indent = SnippetPos - SnippetLineStart - 1;
  EXPECT_EQ(Caret - LineStart - 1, Indent + R.Column - 1)
      << "caret must sit under column " << R.Column << ":\n"
      << F;
}

TEST(PragmaParserDiagnostics, StatusFoldsIntoCommonVocabulary) {
  parser::ParseResult Bad = parseLoopChain("#pragma omplc for\nS: x;\n");
  ASSERT_FALSE(Bad);
  support::Status S = Bad.status();
  EXPECT_EQ(S.code(), support::ErrorCode::Parse);
  EXPECT_FALSE(S.message().empty());

  parser::ParseResult Good = parseLoopChain(Figure1Source);
  ASSERT_TRUE(Good) << Good.Error;
  EXPECT_TRUE(Good.status().isOk());
}

TEST(PragmaParserDiagnostics, HostileInputsNeverAbort) {
  // A grab-bag of malformed fragments that historically hit asserts
  // (empty stencils, rank mismatches) must all come back as diagnostics.
  const char *Hostile[] = {
      "#pragma omplc for domain(0:N) with (x) write A{} \nS: x;\n",
      "#pragma omplc for domain(0:N) with (x) write A{(x,y)}\nS: x;\n",
      "#pragma omplc for domain(0:N) with (x) write A{(x)} "
      "read B{(x,y,z)}\nS: x;\n",
      "#pragma omplc for domain() with () write A{()}\nS: x;\n",
      "#pragma omplc parallel(fuse)\n{\n",
      "{}",
  };
  for (const char *Source : Hostile) {
    parser::ParseResult R = parseLoopChain(Source);
    EXPECT_FALSE(R) << "hostile input parsed: " << Source;
    EXPECT_FALSE(R.Error.empty());
  }
}
