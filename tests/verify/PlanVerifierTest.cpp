//===- tests/verify/PlanVerifierTest.cpp ----------------------------------===//
//
// The static legality verifier, tested the only way a verifier can be:
// by mutation. Clean lowerings of the Figure 1 chain must come out
// spotless, and each seeded illegality — a dropped fusion shift, an
// under-sized modulo window, a deleted task dependence, an over-long
// batching segment — must be rejected with its documented check ID and a
// concrete witness.
//
//===----------------------------------------------------------------------===//

#include "verify/PlanVerifier.h"

#include "codegen/Generator.h"
#include "graph/GraphBuilder.h"
#include "parser/PragmaParser.h"
#include "parser/ScriptRunner.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::verify;

namespace {

/// The Figure 1 chain: a producer sweep feeding a 2-point stencil whose
/// (x+1, y) read forces a fusion shift.
constexpr const char *Fig1 = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write VAL_1{(x,y)} read VAL_0{(x,y)}
S1: VAL_1(x,y) = func1(VAL_0(x,y));
#pragma omplc for domain(0:N-1, 0:N-1) with (x, y) \
    write VAL_2{(x,y)} read VAL_1{(x,y),(x+1,y)}
S2: VAL_2(x,y) = func2(VAL_1(x,y), VAL_1(x+1,y));
}
)";

ir::LoopChain parseFig1() {
  parser::ParseResult R = parser::parseLoopChain(Fig1);
  EXPECT_TRUE(static_cast<bool>(R)) << R.Error;
  return std::move(*R.Chain);
}

/// Lowers the scheduled graph exactly as the driver does: storage plan
/// (with liveness allocation), concrete storage, generated AST, plan.
exec::ExecutionPlan compilePlan(const graph::Graph &G, std::int64_t N,
                                unsigned Widen = 1) {
  exec::ParamEnv Env{{"N", N}};
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, /*UseAllocation=*/true, Widen);
  storage::ConcreteStorage Store(SPlan, Env);
  codegen::AstPtr Ast = codegen::generate(G);
  return exec::ExecutionPlan::fromAst(G, *Ast, Store, Env);
}

std::size_t errorCount(const Diagnostics &D) {
  return D.count(Severity::Error);
}

const Diagnostic *findCheck(const Diagnostics &D, const char *Check) {
  for (const Diagnostic &Diag : D.all())
    if (Diag.CheckId == Check)
      return &Diag;
  return nullptr;
}

} // namespace

TEST(PlanVerifier, CleanLoweringsAreSpotless) {
  ir::LoopChain Chain = parseFig1();
  // Original schedule.
  {
    graph::Graph G = graph::buildGraph(Chain);
    exec::ExecutionPlan Plan = compilePlan(G, 8);
    PlanVerifier V(Plan);
    Diagnostics D = V.verify();
    checkGraphSchedule(G, D);
    EXPECT_TRUE(D.all().empty()) << D.toString();
  }
  // Fused and storage-reduced, at two widening factors.
  for (unsigned Widen : {1u, 2u}) {
    graph::Graph G = graph::buildGraph(Chain);
    ASSERT_TRUE(static_cast<bool>(parser::runScript(G, "fusepc S1 S2\n")));
    storage::reduceStorage(G);
    exec::ExecutionPlan Plan = compilePlan(G, 8, Widen);
    PlanVerifier V(Plan);
    Diagnostics D = V.verify();
    checkGraphSchedule(G, D);
    EXPECT_TRUE(D.all().empty()) << "widen " << Widen << "\n" << D.toString();
  }
}

TEST(PlanVerifier, ZeroedFusionShiftLosesDependence) {
  ir::LoopChain Chain = parseFig1();
  graph::Graph G = graph::buildGraph(Chain);
  ASSERT_TRUE(static_cast<bool>(parser::runScript(G, "fusepc S1 S2\n")));

  // The (x+1, y) stencil read makes the fusion legal only under a nonzero
  // shift; erase it and regenerate the schedule.
  graph::NodeId Fused = G.stmtOfNest(1);
  ASSERT_NE(Fused, graph::InvalidNode);
  bool HadShift = false;
  for (std::vector<std::int64_t> &Shift : G.stmt(Fused).Shifts)
    for (std::int64_t &S : Shift) {
      HadShift |= S != 0;
      S = 0;
    }
  ASSERT_TRUE(HadShift) << "fusepc was expected to shift a member nest";

  exec::ExecutionPlan Plan = compilePlan(G, 8);
  PlanVerifier V(Plan);
  Diagnostics D = V.verify();
  ASSERT_EQ(errorCount(D), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckLostDependence);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  EXPECT_EQ(E->Array, "VAL_1");
  EXPECT_FALSE(E->Point.empty()) << "witness iteration point expected";
}

TEST(PlanVerifier, UndersizedModuloWindowClobbers) {
  ir::LoopChain Chain = parseFig1();
  graph::Graph G = graph::buildGraph(Chain);
  ASSERT_TRUE(static_cast<bool>(parser::runScript(G, "fusepc S1 S2\n")));
  storage::reduceStorage(G);
  exec::ExecutionPlan Plan = compilePlan(G, 8);

  // Shrink every rolling window below the true reuse distance.
  bool HadModulo = false;
  for (exec::NestInstr &I : Plan.Instrs)
    for (exec::StmtRecord &S : I.Stmts) {
      for (exec::Stream &R : S.Reads)
        if (R.Modulo) {
          HadModulo = true;
          R.ModSize = 1;
        }
      if (S.Write.Modulo) {
        HadModulo = true;
        S.Write.ModSize = 1;
      }
    }
  ASSERT_TRUE(HadModulo) << "storage reduction was expected to roll VAL_1";

  PlanVerifier V(Plan);
  Diagnostics D = V.verify();
  ASSERT_EQ(errorCount(D), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckStorageClobber);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  EXPECT_FALSE(E->Point.empty()) << "witness iteration point expected";
  EXPECT_FALSE(E->OtherPoint.empty()) << "conflicting point expected";
}

TEST(PlanVerifier, DeletedTaskDependenceRaces) {
  ir::LoopChain Chain = parseFig1();
  graph::Graph G = graph::buildGraph(Chain);
  exec::ExecutionPlan Plan = compilePlan(G, 8);

  // The unfused schedule compiles to two tasks ordered by their VAL_1
  // conflict; severing the edge leaves the pair unordered.
  ASSERT_EQ(Plan.Tasks.size(), 2u);
  ASSERT_FALSE(Plan.Tasks[1].Deps.empty());
  Plan.Tasks[1].Deps.clear();

  PlanVerifier V(Plan);
  Diagnostics D = V.verify();
  ASSERT_EQ(errorCount(D), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckTaskRace);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  EXPECT_EQ(E->Task, 0);
  EXPECT_EQ(E->OtherTask, 1);
  EXPECT_EQ(E->Array, "VAL_1");
  EXPECT_FALSE(E->Point.empty()) << "witness iteration point expected";
  EXPECT_FALSE(E->OtherPoint.empty()) << "conflicting point expected";
}

namespace {

/// A hand-built single-loop instruction: statement 0 writes A[y], statement
/// 1 reads A at a per-statement offset and writes B[y]. Space 0 (A) is
/// persistent so the pre-write reads model the caller-initialized input
/// pattern.
exec::ExecutionPlan rmwPlan(std::int64_t ReadBase, std::int64_t ReadStride) {
  exec::ExecutionPlan Plan;
  Plan.NumSpaces = 2;
  Plan.SpacePersistent = {true, false};
  Plan.ArrayNames = {"A", "B"};

  exec::NestInstr I;
  I.Label = "rmw";
  I.Loops.push_back(exec::LoopLevel{"y", 0, 7});

  exec::StmtRecord S0;
  S0.NestId = 0;
  S0.KernelId = 0;
  S0.Write.Space = 0;
  S0.Write.ArrayId = 0;
  S0.Write.LevelStrides = {1};

  exec::StmtRecord S1;
  S1.NestId = 1;
  S1.KernelId = 0;
  exec::Stream Read;
  Read.Space = 0;
  Read.ArrayId = 0;
  Read.Base = ReadBase;
  Read.LevelStrides = {ReadStride};
  S1.Reads.push_back(Read);
  S1.Write.Space = 1;
  S1.Write.ArrayId = 1;
  S1.Write.LevelStrides = {1};

  I.Stmts = {S0, S1};
  Plan.Instrs.push_back(std::move(I));
  Plan.Tasks.push_back(exec::PlanTask{0, {}});
  return Plan;
}

double scalarSum(const std::vector<double> &Reads, double Current) {
  double Sum = Current;
  for (double R : Reads)
    Sum += R;
  return Sum;
}

void batchedNop(double *, const double *const *, const std::int64_t *,
                std::int64_t, std::int64_t) {}

} // namespace

TEST(PlanVerifier, OverlongSegmentCapReordersForwardRead) {
  // Statement 1 reads A[y+1], which statement 0 writes one iteration
  // later: any segment of length > 1 moves the write ahead of the read.
  exec::ExecutionPlan Plan = rmwPlan(/*ReadBase=*/1, /*ReadStride=*/1);
  exec::RowPlan Override;
  Override.MaxSegment = 8;
  std::vector<std::optional<exec::RowPlan>> Rows{Override};
  VerifyOptions Opts;
  Opts.Rows = &Rows;

  PlanVerifier V(Plan, Opts);
  Diagnostics D = V.verify();
  ASSERT_EQ(errorCount(D), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckSegmentCap);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  EXPECT_EQ(E->Instr, 0);
  EXPECT_EQ(E->Array, "A");
  // The smallest collision: statement 0 at y=1 against statement 1 at y=0.
  EXPECT_EQ(E->Point, (std::vector<std::int64_t>{1}));
  EXPECT_EQ(E->OtherPoint, (std::vector<std::int64_t>{0}));
}

TEST(PlanVerifier, ScalarFallbackWarnsWhenCapWasProvable) {
  // Statement 1 reads A far away with a mismatched stride: the pairwise
  // cap analysis refuses (shape mismatch), yet no collision exists, so
  // the verifier flags the lost batching opportunity.
  exec::ExecutionPlan Plan = rmwPlan(/*ReadBase=*/100, /*ReadStride=*/2);
  codegen::KernelRegistry Kernels;
  ASSERT_EQ(Kernels.add(scalarSum, batchedNop), 0);
  VerifyOptions Opts;
  Opts.Kernels = &Kernels;

  PlanVerifier V(Plan, Opts);
  Diagnostics D = V.verify();
  EXPECT_EQ(errorCount(D), 0u) << D.toString();
  ASSERT_EQ(D.count(Severity::Warning), 1u) << D.toString();
  const Diagnostic *W = findCheck(D, CheckScalarFallback);
  ASSERT_NE(W, nullptr) << D.toString();
  EXPECT_EQ(W->Sev, Severity::Warning);
  EXPECT_EQ(W->Instr, 0);
}

TEST(PlanVerifier, DependenceClosureIsTransitive) {
  exec::ExecutionPlan Plan = rmwPlan(1, 1);
  Plan.Instrs.push_back(Plan.Instrs[0]);
  Plan.Instrs.push_back(Plan.Instrs[0]);
  Plan.Tasks.push_back(exec::PlanTask{1, {0}});
  Plan.Tasks.push_back(exec::PlanTask{2, {1}});
  std::vector<std::vector<bool>> C = Plan.dependenceClosure();
  EXPECT_TRUE(C[1][0]);
  EXPECT_TRUE(C[2][1]);
  EXPECT_TRUE(C[2][0]) << "closure must be transitive";
  EXPECT_FALSE(C[0][1]);
  EXPECT_FALSE(C[0][2]);
}

TEST(PlanVerifier, ExternalTasksNotedOnce) {
  // Opaque callbacks cannot be footprinted: the verifier says so with a
  // single V000 note (not one per external task) and no spurious errors.
  exec::ExecutionPlan Plan = rmwPlan(0, 1);
  Plan.Instrs.push_back(Plan.Instrs[0]);
  Plan.Instrs[0].External = [](int) {};
  Plan.Instrs[1].External = [](int) {};
  Plan.Tasks.push_back(exec::PlanTask{1, {0}});

  PlanVerifier V(Plan);
  Diagnostics D = V.verify();
  EXPECT_EQ(errorCount(D), 0u) << D.toString();
  ASSERT_EQ(D.count(Severity::Note), 1u) << D.toString();
  const Diagnostic *N = findCheck(D, CheckOpaqueExternal);
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->Instr, 0);
}

TEST(PlanVerifier, BudgetExhaustionWarnsInsteadOfSilentPass) {
  // A zero budget abandons every enumeration-based family with a V007
  // warning: an unchecked plan must not read as a certified one.
  {
    exec::ExecutionPlan Plan = rmwPlan(1, 1);
    exec::RowPlan Override;
    Override.MaxSegment = 8;
    std::vector<std::optional<exec::RowPlan>> Rows{Override};
    VerifyOptions Opts;
    Opts.Rows = &Rows;
    Opts.Budget = 0;
    PlanVerifier V(Plan, Opts);
    Diagnostics D = V.verify();
    EXPECT_EQ(errorCount(D), 0u) << D.toString();
    // Serial dataflow and row batching each gave up; one task, so the
    // race family never walks.
    EXPECT_EQ(D.count(Severity::Warning), 2u) << D.toString();
    EXPECT_NE(findCheck(D, CheckTraceBudget), nullptr) << D.toString();
  }
  {
    // Two tasks: the race family also charges (and exhausts) the budget.
    ir::LoopChain Chain = parseFig1();
    graph::Graph G = graph::buildGraph(Chain);
    exec::ExecutionPlan Plan = compilePlan(G, 8);
    VerifyOptions Opts;
    Opts.Budget = 0;
    PlanVerifier V(Plan, Opts);
    Diagnostics D = V.verify();
    EXPECT_EQ(errorCount(D), 0u) << D.toString();
    EXPECT_EQ(D.count(Severity::Warning), 2u) << D.toString();
  }
}

TEST(PlanVerifier, ReadOfValueNeverProducedIsLost) {
  // Statement 1 reads temporary T, which no statement of the plan writes:
  // V004 with a witness point but no producer-side witness.
  exec::ExecutionPlan Plan = rmwPlan(0, 1);
  Plan.NumSpaces = 3;
  Plan.SpacePersistent = {true, false, false};
  Plan.ArrayNames = {"A", "B", "T"};
  Plan.Instrs[0].Stmts[1].Reads[0].Space = 2;
  Plan.Instrs[0].Stmts[1].Reads[0].ArrayId = 2;

  PlanVerifier V(Plan);
  Diagnostics D = V.verify();
  ASSERT_EQ(errorCount(D), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckLostDependence);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Array, "T");
  EXPECT_NE(E->Message.find("never produces"), std::string::npos);
  EXPECT_FALSE(E->Point.empty());
  EXPECT_TRUE(E->OtherPoint.empty());
}

namespace {

/// One single-loop instruction of a hand-built tile-parallel plan. Each
/// statement writes its array over y in [0, 7]; optional read of A.
exec::NestInstr tileInstr(int Tile, unsigned WriteSpace, bool ReadsA) {
  exec::NestInstr I;
  I.Tile = Tile;
  I.Loops.push_back(exec::LoopLevel{"y", 0, 7});
  exec::StmtRecord S;
  S.Write.Space = WriteSpace;
  S.Write.ArrayId = static_cast<int>(WriteSpace);
  S.Write.LevelStrides = {1};
  if (ReadsA) {
    exec::Stream R;
    R.Space = 0;
    R.ArrayId = 0;
    R.LevelStrides = {1};
    S.Reads.push_back(R);
  }
  I.Stmts.push_back(std::move(S));
  return I;
}

} // namespace

TEST(PlanVerifier, TilePrivatizationCatchesUncomputedRead) {
  // Tile 0 writes the temporary A before reading it — clean. Tile 1 reads
  // A without ever computing it: serially fine (tile 0 ran first), but
  // under tile parallelism tile 1 observes its own zero-filled private
  // copy. V006 is the only check that can see this.
  exec::ExecutionPlan Plan;
  Plan.TileParallel = true;
  Plan.NumSpaces = 3;
  Plan.SpacePersistent = {false, true, true};
  Plan.ArrayNames = {"A", "P0", "P1"};
  Plan.Instrs.push_back(tileInstr(0, 0, false)); // writes A
  Plan.Instrs.push_back(tileInstr(0, 1, true));  // reads A, writes P0
  Plan.Instrs.push_back(tileInstr(1, 2, true));  // reads A, writes P1
  Plan.Tasks.push_back(exec::PlanTask{0, {}});
  Plan.Tasks.push_back(exec::PlanTask{1, {}});
  Plan.Tasks.push_back(exec::PlanTask{2, {}});

  PlanVerifier V(Plan);
  Diagnostics D = V.verify();
  ASSERT_EQ(errorCount(D), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckPrivateUncovered);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  EXPECT_EQ(E->Task, 2);
  EXPECT_EQ(E->Array, "A");
  EXPECT_NE(E->Message.find("tile 1"), std::string::npos) << E->Message;
  EXPECT_NE(E->Message.find("privatized"), std::string::npos);
}

TEST(PlanVerifier, SegmentCapAuditHonorsGuardsAndModuloEpochs) {
  // Two-level nest, both A streams rolling (window larger than the index
  // range, so epochs always match). With statement 1 guarded to row x=0
  // the distance-1 collision survives in that row; guarding it to an
  // empty row range (and an empty inner range) removes every collision,
  // so the same over-long cap audits clean.
  auto makePlan = [] {
    exec::ExecutionPlan Plan = rmwPlan(1, 1);
    exec::NestInstr &I = Plan.Instrs[0];
    I.Loops.insert(I.Loops.begin(), exec::LoopLevel{"x", 0, 1});
    for (exec::StmtRecord &S : I.Stmts) {
      S.Write.LevelStrides.insert(S.Write.LevelStrides.begin(), 0);
      for (exec::Stream &R : S.Reads)
        R.LevelStrides.insert(R.LevelStrides.begin(), 0);
    }
    // Space A rolls with a window far beyond the touched range.
    I.Stmts[0].Write.Modulo = true;
    I.Stmts[0].Write.ModSize = 64;
    I.Stmts[1].Reads[0].Modulo = true;
    I.Stmts[1].Reads[0].ModSize = 64;
    return Plan;
  };
  exec::RowPlan Override;
  Override.MaxSegment = 8;
  std::vector<std::optional<exec::RowPlan>> Rows{Override};
  VerifyOptions Opts;
  Opts.Rows = &Rows;

  {
    exec::ExecutionPlan Plan = makePlan();
    Plan.Instrs[0].Stmts[1].Guards.push_back(exec::GuardBound{0, 0, 0});
    PlanVerifier V(Plan, Opts);
    Diagnostics D = V.verify();
    ASSERT_EQ(errorCount(D), 1u) << D.toString();
    const Diagnostic *E = findCheck(D, CheckSegmentCap);
    ASSERT_NE(E, nullptr) << D.toString();
    EXPECT_EQ(E->Point, (std::vector<std::int64_t>{0, 1}));
    EXPECT_EQ(E->OtherPoint, (std::vector<std::int64_t>{0, 0}));
  }
  {
    exec::ExecutionPlan Plan = makePlan();
    Plan.Instrs[0].Stmts[1].Guards.push_back(exec::GuardBound{0, 5, 6});
    Plan.Instrs[0].Stmts[1].Guards.push_back(exec::GuardBound{1, 3, 2});
    PlanVerifier V(Plan, Opts);
    Diagnostics D = V.verify();
    EXPECT_EQ(errorCount(D), 0u) << D.toString();
  }
}

TEST(GraphSchedule, ReversedScheduleIsReported) {
  ir::LoopChain Chain = parseFig1();
  graph::Graph G = graph::buildGraph(Chain);
  graph::NodeId P = G.stmtOfNest(0);
  ASSERT_NE(P, graph::InvalidNode);
  // Push the producer below every consumer row.
  G.stmt(P).Row = 100;

  Diagnostics D;
  checkGraphSchedule(G, D);
  ASSERT_EQ(errorCount(D), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckLostDependence);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Array, "VAL_1");
  EXPECT_NE(E->Message.find("reverses"), std::string::npos) << E->Message;
}

TEST(GraphSchedule, DeadProducerNodeLosesEdge) {
  ir::LoopChain Chain = parseFig1();
  graph::Graph G = graph::buildGraph(Chain);
  graph::NodeId P = G.stmtOfNest(0);
  ASSERT_NE(P, graph::InvalidNode);
  G.stmt(P).Dead = true;

  Diagnostics D;
  checkGraphSchedule(G, D);
  ASSERT_EQ(errorCount(D), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckLostDependence);
  ASSERT_NE(E, nullptr);
  EXPECT_NE(E->Message.find("no longer contains the nest"), std::string::npos)
      << E->Message;
}

TEST(Diagnostics, TextRenderingCoversEveryField) {
  Diagnostic D;
  D.Sev = Severity::Note;
  D.CheckId = CheckOpaqueExternal;
  D.Message = "note text";
  D.OtherTask = 4;
  D.OtherInstr = 5;
  D.OtherPoint = {7, 8};
  std::string S = D.toString();
  EXPECT_NE(S.find("note["), std::string::npos) << S;
  EXPECT_NE(S.find("other task 4 instr 5 at (7,8)"), std::string::npos) << S;

  Diagnostic W;
  W.Sev = Severity::Warning;
  W.CheckId = CheckTraceBudget;
  W.Message = "back\\slash\nnew\tline";
  Diagnostics All;
  All.add(std::move(D));
  All.add(std::move(W));
  EXPECT_FALSE(All.hasErrors());
  std::string Json = All.toJson();
  EXPECT_NE(Json.find("\"other_task\":4"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"other_instr\":5"), std::string::npos) << Json;
  EXPECT_NE(Json.find("back\\\\slash\\nnew\\tline"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"warnings\":1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"notes\":1"), std::string::npos) << Json;
  std::string Text = All.toString();
  EXPECT_NE(Text.find("0 error(s), 1 warning(s), 1 note(s)"),
            std::string::npos)
      << Text;
}

TEST(Diagnostics, JsonEmitter) {
  Diagnostics D;
  Diagnostic E;
  E.Sev = Severity::Error;
  E.CheckId = CheckStorageClobber;
  E.Message = "a \"quoted\" message";
  E.Task = 3;
  E.Space = 1;
  E.Array = "VAL_1";
  E.Point = {1, 2};
  E.OtherPoint = {0, 2};
  D.add(std::move(E));

  std::string Json = D.toJson();
  EXPECT_NE(Json.find("\"check\":\"V001-storage-clobber\""), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"severity\":\"error\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"point\":[1,2]"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"other_point\":[0,2]"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"errors\":1"), std::string::npos) << Json;
  EXPECT_EQ(Json.find("\"warnings\":1"), std::string::npos) << Json;
  EXPECT_TRUE(D.hasErrors());
}
