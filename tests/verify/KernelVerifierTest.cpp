//===- tests/verify/KernelVerifierTest.cpp --------------------------------===//
//
// The JIT translation validator, tested the only way a verifier can be:
// by mutation. Clean emissions of hand-built row plans (and of the full
// Figure 1 lowering) must come out spotless, and each seeded corruption —
// an off-by-one stride, a dropped wrap split, a simd pragma on an aliased
// pair, a cap widened past the proven collision distance, a reassociated
// FP sum — must be rejected with exactly one diagnostic carrying its
// documented K code and a concrete witness.
//
//===----------------------------------------------------------------------===//

#include "verify/KernelVerifier.h"

#include "codegen/CPrinter.h"
#include "codegen/Generator.h"
#include "exec/FaultInjector.h"
#include "graph/GraphBuilder.h"
#include "jit/JitEngine.h"
#include "parser/PragmaParser.h"
#include "storage/StorageMap.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::verify;

namespace {

/// Batched stand-in body: RowPlan::compile requires one per statement, but
/// nothing in these tests ever executes it.
void batchedNop(double *, const double *const *, const std::int64_t *,
                std::int64_t, std::int64_t) {}

int addKernel(codegen::KernelRegistry &Kernels, codegen::KernelExpr E) {
  return Kernels.add(
      [](const std::vector<double> &, double) { return 0.0; }, batchedNop,
      std::move(E));
}

exec::Stream stream(unsigned Space, std::int64_t Base,
                    std::vector<std::int64_t> Strides, std::int64_t Mod = 0) {
  exec::Stream S;
  S.Space = Space;
  S.Base = Base;
  S.LevelStrides = std::move(Strides);
  if (Mod > 0) {
    S.Modulo = true;
    S.ModSize = Mod;
  }
  return S;
}

/// One hand-built nest: outer i in [0, OuterHi], inner x in [0, 7].
exec::NestInstr makeInstr(std::int64_t OuterHi = 1) {
  exec::NestInstr I;
  I.Label = "fixture";
  I.Loops.push_back({"i", 0, OuterHi});
  I.Loops.push_back({"x", 0, 7});
  return I;
}

const Diagnostic *findCheck(const Diagnostics &D, const char *Check) {
  for (const Diagnostic &Diag : D.all())
    if (Diag.CheckId == Check)
      return &Diag;
  return nullptr;
}

/// Fixture A: one statement, direct write (space 0) and direct stride-2
/// read (space 1). The simplest shape where a stride lie becomes an
/// address lie at the second element.
exec::NestInstr directStrideInstr(codegen::KernelRegistry &Kernels) {
  exec::NestInstr I = makeInstr();
  exec::StmtRecord S;
  S.KernelId = addKernel(Kernels, codegen::current() + codegen::read(0));
  S.Write = stream(0, 0, {8, 1});
  S.Reads = {stream(1, 0, {16, 2})};
  I.Stmts.push_back(std::move(S));
  return I;
}

/// Fixture B: one statement whose read walks a 3-element modulo window,
/// so the truth walker splits every row at the wrap boundaries.
exec::NestInstr moduloReadInstr(codegen::KernelRegistry &Kernels) {
  exec::NestInstr I = makeInstr();
  exec::StmtRecord S;
  S.KernelId = addKernel(Kernels, codegen::current() + codegen::read(0));
  S.Write = stream(0, 0, {8, 1});
  S.Reads = {stream(1, 0, {0, 1}, /*Mod=*/3)};
  I.Stmts.push_back(std::move(S));
  return I;
}

/// Fixture C: a self-stencil — the read walks the written space one
/// element ahead, a loop-carried dependence that forbids simd/restrict.
exec::NestInstr aliasedInstr(codegen::KernelRegistry &Kernels) {
  exec::NestInstr I = makeInstr();
  exec::StmtRecord S;
  S.KernelId = addKernel(Kernels, codegen::read(0));
  S.Write = stream(0, 0, {8, 1});
  S.Reads = {stream(0, 1, {8, 1})};
  I.Stmts.push_back(std::move(S));
  return I;
}

/// Fixture D: two statements over a shared 8-element modulo space whose
/// bases sit 2 apart — the collision-distance proof caps segments at 2.
exec::NestInstr cappedPairInstr(codegen::KernelRegistry &Kernels) {
  exec::NestInstr I = makeInstr(/*OuterHi=*/0);
  exec::StmtRecord A;
  A.KernelId = addKernel(Kernels, codegen::lit(1.0));
  A.Write = stream(1, 0, {0, 1}, /*Mod=*/8);
  I.Stmts.push_back(std::move(A));
  exec::StmtRecord B;
  B.KernelId = addKernel(Kernels, codegen::read(0));
  B.Write = stream(0, 0, {8, 1});
  B.Reads = {stream(1, 2, {0, 1}, /*Mod=*/8)};
  I.Stmts.push_back(std::move(B));
  return I;
}

/// Fixture E: a three-operand sum whose registered tree fixes the FP
/// evaluation order as (R0 + R1) + R2.
exec::NestInstr sumTreeInstr(codegen::KernelRegistry &Kernels) {
  exec::NestInstr I = makeInstr();
  exec::StmtRecord S;
  S.KernelId = addKernel(
      Kernels, codegen::read(0) + codegen::read(1) + codegen::read(2));
  S.Write = stream(0, 0, {8, 1});
  S.Reads = {stream(1, 0, {8, 1}), stream(2, 0, {8, 1}),
             stream(3, 0, {8, 1})};
  I.Stmts.push_back(std::move(S));
  return I;
}

struct Lowered {
  exec::RowAnalysis RA;
  std::optional<codegen::RowKernelDesc> Desc;
};

Lowered lower(const exec::NestInstr &I,
              const codegen::KernelRegistry &Kernels) {
  Lowered L;
  L.RA = exec::RowPlan::analyze(I, Kernels);
  EXPECT_TRUE(L.RA.Plan.has_value())
      << "refusal: " << exec::rowRefusalName(L.RA.Refusal);
  if (L.RA.Plan)
    L.Desc = exec::rowKernelDesc(*L.RA.Plan, I, Kernels);
  EXPECT_TRUE(L.Desc.has_value());
  return L;
}

} // namespace

//===----------------------------------------------------------------------===//
// Clean emissions are spotless.
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, CleanRowEmissionsAreSpotless) {
  using Builder = exec::NestInstr (*)(codegen::KernelRegistry &);
  const Builder Builders[] = {directStrideInstr, moduloReadInstr,
                              aliasedInstr, cappedPairInstr, sumTreeInstr};
  for (Builder B : Builders) {
    codegen::KernelRegistry Kernels;
    const exec::NestInstr I = B(Kernels);
    Lowered L = lower(I, Kernels);
    ASSERT_TRUE(L.Desc);
    KernelVerifier V(I, *L.RA.Plan, Kernels);
    Diagnostics D;
    V.verifyRowKernel(codegen::printRowKernel(*L.Desc, "k"), D);
    EXPECT_TRUE(D.all().empty()) << D.toString();
  }
}

TEST(KernelVerifier, CleanSegmentEmissionsAreSpotless) {
  using Builder = exec::NestInstr (*)(codegen::KernelRegistry &);
  const Builder Builders[] = {directStrideInstr, moduloReadInstr,
                              aliasedInstr, sumTreeInstr};
  for (Builder B : Builders) {
    codegen::KernelRegistry Kernels;
    const exec::NestInstr I = B(Kernels);
    Lowered L = lower(I, Kernels);
    const codegen::KernelExpr *E = Kernels.expr(I.Stmts[0].KernelId);
    ASSERT_NE(E, nullptr);
    const codegen::SegmentKernelSig Sig = exec::rowSegmentSig(*L.RA.Plan, 0);
    KernelVerifier V(I, *L.RA.Plan, Kernels);
    Diagnostics D;
    V.verifySegmentKernel(0, codegen::printSegmentKernel(*E, Sig, "k"), D);
    EXPECT_TRUE(D.all().empty()) << D.toString();
  }
}

//===----------------------------------------------------------------------===//
// The five row-kernel mutations: exactly one K code each, with witness.
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, OffByOneStrideIsFootprintMismatch) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = directStrideInstr(Kernels);
  Lowered L = lower(I, Kernels);
  L.Desc->Stmts[0].Reads[0].InnerStride = 3; // truth stride is 2
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifyRowKernel(codegen::printRowKernel(*L.Desc, "k"), D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckKernelFootprint);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  EXPECT_EQ(E->Space, 1);
  // First divergent iteration point: row i=0, second element of the chunk.
  EXPECT_EQ(E->Point, (std::vector<std::int64_t>{0, 1}));
}

TEST(KernelVerifier, DroppedWrapSplitIsChunkDivergence) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = moduloReadInstr(Kernels);
  Lowered L = lower(I, Kernels);
  L.Desc->Stmts[0].Reads[0].Modulo = false; // drop the 3-element window
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifyRowKernel(codegen::printRowKernel(*L.Desc, "k"), D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckKernelChunkDivergence);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  // The emitted walker runs the whole 8-element row; the interpreted one
  // splits after 3 at the first wrap. Witness: start of the first chunk.
  EXPECT_NE(E->Message.find("splits after 3"), std::string::npos)
      << E->Message;
  EXPECT_EQ(E->Point, (std::vector<std::int64_t>{0, 0}));
}

TEST(KernelVerifier, SimdOnAliasedPairIsRejected) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = aliasedInstr(Kernels);
  Lowered L = lower(I, Kernels);
  L.Desc->Stmts[0].Reads[0].AliasesWrite = false; // forges simd + restrict
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifyRowKernel(codegen::printRowKernel(*L.Desc, "k"), D);
  // Exactly one: the restrict claim on the same pair is suppressed — one
  // root cause, one diagnostic.
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckKernelSimdUnsafe);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  EXPECT_EQ(E->Space, 0);
}

TEST(KernelVerifier, WidenedCapIsRejectedWithCollisionWitness) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = cappedPairInstr(Kernels);
  Lowered L = lower(I, Kernels);
  ASSERT_EQ(L.RA.Plan->MaxSegment, 2); // the proven collision distance
  L.Desc->MaxSegment = 8;              // widen past the proof
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifyRowKernel(codegen::printRowKernel(*L.Desc, "k"), D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckKernelCapWidened);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  EXPECT_EQ(E->Space, 1);
  // The reordered pair: statement 1's read of wrapped slot 2 at x=0 moves
  // before statement 0's write of the same slot at x=2.
  EXPECT_EQ(E->Point, (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(E->OtherPoint, (std::vector<std::int64_t>{0, 2}));
}

TEST(KernelVerifier, ReassociatedSumIsRejected) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = sumTreeInstr(Kernels);
  Lowered L = lower(I, Kernels);
  // The registered tree is (R0 + R1) + R2; hand the printer the other
  // association, as a buggy emission path would.
  const codegen::KernelExpr Reassoc =
      codegen::read(0) + (codegen::read(1) + codegen::read(2));
  L.Desc->Stmts[0].Body = &Reassoc;
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifyRowKernel(codegen::printRowKernel(*L.Desc, "k"), D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckKernelFpReassociation);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_EQ(E->Sev, Severity::Error);
  EXPECT_NE(E->Message.find("(R0 + (R1 + R2))"), std::string::npos)
      << E->Message;
}

//===----------------------------------------------------------------------===//
// Segment-kernel mutations.
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, SegmentStrideMutationIsFootprintMismatch) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = directStrideInstr(Kernels);
  Lowered L = lower(I, Kernels);
  codegen::SegmentKernelSig Sig = exec::rowSegmentSig(*L.RA.Plan, 0);
  Sig.ReadStrides[0] = 3; // truth stride is 2
  const codegen::KernelExpr *E = Kernels.expr(I.Stmts[0].KernelId);
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifySegmentKernel(0, codegen::printSegmentKernel(*E, Sig, "k"), D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  const Diagnostic *Diag = findCheck(D, CheckKernelFootprint);
  ASSERT_NE(Diag, nullptr) << D.toString();
  EXPECT_EQ(Diag->Space, 1);
  EXPECT_EQ(Diag->Point, (std::vector<std::int64_t>{1}));
}

TEST(KernelVerifier, SegmentSimdOnAliasedPairIsRejected) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = aliasedInstr(Kernels);
  Lowered L = lower(I, Kernels);
  codegen::SegmentKernelSig Sig = exec::rowSegmentSig(*L.RA.Plan, 0);
  Sig.ReadAliasesWrite[0] = false; // forges simd + restrict
  const codegen::KernelExpr *E = Kernels.expr(I.Stmts[0].KernelId);
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifySegmentKernel(0, codegen::printSegmentKernel(*E, Sig, "k"), D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  EXPECT_NE(findCheck(D, CheckKernelSimdUnsafe), nullptr) << D.toString();
}

TEST(KernelVerifier, TamperedRestrictIsAliasUnsound) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = aliasedInstr(Kernels);
  Lowered L = lower(I, Kernels);
  const codegen::SegmentKernelSig Sig = exec::rowSegmentSig(*L.RA.Plan, 0);
  const codegen::KernelExpr *E = Kernels.expr(I.Stmts[0].KernelId);
  std::string Text = codegen::printSegmentKernel(*E, Sig, "k");
  // The honest aliased emission carries no restrict and no simd; force the
  // qualifier back onto the aliased read, as a printer bug would.
  const std::string Plain = "const double *R0";
  const std::size_t P = Text.find(Plain);
  ASSERT_NE(P, std::string::npos) << Text;
  Text.replace(P, Plain.size(), "const double *restrict R0");
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifySegmentKernel(0, Text, D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  const Diagnostic *Diag = findCheck(D, CheckKernelRestrictAlias);
  ASSERT_NE(Diag, nullptr) << D.toString();
  EXPECT_EQ(Diag->Space, 0);
}

TEST(KernelVerifier, SegmentReassociatedSumIsRejected) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = sumTreeInstr(Kernels);
  Lowered L = lower(I, Kernels);
  const codegen::SegmentKernelSig Sig = exec::rowSegmentSig(*L.RA.Plan, 0);
  const codegen::KernelExpr Reassoc =
      codegen::read(0) + (codegen::read(1) + codegen::read(2));
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifySegmentKernel(0, codegen::printSegmentKernel(Reassoc, Sig, "k"), D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  EXPECT_NE(findCheck(D, CheckKernelFpReassociation), nullptr)
      << D.toString();
}

//===----------------------------------------------------------------------===//
// Shape, budget, and the degradation wiring.
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, UnparseableSegmentIsShapeError) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = directStrideInstr(Kernels);
  Lowered L = lower(I, Kernels);
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifySegmentKernel(0, "int main(void) { return 0; }", D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  EXPECT_NE(findCheck(D, CheckKernelShape), nullptr) << D.toString();
}

TEST(KernelVerifier, MissingStatementIsFootprintError) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = directStrideInstr(Kernels);
  Lowered L = lower(I, Kernels);
  KernelVerifier V(I, *L.RA.Plan, Kernels);
  Diagnostics D;
  V.verifyRowKernel("void k(void) {}", D);
  ASSERT_EQ(D.all().size(), 1u) << D.toString();
  const Diagnostic *E = findCheck(D, CheckKernelFootprint);
  ASSERT_NE(E, nullptr) << D.toString();
  EXPECT_NE(E->Message.find("absent"), std::string::npos) << E->Message;
}

TEST(KernelVerifier, ExhaustedBudgetIsAWarningNotAnError) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = moduloReadInstr(Kernels);
  Lowered L = lower(I, Kernels);
  KernelVerifyOptions O;
  O.Budget = 1;
  KernelVerifier V(I, *L.RA.Plan, Kernels, O);
  Diagnostics D;
  V.verifyRowKernel(codegen::printRowKernel(*L.Desc, "k"), D);
  EXPECT_FALSE(D.hasErrors()) << D.toString();
  const Diagnostic *W = findCheck(D, CheckKernelBudget);
  ASSERT_NE(W, nullptr) << D.toString();
  EXPECT_EQ(W->Sev, Severity::Warning);
}

TEST(KernelVerifier, FaultInjectedValidationRejectionDegrades) {
  codegen::KernelRegistry Kernels;
  const exec::NestInstr I = directStrideInstr(Kernels);
  auto Spec = exec::FaultInjector::parseSpec("jitval:reject");
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.error().toString();
  exec::FaultInjector::global().arm(*Spec);
  // The gate sits before any engine call, so this holds with or without a
  // host compiler present.
  exec::RowAnalysis RA =
      exec::RowPlan::analyze(I, Kernels, &jit::Engine::global());
  exec::FaultInjector::global().disarm();
  ASSERT_TRUE(RA.Plan.has_value());
  EXPECT_EQ(RA.Jit, exec::JitRefusal::ValidationRejected);
  EXPECT_EQ(exec::jitRefusalName(RA.Jit), "validation-rejected");
  EXPECT_EQ(RA.JitStmts, 0);
  EXPECT_FALSE(RA.FusedRow);
  EXPECT_NE(RA.JitDetail.find("fault-injected"), std::string::npos)
      << RA.JitDetail;
}

TEST(KernelVerifier, MismatchedSiteKindSpecIsRejected) {
  EXPECT_FALSE(
      static_cast<bool>(exec::FaultInjector::parseSpec("jitval:throw")));
  EXPECT_FALSE(
      static_cast<bool>(exec::FaultInjector::parseSpec("kernel:reject")));
}

//===----------------------------------------------------------------------===//
// The diagnostic JSON schema CI consumes, locked byte for byte.
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, DiagnosticJsonShapeIsStable) {
  Diagnostics D;
  Diagnostic A;
  A.Sev = Severity::Error;
  A.CheckId = CheckKernelFootprint;
  A.Message = "statement 0 read 0 walks stride 3, plan footprint stride 2";
  A.Instr = 1;
  A.Space = 1;
  A.Point = {0, 1};
  A.OtherPoint = {0, 2};
  D.add(std::move(A));
  Diagnostic B;
  B.Sev = Severity::Warning;
  B.CheckId = CheckKernelBudget;
  B.Message = "symbolic walk abandoned";
  D.add(std::move(B));
  EXPECT_EQ(
      D.toJson(),
      "{\"diagnostics\":["
      "{\"severity\":\"error\",\"check\":\"K001-footprint-mismatch\","
      "\"message\":\"statement 0 read 0 walks stride 3, plan footprint "
      "stride 2\",\"instr\":1,\"space\":1,\"point\":[0,1],"
      "\"other_point\":[0,2]},"
      "{\"severity\":\"warning\",\"check\":\"K007-kernel-budget\","
      "\"message\":\"symbolic walk abandoned\"}"
      "],\"errors\":1,\"warnings\":1,\"notes\":0}");
}

//===----------------------------------------------------------------------===//
// End to end: the Figure 1 lowering validates clean through the same
// entry point lcdfg-lint --jit-static uses.
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *Fig1 = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write VAL_1{(x,y)} read VAL_0{(x,y)}
S1: VAL_1(x,y) = func1(VAL_0(x,y));
#pragma omplc for domain(0:N-1, 0:N-1) with (x, y) \
    write VAL_2{(x,y)} read VAL_1{(x,y),(x+1,y)}
S2: VAL_2(x,y) = func2(VAL_1(x,y), VAL_1(x+1,y));
}
)";

} // namespace

TEST(KernelVerifier, Fig1PlanKernelsValidateClean) {
  parser::ParseResult R = parser::parseLoopChain(Fig1);
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  ir::LoopChain Chain = std::move(*R.Chain);
  codegen::KernelRegistry Kernels;
  for (unsigned N = 0; N < Chain.numNests(); ++N) {
    std::size_t Arity = 0;
    for (const ir::Access &A : Chain.nest(N).Reads)
      Arity += A.Offsets.size();
    codegen::KernelExpr E = codegen::current();
    for (std::size_t J = 0; J < Arity; ++J)
      E = E + codegen::read(static_cast<unsigned>(J));
    Chain.nest(N).KernelId = addKernel(Kernels, std::move(E));
  }
  graph::Graph G = graph::buildGraph(Chain);
  exec::ParamEnv Env{{"N", std::int64_t{8}}};
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, /*UseAllocation=*/true);
  storage::ConcreteStorage Store(SPlan, Env);
  codegen::AstPtr Ast = codegen::generate(G);
  exec::ExecutionPlan Plan = exec::ExecutionPlan::fromAst(G, *Ast, Store, Env);
  Diagnostics D = verifyPlanKernels(Plan, Kernels);
  EXPECT_TRUE(D.all().empty()) << D.toString();
}
