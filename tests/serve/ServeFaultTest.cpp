//===- tests/serve/ServeFaultTest.cpp -------------------------------------===//
//
// Per-request fault isolation: every row of the serve fault matrix arms
// one injected failure, asserts the poisoned request surfaces exactly its
// documented E-code (on whichever side of the wire the contract puts it),
// and — the isolation half — asserts concurrent clean requests complete
// with results bit-identical to a fault-free baseline. Execution-layer
// faults (kernel:throw) ride the same path and must come back as
// *recovered* responses, not errors: the daemon's ladder absorbs them.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "ServeTestUtil.h"
#include "exec/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace lcdfg;
using namespace lcdfg::serve;
using namespace serve_test;
using support::ErrorCode;

namespace {

exec::FaultSpec spec(const char *Text) {
  return exec::FaultInjector::parseSpec(Text).expect("fault spec");
}

/// One server + the fault-free baseline checksum for the canonical
/// request, torn down (and the injector disarmed) per test.
class ServeFaultTest : public ::testing::Test {
protected:
  void SetUp() override {
    Opts.UnixPath = uniqueSocketPath("fault");
    Srv = std::make_unique<Server>(Opts);
    ASSERT_TRUE(Srv->start().isOk());

    RequestBuilder B = baseRequest();
    auto C = Client::connectUnix(Opts.UnixPath);
    ASSERT_TRUE(bool(C));
    auto R = C->request(B.line());
    ASSERT_TRUE(bool(R)) << R.error().toString();
    ASSERT_TRUE(R->find("ok")->asBool());
    BaselineFnv = R->find("result_fnv")->asString();
    ASSERT_EQ(BaselineFnv.size(), 16u);
  }

  void TearDown() override {
    exec::FaultInjector::global().disarm();
    if (Srv)
      Srv->stop();
  }

  static RequestBuilder baseRequest() {
    RequestBuilder B;
    B.Script = Fig1Script;
    B.Size = 16;
    B.Checksum = 1;
    return B;
  }

  ServerOptions Opts;
  std::unique_ptr<Server> Srv;
  std::string BaselineFnv;
};

TEST_F(ServeFaultTest, ServeDropClosesBeforeTheResponse) {
  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  exec::FaultInjector::global().arm(spec("serve:drop"));

  auto R = C->request(baseRequest().line());
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.error().code(), ErrorCode::PeerLost);
  EXPECT_EQ(exec::FaultInjector::global().firedCount(), 1u);

  // One-shot: a reconnecting client gets a clean, bit-identical answer.
  auto C2 = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C2));
  auto R2 = C2->request(baseRequest().line());
  ASSERT_TRUE(bool(R2)) << R2.error().toString();
  EXPECT_TRUE(R2->find("ok")->asBool());
  EXPECT_EQ(R2->find("result_fnv")->asString(), BaselineFnv);
}

TEST_F(ServeFaultTest, ServeTruncateYieldsAPartialFrameE020) {
  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  exec::FaultInjector::global().arm(spec("serve:truncate"));

  auto R = C->request(baseRequest().line());
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.error().code(), ErrorCode::Protocol);
  EXPECT_NE(R.error().message().find("mid-frame"), std::string::npos);

  auto C2 = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C2));
  auto R2 = C2->request(baseRequest().line());
  ASSERT_TRUE(bool(R2));
  EXPECT_EQ(R2->find("result_fnv")->asString(), BaselineFnv);
}

TEST_F(ServeFaultTest, ServeDelayPastTheDeadlineIsE019) {
  ::setenv("LCDFG_SERVE_DELAY_MS", "1000", 1);
  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  exec::FaultInjector::global().arm(spec("serve:delay"));

  auto R = C->request(baseRequest().line(), /*TimeoutMs=*/150);
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.error().code(), ErrorCode::ExchangeTimeout);
  ::unsetenv("LCDFG_SERVE_DELAY_MS");
}

TEST_F(ServeFaultTest, ShortServeDelayIsAbsorbed) {
  ::setenv("LCDFG_SERVE_DELAY_MS", "50", 1);
  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  exec::FaultInjector::global().arm(spec("serve:delay"));

  auto R = C->request(baseRequest().line(), /*TimeoutMs=*/10000);
  ASSERT_TRUE(bool(R)) << R.error().toString();
  EXPECT_TRUE(R->find("ok")->asBool());
  EXPECT_EQ(R->find("result_fnv")->asString(), BaselineFnv);
  ::unsetenv("LCDFG_SERVE_DELAY_MS");
}

TEST_F(ServeFaultTest, KernelThrowIsRecoveredNotAnError) {
  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  exec::FaultInjector::global().arm(spec("kernel:throw"));

  RequestBuilder B = baseRequest();
  B.Threads = 2;
  auto R = C->request(B.line(), 30000);
  ASSERT_TRUE(bool(R)) << R.error().toString();
  EXPECT_TRUE(R->find("ok")->asBool());
  const JsonValue *Report = R->find("report");
  ASSERT_NE(Report, nullptr);
  EXPECT_TRUE(Report->find("recovered")->asBool());
  // The descent reason must name the worker exception.
  ASSERT_TRUE(Report->find("descents")->isArray());
  ASSERT_FALSE(Report->find("descents")->Items.empty());
  EXPECT_EQ(Report->find("descents")->Items[0].find("reason")->asString(),
            "L002-worker-exception");
  // Recovered output == clean output, bit for bit.
  EXPECT_EQ(R->find("result_fnv")->asString(), BaselineFnv);
}

TEST_F(ServeFaultTest, FaultedRequestIsIsolatedFromConcurrentCleanOnes) {
  // Arm one drop; fire 1 + 4 concurrent requests. Exactly one client sees
  // E018; every completed response is bit-identical to the baseline.
  exec::FaultInjector::global().arm(spec("serve:drop"));

  constexpr int NumClients = 5;
  std::vector<int> Outcome(NumClients, -1); // 0 = ok, 1 = E018.
  std::vector<std::string> Fnv(NumClients);
  std::vector<std::thread> Ts;
  std::string Line = baseRequest().line();
  for (int I = 0; I < NumClients; ++I)
    Ts.emplace_back([&, I] {
      auto C = Client::connectUnix(Opts.UnixPath);
      if (!C)
        return;
      auto R = C->request(Line, 30000);
      std::size_t Idx = static_cast<std::size_t>(I);
      if (!R) {
        Outcome[Idx] = R.error().code() == ErrorCode::PeerLost ? 1 : 2;
        return;
      }
      Outcome[Idx] = R->find("ok")->asBool() ? 0 : 3;
      if (Outcome[Idx] == 0)
        Fnv[Idx] = R->find("result_fnv")->asString();
    });
  for (std::thread &T : Ts)
    T.join();

  int Dropped = 0, Clean = 0;
  for (int I = 0; I < NumClients; ++I) {
    std::size_t Idx = static_cast<std::size_t>(I);
    if (Outcome[Idx] == 1) {
      ++Dropped;
    } else {
      ASSERT_EQ(Outcome[Idx], 0) << "client " << I << " unexpected outcome";
      EXPECT_EQ(Fnv[Idx], BaselineFnv) << "client " << I;
      ++Clean;
    }
  }
  EXPECT_EQ(Dropped, 1);
  EXPECT_EQ(Clean, NumClients - 1);
  EXPECT_EQ(exec::FaultInjector::global().firedCount(), 1u);

  ServerStats S = Srv->stats();
  EXPECT_EQ(S.Hits + S.Misses, S.Admitted);
}

TEST_F(ServeFaultTest, HostileInputRowsAreClientDriven) {
  // Oversized frame: E020 response, connection closed by the server.
  {
    ServerOptions Small;
    Small.UnixPath = uniqueSocketPath("fault-oversize");
    Small.MaxLineBytes = 2048;
    Server SmallSrv(Small);
    ASSERT_TRUE(SmallSrv.start().isOk());
    auto C = Client::connectUnix(Small.UnixPath);
    ASSERT_TRUE(bool(C));
    ASSERT_TRUE(C->sendLine(std::string(16 * 1024, 'z')).isOk());
    auto R = C->recvLine(5000);
    ASSERT_TRUE(bool(R));
    auto V = parseJson(*R);
    ASSERT_TRUE(bool(V));
    EXPECT_EQ(V->find("status")->find("code")->asString(), "E020-protocol");
    SmallSrv.stop();
  }

  // Mid-request disconnect storm against the shared server, then a clean
  // request: the daemon must neither crash nor wedge.
  for (int I = 0; I < 8; ++I) {
    auto C = Client::connectUnix(Opts.UnixPath);
    ASSERT_TRUE(bool(C));
    ASSERT_TRUE(C->sendRaw("{\"chain\":\"half").isOk());
    C->closeNow();
  }
  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  auto R = C->request(baseRequest().line());
  ASSERT_TRUE(bool(R)) << R.error().toString();
  EXPECT_EQ(R->find("result_fnv")->asString(), BaselineFnv);
}

} // namespace
